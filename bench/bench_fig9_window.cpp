// Figure 9: query processing time (a) and number of solved queries (b)
// for varying window size {10k..50k}, query size 9, density 0.50.
// Expected shape: all engines slow down with larger windows (more live
// edges, more matches), TCM degrades the least.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"
#include "querygen/query_generator.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const std::vector<Timestamp> windows = {10000, 20000, 30000, 40000, 50000};
  const size_t size = 9;
  const double density = 0.5;
  const std::vector<EngineKind> engines = {
      EngineKind::kTcm, EngineKind::kTiming, EngineKind::kSymbiPost,
      EngineKind::kLocalEnum};

  std::cout << "=== Figure 9: varying window size (query size 9, density "
               "0.50) ===\n\n";

  for (const std::string& name : args.datasets) {
    const TemporalDataset ds = MakePreset(name, args.scale);
    std::cout << "--- " << name << " ---\n";
    TablePrinter time_table({"window", "TCM ms", "Timing ms", "SymBi ms",
                             "RapidFlow* ms"});
    TablePrinter solved_table({"window", "TCM", "Timing", "SymBi",
                               "RapidFlow*", "of"});
    for (const Timestamp window : windows) {
      const Timestamp w = EffectiveWindow(ds, window);
      QueryGenOptions opt;
      opt.num_edges = size;
      opt.density = density;
      opt.window = w;
      const std::vector<QueryGraph> queries =
          GenerateQuerySet(ds, opt, args.queries_per_set, args.seed);
      if (queries.empty()) continue;
      std::vector<QuerySetResult> results;
      for (const EngineKind kind : engines) {
        results.push_back(
            RunQuerySet(ds, queries, kind, w, args.time_limit_ms));
      }
      std::vector<std::string> trow{std::to_string(window)};
      std::vector<std::string> srow{std::to_string(window)};
      for (size_t k = 0; k < engines.size(); ++k) {
        trow.push_back(FormatDouble(
            AverageElapsedMs(results, k, args.time_limit_ms), 2));
        srow.push_back(std::to_string(results[k].NumSolved()));
      }
      srow.push_back(std::to_string(queries.size()));
      time_table.AddRow(std::move(trow));
      solved_table.AddRow(std::move(srow));
    }
    std::cout << "(a) average elapsed time\n";
    time_table.Print(std::cout);
    std::cout << "(b) solved queries\n";
    solved_table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
