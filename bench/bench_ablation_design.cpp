// Ablation bench for design choices DESIGN.md calls out beyond the
// paper's Figure 11:
//   * filtering with both q̂ and q̂⁻¹ vs the forward DAG only
//     (Section IV-A's "we use both q̂ and q̂⁻¹"),
//   * picking the best-scoring DAG root vs a fixed root
//     (Algorithm 1 lines 1-6 vs an arbitrary DAG).
// Reports elapsed time, solved queries, and the DCS size ratio.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "core/tcm_engine.h"
#include "datasets/presets.h"
#include "querygen/query_generator.h"

using namespace tcsm;

namespace {

struct Variant {
  const char* name;
  TcmConfig config;
};

QuerySetResult RunVariant(const TemporalDataset& ds,
                          const std::vector<QueryGraph>& queries,
                          const TcmConfig& config, Timestamp window,
                          double limit_ms) {
  QuerySetResult out;
  const GraphSchema schema{ds.directed, ds.vertex_labels};
  for (const QueryGraph& q : queries) {
    SingleQueryContext<TcmEngine> run(q, schema, config);
    CountingSink sink;
    run.engine().set_sink(&sink);
    StreamConfig sc;
    sc.window = window;
    sc.time_limit_ms = limit_ms;
    const StreamResult res = RunStream(ds, sc, &run);
    out.per_query_solved.push_back(res.completed ? 1 : 0);
    out.per_query_ms.push_back(res.completed ? res.elapsed_ms : limit_ms);
    out.per_query_matches.push_back(res.occurred + res.expired);
    out.per_query_peak_mem.push_back(res.peak_memory_bytes);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const std::vector<Variant> variants = {
      {"TCM (both DAGs, best root)", TcmConfig{}},
      {"forward filter only",
       [] {
         TcmConfig c;
         c.use_reverse_filter = false;
         return c;
       }()},
      {"fixed DAG root",
       [] {
         TcmConfig c;
         c.use_best_dag = false;
         return c;
       }()},
  };

  std::cout << "=== Design ablations: reverse-DAG filtering and DAG root "
               "selection (size 9, density 0.50, window 30k) ===\n\n";

  for (const std::string& name : args.datasets) {
    const TemporalDataset ds = MakePreset(name, args.scale);
    const Timestamp w = EffectiveWindow(ds, 30000);
    QueryGenOptions opt;
    opt.num_edges = 9;
    opt.density = 0.5;
    opt.window = w;
    const std::vector<QueryGraph> queries =
        GenerateQuerySet(ds, opt, args.queries_per_set, args.seed);
    if (queries.empty()) continue;

    std::vector<QuerySetResult> results;
    for (const Variant& v : variants) {
      results.push_back(
          RunVariant(ds, queries, v.config, w, args.time_limit_ms));
    }
    std::cout << "--- " << name << " ---\n";
    TablePrinter table({"variant", "avg ms", "solved", "of"});
    for (size_t k = 0; k < variants.size(); ++k) {
      table.AddRow({variants[k].name,
                    FormatDouble(
                        AverageElapsedMs(results, k, args.time_limit_ms), 2),
                    std::to_string(results[k].NumSolved()),
                    std::to_string(queries.size())});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
