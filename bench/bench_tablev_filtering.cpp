// Table V: filtering power of the TC-matchable edge. For each dataset and
// query size we stream the same queries through TCM with and without the
// TC-matchable filter and report the time-averaged ratios of
//   (top)    the number of DCS edges, and
//   (bottom) the number of candidate vertices remaining after the D2
//            filtering,
// with / without the filter. Smaller = stronger filtering; the paper's
// ratios shrink as the query size grows.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "core/tcm_engine.h"
#include "datasets/presets.h"
#include "querygen/query_generator.h"

using namespace tcsm;

namespace {

struct FilterStats {
  double avg_edges = 0;
  double avg_d2 = 0;
  bool ok = false;
};

FilterStats StreamAndSample(const TemporalDataset& ds, const QueryGraph& q,
                            Timestamp window, bool use_filter,
                            double limit_ms) {
  TcmConfig config;
  config.use_tc_filter = use_filter;
  SingleQueryContext<TcmEngine> run(
      q, GraphSchema{ds.directed, ds.vertex_labels}, config);
  CountingSink sink;
  run.engine().set_sink(&sink);
  Deadline deadline(limit_ms);
  run.set_deadline(&deadline);

  double sum_edges = 0;
  double sum_d2 = 0;
  size_t samples = 0;
  size_t arr = 0;
  size_t exp = 0;
  const size_t n = ds.edges.size();
  FilterStats out;
  while (arr < n || exp < arr) {
    if (deadline.ExpiredNow()) return out;  // unsolved: skip this query
    const bool do_expire =
        exp < arr &&
        (arr >= n || ds.edges[exp].ts + window <= ds.edges[arr].ts);
    if (do_expire) {
      run.OnEdgeExpiry(ds.edges[exp]);
      ++exp;
    } else {
      run.OnEdgeArrival(ds.edges[arr]);
      ++arr;
    }
    if ((arr + exp) % 64 == 0) {
      sum_edges +=
          static_cast<double>(run.engine().dcs().stats().num_edges);
      sum_d2 +=
          static_cast<double>(run.engine().dcs().stats().num_d2_nodes);
      ++samples;
    }
  }
  if (samples == 0) return out;
  out.avg_edges = sum_edges / static_cast<double>(samples);
  out.avg_d2 = sum_d2 / static_cast<double>(samples);
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const std::vector<size_t> sizes = {5, 7, 9, 11, 13, 15};
  const Timestamp window = 30000;

  std::cout << "=== Table V: filtering power with and without the "
               "TC-matchable edge ===\n"
            << "top: ratio of DCS edges; bottom: ratio of candidate "
               "vertices after filtering (smaller = more filtering)\n\n";

  TablePrinter top({"dataset", "5", "7", "9", "11", "13", "15", "avg"});
  TablePrinter bottom({"dataset", "5", "7", "9", "11", "13", "15", "avg"});
  for (const std::string& name : args.datasets) {
    const TemporalDataset ds = MakePreset(name, args.scale);
    const Timestamp w = EffectiveWindow(ds, window);
    std::vector<std::string> erow{name};
    std::vector<std::string> vrow{name};
    double esum = 0;
    double vsum = 0;
    size_t counted = 0;
    for (const size_t size : sizes) {
      QueryGenOptions opt;
      opt.num_edges = size;
      opt.density = 0.5;
      opt.window = w;
      const std::vector<QueryGraph> queries = GenerateQuerySet(
          ds, opt, args.queries_per_set, args.seed + size);
      double eratio_sum = 0;
      double vratio_sum = 0;
      size_t n_ok = 0;
      for (const QueryGraph& q : queries) {
        const FilterStats with =
            StreamAndSample(ds, q, w, true, args.time_limit_ms);
        const FilterStats without =
            StreamAndSample(ds, q, w, false, args.time_limit_ms);
        if (!with.ok || !without.ok || without.avg_edges == 0 ||
            without.avg_d2 == 0) {
          continue;
        }
        eratio_sum += with.avg_edges / without.avg_edges;
        vratio_sum += with.avg_d2 / without.avg_d2;
        ++n_ok;
      }
      if (n_ok == 0) {
        erow.push_back("-");
        vrow.push_back("-");
        continue;
      }
      const double er = eratio_sum / static_cast<double>(n_ok);
      const double vr = vratio_sum / static_cast<double>(n_ok);
      erow.push_back(FormatDouble(er, 3));
      vrow.push_back(FormatDouble(vr, 3));
      esum += er;
      vsum += vr;
      ++counted;
    }
    erow.push_back(counted ? FormatDouble(esum / counted, 3) : "-");
    vrow.push_back(counted ? FormatDouble(vsum / counted, 3) : "-");
    top.AddRow(std::move(erow));
    bottom.AddRow(std::move(vrow));
  }
  std::cout << "ratio of the number of edges in DCS (with/without):\n";
  top.Print(std::cout);
  std::cout << "\nratio of the number of vertices remaining in DCS after "
               "filtering (with/without):\n";
  bottom.Print(std::cout);
  return 0;
}
