// Figure 8: query processing time (a) and number of solved queries (b)
// for varying temporal-order density {0, 0.25, 0.5, 0.75, 1}, query size
// 9, window 30k.
//
// Methodology follows the paper exactly: each query *topology* is
// generated once and equipped with one temporal order per density, and
// the average excludes only queries that all algorithms failed to solve
// at every density — so the query set is constant along the sweep.
// Expected shape: TCM (and, less so, Timing) speed up as density grows;
// the post-filter baselines are density-insensitive.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"
#include "querygen/query_generator.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const std::vector<double> densities = {0.0, 0.25, 0.5, 0.75, 1.0};
  const size_t size = 9;
  const Timestamp window = 30000;
  const std::vector<EngineKind> engines = {
      EngineKind::kTcm, EngineKind::kTiming, EngineKind::kSymbiPost,
      EngineKind::kLocalEnum};

  std::cout << "=== Figure 8: varying density (query size 9, window 30k) "
               "===\n\n";

  for (const std::string& name : args.datasets) {
    const TemporalDataset ds = MakePreset(name, args.scale);
    const Timestamp w = EffectiveWindow(ds, window);
    std::cout << "--- " << name << " ---\n";

    // One topology per query, five orders each.
    Rng rng(args.seed);
    std::vector<std::vector<QueryGraph>> families;  // [query][density]
    for (size_t i = 0; i < args.queries_per_set; ++i) {
      QueryGenOptions opt;
      opt.num_edges = size;
      opt.window = w;
      Rng sub = rng.Split();
      std::vector<QueryGraph> family;
      if (GenerateQueryWithOrders(ds, opt, densities, &sub, &family)) {
        families.push_back(std::move(family));
      }
    }
    if (families.empty()) continue;

    // results[density][engine] over the fixed query list.
    std::vector<std::vector<QuerySetResult>> results(densities.size());
    for (size_t d = 0; d < densities.size(); ++d) {
      std::vector<QueryGraph> queries;
      queries.reserve(families.size());
      for (const auto& family : families) queries.push_back(family[d]);
      for (const EngineKind kind : engines) {
        results[d].push_back(
            RunQuerySet(ds, queries, kind, w, args.time_limit_ms));
      }
    }

    // A query is included iff some engine solved it at some density.
    std::vector<uint8_t> included(families.size(), 0);
    for (size_t q = 0; q < families.size(); ++q) {
      for (size_t d = 0; d < densities.size() && !included[q]; ++d) {
        for (size_t k = 0; k < engines.size() && !included[q]; ++k) {
          included[q] = results[d][k].per_query_solved[q];
        }
      }
    }
    size_t included_count = 0;
    for (const uint8_t i : included) included_count += i;

    TablePrinter time_table({"density", "TCM ms", "Timing ms", "SymBi ms",
                             "RapidFlow* ms"});
    TablePrinter solved_table({"density", "TCM", "Timing", "SymBi",
                               "RapidFlow*", "of"});
    for (size_t d = 0; d < densities.size(); ++d) {
      std::vector<std::string> trow{FormatDouble(densities[d], 2)};
      std::vector<std::string> srow{FormatDouble(densities[d], 2)};
      for (size_t k = 0; k < engines.size(); ++k) {
        double sum = 0;
        size_t solved = 0;
        for (size_t q = 0; q < families.size(); ++q) {
          solved += results[d][k].per_query_solved[q];
          if (!included[q]) continue;
          sum += results[d][k].per_query_solved[q]
                     ? results[d][k].per_query_ms[q]
                     : args.time_limit_ms;
        }
        trow.push_back(FormatDouble(
            included_count ? sum / static_cast<double>(included_count) : 0,
            2));
        srow.push_back(std::to_string(solved));
      }
      srow.push_back(std::to_string(families.size()));
      time_table.AddRow(std::move(trow));
      solved_table.AddRow(std::move(srow));
    }
    std::cout << "(a) average elapsed time (" << included_count << " of "
              << families.size() << " topologies included)\n";
    time_table.Print(std::cout);
    std::cout << "(b) solved queries\n";
    solved_table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
