// Table III: characteristics of the datasets. Prints the signature of each
// laptop-scaled preset next to the paper's original numbers so the
// substitution (DESIGN.md §5) is auditable. With --from=DIR each row is
// loaded from <DIR>/<name>.tel instead of synthesized (falling back to
// the preset with a note), so the table can also audit recorded or
// external streams in the documented file format.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"
#include "io/stream_reader.h"

namespace {

struct PaperRow {
  const char* name;
  const char* V;
  const char* E;
  const char* sv;
  const char* se;
  const char* davg;
  const char* mavg;
};

constexpr PaperRow kPaper[] = {
    {"netflow", "0.37M", "15.96M", "1", "346672", "85.4", "27.6"},
    {"wikitalk", "1.14M", "7.83M", "365", "1", "13.7", "2.37"},
    {"superuser", "0.19M", "1.44M", "5", "3", "14.9", "1.56"},
    {"stackoverflow", "2.60M", "63.50M", "5", "3", "48.8", "1.75"},
    {"yahoo", "0.10M", "3.18M", "5", "1", "63.6", "3.51"},
    {"lsbench", "13.12M", "21.04M", "11", "19", "3.21", "1.00"},
};

}  // namespace

int main(int argc, char** argv) {
  const tcsm::BenchArgs args = tcsm::ParseBenchArgs(argc, argv);
  std::cout << "=== Table III: characteristics of datasets ===\n"
            << "(synthetic presets shaped after the paper's Table III; "
               "'paper' columns are the original full-scale values)\n\n";
  tcsm::TablePrinter table({"dataset", "|V|", "|E|", "|Sv|", "|Se|", "davg",
                            "mavg", "paper|V|", "paper|E|", "paper-davg",
                            "paper-mavg"});
  for (const PaperRow& row : kPaper) {
    tcsm::TemporalDataset ds;
    bool from_file = false;
    if (!args.from_dir.empty()) {
      const std::string path = args.from_dir + "/" + row.name + ".tel";
      auto loaded = tcsm::LoadTelFile(path);
      if (loaded.ok()) {
        ds = std::move(loaded).value();
        from_file = true;
      } else {
        std::cout << "note: " << loaded.status().ToString()
                  << "; synthesizing preset '" << row.name << "'\n";
      }
    }
    if (!from_file) ds = tcsm::MakePreset(row.name, args.scale);
    const tcsm::DatasetStats s = ds.ComputeStats();
    table.AddRow({row.name, std::to_string(s.num_vertices),
                  std::to_string(s.num_edges),
                  std::to_string(s.num_vertex_labels),
                  std::to_string(s.num_edge_labels),
                  tcsm::FormatDouble(s.avg_degree, 1),
                  tcsm::FormatDouble(s.avg_parallel_edges, 2), row.V, row.E,
                  row.davg, row.mavg});
  }
  table.Print(std::cout);
  return 0;
}
