// Table III: characteristics of the datasets. Prints the signature of each
// laptop-scaled preset next to the paper's original numbers so the
// substitution (DESIGN.md §5) is auditable.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"

namespace {

struct PaperRow {
  const char* name;
  const char* V;
  const char* E;
  const char* sv;
  const char* se;
  const char* davg;
  const char* mavg;
};

constexpr PaperRow kPaper[] = {
    {"netflow", "0.37M", "15.96M", "1", "346672", "85.4", "27.6"},
    {"wikitalk", "1.14M", "7.83M", "365", "1", "13.7", "2.37"},
    {"superuser", "0.19M", "1.44M", "5", "3", "14.9", "1.56"},
    {"stackoverflow", "2.60M", "63.50M", "5", "3", "48.8", "1.75"},
    {"yahoo", "0.10M", "3.18M", "5", "1", "63.6", "3.51"},
    {"lsbench", "13.12M", "21.04M", "11", "19", "3.21", "1.00"},
};

}  // namespace

int main(int argc, char** argv) {
  const tcsm::BenchArgs args = tcsm::ParseBenchArgs(argc, argv);
  std::cout << "=== Table III: characteristics of datasets ===\n"
            << "(synthetic presets shaped after the paper's Table III; "
               "'paper' columns are the original full-scale values)\n\n";
  tcsm::TablePrinter table({"dataset", "|V|", "|E|", "|Sv|", "|Se|", "davg",
                            "mavg", "paper|V|", "paper|E|", "paper-davg",
                            "paper-mavg"});
  for (const PaperRow& row : kPaper) {
    const tcsm::TemporalDataset ds =
        tcsm::MakePreset(row.name, args.scale);
    const tcsm::DatasetStats s = ds.ComputeStats();
    table.AddRow({row.name, std::to_string(s.num_vertices),
                  std::to_string(s.num_edges),
                  std::to_string(s.num_vertex_labels),
                  std::to_string(s.num_edge_labels),
                  tcsm::FormatDouble(s.avg_degree, 1),
                  tcsm::FormatDouble(s.avg_parallel_edges, 2), row.V, row.E,
                  row.davg, row.mavg});
  }
  table.Print(std::cout);
  return 0;
}
