// Storage scaling: throughput and memory of the label-partitioned,
// slot-recycled graph storage across label-alphabet sizes {1, 4, 16} and
// stream lengths {1x, 10x} the window.
//
// Two modes per cell, both on the same slot-recycled store:
//   * flat        — TcmConfig::partitioned_adjacency = false: every scan
//                   visits all incident entries and filters inline (the
//                   pre-partitioning access pattern).
//   * partitioned — the default: scans touch only the statically feasible
//                   (edge label, neighbor label) bucket.
// The partitioning win grows with the alphabet (more infeasible entries
// skipped) and must be a wash at 1 label (everything shares one bucket);
// the scan counters on each BENCH line quantify the skipped work. The
// 10x-window rows double as the memory story: peak bytes must track the
// window, not the stream length (slot recycling).
//
// Each measurement is one BENCH JSON line (bench_util/bench_json.h).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/experiment.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

using namespace tcsm;

namespace {

struct Cell {
  size_t labels;
  size_t stream_factor;  // stream length in windows
  TemporalDataset dataset;
  std::vector<QueryGraph> queries;
  Timestamp window;
};

struct Measurement {
  double elapsed_ms = 0;
  size_t events = 0;
  size_t peak_bytes = 0;
  size_t peak_event_index = 0;
  uint64_t occurred = 0;
  uint64_t scanned = 0;
  uint64_t matched = 0;
};

Measurement RunMode(const Cell& cell, bool partitioned) {
  TcmConfig config;
  config.partitioned_adjacency = partitioned;
  StreamConfig stream;
  stream.window = cell.window;

  Measurement out;
  for (const QueryGraph& q : cell.queries) {
    SingleQueryContext<TcmEngine> run(
        q, GraphSchema{cell.dataset.directed, cell.dataset.vertex_labels},
        config);
    const StreamResult res = RunStream(cell.dataset, stream, &run);
    out.elapsed_ms += res.elapsed_ms;
    out.events += res.events;
    if (res.peak_memory_bytes > out.peak_bytes) {
      out.peak_event_index = res.peak_memory_event_index;
      out.peak_bytes = res.peak_memory_bytes;
    }
    out.occurred += res.occurred;
    out.scanned += res.adj_entries_scanned;
    out.matched += res.adj_entries_matched;
  }
  return out;
}

void Emit(const Cell& cell, const char* mode, const Measurement& m) {
  const double secs = m.elapsed_ms / 1000.0;
  BenchJsonLine line("storage_scaling");
  line.Field("mode", mode)
      .Field("labels", static_cast<uint64_t>(cell.labels))
      .Field("stream_windows", static_cast<uint64_t>(cell.stream_factor))
      .Field("window", static_cast<uint64_t>(cell.window))
      .Field("events", static_cast<uint64_t>(m.events))
      .Field("elapsed_ms", m.elapsed_ms)
      .Field("events_per_sec",
             secs > 0 ? static_cast<double>(m.events) / secs : 0.0)
      .Field("peak_bytes", static_cast<uint64_t>(m.peak_bytes))
      .Field("peak_event_index", static_cast<uint64_t>(m.peak_event_index))
      .Field("occurred", m.occurred)
      .Field("adj_entries_scanned", m.scanned)
      .Field("adj_entries_matched", m.matched);
  line.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  const Timestamp window =
      std::max<Timestamp>(64, static_cast<Timestamp>(600 * args.scale));

  std::cout << "=== Storage scaling: flat vs label-partitioned adjacency "
               "(window=" << window << " events) ===\n";

  bool ok = true;
  for (const size_t labels : {size_t{1}, size_t{4}, size_t{16}}) {
    for (const size_t factor : {size_t{1}, size_t{10}}) {
      Cell cell;
      cell.labels = labels;
      cell.stream_factor = factor;
      // The unlabeled control cell pays O(candidate-pairs) filter churn
      // per event (every data vertex is compatible with every query
      // vertex), so it runs at a quarter of the window to stay tractable;
      // the {1x, 10x} stream-length axis is relative to the window either
      // way.
      cell.window = labels == 1 ? window / 4 : window;

      SyntheticSpec spec;
      spec.name = "storage_scaling";
      // Hold the per-signature in-window density constant across
      // alphabets: total degree grows with the alphabet (richer traffic)
      // while the live subgraph any one query sees stays comparable. This
      // keeps the 1-label cell tractable (unlabeled matches explode with
      // degree) and makes the 16-label cell degree-heavy, which is the
      // regime the partitioning targets.
      // The 1-label control cell gets a sparser graph (unlabeled match
      // counts grow explosively with degree, and the cell only validates
      // that partitioning costs nothing when every entry shares one
      // bucket); labeled cells concentrate degree so scans matter.
      spec.num_vertices =
          labels == 1 ? static_cast<size_t>(cell.window) / 2
                      : std::max<size_t>(
                            16, static_cast<size_t>(window) / (4 * labels));
      spec.num_edges = factor * static_cast<size_t>(cell.window);
      spec.num_vertex_labels = labels;
      spec.num_edge_labels = std::max<size_t>(1, labels / 4);
      spec.avg_parallel_edges = 1.6;
      spec.degree_skew = 0.9;
      spec.seed = args.seed + labels;
      cell.dataset = GenerateSynthetic(spec);

      QueryGenOptions opt;
      opt.num_edges = 4;
      opt.density = 1.0;
      opt.window = cell.window;
      cell.queries = GenerateQuerySet(cell.dataset, opt,
                                      args.queries_per_set, args.seed + 1);
      if (cell.queries.empty()) {
        std::cerr << "could not generate queries for labels=" << labels
                  << "\n";
        return 1;
      }

      const Measurement flat = RunMode(cell, /*partitioned=*/false);
      Emit(cell, "flat", flat);
      const Measurement part = RunMode(cell, /*partitioned=*/true);
      Emit(cell, "partitioned", part);

      const double speedup =
          part.elapsed_ms > 0 ? flat.elapsed_ms / part.elapsed_ms : 0.0;
      std::cout << "labels=" << labels << " stream=" << factor
                << "x: flat " << flat.elapsed_ms << " ms, partitioned "
                << part.elapsed_ms << " ms (" << speedup
                << "x), scans " << flat.scanned << " -> " << part.scanned
                << ", peak " << part.peak_bytes / 1024 << " KiB\n";
      if (flat.occurred != part.occurred || flat.matched != part.matched) {
        std::cerr << "ERROR: flat/partitioned results diverged\n";
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
