// Multi-query scaling: events/sec and peak memory vs. the number of
// concurrently monitored queries (1, 4, 16, 64) on a synthetic preset.
// Two modes per query count:
//   * shared      — one MultiQueryEngine: the SharedStreamContext applies
//                   each event to the one canonical graph once and fans it
//                   out to N per-query engines (the post-refactor design).
//   * replicated  — N independent single-query contexts, each owning a
//                   private copy of the windowed graph (the
//                   pre-refactor per-engine-copy baseline, reproduced for
//                   an apples-to-apples before/after comparison).
// Each measurement is emitted as a BENCH JSON line (bench_util/
// bench_json.h) so the sharing win is recorded in the perf trajectory.
//
// The workload mirrors the deployment story of the multi-query engine
// (many selective patterns, most events irrelevant to most patterns):
// a labeled interaction graph with 8 vertex / 4 edge labels and 4-edge
// queries, so per-event index work is small and the per-query graph
// maintenance of the replicated mode dominates.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util/bench_json.h"
#include "common/timer.h"
#include "bench_util/experiment.h"
#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

using namespace tcsm;

namespace {

struct Measurement {
  double elapsed_ms = 0;
  size_t events = 0;
  size_t peak_bytes = 0;
  uint64_t occurred = 0;
  uint64_t adj_entries_scanned = 0;
  uint64_t adj_entries_matched = 0;
};

Measurement RunShared(const TemporalDataset& ds,
                      const std::vector<QueryGraph>& queries,
                      const StreamConfig& config) {
  MultiQueryEngine engine(queries, SchemaOf(ds));
  const StreamResult res = RunStream(ds, config, &engine);
  return Measurement{res.elapsed_ms, res.events, res.peak_memory_bytes,
                     res.occurred, res.adj_entries_scanned,
                     res.adj_entries_matched};
}

Measurement RunReplicated(const TemporalDataset& ds,
                          const std::vector<QueryGraph>& queries,
                          const StreamConfig& config) {
  // One private context (and thus one private graph copy) per query, with
  // every event forwarded to all contexts before the next one — exactly
  // the pre-refactor MultiQueryEngine behavior, where each per-query
  // engine applied the event to its own graph.
  std::vector<std::unique_ptr<SingleQueryContext<TcmEngine>>> runs;
  runs.reserve(queries.size());
  for (const QueryGraph& q : queries) {
    runs.push_back(
        std::make_unique<SingleQueryContext<TcmEngine>>(q, SchemaOf(ds)));
  }

  Measurement out;
  const size_t n = ds.edges.size();
  const size_t sample_every = std::max<size_t>(64, n * 2 / 32);
  StopWatch watch;
  size_t arr = 0;
  size_t exp = 0;
  while (arr < n || exp < arr) {
    const bool do_expire =
        exp < arr && (arr >= n || ds.edges[exp].ts + config.window <=
                                      ds.edges[arr].ts);
    if (do_expire) {
      for (auto& run : runs) run->OnEdgeExpiry(ds.edges[exp]);
      ++exp;
    } else {
      for (auto& run : runs) run->OnEdgeArrival(ds.edges[arr]);
      ++arr;
    }
    ++out.events;
    if (out.events % sample_every == 0) {
      // The contexts coexist, so their footprints add.
      size_t current = 0;
      for (auto& run : runs) current += run->EstimateMemoryBytes();
      out.peak_bytes = std::max(out.peak_bytes, current);
    }
  }
  out.elapsed_ms = watch.ElapsedMs();
  {
    // Final observation, mirroring RunStream's post-loop sample.
    size_t current = 0;
    for (auto& run : runs) current += run->EstimateMemoryBytes();
    out.peak_bytes = std::max(out.peak_bytes, current);
  }
  for (auto& run : runs) {
    const EngineCounters c = run->AggregateCounters();
    out.occurred += c.occurred;
    out.adj_entries_scanned += c.adj_entries_scanned;
    out.adj_entries_matched += c.adj_entries_matched;
  }
  return out;
}

void Emit(const char* mode, size_t num_queries, const Measurement& m) {
  const double secs = m.elapsed_ms / 1000.0;
  BenchJsonLine line("multiquery_scaling");
  line.Field("mode", mode)
      .Field("queries", static_cast<uint64_t>(num_queries))
      .Field("events", static_cast<uint64_t>(m.events))
      .Field("elapsed_ms", m.elapsed_ms)
      .Field("events_per_sec",
             secs > 0 ? static_cast<double>(m.events) / secs : 0.0)
      .Field("peak_bytes", static_cast<uint64_t>(m.peak_bytes))
      .Field("occurred", m.occurred)
      .Field("adj_entries_scanned", m.adj_entries_scanned)
      .Field("adj_entries_matched", m.adj_entries_matched);
  line.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  // Selective patterns over a richly labeled graph: most events are
  // irrelevant to most queries, as in the IDS/fraud deployments that
  // motivate multi-query monitoring.
  SyntheticSpec spec;
  spec.name = "multiquery";
  spec.num_vertices =
      std::max<size_t>(16, static_cast<size_t>(1200 * args.scale));
  spec.num_edges =
      std::max<size_t>(64, static_cast<size_t>(40000 * args.scale));
  spec.num_vertex_labels = 16;
  spec.num_edge_labels = 4;
  spec.avg_parallel_edges = 1.5;
  spec.seed = args.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);
  const Timestamp window =
      std::max<Timestamp>(1, static_cast<Timestamp>(ds.NumEdges() / 16));

  QueryGenOptions opt;
  opt.num_edges = 5;
  opt.density = 1.0;
  opt.window = window;
  const size_t kMaxQueries = 64;
  const std::vector<QueryGraph> pool =
      GenerateQuerySet(ds, opt, kMaxQueries, args.seed + 1);
  if (pool.empty()) {
    std::cerr << "could not generate any query for the preset\n";
    return 1;
  }

  std::cout << "=== Multi-query scaling: shared graph vs per-query copies "
               "(|E|=" << ds.NumEdges() << ", window=" << window << ") ===\n";

  StreamConfig config;
  config.window = window;
  for (const size_t n : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    // Cycle the pool if it yielded fewer than n distinct queries.
    std::vector<QueryGraph> queries;
    queries.reserve(n);
    for (size_t i = 0; i < n; ++i) queries.push_back(pool[i % pool.size()]);

    const Measurement shared = RunShared(ds, queries, config);
    Emit("shared", n, shared);
    const Measurement replicated = RunReplicated(ds, queries, config);
    Emit("replicated", n, replicated);
    const double speedup = shared.elapsed_ms > 0
                               ? replicated.elapsed_ms / shared.elapsed_ms
                               : 0.0;
    std::cout << "n=" << n << ": shared " << shared.elapsed_ms
              << " ms, replicated " << replicated.elapsed_ms << " ms ("
              << speedup << "x), peak " << shared.peak_bytes / 1024
              << " KiB vs " << replicated.peak_bytes / 1024 << " KiB\n";
    if (shared.occurred != replicated.occurred) {
      std::cerr << "ERROR: shared/replicated match counts diverged\n";
      return 1;
    }
  }
  return 0;
}
