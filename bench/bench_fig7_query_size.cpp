// Figure 7: query processing time (a) and number of solved queries (b)
// for varying query size {5,7,9,11,13,15}, density 0.50, window 30k.
// Engines: TCM, Timing, SymBi(+post), RapidFlow-role local enumerator.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"
#include "querygen/query_generator.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const std::vector<size_t> sizes = {5, 7, 9, 11, 13, 15};
  const double density = 0.5;
  const Timestamp window = 30000;
  const std::vector<EngineKind> engines = {
      EngineKind::kTcm, EngineKind::kTiming, EngineKind::kSymbiPost,
      EngineKind::kLocalEnum};

  std::cout << "=== Figure 7: varying query size (density 0.50, window 30k) "
               "===\n"
            << "expected shape: TCM fastest and solves the most queries; "
               "baselines degrade sharply as query size grows\n\n";

  for (const std::string& name : args.datasets) {
    const TemporalDataset ds = MakePreset(name, args.scale);
    const Timestamp w = EffectiveWindow(ds, window);
    std::cout << "--- " << name << " (|E|=" << ds.NumEdges()
              << ", window=" << w << ", " << args.queries_per_set
              << " queries/set, limit=" << args.time_limit_ms << "ms) ---\n";
    TablePrinter time_table({"size", "TCM ms", "Timing ms", "SymBi ms",
                             "RapidFlow* ms"});
    TablePrinter solved_table({"size", "TCM", "Timing", "SymBi",
                               "RapidFlow*", "of"});
    for (const size_t size : sizes) {
      QueryGenOptions opt;
      opt.num_edges = size;
      opt.density = density;
      opt.window = w;
      const std::vector<QueryGraph> queries = GenerateQuerySet(
          ds, opt, args.queries_per_set, args.seed + size);
      if (queries.empty()) {
        time_table.AddRow({std::to_string(size), "-", "-", "-", "-"});
        continue;
      }
      std::vector<QuerySetResult> results;
      results.reserve(engines.size());
      for (const EngineKind kind : engines) {
        results.push_back(
            RunQuerySet(ds, queries, kind, w, args.time_limit_ms));
      }
      std::vector<std::string> trow{std::to_string(size)};
      std::vector<std::string> srow{std::to_string(size)};
      for (size_t k = 0; k < engines.size(); ++k) {
        trow.push_back(FormatDouble(
            AverageElapsedMs(results, k, args.time_limit_ms), 2));
        srow.push_back(std::to_string(results[k].NumSolved()));
      }
      srow.push_back(std::to_string(queries.size()));
      time_table.AddRow(std::move(trow));
      solved_table.AddRow(std::move(srow));
    }
    std::cout << "(a) average elapsed time\n";
    time_table.Print(std::cout);
    std::cout << "(b) solved queries\n";
    solved_table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
