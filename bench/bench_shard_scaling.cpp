// Sharded execution scaling: events/sec versus the shard count of the
// ShardedStreamContext (1, 2, 4, 8 shards, one pool lane per shard) at
// 16 and 64 concurrently monitored queries. The 1-shard measurement IS
// the serial path (the pipeline bypasses the pool at one lane), so the
// speedup column reads directly as "vertex-partitioned fan-out vs.
// serial". Each measurement is emitted as a BENCH JSON line
// (bench_util/bench_json.h) with the shard count as an identity key.
//
// The workload mirrors bench_parallel_scaling (small label alphabet,
// wide window) so most events survive TcmEngine::Relevant and reach the
// filter/DCS/backtracking work that sharding distributes; a bench
// dominated by irrelevant events would measure only pipeline overhead.
// Correctness is re-checked on the fly: every shard count must report
// exactly the occurred count of an unsharded MultiQueryEngine run (the
// byte-level differential guarantee lives in stream_fuzz_test's
// ShardedMatchesSerial scenario).
#include <iostream>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/experiment.h"
#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"
#include "shard/sharded_multi_engine.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  SyntheticSpec spec;
  spec.name = "shard";
  spec.num_vertices =
      std::max<size_t>(16, static_cast<size_t>(400 * args.scale));
  spec.num_edges =
      std::max<size_t>(64, static_cast<size_t>(10000 * args.scale));
  spec.num_vertex_labels = 4;
  spec.num_edge_labels = 2;
  spec.avg_parallel_edges = 2.0;
  spec.seed = args.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);
  const Timestamp window =
      std::max<Timestamp>(1, static_cast<Timestamp>(ds.NumEdges() / 10));

  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  opt.window = window;
  const size_t kMaxQueries = 64;
  const std::vector<QueryGraph> pool =
      GenerateQuerySet(ds, opt, kMaxQueries, args.seed + 1);
  if (pool.empty()) {
    std::cerr << "could not generate any query for the preset\n";
    return 1;
  }

  std::cout << "=== Sharded execution scaling: events/sec vs shards "
               "(|E|=" << ds.NumEdges() << ", window=" << window << ") ===\n";

  StreamConfig config;
  config.window = window;
  for (const size_t n : {size_t{16}, size_t{64}}) {
    std::vector<QueryGraph> queries;
    queries.reserve(n);
    for (size_t i = 0; i < n; ++i) queries.push_back(pool[i % pool.size()]);

    // Unsharded ground truth for the on-the-fly correctness check.
    uint64_t serial_occurred = 0;
    {
      MultiQueryEngine reference(queries, SchemaOf(ds), TcmConfig{},
                                 /*num_threads=*/1);
      serial_occurred = RunStream(ds, config, &reference).occurred;
    }

    double serial_ms = 0;
    for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      ShardedMultiQueryEngine engine(queries, SchemaOf(ds), shards,
                                     TcmConfig{});
      const StreamResult res = RunStream(ds, config, &engine);
      if (res.occurred != serial_occurred) {
        std::cerr << "ERROR: occurred counts diverged at " << shards
                  << " shards\n";
        return 1;
      }
      if (shards == 1) serial_ms = res.elapsed_ms;
      const double secs = res.elapsed_ms / 1000.0;
      const double speedup =
          res.elapsed_ms > 0 ? serial_ms / res.elapsed_ms : 0.0;
      BenchJsonLine line("shard_scaling");
      line.Field("queries", static_cast<uint64_t>(n))
          .Field("shards", static_cast<uint64_t>(res.num_shards))
          .Field("threads", static_cast<uint64_t>(res.num_threads))
          .Field("events", static_cast<uint64_t>(res.events))
          .Field("elapsed_ms", res.elapsed_ms)
          .Field("events_per_sec",
                 secs > 0 ? static_cast<double>(res.events) / secs : 0.0)
          .Field("occurred", res.occurred)
          .Field("speedup_vs_serial", speedup);
      line.Print(std::cout);
      std::cout << "queries=" << n << " shards=" << shards << ": "
                << res.elapsed_ms << " ms (" << speedup << "x serial)\n";
    }
  }
  return 0;
}
