// Ingest parse throughput: StreamReader pull loop over the same synthetic
// stream serialized in each `.tel` framing — text, binary v2 with varint
// delta timestamps, binary v2 with fixed-width records. No engine is
// attached: the loop measures the parser alone (the stage the binary
// framing exists to accelerate; docs/FILE_FORMATS.md §binary-v2).
//
// The `speedup` field (binary vs text events/sec at the same scale) is
// the acceptance metric: >= 3x for either binary encoding on the default
// preset. `events_per_sec` and `mbytes_per_sec` feed the perf-regression
// gate (tools/bench_compare.py against bench/baselines/). Record counts
// are cross-checked across framings on the fly: a framing that parses
// fast by dropping records fails the run.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/experiment.h"
#include "datasets/synthetic.h"
#include "io/stream_reader.h"
#include "io/stream_writer.h"

using namespace tcsm;

namespace {

struct Framing {
  const char* name;
  bool binary;
  bool varint;
};

/// Best-of-`iters` wall time for one full pull of `tel`, in seconds.
/// Returns the per-iteration record count through *records.
double ParseSeconds(const std::string& tel, const char* name, size_t iters,
                    uint64_t* records) {
  double best = 0.0;
  for (size_t it = 0; it < iters; ++it) {
    std::istringstream in(tel);
    StreamReader reader(in, name);
    Status s = reader.Init();
    if (!s.ok()) {
      std::cerr << "ERROR: " << s.ToString() << "\n";
      std::exit(1);
    }
    uint64_t n = 0;
    const auto start = std::chrono::steady_clock::now();
    StreamRecord rec;
    bool done = false;
    while (true) {
      s = reader.Next(&rec, &done);
      if (!s.ok()) {
        std::cerr << "ERROR: " << s.ToString() << "\n";
        std::exit(1);
      }
      if (done) break;
      ++n;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (it == 0 || secs < best) best = secs;
    *records = n;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  SyntheticSpec spec;
  spec.name = "io_throughput";
  spec.num_vertices =
      std::max<size_t>(64, static_cast<size_t>(5000 * args.scale));
  spec.num_edges =
      std::max<size_t>(1000, static_cast<size_t>(200000 * args.scale));
  spec.num_vertex_labels = 4;
  spec.num_edge_labels = 4;
  spec.avg_parallel_edges = 2.0;
  spec.seed = args.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);
  const Timestamp window =
      std::max<Timestamp>(1, static_cast<Timestamp>(ds.NumEdges() / 10));

  const Framing framings[] = {
      {"text", false, false},
      {"binary_varint", true, true},
      {"binary_fixed", true, false},
  };

  std::cout << "=== Ingest parse throughput: text vs binary v2 (|E|="
            << ds.NumEdges() << ", window=" << window << ") ===\n";

  const size_t kIters = 5;
  double text_eps = 0.0;
  uint64_t reference_records = 0;
  for (const Framing& f : framings) {
    TelWriteOptions opts;
    opts.window = window;
    opts.binary = f.binary;
    opts.varint_timestamps = f.varint;
    std::ostringstream out;
    const Status s = WriteTel(ds, opts, out);
    if (!s.ok()) {
      std::cerr << "ERROR: " << s.ToString() << "\n";
      return 1;
    }
    const std::string tel = out.str();

    uint64_t records = 0;
    const double secs = ParseSeconds(tel, f.name, kIters, &records);
    if (reference_records == 0) {
      reference_records = records;
    } else if (records != reference_records) {
      std::cerr << "ERROR: record counts diverged (" << f.name << " parsed "
                << records << ", text parsed " << reference_records << ")\n";
      return 1;
    }
    const double eps = secs > 0 ? static_cast<double>(records) / secs : 0.0;
    const double mbps =
        secs > 0 ? static_cast<double>(tel.size()) / secs / (1024.0 * 1024.0)
                 : 0.0;
    if (!f.binary) text_eps = eps;
    const double speedup = !f.binary || text_eps <= 0 ? 1.0 : eps / text_eps;
    BenchJsonLine line("io_throughput");
    line.Field("format", f.name)
        .Field("events", records)
        .Field("stream_bytes", static_cast<uint64_t>(tel.size()))
        .Field("elapsed_ms", secs * 1000.0)
        .Field("events_per_sec", eps)
        .Field("mbytes_per_sec", mbps)
        .Field("speedup", speedup);
    line.Print(std::cout);
    std::cout << f.name << ": " << secs * 1000.0 << " ms, "
              << static_cast<uint64_t>(eps) << " events/sec"
              << (f.binary ? " (" + std::to_string(speedup) + "x text)"
                           : std::string())
              << "\n";
  }
  return 0;
}
