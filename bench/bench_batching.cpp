// Micro-batching speedup: events/sec with the driver's same-timestamp
// coalescing on (default max_batch) versus off (max_batch = 1, the
// historical one-call-per-event behavior), on a same-timestamp-heavy
// synthetic stream (SyntheticSpec::ts_coalesce) at 1 and 4 threads.
//
// What the ratio measures (DESIGN.md §9): the match stream is identical
// in every configuration — batching only amortizes per-event fixed
// costs. Serially that is the driver-loop bookkeeping (small); through
// the parallel fan-out a batch of k same-timestamp events replaces k
// condition-variable pool barriers (1 per arrival, 2 per expiration)
// with ONE pipelined pool job whose step fences are spin/yield waits —
// the dominant per-event cost of fine-grained fan-out, especially when
// workers outnumber cores. Correctness is re-checked on the fly: every
// configuration must report the unbatched serial run's occurred count.
//
// The `batch_speedup` field (batched vs unbatched at the same thread
// count) is the acceptance metric: >= 1.3x at 4 threads on the default
// preset. `events_per_sec` feeds the perf-regression gate
// (tools/bench_compare.py against bench/baselines/).
#include <iostream>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/experiment.h"
#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  SyntheticSpec spec;
  spec.name = "batching";
  spec.num_vertices =
      std::max<size_t>(16, static_cast<size_t>(400 * args.scale));
  spec.num_edges =
      std::max<size_t>(64, static_cast<size_t>(10000 * args.scale));
  // Wide label alphabet: most events are statically irrelevant to any one
  // engine, so the per-event cost is dominated by the fan-out machinery
  // itself — the fixed cost that batching amortizes. (A match-heavy
  // preset would only measure backtracking, which batching leaves
  // untouched; bench_parallel_scaling covers that regime.)
  spec.num_vertex_labels = 8;
  spec.num_edge_labels = 4;
  spec.avg_parallel_edges = 2.0;
  // Same-second burst feed: runs of 8 consecutive arrivals share one
  // timestamp, so the driver's equal-ts coalescing has real batches.
  spec.ts_coalesce = 8;
  spec.seed = args.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);
  // Window in coalesced-instant units (|E| / ts_coalesce distinct
  // timestamps): hold ~1/10 of the stream live, as bench_parallel_scaling.
  const Timestamp window = std::max<Timestamp>(
      1, static_cast<Timestamp>(ds.NumEdges() / spec.ts_coalesce / 10));

  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  opt.window = window;
  const size_t kQueries = 16;
  const std::vector<QueryGraph> pool =
      GenerateQuerySet(ds, opt, kQueries, args.seed + 1);
  if (pool.empty()) {
    std::cerr << "could not generate any query for the preset\n";
    return 1;
  }
  std::vector<QueryGraph> queries;
  queries.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) queries.push_back(pool[i % pool.size()]);

  std::cout << "=== Micro-batching: events/sec, batched vs unbatched "
               "(|E|=" << ds.NumEdges() << ", ts_coalesce=" << spec.ts_coalesce
            << ", window=" << window << ", queries=" << kQueries << ") ===\n";

  uint64_t reference_occurred = 0;
  bool have_reference = false;
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    double unbatched_ms = 0;
    for (const size_t max_batch : {size_t{1}, size_t{0}}) {
      StreamConfig config;
      config.window = window;
      config.max_batch = max_batch;
      MultiQueryEngine engine(queries, SchemaOf(ds), TcmConfig{}, threads);
      const StreamResult res = RunStream(ds, config, &engine);
      if (!have_reference) {
        have_reference = true;
        reference_occurred = res.occurred;
      } else if (res.occurred != reference_occurred) {
        std::cerr << "ERROR: occurred counts diverged (threads=" << threads
                  << ", max_batch=" << max_batch << ")\n";
        return 1;
      }
      const bool batched = max_batch != 1;
      if (!batched) unbatched_ms = res.elapsed_ms;
      const double secs = res.elapsed_ms / 1000.0;
      const double speedup =
          batched && res.elapsed_ms > 0 ? unbatched_ms / res.elapsed_ms : 1.0;
      BenchJsonLine line("batching");
      line.Field("queries", static_cast<uint64_t>(kQueries))
          .Field("threads", static_cast<uint64_t>(res.num_threads))
          .Field("batched", static_cast<uint64_t>(batched ? 1 : 0))
          .Field("events", static_cast<uint64_t>(res.events))
          .Field("elapsed_ms", res.elapsed_ms)
          .Field("events_per_sec",
                 secs > 0 ? static_cast<double>(res.events) / secs : 0.0)
          .Field("occurred", res.occurred)
          .Field("batch_speedup", speedup);
      line.Print(std::cout);
      std::cout << "threads=" << threads << " "
                << (batched ? "batched" : "unbatched") << ": "
                << res.elapsed_ms << " ms"
                << (batched ? " (" + std::to_string(speedup) + "x unbatched)"
                            : std::string())
                << "\n";
    }
  }
  return 0;
}
