// Micro-benchmarks (google-benchmark) for the core operations: query DAG
// construction, max-min timestamp maintenance, DCS updates, full TCM event
// processing, and the workload generators.
#include <benchmark/benchmark.h>

#include "core/shared_context.h"
#include "core/tcm_engine.h"
#include "dag/query_dag.h"
#include "datasets/presets.h"
#include "datasets/synthetic.h"
#include "dcs/dcs_index.h"
#include "filter/maxmin_index.h"
#include "querygen/query_generator.h"
#include "testing/oracle.h"

namespace tcsm {
namespace {

TemporalDataset BenchDataset() {
  SyntheticSpec spec;
  spec.num_vertices = 400;
  spec.num_edges = 6000;
  spec.num_vertex_labels = 4;
  spec.avg_parallel_edges = 2.5;
  spec.seed = 1234;
  return GenerateSynthetic(spec);
}

QueryGraph BenchQuery(size_t edges, double density, uint64_t seed) {
  const TemporalDataset ds = BenchDataset();
  QueryGenOptions opt;
  opt.num_edges = edges;
  opt.density = density;
  Rng rng(seed);
  QueryGraph q;
  const bool ok = GenerateQuery(ds, opt, &rng, &q);
  TCSM_CHECK(ok);
  return q;
}

void BM_BuildBestDag(benchmark::State& state) {
  const QueryGraph q =
      BenchQuery(static_cast<size_t>(state.range(0)), 0.5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryDag::BuildBestDag(q));
  }
}
BENCHMARK(BM_BuildBestDag)->Arg(5)->Arg(9)->Arg(15);

void BM_FilterMaintenance(benchmark::State& state) {
  const QueryGraph q =
      BenchQuery(static_cast<size_t>(state.range(0)), 0.5, 11);
  const QueryDag dag = QueryDag::BuildBestDag(q);
  const TemporalDataset ds = BenchDataset();
  for (auto _ : state) {
    state.PauseTiming();
    TemporalGraph g;
    g.EnsureVertices(ds.vertex_labels.size());
    for (size_t v = 0; v < ds.vertex_labels.size(); ++v) {
      g.SetVertexLabel(static_cast<VertexId>(v), ds.vertex_labels[v]);
    }
    MaxMinIndex index(&g, &dag);
    std::vector<UvPair> touched;
    state.ResumeTiming();
    for (size_t i = 0; i < 2000; ++i) {
      const TemporalEdge& e = ds.edges[i];
      g.InsertEdge(e.src, e.dst, e.ts, e.label);
      touched.clear();
      index.OnEdgeInserted(g.Edge(static_cast<EdgeId>(i)), &touched);
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FilterMaintenance)->Arg(5)->Arg(9);

void BM_DcsInsertRemove(benchmark::State& state) {
  const QueryGraph q = BenchQuery(7, 0.5, 13);
  const QueryDag dag = QueryDag::BuildBestDag(q);
  const TemporalDataset ds = BenchDataset();
  TemporalGraph g;
  g.EnsureVertices(ds.vertex_labels.size());
  for (size_t v = 0; v < ds.vertex_labels.size(); ++v) {
    g.SetVertexLabel(static_cast<VertexId>(v), ds.vertex_labels[v]);
  }
  for (const TemporalEdge& e : ds.edges) {
    g.InsertEdge(e.src, e.dst, e.ts, e.label);
  }
  // Collect feasible triples once.
  struct Triple {
    EdgeId qe;
    EdgeId id;
    bool flip;
  };
  std::vector<Triple> triples;
  for (EdgeId id = 0; id < 3000; ++id) {
    for (EdgeId qe = 0; qe < q.NumEdges(); ++qe) {
      for (const bool flip : {false, true}) {
        if (StaticFeasible(q, g, qe, g.Edge(id), flip)) {
          triples.push_back(Triple{qe, id, flip});
        }
      }
    }
  }
  for (auto _ : state) {
    DcsIndex dcs(&q, &dag);
    for (const Triple& t : triples) dcs.Insert(t.qe, g.Edge(t.id), t.flip);
    for (const Triple& t : triples) dcs.Remove(t.qe, g.Edge(t.id), t.flip);
    benchmark::DoNotOptimize(dcs.stats().num_edges);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(triples.size()) * 2);
}
BENCHMARK(BM_DcsInsertRemove);

void BM_TcmStreamEvents(benchmark::State& state) {
  const TemporalDataset ds = BenchDataset();
  const QueryGraph q =
      BenchQuery(static_cast<size_t>(state.range(0)), 0.5, 17);
  for (auto _ : state) {
    SingleQueryContext<TcmEngine> run(
        q, GraphSchema{ds.directed, ds.vertex_labels});
    CountingSink sink;
    run.engine().set_sink(&sink);
    const Timestamp window = 800;
    size_t arr = 0;
    size_t exp = 0;
    while (arr < ds.edges.size() || exp < arr) {
      const bool do_expire =
          exp < arr && (arr >= ds.edges.size() ||
                        ds.edges[exp].ts + window <= ds.edges[arr].ts);
      if (do_expire) {
        run.OnEdgeExpiry(ds.edges[exp++]);
      } else {
        run.OnEdgeArrival(ds.edges[arr++]);
      }
    }
    benchmark::DoNotOptimize(sink.occurred());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.edges.size()) * 2);
}
BENCHMARK(BM_TcmStreamEvents)->Arg(5)->Arg(7);

void BM_SyntheticGeneration(benchmark::State& state) {
  SyntheticSpec spec;
  spec.num_vertices = 1000;
  spec.num_edges = static_cast<size_t>(state.range(0));
  spec.avg_parallel_edges = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateSynthetic(spec));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticGeneration)->Arg(10000)->Arg(50000);

void BM_QueryGeneration(benchmark::State& state) {
  const TemporalDataset ds = BenchDataset();
  QueryGenOptions opt;
  opt.num_edges = static_cast<size_t>(state.range(0));
  opt.density = 0.5;
  Rng rng(19);
  for (auto _ : state) {
    QueryGraph q;
    benchmark::DoNotOptimize(GenerateQuery(ds, opt, &rng, &q));
  }
}
BENCHMARK(BM_QueryGeneration)->Arg(5)->Arg(15);

}  // namespace
}  // namespace tcsm

BENCHMARK_MAIN();
