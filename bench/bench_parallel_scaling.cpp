// Parallel multi-query scaling: events/sec versus the thread count of
// the ParallelStreamContext fan-out (1, 2, 4, 8 threads) at 16 and 64
// concurrently monitored queries. The 1-thread measurement IS the serial
// shared context (the pool bypasses itself at one thread), so the
// speedup column reads directly as "sharded fan-out vs. PR 2 serial
// baseline". Each measurement is emitted as a BENCH JSON line
// (bench_util/bench_json.h).
//
// The workload differs deliberately from bench_multiquery_scaling: that
// bench maximizes per-event *irrelevance* (16 vertex labels, most events
// skipped by TcmEngine::Relevant) to showcase shared-graph maintenance,
// which would make a parallelism bench measure only barrier overhead.
// Here the label alphabet is small and the window wide, so most events
// reach the per-engine filter/DCS/backtracking work that the pool
// actually shards. Correctness is re-checked on the fly: every thread
// count must report exactly the serial run's occurred/expired counts
// (the differential guarantee lives in stream_fuzz_test's
// ParallelMatchesSerialMultiQuery scenario).
#include <iostream>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/experiment.h"
#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);

  SyntheticSpec spec;
  spec.name = "parallel";
  spec.num_vertices =
      std::max<size_t>(16, static_cast<size_t>(400 * args.scale));
  spec.num_edges =
      std::max<size_t>(64, static_cast<size_t>(10000 * args.scale));
  spec.num_vertex_labels = 4;
  spec.num_edge_labels = 2;
  spec.avg_parallel_edges = 2.0;
  spec.seed = args.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);
  const Timestamp window =
      std::max<Timestamp>(1, static_cast<Timestamp>(ds.NumEdges() / 10));

  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  opt.window = window;
  const size_t kMaxQueries = 64;
  const std::vector<QueryGraph> pool =
      GenerateQuerySet(ds, opt, kMaxQueries, args.seed + 1);
  if (pool.empty()) {
    std::cerr << "could not generate any query for the preset\n";
    return 1;
  }

  std::cout << "=== Parallel fan-out scaling: events/sec vs threads "
               "(|E|=" << ds.NumEdges() << ", window=" << window << ") ===\n";

  StreamConfig config;
  config.window = window;
  for (const size_t n : {size_t{16}, size_t{64}}) {
    std::vector<QueryGraph> queries;
    queries.reserve(n);
    for (size_t i = 0; i < n; ++i) queries.push_back(pool[i % pool.size()]);

    double serial_ms = 0;
    uint64_t serial_occurred = 0;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      MultiQueryEngine engine(queries, SchemaOf(ds), TcmConfig{}, threads);
      const StreamResult res = RunStream(ds, config, &engine);
      if (threads == 1) {
        serial_ms = res.elapsed_ms;
        serial_occurred = res.occurred;
      } else if (res.occurred != serial_occurred) {
        std::cerr << "ERROR: occurred counts diverged at " << threads
                  << " threads\n";
        return 1;
      }
      const double secs = res.elapsed_ms / 1000.0;
      const double speedup =
          res.elapsed_ms > 0 ? serial_ms / res.elapsed_ms : 0.0;
      BenchJsonLine line("parallel_scaling");
      line.Field("queries", static_cast<uint64_t>(n))
          .Field("threads", static_cast<uint64_t>(res.num_threads))
          .Field("events", static_cast<uint64_t>(res.events))
          .Field("elapsed_ms", res.elapsed_ms)
          .Field("events_per_sec",
                 secs > 0 ? static_cast<double>(res.events) / secs : 0.0)
          .Field("occurred", res.occurred)
          .Field("speedup_vs_serial", speedup);
      line.Print(std::cout);
      std::cout << "queries=" << n << " threads=" << threads << ": "
                << res.elapsed_ms << " ms (" << speedup << "x serial)\n";
    }
  }
  return 0;
}
