// Figure 10: average peak memory for varying query size (density 0.50,
// window 30k). Expected shape: Timing's materialized partial embeddings
// dwarf TCM's polynomial-space index, and the gap widens with query size.
// Memory is the engines' accounting-based estimate (see DESIGN.md §5:
// all engines share one process here, so `ps` peaks are not comparable).
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"
#include "querygen/query_generator.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const std::vector<size_t> sizes = {5, 7, 9, 11, 13, 15};
  const double density = 0.5;
  const Timestamp window = 30000;
  const std::vector<EngineKind> engines = {
      EngineKind::kTcm, EngineKind::kTiming, EngineKind::kSymbiPost,
      EngineKind::kLocalEnum};

  std::cout << "=== Figure 10: average peak memory (MB) for varying query "
               "size ===\n\n";

  for (const std::string& name : args.datasets) {
    const TemporalDataset ds = MakePreset(name, args.scale);
    const Timestamp w = EffectiveWindow(ds, window);
    std::cout << "--- " << name << " ---\n";
    TablePrinter table({"size", "TCM MB", "Timing MB", "SymBi MB",
                        "RapidFlow* MB", "Timing/TCM"});
    for (const size_t size : sizes) {
      QueryGenOptions opt;
      opt.num_edges = size;
      opt.density = density;
      opt.window = w;
      const std::vector<QueryGraph> queries = GenerateQuerySet(
          ds, opt, args.queries_per_set, args.seed + size);
      if (queries.empty()) continue;
      std::vector<double> mb;
      for (const EngineKind kind : engines) {
        const QuerySetResult r =
            RunQuerySet(ds, queries, kind, w, args.time_limit_ms);
        mb.push_back(r.AvgPeakMemory() / (1024.0 * 1024.0));
      }
      table.AddRow({std::to_string(size), FormatDouble(mb[0], 2),
                    FormatDouble(mb[1], 2), FormatDouble(mb[2], 2),
                    FormatDouble(mb[3], 2),
                    FormatDouble(mb[0] > 0 ? mb[1] / mb[0] : 0, 1)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
