// Figure 11: effectiveness of the two techniques, varying query size
// (density 0.50, window 30k):
//   SymBi        — no temporal filtering, post-check (baseline)
//   TCM-Pruning  — TC-matchable edge filtering only (Section IV)
//   TCM          — filtering + time-constrained pruning (Section V)
// Expected shape: TCM-Pruning ≫ SymBi (filtering does the heavy lifting);
// TCM adds a further constant-factor speedup.
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"
#include "querygen/query_generator.h"

using namespace tcsm;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const std::vector<size_t> sizes = {5, 7, 9, 11, 13, 15};
  const double density = 0.5;
  const Timestamp window = 30000;
  const std::vector<EngineKind> engines = {
      EngineKind::kSymbiPost, EngineKind::kTcmPruning, EngineKind::kTcm};

  std::cout << "=== Figure 11: evaluating techniques for varying query size "
               "===\n\n";

  for (const std::string& name : args.datasets) {
    const TemporalDataset ds = MakePreset(name, args.scale);
    const Timestamp w = EffectiveWindow(ds, window);
    std::cout << "--- " << name << " ---\n";
    TablePrinter time_table({"size", "SymBi ms", "TCM-Pruning ms", "TCM ms",
                             "Pruning speedup"});
    TablePrinter solved_table(
        {"size", "SymBi", "TCM-Pruning", "TCM", "of"});
    for (const size_t size : sizes) {
      QueryGenOptions opt;
      opt.num_edges = size;
      opt.density = density;
      opt.window = w;
      const std::vector<QueryGraph> queries = GenerateQuerySet(
          ds, opt, args.queries_per_set, args.seed + size);
      if (queries.empty()) continue;
      std::vector<QuerySetResult> results;
      for (const EngineKind kind : engines) {
        results.push_back(
            RunQuerySet(ds, queries, kind, w, args.time_limit_ms));
      }
      const double symbi = AverageElapsedMs(results, 0, args.time_limit_ms);
      const double nopr = AverageElapsedMs(results, 1, args.time_limit_ms);
      const double tcm = AverageElapsedMs(results, 2, args.time_limit_ms);
      time_table.AddRow({std::to_string(size), FormatDouble(symbi, 2),
                         FormatDouble(nopr, 2), FormatDouble(tcm, 2),
                         FormatDouble(tcm > 0 ? nopr / tcm : 0, 2)});
      solved_table.AddRow({std::to_string(size),
                           std::to_string(results[0].NumSolved()),
                           std::to_string(results[1].NumSolved()),
                           std::to_string(results[2].NumSolved()),
                           std::to_string(queries.size())});
    }
    std::cout << "(a) average elapsed time\n";
    time_table.Print(std::cout);
    std::cout << "(b) solved queries\n";
    solved_table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
