#!/usr/bin/env python3
"""Offline validator for tcsm --trace-out chrome-trace JSON.

Checks the schema and physical plausibility of a trace produced by
`tcsm run/replay --trace-out=FILE` (see DESIGN.md §11):

  * the file is a JSON object with a "traceEvents" array (a bare array
    is also accepted — both load in chrome://tracing and Perfetto);
  * every complete-duration event ("ph" == "X") carries a string name
    and category, integer pid/tid, and non-negative finite ts/dur;
  * metadata events ("ph" == "M") have the thread_name shape;
  * per thread, spans are properly nested: sorted by start time, a span
    must either contain or be disjoint from every later span — partial
    overlap on one track means the emitter's clock handling is broken;
  * every tid that appears on a span has a thread_name metadata record.

Usage:
  check_trace.py TRACE.json        validate a trace file (exit 0/1)
  check_trace.py --self-test       run the built-in fixtures (exit 0/1)
"""

import json
import sys

# Slack for float comparisons: timestamps are microseconds with three
# decimals (exact nanoseconds), so anything below 1ns is rounding noise.
EPSILON_US = 0.0005


def load_events(text, errors):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        errors.append("not valid JSON: %s" % e)
        return None
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            errors.append('top-level object has no "traceEvents" array')
            return None
        return events
    errors.append("top level must be an object or an array, got %s" %
                  type(doc).__name__)
    return None


def check_span(i, ev, errors):
    """Schema of one ph=="X" event; returns (tid, ts, dur) or None."""
    ok = True
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev.get(key):
            errors.append("event %d: %r must be a non-empty string" % (i, key))
            ok = False
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            errors.append("event %d: %r must be an integer" % (i, key))
            ok = False
    for key in ("ts", "dur"):
        v = ev.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            errors.append("event %d: %r must be a number" % (i, key))
            ok = False
        elif v < 0 or v != v or v in (float("inf"), float("-inf")):
            errors.append("event %d: %r must be finite and non-negative (got %r)"
                          % (i, key, v))
            ok = False
    args = ev.get("args")
    if args is not None and not isinstance(args, dict):
        errors.append('event %d: "args" must be an object' % i)
        ok = False
    if not ok:
        return None
    return (ev["tid"], float(ev["ts"]), float(ev["dur"]))


def check_metadata(i, ev, errors):
    """Schema of one ph=="M" event; returns the named tid or None."""
    if ev.get("name") != "thread_name":
        errors.append('event %d: unknown metadata name %r' % (i, ev.get("name")))
        return None
    if not isinstance(ev.get("tid"), int):
        errors.append('event %d: metadata "tid" must be an integer' % i)
        return None
    args = ev.get("args")
    if not isinstance(args, dict) or not isinstance(args.get("name"), str):
        errors.append('event %d: thread_name args must carry a string "name"'
                      % i)
        return None
    return ev["tid"]


def check_nesting(tid, spans, errors):
    """Spans on one track must nest: no partial overlap."""
    spans = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack = []  # end times of open ancestors
    for start, dur in spans:
        end = start + dur
        while stack and start >= stack[-1] - EPSILON_US:
            stack.pop()
        if stack and end > stack[-1] + EPSILON_US:
            errors.append(
                "tid %d: span [%f, %f] partially overlaps an enclosing span "
                "ending at %f" % (tid, start, end, stack[-1]))
            return
        stack.append(end)


def validate(text):
    """Returns a list of error strings; empty means the trace is valid."""
    errors = []
    events = load_events(text, errors)
    if events is None:
        return errors
    by_tid = {}
    named_tids = set()
    span_count = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append("event %d: not an object" % i)
            continue
        ph = ev.get("ph")
        if ph == "X":
            parsed = check_span(i, ev, errors)
            if parsed is not None:
                tid, ts, dur = parsed
                by_tid.setdefault(tid, []).append((ts, dur))
                span_count += 1
        elif ph == "M":
            tid = check_metadata(i, ev, errors)
            if tid is not None:
                named_tids.add(tid)
        else:
            errors.append("event %d: unsupported ph %r" % (i, ph))
    if span_count == 0:
        errors.append("trace contains no complete-duration spans")
    for tid in sorted(by_tid):
        if tid not in named_tids:
            errors.append("tid %d has spans but no thread_name metadata" % tid)
        check_nesting(tid, by_tid[tid], errors)
    return errors


GOOD_TRACE = json.dumps({
    "traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "thread-0"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "thread-1"}},
        {"name": "arrival_batch", "cat": "stream", "ph": "X", "pid": 1,
         "tid": 0, "ts": 0.0, "dur": 100.0, "args": {"events": 4}},
        {"name": "insert_fanout", "cat": "pipeline", "ph": "X", "pid": 1,
         "tid": 0, "ts": 10.0, "dur": 20.0},
        {"name": "drain", "cat": "pipeline", "ph": "X", "pid": 1,
         "tid": 0, "ts": 30.0, "dur": 5.0},
        {"name": "lane_notify", "cat": "shard", "ph": "X", "pid": 1,
         "tid": 1, "ts": 12.0, "dur": 15.0, "args": {"shard": 1}},
    ]
})

SELF_TESTS = [
    ("valid trace", GOOD_TRACE, True),
    ("bare array accepted", json.dumps([
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "thread-0"}},
        {"name": "a", "cat": "c", "ph": "X", "pid": 1, "tid": 0,
         "ts": 1.0, "dur": 2.0},
    ]), True),
    ("broken JSON", "{not json", False),
    ("missing traceEvents", json.dumps({"foo": []}), False),
    ("negative duration", json.dumps({"traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "thread-0"}},
        {"name": "a", "cat": "c", "ph": "X", "pid": 1, "tid": 0,
         "ts": 1.0, "dur": -2.0},
    ]}), False),
    ("missing name", json.dumps({"traceEvents": [
        {"cat": "c", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0, "dur": 2.0},
    ]}), False),
    ("non-integer tid", json.dumps({"traceEvents": [
        {"name": "a", "cat": "c", "ph": "X", "pid": 1, "tid": "zero",
         "ts": 1.0, "dur": 2.0},
    ]}), False),
    ("unnamed thread", json.dumps({"traceEvents": [
        {"name": "a", "cat": "c", "ph": "X", "pid": 1, "tid": 7,
         "ts": 1.0, "dur": 2.0},
    ]}), False),
    ("partial overlap on one track", json.dumps({"traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "thread-0"}},
        {"name": "a", "cat": "c", "ph": "X", "pid": 1, "tid": 0,
         "ts": 0.0, "dur": 10.0},
        {"name": "b", "cat": "c", "ph": "X", "pid": 1, "tid": 0,
         "ts": 5.0, "dur": 10.0},
    ]}), False),
    ("empty trace", json.dumps({"traceEvents": []}), False),
]


def self_test():
    failures = 0
    for label, text, expect_ok in SELF_TESTS:
        errors = validate(text)
        ok = not errors
        if ok != expect_ok:
            failures += 1
            print("SELF-TEST FAIL: %s (expected %s, got %s)" %
                  (label, "valid" if expect_ok else "invalid",
                   "valid" if ok else "invalid: %s" % "; ".join(errors)))
    if failures:
        print("%d/%d self-tests failed" % (failures, len(SELF_TESTS)))
        return 1
    print("all %d self-tests passed" % len(SELF_TESTS))
    return 0


def main(argv):
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 2 if len(argv) != 2 else 0
    if argv[1] == "--self-test":
        return self_test()
    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print("error: %s" % e)
        return 1
    errors = validate(text)
    if errors:
        for e in errors:
            print("INVALID: %s" % e)
        return 1
    events = json.loads(text)
    if isinstance(events, dict):
        events = events["traceEvents"]
    spans = sum(1 for ev in events
                if isinstance(ev, dict) and ev.get("ph") == "X")
    tids = {ev["tid"] for ev in events
            if isinstance(ev, dict) and ev.get("ph") == "X"}
    print("OK: %d spans across %d threads" % (spans, len(tids)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
