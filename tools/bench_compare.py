#!/usr/bin/env python3
"""Perf-regression gate over BENCH JSON lines.

Bench drivers emit one machine-readable line per measurement:

  BENCH {"bench":"batching","queries":16,"threads":4,...,"events_per_sec":17528.8,...}

This tool diffs such measurements against checked-in baselines
(bench/baselines/*.json, same line format, `BENCH ` prefix optional) and
fails — exit 1 — when the gated metric (events/sec by default) regressed
by more than the threshold on any measurement present in both sides.

Measurements are matched by identity: every field except the known
metric/outcome fields (elapsed time, rates, speedups, result counts)
forms the key, so a baseline row matches exactly the current row with
the same bench name, thread count, query count, dataset, and so on.
Current rows with no baseline are reported as "new" warnings, but a
baseline row with no counterpart in the fresh run is a HARD FAILURE —
it means a gated configuration silently stopped being measured (bench
renamed, scale changed, workflow step dropped). The error names the
missing identity keys; re-pin with --update-baseline if the change is
intentional (see docs/REPRODUCING.md).

Usage:
  bench_compare.py --baseline bench/baselines --current out1.log [out2.log ...]
  bench_compare.py --baseline bench/baselines --current out.log --update-baseline
  bench_compare.py --self-test

--current files are raw bench-driver stdout; non-BENCH lines are
ignored. --update-baseline rewrites <baseline>/<bench>.json from the
current measurements instead of comparing (used by the nightly
workflow's re-baseline dispatch input). --self-test verifies the gate
itself: a synthesized 2x slowdown must fail and an unchanged run must
pass; exits 0 iff both hold.
"""

import argparse
import json
import os
import sys

# Outcome fields: everything that measures rather than identifies.
# "events"/"occurred" are deterministic for a pinned seed, but they are
# outcomes of the run, not knobs of the configuration, so they stay out
# of the identity key (a correctness change then shows up as a missing/
# new measurement instead of silently gating on a different workload).
METRIC_FIELDS = {
    "elapsed_ms",
    "events_per_sec",
    "mbytes_per_sec",
    "stream_bytes",
    "events",
    "occurred",
    "expired",
    "matches",
    "speedup_vs_serial",
    "batch_speedup",
    "speedup",
    "peak_mb",
    "peak_memory_mb",
    "peak_memory_bytes",
    "peak_bytes",
    "peak_event_index",
    "update_ms",
    "search_ms",
    "adj_entries_scanned",
    "adj_entries_matched",
}


def parse_bench_lines(text, source):
    """Yields measurement dicts from BENCH-prefixed (or bare) JSON lines."""
    out = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if line.startswith("BENCH "):
            line = line[len("BENCH "):]
        if not line.startswith("{"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{source}:{lineno}: unparseable BENCH line: {e}")
        if isinstance(row, dict) and "bench" in row:
            out.append(row)
    return out


def identity(row):
    return tuple(sorted((k, row[k]) for k in row if k not in METRIC_FIELDS))


def fmt_identity(row):
    parts = [f"{k}={v}" for k, v in sorted(row.items())
             if k not in METRIC_FIELDS]
    return " ".join(parts)


def load_dir(path):
    rows = []
    if not os.path.isdir(path):
        raise SystemExit(f"baseline directory not found: {path}")
    for name in sorted(os.listdir(path)):
        if name.endswith(".json"):
            with open(os.path.join(path, name), encoding="utf-8") as f:
                rows.extend(parse_bench_lines(f.read(), name))
    return rows


def compare(baseline_rows, current_rows, metric, threshold, out=sys.stdout):
    """Returns (num_regressions, num_compared, missing_rows).

    missing_rows are baseline measurements with no identity-matching row
    in the current run — a pinned configuration that silently stopped
    being measured. Callers must treat a non-empty list as a failure.
    """
    base = {}
    for row in baseline_rows:
        base[identity(row)] = row
    regressions = 0
    compared = 0
    seen = set()
    for row in current_rows:
        if metric not in row:
            continue
        key = identity(row)
        seen.add(key)
        ref = base.get(key)
        if ref is None or metric not in ref:
            print(f"  new (no baseline): {fmt_identity(row)}", file=out)
            continue
        compared += 1
        old, new = float(ref[metric]), float(row[metric])
        if old <= 0:
            print(f"  skip (zero baseline): {fmt_identity(row)}", file=out)
            continue
        delta = (new - old) / old
        verdict = "ok"
        if delta < -threshold:
            verdict = "REGRESSION"
            regressions += 1
        print(f"  {verdict}: {fmt_identity(row)}: {metric} "
              f"{old:.1f} -> {new:.1f} ({delta:+.1%})", file=out)
    missing = []
    for key, ref in base.items():
        if key not in seen and metric in ref:
            missing.append(ref)
            print(f"  MISSING from current run: {fmt_identity(ref)}",
                  file=out)
    return regressions, compared, missing


def update_baseline(baseline_dir, current_rows):
    os.makedirs(baseline_dir, exist_ok=True)
    by_bench = {}
    for row in current_rows:
        by_bench.setdefault(row["bench"], []).append(row)
    for bench, rows in sorted(by_bench.items()):
        path = os.path.join(baseline_dir, f"{bench}.json")
        with open(path, "w", encoding="utf-8") as f:
            for row in rows:
                f.write("BENCH " + json.dumps(row, separators=(",", ":"))
                        + "\n")
        print(f"wrote {path} ({len(rows)} measurements)")


def self_test():
    baseline = [
        {"bench": "batching", "threads": 1, "batched": 0,
         "events_per_sec": 30000.0},
        {"bench": "batching", "threads": 4, "batched": 1,
         "events_per_sec": 17000.0},
        {"bench": "parallel_scaling", "queries": 16, "threads": 4,
         "events_per_sec": 9000.0},
    ]
    slowed = [dict(r, events_per_sec=r["events_per_sec"] * 0.5)
              for r in baseline]
    jitter = [dict(r, events_per_sec=r["events_per_sec"] * 0.95)
              for r in baseline]
    sink = open(os.devnull, "w", encoding="utf-8")
    slow_reg, slow_cmp, slow_missing = compare(
        baseline, slowed, "events_per_sec", 0.15, out=sink)
    ok_reg, ok_cmp, ok_missing = compare(
        baseline, jitter, "events_per_sec", 0.15, out=sink)
    # A baseline row whose configuration vanished from the fresh run (the
    # parallel_scaling measurement below) must surface as a named missing
    # identity, never pass silently or raise a bare KeyError.
    partial = [r for r in jitter if r["bench"] != "parallel_scaling"]
    miss_reg, miss_cmp, missing = compare(
        baseline, partial, "events_per_sec", 0.15, out=sink)
    sink.close()
    failures = []
    if slow_cmp != len(baseline) or slow_reg != len(baseline):
        failures.append(
            f"a 2x slowdown must fail every measurement "
            f"(flagged {slow_reg}/{slow_cmp} of {len(baseline)})")
    if ok_cmp != len(baseline) or ok_reg != 0:
        failures.append(
            f"5% jitter must pass (flagged {ok_reg}/{ok_cmp})")
    if ok_missing or slow_missing:
        failures.append("full runs must report no missing measurements")
    if (len(missing) != 1 or missing[0]["bench"] != "parallel_scaling"
            or miss_cmp != len(partial)):
        failures.append(
            f"dropping a baselined configuration must be reported as "
            f"exactly that missing identity (got {len(missing)})")
    roundtrip = parse_bench_lines(
        "noise\nBENCH " + json.dumps(baseline[0]) + "\n", "<self-test>")
    if roundtrip != [baseline[0]]:
        failures.append("BENCH line round-trip failed")
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}")
        return 1
    print("self-test passed: gate fails a deliberately slowed build and "
          "passes jitter within the threshold")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="directory of checked-in *.json "
                    "baselines (bench/baselines)")
    ap.add_argument("--current", nargs="+", default=[],
                    help="bench-driver stdout file(s) to gate")
    ap.add_argument("--metric", default="events_per_sec")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated fractional drop (default 0.15)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline files from --current "
                    "instead of comparing")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate flags a slowed build; exit 0 "
                    "iff it does")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required "
                 "(or use --self-test)")

    current = []
    for path in args.current:
        with open(path, encoding="utf-8") as f:
            current.extend(parse_bench_lines(f.read(), path))
    if not current:
        raise SystemExit("no BENCH lines found in --current input")

    if args.update_baseline:
        update_baseline(args.baseline, current)
        return

    print(f"comparing {len(current)} measurements against {args.baseline} "
          f"(metric {args.metric}, threshold {args.threshold:.0%}):")
    regressions, compared, missing = compare(load_dir(args.baseline), current,
                                             args.metric, args.threshold)
    if compared == 0:
        raise SystemExit("no overlapping measurements to compare — "
                         "re-pin the baselines (--update-baseline)")
    if missing:
        print(f"FAIL: {len(missing)} baselined measurement(s) missing from "
              f"the current run — a gated configuration stopped being "
              f"measured:")
        for ref in missing:
            print(f"  {fmt_identity(ref)}")
        print("re-pin with --update-baseline if this change is intentional")
        sys.exit(1)
    if regressions:
        print(f"FAIL: {regressions} of {compared} measurements regressed "
              f"more than {args.threshold:.0%}")
        sys.exit(1)
    print(f"OK: {compared} measurements within {args.threshold:.0%} of "
          "baseline")


if __name__ == "__main__":
    main()
