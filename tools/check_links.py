#!/usr/bin/env python3
"""Offline markdown link checker for this repository.

Walks every tracked *.md file and verifies that

  * relative links point at files/directories that exist, and
  * fragment links (`#anchor`, alone or after a path) name a heading that
    actually occurs in the target file, using GitHub's slug rules.

External links (http/https/mailto) are skipped — CI must run offline.
Inline code spans and fenced code blocks are ignored so command examples
containing brackets never trip the checker.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link: file:line: message). Run from anywhere inside the repo.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

SKIP_DIRS = {".git", "build", ".github"}


def repo_root():
    d = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(d)


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[!\"#$%&'()*+,./:;<=>?@\[\\\]^{|}~]", "", text.strip())
    return text.lower().replace(" ", "-")


_SLUG_CACHE = {}


def heading_slugs(path):
    if path in _SLUG_CACHE:
        return _SLUG_CACHE[path]
    slugs = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
            if n:  # repeated headings get -1, -2, ... suffixes
                slugs[f"{slug}-{n}"] = 1
    _SLUG_CACHE[path] = set(slugs)
    return _SLUG_CACHE[path]


def check_file(path, errors):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(CODE_SPAN_RE.sub("``", line)):
                if EXTERNAL_RE.match(target):
                    continue  # http(s):, mailto: — offline checker
                base, _, fragment = target.partition("#")
                if base:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), base))
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{path}:{lineno}: broken link '{target}' "
                            f"({resolved} does not exist)")
                        continue
                else:
                    resolved = path
                if fragment:
                    if not resolved.endswith(".md"):
                        continue  # anchors only checked in markdown
                    if fragment.lower() not in heading_slugs(resolved):
                        errors.append(
                            f"{path}:{lineno}: broken anchor '#{fragment}' "
                            f"(no such heading in {resolved})")


def main():
    root = repo_root()
    os.chdir(root)
    errors = []
    count = 0
    for path in sorted(markdown_files(".")):
        count += 1
        check_file(path, errors)
    for e in errors:
        print(e)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
