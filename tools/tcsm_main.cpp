// The `tcsm` command-line tool; see src/cli/commands.h for subcommands.
#include <exception>
#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  try {
    return tcsm::cli::Main(argc, argv, std::cout, std::cerr);
  } catch (const std::exception& e) {
    // Worker exceptions surface on the driver thread (the thread pool
    // rethrows the first one after its barrier); report instead of
    // aborting with a raw terminate.
    std::cerr << "tcsm: fatal: " << e.what() << "\n";
    return 1;
  }
}
