// The `tcsm` command-line tool; see src/cli/commands.h for subcommands.
#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  return tcsm::cli::Main(argc, argv, std::cout, std::cerr);
}
