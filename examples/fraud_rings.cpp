// Money-laundering detection on a transaction stream (the paper's
// motivating application: "tracking the flow of money in financial
// transaction networks").
//
// The query is a layering ring: money moves A -> B -> C -> A in strictly
// increasing time order (a totally ordered directed cycle), with gap
// bounds on the hops: real layering leaves a processing delay between
// transfers, so each hop must follow the previous one by 10..100 time
// units (`g` records, DESIGN.md §12). Background transactions are
// synthesized between labeled account tiers; three rings are injected —
// one inside the time window with realistic delays (reported), one
// stretched beyond the window (killed by expiry), and one automated
// burst that moves the money in back-to-back events (killed by the gap
// lower bound: too fast to be human-driven layering).
#include <iostream>
#include <set>

#include "common/logging.h"
#include "core/engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"

using namespace tcsm;

namespace {

class RingSink : public MatchSink {
 public:
  void OnMatch(const Embedding& m, MatchKind kind, uint64_t) override {
    if (kind != MatchKind::kOccurred) return;
    std::set<VertexId> ring(m.vertices.begin(), m.vertices.end());
    rings_.insert(ring);
  }
  const std::set<std::set<VertexId>>& rings() const { return rings_; }

 private:
  std::set<std::set<VertexId>> rings_;
};

}  // namespace

int main() {
  // Accounts: label 0 = retail, 1 = business (rings run through retail).
  SyntheticSpec spec;
  spec.name = "transactions";
  spec.num_vertices = 400;
  spec.num_edges = 8000;
  spec.num_vertex_labels = 2;
  spec.avg_parallel_edges = 2.0;
  spec.directed = true;
  spec.seed = 77;
  TemporalDataset ds = GenerateSynthetic(spec);
  for (auto& l : ds.vertex_labels) l = l % 2;

  // Ring accounts (force retail label).
  const VertexId ring1[3] = {11, 12, 13};
  const VertexId ring2[3] = {21, 22, 23};
  const VertexId ring3[3] = {31, 32, 33};
  for (const VertexId v : ring1) ds.vertex_labels[v] = 0;
  for (const VertexId v : ring2) ds.vertex_labels[v] = 0;
  for (const VertexId v : ring3) ds.vertex_labels[v] = 0;

  auto inject = [&](const VertexId* ring, Timestamp base, Timestamp gap) {
    for (int i = 0; i < 3; ++i) {
      TemporalEdge e;
      e.src = ring[i];
      e.dst = ring[(i + 1) % 3];
      e.ts = base + gap * i;
      ds.edges.push_back(e);
    }
  };
  inject(ring1, 4000, 30);    // tight ring: fits into the window
  inject(ring2, 2000, 2500);  // stretched ring: hops expire in between
  inject(ring3, 6000, 2);     // burst ring: hops nearly simultaneous
  // Timestamps become dense ranks 1..|E|, so the injected raw gaps turn
  // into event counts: ~31 events/hop for ring1, ~3 for ring3.
  ds.RankTimestamps();

  // Query: directed 3-cycle with a total temporal order and a gap bound
  // per hop — each transfer 10..100 events after the previous one.
  QueryGraph query(/*directed=*/true);
  const VertexId a = query.AddVertex(0);
  const VertexId b = query.AddVertex(0);
  const VertexId c = query.AddVertex(0);
  const EdgeId t1 = query.AddEdge(a, b);
  const EdgeId t2 = query.AddEdge(b, c);
  const EdgeId t3 = query.AddEdge(c, a);
  (void)query.AddOrder(t1, t2);  // implied by the gaps; kept for clarity
  (void)query.AddOrder(t2, t3);
  TCSM_CHECK(query.AddGap(t1, t2, 10, 100).ok());
  TCSM_CHECK(query.AddGap(t2, t3, 10, 100).ok());

  std::cout << "Laundering query: directed 3-cycle, strictly increasing "
               "timestamps, 10..100 events between hops\n\n";

  SingleQueryContext<TcmEngine> run(query,
                                    GraphSchema{true, ds.vertex_labels});
  RingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 800;
  const StreamResult result = RunStream(ds, config, &run);

  std::cout << "Streamed " << result.events << " events in "
            << result.elapsed_ms << " ms; " << result.occurred
            << " ring embeddings occurred across " << sink.rings().size()
            << " distinct account rings.\n";
  for (const auto& ring : sink.rings()) {
    std::cout << "  ring:";
    for (const VertexId v : ring) std::cout << " " << v;
    std::cout << "\n";
  }
  const bool tight_found =
      sink.rings().count({ring1[0], ring1[1], ring1[2]}) > 0;
  const bool stretched_absent =
      sink.rings().count({ring2[0], ring2[1], ring2[2]}) == 0;
  const bool burst_absent =
      sink.rings().count({ring3[0], ring3[1], ring3[2]}) == 0;
  std::cout << (tight_found ? "Tight ring detected.\n"
                            : "ERROR: tight ring missed!\n")
            << (stretched_absent
                    ? "Stretched ring correctly suppressed by the window.\n"
                    : "ERROR: stretched ring should have expired!\n")
            << (burst_absent
                    ? "Burst ring correctly rejected by the gap bound.\n"
                    : "ERROR: burst ring is too fast to be layering!\n");
  return tight_found && stretched_absent && burst_absent ? 0 : 1;
}
