// Q&A interaction-cascade monitoring on a Superuser-like stream.
//
// Stack-exchange networks label interactions answer/comment-question/
// comment-answer (Table III). The query tracks a "serial answerer"
// cascade: user X answers (label 0) a question by user Y, then comments
// on user Z's answer (label 2), then answers a question by user W —
// answer1 ≺ comment ≺ answer2. This exercises edge labels, a partial
// (not total) order, and undirected matching in one realistic workload.
#include <iostream>

#include "core/engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/presets.h"

using namespace tcsm;

int main() {
  TemporalDataset ds = MakePreset("superuser", /*scale=*/0.25);

  QueryGraph query;
  const VertexId x = query.AddVertex(0);
  const VertexId y = query.AddVertex(0);
  const VertexId z = query.AddVertex(0);
  const VertexId w = query.AddVertex(0);
  const EdgeId answer1 = query.AddEdge(x, y, /*elabel=*/0);
  const EdgeId comment = query.AddEdge(x, z, /*elabel=*/2);
  const EdgeId answer2 = query.AddEdge(x, w, /*elabel=*/0);
  (void)query.AddOrder(answer1, comment);
  (void)query.AddOrder(comment, answer2);

  std::cout << "Q&A cascade query (answer -> comment-back -> next answer):\n"
            << query.ToString() << "\n";

  // Labels 0 in superuser presets span several user groups; restrict the
  // pattern to one label class by relabeling query vertices from the data.
  // (The preset assigns labels 0..4; class 0 is the largest.)
  SingleQueryContext<TcmEngine> run(
      query, GraphSchema{ds.directed, ds.vertex_labels});
  CountingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = static_cast<Timestamp>(ds.NumEdges() / 8);
  const StreamResult result = RunStream(ds, config, &run);

  std::cout << "Streamed " << result.events << " events (" << ds.NumEdges()
            << " interactions) in " << result.elapsed_ms << " ms\n"
            << "cascades occurred: " << result.occurred
            << ", expired: " << result.expired << "\n"
            << "peak engine state: ~" << result.peak_memory_bytes / 1024
            << " KiB\n";

  // Contrast with an unordered variant: without ≺ the same topology
  // matches far more often — the temporal order is what makes the pattern
  // a cascade rather than a coincidence.
  QueryGraph unordered;
  unordered.AddVertex(0);
  unordered.AddVertex(0);
  unordered.AddVertex(0);
  unordered.AddVertex(0);
  unordered.AddEdge(x, y, 0);
  unordered.AddEdge(x, z, 2);
  unordered.AddEdge(x, w, 0);
  SingleQueryContext<TcmEngine> run2(
      unordered, GraphSchema{ds.directed, ds.vertex_labels});
  CountingSink sink2;
  run2.engine().set_sink(&sink2);
  const StreamResult result2 = RunStream(ds, config, &run2);
  const double ratio =
      result.occurred > 0 ? static_cast<double>(result2.occurred) /
                                static_cast<double>(result.occurred)
                          : 0.0;
  std::cout << "without the temporal order the topology alone matches "
            << result2.occurred << " times (" << ratio << "x)\n";
  return 0;
}
