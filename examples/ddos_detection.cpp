// DDoS detection on a network-traffic stream (the paper's Figure 1).
//
// The query is the core DDoS pattern: an attacker commands k zombie hosts
// (edges c_i), which then flood a victim (edges a_i), with the temporal
// order c_i ≺ a_i per zombie. We synthesize netflow-like background
// traffic, inject a DDoS episode, and let TCM report the attack as its
// embeddings occur — identifying the attacker vertex in real time.
#include <iostream>
#include <set>

#include "core/engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"

using namespace tcsm;

namespace {

constexpr size_t kZombies = 3;

/// Collects the attacker/victim images of each reported attack pattern.
class AttackSink : public MatchSink {
 public:
  void OnMatch(const Embedding& m, MatchKind kind, uint64_t) override {
    if (kind != MatchKind::kOccurred) return;
    // Query vertex 0 = attacker, 1 = victim (see BuildQuery).
    attacks_.insert({m.vertices[0], m.vertices[1]});
  }
  const std::set<std::pair<VertexId, VertexId>>& attacks() const {
    return attacks_;
  }

 private:
  std::set<std::pair<VertexId, VertexId>> attacks_;
};

QueryGraph BuildQuery() {
  QueryGraph q(/*directed=*/true);
  const VertexId attacker = q.AddVertex(0);
  const VertexId victim = q.AddVertex(0);
  for (size_t i = 0; i < kZombies; ++i) {
    const VertexId zombie = q.AddVertex(0);
    const EdgeId command = q.AddEdge(attacker, zombie);  // t_{i,1}
    const EdgeId attack = q.AddEdge(zombie, victim);     // t_{i,2}
    (void)q.AddOrder(command, attack);  // t_{i,1} < t_{i,2}  (Figure 1)
  }
  return q;
}

}  // namespace

int main() {
  // Netflow-like background traffic (unlabeled hosts, directed flows).
  SyntheticSpec spec;
  spec.name = "traffic";
  spec.num_vertices = 300;
  spec.num_edges = 6000;
  spec.num_vertex_labels = 1;
  spec.avg_parallel_edges = 3.0;
  spec.directed = true;
  spec.seed = 2024;
  TemporalDataset ds = GenerateSynthetic(spec);

  // Inject a DDoS episode: attacker 7 commands zombies 101..103, which
  // flood victim 42 shortly after. Commands and attacks interleave with
  // normal traffic.
  const VertexId attacker = 7;
  const VertexId victim = 42;
  const Timestamp t0 = 3000;
  for (size_t i = 0; i < kZombies; ++i) {
    const VertexId zombie = static_cast<VertexId>(101 + i);
    TemporalEdge cmd;
    cmd.src = attacker;
    cmd.dst = zombie;
    cmd.ts = t0 + static_cast<Timestamp>(2 * i);
    ds.edges.push_back(cmd);
    TemporalEdge atk;
    atk.src = zombie;
    atk.dst = victim;
    atk.ts = t0 + 40 + static_cast<Timestamp>(3 * i);
    ds.edges.push_back(atk);
  }
  ds.RankTimestamps();

  const QueryGraph query = BuildQuery();
  std::cout << "DDoS query: " << kZombies
            << " zombies, command-before-attack order per zombie\n"
            << query.ToString() << "\n";

  SingleQueryContext<TcmEngine> run(query,
                                    GraphSchema{true, ds.vertex_labels});
  AttackSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 600;  // flows expire after 600 time units
  const StreamResult result = RunStream(ds, config, &run);

  std::cout << "Streamed " << result.events << " events in "
            << result.elapsed_ms << " ms; " << result.occurred
            << " pattern embeddings occurred.\n";
  for (const auto& [a, v] : sink.attacks()) {
    std::cout << "  DDoS detected: attacker host " << a << " -> victim host "
              << v << "\n";
  }
  const bool found =
      sink.attacks().count({attacker, victim}) > 0;
  std::cout << (found ? "Injected attack identified correctly.\n"
                      : "ERROR: injected attack missed!\n");
  return found ? 0 : 1;
}
