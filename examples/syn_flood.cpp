// Half-open connection detection on a packet stream: a SYN that the
// server never answers with a SYN-ACK is the signature of a SYN flood.
//
// The query is a single SYN edge (client -> server) plus an *absence*
// predicate (`n` record, DESIGN.md §12): report the connection attempt
// only if no SYN-ACK flows back from the server's image to the client's
// image within delta of the SYN. Matches are therefore emitted deferred —
// the engine holds each candidate until its deadline passes (or a reply
// kills it), which is exactly the "alert after the handshake timeout"
// behavior an IDS wants.
//
// The stream interleaves benign clients (every SYN answered in time), one
// sluggish client whose reply lands after the timeout, and an attacker
// whose SYNs are never answered. Expected report: the attacker's SYNs and
// the sluggish one; the benign handshakes stay silent.
#include <iostream>
#include <map>

#include "common/logging.h"
#include "core/engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "graph/temporal_dataset.h"

using namespace tcsm;

namespace {

constexpr Label kClient = 0;
constexpr Label kServer = 1;
constexpr Label kSyn = 0;
constexpr Label kSynAck = 1;

/// Counts occurred (= alerted) half-open connections per client vertex.
class AlertSink : public MatchSink {
 public:
  explicit AlertSink(VertexId client_qv) : client_qv_(client_qv) {}
  void OnMatch(const Embedding& m, MatchKind kind, uint64_t) override {
    if (kind != MatchKind::kOccurred) return;
    ++alerts_[m.vertices[client_qv_]];
  }
  const std::map<VertexId, uint64_t>& alerts() const { return alerts_; }

 private:
  VertexId client_qv_;
  std::map<VertexId, uint64_t> alerts_;
};

}  // namespace

int main() {
  // Hosts: v0 is the server; v1 the attacker; v2..v5 benign clients;
  // v6 a sluggish-but-honest client.
  TemporalDataset ds;
  ds.name = "packets";
  ds.directed = true;
  ds.vertex_labels = {kServer, kClient, kClient, kClient,
                      kClient, kClient, kClient};
  const VertexId server = 0;
  const VertexId attacker = 1;
  const VertexId sluggish = 6;

  auto packet = [&](VertexId src, VertexId dst, Label l, Timestamp ts) {
    TemporalEdge e;
    e.src = src;
    e.dst = dst;
    e.label = l;
    e.ts = ts;
    ds.edges.push_back(e);
  };
  // Benign handshakes: SYN answered 2 ticks later (inside the timeout).
  for (VertexId c = 2; c <= 5; ++c) {
    const Timestamp t = 10 * static_cast<Timestamp>(c);
    packet(c, server, kSyn, t);
    packet(server, c, kSynAck, t + 2);
  }
  // Attacker: three SYNs, never answered.
  packet(attacker, server, kSyn, 15);
  packet(attacker, server, kSyn, 27);
  packet(attacker, server, kSyn, 38);
  // Sluggish client: answered, but 7 ticks late (timeout is 5).
  packet(sluggish, server, kSyn, 60);
  packet(server, sluggish, kSynAck, 67);
  ds.Normalize();

  // Query: one SYN edge, alert unless a SYN-ACK flows back within 5.
  QueryGraph query(/*directed=*/true);
  const VertexId qc = query.AddVertex(kClient);
  const VertexId qs = query.AddVertex(kServer);
  (void)query.AddEdge(qc, qs, kSyn);
  TCSM_CHECK(query.AddAbsence(qs, qc, kSynAck, /*delta=*/5).ok());

  std::cout << "SYN-flood query: client -SYN-> server with no SYN-ACK "
               "reply within 5 ticks\n\n";

  SingleQueryContext<TcmEngine> run(query,
                                    GraphSchema{true, ds.vertex_labels});
  AlertSink sink(qc);
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 40;
  const StreamResult result = RunStream(ds, config, &run);

  std::cout << "Streamed " << result.events << " events; " << result.occurred
            << " half-open connections alerted.\n";
  for (const auto& [client, n] : sink.alerts()) {
    std::cout << "  host v" << client << ": " << n
              << " unanswered SYN(s)\n";
  }
  const auto& alerts = sink.alerts();
  const bool attacker_caught =
      alerts.count(attacker) > 0 && alerts.at(attacker) == 3;
  const bool sluggish_caught =
      alerts.count(sluggish) > 0 && alerts.at(sluggish) == 1;
  const bool benign_silent = alerts.size() == 2;
  std::cout << (attacker_caught ? "Attacker's 3 floods alerted.\n"
                                : "ERROR: attacker SYNs missed!\n")
            << (sluggish_caught ? "Late handshake alerted (reply after "
                                  "the timeout).\n"
                                : "ERROR: late handshake missed!\n")
            << (benign_silent
                    ? "Benign handshakes correctly suppressed.\n"
                    : "ERROR: a benign handshake was alerted!\n");
  return attacker_caught && sluggish_caught && benign_silent ? 0 : 1;
}
