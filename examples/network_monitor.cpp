// Multi-pattern network monitoring: one traffic stream, several attack
// patterns watched simultaneously (the Verizon report the paper cites
// finds ~10 recurring attack shapes). Demonstrates MultiQueryEngine for
// fan-out — sharded across a worker pool via its num_threads knob, with
// deterministic alert order — and CanonicalSink semantics via
// interchangeable zombies.
//
// Patterns monitored:
//   0. DDoS star (Figure 1): attacker -> zombies -> victim, command
//      before attack per zombie.
//   1. Lateral movement chain: a -> b -> c -> d with strictly increasing
//      hop times (an intruder moving through hosts).
//   2. Beacon-and-exfiltrate: infected host beacons a C2 server twice,
//      then pushes data to a drop host, all in time order.
//
// Run with no arguments to synthesize traffic with one injected instance
// of each pattern; pass a `.tel` stream file (docs/FILE_FORMATS.md, e.g.
// from `tcsm gen` or a recorded capture) to monitor that traffic instead.
#include <algorithm>
#include <iostream>
#include <map>
#include <thread>

#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "datasets/synthetic.h"
#include "io/stream_reader.h"

using namespace tcsm;

namespace {

class AlertSink : public MultiMatchSink {
 public:
  explicit AlertSink(std::vector<std::string> names)
      : names_(std::move(names)) {}

  void OnMatch(size_t query_index, const Embedding& m, MatchKind kind,
               uint64_t) override {
    if (kind != MatchKind::kOccurred) return;
    ++counts_[query_index];
    if (counts_[query_index] <= 3) {  // don't flood the console
      std::cout << "  ALERT [" << names_[query_index] << "] hosts:";
      for (const VertexId v : m.vertices) std::cout << " " << v;
      std::cout << "\n";
    }
  }

  const std::map<size_t, uint64_t>& counts() const { return counts_; }

 private:
  std::vector<std::string> names_;
  std::map<size_t, uint64_t> counts_;
};

QueryGraph DdosStar(size_t zombies) {
  QueryGraph q(/*directed=*/true);
  const VertexId attacker = q.AddVertex(0);
  const VertexId victim = q.AddVertex(0);
  for (size_t i = 0; i < zombies; ++i) {
    const VertexId z = q.AddVertex(0);
    const EdgeId cmd = q.AddEdge(attacker, z);
    const EdgeId atk = q.AddEdge(z, victim);
    (void)q.AddOrder(cmd, atk);
  }
  return q;
}

QueryGraph LateralChain() {
  QueryGraph q(/*directed=*/true);
  for (int i = 0; i < 4; ++i) q.AddVertex(0);
  const EdgeId h1 = q.AddEdge(0, 1);
  const EdgeId h2 = q.AddEdge(1, 2);
  const EdgeId h3 = q.AddEdge(2, 3);
  (void)q.AddOrder(h1, h2);
  (void)q.AddOrder(h2, h3);
  return q;
}

QueryGraph BeaconExfil() {
  QueryGraph q(/*directed=*/true);
  const VertexId infected = q.AddVertex(0);
  const VertexId c2 = q.AddVertex(0);
  const VertexId drop = q.AddVertex(0);
  const EdgeId beacon1 = q.AddEdge(infected, c2);
  const EdgeId reply = q.AddEdge(c2, infected);
  const EdgeId exfil = q.AddEdge(infected, drop);
  (void)q.AddOrder(beacon1, reply);
  (void)q.AddOrder(reply, exfil);
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  TemporalDataset ds;
  Timestamp window = 400;
  const bool from_file = argc > 1;
  if (from_file) {
    // Monitor a recorded stream instead of synthetic traffic.
    TelHeader header;
    auto loaded = LoadTelFile(argv[1], &header);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.status().ToString() << "\n";
      return 1;
    }
    ds = std::move(loaded).value();
    if (!ds.directed) {
      std::cerr << "error: " << argv[1]
                << ": the attack patterns are directed; record the "
                   "stream as a directed .tel\n";
      return 1;
    }
    if (header.window <= 0) {
      // The synthetic default (400) is calibrated for rank-normalized
      // timestamps; on a real capture's raw clock it would silently
      // match nothing. Make the missing parameter loud instead.
      std::cerr << "error: " << argv[1]
                << ": no window= recorded in the header; re-export the "
                   "stream with a window (e.g. tcsm gen --window=D)\n";
      return 1;
    }
    window = header.window;
  } else {
    SyntheticSpec spec;
    spec.name = "traffic";
    spec.num_vertices = 1200;
    spec.num_edges = 5000;
    spec.num_vertex_labels = 1;
    spec.avg_parallel_edges = 1.2;
    spec.directed = true;
    spec.seed = 4242;
    ds = GenerateSynthetic(spec);

    // Inject one instance of each pattern.
    auto add = [&](VertexId s, VertexId d, Timestamp t) {
      TemporalEdge e;
      e.src = s;
      e.dst = d;
      e.ts = t;
      ds.edges.push_back(e);
    };
    // DDoS: attacker 5 -> zombies 60,61 -> victim 90.
    add(5, 60, 2000);
    add(5, 61, 2010);
    add(60, 90, 2100);
    add(61, 90, 2110);
    // Lateral movement: 10 -> 11 -> 12 -> 13.
    add(10, 11, 3000);
    add(11, 12, 3050);
    add(12, 13, 3100);
    // Beaconing: 20 <-> 30 then exfil to 40.
    add(20, 30, 4000);
    add(30, 20, 4040);
    add(20, 40, 4080);
    ds.RankTimestamps();
  }

  const std::vector<std::string> names = {"ddos-star", "lateral-movement",
                                          "beacon-exfil"};
  const std::vector<QueryGraph> patterns = {DdosStar(2), LateralChain(),
                                            BeaconExfil()};
  // Shard the per-pattern matching work of each event across a worker
  // pool (one engine is never split, so more threads than patterns is
  // pointless). The alert stream is merged deterministically — this
  // program prints byte-identical output at any thread count, including
  // the serial num_threads=1 (DESIGN.md §6).
  const size_t num_threads = std::min<size_t>(
      patterns.size(), std::max<size_t>(1, std::thread::hardware_concurrency()));
  MultiQueryEngine engine(patterns, GraphSchema{true, ds.vertex_labels},
                          TcmConfig{}, num_threads);
  AlertSink sink(names);
  engine.set_multi_sink(&sink);

  StreamConfig config;
  config.window = window;
  std::cout << "Monitoring " << patterns.size() << " patterns over "
            << ds.NumEdges() << " flows (" << num_threads << " threads)...\n";
  const StreamResult res = RunStream(ds, config, &engine);

  std::cout << "\nProcessed " << res.events << " events in "
            << res.elapsed_ms << " ms (" << res.occurred
            << " total pattern matches)\n";
  bool all_found = true;
  for (size_t i = 0; i < patterns.size(); ++i) {
    const auto it = sink.counts().find(i);
    const uint64_t n = it == sink.counts().end() ? 0 : it->second;
    std::cout << "  " << names[i] << ": " << n << " match(es)\n";
    all_found = all_found && n > 0;
  }
  if (from_file) return 0;  // nothing was injected; counts are the report
  std::cout << (all_found ? "All injected incidents detected.\n"
                          : "ERROR: some injected incidents were missed!\n");
  return all_found ? 0 : 1;
}
