// Quickstart: the paper's running example (Figure 2) end to end.
//
// Builds the temporal query graph q with a strict partial order on its
// edges, streams the temporal data graph G with time window delta = 10,
// and prints every time-constrained embedding as it occurs or expires —
// reproducing Example II.2: the embedding through sigma_6 occurs when
// sigma_14 arrives and expires at time 16 when sigma_6 leaves the window.
#include <iostream>

#include "core/engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "graph/temporal_dataset.h"
#include "query/query_graph.h"

using namespace tcsm;

namespace {

/// Prints embeddings as they occur/expire.
class PrintingSink : public MatchSink {
 public:
  void OnMatch(const Embedding& m, MatchKind kind, uint64_t) override {
    std::cout << (kind == MatchKind::kOccurred ? "  + occurred" : "  - expired")
              << "  vertices:";
    for (size_t u = 0; u < m.vertices.size(); ++u) {
      std::cout << " u" << u + 1 << "->v" << m.vertices[u] + 1;
    }
    std::cout << "  edges:";
    for (size_t e = 0; e < m.edges.size(); ++e) {
      std::cout << " eps" << e + 1 << "->sigma" << m.edges[e] + 1;
    }
    std::cout << "\n";
  }
};

}  // namespace

int main() {
  // --- Temporal query graph q (Figure 2c) -------------------------------
  QueryGraph query;
  const VertexId u1 = query.AddVertex(0);
  const VertexId u2 = query.AddVertex(1);
  const VertexId u3 = query.AddVertex(2);
  const VertexId u4 = query.AddVertex(3);
  const VertexId u5 = query.AddVertex(4);
  const EdgeId e1 = query.AddEdge(u1, u2);
  const EdgeId e2 = query.AddEdge(u1, u3);
  const EdgeId e3 = query.AddEdge(u2, u4);
  const EdgeId e4 = query.AddEdge(u3, u4);
  const EdgeId e5 = query.AddEdge(u4, u5);
  const EdgeId e6 = query.AddEdge(u3, u5);
  // Temporal order (strict partial order on E(q)).
  (void)query.AddOrder(e1, e3);
  (void)query.AddOrder(e1, e5);
  (void)query.AddOrder(e2, e4);
  (void)query.AddOrder(e2, e5);
  (void)query.AddOrder(e2, e6);
  std::cout << "Query:\n" << query.ToString() << "\n";

  // --- Temporal data graph G (Figure 2a) --------------------------------
  TemporalDataset data;
  data.vertex_labels = {0, 1, 5, 2, 3, 6, 4};  // v1..v7
  const std::pair<VertexId, VertexId> sigma[] = {
      {0, 1}, {3, 4}, {3, 4}, {0, 3}, {3, 6}, {0, 1}, {3, 6},
      {0, 3}, {4, 6}, {4, 6}, {1, 4}, {0, 3}, {3, 4}, {3, 6}};
  for (size_t i = 0; i < std::size(sigma); ++i) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(i);
    e.src = sigma[i].first;
    e.dst = sigma[i].second;
    e.ts = static_cast<Timestamp>(i + 1);  // sigma_i arrives at time i
    data.edges.push_back(e);
  }

  // --- Stream it through TCM with window delta = 10 ---------------------
  // The context owns the one shared sliding-window graph; the engine is a
  // read-only view attached to it (any number of queries could share the
  // same context — see examples/network_monitor.cpp).
  SharedStreamContext stream(GraphSchema{false, data.vertex_labels});
  TcmEngine engine(query, stream.graph());
  stream.Attach(&engine);
  PrintingSink sink;
  engine.set_sink(&sink);

  StreamConfig config;
  config.window = 10;
  std::cout << "Streaming " << data.edges.size()
            << " edges with window delta = " << config.window << ":\n";
  const StreamResult result = RunStream(data, config, &stream);

  std::cout << "\nDone: " << result.occurred << " occurred, "
            << result.expired << " expired, " << result.events
            << " events, " << result.elapsed_ms << " ms, peak index ~"
            << result.peak_memory_bytes / 1024 << " KiB\n";
  return 0;
}
