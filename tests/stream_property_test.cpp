// The central correctness property of the whole system: on randomized
// synthetic streams and generated queries, every engine (TCM in all
// configurations, SymBi-post, LocalEnum-post, Timing) reports exactly the
// per-event occurred/expired embedding sets of the brute-force snapshot
// oracle.
#include <gtest/gtest.h>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "common/rng.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

struct StreamCase {
  uint64_t seed;
  bool directed;
  size_t query_edges;
  double density;
  size_t edge_labels;
};

std::string CaseName(const ::testing::TestParamInfo<StreamCase>& info) {
  const StreamCase& c = info.param;
  return "seed" + std::to_string(c.seed) +
         (c.directed ? "_dir" : "_undir") + "_m" +
         std::to_string(c.query_edges) + "_d" +
         std::to_string(static_cast<int>(c.density * 100)) + "_el" +
         std::to_string(c.edge_labels);
}

class StreamEquivalence : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamEquivalence, AllEnginesMatchOracle) {
  const StreamCase param = GetParam();
  SyntheticSpec spec;
  spec.num_vertices = 14;
  spec.num_edges = 130;
  spec.num_vertex_labels = 3;
  spec.num_edge_labels = param.edge_labels;
  spec.avg_parallel_edges = 2.2;
  spec.directed = param.directed;
  spec.seed = param.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);

  QueryGenOptions opt;
  opt.num_edges = param.query_edges;
  opt.density = param.density;
  opt.window = 40;
  Rng rng(param.seed + 1000);
  QueryGraph q;
  if (!GenerateQuery(ds, opt, &rng, &q)) {
    GTEST_SKIP() << "dataset too sparse for requested query";
  }
  const GraphSchema schema{ds.directed, ds.vertex_labels};
  const Timestamp window = 40;

  uint64_t reference = 0;
  {
    SingleQueryContext<TcmEngine> run(q, schema);
    reference = testlib::CheckEngineAgainstOracle(ds, q, window, &run);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.prune_no_relation = false;
    config.prune_uniform = false;
    config.prune_failing_set = false;
    SingleQueryContext<TcmEngine> run(q, schema, config);
    EXPECT_EQ(testlib::CheckEngineAgainstOracle(ds, q, window, &run),
              reference);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.use_tc_filter = false;
    SingleQueryContext<TcmEngine> run(q, schema, config);
    EXPECT_EQ(testlib::CheckEngineAgainstOracle(ds, q, window, &run),
              reference);
    if (HasFailure()) return;
  }
  {
    SingleQueryContext<PostFilterEngine> run(q, schema);
    EXPECT_EQ(testlib::CheckEngineAgainstOracle(ds, q, window, &run),
              reference);
    if (HasFailure()) return;
  }
  {
    SingleQueryContext<LocalEnumEngine> run(q, schema);
    EXPECT_EQ(testlib::CheckEngineAgainstOracle(ds, q, window, &run),
              reference);
    if (HasFailure()) return;
  }
  {
    SingleQueryContext<TimingEngine> run(q, schema);
    EXPECT_EQ(testlib::CheckEngineAgainstOracle(ds, q, window, &run),
              reference);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamEquivalence,
    ::testing::Values(StreamCase{31, false, 3, 0.0, 1},
                      StreamCase{32, false, 3, 1.0, 1},
                      StreamCase{33, false, 4, 0.5, 1},
                      StreamCase{34, true, 3, 0.5, 1},
                      StreamCase{35, true, 4, 0.25, 1},
                      StreamCase{36, false, 4, 0.75, 2},
                      StreamCase{37, true, 4, 1.0, 2},
                      StreamCase{38, false, 5, 0.5, 1},
                      StreamCase{39, false, 5, 0.0, 2},
                      StreamCase{40, true, 5, 0.75, 1},
                      StreamCase{41, false, 6, 0.25, 1},
                      StreamCase{42, true, 6, 0.5, 2}),
    CaseName);

}  // namespace
}  // namespace tcsm
