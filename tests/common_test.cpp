#include <gtest/gtest.h>

#include <set>

#include "common/bitmask.h"
#include "common/bloom.h"
#include "common/memory_meter.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/types.h"

namespace tcsm {
namespace {

TEST(Bitmask, BitAndHasBit) {
  EXPECT_EQ(Bit(0), 1u);
  EXPECT_EQ(Bit(5), 32u);
  EXPECT_TRUE(HasBit(0b101010, 1));
  EXPECT_FALSE(HasBit(0b101010, 0));
  EXPECT_TRUE(HasBit(Bit(63), 63));
}

TEST(Bitmask, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(PopCount(~Mask64{0}), 64);
}

TEST(Bitmask, BitRangeIteratesSetBits) {
  std::vector<uint32_t> bits;
  for (uint32_t i : BitRange(0b1000101)) bits.push_back(i);
  EXPECT_EQ(bits, (std::vector<uint32_t>{0, 2, 6}));
  for (uint32_t i : BitRange(0)) {
    FAIL() << "empty mask must not iterate, got " << i;
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfSkewsTowardSmallIndexes) {
  Rng rng(13);
  size_t low = 0;
  const size_t n = 1000;
  for (size_t i = 0; i < 4000; ++i) {
    if (rng.NextZipf(n, 1.0) < n / 10) ++low;
  }
  // With alpha=1, far more than 10% of mass is on the first decile.
  EXPECT_GT(low, 1600u);
}

TEST(Rng, ZipfUniformWhenAlphaZero) {
  Rng rng(17);
  size_t low = 0;
  for (size_t i = 0; i < 4000; ++i) {
    if (rng.NextZipf(1000, 0.0) < 100) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low), 400.0, 120.0);
}

TEST(Rng, GeometricMeanRoughlyMatches) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextGeometric(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.3);
}

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad");
  EXPECT_NE(s.ToString().find("bad"), std::string::npos);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::NotFound("x"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(Timer, UnlimitedDeadlineNeverExpires) {
  Deadline d;
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Timer, ZeroOrNegativeLimitMeansUnlimited) {
  Deadline d(0);
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Timer, TightDeadlineExpires) {
  Deadline d(0.5);
  // Spin until well past the limit.
  StopWatch watch;
  while (watch.ElapsedMs() < 2.0) {
  }
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(MemoryMeter, PeakTracksMaximum) {
  PeakMeter m;
  m.Observe(10);
  m.Observe(5);
  m.Observe(20);
  m.Observe(1);
  EXPECT_EQ(m.peak_bytes(), 20u);
  m.Reset();
  EXPECT_EQ(m.peak_bytes(), 0u);
}

TEST(MemoryMeter, ProcessPeakRssPositive) {
  EXPECT_GT(ProcessPeakRssBytes(), 0u);
}

TEST(Types, PackPairRoundTrips) {
  const uint64_t k = PackPair(123456, 654321);
  EXPECT_EQ(PairFirst(k), 123456u);
  EXPECT_EQ(PairSecond(k), 654321u);
}

TEST(Bloom, NeverForgetsAddedKeys) {
  // One-sided error: a key that was added always tests positive.
  Bloom64 b;
  EXPECT_TRUE(b.empty());
  for (uint64_t k = 0; k < 500; ++k) {
    b.Add(k * 0x9e3779b97f4a7c15ull + 7);
    EXPECT_TRUE(b.MayContain(k * 0x9e3779b97f4a7c15ull + 7));
  }
  EXPECT_FALSE(b.empty());
  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.bits(), 0u);
}

TEST(Bloom, EmptyFilterRejectsEverything) {
  const Bloom64 b;
  for (uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(b.MayContain(k));
}

TEST(Bloom, SparseFillHasUsefulSelectivity) {
  // With a handful of keys (the per-vertex signature regime: a few
  // (elabel, vlabel) pairs), most absent keys must test negative — the
  // whole point of consulting the mask before a bucket scan.
  Bloom64 b;
  for (uint64_t k = 0; k < 4; ++k) b.Add(PackPair(Label(k), Label(k + 9)));
  size_t false_positives = 0;
  const size_t probes = 10000;
  for (uint64_t k = 0; k < probes; ++k) {
    if (b.MayContain(PackPair(Label(k + 100), Label(k + 5000)))) {
      ++false_positives;
    }
  }
  // 4 keys set <= 8 of 64 bits; the expected FP rate is ~(8/64)^2 < 2%.
  // Allow a wide margin — the property that matters is "mostly negative".
  EXPECT_LT(false_positives, probes / 10);
}

TEST(Bloom, DeterministicAcrossInstances) {
  Bloom64 a, b;
  a.Add(42);
  b.Add(42);
  EXPECT_EQ(a.bits(), b.bits());
}

}  // namespace
}  // namespace tcsm
