#include <gtest/gtest.h>

#include "core/automorphism.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

QueryGraph Triangle(bool ordered) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(2, 0);
  if (ordered) {
    TCSM_CHECK(q.AddOrder(a, b).ok());
    TCSM_CHECK(q.AddOrder(b, c).ok());
  }
  return q;
}

TEST(Automorphism, UnorderedTriangleHasFullSymmetry) {
  const auto autos = ComputeAutomorphisms(Triangle(false));
  EXPECT_EQ(autos.size(), 6u);  // S3
}

TEST(Automorphism, TotalOrderKillsSymmetry) {
  const auto autos = ComputeAutomorphisms(Triangle(true));
  EXPECT_EQ(autos.size(), 1u);  // identity only
  // Identity maps everything to itself.
  for (VertexId u = 0; u < 3; ++u) EXPECT_EQ(autos[0].vertex_map[u], u);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(autos[0].edge_map[e], e);
}

TEST(Automorphism, LabelsBreakSymmetry) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);  // distinct label
  q.AddVertex(0);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 0);
  EXPECT_EQ(ComputeAutomorphisms(q).size(), 2u);  // swap the two 0-labels
}

TEST(Automorphism, DirectionBreaksReflection) {
  QueryGraph q(/*directed=*/true);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 0);
  // A directed 3-cycle keeps rotations but loses reflections.
  EXPECT_EQ(ComputeAutomorphisms(q).size(), 3u);
}

TEST(Automorphism, StarQueryZombiesInterchangeable) {
  QueryGraph q(/*directed=*/true);
  const VertexId attacker = q.AddVertex(0);
  const VertexId victim = q.AddVertex(1);
  for (int i = 0; i < 3; ++i) {
    const VertexId z = q.AddVertex(2);
    const EdgeId cmd = q.AddEdge(attacker, z);
    const EdgeId atk = q.AddEdge(z, victim);
    TCSM_CHECK(q.AddOrder(cmd, atk).ok());
  }
  EXPECT_EQ(ComputeAutomorphisms(q).size(), 6u);  // 3! zombie permutations
}

TEST(CanonicalSink, CollapsesZombiePermutations) {
  // Two interchangeable zombies: each attack instance yields 2 mappings;
  // the canonical sink must forward exactly one.
  QueryGraph q(/*directed=*/true);
  const VertexId attacker = q.AddVertex(0);
  const VertexId victim = q.AddVertex(0);
  const VertexId z1 = q.AddVertex(0);
  const VertexId z2 = q.AddVertex(0);
  const EdgeId c1 = q.AddEdge(attacker, z1);
  const EdgeId a1 = q.AddEdge(z1, victim);
  const EdgeId c2 = q.AddEdge(attacker, z2);
  const EdgeId a2 = q.AddEdge(z2, victim);
  ASSERT_TRUE(q.AddOrder(c1, a1).ok());
  ASSERT_TRUE(q.AddOrder(c2, a2).ok());

  TemporalDataset ds;
  ds.directed = true;
  ds.vertex_labels.assign(6, 0);
  auto add = [&](VertexId s, VertexId d, Timestamp t) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = s;
    e.dst = d;
    e.ts = t;
    ds.edges.push_back(e);
  };
  add(0, 2, 1);
  add(0, 3, 2);
  add(2, 1, 3);
  add(3, 1, 4);

  CollectingSink inner;
  CanonicalSink canonical(q, &inner);
  EXPECT_EQ(canonical.GroupSize(), 2u);

  SingleQueryContext<TcmEngine> run(q, GraphSchema{true, ds.vertex_labels});
  run.engine().set_sink(&canonical);
  StreamConfig config;
  config.window = 100;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);
  // Engine counters see both mappings; the inner sink sees one instance
  // occurring and one expiring.
  EXPECT_EQ(res.occurred, 2u);
  size_t occurred = 0;
  size_t expired = 0;
  for (const auto& [emb, kind] : inner.matches()) {
    (kind == MatchKind::kOccurred ? occurred : expired) += 1;
  }
  EXPECT_EQ(occurred, 1u);
  EXPECT_EQ(expired, 1u);
}

TEST(CanonicalSink, IdentityGroupForwardsEverything) {
  const QueryGraph q = testlib::RunningExampleQuery();
  // Distinct vertex labels: only the identity automorphism.
  CollectingSink inner;
  CanonicalSink canonical(q, &inner);
  EXPECT_EQ(canonical.GroupSize(), 1u);

  SingleQueryContext<TcmEngine> run(q, testlib::RunningExampleSchema());
  run.engine().set_sink(&canonical);
  StreamConfig config;
  config.window = 10;
  const StreamResult res =
      RunStream(testlib::RunningExampleDataset(), config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(inner.matches().size(), res.occurred + res.expired);
}

}  // namespace
}  // namespace tcsm
