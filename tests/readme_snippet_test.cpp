// Keeps the README's code snippets honest: this test mirrors the
// quickstart fragment (directed 3-cycle in time order) and must compile
// and behave as documented.
#include <gtest/gtest.h>

#include "core/stream_driver.h"
#include "core/tcm_engine.h"

namespace tcsm {
namespace {

TEST(ReadmeSnippet, DirectedOrderedTriangle) {
  // 1. Temporal query graph: a directed 3-cycle matched in time order.
  QueryGraph query(/*directed=*/true);
  VertexId a = query.AddVertex(/*label=*/0);
  VertexId b = query.AddVertex(0);
  VertexId c = query.AddVertex(0);
  EdgeId t1 = query.AddEdge(a, b);
  EdgeId t2 = query.AddEdge(b, c);
  EdgeId t3 = query.AddEdge(c, a);
  ASSERT_TRUE(query.AddOrder(t1, t2).ok());  // t1 < t2
  ASSERT_TRUE(query.AddOrder(t2, t3).ok());  // t2 < t3

  // 2. A stream context owning the shared sliding-window graph, with one
  //    TCM engine attached as a read-only view.
  const std::vector<Label> vertex_labels(5, 0);
  SharedStreamContext stream(GraphSchema{/*directed=*/true, vertex_labels});
  TcmEngine engine(query, stream.graph());
  stream.Attach(&engine);
  CollectingSink sink;
  engine.set_sink(&sink);

  // 3. Stream a dataset with a time window.
  TemporalDataset dataset;
  dataset.directed = true;
  dataset.vertex_labels = vertex_labels;
  auto add = [&](VertexId s, VertexId d, Timestamp t) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(dataset.edges.size());
    e.src = s;
    e.dst = d;
    e.ts = t;
    dataset.edges.push_back(e);
  };
  add(0, 1, 10);   // t1 candidate
  add(1, 2, 20);   // t2 candidate
  add(2, 0, 30);   // completes the ordered ring
  add(2, 0, 15);   // violates t2 < t3 and completes no rotation either
  add(0, 1, 900);  // much later; ring members will have expired

  StreamConfig config;
  config.window = 800;
  StreamResult result = RunStream(dataset, config, &stream);

  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.occurred, 1u);
  EXPECT_EQ(result.expired, 1u);
  ASSERT_FALSE(sink.matches().empty());
  const Embedding& m = sink.matches().front().first;
  EXPECT_EQ(m.vertices, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(m.edges, (std::vector<EdgeId>{0, 1, 2}));
}

}  // namespace
}  // namespace tcsm
