#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "datasets/presets.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

namespace tcsm {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "223344"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatMegabytes(3 * 1024 * 1024), "3.00");
}

TEST(BenchArgs, Defaults) {
  const char* argv[] = {"bench"};
  const BenchArgs args = ParseBenchArgs(1, const_cast<char**>(argv));
  EXPECT_EQ(args.datasets.size(), 6u);
  EXPECT_GT(args.queries_per_set, 0u);
  EXPECT_GT(args.time_limit_ms, 0);
}

TEST(BenchArgs, ParsesFlags) {
  const char* argv[] = {"bench", "--datasets=yahoo,netflow", "--queries=9",
                        "--limit_ms=123.5", "--scale=0.5", "--seed=77"};
  const BenchArgs args = ParseBenchArgs(6, const_cast<char**>(argv));
  ASSERT_EQ(args.datasets.size(), 2u);
  EXPECT_EQ(args.datasets[0], "yahoo");
  EXPECT_EQ(args.datasets[1], "netflow");
  EXPECT_EQ(args.queries_per_set, 9u);
  EXPECT_DOUBLE_EQ(args.time_limit_ms, 123.5);
  EXPECT_DOUBLE_EQ(args.scale, 0.5);
  EXPECT_EQ(args.seed, 77u);
}

TEST(EffectiveWindow, ScalesByPaperRatioWithFloorAndCap) {
  TemporalDataset ds = MakePreset("superuser", 1.0);  // 48k edges, 1.44M
  const Timestamp w = EffectiveWindow(ds, 30000);
  EXPECT_NEAR(static_cast<double>(w), 30000.0 * 48000 / 1.44e6, 2.0);
  // Floor: sparse ratio datasets get at least units/30 live edges.
  TemporalDataset nf = MakePreset("netflow", 1.0);  // ratio would give ~81
  EXPECT_EQ(EffectiveWindow(nf, 30000), 1000);
  // Cap: never more than a quarter of the stream.
  TemporalDataset tiny = MakePreset("superuser", 0.02);
  EXPECT_LE(EffectiveWindow(tiny, 50000),
            static_cast<Timestamp>(tiny.NumEdges() / 4 + 1));
  // Unknown datasets: min(units, |E|).
  TemporalDataset unknown = tiny;
  unknown.name = "custom";
  EXPECT_EQ(EffectiveWindow(unknown, 100), 100);
}

TEST(Engines, FactoryProducesAllKinds) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);
  const GraphSchema schema{false, {0, 0, 0}};
  SharedStreamContext ctx(schema);
  for (const EngineKind kind :
       {EngineKind::kTcm, EngineKind::kTcmPruning, EngineKind::kTcmNoFilter,
        EngineKind::kSymbiPost, EngineKind::kLocalEnum,
        EngineKind::kTiming}) {
    auto engine = MakeEngine(kind, q, ctx.graph());
    ASSERT_NE(engine, nullptr);
    EXPECT_FALSE(engine->name().empty());
    EXPECT_STRNE(EngineKindName(kind), "?");
  }
}

TEST(AverageElapsedMs, ExcludesUniversallyUnsolved) {
  QuerySetResult a;
  a.per_query_ms = {10, 100, 100};
  a.per_query_solved = {1, 0, 0};
  QuerySetResult b;
  b.per_query_ms = {20, 100, 50};
  b.per_query_solved = {1, 0, 1};
  const std::vector<QuerySetResult> results{a, b};
  // Query 1 unsolved by all -> excluded. Engine a: (10 + limit)/2.
  EXPECT_DOUBLE_EQ(AverageElapsedMs(results, 0, 100), (10 + 100) / 2.0);
  EXPECT_DOUBLE_EQ(AverageElapsedMs(results, 1, 100), (20 + 50) / 2.0);
}

TEST(RunQuerySet, SequentialAndParallelAgree) {
  SyntheticSpec spec;
  spec.num_vertices = 40;
  spec.num_edges = 600;
  spec.num_vertex_labels = 2;
  spec.avg_parallel_edges = 2.0;
  spec.seed = 31;
  const TemporalDataset ds = GenerateSynthetic(spec);
  QueryGenOptions opt;
  opt.num_edges = 3;
  opt.density = 0.5;
  opt.window = 150;
  const auto queries = GenerateQuerySet(ds, opt, 4, 3);
  ASSERT_FALSE(queries.empty());

  const QuerySetResult seq =
      RunQuerySet(ds, queries, EngineKind::kTcm, 150, 0);
  const QuerySetResult par = RunQuerySetParallel(
      ds, queries, EngineKind::kTcm, 150, 0,
      std::max(2u, std::thread::hardware_concurrency()));
  ASSERT_EQ(seq.per_query_matches.size(), par.per_query_matches.size());
  for (size_t i = 0; i < seq.per_query_matches.size(); ++i) {
    EXPECT_EQ(seq.per_query_matches[i], par.per_query_matches[i]) << i;
    EXPECT_EQ(seq.per_query_solved[i], par.per_query_solved[i]) << i;
  }
  EXPECT_EQ(seq.NumSolved(), queries.size());
}

TEST(RunQuerySet, ReportsPeakMemory) {
  SyntheticSpec spec;
  spec.num_vertices = 30;
  spec.num_edges = 300;
  spec.seed = 5;
  const TemporalDataset ds = GenerateSynthetic(spec);
  QueryGenOptions opt;
  opt.num_edges = 3;
  opt.window = 100;
  const auto queries = GenerateQuerySet(ds, opt, 2, 7);
  ASSERT_FALSE(queries.empty());
  const QuerySetResult r =
      RunQuerySet(ds, queries, EngineKind::kTiming, 100, 0);
  EXPECT_GT(r.AvgPeakMemory(), 0.0);
}

}  // namespace
}  // namespace tcsm
