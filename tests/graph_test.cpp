#include <gtest/gtest.h>

#include "graph/temporal_graph.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

TEST(TemporalGraph, InsertAndAdjacency) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(1);
  const VertexId c = g.AddVertex(0);
  const EdgeId e0 = g.InsertEdge(a, b, 1, 7);
  const EdgeId e1 = g.InsertEdge(b, c, 2);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumAliveEdges(), 2u);
  EXPECT_EQ(g.Edge(e0).label, 7u);
  EXPECT_EQ(g.Degree(b), 2u);
  EXPECT_EQ(g.Adjacency(b)[0].nbr, a);
  EXPECT_EQ(g.Adjacency(b)[0].edge, e0);
  EXPECT_FALSE(g.Adjacency(b)[0].out);  // edge a->b enters b
  EXPECT_TRUE(g.Adjacency(b)[1].out);
  EXPECT_EQ(g.Adjacency(b)[1].edge, e1);
}

TEST(TemporalGraph, ParallelEdgesKeepChronologicalOrder) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  for (Timestamp t = 1; t <= 5; ++t) g.InsertEdge(a, b, t);
  ASSERT_EQ(g.Degree(a), 5u);
  for (size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_LT(g.Adjacency(a)[i].ts, g.Adjacency(a)[i + 1].ts);
  }
}

TEST(TemporalGraph, FifoRemovalIsConstantPathAndCorrect) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  std::vector<EdgeId> ids;
  for (Timestamp t = 1; t <= 4; ++t) ids.push_back(g.InsertEdge(a, b, t));
  g.RemoveEdge(ids[0]);
  EXPECT_FALSE(g.Alive(ids[0]));
  EXPECT_EQ(g.NumAliveEdges(), 3u);
  EXPECT_EQ(g.Adjacency(a).front().edge, ids[1]);
  EXPECT_EQ(g.Adjacency(b).front().edge, ids[1]);
}

TEST(TemporalGraph, OutOfOrderRemovalFallsBackToScan) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  const VertexId c = g.AddVertex(0);
  const EdgeId e0 = g.InsertEdge(a, b, 1);
  const EdgeId e1 = g.InsertEdge(a, c, 2);
  const EdgeId e2 = g.InsertEdge(a, b, 3);
  g.RemoveEdge(e1);  // middle of a's adjacency
  EXPECT_EQ(g.Degree(a), 2u);
  EXPECT_EQ(g.Adjacency(a)[0].edge, e0);
  EXPECT_EQ(g.Adjacency(a)[1].edge, e2);
  EXPECT_EQ(g.Degree(c), 0u);
}

TEST(TemporalGraph, DirectedFlagsOnEntries) {
  TemporalGraph g(/*directed=*/true);
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  g.InsertEdge(a, b, 1);
  EXPECT_TRUE(g.directed());
  EXPECT_TRUE(g.Adjacency(a)[0].out);
  EXPECT_FALSE(g.Adjacency(b)[0].out);
}

TEST(TemporalGraph, ClearEdgesKeepsVertices) {
  TemporalGraph g = testlib::RunningExampleGraph();
  EXPECT_EQ(g.NumAliveEdges(), 14u);
  g.ClearEdges();
  EXPECT_EQ(g.NumAliveEdges(), 0u);
  EXPECT_EQ(g.NumVertices(), 7u);
  EXPECT_EQ(g.Degree(testlib::kV4), 0u);
}

TEST(TemporalGraph, MemoryEstimateGrowsWithEdges) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const size_t empty = g.EstimateMemoryBytes();
  for (Timestamp t = 1; t <= 100; ++t) g.InsertEdge(0, 1, t);
  EXPECT_GT(g.EstimateMemoryBytes(), empty);
}

TEST(TemporalDataset, StatsMatchRunningExample) {
  const TemporalDataset ds = testlib::RunningExampleDataset();
  const DatasetStats s = ds.ComputeStats();
  EXPECT_EQ(s.num_vertices, 7u);
  EXPECT_EQ(s.num_edges, 14u);
  EXPECT_EQ(s.num_edge_labels, 1u);
  // 6 distinct adjacent pairs: (v1,v2),(v4,v5),(v1,v4),(v4,v7),(v5,v7),(v2,v5)
  EXPECT_NEAR(s.avg_parallel_edges, 14.0 / 6.0, 1e-9);
  EXPECT_EQ(s.min_ts, 1);
  EXPECT_EQ(s.max_ts, 14);
  EXPECT_NEAR(s.window_unit, 1.0, 1e-9);
}

TEST(TemporalGraph, CountsNonFifoRemovals) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  const EdgeId a = g.InsertEdge(0, 1, 1);
  const EdgeId b = g.InsertEdge(0, 1, 2);
  const EdgeId c = g.InsertEdge(1, 2, 3);
  EXPECT_EQ(g.non_fifo_removals(), 0u);
  // b sits behind a in both endpoint deques: linear-scan fallback.
  g.RemoveEdge(b);
  EXPECT_EQ(g.non_fifo_removals(), 1u);
  // a and c are now at the front of every deque: FIFO fast path.
  g.RemoveEdge(a);
  g.RemoveEdge(c);
  EXPECT_EQ(g.non_fifo_removals(), 1u);
  // ClearEdges resets the per-run stat.
  g.ClearEdges();
  EXPECT_EQ(g.non_fifo_removals(), 0u);
}

TEST(TemporalDataset, RankTimestampsProducesDenseRanks) {
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  for (const Timestamp t : {100, 7, 55, 7}) {
    TemporalEdge e;
    e.src = 0;
    e.dst = 1;
    e.ts = t;
    ds.edges.push_back(e);
  }
  ds.RankTimestamps();
  ASSERT_EQ(ds.edges.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ds.edges[i].ts, static_cast<Timestamp>(i + 1));
    EXPECT_EQ(ds.edges[i].id, i);
  }
}

}  // namespace
}  // namespace tcsm
