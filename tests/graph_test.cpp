#include <gtest/gtest.h>

#include <vector>

#include "graph/temporal_graph.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

/// Flattens one (elabel, nbr_label) bucket into a vector for assertions.
std::vector<AdjEntry> Bucket(const TemporalGraph& g, VertexId v, Label elabel,
                             Label nbr_label) {
  std::vector<AdjEntry> out;
  for (const AdjEntry& a : g.NeighborsMatching(v, elabel, nbr_label)) {
    out.push_back(a);
  }
  return out;
}

/// Flattens all buckets of v (ForEachNeighbor order).
std::vector<AdjEntry> AllNeighbors(const TemporalGraph& g, VertexId v) {
  std::vector<AdjEntry> out;
  g.ForEachNeighbor(v, [&](const AdjEntry& a) { out.push_back(a); });
  return out;
}

TEST(TemporalGraph, InsertAndAdjacency) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(1);
  const VertexId c = g.AddVertex(0);
  const EdgeId e0 = g.InsertEdge(a, b, 1, 7);
  const EdgeId e1 = g.InsertEdge(b, c, 2);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumAliveEdges(), 2u);
  EXPECT_EQ(g.Edge(e0).label, 7u);
  EXPECT_EQ(g.Degree(b), 2u);
  // b's two edges carry different labels, hence distinct buckets.
  const auto b0 = Bucket(g, b, 7, 0);
  ASSERT_EQ(b0.size(), 1u);
  EXPECT_EQ(b0[0].nbr, a);
  EXPECT_EQ(b0[0].edge, e0);
  EXPECT_FALSE(b0[0].out);  // edge a->b enters b
  const auto b1 = Bucket(g, b, 0, 0);
  ASSERT_EQ(b1.size(), 1u);
  EXPECT_EQ(b1[0].edge, e1);
  EXPECT_TRUE(b1[0].out);
  EXPECT_EQ(AllNeighbors(g, b).size(), 2u);
}

TEST(TemporalGraph, BucketsPartitionBySignature) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(1);
  const VertexId c = g.AddVertex(2);
  g.InsertEdge(a, b, 1, 5);
  g.InsertEdge(a, c, 2, 5);
  g.InsertEdge(a, b, 3, 6);
  // Same edge label, different neighbor labels: separate buckets.
  EXPECT_EQ(Bucket(g, a, 5, 1).size(), 1u);
  EXPECT_EQ(Bucket(g, a, 5, 2).size(), 1u);
  EXPECT_EQ(Bucket(g, a, 6, 1).size(), 1u);
  EXPECT_TRUE(Bucket(g, a, 6, 2).empty());
  EXPECT_TRUE(Bucket(g, a, 7, 1).empty());
  EXPECT_EQ(g.Degree(a), 3u);
  EXPECT_EQ(AllNeighbors(g, a).size(), 3u);
}

TEST(TemporalGraph, ParallelEdgesKeepChronologicalOrderInBucket) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  g.AddVertex(0);
  for (Timestamp t = 1; t <= 5; ++t) g.InsertEdge(a, 1, t);
  ASSERT_EQ(g.Degree(a), 5u);
  const auto bucket = Bucket(g, a, 0, 0);
  ASSERT_EQ(bucket.size(), 5u);
  for (size_t i = 0; i + 1 < bucket.size(); ++i) {
    EXPECT_LT(bucket[i].ts, bucket[i + 1].ts);
  }
}

TEST(TemporalGraph, FifoRemoval) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  std::vector<EdgeId> ids;
  for (Timestamp t = 1; t <= 4; ++t) ids.push_back(g.InsertEdge(a, b, t));
  g.RemoveEdge(ids[0]);
  EXPECT_FALSE(g.Alive(ids[0]));
  EXPECT_EQ(g.NumAliveEdges(), 3u);
  const auto bucket = Bucket(g, a, 0, 0);
  ASSERT_EQ(bucket.size(), 3u);
  EXPECT_EQ(bucket.front().edge, ids[1]);
  EXPECT_EQ(Bucket(g, b, 0, 0).front().edge, ids[1]);
}

TEST(TemporalGraph, OutOfOrderRemovalPreservesBucketOrder) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  const VertexId c = g.AddVertex(0);
  const EdgeId e0 = g.InsertEdge(a, b, 1);
  const EdgeId e1 = g.InsertEdge(a, c, 2);
  const EdgeId e2 = g.InsertEdge(a, b, 3);
  g.RemoveEdge(e1);  // middle of a's adjacency — O(1), no scan fallback
  EXPECT_EQ(g.Degree(a), 2u);
  const auto bucket = Bucket(g, a, 0, 0);
  ASSERT_EQ(bucket.size(), 2u);
  EXPECT_EQ(bucket[0].edge, e0);
  EXPECT_EQ(bucket[1].edge, e2);
  EXPECT_EQ(g.Degree(c), 0u);
}

TEST(TemporalGraph, DirectedFlagsOnEntries) {
  TemporalGraph g(/*directed=*/true);
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  g.InsertEdge(a, b, 1);
  EXPECT_TRUE(g.directed());
  EXPECT_TRUE(Bucket(g, a, 0, 0)[0].out);
  EXPECT_FALSE(Bucket(g, b, 0, 0)[0].out);
}

TEST(TemporalGraph, SlotsAreRecycledUnderChurn) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  // Window of 4 live edges, churned for 100 arrivals: the slot pool must
  // stay at the high-water window size (+1 pending tombstone), while
  // external ids keep growing.
  std::vector<EdgeId> live;
  for (Timestamp t = 1; t <= 100; ++t) {
    live.push_back(g.InsertEdge(0, 1, t));
    if (live.size() > 4) {
      g.RemoveEdge(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(g.NumAliveEdges(), 4u);
  EXPECT_EQ(g.NumEdgesEver(), 100u);
  EXPECT_LE(g.NumSlots(), 6u);
  EXPECT_LE(g.IdSpan(), 6u);
  // The live window is still fully readable with its original ids.
  for (const EdgeId id : live) {
    EXPECT_TRUE(g.Alive(id));
    EXPECT_EQ(g.Edge(id).id, id);
  }
  // Long-expired ids resolve to "not alive", never to a recycled edge.
  EXPECT_FALSE(g.Alive(0));
  EXPECT_FALSE(g.Alive(50));
}

TEST(TemporalGraph, RemovedEdgeStaysReadableUntilNextInsert) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const EdgeId e0 = g.InsertEdge(0, 1, 1);
  const EdgeId e1 = g.InsertEdge(0, 1, 2);
  g.RemoveEdge(e0);
  // Deferred reclamation: the tombstone record is intact (the shared
  // context's NotifyRemoved phase reads it).
  EXPECT_FALSE(g.Alive(e0));
  EXPECT_EQ(g.Edge(e0).ts, 1);
  EXPECT_EQ(g.Edge(e0).id, e0);
  EXPECT_TRUE(g.Alive(e1));
  g.InsertEdge(0, 1, 3);  // reclaims e0's slot
  EXPECT_FALSE(g.Alive(e0));
}

TEST(TemporalGraph, InsertEdgeAsSkippedIdsActReclaimed) {
  // A shard holding every other edge of a global stream: the skipped ids
  // must behave exactly like expired-and-reclaimed ids.
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const EdgeId e0 = g.InsertEdgeAs(0, 0, 1, 1);
  const EdgeId e4 = g.InsertEdgeAs(4, 0, 1, 2);
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e4, 4u);
  EXPECT_EQ(g.NumEdgesEver(), 5u);
  EXPECT_EQ(g.NumAliveEdges(), 2u);
  EXPECT_TRUE(g.Alive(e0));
  EXPECT_TRUE(g.Alive(e4));
  for (const EdgeId hole : {1u, 2u, 3u}) EXPECT_FALSE(g.Alive(hole));
  EXPECT_EQ(g.Edge(e4).ts, 2);
  // Plain InsertEdge continues the same id sequence after the subset.
  EXPECT_EQ(g.InsertEdge(0, 1, 3), 5u);
}

TEST(TemporalGraph, InsertEdgeAsIdSpanBoundedUnderChurn) {
  // FIFO churn over a sparse subset (1 of every 4 global ids): the holes
  // must slide out of the id ring with the expiries, keeping the span
  // O(window) rather than O(skipped stream).
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  std::vector<EdgeId> live;
  for (Timestamp t = 1; t <= 100; ++t) {
    live.push_back(g.InsertEdgeAs(static_cast<EdgeId>(4 * t), 0, 1, t));
    if (live.size() > 4) {
      g.RemoveEdge(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(g.NumAliveEdges(), 4u);
  EXPECT_LE(g.NumSlots(), 6u);
  EXPECT_LE(g.IdSpan(), 4u * 6u);
  for (const EdgeId id : live) {
    EXPECT_TRUE(g.Alive(id));
    EXPECT_EQ(g.Edge(id).id, id);
  }
}

TEST(TemporalGraph, EdgeNearAndAliveEdgeMatchPlainReads) {
  TemporalGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  const EdgeId e0 = g.InsertEdge(a, b, 1);
  EXPECT_EQ(&g.EdgeNear(a, e0), &g.Edge(e0));
  EXPECT_TRUE(g.AliveEdge(g.Edge(e0)));
  const TemporalEdge copy = g.Edge(e0);
  g.RemoveEdge(e0);
  EXPECT_FALSE(g.AliveEdge(copy));
}

TEST(TemporalGraph, VertexSigAccessorsMirrorMayHaveMatching) {
  TemporalGraph g(/*directed=*/true);
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(1);
  g.InsertEdge(a, b, 1, 7);
  EXPECT_TRUE(g.VertexSigOut(a).MayContain(PackPair(7, 1)));
  EXPECT_TRUE(g.VertexSigIn(b).MayContain(PackPair(7, 0)));
  EXPECT_EQ(g.VertexSigAny(a).MayContain(PackPair(7, 1)),
            g.MayHaveMatching(a, 7, 1, /*want_out=*/true));
  EXPECT_FALSE(g.VertexSigIn(a).MayContain(PackPair(7, 1)));
  EXPECT_FALSE(g.MayHaveMatching(a, 7, 1, /*want_out=*/false));
}

TEST(TemporalGraph, ClearEdgesKeepsVerticesAndRestartsIds) {
  TemporalGraph g = testlib::RunningExampleGraph();
  EXPECT_EQ(g.NumAliveEdges(), 14u);
  g.ClearEdges();
  EXPECT_EQ(g.NumAliveEdges(), 0u);
  EXPECT_EQ(g.NumEdgesEver(), 0u);
  EXPECT_EQ(g.NumSlots(), 0u);
  EXPECT_EQ(g.NumVertices(), 7u);
  EXPECT_EQ(g.Degree(testlib::kV4), 0u);
  EXPECT_EQ(g.InsertEdge(testlib::kV1, testlib::kV2, 1), 0u);
}

TEST(TemporalGraph, MemoryEstimateGrowsWithEdges) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const size_t empty = g.EstimateMemoryBytes();
  for (Timestamp t = 1; t <= 100; ++t) g.InsertEdge(0, 1, t);
  EXPECT_GT(g.EstimateMemoryBytes(), empty);
}

TEST(TemporalGraph, MemoryEstimateBoundedUnderChurn) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  // Fill a window of 8, then churn 10x as many arrivals through it: the
  // footprint must not grow with the stream length.
  std::vector<EdgeId> live;
  Timestamp t = 1;
  for (; t <= 8; ++t) live.push_back(g.InsertEdge(0, 1, t));
  const size_t at_window = g.EstimateMemoryBytes();
  for (; t <= 88; ++t) {
    live.push_back(g.InsertEdge(0, 1, t));
    g.RemoveEdge(live.front());
    live.erase(live.begin());
  }
  EXPECT_LE(g.EstimateMemoryBytes(), at_window * 2);
}

TEST(TemporalGraph, ForEachLiveEdgeAscendingIdOrder) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  const EdgeId e0 = g.InsertEdge(0, 1, 1);
  const EdgeId e1 = g.InsertEdge(1, 2, 2);
  const EdgeId e2 = g.InsertEdge(0, 2, 3);
  g.RemoveEdge(e1);
  std::vector<EdgeId> seen;
  g.ForEachLiveEdge([&](const TemporalEdge& e) { seen.push_back(e.id); });
  EXPECT_EQ(seen, (std::vector<EdgeId>{e0, e2}));
}

TEST(TemporalDataset, StatsMatchRunningExample) {
  const TemporalDataset ds = testlib::RunningExampleDataset();
  const DatasetStats s = ds.ComputeStats();
  EXPECT_EQ(s.num_vertices, 7u);
  EXPECT_EQ(s.num_edges, 14u);
  EXPECT_EQ(s.num_edge_labels, 1u);
  // 6 distinct adjacent pairs: (v1,v2),(v4,v5),(v1,v4),(v4,v7),(v5,v7),(v2,v5)
  EXPECT_NEAR(s.avg_parallel_edges, 14.0 / 6.0, 1e-9);
  EXPECT_EQ(s.min_ts, 1);
  EXPECT_EQ(s.max_ts, 14);
  EXPECT_NEAR(s.window_unit, 1.0, 1e-9);
}

TEST(TemporalDataset, RankTimestampsProducesDenseRanks) {
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  for (const Timestamp t : {100, 7, 55, 7}) {
    TemporalEdge e;
    e.src = 0;
    e.dst = 1;
    e.ts = t;
    ds.edges.push_back(e);
  }
  ds.RankTimestamps();
  ASSERT_EQ(ds.edges.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ds.edges[i].ts, static_cast<Timestamp>(i + 1));
    EXPECT_EQ(ds.edges[i].id, i);
  }
}

}  // namespace
}  // namespace tcsm
