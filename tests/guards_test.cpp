// Misuse guards: the library CHECK-fails loudly on contract violations
// instead of corrupting state.
#include <gtest/gtest.h>

#include "core/tcm_engine.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"
#include "testlib/running_example.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

TEST(Guards, SelfLoopsRejected) {
  TemporalGraph g;
  g.AddVertex(0);
  EXPECT_DEATH(g.InsertEdge(0, 0, 1), "self loops");
}

TEST(Guards, QuerySelfLoopRejected) {
  QueryGraph q;
  q.AddVertex(0);
  EXPECT_DEATH(q.AddEdge(0, 0), "self loops");
}

TEST(Guards, ParallelUndirectedQueryEdgesRejected) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);
  EXPECT_DEATH(q.AddEdge(1, 0), "parallel");
}

TEST(Guards, RemoveDeadEdgeRejected) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const EdgeId e = g.InsertEdge(0, 1, 1);
  g.RemoveEdge(e);
  EXPECT_DEATH(g.RemoveEdge(e), "");
}

TEST(Guards, ContextRequiresAscendingArrivalIds) {
  SharedStreamContext ctx(testlib::RunningExampleSchema());
  TemporalEdge e;
  // A seeked replay may start mid-stream, so a non-zero first id is
  // legal (the skipped ids become permanent holes) — but ids must keep
  // ascending from there.
  e.id = 5;
  e.src = testlib::kV1;
  e.dst = testlib::kV2;
  e.ts = 1;
  ctx.OnEdgeArrival(e);
  TemporalEdge stale = e;
  stale.id = 3;
  stale.ts = 2;
  EXPECT_DEATH(ctx.OnEdgeArrival(stale), "ascending");
}

TEST(Guards, EngineRejectsDisconnectedQuery) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  SharedStreamContext ctx(testlib::RunningExampleSchema());
  EXPECT_DEATH(TcmEngine(q, ctx.graph()), "connected");
}

TEST(Guards, EngineRejectsDirectednessMismatch) {
  QueryGraph q(/*directed=*/true);
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddEdge(0, 1);
  SharedStreamContext ctx(testlib::RunningExampleSchema());  // undirected
  EXPECT_DEATH(TcmEngine(q, ctx.graph()), "directed");
}

// Star pattern with symmetric branches (the DDoS shape): engines report
// one embedding per zombie assignment — mappings, not pattern instances —
// exactly like the oracle.
TEST(StarPattern, SymmetricBranchesCountMappings) {
  QueryGraph q(/*directed=*/true);
  const VertexId attacker = q.AddVertex(0);
  const VertexId victim = q.AddVertex(0);
  const VertexId z1 = q.AddVertex(0);
  const VertexId z2 = q.AddVertex(0);
  const EdgeId c1 = q.AddEdge(attacker, z1);
  const EdgeId a1 = q.AddEdge(z1, victim);
  const EdgeId c2 = q.AddEdge(attacker, z2);
  const EdgeId a2 = q.AddEdge(z2, victim);
  ASSERT_TRUE(q.AddOrder(c1, a1).ok());
  ASSERT_TRUE(q.AddOrder(c2, a2).ok());

  TemporalDataset ds;
  ds.directed = true;
  ds.vertex_labels.assign(6, 0);
  auto add = [&](VertexId s, VertexId d, Timestamp t) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = s;
    e.dst = d;
    e.ts = t;
    ds.edges.push_back(e);
  };
  // attacker 0, zombies 2 and 3, victim 1.
  add(0, 2, 1);
  add(0, 3, 2);
  add(2, 1, 3);
  add(3, 1, 4);

  SingleQueryContext<TcmEngine> run(q, GraphSchema{true, ds.vertex_labels});
  const uint64_t occurred =
      testlib::CheckEngineAgainstOracle(ds, q, 100, &run);
  // Two zombie assignments (z1,z2) -> (2,3) or (3,2).
  EXPECT_EQ(occurred, 2u);
}

}  // namespace
}  // namespace tcsm
