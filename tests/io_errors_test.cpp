// Error-handling contract of the `.tel` / query parsers (DESIGN.md §8):
// malformed input of any shape returns a Status carrying a line-numbered
// diagnostic — never a crash, never a silently wrong dataset.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "core/tcm_engine.h"
#include "graph/temporal_dataset.h"
#include "io/replay.h"
#include "io/stream_reader.h"
#include "io/stream_writer.h"
#include "io/tel_binary.h"
#include "query/query_io.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

/// Parses `text` as a whole `.tel` stream and expects a CorruptInput
/// status whose message carries "<source>:<line>:" and `what`.
void ExpectTelError(const std::string& text, size_t line,
                    const std::string& what) {
  std::istringstream in(text);
  auto result = ReadTelDataset(in, "test.tel");
  ASSERT_FALSE(result.ok()) << "parsed: " << text;
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptInput) << text;
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("test.tel:" + std::to_string(line) + ":"),
            std::string::npos)
      << "no line " << line << " diagnostic in: " << msg;
  EXPECT_NE(msg.find(what), std::string::npos)
      << "'" << what << "' not in: " << msg;
}

TEST(TelErrors, HeaderProblems) {
  ExpectTelError("", 0, "missing tel header");
  ExpectTelError("# only comments\n\n", 2, "missing tel header");
  ExpectTelError("telx 1 undirected\n", 1, "bad header");
  ExpectTelError("tel\n", 1, "bad header");
  ExpectTelError("tel 2 undirected\n", 1, "unsupported tel version");
  ExpectTelError("tel 1 sideways\n", 1, "bad directedness");
  ExpectTelError("tel 1 undirected vertices\n", 1, "key=value");
  ExpectTelError("tel 1 undirected vertices=-3\n", 1, "bad vertices");
  ExpectTelError("tel 1 undirected window=0\n", 1, "bad window");
  ExpectTelError("tel 1 undirected window=abc\n", 1, "bad window");
  ExpectTelError("tel 1 undirected window=9000000000000000000\n", 1,
                 "bad window");
  ExpectTelError("tel 1 undirected expiry=sometimes\n", 1,
                 "bad expiry mode");
  ExpectTelError("tel 1 undirected frobnicate=1\n", 1,
                 "unknown header key");
  // A hostile universe size is corrupt input, not an allocation attempt.
  ExpectTelError("tel 1 directed vertices=9000000000000000000\n", 1,
                 "bad vertices");
  ExpectTelError("tel 1 undirected\nv 9000000000000000000 1\n", 2,
                 "bad vertex label");
}

TEST(TelErrors, VertexRecordProblems) {
  ExpectTelError("tel 1 undirected\nv 0\n", 2, "bad vertex label");
  ExpectTelError("tel 1 undirected\nv -1 0\n", 2, "bad vertex label");
  ExpectTelError("tel 1 undirected\nv 0 0 junk\n", 2, "bad vertex label");
  ExpectTelError("tel 1 undirected vertices=2\nv 2 0\n", 2,
                 "out of declared range");
  ExpectTelError("tel 1 undirected\nv 0 1\nv 0 2\n", 3,
                 "duplicate vertex label");
  // v records must form a prefix of the stream.
  ExpectTelError("tel 1 undirected vertices=3\ne 0 1 5\nv 2 1\n", 3,
                 "after the first data record");
}

TEST(TelErrors, EdgeRecordProblems) {
  const std::string h = "tel 1 undirected vertices=4\n";
  ExpectTelError(h + "e 0 1\n", 2, "bad edge record");         // truncated
  ExpectTelError(h + "e 0 x 5\n", 2, "bad edge record");       // garbage
  ExpectTelError(h + "e 0 1 5 2 9\n", 2, "trailing garbage");
  ExpectTelError(h + "e 0 1 5 foo\n", 2, "bad edge label");
  ExpectTelError(h + "e 0 1 5 -2\n", 2, "bad edge label");
  // int64 overflow consumes the digits; it must not read back as "no
  // label" (or, for the mandatory fields, as a bad-record false match).
  ExpectTelError(h + "e 0 1 5 99999999999999999999\n", 2,
                 "bad edge label");
  ExpectTelError(h + "e -1 2 5\n", 2, "negative vertex id");
  ExpectTelError(h + "e 0 7 5\n", 2, "out of range");
  ExpectTelError(h + "e 0 9999999999 5\n", 2, "out of range");
  // |ts| is capped below 2^61 so ts + window can never overflow.
  ExpectTelError(h + "e 0 1 9000000000000000000\n", 2,
                 "timestamp out of range");
  ExpectTelError(h + "e 0 1 5\ne 0 2 4\n", 3, "non-decreasing");
  ExpectTelError(h + "q 0 1 5\n", 2, "unknown record tag");
}

TEST(TelErrors, ExpiryRecordProblems) {
  ExpectTelError("tel 1 undirected vertices=2\ne 0 1 5\nx 6\n", 3,
                 "derived-expiry stream");
  const std::string h =
      "tel 1 undirected vertices=3 window=4 expiry=explicit\n";
  ExpectTelError(h + "x 1\n", 2, "no live edge");
  ExpectTelError(h + "e 0 1 5\nx 9\nx 10\n", 4, "no live edge");
  ExpectTelError(h + "e 0 1 5\nx 4\n", 3, "non-decreasing");
  ExpectTelError(h + "e 0 1 5\nx\n", 3, "bad expiry record");
  ExpectTelError(h + "e 0 1 5\nx 9 junk\n", 3, "bad expiry record");
}

TEST(TelErrors, SelfLoopsDroppedNotFatal) {
  std::istringstream in(
      "tel 1 undirected vertices=3\n"
      "e 1 1 4\n"
      "e 0 1 5\n");
  auto result = ReadTelDataset(in, "test.tel");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().NumEdges(), 1u);
  EXPECT_EQ(result.value().edges[0].id, 0u);  // dropped loop takes no id
}

TEST(TelErrors, LoadFileNotFound) {
  EXPECT_EQ(LoadTelFile("/no/such/stream.tel").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadAnyDatasetFile("/no/such/stream.tel", false).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(SniffTelFile("/no/such/stream.tel"));
}

TEST(TelErrors, ReplayRequiresResolvableWindow) {
  // A derived-expiry stream with no header window and no option window is
  // an InvalidArgument at replay time, not a crash.
  std::istringstream in(
      "tel 1 undirected vertices=7\n"
      "e 0 1 1\n");
  StreamReader reader(in, "test.tel");
  ASSERT_TRUE(reader.Init().ok());
  SingleQueryContext<TcmEngine> run(testlib::RunningExampleQuery(),
                                    reader.schema());
  auto result = ReplayStream(&reader, ReplayOptions{}, &run);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("window"), std::string::npos);
}

TEST(TelErrors, ReplaySurfacesMidStreamCorruption) {
  // The replay driver stops at the corrupt line and reports it; events
  // before the corruption were already delivered (streaming has no
  // lookahead), which is exactly the "never abort" contract.
  std::istringstream in(
      "tel 1 undirected vertices=7 window=10\n"
      "e 0 1 1\n"
      "e 0 3 oops\n");
  StreamReader reader(in, "test.tel");
  ASSERT_TRUE(reader.Init().ok());
  SingleQueryContext<TcmEngine> run(testlib::RunningExampleQuery(),
                                    reader.schema());
  auto result = ReplayStream(&reader, ReplayOptions{}, &run);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("test.tel:3:"),
            std::string::npos)
      << result.status().message();
}

TEST(TelErrors, WriterValidates) {
  std::ostringstream out;
  {
    StreamWriter w(out);
    EXPECT_FALSE(w.RecordArrival(TemporalEdge{}).ok());  // before Begin
    TelWriteOptions opts;
    opts.explicit_expiry = true;  // explicit mode needs a window
    EXPECT_FALSE(w.BeginStream(false, {0, 0}, opts).ok());
  }
  {
    StreamWriter w(out);
    ASSERT_TRUE(w.BeginStream(false, {0, 0, 0}, {}).ok());
    TemporalEdge e;
    e.src = 0;
    e.dst = 0;
    e.ts = 1;
    EXPECT_FALSE(w.RecordArrival(e).ok());  // self loop
    e.dst = 9;
    EXPECT_FALSE(w.RecordArrival(e).ok());  // outside universe
    e.dst = 1;
    ASSERT_TRUE(w.RecordArrival(e).ok());
    e.ts = 0;
    EXPECT_FALSE(w.RecordArrival(e).ok());  // time went backwards
    EXPECT_FALSE(w.RecordExpiry(5).ok());   // derived-mode stream
  }
}

// --- Binary v2 framing ----------------------------------------------------
//
// The same contract as the text parser, with byte offsets instead of line
// numbers: corruption of any shape returns CorruptInput carrying
// "<source>:<offset>:" — never a crash, never a silently wrong dataset.
// Tests corrupt writer-produced streams by byte surgery at offsets pinned
// by the wire constants in io/tel_binary.h.

/// A 4-arrival binary stream over an 8-vertex all-zero-label universe, so
/// the label section is just its count and the layout is fully
/// deterministic: magic (8) + header (24) + label count (8) = data at 40.
std::string BinaryTel(bool varint, size_t block_records = 0) {
  TemporalDataset ds;
  ds.vertex_labels.assign(8, 0);
  for (int i = 0; i < 4; ++i) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(i);
    e.src = static_cast<VertexId>(i);
    e.dst = static_cast<VertexId>(i + 1);
    e.ts = 5 + i;
    ds.edges.push_back(e);
  }
  TelWriteOptions opts;
  opts.binary = true;
  opts.varint_timestamps = varint;
  opts.block_records = block_records;
  opts.window = 10;
  std::ostringstream out;
  const Status s = WriteTel(ds, opts, out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out.str();
}

constexpr size_t kDataStart = 8 + kTelBinaryHeaderBytes + 8;
constexpr size_t kPayload0 = kDataStart + kTelBlockHeaderBytes;

/// Parses a (corrupted) binary stream and expects CorruptInput with a
/// "test.tel:<offset>:" diagnostic and `what`.
void ExpectBinaryTelError(const std::string& tel, uint64_t offset,
                          const std::string& what) {
  std::istringstream in(tel);
  auto result = ReadTelDataset(in, "test.tel");
  ASSERT_FALSE(result.ok()) << "parsed a corrupt binary stream";
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptInput);
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("test.tel:" + std::to_string(offset) + ":"),
            std::string::npos)
      << "no offset " << offset << " diagnostic in: " << msg;
  EXPECT_NE(msg.find(what), std::string::npos)
      << "'" << what << "' not in: " << msg;
}

TEST(TelBinaryErrors, HeaderProblems) {
  {
    std::string tel = BinaryTel(true);
    tel[1] ^= 0x20;  // first byte still sniffs binary; signature broken
    ExpectBinaryTelError(tel, 0, "bad binary magic");
  }
  {
    std::string tel = BinaryTel(true);
    tel[8] = 3;  // version u16 at offset 8
    ExpectBinaryTelError(tel, 8, "unsupported tel version 3");
  }
  {
    std::string tel = BinaryTel(true);
    tel[10] |= 0x04;  // flags u16 at offset 10: an undefined bit
    ExpectBinaryTelError(tel, 10, "unknown header flag bits");
  }
  {
    std::string tel = BinaryTel(true);
    std::memset(tel.data() + 16, 0, 8);  // num_vertices u64 at offset 16
    ExpectBinaryTelError(tel, 16, "bad vertices count 0");
  }
  {
    std::string tel = BinaryTel(true);
    tel[31] = '\x40';  // window i64 at 24: top byte set -> negative/huge
    ExpectBinaryTelError(tel, 24, "bad window");
  }
}

TEST(TelBinaryErrors, TruncatedStream) {
  const std::string tel = BinaryTel(/*varint=*/false);
  // Cut mid-payload: the payload read at kPayload0 wants 4 * 24 bytes.
  ExpectBinaryTelError(tel.substr(0, kPayload0 + 10), kPayload0,
                       "stream ended after 10");
  // Cut mid-block-header: the reader pulls the record count (4 bytes,
  // succeeds), then the header remainder (28 bytes, 3 left).
  ExpectBinaryTelError(tel.substr(0, kDataStart + 7), kDataStart + 4,
                       "stream ended after 3");
  // Cut before the sentinel: a clean block then a dangling 0-byte tail
  // reads as a truncated next block header, not a clean end.
  ExpectBinaryTelError(tel.substr(0, kPayload0 + 4 * 24 + 2),
                       kPayload0 + 4 * 24, "stream ended after 2");
}

TEST(TelBinaryErrors, BlockHeaderProblems) {
  {
    std::string tel = BinaryTel(false);
    tel[kDataStart + 4] = 7;  // encoding u32 at block offset +4
    ExpectBinaryTelError(tel, kDataStart + 4, "bad block encoding 7");
  }
  {
    std::string tel = BinaryTel(false);
    tel[kDataStart] += 1;  // record_count no longer matches payload size
    ExpectBinaryTelError(tel, kDataStart + 8,
                         "block payload size does not match its record count");
  }
  {
    // Two blocks; rewrite block 1's first_ts (i64 at block offset +16) to
    // land before block 0's last record.
    std::string tel = BinaryTel(false, /*block_records=*/2);
    const size_t block1 = kPayload0 + 2 * kTelFixedRecordBytes;
    std::memset(tel.data() + block1 + 16, 0, 8);
    ExpectBinaryTelError(tel, block1 + 16, "block timestamps regress");
  }
}

TEST(TelBinaryErrors, RecordProblems) {
  {
    std::string tel = BinaryTel(false);
    tel[kPayload0] = 9;  // fixed record kind u32
    ExpectBinaryTelError(tel, kPayload0, "bad record kind 9");
  }
  {
    std::string tel = BinaryTel(false);
    tel[kPayload0 + 8] = 100;  // dst u32: beyond the 8-vertex universe
    ExpectBinaryTelError(tel, kPayload0, "vertex id out of range");
  }
  {
    // All-0xFF continuation bytes after the first record's kind: the
    // timestamp-delta varint never terminates.
    std::string tel = BinaryTel(true);
    uint32_t payload_bytes = 0;
    std::memcpy(&payload_bytes, tel.data() + kDataStart + 8, 4);
    for (size_t i = 1; i < payload_bytes; ++i) {
      tel[kPayload0 + i] = '\xFF';
    }
    ExpectBinaryTelError(tel, kPayload0, "corrupt varint");
  }
  {
    std::string tel = BinaryTel(true);
    tel[kPayload0] = 1;  // arrival -> expiry in a derived-expiry stream
    ExpectBinaryTelError(tel, kPayload0, "explicit expiry record");
  }
}

/// Corrupts `tel` in place via `mutate`, then expects SeekToTimestamp to
/// fail with CorruptInput carrying "test.tel:" and `what`. Sequential
/// reads never touch the index footer, so these only surface on seek.
template <typename Fn>
void ExpectSeekError(Fn mutate, const std::string& what) {
  std::string tel = BinaryTel(/*varint=*/true, /*block_records=*/2);
  mutate(&tel);
  std::istringstream in(tel);
  StreamReader reader(in, "test.tel");
  ASSERT_TRUE(reader.Init().ok());
  const Status s = reader.SeekToTimestamp(6);
  ASSERT_FALSE(s.ok()) << "seek succeeded on a corrupt index";
  EXPECT_EQ(s.code(), StatusCode::kCorruptInput);
  EXPECT_NE(s.message().find("test.tel:"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find(what), std::string::npos) << s.ToString();
}

TEST(TelBinaryErrors, IndexFooterProblems) {
  ExpectSeekError([](std::string* tel) { tel->back() ^= 0xFF; },
                  "missing or corrupt index footer");
  ExpectSeekError(
      [](std::string* tel) {
        // num_blocks u64, second trailer field: the index no longer spans
        // the file tail.
        (*tel)[tel->size() - kTelTrailerBytes + 8] += 1;
      },
      "index/footer mismatch");
  ExpectSeekError(
      [](std::string* tel) {
        // First index entry's block offset (u64 right after the index's
        // own count) no longer points at the data start.
        uint64_t index_offset = 0;
        std::memcpy(&index_offset, tel->data() + tel->size() - kTelTrailerBytes,
                    8);
        (*tel)[index_offset + 8] += 1;
      },
      "first block offset is not the data start");
}

TEST(TelBinaryErrors, ReplaySurfacesBinaryCorruption) {
  // Same contract as the text mid-stream test: the replay driver delivers
  // everything before the corruption, then stops with the offset.
  std::string tel = BinaryTel(/*varint=*/false, /*block_records=*/2);
  const size_t block1 = kPayload0 + 2 * kTelFixedRecordBytes;
  std::memset(tel.data() + block1 + 16, 0, 8);  // block 1 first_ts regress
  std::istringstream in(tel);
  StreamReader reader(in, "test.tel");
  ASSERT_TRUE(reader.Init().ok());
  SingleQueryContext<TcmEngine> run(testlib::RunningExampleQuery(),
                                    reader.schema());
  auto result = ReplayStream(&reader, ReplayOptions{}, &run);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptInput);
  EXPECT_NE(result.status().message().find(
                "test.tel:" + std::to_string(block1 + 16) + ":"),
            std::string::npos)
      << result.status().message();
}

TEST(QueryIoErrors, WindowRecord) {
  const char* base =
      "t 2 1\nv 0 0\nv 1 0\ne 0 0 1\n";
  EXPECT_FALSE(ParseQueryString("w 5\n" + std::string(base)).ok());
  EXPECT_FALSE(ParseQueryString(std::string(base) + "w 0\n").ok());
  EXPECT_FALSE(ParseQueryString(std::string(base) + "w -4\n").ok());
  EXPECT_FALSE(ParseQueryString(std::string(base) + "w x\n").ok());
  EXPECT_FALSE(  // same 2^61 cap as .tel: ts + window must not overflow
      ParseQueryString(std::string(base) + "w 9223372036854775806\n").ok());
  EXPECT_FALSE(ParseQueryString(std::string(base) + "w 5\nw 6\n").ok());
  auto ok = ParseQueryString(std::string(base) + "w 7\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().window_hint(), 7);
  // The error message carries the line number of the bad record.
  auto bad = ParseQueryString(std::string(base) + "w 0\n");
  EXPECT_NE(bad.status().message().find("line 5"), std::string::npos)
      << bad.status().message();
}

/// Three vertices on a directed triangle — enough structure for order
/// chains and gap/absence records. Appended records start at line 8.
std::string TriangleQuery() {
  return "t 3 3\nv 0 0\nv 1 0\nv 2 0\ne 0 0 1\ne 1 1 2\ne 2 2 0\n";
}

/// Hostile records must produce a line-numbered Status, never abort.
void ExpectQueryParseError(const std::string& text, const std::string& what,
                           int line) {
  auto r = ParseQueryString(text);
  ASSERT_FALSE(r.ok()) << "parse succeeded on:\n" << text;
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptInput)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find(what), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("line " + std::to_string(line)),
            std::string::npos)
      << r.status().ToString();
}

TEST(QueryIoErrors, OrderRecordHostile) {
  const std::string base = TriangleQuery();
  ExpectQueryParseError(base + "o 0\n", "bad order", 8);
  ExpectQueryParseError(base + "o 0 9\n", "order references unknown edge", 8);
  ExpectQueryParseError(base + "o -1 1\n", "order references unknown edge",
                        8);
  ExpectQueryParseError(base + "o 1 1\n", "order must be irreflexive", 8);
  // A cyclic order chain: the closing record carries the error.
  ExpectQueryParseError(base + "o 0 1\no 1 2\no 2 0\n",
                        "order would create a cycle", 10);
}

TEST(QueryIoErrors, GapRecordHostile) {
  const std::string base = TriangleQuery();
  ExpectQueryParseError("g 0 1 1 2\n" + base, "gap before header", 1);
  ExpectQueryParseError(base + "g 0\n", "bad gap", 8);
  ExpectQueryParseError(base + "g 0 1 x 2\n", "bad gap", 8);
  ExpectQueryParseError(base + "g 0 9 1 2\n", "gap references unknown edge",
                        8);
  ExpectQueryParseError(base + "g -1 1 1 2\n", "gap references unknown edge",
                        8);
  ExpectQueryParseError(base + "g 0 0 1 2\n",
                        "gap must relate two distinct edges", 8);
  ExpectQueryParseError(base + "g 0 1 5 2\n",
                        "gap bounds must satisfy min <= max", 8);
  ExpectQueryParseError(base + "g 0 1 -3 4\n",
                        "gap bounds must be non-negative", 8);
  ExpectQueryParseError(base + "g 0 1 0 9223372036854775806\n",
                        "gap bound exceeds the timestamp range", 8);
  ExpectQueryParseError(base + "g 0 1 1 2\ng 0 1 3 4\n",
                        "duplicate gap for edge pair", 9);
  // A gap with min >= 1 folds into the order relation; clashing with a
  // declared reverse order is a cycle, caught on the gap's line.
  ExpectQueryParseError(base + "o 1 0\ng 0 1 1 5\n",
                        "order would create a cycle", 9);
}

TEST(QueryIoErrors, AbsenceRecordHostile) {
  const std::string base = TriangleQuery();
  ExpectQueryParseError("n 0 1 0 5\n" + base, "absence before header", 1);
  ExpectQueryParseError(base + "n 0\n", "bad absence", 8);
  ExpectQueryParseError(base + "n 0 9 0 5\n",
                        "absence references unknown vertex", 8);
  ExpectQueryParseError(base + "n -1 1 0 5\n",
                        "absence references unknown vertex", 8);
  ExpectQueryParseError(base + "n 1 1 0 5\n",
                        "absence endpoints must be distinct", 8);
  ExpectQueryParseError(base + "n 0 1 0 -2\n",
                        "absence delta must be non-negative", 8);
  ExpectQueryParseError(base + "n 0 1 0 9223372036854775806\n",
                        "absence delta exceeds the timestamp range", 8);
  // No label alphabet is declared in a .tq file, so "undeclared" means
  // outside the representable Label range (negative or > 2^32-1).
  ExpectQueryParseError(base + "n 0 1 -1 5\n",
                        "absence references undeclared label", 8);
  ExpectQueryParseError(base + "n 0 1 4294967296 5\n",
                        "absence references undeclared label", 8);
}

TEST(QueryIoErrors, PredicateRoundTrip) {
  // parse -> serialize -> parse is stable, including the skip of `o`
  // pairs implied by a gap with min >= 1.
  const std::string text = TriangleQuery() +
                           "w 40\no 2 0\ng 0 1 3 9\ng 1 2 0 5\n"
                           "n 0 2 7 11\nn 2 1 0 0\n";
  auto q1 = ParseQueryString(text);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_EQ(q1.value().gaps().size(), 2u);
  EXPECT_EQ(q1.value().absences().size(), 2u);
  const std::string ser1 = SerializeQuery(q1.value());
  // The gap with min=3 implies o 0 1, which must not be re-emitted.
  EXPECT_EQ(ser1.find("o 0 1"), std::string::npos) << ser1;
  EXPECT_NE(ser1.find("o 2 0"), std::string::npos) << ser1;
  auto q2 = ParseQueryString(ser1);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(SerializeQuery(q2.value()), ser1);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(q1.value().After(e), q2.value().After(e));
    EXPECT_EQ(q1.value().GapRelated(e), q2.value().GapRelated(e));
  }
}

}  // namespace
}  // namespace tcsm
