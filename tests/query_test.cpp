#include <gtest/gtest.h>

#include "query/query_graph.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

using testlib::kE1;
using testlib::kE2;
using testlib::kE3;
using testlib::kE4;
using testlib::kE5;
using testlib::kE6;

TEST(QueryGraph, BasicConstruction) {
  QueryGraph q;
  const VertexId a = q.AddVertex(3);
  const VertexId b = q.AddVertex(4);
  const EdgeId e = q.AddEdge(a, b, 9);
  EXPECT_EQ(q.NumVertices(), 2u);
  EXPECT_EQ(q.NumEdges(), 1u);
  EXPECT_EQ(q.VertexLabel(a), 3u);
  EXPECT_EQ(q.Edge(e).elabel, 9u);
  EXPECT_EQ(q.FindEdge(a, b), e);
  EXPECT_EQ(q.FindEdge(b, a), e);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryGraph, RunningExampleOrder) {
  QueryGraph q = testlib::RunningExampleQuery();
  // e1<e3, e1<e5, e2<e4, e2<e5, e2<e6 (already closed).
  EXPECT_TRUE(q.Precedes(kE2, kE5));
  EXPECT_TRUE(q.Precedes(kE2, kE4));
  EXPECT_FALSE(q.Precedes(kE4, kE5));
  EXPECT_FALSE(q.Precedes(kE5, kE2));
  EXPECT_FALSE(q.Precedes(kE3, kE5));
  EXPECT_EQ(q.NumOrderPairs(), 5u);
}

TEST(QueryGraph, DeclaredVsClosedMasks) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(2, 3);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  // Closure adds a<c; declared masks do not contain it.
  EXPECT_TRUE(q.Precedes(a, c));
  EXPECT_TRUE(HasBit(q.After(a), c));
  EXPECT_FALSE(HasBit(q.DeclaredAfter(a), c));
  EXPECT_TRUE(HasBit(q.DeclaredAfter(a), b));
}

TEST(QueryGraph, OrderRejectsCycles) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(0, 2);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  EXPECT_FALSE(q.AddOrder(c, a).ok());  // would close a cycle
  EXPECT_FALSE(q.AddOrder(a, a).ok());  // irreflexive
  EXPECT_TRUE(q.Precedes(a, c));        // transitivity held
}

TEST(QueryGraph, AddOrderIdempotentAndImplied) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(0, 2);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  EXPECT_TRUE(q.AddOrder(a, c).ok());  // already implied; still legal
  EXPECT_EQ(q.NumOrderPairs(), 3u);
}

TEST(QueryGraph, DensityValues) {
  QueryGraph q = testlib::RunningExampleQuery();
  // 5 pairs over C(6,2)=15.
  EXPECT_NEAR(q.OrderDensity(), 5.0 / 15.0, 1e-9);

  QueryGraph empty_order;
  empty_order.AddVertex(0);
  empty_order.AddVertex(0);
  empty_order.AddEdge(0, 1);
  EXPECT_EQ(empty_order.OrderDensity(), 0.0);
}

TEST(QueryGraph, TotalOrderDensityIsOne) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(2, 3);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  EXPECT_NEAR(q.OrderDensity(), 1.0, 1e-9);
}

TEST(QueryGraph, ValidateDetectsDisconnected) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryGraph, IncidentEdges) {
  QueryGraph q = testlib::RunningExampleQuery();
  EXPECT_EQ(q.Degree(testlib::kU4), 3u);  // e3, e4, e5
  const auto& inc = q.IncidentEdges(testlib::kU4);
  EXPECT_NE(std::find(inc.begin(), inc.end(), kE3), inc.end());
  EXPECT_NE(std::find(inc.begin(), inc.end(), kE4), inc.end());
  EXPECT_NE(std::find(inc.begin(), inc.end(), kE5), inc.end());
}

TEST(QueryGraph, RelatedMasks) {
  QueryGraph q = testlib::RunningExampleQuery();
  EXPECT_EQ(q.Related(kE5), Bit(kE1) | Bit(kE2));
  EXPECT_EQ(q.Before(kE5), Bit(kE1) | Bit(kE2));
  EXPECT_EQ(q.After(kE5), 0u);
  EXPECT_EQ(q.After(kE2), Bit(kE4) | Bit(kE5) | Bit(kE6));
}

TEST(QueryGraph, ToStringMentionsStructure) {
  QueryGraph q = testlib::RunningExampleQuery();
  const std::string s = q.ToString();
  EXPECT_NE(s.find("|V|=5"), std::string::npos);
  EXPECT_NE(s.find("|E|=6"), std::string::npos);
}

TEST(QueryGraph, GapConstraints) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId e0 = q.AddEdge(0, 1);
  const EdgeId e1 = q.AddEdge(1, 2);

  ASSERT_TRUE(q.AddGap(e0, e1, 2, 5).ok());
  ASSERT_EQ(q.gaps().size(), 1u);
  EXPECT_EQ(q.gaps()[0].min_gap, 2);
  EXPECT_EQ(q.gaps()[0].max_gap, 5);
  EXPECT_EQ(q.GapRelated(e0), Bit(e1));
  EXPECT_EQ(q.GapRelated(e1), Bit(e0));
  // min >= 1 folds into the order relation.
  EXPECT_TRUE(HasBit(q.After(e0), e1));

  // min = 0 admits simultaneity: no order is implied (here the reverse
  // direction, which an implied order would have made cyclic).
  ASSERT_TRUE(q.AddGap(e1, e0, 0, 7).ok());
  EXPECT_FALSE(HasBit(q.After(e1), e0));

  EXPECT_FALSE(q.AddGap(e0, e1, 1, 2).ok());  // duplicate ordered pair
  EXPECT_FALSE(q.AddGap(e0, 9, 1, 2).ok());
  EXPECT_FALSE(q.AddGap(e0, e0, 1, 2).ok());
  EXPECT_FALSE(q.AddGap(e0, e1, -1, 2).ok());
  EXPECT_FALSE(q.AddGap(e0, e1, 5, 2).ok());
  EXPECT_FALSE(q.AddGap(e0, e1, 0, kMaxStreamTimestamp + 1).ok());

  // A gap whose implied order would cycle is rejected without mutating
  // the gap set.
  const Status cyclic = q.AddGap(e1, e0, 3, 9);
  EXPECT_FALSE(cyclic.ok());
  EXPECT_EQ(q.gaps().size(), 2u);
  EXPECT_EQ(q.GapRelated(e0), Bit(e1));

  const std::string s = q.ToString();
  EXPECT_NE(s.find("gap"), std::string::npos) << s;
}

TEST(QueryGraph, AbsencePredicates) {
  QueryGraph q(/*directed=*/true);
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddEdge(0, 1);

  ASSERT_TRUE(q.AddAbsence(1, 0, /*label=*/3, /*delta=*/5).ok());
  ASSERT_EQ(q.absences().size(), 1u);
  EXPECT_EQ(q.absences()[0].u, 1u);
  EXPECT_EQ(q.absences()[0].v, 0u);
  EXPECT_EQ(q.absences()[0].label, 3u);
  EXPECT_EQ(q.absences()[0].delta, 5);
  // delta = 0 is legal: "never answered at the same instant".
  EXPECT_TRUE(q.AddAbsence(0, 1, 0, 0).ok());

  EXPECT_FALSE(q.AddAbsence(0, 9, 0, 5).ok());
  EXPECT_FALSE(q.AddAbsence(0, 0, 0, 5).ok());
  EXPECT_FALSE(q.AddAbsence(0, 1, 0, -1).ok());
  EXPECT_FALSE(q.AddAbsence(0, 1, 0, kMaxStreamTimestamp + 1).ok());

  const std::string s = q.ToString();
  EXPECT_NE(s.find("absent"), std::string::npos) << s;
}

}  // namespace
}  // namespace tcsm
