#include <gtest/gtest.h>

#include "query/query_graph.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

using testlib::kE1;
using testlib::kE2;
using testlib::kE3;
using testlib::kE4;
using testlib::kE5;
using testlib::kE6;

TEST(QueryGraph, BasicConstruction) {
  QueryGraph q;
  const VertexId a = q.AddVertex(3);
  const VertexId b = q.AddVertex(4);
  const EdgeId e = q.AddEdge(a, b, 9);
  EXPECT_EQ(q.NumVertices(), 2u);
  EXPECT_EQ(q.NumEdges(), 1u);
  EXPECT_EQ(q.VertexLabel(a), 3u);
  EXPECT_EQ(q.Edge(e).elabel, 9u);
  EXPECT_EQ(q.FindEdge(a, b), e);
  EXPECT_EQ(q.FindEdge(b, a), e);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryGraph, RunningExampleOrder) {
  QueryGraph q = testlib::RunningExampleQuery();
  // e1<e3, e1<e5, e2<e4, e2<e5, e2<e6 (already closed).
  EXPECT_TRUE(q.Precedes(kE2, kE5));
  EXPECT_TRUE(q.Precedes(kE2, kE4));
  EXPECT_FALSE(q.Precedes(kE4, kE5));
  EXPECT_FALSE(q.Precedes(kE5, kE2));
  EXPECT_FALSE(q.Precedes(kE3, kE5));
  EXPECT_EQ(q.NumOrderPairs(), 5u);
}

TEST(QueryGraph, DeclaredVsClosedMasks) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(2, 3);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  // Closure adds a<c; declared masks do not contain it.
  EXPECT_TRUE(q.Precedes(a, c));
  EXPECT_TRUE(HasBit(q.After(a), c));
  EXPECT_FALSE(HasBit(q.DeclaredAfter(a), c));
  EXPECT_TRUE(HasBit(q.DeclaredAfter(a), b));
}

TEST(QueryGraph, OrderRejectsCycles) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(0, 2);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  EXPECT_FALSE(q.AddOrder(c, a).ok());  // would close a cycle
  EXPECT_FALSE(q.AddOrder(a, a).ok());  // irreflexive
  EXPECT_TRUE(q.Precedes(a, c));        // transitivity held
}

TEST(QueryGraph, AddOrderIdempotentAndImplied) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(0, 2);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  EXPECT_TRUE(q.AddOrder(a, c).ok());  // already implied; still legal
  EXPECT_EQ(q.NumOrderPairs(), 3u);
}

TEST(QueryGraph, DensityValues) {
  QueryGraph q = testlib::RunningExampleQuery();
  // 5 pairs over C(6,2)=15.
  EXPECT_NEAR(q.OrderDensity(), 5.0 / 15.0, 1e-9);

  QueryGraph empty_order;
  empty_order.AddVertex(0);
  empty_order.AddVertex(0);
  empty_order.AddEdge(0, 1);
  EXPECT_EQ(empty_order.OrderDensity(), 0.0);
}

TEST(QueryGraph, TotalOrderDensityIsOne) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(2, 3);
  EXPECT_TRUE(q.AddOrder(a, b).ok());
  EXPECT_TRUE(q.AddOrder(b, c).ok());
  EXPECT_NEAR(q.OrderDensity(), 1.0, 1e-9);
}

TEST(QueryGraph, ValidateDetectsDisconnected) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryGraph, IncidentEdges) {
  QueryGraph q = testlib::RunningExampleQuery();
  EXPECT_EQ(q.Degree(testlib::kU4), 3u);  // e3, e4, e5
  const auto& inc = q.IncidentEdges(testlib::kU4);
  EXPECT_NE(std::find(inc.begin(), inc.end(), kE3), inc.end());
  EXPECT_NE(std::find(inc.begin(), inc.end(), kE4), inc.end());
  EXPECT_NE(std::find(inc.begin(), inc.end(), kE5), inc.end());
}

TEST(QueryGraph, RelatedMasks) {
  QueryGraph q = testlib::RunningExampleQuery();
  EXPECT_EQ(q.Related(kE5), Bit(kE1) | Bit(kE2));
  EXPECT_EQ(q.Before(kE5), Bit(kE1) | Bit(kE2));
  EXPECT_EQ(q.After(kE5), 0u);
  EXPECT_EQ(q.After(kE2), Bit(kE4) | Bit(kE5) | Bit(kE6));
}

TEST(QueryGraph, ToStringMentionsStructure) {
  QueryGraph q = testlib::RunningExampleQuery();
  const std::string s = q.ToString();
  EXPECT_NE(s.find("|V|=5"), std::string::npos);
  EXPECT_NE(s.find("|E|=6"), std::string::npos);
}

}  // namespace
}  // namespace tcsm
