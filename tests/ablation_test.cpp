// The design-choice ablations (reverse-DAG filtering, best-scoring DAG
// root) are optimizations only: every configuration must produce exactly
// the oracle's matches, and the stronger configurations must never keep a
// larger DCS.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"
#include "testlib/running_example.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

struct AblationCase {
  uint64_t seed;
  bool directed;
};

class AblationProperty : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationProperty, AllConfigurationsMatchOracle) {
  const AblationCase param = GetParam();
  SyntheticSpec spec;
  spec.num_vertices = 14;
  spec.num_edges = 120;
  spec.num_vertex_labels = 2;
  spec.avg_parallel_edges = 2.0;
  spec.directed = param.directed;
  spec.seed = param.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);

  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.75;
  opt.window = 40;
  Rng rng(param.seed + 5);
  QueryGraph q;
  if (!GenerateQuery(ds, opt, &rng, &q)) GTEST_SKIP();
  const GraphSchema schema{ds.directed, ds.vertex_labels};

  for (const bool reverse : {true, false}) {
    for (const bool best_dag : {true, false}) {
      TcmConfig config;
      config.use_reverse_filter = reverse;
      config.use_best_dag = best_dag;
      SingleQueryContext<TcmEngine> run(q, schema, config);
      testlib::CheckEngineAgainstOracle(ds, q, 40, &run);
      if (HasFailure()) {
        ADD_FAILURE() << "reverse=" << reverse << " best_dag=" << best_dag;
        return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AblationProperty,
                         ::testing::Values(AblationCase{51, false},
                                           AblationCase{52, true},
                                           AblationCase{53, false},
                                           AblationCase{54, true}));

TEST(Ablation, ReverseFilterNeverEnlargesDcs) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();

  TcmConfig both;
  TcmConfig fwd_only;
  fwd_only.use_reverse_filter = false;
  SingleQueryContext<TcmEngine> with(q, testlib::RunningExampleSchema(),
                                     both);
  SingleQueryContext<TcmEngine> without(q, testlib::RunningExampleSchema(),
                                        fwd_only);
  for (const TemporalEdge& e : ds.edges) {
    with.OnEdgeArrival(e);
    without.OnEdgeArrival(e);
    ASSERT_LE(with.engine().dcs().stats().num_edges,
              without.engine().dcs().stats().num_edges);
  }
}

TEST(Ablation, BestDagScoresAtLeastFixedRoot) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag best = QueryDag::BuildBestDag(q);
  const QueryDag fixed = QueryDag::BuildDagGreedy(q, 0);
  EXPECT_GE(best.score(), fixed.score());
}

}  // namespace
}  // namespace tcsm
