#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "dag/query_dag.h"
#include "filter/maxmin_index.h"
#include "graph/temporal_graph.h"
#include "testing/oracle.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

using testlib::kE1;
using testlib::kE2;
using testlib::kE4;
using testlib::kE5;
using testlib::kE6;
using testlib::kU3;
using testlib::kU4;
using testlib::kU5;
using testlib::kV1;
using testlib::kV4;
using testlib::kV5;
using testlib::kV7;

// Example IV.3: T[u3, v4, eps2] = 10 on the full graph of Figure 2a.
TEST(MaxMinIndex, RunningExampleValueFullGraph) {
  TemporalGraph g = testlib::RunningExampleGraph(14);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  MaxMinIndex index(&g, &dag);
  EXPECT_EQ(index.Later(kU3, kV4, kE2), 10);
  EXPECT_EQ(OracleLater(g, dag, kU3, kV4, kE2), 10);
}

// Example IV.4: before sigma_14 arrives T[u3, v4, eps2] = 7; the arrival
// updates it to 10, which makes eps2 TC-matchable to sigma_8 but not to
// sigma_12.
TEST(MaxMinIndex, RunningExampleIncrementalInsertion) {
  TemporalGraph g = testlib::RunningExampleGraph(13);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  MaxMinIndex index(&g, &dag);
  EXPECT_EQ(index.Later(kU3, kV4, kE2), 7);

  const TemporalEdge sigma8 = g.Edge(7);
  const TemporalEdge sigma12 = g.Edge(11);
  EXPECT_FALSE(index.CheckMatchable(kE2, sigma8, false));  // 8 < 7 fails

  const EdgeId id = g.InsertEdge(kV4, kV7, 14);  // sigma_14
  std::vector<UvPair> touched;
  index.OnEdgeInserted(g.Edge(id), &touched);
  EXPECT_EQ(index.Later(kU3, kV4, kE2), 10);
  EXPECT_TRUE(index.CheckMatchable(kE2, sigma8, false));
  EXPECT_FALSE(index.CheckMatchable(kE2, sigma12, false));  // 12 !< 10

  // The gate of (u3, v4) changed, so it must be among the touched pairs.
  bool found = false;
  for (const UvPair& uv : touched) {
    found = found || (uv.u == kU3 && uv.v == kV4);
  }
  EXPECT_TRUE(found);
}

TEST(MaxMinIndex, RemovalRestoresOldValue) {
  TemporalGraph g = testlib::RunningExampleGraph(13);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  MaxMinIndex index(&g, &dag);
  ASSERT_EQ(index.Later(kU3, kV4, kE2), 7);
  const EdgeId id = g.InsertEdge(kV4, kV7, 14);
  std::vector<UvPair> touched;
  index.OnEdgeInserted(g.Edge(id), &touched);
  ASSERT_EQ(index.Later(kU3, kV4, kE2), 10);
  const TemporalEdge copy = g.Edge(id);
  g.RemoveEdge(id);
  touched.clear();
  index.OnEdgeRemoved(copy, &touched);
  EXPECT_EQ(index.Later(kU3, kV4, kE2), 7);
}

TEST(MaxMinIndex, WeakExistence) {
  TemporalGraph g = testlib::RunningExampleGraph(14);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  MaxMinIndex index(&g, &dag);
  // u5 is a leaf: weak embedding exists at any label-4 vertex.
  EXPECT_TRUE(index.Weak(kU5, kV7));
  // u4 (label 3) at v5 has the child edge eps5 -> (v5, v7) edges exist.
  EXPECT_TRUE(index.Weak(kU4, kV5));
  // Label mismatch: u3 (label 2) at v1 (label 0).
  EXPECT_FALSE(index.Weak(kU3, kV1));
  EXPECT_EQ(index.Later(kU3, kV1, kE2), kMinusInfinity);
}

TEST(MaxMinIndex, UntrackedEdgeUsesWeakBit) {
  TemporalGraph g = testlib::RunningExampleGraph(14);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  MaxMinIndex index(&g, &dag);
  // eps5 has no later-related descendants anywhere.
  EXPECT_EQ(index.Later(kU5, kV7, kE5), kPlusInfinity);
  EXPECT_EQ(index.Earlier(kU5, kV7, kE5), kMinusInfinity);
}

// The reversed DAG checks temporal *ancestors*: eps5's earlier-related
// edges (eps1, eps2) become descendants in q̂⁻¹.
TEST(MaxMinIndex, ReversedDagEarlierValues) {
  TemporalGraph g = testlib::RunningExampleGraph(14);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  const QueryDag rev = dag.Reversed();
  MaxMinIndex index(&g, &rev);
  const Timestamp got = index.Earlier(kU4, kV5, kE5);
  EXPECT_EQ(got, OracleEarlier(g, rev, kU4, kV5, kE5));
  // sigma_9 = (v5, v7, 9): needs ancestors eps1, eps2 with ts < 9 — the
  // reverse-DAG min-max at (u4, v5) must allow it.
  const TemporalEdge sigma9 = g.Edge(8);
  EXPECT_TRUE(index.CheckMatchable(kE5, sigma9, false) ||
              index.CheckMatchable(kE5, sigma9, true));
}

struct FilterPropertyCase {
  uint64_t seed;
};

class FilterProperty : public ::testing::TestWithParam<FilterPropertyCase> {};

// Randomized equivalence: after every insertion/FIFO expiration, the
// incrementally maintained index must agree with (a) a freshly built index
// over the same graph and (b) the explicit path-tree-homomorphism oracle.
TEST_P(FilterProperty, IncrementalEqualsFreshAndOracle) {
  Rng rng(GetParam().seed);
  const bool directed = rng.NextBool(0.5);
  const size_t num_labels = 1 + rng.NextBounded(2);

  // Random connected query with 3-5 vertices and some temporal order.
  QueryGraph q(directed);
  const size_t nq = 3 + rng.NextBounded(3);
  for (size_t i = 0; i < nq; ++i) {
    q.AddVertex(static_cast<Label>(rng.NextBounded(num_labels)));
  }
  for (size_t i = 1; i < nq; ++i) {
    q.AddEdge(static_cast<VertexId>(rng.NextBounded(i)),
              static_cast<VertexId>(i));
  }
  for (int k = 0; k < 2; ++k) {
    const VertexId a = static_cast<VertexId>(rng.NextBounded(nq));
    const VertexId b = static_cast<VertexId>(rng.NextBounded(nq));
    if (a != b && q.FindEdge(a, b) == kInvalidEdge) q.AddEdge(a, b);
  }
  for (int k = 0; k < 4; ++k) {
    const EdgeId a = static_cast<EdgeId>(rng.NextBounded(q.NumEdges()));
    const EdgeId b = static_cast<EdgeId>(rng.NextBounded(q.NumEdges()));
    if (a != b) (void)q.AddOrder(a, b);  // cycles rejected internally
  }

  const QueryDag dag = QueryDag::BuildBestDag(q);
  const QueryDag rev = dag.Reversed();

  const size_t nv = 6;
  TemporalGraph g(directed);
  for (size_t i = 0; i < nv; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(num_labels)));
  }
  MaxMinIndex inc_fwd(&g, &dag);
  MaxMinIndex inc_rev(&g, &rev);

  auto check_all = [&](const char* when) {
    MaxMinIndex fresh_fwd(&g, &dag);
    MaxMinIndex fresh_rev(&g, &rev);
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      for (VertexId v = 0; v < nv; ++v) {
        ASSERT_EQ(inc_fwd.Weak(u, v), fresh_fwd.Weak(u, v))
            << when << " weak fwd u=" << u << " v=" << v;
        ASSERT_EQ(inc_rev.Weak(u, v), fresh_rev.Weak(u, v))
            << when << " weak rev u=" << u << " v=" << v;
        ASSERT_EQ(inc_fwd.Weak(u, v), OracleWeak(g, dag, u, v))
            << when << " weak oracle u=" << u << " v=" << v;
        for (EdgeId e = 0; e < q.NumEdges(); ++e) {
          ASSERT_EQ(inc_fwd.Later(u, v, e), fresh_fwd.Later(u, v, e))
              << when << " later fwd u=" << u << " v=" << v << " e=" << e;
          ASSERT_EQ(inc_fwd.Earlier(u, v, e), fresh_fwd.Earlier(u, v, e))
              << when << " earlier fwd";
          ASSERT_EQ(inc_rev.Later(u, v, e), fresh_rev.Later(u, v, e))
              << when << " later rev";
          ASSERT_EQ(inc_rev.Earlier(u, v, e), fresh_rev.Earlier(u, v, e))
              << when << " earlier rev";
          // The oracle evaluates Definition IV.3 for arbitrary (u, e);
          // the index only maintains the slots it is ever queried on
          // (e ending at u or an ancestor of u) — compare those.
          if (dag.SlotLater(u, e) >= 0) {
            ASSERT_EQ(inc_fwd.Later(u, v, e), OracleLater(g, dag, u, v, e))
                << when << " later oracle u=" << u << " v=" << v
                << " e=" << e;
          }
          if (dag.SlotEarlier(u, e) >= 0) {
            ASSERT_EQ(inc_fwd.Earlier(u, v, e),
                      OracleEarlier(g, dag, u, v, e))
                << when << " earlier oracle";
          }
          if (rev.SlotLater(u, e) >= 0) {
            ASSERT_EQ(inc_rev.Later(u, v, e), OracleLater(g, rev, u, v, e))
                << when << " later rev oracle";
          }
          if (rev.SlotEarlier(u, e) >= 0) {
            ASSERT_EQ(inc_rev.Earlier(u, v, e),
                      OracleEarlier(g, rev, u, v, e))
                << when << " earlier rev oracle";
          }
        }
      }
    }
  };

  const Timestamp window = 12;
  std::vector<EdgeId> live;
  size_t expire_next = 0;
  std::vector<TemporalEdge> inserted;
  for (Timestamp t = 1; t <= 36; ++t) {
    const VertexId a = static_cast<VertexId>(rng.NextBounded(nv));
    VertexId b = static_cast<VertexId>(rng.NextBounded(nv));
    if (a == b) b = (b + 1) % nv;
    // FIFO expirations first.
    while (expire_next < inserted.size() &&
           inserted[expire_next].ts + window <= t) {
      const TemporalEdge copy = inserted[expire_next];
      g.RemoveEdge(copy.id);
      std::vector<UvPair> touched;
      inc_fwd.OnEdgeRemoved(copy, &touched);
      touched.clear();
      inc_rev.OnEdgeRemoved(copy, &touched);
      ++expire_next;
    }
    const Label elabel = static_cast<Label>(rng.NextBounded(2));
    const EdgeId id = g.InsertEdge(a, b, t, elabel);
    inserted.push_back(g.Edge(id));
    std::vector<UvPair> touched;
    inc_fwd.OnEdgeInserted(g.Edge(id), &touched);
    touched.clear();
    inc_rev.OnEdgeInserted(g.Edge(id), &touched);
    if (t % 6 == 0) {
      check_all("mid-stream");
      if (HasFailure()) return;
    }
  }
  check_all("final");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterProperty,
                         ::testing::Values(FilterPropertyCase{1},
                                           FilterPropertyCase{2},
                                           FilterPropertyCase{3},
                                           FilterPropertyCase{4},
                                           FilterPropertyCase{5},
                                           FilterPropertyCase{6},
                                           FilterPropertyCase{7},
                                           FilterPropertyCase{8}));

}  // namespace
}  // namespace tcsm
