#include <gtest/gtest.h>

#include "dag/query_dag.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"
#include "testing/oracle.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

TEST(Oracle, SingleEdgeQueryCountsParallelEdges) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  for (Timestamp t = 1; t <= 3; ++t) g.InsertEdge(0, 1, t);

  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);

  std::vector<Embedding> out;
  EnumerateEmbeddings(g, q, true, &out);
  // Same endpoint labels: each parallel edge maps in both orientations.
  EXPECT_EQ(out.size(), 6u);
}

TEST(Oracle, LabelsRestrictOrientation) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  for (Timestamp t = 1; t <= 3; ++t) g.InsertEdge(0, 1, t);

  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddEdge(0, 1);

  std::vector<Embedding> out;
  EnumerateEmbeddings(g, q, true, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(Oracle, DirectionRestrictsMatches) {
  TemporalGraph g(/*directed=*/true);
  g.AddVertex(0);
  g.AddVertex(0);
  g.InsertEdge(0, 1, 1);
  g.InsertEdge(1, 0, 2);

  QueryGraph q(/*directed=*/true);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);

  std::vector<Embedding> out;
  EnumerateEmbeddings(g, q, true, &out);
  EXPECT_EQ(out.size(), 2u);  // each directed edge gives one mapping

  // A directed 2-cycle query needs both directions between the same pair.
  QueryGraph cyc(/*directed=*/true);
  cyc.AddVertex(0);
  cyc.AddVertex(0);
  cyc.AddEdge(0, 1);
  cyc.AddEdge(1, 0);
  out.clear();
  EnumerateEmbeddings(g, cyc, true, &out);
  EXPECT_EQ(out.size(), 2u);  // (e0->a, e1->b) and the swapped roles
}

TEST(Oracle, TemporalOrderFilters) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.InsertEdge(0, 1, 5);
  g.InsertEdge(1, 2, 3);

  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(2);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  std::vector<Embedding> out;
  EnumerateEmbeddings(g, q, true, &out);
  EXPECT_EQ(out.size(), 1u);  // structure forces the single mapping

  ASSERT_TRUE(q.AddOrder(a, b).ok());  // requires ts(a) < ts(b): 5 < 3 fails
  out.clear();
  EnumerateEmbeddings(g, q, true, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  EnumerateEmbeddings(g, q, false, &out);  // without the order it matches
  EXPECT_EQ(out.size(), 1u);
}

TEST(Oracle, EdgeInjectivityOnParallelEdges) {
  // Triangle query u0-u1-u2-u0 where two query edges could share the only
  // data edge if injectivity were ignored.
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  g.InsertEdge(0, 1, 1);
  g.InsertEdge(1, 2, 2);
  g.InsertEdge(2, 0, 3);

  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 0);
  std::vector<Embedding> out;
  EnumerateEmbeddings(g, q, true, &out);
  EXPECT_EQ(out.size(), 6u);  // 3 rotations x 2 reflections
}

TEST(Oracle, RunningExampleCounts) {
  TemporalGraph g = testlib::RunningExampleGraph(14);
  const QueryGraph q = testlib::RunningExampleQuery();
  std::vector<Embedding> tc;
  EnumerateEmbeddings(g, q, true, &tc);
  EXPECT_EQ(tc.size(), 16u);

  // The two embeddings named in Example II.1 are among them.
  Embedding m1;
  m1.vertices = {testlib::kV1, testlib::kV2, testlib::kV4, testlib::kV5,
                 testlib::kV7};
  m1.edges = {0, 7, 10, 12, 9, 13};  // s1, s8, s11, s13, s10, s14
  Embedding m2 = m1;
  m2.edges[0] = 5;  // s6 instead of s1
  EXPECT_NE(std::find(tc.begin(), tc.end(), m1), tc.end());
  EXPECT_NE(std::find(tc.begin(), tc.end(), m2), tc.end());

  // The non-time-constrained mapping of Example II.1 is an embedding but
  // must not appear in the time-constrained set.
  Embedding bad = m1;
  bad.edges = {0, 3, 10, 1, 8, 4};  // s1, s4, s11, s2, s9, s5
  std::vector<Embedding> plain;
  EnumerateEmbeddings(g, q, false, &plain);
  EXPECT_NE(std::find(plain.begin(), plain.end(), bad), plain.end());
  EXPECT_EQ(std::find(tc.begin(), tc.end(), bad), tc.end());
}

TEST(Oracle, AchievableValuesOnChain) {
  // Chain query u0 -e0- u1 -e1- u2 with e0 < e1; data has two parallel
  // choices for e1 with timestamps 5 and 9.
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.InsertEdge(0, 1, 3);
  g.InsertEdge(1, 2, 5);
  g.InsertEdge(1, 2, 9);

  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(2);
  const EdgeId e0 = q.AddEdge(0, 1);
  const EdgeId e1 = q.AddEdge(1, 2);
  ASSERT_TRUE(q.AddOrder(e0, e1).ok());
  const QueryDag dag = QueryDag::BuildDagGreedy(q, 0);
  ASSERT_EQ(dag.ChildOf(e0), 1u);
  // Max-min for e0 at (u1, v1): best weak embedding picks ts 9.
  EXPECT_EQ(OracleLater(g, dag, 1, 1, e0), 9);
  // No weak embedding of q̂_u1 at v0 (label mismatch).
  EXPECT_EQ(OracleLater(g, dag, 1, 0, e0), kMinusInfinity);
  EXPECT_TRUE(OracleWeak(g, dag, 1, 1));
  EXPECT_FALSE(OracleWeak(g, dag, 1, 2));
}

TEST(Oracle, EarlierValuesOnReversedChain) {
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  g.InsertEdge(0, 1, 3);
  g.InsertEdge(0, 1, 7);
  g.InsertEdge(1, 2, 5);

  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(2);
  const EdgeId e0 = q.AddEdge(0, 1);
  const EdgeId e1 = q.AddEdge(1, 2);
  ASSERT_TRUE(q.AddOrder(e0, e1).ok());
  const QueryDag dag = QueryDag::BuildDagGreedy(q, 0);
  const QueryDag rev = dag.Reversed();
  // In q̂⁻¹, e0 is a descendant of e1; min-max for e1 at (u1, v1) picks
  // the smaller parallel edge: 3.
  EXPECT_EQ(OracleEarlier(g, rev, 1, 1, e1), 3);
}

}  // namespace
}  // namespace tcsm
