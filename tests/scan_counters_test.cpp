// Scan-selectivity counters (adj_entries_scanned / adj_entries_matched):
// the measurable surface of the label-partitioned adjacency. The flat-scan
// ablation (TcmConfig::partitioned_adjacency = false) visits every
// incident entry, the partitioned default only the statically feasible
// bucket — the matched counts must agree exactly (same verdicts, different
// work) and the match streams must be identical.
#include <gtest/gtest.h>

#include "baselines/local_enum_engine.h"
#include "baselines/timing_engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

namespace tcsm {
namespace {

struct Workload {
  TemporalDataset dataset;
  QueryGraph query;
  GraphSchema schema;
  StreamConfig config;
};

/// A richly labeled stream where most adjacency entries are statically
/// infeasible for any one query edge — the regime the partitioning targets.
Workload ManyLabelWorkload() {
  SyntheticSpec spec;
  spec.name = "scan_counters";
  spec.num_vertices = 60;
  spec.num_edges = 1500;
  spec.num_vertex_labels = 6;
  spec.num_edge_labels = 3;
  spec.avg_parallel_edges = 1.6;
  spec.seed = 20240721;
  Workload w;
  w.dataset = GenerateSynthetic(spec);
  w.config.window = 60;
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  opt.window = w.config.window;
  Rng rng(spec.seed);
  EXPECT_TRUE(GenerateQuery(w.dataset, opt, &rng, &w.query));
  w.schema = GraphSchema{w.dataset.directed, w.dataset.vertex_labels};
  return w;
}

TEST(ScanCounters, PartitionedScansLessMatchesSame) {
  const Workload w = ManyLabelWorkload();

  TcmConfig flat;
  flat.partitioned_adjacency = false;
  SingleQueryContext<TcmEngine> flat_run(w.query, w.schema, flat);
  const StreamResult flat_res = RunStream(w.dataset, w.config, &flat_run);
  ASSERT_TRUE(flat_res.completed);

  SingleQueryContext<TcmEngine> part_run(w.query, w.schema);
  const StreamResult part_res = RunStream(w.dataset, w.config, &part_run);
  ASSERT_TRUE(part_res.completed);

  // Identical results either way.
  EXPECT_EQ(flat_res.occurred, part_res.occurred);
  EXPECT_EQ(flat_res.expired, part_res.expired);
  // The same entries pass the static checks in both modes...
  EXPECT_EQ(flat_res.adj_entries_matched, part_res.adj_entries_matched);
  // ...but the flat scan visits every incident entry to find them. With 6
  // vertex and 3 edge labels most entries are infeasible, so the gap is
  // strict (this is the partitioning win the bench quantifies).
  EXPECT_GT(flat_res.adj_entries_scanned, part_res.adj_entries_scanned);
  EXPECT_GE(part_res.adj_entries_scanned, part_res.adj_entries_matched);
  EXPECT_GT(part_res.adj_entries_scanned, 0u);
}

TEST(ScanCounters, SurfaceThroughEngineCountersAndAggregation) {
  const Workload w = ManyLabelWorkload();
  SingleQueryContext<TcmEngine> run(w.query, w.schema);
  const StreamResult res = RunStream(w.dataset, w.config, &run);
  ASSERT_TRUE(res.completed);
  const EngineCounters& c = run.engine().counters();
  EXPECT_EQ(c.adj_entries_scanned, res.adj_entries_scanned);
  EXPECT_EQ(c.adj_entries_matched, res.adj_entries_matched);
  EXPECT_EQ(run.AggregateCounters().adj_entries_scanned,
            c.adj_entries_scanned);
}

TEST(ScanCounters, BaselineEnginesCountTheirScans) {
  const Workload w = ManyLabelWorkload();
  {
    SingleQueryContext<LocalEnumEngine> run(w.query, w.schema);
    const StreamResult res = RunStream(w.dataset, w.config, &run);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.adj_entries_scanned, 0u);
    EXPECT_GE(res.adj_entries_scanned, res.adj_entries_matched);
  }
  {
    SingleQueryContext<TimingEngine> run(w.query, w.schema);
    const StreamResult res = RunStream(w.dataset, w.config, &run);
    ASSERT_TRUE(res.completed);
    EXPECT_GE(res.adj_entries_scanned, res.adj_entries_matched);
  }
}

TEST(ScanCounters, BloomPrefilterSkipsWrongDirectionScansMatchesSame) {
  // Directed multi-label stream: adjacency buckets mix both orientations,
  // so some bucket scans visit only wrong-direction entries and match
  // nothing. The direction-aware Bloom masks skip exactly those scans —
  // the matched count is untouched while the scanned count strictly
  // drops.
  SyntheticSpec spec;
  spec.name = "scan_counters_directed";
  spec.num_vertices = 40;
  spec.num_edges = 1200;
  spec.num_vertex_labels = 4;
  spec.num_edge_labels = 3;
  spec.avg_parallel_edges = 1.6;
  spec.directed = true;
  spec.seed = 20240722;
  const TemporalDataset ds = GenerateSynthetic(spec);
  const GraphSchema schema{ds.directed, ds.vertex_labels};
  StreamConfig config;
  config.window = 60;
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  opt.window = config.window;
  Rng rng(spec.seed);
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));

  TcmConfig off;
  off.use_bloom_prefilter = false;
  SingleQueryContext<TcmEngine> off_run(q, schema, off);
  const StreamResult off_res = RunStream(ds, config, &off_run);
  ASSERT_TRUE(off_res.completed);

  SingleQueryContext<TcmEngine> on_run(q, schema);
  const StreamResult on_res = RunStream(ds, config, &on_run);
  ASSERT_TRUE(on_res.completed);

  EXPECT_EQ(off_res.occurred, on_res.occurred);
  EXPECT_EQ(off_res.expired, on_res.expired);
  EXPECT_EQ(off_res.adj_entries_matched, on_res.adj_entries_matched);
  EXPECT_LT(on_res.adj_entries_scanned, off_res.adj_entries_scanned);
  EXPECT_GE(on_res.adj_entries_scanned, on_res.adj_entries_matched);
}

TEST(ScanCounters, BloomPrefilterIsScanNeutralOnUndirectedStreams) {
  // Undirected buckets hold no direction mix, so every partitioned scan
  // the prefilter could skip would have visited zero entries anyway: the
  // scanned counter must be bit-identical with the prefilter on or off
  // (the filter only saves the hash-map lookups).
  const Workload w = ManyLabelWorkload();

  TcmConfig off;
  off.use_bloom_prefilter = false;
  SingleQueryContext<TcmEngine> off_run(w.query, w.schema, off);
  const StreamResult off_res = RunStream(w.dataset, w.config, &off_run);
  ASSERT_TRUE(off_res.completed);

  SingleQueryContext<TcmEngine> on_run(w.query, w.schema);
  const StreamResult on_res = RunStream(w.dataset, w.config, &on_run);
  ASSERT_TRUE(on_res.completed);

  EXPECT_EQ(off_res.adj_entries_scanned, on_res.adj_entries_scanned);
  EXPECT_EQ(off_res.adj_entries_matched, on_res.adj_entries_matched);
}

TEST(ScanCounters, SingleLabelStreamScansEqualFlatScan) {
  // With one vertex label and one edge label every incident entry sits in
  // the one bucket, so partitioned and flat scans do identical work — the
  // no-regression half of the storage-scaling acceptance bar.
  SyntheticSpec spec;
  spec.name = "scan_counters_unlabeled";
  spec.num_vertices = 20;
  spec.num_edges = 400;
  spec.num_vertex_labels = 1;
  spec.num_edge_labels = 1;
  spec.avg_parallel_edges = 1.5;
  spec.seed = 99;
  const TemporalDataset ds = GenerateSynthetic(spec);
  const GraphSchema schema{ds.directed, ds.vertex_labels};
  StreamConfig config;
  config.window = 30;
  QueryGenOptions opt;
  opt.num_edges = 3;
  opt.density = 0.5;
  opt.window = config.window;
  Rng rng(spec.seed);
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));

  TcmConfig flat;
  flat.partitioned_adjacency = false;
  SingleQueryContext<TcmEngine> flat_run(q, schema, flat);
  const StreamResult flat_res = RunStream(ds, config, &flat_run);

  SingleQueryContext<TcmEngine> part_run(q, schema);
  const StreamResult part_res = RunStream(ds, config, &part_run);

  EXPECT_EQ(flat_res.occurred, part_res.occurred);
  EXPECT_EQ(flat_res.adj_entries_scanned, part_res.adj_entries_scanned);
  EXPECT_EQ(flat_res.adj_entries_matched, part_res.adj_entries_matched);
}

}  // namespace
}  // namespace tcsm
