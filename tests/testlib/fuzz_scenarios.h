// Scenario catalogue for the randomized differential stream-fuzz harness
// (stream_fuzz_test.cpp). Each scenario deterministically derives a
// synthetic dataset spec and a query-generation recipe from one seed, so a
// failing scenario reproduces from its name alone. The default catalogue
// sweeps the axes the engines are most sensitive to: graph density /
// parallel-edge multiplicity, window size, vertex/edge label alphabet
// sizes, directedness, query size, and temporal-order density.
#ifndef TCSM_TESTS_TESTLIB_FUZZ_SCENARIOS_H_
#define TCSM_TESTS_TESTLIB_FUZZ_SCENARIOS_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

namespace tcsm::testlib {

struct FuzzScenario {
  std::string name;
  uint64_t seed = 0;
  SyntheticSpec spec;       // dataset shape (spec.seed is set from `seed`)
  QueryGenOptions query;    // random-walk query recipe
  Timestamp window = 40;    // stream window delta
};

/// Deterministic catalogue; every entry is sized so that the from-scratch
/// snapshot oracle stays tractable (the checker re-enumerates all
/// embeddings after every event).
inline std::vector<FuzzScenario> DefaultFuzzScenarios() {
  std::vector<FuzzScenario> out;
  auto add = [&out](std::string name, uint64_t seed, size_t vertices,
                    size_t edges, size_t vlabels, size_t elabels,
                    double parallel, double skew, bool directed,
                    size_t query_edges, double order_density,
                    Timestamp window) {
    FuzzScenario s;
    s.name = std::move(name);
    s.seed = seed;
    s.spec.name = s.name;
    s.spec.num_vertices = vertices;
    s.spec.num_edges = edges;
    s.spec.num_vertex_labels = vlabels;
    s.spec.num_edge_labels = elabels;
    s.spec.avg_parallel_edges = parallel;
    s.spec.degree_skew = skew;
    s.spec.directed = directed;
    s.spec.seed = seed;
    s.query.num_edges = query_edges;
    s.query.density = order_density;
    s.query.window = window;
    s.window = window;
    out.push_back(std::move(s));
  };

  //   name                 seed  |V|  |E|  vl el par  skew dir  qm dens win
  add("sparse_unlabeled",   101,  16,  90,  2, 1, 1.2, 0.6, false, 3, 0.50, 40);
  add("dense_parallel",     102,  10, 120,  2, 1, 3.0, 0.9, false, 4, 0.50, 35);
  add("tiny_window",        103,  14, 110,  3, 1, 2.0, 0.8, false, 4, 0.75, 12);
  add("wide_window",        104,  14, 100,  3, 1, 2.0, 0.8, false, 4, 0.25, 90);
  add("many_labels",        105,  14, 120,  5, 3, 1.8, 0.7, false, 4, 0.50, 45);
  add("directed_sparse",    106,  16, 100,  2, 1, 1.5, 0.7, true,  4, 0.50, 40);
  add("directed_dense",     107,  10, 130,  2, 2, 2.6, 1.0, true,  4, 0.75, 30);
  add("no_order",           108,  12, 100,  3, 1, 2.0, 0.8, false, 4, 0.00, 40);
  add("total_order",        109,  12, 100,  3, 1, 2.0, 0.8, false, 4, 1.00, 40);
  add("bigger_query",       110,  14, 110,  3, 1, 2.2, 0.8, false, 6, 0.50, 45);
  // Storage-layer stressors for the label-partitioned, slot-recycled
  // adjacency: a skewed stream over a wide label alphabet (many sparse
  // buckets per hub vertex), and a tiny window over a long stream so
  // every edge slot is recycled many times mid-replay.
  add("label_skewed_wide",  111,  14, 130,  6, 4, 1.8, 1.2, false, 4, 0.50, 45);
  add("slot_churn",         112,  12, 150,  3, 2, 2.0, 0.8, false, 3, 0.50, 8);
  // Micro-batching stressors (DESIGN.md §9): runs of arrivals share one
  // timestamp, so the coalesced OnEdgeArrivalBatch / OnEdgeExpiryBatch
  // paths — and through them the pipelined fan-out — are exercised by
  // every differential test in the catalogue. Windows are sized in the
  // coalesced timestamp unit (|E| / ts_coalesce distinct instants).
  add("same_ts_bursts",     113,  14, 120,  3, 2, 2.0, 0.8, false, 4, 0.50, 10);
  out.back().spec.ts_coalesce = 4;
  add("same_ts_directed",   114,  12, 120,  3, 2, 2.0, 0.9, true,  4, 0.50, 7);
  out.back().spec.ts_coalesce = 6;
  // Temporal-predicate scenarios (DESIGN.md §12). Gap bounds are derived
  // from the witness walk (always satisfiable); absence labels are drawn
  // from the alphabet plus one out-of-alphabet value, so predicates range
  // from vacuous to killing the witness itself.
  add("gap_bounded",        115,  14, 110,  3, 1, 2.0, 0.8, false, 4, 0.25, 45);
  out.back().query.gap_probability = 0.7;
  out.back().query.gap_slack = 12;
  add("gap_tight",          116,  12, 120,  2, 1, 2.4, 0.8, false, 4, 0.00, 30);
  out.back().query.gap_probability = 1.0;
  out.back().query.gap_slack = 2;
  add("absence",            117,  14, 110,  3, 2, 2.0, 0.8, false, 3, 0.50, 40);
  out.back().query.num_absence = 2;
  out.back().query.absence_delta = 6;
  add("absence_directed",   118,  12, 120,  3, 2, 2.0, 0.9, true,  3, 0.50, 35);
  out.back().query.num_absence = 2;
  out.back().query.absence_delta = 10;
  add("order_gap_absence",  119,  14, 120,  3, 2, 2.0, 0.8, false, 4, 0.50, 40);
  out.back().query.gap_probability = 0.5;
  out.back().query.gap_slack = 8;
  out.back().query.num_absence = 1;
  out.back().query.absence_delta = 8;
  return out;
}

}  // namespace tcsm::testlib

#endif  // TCSM_TESTS_TESTLIB_FUZZ_SCENARIOS_H_
