// The paper's running example (Figure 2): temporal data graph G with
// edges sigma_1..sigma_14 (edge sigma_i arrives at time i) and temporal
// query graph q with edges eps_1..eps_6.
//
// Reconstruction notes (all derived from the paper's worked examples):
//   sigma_1=(v1,v2,1)   sigma_2=(v4,v5,2)   sigma_3=(v4,v5,3)
//   sigma_4=(v1,v4,4)   sigma_5=(v4,v7,5)   sigma_6=(v1,v2,6)
//   sigma_7=(v4,v7,7)   sigma_8=(v1,v4,8)   sigma_9=(v5,v7,9)
//   sigma_10=(v5,v7,10) sigma_11=(v2,v5,11) sigma_12=(v1,v4,12)
//   sigma_13=(v4,v5,13) sigma_14=(v4,v7,14)
//   eps_1=(u1,u2) eps_2=(u1,u3) eps_3=(u2,u4) eps_4=(u3,u4)
//   eps_5=(u4,u5) eps_6=(u3,u5)
// Order: e1<e3, e1<e5, e2<e4, e2<e5, e2<e6 (already transitively closed).
// This is the unique relation consistent with Example II.1's embeddings
// (e4<e5 would violate eps4->sigma13, eps5->sigma10), Example IV.3's
// min-timestamps 7/9/7/10 (which need e2 ~ e5), and Example IV.2's final
// DAG score of 5. The greedy DAG from root u1 then has score 5 with
// topological order u1,u3,u2,u4,u5 — exactly Fig. 3a/4.
#ifndef TCSM_TESTS_TESTLIB_RUNNING_EXAMPLE_H_
#define TCSM_TESTS_TESTLIB_RUNNING_EXAMPLE_H_

#include <vector>

#include "common/logging.h"
#include "core/engine.h"
#include "graph/temporal_dataset.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"

namespace tcsm::testlib {

// Query vertex ids.
inline constexpr VertexId kU1 = 0, kU2 = 1, kU3 = 2, kU4 = 3, kU5 = 4;
// Query edge ids.
inline constexpr EdgeId kE1 = 0, kE2 = 1, kE3 = 2, kE4 = 3, kE5 = 4,
                        kE6 = 5;
// Data vertex ids (v1..v7 -> 0..6).
inline constexpr VertexId kV1 = 0, kV2 = 1, kV3 = 2, kV4 = 3, kV5 = 4,
                          kV6 = 5, kV7 = 6;

/// Vertex labels: v1:0, v2:1, v4:2, v5:3, v7:4; v3/v6 get private labels.
inline std::vector<Label> RunningExampleLabels() {
  return {0, 1, 5, 2, 3, 6, 4};
}

/// sigma_1..sigma_14 as (src, dst); sigma_i has timestamp i and id i-1.
inline std::vector<std::pair<VertexId, VertexId>> RunningExampleEdges() {
  return {{kV1, kV2}, {kV4, kV5}, {kV4, kV5}, {kV1, kV4}, {kV4, kV7},
          {kV1, kV2}, {kV4, kV7}, {kV1, kV4}, {kV5, kV7}, {kV5, kV7},
          {kV2, kV5}, {kV1, kV4}, {kV4, kV5}, {kV4, kV7}};
}

inline QueryGraph RunningExampleQuery() {
  QueryGraph q(/*directed=*/false);
  q.AddVertex(0);  // u1
  q.AddVertex(1);  // u2
  q.AddVertex(2);  // u3
  q.AddVertex(3);  // u4
  q.AddVertex(4);  // u5
  q.AddEdge(kU1, kU2);  // eps1
  q.AddEdge(kU1, kU3);  // eps2
  q.AddEdge(kU2, kU4);  // eps3
  q.AddEdge(kU3, kU4);  // eps4
  q.AddEdge(kU4, kU5);  // eps5
  q.AddEdge(kU3, kU5);  // eps6
  TCSM_CHECK(q.AddOrder(kE1, kE3).ok());
  TCSM_CHECK(q.AddOrder(kE1, kE5).ok());
  TCSM_CHECK(q.AddOrder(kE2, kE4).ok());
  TCSM_CHECK(q.AddOrder(kE2, kE5).ok());
  TCSM_CHECK(q.AddOrder(kE2, kE6).ok());
  return q;
}

inline TemporalDataset RunningExampleDataset() {
  TemporalDataset ds;
  ds.name = "running-example";
  ds.directed = false;
  ds.vertex_labels = RunningExampleLabels();
  const auto edges = RunningExampleEdges();
  for (size_t i = 0; i < edges.size(); ++i) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(i);
    e.src = edges[i].first;
    e.dst = edges[i].second;
    e.ts = static_cast<Timestamp>(i + 1);
    ds.edges.push_back(e);
  }
  return ds;
}

/// A live TemporalGraph holding sigma_1..sigma_<up_to> (1-based).
inline TemporalGraph RunningExampleGraph(size_t up_to = 14) {
  TemporalGraph g(/*directed=*/false);
  for (const Label l : RunningExampleLabels()) g.AddVertex(l);
  const auto edges = RunningExampleEdges();
  TCSM_CHECK(up_to <= edges.size());
  for (size_t i = 0; i < up_to; ++i) {
    g.InsertEdge(edges[i].first, edges[i].second,
                 static_cast<Timestamp>(i + 1));
  }
  return g;
}

inline GraphSchema RunningExampleSchema() {
  return GraphSchema{false, RunningExampleLabels()};
}

}  // namespace tcsm::testlib

#endif  // TCSM_TESTS_TESTLIB_RUNNING_EXAMPLE_H_
