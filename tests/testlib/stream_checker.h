// Test harness that replays a dataset event by event through an engine and
// checks every reported occurred/expired embedding against a brute-force
// snapshot oracle: after each event the set of time-constrained embeddings
// of the live graph is enumerated from scratch and diffed against the
// previous snapshot.
#ifndef TCSM_TESTS_TESTLIB_STREAM_CHECKER_H_
#define TCSM_TESTS_TESTLIB_STREAM_CHECKER_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/engine.h"
#include "core/shared_context.h"
#include "graph/temporal_dataset.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"
#include "testing/oracle.h"

namespace tcsm::testlib {

using EmbeddingSet = std::unordered_set<Embedding, EmbeddingHash>;

inline EmbeddingSet Snapshot(const TemporalGraph& g, const QueryGraph& q) {
  std::vector<Embedding> embs;
  EnumerateEmbeddings(g, q, /*check_order=*/true, &embs);
  EmbeddingSet set(embs.begin(), embs.end());
  EXPECT_EQ(set.size(), embs.size()) << "oracle produced duplicates";
  return set;
}

/// Replays `dataset` with `window` through `context` (with `engine`
/// attached to it), asserting that the engine's per-event occurred/expired
/// embedding sets equal the oracle's snapshot diffs. Returns the total
/// number of occurred matches.
inline uint64_t CheckEngineAgainstOracle(const TemporalDataset& dataset,
                                         const QueryGraph& query,
                                         Timestamp window,
                                         SharedStreamContext* context,
                                         ContinuousEngine* engine) {
  CollectingSink sink;
  engine->set_sink(&sink);

  TemporalGraph mirror(dataset.directed);
  mirror.EnsureVertices(dataset.vertex_labels.size());
  for (size_t v = 0; v < dataset.vertex_labels.size(); ++v) {
    mirror.SetVertexLabel(static_cast<VertexId>(v),
                          dataset.vertex_labels[v]);
  }
  EmbeddingSet current;
  uint64_t total_occurred = 0;

  size_t arr = 0;
  size_t exp = 0;
  const size_t n = dataset.edges.size();
  size_t reported = 0;  // consumed prefix of sink.matches()
  while (arr < n || exp < arr) {
    const bool do_expire =
        exp < arr && (arr >= n || dataset.edges[exp].ts + window <=
                                      dataset.edges[arr].ts);
    EmbeddingSet expect_occurred;
    EmbeddingSet expect_expired;
    if (do_expire) {
      const TemporalEdge& e = dataset.edges[exp];
      context->OnEdgeExpiry(e);
      mirror.RemoveEdge(e.id);
      const EmbeddingSet next = Snapshot(mirror, query);
      for (const Embedding& m : current) {
        if (next.count(m) == 0) expect_expired.insert(m);
      }
      current = next;
      ++exp;
    } else {
      const TemporalEdge& e = dataset.edges[arr];
      context->OnEdgeArrival(e);
      mirror.InsertEdge(e.src, e.dst, e.ts, e.label);
      const EmbeddingSet next = Snapshot(mirror, query);
      for (const Embedding& m : next) {
        if (current.count(m) == 0) expect_occurred.insert(m);
      }
      current = next;
      ++arr;
    }
    // Drain this event's reports.
    EmbeddingSet got_occurred;
    EmbeddingSet got_expired;
    for (; reported < sink.matches().size(); ++reported) {
      const auto& [emb, kind] = sink.matches()[reported];
      const bool inserted = (kind == MatchKind::kOccurred ? got_occurred
                                                          : got_expired)
                                .insert(emb)
                                .second;
      EXPECT_TRUE(inserted) << "duplicate report from " << engine->name();
    }
    EXPECT_EQ(got_occurred, expect_occurred)
        << engine->name() << ": wrong occurred set at event "
        << (arr + exp - 1);
    EXPECT_EQ(got_expired, expect_expired)
        << engine->name() << ": wrong expired set at event "
        << (arr + exp - 1);
    total_occurred += expect_occurred.size();
    if (::testing::Test::HasFailure()) break;  // stop at first divergence
  }
  engine->set_sink(nullptr);
  return total_occurred;
}

/// Convenience overload for the common one-query rig.
template <typename EngineT>
uint64_t CheckEngineAgainstOracle(const TemporalDataset& dataset,
                                  const QueryGraph& query, Timestamp window,
                                  SingleQueryContext<EngineT>* run) {
  return CheckEngineAgainstOracle(dataset, query, window, run,
                                  &run->engine());
}

}  // namespace tcsm::testlib

#endif  // TCSM_TESTS_TESTLIB_STREAM_CHECKER_H_
