// Test harness that replays a dataset event by event through an engine and
// checks every reported occurred/expired embedding against a brute-force
// snapshot oracle: after each event the set of time-constrained embeddings
// of the live graph is enumerated from scratch and diffed against the
// previous snapshot.
#ifndef TCSM_TESTS_TESTLIB_STREAM_CHECKER_H_
#define TCSM_TESTS_TESTLIB_STREAM_CHECKER_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/engine.h"
#include "core/shared_context.h"
#include "graph/temporal_dataset.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"
#include "testing/oracle.h"

namespace tcsm::testlib {

using EmbeddingSet = std::unordered_set<Embedding, EmbeddingHash>;

inline EmbeddingSet Snapshot(const TemporalGraph& g, const QueryGraph& q) {
  std::vector<Embedding> embs;
  EnumerateEmbeddings(g, q, /*check_order=*/true, &embs);
  EmbeddingSet set(embs.begin(), embs.end());
  EXPECT_EQ(set.size(), embs.size()) << "oracle produced duplicates";
  return set;
}

/// Replays `dataset` with `window` through `context` (with `engine`
/// attached to it), asserting that the engine's per-event occurred/expired
/// embedding sets equal the oracle's snapshot diffs. Returns the total
/// number of occurred matches.
inline uint64_t CheckEngineAgainstOracle(const TemporalDataset& dataset,
                                         const QueryGraph& query,
                                         Timestamp window,
                                         SharedStreamContext* context,
                                         ContinuousEngine* engine) {
  CollectingSink sink;
  engine->set_sink(&sink);

  TemporalGraph mirror(dataset.directed);
  mirror.EnsureVertices(dataset.vertex_labels.size());
  for (size_t v = 0; v < dataset.vertex_labels.size(); ++v) {
    mirror.SetVertexLabel(static_cast<VertexId>(v),
                          dataset.vertex_labels[v]);
  }
  EmbeddingSet current;
  uint64_t total_occurred = 0;

  // Mirrored deferred-emission state for absence predicates. This is an
  // independent transcription of the specified semantics (DESIGN.md §12),
  // deliberately NOT sharing code with src/core/engine.cpp so the
  // differential diff stays meaningful: a structural completion at trigger
  // time T goes pending; a matching non-own data edge inside [T, T+delta]
  // kills it; a pending completion is emitted at the first arrival past
  // its deadline (FIFO) or, failing that, immediately before its own
  // expired report.
  struct MirrorPending {
    Embedding emb;
    Timestamp trigger_ts;
    Timestamp deadline;
  };
  const bool absence = !query.absences().empty();
  Timestamp max_delta = 0;
  for (const AbsencePredicate& p : query.absences()) {
    max_delta = std::max(max_delta, p.delta);
  }
  Timestamp abs_ts = kMinusInfinity;
  std::vector<TemporalEdge> abs_same_ts;  // same-instant earlier arrivals
  std::vector<MirrorPending> abs_pending;
  EmbeddingSet abs_suppressed;
  const auto violates = [&query](const Embedding& emb, Timestamp trigger_ts,
                                 const TemporalEdge& ed) {
    for (const AbsencePredicate& p : query.absences()) {
      if (ed.label != p.label || ed.ts > trigger_ts + p.delta) continue;
      const VertexId iu = emb.vertices[p.u];
      const VertexId iv = emb.vertices[p.v];
      const bool hit = query.directed()
                           ? (ed.src == iu && ed.dst == iv)
                           : ((ed.src == iu && ed.dst == iv) ||
                              (ed.src == iv && ed.dst == iu));
      if (!hit) continue;
      if (std::find(emb.edges.begin(), emb.edges.end(), ed.id) !=
          emb.edges.end()) {
        continue;  // an embedding's own edges never violate it
      }
      return true;
    }
    return false;
  };

  size_t arr = 0;
  size_t exp = 0;
  const size_t n = dataset.edges.size();
  size_t reported = 0;  // consumed prefix of sink.matches()
  while (arr < n || exp < arr) {
    const bool do_expire =
        exp < arr && (arr >= n || dataset.edges[exp].ts + window <=
                                      dataset.edges[arr].ts);
    EmbeddingSet expect_occurred;
    EmbeddingSet expect_expired;
    if (do_expire) {
      const TemporalEdge& e = dataset.edges[exp];
      context->OnEdgeExpiry(e);
      mirror.RemoveEdge(e.id);
      const EmbeddingSet next = Snapshot(mirror, query);
      for (const Embedding& m : current) {
        if (next.count(m) != 0) continue;
        if (!absence) {
          expect_expired.insert(m);
          continue;
        }
        if (abs_suppressed.erase(m) > 0) continue;  // swallowed entirely
        const auto it = std::find_if(
            abs_pending.begin(), abs_pending.end(),
            [&m](const MirrorPending& p) { return p.emb == m; });
        if (it != abs_pending.end()) {
          // Dies with its absence window still open: resolves now, the
          // occurred report immediately preceding the expired one.
          abs_pending.erase(it);
          expect_occurred.insert(m);
        }
        expect_expired.insert(m);
      }
      current = next;
      ++exp;
    } else {
      const TemporalEdge& e = dataset.edges[arr];
      if (absence) {
        if (e.ts != abs_ts) {
          abs_same_ts.clear();
          abs_ts = e.ts;
        }
        // Deadline strictly passed: no future arrival can violate.
        while (!abs_pending.empty() && abs_pending.front().deadline < e.ts) {
          expect_occurred.insert(abs_pending.front().emb);
          abs_pending.erase(abs_pending.begin());
        }
        for (auto it = abs_pending.begin(); it != abs_pending.end();) {
          if (violates(it->emb, it->trigger_ts, e)) {
            abs_suppressed.insert(it->emb);
            it = abs_pending.erase(it);
          } else {
            ++it;
          }
        }
        for (const AbsencePredicate& p : query.absences()) {
          if (p.label == e.label) {
            abs_same_ts.push_back(e);
            break;
          }
        }
      }
      context->OnEdgeArrival(e);
      mirror.InsertEdge(e.src, e.dst, e.ts, e.label);
      const EmbeddingSet next = Snapshot(mirror, query);
      for (const Embedding& m : next) {
        if (current.count(m) != 0) continue;
        if (!absence) {
          expect_occurred.insert(m);
          continue;
        }
        // Birth check against same-instant earlier arrivals, then defer.
        bool dead = false;
        for (const TemporalEdge& b : abs_same_ts) {
          if (violates(m, e.ts, b)) {
            dead = true;
            break;
          }
        }
        if (dead) {
          abs_suppressed.insert(m);
        } else {
          abs_pending.push_back(MirrorPending{m, e.ts, e.ts + max_delta});
        }
      }
      current = next;
      ++arr;
    }
    // Drain this event's reports.
    EmbeddingSet got_occurred;
    EmbeddingSet got_expired;
    for (; reported < sink.matches().size(); ++reported) {
      const auto& [emb, kind] = sink.matches()[reported];
      const bool inserted = (kind == MatchKind::kOccurred ? got_occurred
                                                          : got_expired)
                                .insert(emb)
                                .second;
      EXPECT_TRUE(inserted) << "duplicate report from " << engine->name();
    }
    EXPECT_EQ(got_occurred, expect_occurred)
        << engine->name() << ": wrong occurred set at event "
        << (arr + exp - 1);
    EXPECT_EQ(got_expired, expect_expired)
        << engine->name() << ": wrong expired set at event "
        << (arr + exp - 1);
    total_occurred += expect_occurred.size();
    if (::testing::Test::HasFailure()) break;  // stop at first divergence
  }
  // Both stream drivers drain every expiration at end of stream, so every
  // pending completion must have resolved through its own expiry.
  if (absence && !::testing::Test::HasFailure()) {
    EXPECT_TRUE(abs_pending.empty())
        << engine->name() << ": " << abs_pending.size()
        << " absence-pending completions never resolved";
  }
  engine->set_sink(nullptr);
  return total_occurred;
}

/// Convenience overload for the common one-query rig.
template <typename EngineT>
uint64_t CheckEngineAgainstOracle(const TemporalDataset& dataset,
                                  const QueryGraph& query, Timestamp window,
                                  SingleQueryContext<EngineT>* run) {
  return CheckEngineAgainstOracle(dataset, query, window, run,
                                  &run->engine());
}

}  // namespace tcsm::testlib

#endif  // TCSM_TESTS_TESTLIB_STREAM_CHECKER_H_
