// Focused edge cases for the max-min timestamp index beyond the
// randomized sweeps: deep chains, duplicate timestamps, directed data,
// labeled edges inside weak embeddings, and memory accounting.
#include <gtest/gtest.h>

#include "dag/query_dag.h"
#include "filter/maxmin_index.h"
#include "graph/temporal_graph.h"
#include "testing/oracle.h"

namespace tcsm {
namespace {

/// Path query u0 - u1 - ... - uk with e_i ≺ e_{i+1} for all i.
QueryGraph ChainQuery(size_t edges, bool directed = false) {
  QueryGraph q(directed);
  q.AddVertex(0);
  for (size_t i = 0; i < edges; ++i) {
    q.AddVertex(0);
    q.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
    if (i > 0) {
      TCSM_CHECK(q.AddOrder(static_cast<EdgeId>(i - 1),
                            static_cast<EdgeId>(i))
                     .ok());
    }
  }
  return q;
}

TEST(FilterEdgeCases, DeepChainPropagation) {
  // Data: a long path with strictly increasing timestamps — the only
  // TC-embedding maps edge i to data edge i. The gate at the chain head
  // must reflect the whole downstream path.
  const size_t k = 6;
  const QueryGraph q = ChainQuery(k);
  const QueryDag dag = QueryDag::BuildDagGreedy(q, 0);
  TemporalGraph g;
  for (size_t i = 0; i <= k; ++i) g.AddVertex(0);
  for (size_t i = 0; i < k; ++i) {
    g.InsertEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
                 static_cast<Timestamp>(10 * (i + 1)));
  }
  MaxMinIndex index(&g, &dag);
  // Chain rooted at u0: the child endpoint of e0 is u1; its gate for e0
  // is min over the downstream path of the max-min values.
  const VertexId child0 = dag.ChildOf(0);
  const VertexId img = child0 == 1 ? 1 : 0;
  EXPECT_EQ(index.Later(child0, img, 0),
            OracleLater(g, dag, child0, img, 0));
  // All data edges are TC-matchable to their chain positions.
  for (size_t i = 0; i < k; ++i) {
    const TemporalEdge& ed = g.Edge(static_cast<EdgeId>(i));
    EXPECT_TRUE(index.CheckMatchable(static_cast<EdgeId>(i), ed, false) ||
                index.CheckMatchable(static_cast<EdgeId>(i), ed, true))
        << i;
  }
}

TEST(FilterEdgeCases, DuplicateTimestampsNeverSatisfyStrictOrder) {
  // Two adjacent data edges with identical timestamps cannot host a
  // 2-chain with e0 ≺ e1 (strict <), and the filter must know that.
  const QueryGraph q = ChainQuery(2);
  const QueryDag dag = QueryDag::BuildDagGreedy(q, 0);
  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  g.InsertEdge(0, 1, 5);
  g.InsertEdge(1, 2, 5);
  MaxMinIndex index(&g, &dag);
  const TemporalEdge& first = g.Edge(0);
  // Whatever the DAG orientation, the gate must reject matching e0 to the
  // ts-5 edge because no strictly-later continuation exists.
  EXPECT_FALSE(index.CheckMatchable(0, first, false) ||
               index.CheckMatchable(0, first, true));
}

TEST(FilterEdgeCases, DirectedDataRespectsOrientationInWeakEmbeddings) {
  QueryGraph q(/*directed=*/true);
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId e0 = q.AddEdge(0, 1);
  const EdgeId e1 = q.AddEdge(1, 2);
  ASSERT_TRUE(q.AddOrder(e0, e1).ok());
  const QueryDag dag = QueryDag::BuildDagGreedy(q, 0);

  TemporalGraph g(/*directed=*/true);
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  g.InsertEdge(0, 1, 1);
  // The continuation edge points INTO vertex 1 — wrong direction for e1.
  g.InsertEdge(2, 1, 5);
  MaxMinIndex index(&g, &dag);
  // Copy: InsertEdge below may grow the slot pool and invalidate
  // references returned by Edge().
  const TemporalEdge first = g.Edge(0);
  EXPECT_FALSE(index.CheckMatchable(e0, first, false));
  // Fixing the direction makes it matchable.
  g.InsertEdge(1, 2, 7);
  std::vector<UvPair> touched;
  index.OnEdgeInserted(g.Edge(2), &touched);
  EXPECT_TRUE(index.CheckMatchable(e0, first, false));
}

TEST(FilterEdgeCases, EdgeLabelsFilterWeakEmbeddings) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddVertex(0);
  const EdgeId e0 = q.AddEdge(0, 1, /*elabel=*/1);
  const EdgeId e1 = q.AddEdge(1, 2, /*elabel=*/2);
  ASSERT_TRUE(q.AddOrder(e0, e1).ok());
  const QueryDag dag = QueryDag::BuildDagGreedy(q, 0);

  TemporalGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  g.InsertEdge(0, 1, 1, /*label=*/1);
  g.InsertEdge(1, 2, 5, /*label=*/1);  // wrong label for e1
  MaxMinIndex index(&g, &dag);
  // Copy: InsertEdge below may grow the slot pool and invalidate
  // references returned by Edge().
  const TemporalEdge first = g.Edge(0);
  EXPECT_FALSE(index.CheckMatchable(e0, first, false) ||
               index.CheckMatchable(e0, first, true));
  g.InsertEdge(1, 2, 6, /*label=*/2);
  std::vector<UvPair> touched;
  index.OnEdgeInserted(g.Edge(2), &touched);
  EXPECT_TRUE(index.CheckMatchable(e0, first, false) ||
              index.CheckMatchable(e0, first, true));
}

TEST(FilterEdgeCases, MemoryAndEntryCountsGrow) {
  const QueryGraph q = ChainQuery(3);
  const QueryDag dag = QueryDag::BuildDagGreedy(q, 0);
  TemporalGraph g;
  for (int i = 0; i < 10; ++i) g.AddVertex(0);
  MaxMinIndex index(&g, &dag);
  EXPECT_EQ(index.NumEntries(), 0u);
  const size_t empty_bytes = index.EstimateMemoryBytes();
  for (Timestamp t = 1; t <= 9; ++t) {
    g.InsertEdge(static_cast<VertexId>(t - 1), static_cast<VertexId>(t), t);
    std::vector<UvPair> touched;
    index.OnEdgeInserted(g.Edge(static_cast<EdgeId>(t - 1)), &touched);
  }
  // Evaluate some gates to force entry materialization.
  for (EdgeId id = 0; id < 9; ++id) {
    (void)index.CheckMatchable(0, g.Edge(id), false);
  }
  EXPECT_GT(index.NumEntries(), 0u);
  EXPECT_GT(index.EstimateMemoryBytes(), empty_bytes);
}

}  // namespace
}  // namespace tcsm
