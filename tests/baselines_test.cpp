#include <gtest/gtest.h>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "core/stream_driver.h"
#include "testlib/running_example.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

TEST(PostFilterEngine, MatchesOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const Timestamp window : {5, 10, 100}) {
    SingleQueryContext<PostFilterEngine> run(q,
                                             testlib::RunningExampleSchema());
    testlib::CheckEngineAgainstOracle(ds, q, window, &run);
    if (HasFailure()) return;
  }
}

TEST(LocalEnumEngine, MatchesOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const Timestamp window : {5, 10, 100}) {
    SingleQueryContext<LocalEnumEngine> run(q,
                                            testlib::RunningExampleSchema());
    testlib::CheckEngineAgainstOracle(ds, q, window, &run);
    if (HasFailure()) return;
  }
}

TEST(TimingEngine, MatchesOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const Timestamp window : {5, 10, 100}) {
    SingleQueryContext<TimingEngine> run(q, testlib::RunningExampleSchema());
    testlib::CheckEngineAgainstOracle(ds, q, window, &run);
    if (HasFailure()) return;
  }
}

TEST(TimingEngine, MaterializesPartialEmbeddings) {
  const QueryGraph q = testlib::RunningExampleQuery();
  SingleQueryContext<TimingEngine> run(q, testlib::RunningExampleSchema());
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) run.OnEdgeArrival(e);
  // Materialized prefixes exist at every level (exponential-space design).
  EXPECT_GT(run.engine().NumRecords(), 16u);
  const size_t with_all = run.engine().NumRecords();
  // Expire sigma_1..sigma_4: records referencing them disappear.
  for (size_t i = 0; i < 4; ++i) run.OnEdgeExpiry(ds.edges[i]);
  EXPECT_LT(run.engine().NumRecords(), with_all);
}

TEST(TimingEngine, OverflowCapMarksIncomplete) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TimingConfig config;
  config.max_records = 8;  // absurdly small
  SingleQueryContext<TimingEngine> run(q, testlib::RunningExampleSchema(),
                                       config);
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) {
    run.OnEdgeArrival(e);
    if (run.overflowed()) break;
  }
  EXPECT_TRUE(run.overflowed());
}

TEST(TimingEngine, MemoryGrowsWithMaterialization) {
  const QueryGraph q = testlib::RunningExampleQuery();
  SingleQueryContext<TimingEngine> run(q, testlib::RunningExampleSchema());
  const size_t before = run.engine().EstimateMemoryBytes();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) run.OnEdgeArrival(e);
  EXPECT_GT(run.engine().EstimateMemoryBytes(), before);
}

TEST(Baselines, DensityInsensitiveBaselinesStillCorrect) {
  // A density-1 variant of the running-example query: the post-filter
  // engines do the same search but must report only ordered embeddings.
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(2);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(0, 2);
  ASSERT_TRUE(q.AddOrder(a, b).ok());
  ASSERT_TRUE(q.AddOrder(b, c).ok());

  TemporalDataset ds;
  ds.vertex_labels = {0, 1, 2, 1};
  auto add = [&](VertexId s, VertexId d, Timestamp t) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = s;
    e.dst = d;
    e.ts = t;
    ds.edges.push_back(e);
  };
  add(0, 1, 1);
  add(1, 2, 2);
  add(0, 2, 3);  // ordered triangle: one match
  add(0, 3, 4);
  add(3, 2, 5);  // second wedge, but c image (ts 3) now violates b < c

  const GraphSchema schema{false, ds.vertex_labels};
  {
    SingleQueryContext<PostFilterEngine> run(q, schema);
    testlib::CheckEngineAgainstOracle(ds, q, 100, &run);
  }
  {
    SingleQueryContext<LocalEnumEngine> run(q, schema);
    testlib::CheckEngineAgainstOracle(ds, q, 100, &run);
  }
  {
    SingleQueryContext<TimingEngine> run(q, schema);
    testlib::CheckEngineAgainstOracle(ds, q, 100, &run);
  }
}

TEST(Baselines, NamesAreStable) {
  const QueryGraph q = testlib::RunningExampleQuery();
  SharedStreamContext ctx(testlib::RunningExampleSchema());
  EXPECT_EQ(PostFilterEngine(q, ctx.graph()).name(), "SymBi-Post");
  EXPECT_EQ(LocalEnumEngine(q, ctx.graph()).name(), "LocalEnum-Post");
  EXPECT_EQ(TimingEngine(q, ctx.graph()).name(), "Timing");
}

}  // namespace
}  // namespace tcsm
