#include <gtest/gtest.h>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "core/stream_driver.h"
#include "testlib/running_example.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

TEST(PostFilterEngine, MatchesOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const Timestamp window : {5, 10, 100}) {
    PostFilterEngine engine(q, testlib::RunningExampleSchema());
    testlib::CheckEngineAgainstOracle(ds, q, window, &engine);
    if (HasFailure()) return;
  }
}

TEST(LocalEnumEngine, MatchesOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const Timestamp window : {5, 10, 100}) {
    LocalEnumEngine engine(q, testlib::RunningExampleSchema());
    testlib::CheckEngineAgainstOracle(ds, q, window, &engine);
    if (HasFailure()) return;
  }
}

TEST(TimingEngine, MatchesOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const Timestamp window : {5, 10, 100}) {
    TimingEngine engine(q, testlib::RunningExampleSchema());
    testlib::CheckEngineAgainstOracle(ds, q, window, &engine);
    if (HasFailure()) return;
  }
}

TEST(TimingEngine, MaterializesPartialEmbeddings) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TimingEngine engine(q, testlib::RunningExampleSchema());
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) engine.OnEdgeArrival(e);
  // Materialized prefixes exist at every level (exponential-space design).
  EXPECT_GT(engine.NumRecords(), 16u);
  const size_t with_all = engine.NumRecords();
  // Expire sigma_1..sigma_4: records referencing them disappear.
  for (size_t i = 0; i < 4; ++i) engine.OnEdgeExpiry(ds.edges[i]);
  EXPECT_LT(engine.NumRecords(), with_all);
}

TEST(TimingEngine, OverflowCapMarksIncomplete) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TimingConfig config;
  config.max_records = 8;  // absurdly small
  TimingEngine engine(q, testlib::RunningExampleSchema(), config);
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) {
    engine.OnEdgeArrival(e);
    if (engine.overflowed()) break;
  }
  EXPECT_TRUE(engine.overflowed());
}

TEST(TimingEngine, MemoryGrowsWithMaterialization) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TimingEngine engine(q, testlib::RunningExampleSchema());
  const size_t before = engine.EstimateMemoryBytes();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) engine.OnEdgeArrival(e);
  EXPECT_GT(engine.EstimateMemoryBytes(), before);
}

TEST(Baselines, DensityInsensitiveBaselinesStillCorrect) {
  // A density-1 variant of the running-example query: the post-filter
  // engines do the same search but must report only ordered embeddings.
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(2);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  const EdgeId c = q.AddEdge(0, 2);
  ASSERT_TRUE(q.AddOrder(a, b).ok());
  ASSERT_TRUE(q.AddOrder(b, c).ok());

  TemporalDataset ds;
  ds.vertex_labels = {0, 1, 2, 1};
  auto add = [&](VertexId s, VertexId d, Timestamp t) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = s;
    e.dst = d;
    e.ts = t;
    ds.edges.push_back(e);
  };
  add(0, 1, 1);
  add(1, 2, 2);
  add(0, 2, 3);  // ordered triangle: one match
  add(0, 3, 4);
  add(3, 2, 5);  // second wedge, but c image (ts 3) now violates b < c

  const GraphSchema schema{false, ds.vertex_labels};
  PostFilterEngine pf(q, schema);
  testlib::CheckEngineAgainstOracle(ds, q, 100, &pf);
  LocalEnumEngine le(q, schema);
  testlib::CheckEngineAgainstOracle(ds, q, 100, &le);
  TimingEngine tm(q, schema);
  testlib::CheckEngineAgainstOracle(ds, q, 100, &tm);
}

TEST(Baselines, NamesAreStable) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const GraphSchema schema = testlib::RunningExampleSchema();
  EXPECT_EQ(PostFilterEngine(q, schema).name(), "SymBi-Post");
  EXPECT_EQ(LocalEnumEngine(q, schema).name(), "LocalEnum-Post");
  EXPECT_EQ(TimingEngine(q, schema).name(), "Timing");
}

}  // namespace
}  // namespace tcsm
