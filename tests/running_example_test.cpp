// Guards the Figure 2 fixture (tests/testlib/running_example.h) against
// silent drift by re-deriving the paper's worked values from it:
//   * Example IV.2 — greedy DAG from root u1 has score 5 and topological
//     order u1, u3, u2, u4, u5.
//   * Example IV.3 — the four weak embeddings of q̂_u3 at v4 built from
//     eps4 -> sigma_13, eps5 in {sigma_9, sigma_10}, eps6 in {sigma_7,
//     sigma_14} have min-timestamps 7, 9, 7, 10, so T[u3, v4, eps2] = 10.
//   * Example IV.4 — before sigma_14 arrives, T[u3, v4, eps2] = 7.
//   * Example II.1 — the full graph holds exactly the 16 time-constrained
//     embeddings enumerated below, all through v1, v2, v4, v5, v7.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/embedding.h"
#include "dag/query_dag.h"
#include "filter/maxmin_index.h"
#include "testing/oracle.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

using testlib::kE1;
using testlib::kE2;
using testlib::kE3;
using testlib::kE4;
using testlib::kE5;
using testlib::kE6;
using testlib::kU1;
using testlib::kU2;
using testlib::kU3;
using testlib::kU4;
using testlib::kU5;
using testlib::kV1;
using testlib::kV2;
using testlib::kV4;
using testlib::kV5;
using testlib::kV7;

// Data edge ids: sigma_i has id i-1 and timestamp i.
constexpr EdgeId Sigma(int i) { return static_cast<EdgeId>(i - 1); }

TEST(RunningExample, FixtureShape) {
  const QueryGraph q = testlib::RunningExampleQuery();
  EXPECT_EQ(q.NumVertices(), 5u);
  EXPECT_EQ(q.NumEdges(), 6u);
  // The declared relation e1<e3, e1<e5, e2<e4, e2<e5, e2<e6 is already
  // transitively closed: no declared successor has successors of its own.
  EXPECT_EQ(q.NumOrderPairs(), 5u);
  EXPECT_EQ(q.After(kE1), Bit(kE3) | Bit(kE5));
  EXPECT_EQ(q.After(kE2), Bit(kE4) | Bit(kE5) | Bit(kE6));
  EXPECT_EQ(q.After(kE3), 0u);
  EXPECT_EQ(q.After(kE4), 0u);
  EXPECT_EQ(q.After(kE5), 0u);
  EXPECT_EQ(q.After(kE6), 0u);

  const TemporalGraph g = testlib::RunningExampleGraph(14);
  EXPECT_EQ(g.NumVertices(), 7u);
  for (int i = 1; i <= 14; ++i) {
    EXPECT_EQ(g.Edge(Sigma(i)).ts, static_cast<Timestamp>(i));
  }
}

// Example IV.2: score 5 with topological order u1, u3, u2, u4, u5 — and no
// other root does better, so BuildBestDag lands on the same score.
TEST(RunningExample, DagScoreIsFive) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, kU1);
  EXPECT_EQ(dag.score(), 5);
  EXPECT_EQ(dag.TopoOrder(), (std::vector<VertexId>{kU1, kU3, kU2, kU4, kU5}));
  EXPECT_EQ(QueryDag::BuildBestDag(q).score(), 5);
}

// Example IV.3: T[u3, v4, eps2] is the max over weak embeddings of q̂_u3 at
// v4 of the minimum timestamp among the images of eps2's later-related
// temporal descendants (eps4, eps5, eps6). The paper's four weak
// embeddings fix eps4 -> sigma_13 and vary eps5 / eps6; their minima are
// 7, 9, 7, 10 and the maximum, 10, is the stored index value.
TEST(RunningExample, ExampleIV3MinTimestamps) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, kU1);
  // The derivation only makes sense because eps5 is a temporal descendant
  // of eps2 (the fixture's order must contain e2 < e5).
  EXPECT_EQ(dag.LaterDescendants(kE2), Bit(kE4) | Bit(kE5) | Bit(kE6));

  TemporalGraph g = testlib::RunningExampleGraph(14);
  const Timestamp ts4 = g.Edge(Sigma(13)).ts;  // eps4 -> sigma_13
  std::vector<Timestamp> minima;
  for (const int s5 : {9, 10}) {      // eps5 -> sigma_9 | sigma_10
    for (const int s6 : {7, 14}) {    // eps6 -> sigma_7 | sigma_14
      const Timestamp m = std::min(
          {ts4, g.Edge(Sigma(s5)).ts, g.Edge(Sigma(s6)).ts});
      minima.push_back(m);
    }
  }
  EXPECT_EQ(minima, (std::vector<Timestamp>{7, 9, 7, 10}));
  const Timestamp max_min = *std::max_element(minima.begin(), minima.end());
  EXPECT_EQ(max_min, 10);

  MaxMinIndex index(&g, &dag);
  EXPECT_EQ(index.Later(kU3, kV4, kE2), max_min);
  EXPECT_EQ(OracleLater(g, dag, kU3, kV4, kE2), max_min);
}

// Example IV.4: without sigma_14, the best eps6 image is sigma_7, so every
// weak-embedding minimum is capped at 7.
TEST(RunningExample, ExampleIV4BeforeSigma14) {
  TemporalGraph g = testlib::RunningExampleGraph(13);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, kU1);
  MaxMinIndex index(&g, &dag);
  EXPECT_EQ(index.Later(kU3, kV4, kE2), 7);
  EXPECT_EQ(OracleLater(g, dag, kU3, kV4, kE2), 7);
}

Embedding MakeEmbedding(EdgeId e1, EdgeId e2, EdgeId e5, EdgeId e6) {
  Embedding m;
  m.vertices = {kV1, kV2, kV4, kV5, kV7};           // u1..u5
  m.edges = {e1, e2, Sigma(11), Sigma(13), e5, e6};  // eps1..eps6
  return m;
}

// Example II.1: on the full graph the vertex images are forced by labels
// (u1->v1, u2->v2, u3->v4, u4->v5, u5->v7), eps3 -> sigma_11 and
// eps4 -> sigma_13 are forced by the order, and the remaining choices
// yield exactly 16 time-constrained embeddings.
TEST(RunningExample, ExampleII1Embeddings) {
  const TemporalGraph g = testlib::RunningExampleGraph(14);
  const QueryGraph q = testlib::RunningExampleQuery();
  std::vector<Embedding> embs;
  EnumerateEmbeddings(g, q, /*check_order=*/true, &embs);

  std::unordered_set<Embedding, EmbeddingHash> expected;
  for (const int s1 : {1, 6}) {     // eps1 -> sigma_1 | sigma_6
    for (const int s5 : {9, 10}) {  // eps5 -> sigma_9 | sigma_10
      // e2 < e6 leaves (eps2, eps6) in {(4,5), (4,7), (4,14), (8,14)}.
      for (const auto& [s2, s6] :
           std::vector<std::pair<int, int>>{{4, 5}, {4, 7}, {4, 14}, {8, 14}}) {
        expected.insert(
            MakeEmbedding(Sigma(s1), Sigma(s2), Sigma(s5), Sigma(s6)));
      }
    }
  }
  ASSERT_EQ(expected.size(), 16u);

  const std::unordered_set<Embedding, EmbeddingHash> got(embs.begin(),
                                                         embs.end());
  EXPECT_EQ(got.size(), embs.size()) << "oracle produced duplicates";
  EXPECT_EQ(got, expected);
}

// The fixture's header argues the order cannot contain e4 < e5: that pair
// would wipe out all of Example II.1's embeddings (eps4 -> sigma_13 at
// time 13 can never precede eps5 -> sigma_9/sigma_10, and the e2 < e4
// chain rules out the earlier (v4, v5) edges).
TEST(RunningExample, OrderE4E5WouldKillAllEmbeddings) {
  const TemporalGraph g = testlib::RunningExampleGraph(14);
  QueryGraph q = testlib::RunningExampleQuery();
  ASSERT_TRUE(q.AddOrder(kE4, kE5).ok());
  std::vector<Embedding> embs;
  EnumerateEmbeddings(g, q, /*check_order=*/true, &embs);
  EXPECT_TRUE(embs.empty());
}

}  // namespace
}  // namespace tcsm
