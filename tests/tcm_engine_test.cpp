#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "testlib/running_example.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

using TcmRun = SingleQueryContext<TcmEngine>;

// Example II.2: when sigma_14 arrives (window 10), the embedding through
// sigma_6 occurs; the one through the expired sigma_1 must not.
TEST(TcmEngine, RunningExampleWindowedStream) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TcmRun run(q, testlib::RunningExampleSchema());
  CollectingSink sink;
  run.engine().set_sink(&sink);

  const TemporalDataset ds = testlib::RunningExampleDataset();
  StreamConfig config;
  config.window = 10;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);

  Embedding expect;
  expect.vertices = {testlib::kV1, testlib::kV2, testlib::kV4, testlib::kV5,
                     testlib::kV7};
  expect.edges = {5, 7, 10, 12, 9, 13};  // s6 s8 s11 s13 s10 s14
  bool occurred = false;
  bool expired = false;
  bool sigma1_variant = false;
  for (const auto& [emb, kind] : sink.matches()) {
    if (emb == expect) {
      occurred = occurred || kind == MatchKind::kOccurred;
      expired = expired || kind == MatchKind::kExpired;
    }
    if (emb.edges[0] == 0) sigma1_variant = true;  // eps1 -> sigma_1
  }
  EXPECT_TRUE(occurred);
  EXPECT_TRUE(expired);  // sigma_6 leaves the window at t = 16
  EXPECT_FALSE(sigma1_variant);
  EXPECT_EQ(res.occurred, res.expired);  // every match eventually expires
}

TEST(TcmEngine, MatchesOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const Timestamp window : {3, 5, 10, 100}) {
    TcmRun run(q, testlib::RunningExampleSchema());
    testlib::CheckEngineAgainstOracle(ds, q, window, &run);
    if (HasFailure()) return;
  }
}

TEST(TcmEngine, UnlimitedWindowFindsAllSnapshotEmbeddings) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TcmRun run(q, testlib::RunningExampleSchema());
  CountingSink sink;
  run.engine().set_sink(&sink);
  const TemporalDataset ds = testlib::RunningExampleDataset();
  StreamConfig config;
  config.window = 1000;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.occurred, 16u);  // oracle count on the full graph
  EXPECT_EQ(res.expired, 16u);
}

TEST(TcmEngine, CountingSinkMatchesCollectingSink) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  StreamConfig config;
  config.window = 10;

  TcmRun r1(q, testlib::RunningExampleSchema());
  CountingSink counting;
  r1.engine().set_sink(&counting);
  const StreamResult res1 = RunStream(ds, config, &r1);

  TcmRun r2(q, testlib::RunningExampleSchema());
  CollectingSink collecting;
  r2.engine().set_sink(&collecting);
  const StreamResult res2 = RunStream(ds, config, &r2);

  ASSERT_TRUE(res1.completed && res2.completed);
  EXPECT_EQ(counting.occurred() + counting.expired(),
            collecting.matches().size());
  EXPECT_EQ(res1.occurred, res2.occurred);
}

TEST(TcmEngine, DcsShrinksWithTcFilter) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();

  TcmRun filtered(q, testlib::RunningExampleSchema());
  TcmConfig no_filter_cfg;
  no_filter_cfg.use_tc_filter = false;
  TcmRun unfiltered(q, testlib::RunningExampleSchema(), no_filter_cfg);

  // Feed sigma_1..sigma_13 (no expirations) and compare DCS sizes.
  for (size_t i = 0; i < 13; ++i) {
    filtered.OnEdgeArrival(ds.edges[i]);
    unfiltered.OnEdgeArrival(ds.edges[i]);
  }
  EXPECT_LT(filtered.engine().dcs().stats().num_edges,
            unfiltered.engine().dcs().stats().num_edges);
  EXPECT_LE(filtered.engine().dcs().stats().num_d2_nodes,
            unfiltered.engine().dcs().stats().num_d2_nodes);
  // Specifically, (eps2, sigma_8) is not TC-matchable before sigma_14.
  EXPECT_FALSE(filtered.engine().dcs().Contains(testlib::kE2, 7, false));
  EXPECT_TRUE(unfiltered.engine().dcs().Contains(testlib::kE2, 7, false));
  // After sigma_14 it enters the DCS (Example IV.4).
  filtered.OnEdgeArrival(ds.edges[13]);
  EXPECT_TRUE(filtered.engine().dcs().Contains(testlib::kE2, 7, false));
  // (eps2, sigma_12) stays filtered.
  EXPECT_FALSE(filtered.engine().dcs().Contains(testlib::kE2, 11, false));
}

TEST(TcmEngine, TimeLimitMarksRunIncomplete) {
  // A pathological clique-ish stream with an unconstrained query explodes;
  // a ~zero time limit must abort the run and report completed = false.
  QueryGraph q;
  for (int i = 0; i < 5; ++i) q.AddVertex(0);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 4);
  q.AddEdge(0, 4);

  TemporalDataset ds;
  ds.vertex_labels.assign(12, 0);
  Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(i);
    e.src = static_cast<VertexId>(rng.NextBounded(12));
    e.dst = static_cast<VertexId>((e.src + 1 + rng.NextBounded(11)) % 12);
    e.ts = i + 1;
    ds.edges.push_back(e);
  }
  TcmRun run(q, GraphSchema{false, ds.vertex_labels});
  CountingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 400;
  config.time_limit_ms = 1;  // effectively immediate
  const StreamResult res = RunStream(ds, config, &run);
  EXPECT_FALSE(res.completed);
}

TEST(TcmEngine, DirectedRunningExampleVariant) {
  // Direct every data edge src->dst and the query accordingly; matches of
  // the undirected case that respect directions must survive.
  QueryGraph q(/*directed=*/true);
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(2);
  const EdgeId a = q.AddEdge(0, 1);  // u0 -> u1
  const EdgeId b = q.AddEdge(1, 2);  // u1 -> u2
  ASSERT_TRUE(q.AddOrder(a, b).ok());

  TemporalDataset ds;
  ds.directed = true;
  ds.vertex_labels = {0, 1, 2, 1};
  auto add = [&](VertexId s, VertexId d, Timestamp t) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = s;
    e.dst = d;
    e.ts = t;
    ds.edges.push_back(e);
  };
  add(0, 1, 1);  // u0->u1 candidate
  add(1, 2, 2);  // completes a match (1 < 2)
  add(2, 1, 3);  // wrong direction for b
  add(3, 0, 4);  // wrong direction for a (label 1 -> label 0)

  TcmRun run(q, GraphSchema{true, ds.vertex_labels});
  CollectingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 100;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.occurred, 1u);

  // Cross-check with the oracle-backed checker.
  TcmRun run2(q, GraphSchema{true, ds.vertex_labels});
  testlib::CheckEngineAgainstOracle(ds, q, 100, &run2);
}

TEST(TcmEngine, EdgeLabelsRestrictMatches) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(0);
  q.AddEdge(0, 1, /*elabel=*/5);

  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  for (int i = 0; i < 4; ++i) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(i);
    e.src = 0;
    e.dst = 1;
    e.ts = i + 1;
    e.label = (i % 2 == 0) ? 5 : 9;
    ds.edges.push_back(e);
  }
  TcmRun run(q, GraphSchema{false, ds.vertex_labels});
  CountingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 100;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);
  // Two label-5 edges, each matched in both orientations.
  EXPECT_EQ(res.occurred, 4u);
}

TEST(TcmEngine, MemoryEstimateTracksWindow) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TcmRun run(q, testlib::RunningExampleSchema());
  const size_t before = run.EstimateMemoryBytes();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) run.OnEdgeArrival(e);
  EXPECT_GT(run.EstimateMemoryBytes(), before);
}

}  // namespace
}  // namespace tcsm
