// Soundness of the three time-constrained pruning techniques (Section V):
// every combination of pruning flags must produce exactly the same set of
// occurred/expired embeddings.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"
#include "testlib/running_example.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

using testlib::EmbeddingSet;

EmbeddingSet RunAndCollect(const QueryGraph& q, const TemporalDataset& ds,
                           Timestamp window, const TcmConfig& config,
                           uint64_t* occurred_count) {
  SingleQueryContext<TcmEngine> run(
      q, GraphSchema{ds.directed, ds.vertex_labels}, config);
  CollectingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig stream;
  stream.window = window;
  const StreamResult res = RunStream(ds, stream, &run);
  EXPECT_TRUE(res.completed);
  *occurred_count = res.occurred;
  EmbeddingSet occurred;
  for (const auto& [emb, kind] : sink.matches()) {
    if (kind == MatchKind::kOccurred) {
      EXPECT_TRUE(occurred.insert(emb).second) << "duplicate occurred match";
    }
  }
  return occurred;
}

TEST(Pruning, AllFlagCombinationsAgreeOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  uint64_t base_count = 0;
  const EmbeddingSet base =
      RunAndCollect(q, ds, 10, TcmConfig{}, &base_count);
  EXPECT_EQ(base.size(), base_count);
  for (int bits = 0; bits < 8; ++bits) {
    TcmConfig config;
    config.prune_no_relation = bits & 1;
    config.prune_uniform = bits & 2;
    config.prune_failing_set = bits & 4;
    uint64_t count = 0;
    const EmbeddingSet got = RunAndCollect(q, ds, 10, config, &count);
    EXPECT_EQ(got, base) << "flag combo " << bits;
    EXPECT_EQ(count, base_count) << "flag combo " << bits;
  }
}

struct PruningCase {
  uint64_t seed;
  size_t query_edges;
  double density;
};

class PruningProperty : public ::testing::TestWithParam<PruningCase> {};

TEST_P(PruningProperty, FlagCombinationsAgreeOnSyntheticStreams) {
  const PruningCase param = GetParam();
  SyntheticSpec spec;
  spec.num_vertices = 24;
  spec.num_edges = 240;
  spec.num_vertex_labels = 3;
  spec.avg_parallel_edges = 2.5;
  spec.seed = param.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);

  QueryGenOptions opt;
  opt.num_edges = param.query_edges;
  opt.density = param.density;
  opt.window = 60;
  Rng rng(param.seed * 7 + 1);
  QueryGraph q;
  if (!GenerateQuery(ds, opt, &rng, &q)) {
    GTEST_SKIP() << "no query of requested size in this dataset";
  }

  uint64_t base_count = 0;
  const EmbeddingSet base =
      RunAndCollect(q, ds, 60, TcmConfig{}, &base_count);
  for (int bits = 0; bits < 8; ++bits) {
    TcmConfig config;
    config.prune_no_relation = bits & 1;
    config.prune_uniform = bits & 2;
    config.prune_failing_set = bits & 4;
    uint64_t count = 0;
    const EmbeddingSet got = RunAndCollect(q, ds, 60, config, &count);
    ASSERT_EQ(got, base) << "seed " << param.seed << " flags " << bits;
    ASSERT_EQ(count, base_count);
  }
  // The no-filter configuration must also agree (filtering is only an
  // optimization, never changes results).
  TcmConfig no_filter;
  no_filter.use_tc_filter = false;
  uint64_t count = 0;
  EXPECT_EQ(RunAndCollect(q, ds, 60, no_filter, &count), base);
  EXPECT_EQ(count, base_count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PruningProperty,
    ::testing::Values(PruningCase{21, 3, 0.0}, PruningCase{22, 3, 1.0},
                      PruningCase{23, 4, 0.5}, PruningCase{24, 4, 0.0},
                      PruningCase{25, 5, 0.5}, PruningCase{26, 5, 1.0},
                      PruningCase{27, 6, 0.25}, PruningCase{28, 6, 0.75}));

// Pruning technique 1 specifically: a query edge with no temporal
// relations over many parallel candidates must report one embedding per
// candidate, whether expanded explicitly or via multiplicity.
TEST(Pruning, FreeGroupExpansionCountsParallelEdges) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddVertex(2);
  const EdgeId a = q.AddEdge(0, 1);
  const EdgeId b = q.AddEdge(1, 2);
  ASSERT_TRUE(q.AddOrder(a, b).ok());
  q.AddVertex(3);
  q.AddEdge(2, 3);  // unconstrained edge -> free group over parallels

  TemporalDataset ds;
  ds.vertex_labels = {0, 1, 2, 3};
  auto add = [&](VertexId s, VertexId d, Timestamp t) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = s;
    e.dst = d;
    e.ts = t;
    ds.edges.push_back(e);
  };
  add(0, 1, 1);
  add(1, 2, 2);
  for (Timestamp t = 3; t <= 7; ++t) add(2, 3, t);  // 5 parallel edges

  StreamConfig stream;
  stream.window = 100;

  SingleQueryContext<TcmEngine> counting_run(
      q, GraphSchema{false, ds.vertex_labels});
  CountingSink counting;
  counting_run.engine().set_sink(&counting);
  const StreamResult r1 = RunStream(ds, stream, &counting_run);

  SingleQueryContext<TcmEngine> collecting_run(
      q, GraphSchema{false, ds.vertex_labels});
  CollectingSink collecting;
  collecting_run.engine().set_sink(&collecting);
  const StreamResult r2 = RunStream(ds, stream, &collecting_run);

  ASSERT_TRUE(r1.completed && r2.completed);
  EXPECT_EQ(r1.occurred, 5u);
  EXPECT_EQ(r2.occurred, 5u);
  // All five expanded embeddings are distinct.
  EmbeddingSet distinct;
  for (const auto& [emb, kind] : collecting.matches()) {
    if (kind == MatchKind::kOccurred) distinct.insert(emb);
  }
  EXPECT_EQ(distinct.size(), 5u);
}

// Search-node counters: pruning must never visit more nodes than the
// unpruned search on the same stream.
TEST(Pruning, PrunedSearchVisitsNoMoreNodes) {
  SyntheticSpec spec;
  spec.num_vertices = 20;
  spec.num_edges = 300;
  spec.num_vertex_labels = 2;
  spec.avg_parallel_edges = 3.0;
  spec.seed = 99;
  const TemporalDataset ds = GenerateSynthetic(spec);
  QueryGenOptions opt;
  opt.num_edges = 5;
  opt.density = 0.75;
  opt.window = 80;
  Rng rng(5);
  QueryGraph q;
  if (!GenerateQuery(ds, opt, &rng, &q)) GTEST_SKIP();

  StreamConfig stream;
  stream.window = 80;
  SingleQueryContext<TcmEngine> pruned(q,
                                       GraphSchema{false, ds.vertex_labels});
  CountingSink s1;
  pruned.engine().set_sink(&s1);
  RunStream(ds, stream, &pruned);

  TcmConfig off;
  off.prune_no_relation = off.prune_uniform = off.prune_failing_set = false;
  SingleQueryContext<TcmEngine> unpruned(
      q, GraphSchema{false, ds.vertex_labels}, off);
  CountingSink s2;
  unpruned.engine().set_sink(&s2);
  RunStream(ds, stream, &unpruned);

  EXPECT_LE(pruned.engine().counters().search_nodes,
            unpruned.engine().counters().search_nodes);
  EXPECT_EQ(s1.occurred(), s2.occurred());
  EXPECT_EQ(s1.expired(), s2.expired());
}

}  // namespace
}  // namespace tcsm
