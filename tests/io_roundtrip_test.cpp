// Round-trip guarantee of the io/ subsystem (DESIGN.md §8): exporting a
// stream to `.tel` and replaying it off the file must produce a match
// stream byte-identical to driving the same events from memory — per
// query and globally, serial and sharded — over the whole fuzz-scenario
// catalogue. Also pins the checked-in Figure 2 files (tests/data/) to the
// in-tree running-example fixtures so the documented worked example can
// never drift from the code.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "io/replay.h"
#include "io/stream_reader.h"
#include "io/stream_writer.h"
#include "query/query_io.h"
#include "querygen/query_generator.h"
#include "shard/sharded_multi_engine.h"
#include "testlib/fuzz_scenarios.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

using testlib::DefaultFuzzScenarios;
using testlib::FuzzScenario;

using MatchStream = std::vector<std::pair<Embedding, MatchKind>>;

struct TaggedStreams : MultiMatchSink {
  explicit TaggedStreams(size_t n) : streams(n) {}
  std::vector<MatchStream> streams;
  void OnMatch(size_t query_index, const Embedding& embedding,
               MatchKind kind, uint64_t multiplicity) override {
    ASSERT_LT(query_index, streams.size());
    for (uint64_t i = 0; i < multiplicity; ++i) {
      streams[query_index].emplace_back(embedding, kind);
    }
  }
};

std::string ScenarioName(const ::testing::TestParamInfo<FuzzScenario>& info) {
  return info.param.name;
}

class IoRoundTrip : public ::testing::TestWithParam<FuzzScenario> {
 protected:
  void SetUp() override {
    const FuzzScenario& sc = GetParam();
    dataset_ = GenerateSynthetic(sc.spec);
    ASSERT_GT(dataset_.NumEdges(), 0u);
    QueryGraph primary;
    Rng rng(sc.seed ^ 0x9e3779b97f4a7c15ull);
    ASSERT_TRUE(GenerateQuery(dataset_, sc.query, &rng, &primary));
    queries_.push_back(primary);
    QueryGraph variant;
    Rng vrng(sc.seed ^ 0x517cc1b727220a95ull);
    queries_.push_back(GenerateQuery(dataset_, sc.query, &vrng, &variant)
                           ? variant
                           : primary);
    schema_ = GraphSchema{dataset_.directed, dataset_.vertex_labels};
  }

  /// In-memory reference: serial MultiQueryEngine over the dataset.
  void RunInMemory(TaggedStreams* tagged, uint64_t* total) {
    MultiQueryEngine engine(queries_, schema_);
    engine.set_multi_sink(tagged);
    StreamConfig config;
    config.window = GetParam().window;
    const StreamResult res = RunStream(dataset_, config, &engine);
    ASSERT_TRUE(res.completed);
    *total = res.occurred + res.expired;
  }

  /// File-driven run: parse `tel` and replay it through a fresh engine
  /// fan-out at `threads`, pulling the window from the file header.
  void RunFromTel(const std::string& tel, size_t threads,
                  TaggedStreams* tagged, uint64_t* total) {
    std::istringstream in(tel);
    StreamReader reader(in, GetParam().name + ".tel");
    ASSERT_TRUE(reader.Init().ok());
    ASSERT_TRUE(reader.has_vertex_universe());
    // The file must reconstruct the exact schema the engines bind to.
    const GraphSchema file_schema = reader.schema();
    ASSERT_EQ(file_schema.directed, schema_.directed);
    ASSERT_EQ(file_schema.vertex_labels, schema_.vertex_labels);
    MultiQueryEngine engine(queries_, file_schema, TcmConfig{}, threads);
    engine.set_multi_sink(tagged);
    auto res = ReplayStream(&reader, ReplayOptions{}, &engine);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_TRUE(res.value().completed);
    EXPECT_EQ(res.value().num_threads, threads);
    *total = res.value().occurred + res.value().expired;
  }

  TemporalDataset dataset_;
  std::vector<QueryGraph> queries_;
  GraphSchema schema_;
};

// Export -> parse restores the dataset exactly: edge list (with ids),
// vertex labels, directedness, and the recorded window.
TEST_P(IoRoundTrip, DatasetSurvivesExportParse) {
  TelWriteOptions opts;
  opts.window = GetParam().window;
  std::ostringstream out;
  ASSERT_TRUE(WriteTel(dataset_, opts, out).ok());

  std::istringstream in(out.str());
  TelHeader header;
  auto parsed = ReadTelDataset(in, "roundtrip.tel", &header);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TemporalDataset& ds = parsed.value();
  EXPECT_EQ(header.window, GetParam().window);
  EXPECT_EQ(ds.directed, dataset_.directed);
  EXPECT_EQ(ds.vertex_labels, dataset_.vertex_labels);
  ASSERT_EQ(ds.NumEdges(), dataset_.NumEdges());
  for (size_t i = 0; i < ds.edges.size(); ++i) {
    EXPECT_EQ(ds.edges[i].id, dataset_.edges[i].id);
    EXPECT_EQ(ds.edges[i].src, dataset_.edges[i].src);
    EXPECT_EQ(ds.edges[i].dst, dataset_.edges[i].dst);
    EXPECT_EQ(ds.edges[i].ts, dataset_.edges[i].ts);
    EXPECT_EQ(ds.edges[i].label, dataset_.edges[i].label);
  }
}

// The acceptance bar of the io/ subsystem: file replay is
// match-stream-identical to in-memory replay, per query and globally, at
// 1 and 4 threads.
TEST_P(IoRoundTrip, FileReplayMatchesInMemory) {
  TaggedStreams serial(queries_.size());
  uint64_t serial_total = 0;
  RunInMemory(&serial, &serial_total);
  if (HasFailure()) return;

  TelWriteOptions opts;
  opts.window = GetParam().window;
  std::ostringstream out;
  ASSERT_TRUE(WriteTel(dataset_, opts, out).ok());

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    TaggedStreams replayed(queries_.size());
    uint64_t replay_total = 0;
    RunFromTel(out.str(), threads, &replayed, &replay_total);
    if (HasFailure()) return;
    EXPECT_EQ(replay_total, serial_total);
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      EXPECT_EQ(replayed.streams[qi], serial.streams[qi])
          << "per-query stream of query " << qi
          << " diverged from the in-memory run";
    }
  }
}

// An explicit-expiry export materializes the event schedule as x records;
// replaying it (no window parameter at all) must reproduce the same match
// stream — the self-contained form fuzz failures are shared in.
TEST_P(IoRoundTrip, ExplicitExpiryReplayMatches) {
  TaggedStreams serial(queries_.size());
  uint64_t serial_total = 0;
  RunInMemory(&serial, &serial_total);
  if (HasFailure()) return;

  TelWriteOptions opts;
  opts.window = GetParam().window;
  opts.explicit_expiry = true;
  std::ostringstream out;
  ASSERT_TRUE(WriteTel(dataset_, opts, out).ok());

  TaggedStreams replayed(queries_.size());
  uint64_t replay_total = 0;
  RunFromTel(out.str(), 1, &replayed, &replay_total);
  if (HasFailure()) return;
  EXPECT_EQ(replay_total, serial_total);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    EXPECT_EQ(replayed.streams[qi], serial.streams[qi]);
  }
}

// The binary v2 framing carries the same guarantee: a binary export —
// either block encoding, including multi-block framing — replays
// match-stream-identical to the in-memory run (and so, transitively, to
// the text replay above) at 1 and 4 threads.
TEST_P(IoRoundTrip, BinaryReplayMatchesInMemory) {
  TaggedStreams serial(queries_.size());
  uint64_t serial_total = 0;
  RunInMemory(&serial, &serial_total);
  if (HasFailure()) return;

  for (const bool varint : {false, true}) {
    TelWriteOptions opts;
    opts.window = GetParam().window;
    opts.binary = true;
    opts.varint_timestamps = varint;
    opts.block_records = 7;  // small blocks: the framing is exercised
    std::ostringstream out;
    ASSERT_TRUE(WriteTel(dataset_, opts, out).ok());

    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(std::string(varint ? "varint" : "fixed") + " threads " +
                   std::to_string(threads));
      TaggedStreams replayed(queries_.size());
      uint64_t replay_total = 0;
      RunFromTel(out.str(), threads, &replayed, &replay_total);
      if (HasFailure()) return;
      EXPECT_EQ(replay_total, serial_total);
      for (size_t qi = 0; qi < queries_.size(); ++qi) {
        EXPECT_EQ(replayed.streams[qi], serial.streams[qi])
            << "per-query stream of query " << qi
            << " diverged from the in-memory run";
      }
    }
  }
}

// Binary replay through the vertex-partitioned sharded fan-out is also
// identical to the serial in-memory run.
TEST_P(IoRoundTrip, ShardedBinaryReplayMatchesSerial) {
  TaggedStreams serial(queries_.size());
  uint64_t serial_total = 0;
  RunInMemory(&serial, &serial_total);
  if (HasFailure()) return;

  TelWriteOptions opts;
  opts.window = GetParam().window;
  opts.binary = true;
  opts.block_records = 7;
  std::ostringstream out;
  ASSERT_TRUE(WriteTel(dataset_, opts, out).ok());

  for (const size_t shards : {size_t{2}, size_t{4}}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                   std::to_string(threads));
      std::istringstream in(out.str());
      StreamReader reader(in, GetParam().name + ".tel");
      ASSERT_TRUE(reader.Init().ok());
      TaggedStreams sharded(queries_.size());
      ShardedMultiQueryEngine engine(queries_, reader.schema(), shards,
                                     TcmConfig{}, threads);
      engine.set_multi_sink(&sharded);
      auto res = ReplayStream(&reader, ReplayOptions{}, &engine);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      ASSERT_TRUE(res.value().completed);
      EXPECT_EQ(res.value().num_shards, shards);
      EXPECT_EQ(res.value().occurred + res.value().expired, serial_total);
      for (size_t qi = 0; qi < queries_.size(); ++qi) {
        EXPECT_EQ(sharded.streams[qi], serial.streams[qi])
            << "per-query stream of query " << qi
            << " diverged from serial execution";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalogue, IoRoundTrip,
                         ::testing::ValuesIn(DefaultFuzzScenarios()),
                         ScenarioName);

// --seek-ts at a window-complete block boundary (a >= window timestamp
// gap aligned to the block framing, so no pre-seek edge is still live and
// no match spans the cut) must produce exactly the suffix of the full
// replay's match stream: same embeddings, same EdgeIds, same order. This
// is the replayable-from-the-middle guarantee the index footer plus
// first_arrival_index exist for.
TEST(BinarySeek, SeekReplayIsFullReplaySuffix) {
  // Two copies of the running example (window 10), the second shifted far
  // past the first's last expiry and starting its own block.
  TemporalDataset ds = testlib::RunningExampleDataset();
  const size_t n = ds.NumEdges();
  ASSERT_GT(n, 0u);
  const Timestamp shift = ds.edges.back().ts + 10 + 25;
  for (size_t i = 0; i < n; ++i) {
    TemporalEdge e = ds.edges[i];
    e.id = static_cast<EdgeId>(n + i);
    e.ts += shift;
    ds.edges.push_back(e);
  }

  TelWriteOptions opts;
  opts.binary = true;
  opts.window = 10;
  opts.block_records = n;  // the gap lands exactly on a block boundary
  std::ostringstream out;
  ASSERT_TRUE(WriteTel(ds, opts, out).ok());
  const std::string tel = out.str();

  const std::vector<QueryGraph> queries{testlib::RunningExampleQuery()};
  const auto replay = [&](bool seek) {
    std::istringstream in(tel);
    StreamReader reader(in, "seek.tel");
    EXPECT_TRUE(reader.Init().ok());
    if (seek) {
      const Status s = reader.SeekToTimestamp(shift);
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(reader.first_arrival_index(), n);
    }
    auto tagged = std::make_unique<TaggedStreams>(1);
    MultiQueryEngine engine(queries, reader.schema());
    engine.set_multi_sink(tagged.get());
    auto res = ReplayStream(&reader, ReplayOptions{}, &engine);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return std::move(tagged->streams[0]);
  };

  const MatchStream full = replay(/*seek=*/false);
  const MatchStream suffix = replay(/*seek=*/true);
  ASSERT_FALSE(full.empty());       // the running example has matches
  ASSERT_FALSE(suffix.empty());
  ASSERT_LT(suffix.size(), full.size());
  EXPECT_EQ(MatchStream(full.end() - suffix.size(), full.end()), suffix)
      << "seeked replay is not a suffix of the full replay";
}

// The Figure 2 worked example checked into tests/data/ must equal the
// in-tree fixtures record for record...
TEST(RunningExampleFiles, MatchesFixtures) {
  TelHeader header;
  auto ds = LoadTelFile(std::string(TCSM_TEST_DATA_DIR) +
                            "/running_example.tel",
                        &header);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const TemporalDataset expect = testlib::RunningExampleDataset();
  EXPECT_EQ(header.window, 10);
  EXPECT_EQ(ds.value().directed, expect.directed);
  EXPECT_EQ(ds.value().vertex_labels, expect.vertex_labels);
  ASSERT_EQ(ds.value().NumEdges(), expect.NumEdges());
  for (size_t i = 0; i < expect.edges.size(); ++i) {
    EXPECT_EQ(ds.value().edges[i].src, expect.edges[i].src);
    EXPECT_EQ(ds.value().edges[i].dst, expect.edges[i].dst);
    EXPECT_EQ(ds.value().edges[i].ts, expect.edges[i].ts);
  }

  auto q = LoadQueryFile(std::string(TCSM_TEST_DATA_DIR) +
                         "/running_example.tq");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const QueryGraph expect_q = testlib::RunningExampleQuery();
  EXPECT_EQ(q.value().window_hint(), 10);
  ASSERT_EQ(q.value().NumVertices(), expect_q.NumVertices());
  ASSERT_EQ(q.value().NumEdges(), expect_q.NumEdges());
  for (VertexId v = 0; v < expect_q.NumVertices(); ++v) {
    EXPECT_EQ(q.value().VertexLabel(v), expect_q.VertexLabel(v));
  }
  for (EdgeId e = 0; e < expect_q.NumEdges(); ++e) {
    EXPECT_EQ(q.value().Edge(e).u, expect_q.Edge(e).u);
    EXPECT_EQ(q.value().Edge(e).v, expect_q.Edge(e).v);
    EXPECT_EQ(q.value().Before(e), expect_q.Before(e));
    EXPECT_EQ(q.value().After(e), expect_q.After(e));
  }
}

// ...and replaying the file pair end to end must equal the in-memory run
// of the fixtures (this is the exact flow docs/FILE_FORMATS.md walks
// through).
TEST(RunningExampleFiles, FileReplayMatchesInMemory) {
  const TemporalDataset ds = testlib::RunningExampleDataset();
  const QueryGraph query = testlib::RunningExampleQuery();

  SingleQueryContext<TcmEngine> memory_run(query,
                                           testlib::RunningExampleSchema());
  CollectingSink memory_sink;
  memory_run.engine().set_sink(&memory_sink);
  StreamConfig config;
  config.window = 10;
  const StreamResult mem = RunStream(ds, config, &memory_run);
  ASSERT_TRUE(mem.completed);

  std::ifstream in(std::string(TCSM_TEST_DATA_DIR) +
                   "/running_example.tel");
  ASSERT_TRUE(in.is_open());
  StreamReader reader(in, "running_example.tel");
  ASSERT_TRUE(reader.Init().ok());
  auto file_q = LoadQueryFile(std::string(TCSM_TEST_DATA_DIR) +
                              "/running_example.tq");
  ASSERT_TRUE(file_q.ok());
  SingleQueryContext<TcmEngine> file_run(file_q.value(), reader.schema());
  CollectingSink file_sink;
  file_run.engine().set_sink(&file_sink);
  ReplayOptions opts;
  opts.window = file_q.value().window_hint();
  auto res = ReplayStream(&reader, opts, &file_run);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_TRUE(res.value().completed);

  EXPECT_EQ(file_sink.matches(), memory_sink.matches());
  EXPECT_EQ(res.value().occurred, mem.occurred);
  EXPECT_EQ(res.value().expired, mem.expired);
  EXPECT_EQ(res.value().events, mem.events);
}

}  // namespace
}  // namespace tcsm
