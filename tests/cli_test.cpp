#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/commands.h"

namespace tcsm::cli {
namespace {

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Cli, GenDataStatsRoundTrip) {
  const std::string edges = TmpPath("cli_data.edges");
  std::ostringstream out;
  ASSERT_EQ(CmdGenData({"random", edges, "--vertices=50", "--edges=400",
                        "--vlabels=3", "--seed=5"},
                       out),
            0)
      << out.str();
  EXPECT_NE(out.str().find("wrote 400 edges"), std::string::npos);

  std::ostringstream stats;
  ASSERT_EQ(CmdStats({edges, "--labels=" + edges + ".labels"}, stats), 0);
  EXPECT_NE(stats.str().find("400"), std::string::npos);
  std::remove(edges.c_str());
  std::remove((edges + ".labels").c_str());
}

TEST(Cli, GenDataPresets) {
  const std::string edges = TmpPath("cli_preset.edges");
  std::ostringstream out;
  ASSERT_EQ(CmdGenData({"lsbench", edges, "--scale=0.05"}, out), 0);
  std::ostringstream bad;
  EXPECT_NE(CmdGenData({"not-a-preset", edges}, bad), 0);
  EXPECT_NE(bad.str().find("unknown preset"), std::string::npos);
  std::remove(edges.c_str());
  std::remove((edges + ".labels").c_str());
}

TEST(Cli, FullPipelineRunAndSnapshot) {
  const std::string edges = TmpPath("cli_pipe.edges");
  const std::string query = TmpPath("cli_pipe.query");
  std::ostringstream out;
  ASSERT_EQ(CmdGenData({"random", edges, "--vertices=40", "--edges=500",
                        "--vlabels=2", "--parallel=2", "--seed=9"},
                       out),
            0);
  const std::string labels = "--labels=" + edges + ".labels";
  std::ostringstream qout;
  ASSERT_EQ(CmdGenQuery({edges, query, "--size=3", "--density=1",
                         "--window=200", "--seed=4", labels},
                        qout),
            0)
      << qout.str();

  std::ostringstream run;
  ASSERT_EQ(CmdRun({edges, query, "--window=200", labels}, run), 0)
      << run.str();
  EXPECT_NE(run.str().find("engine=TCM"), std::string::npos);
  EXPECT_NE(run.str().find("threads=1"), std::string::npos);
  EXPECT_NE(run.str().find("shards=1"), std::string::npos);
  EXPECT_NE(run.str().find("occurred="), std::string::npos);

  // --threads routes through the parallel context, is echoed in the run
  // header (with a note that a single-engine run cannot go faster), and
  // changes nothing about the reported match counts.
  std::ostringstream par;
  ASSERT_EQ(CmdRun({edges, query, "--window=200", labels, "--threads=4"},
                   par),
            0)
      << par.str();
  EXPECT_NE(par.str().find("threads=4"), std::string::npos);
  EXPECT_NE(par.str().find("note: run attaches a single engine"),
            std::string::npos);
  const auto counts = [](const std::string& s) {
    const size_t begin = s.find("occurred=");
    return s.substr(begin, s.find(" elapsed_ms=") - begin);
  };
  EXPECT_EQ(counts(par.str()), counts(run.str()));

  // --shards splits the data graph across vertex partitions. The header
  // records the shard count (and the one-lane-per-shard default thread
  // count), and the match counts are identical to the serial run — the
  // sharded context's determinism guarantee.
  std::ostringstream shr;
  ASSERT_EQ(
      CmdRun({edges, query, "--window=200", labels, "--shards=4"}, shr), 0)
      << shr.str();
  EXPECT_NE(shr.str().find("shards=4"), std::string::npos);
  EXPECT_NE(shr.str().find("threads=4"), std::string::npos);
  EXPECT_EQ(counts(shr.str()), counts(run.str()));

  // Only the TCM engine is instantiated over the sharded graph view;
  // asking for a sharded baseline is a named error, not a silent serial
  // fallback.
  std::ostringstream shbad;
  EXPECT_EQ(CmdRun({edges, query, "--window=200", labels, "--shards=2",
                    "--engine=timing"},
                   shbad),
            1);
  EXPECT_NE(shbad.str().find("requires --engine=tcm"), std::string::npos);

  // All engines accept the same pipeline.
  for (const std::string engine : {"timing", "symbi", "local"}) {
    std::ostringstream eout;
    ASSERT_EQ(CmdRun({edges, query, "--window=200", labels,
                      "--engine=" + engine},
                     eout),
              0)
        << engine << ": " << eout.str();
  }

  std::ostringstream snap;
  ASSERT_EQ(CmdSnapshot({edges, query, labels}, snap), 0);
  EXPECT_NE(snap.str().find("matches"), std::string::npos);

  std::remove(edges.c_str());
  std::remove((edges + ".labels").c_str());
  std::remove(query.c_str());
}

TEST(Cli, RunPrintsMatches) {
  const std::string edges = TmpPath("cli_print.edges");
  const std::string query = TmpPath("cli_print.query");
  std::ostringstream out;
  ASSERT_EQ(CmdGenData({"random", edges, "--vertices=10", "--edges=60",
                        "--seed=3"},
                       out),
            0);
  const std::string labels = "--labels=" + edges + ".labels";
  ASSERT_EQ(CmdGenQuery({edges, query, "--size=2", "--density=0",
                         "--window=30", labels},
                        out),
            0);
  std::ostringstream run;
  ASSERT_EQ(CmdRun({edges, query, "--window=30", labels, "--print"}, run),
            0);
  EXPECT_NE(run.str().find("u0:"), std::string::npos);
  std::remove(edges.c_str());
  std::remove((edges + ".labels").c_str());
  std::remove(query.c_str());
}

TEST(Cli, GenTelAndReplay) {
  const std::string tel = TmpPath("cli_gen.tel");
  const std::string query = TmpPath("cli_gen.tq");
  std::ostringstream out;
  ASSERT_EQ(CmdGen({"random", tel, "--vertices=40", "--edges=500",
                    "--vlabels=2", "--parallel=2", "--seed=9",
                    "--window=200"},
                   out),
            0)
      << out.str();
  EXPECT_NE(out.str().find("wrote 500 edges"), std::string::npos);

  // .tel files are sniffed by every dataset-consuming subcommand:
  // stats, gen-query (which records the window in the query file)...
  std::ostringstream stats;
  ASSERT_EQ(CmdStats({tel}, stats), 0) << stats.str();
  EXPECT_NE(stats.str().find("500"), std::string::npos);
  std::ostringstream qout;
  ASSERT_EQ(CmdGenQuery({tel, query, "--size=3", "--density=1",
                         "--seed=4", "--window=200"},
                        qout),
            0)
      << qout.str();

  // ...and run, which takes its window from the query's w record here.
  std::ostringstream run;
  ASSERT_EQ(CmdRun({tel, query, "--print"}, run), 0) << run.str();

  // replay must report the same matches in the same order as run.
  std::ostringstream replay;
  ASSERT_EQ(CmdReplay({tel, query, "--print"}, replay), 0) << replay.str();
  const auto matches = [](const std::string& s) {
    std::string lines;
    std::istringstream in(s);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && (line[0] == '+' || line[0] == '-')) {
        lines += line + "\n";
      }
    }
    return lines;
  };
  EXPECT_EQ(matches(replay.str()), matches(run.str()));
  EXPECT_NE(matches(run.str()), "");

  // A sharded replay reports the same matches in the same order — the
  // byte-identical stream contract at the CLI surface.
  std::ostringstream shreplay;
  ASSERT_EQ(CmdReplay({tel, query, "--print", "--shards=2"}, shreplay), 0)
      << shreplay.str();
  EXPECT_NE(shreplay.str().find("shards=2"), std::string::npos);
  EXPECT_EQ(matches(shreplay.str()), matches(run.str()));

  // Several query files fan out across threads; summary is per query.
  std::ostringstream multi;
  ASSERT_EQ(CmdReplay({tel, query, query, "--threads=2"}, multi), 0)
      << multi.str();
  EXPECT_NE(multi.str().find("threads=2"), std::string::npos);
  EXPECT_NE(multi.str().find("q1"), std::string::npos);

  // --json emits one machine-readable line — and stays pure JSON even
  // with flags that otherwise print advisory lines first.
  std::ostringstream json;
  ASSERT_EQ(CmdReplay({tel, query, "--json"}, json), 0) << json.str();
  EXPECT_EQ(json.str().rfind("{\"stream\":", 0), 0u);
  EXPECT_NE(json.str().find("\"completed\":true"), std::string::npos);
  std::ostringstream json2;
  ASSERT_EQ(CmdReplay({tel, query, "--json", "--canonical", "--threads=4"},
                      json2),
            0);
  EXPECT_EQ(json2.str().rfind("{\"stream\":", 0), 0u) << json2.str();
  EXPECT_NE(json2.str().find("\"shards\":1"), std::string::npos);
  std::ostringstream json3;
  ASSERT_EQ(CmdReplay({tel, query, query, "--json", "--shards=2"}, json3),
            0);
  EXPECT_EQ(json3.str().rfind("{\"stream\":", 0), 0u) << json3.str();
  EXPECT_NE(json3.str().find("\"shards\":2"), std::string::npos);

  // --max-events caps the arrivals but still expires what arrived.
  std::ostringstream capped;
  ASSERT_EQ(CmdReplay({tel, query, "--max-events=100"}, capped), 0);
  EXPECT_NE(capped.str().find("events=200"), std::string::npos)
      << capped.str();

  // --canonical works without --print (as in run): group size reported.
  std::ostringstream canon;
  ASSERT_EQ(CmdReplay({tel, query, "--canonical"}, canon), 0);
  EXPECT_NE(canon.str().find("automorphism group size"), std::string::npos);

  // Query files recording different windows must not be silently run at
  // the first file's window.
  const std::string query2 = TmpPath("cli_gen2.tq");
  ASSERT_EQ(CmdGenQuery({tel, query2, "--size=3", "--density=1",
                         "--seed=4", "--window=150"},
                        out),
            0);
  std::ostringstream conflict;
  EXPECT_EQ(CmdReplay({tel, query, query2}, conflict), 1);
  EXPECT_NE(conflict.str().find("disagree"), std::string::npos);
  std::ostringstream forced;
  EXPECT_EQ(CmdReplay({tel, query, query2, "--window=200"}, forced), 0);

  std::remove(tel.c_str());
  std::remove(query.c_str());
  std::remove(query2.c_str());
}

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string MatchLines(const std::string& s) {
  std::string lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && (line[0] == '+' || line[0] == '-')) {
      lines += line + "\n";
    }
  }
  return lines;
}

TEST(Cli, ConvertAndBinaryReplay) {
  const std::string text_tel = TmpPath("cli_cv.tel");
  const std::string bin_tel = TmpPath("cli_cv_bin.tel");
  const std::string cv_bin = TmpPath("cli_cv_cv.tel");
  const std::string cv_text = TmpPath("cli_cv_back.tel");
  const std::string query = TmpPath("cli_cv.tq");
  const Args gen_common = {"random", "--vertices=30", "--edges=200",
                           "--vlabels=2", "--seed=11", "--window=60"};
  std::ostringstream out;
  Args gen_text = gen_common;
  gen_text.insert(gen_text.begin() + 1, text_tel);
  ASSERT_EQ(CmdGen(gen_text, out), 0) << out.str();
  Args gen_bin = gen_common;
  gen_bin.insert(gen_bin.begin() + 1, bin_tel);
  gen_bin.push_back("--format=binary");
  ASSERT_EQ(CmdGen(gen_bin, out), 0) << out.str();
  ASSERT_EQ(CmdGenQuery({text_tel, query, "--size=3", "--density=1",
                         "--seed=4", "--window=60"},
                        out),
            0)
      << out.str();

  // convert defaults to the opposite framing; text -> binary must be
  // byte-identical to generating binary directly.
  std::ostringstream cv1;
  ASSERT_EQ(CmdConvert({text_tel, cv_bin}, cv1), 0) << cv1.str();
  EXPECT_NE(cv1.str().find("converted 200 records"), std::string::npos);
  EXPECT_NE(cv1.str().find("(text -> binary)"), std::string::npos);
  EXPECT_EQ(Slurp(cv_bin), Slurp(bin_tel));

  // ...and binary -> text must restore the original file exactly.
  std::ostringstream cv2;
  ASSERT_EQ(CmdConvert({cv_bin, cv_text}, cv2), 0) << cv2.str();
  EXPECT_NE(cv2.str().find("(binary -> text)"), std::string::npos);
  EXPECT_EQ(Slurp(cv_text), Slurp(text_tel));

  // The replayed match stream is framing-independent.
  std::ostringstream text_replay, bin_replay;
  ASSERT_EQ(CmdReplay({text_tel, query, "--print"}, text_replay), 0);
  ASSERT_EQ(CmdReplay({bin_tel, query, "--print"}, bin_replay), 0);
  EXPECT_NE(MatchLines(text_replay.str()), "");
  EXPECT_EQ(MatchLines(bin_replay.str()), MatchLines(text_replay.str()));

  // Flag validation.
  std::ostringstream e1;
  EXPECT_EQ(CmdConvert({text_tel, cv_bin, "--format=msgpack"}, e1), 1);
  EXPECT_NE(e1.str().find("bad --format"), std::string::npos);
  std::ostringstream e2;
  EXPECT_EQ(CmdConvert({bin_tel, cv_text, "--varint=off"}, e2), 1);
  std::ostringstream e3;
  EXPECT_EQ(CmdConvert({text_tel, cv_bin, "--varint=maybe"}, e3), 1);
  EXPECT_NE(e3.str().find("bad --varint"), std::string::npos);
  std::ostringstream e4;
  EXPECT_EQ(CmdConvert({text_tel, cv_bin, "--block-records=0"}, e4), 1);
  std::ostringstream e5;
  EXPECT_EQ(CmdConvert({text_tel}, e5), 2);  // usage: two positionals

  std::remove(text_tel.c_str());
  std::remove(bin_tel.c_str());
  std::remove(cv_bin.c_str());
  std::remove(cv_text.c_str());
  std::remove(query.c_str());
}

TEST(Cli, ReplaySeekAndFlightRecorder) {
  const std::string tel = TmpPath("cli_seek.tel");
  const std::string text_tel = TmpPath("cli_seek_text.tel");
  const std::string query = TmpPath("cli_seek.tq");
  const std::string dump = TmpPath("cli_seek_dump.tel");
  std::ostringstream out;
  ASSERT_EQ(CmdGen({"random", tel, "--vertices=30", "--edges=200",
                    "--vlabels=2", "--seed=11", "--window=60",
                    "--format=binary", "--block-records=16"},
                   out),
            0)
      << out.str();
  ASSERT_EQ(CmdGenQuery({tel, query, "--size=3", "--density=1", "--seed=4",
                         "--window=60"},
                        out),
            0)
      << out.str();

  // Seeking to before the stream replays the whole stream.
  std::ostringstream full, seek0;
  ASSERT_EQ(CmdReplay({tel, query, "--print"}, full), 0);
  ASSERT_EQ(CmdReplay({tel, query, "--print", "--seek-ts=-100"}, seek0), 0)
      << seek0.str();
  EXPECT_EQ(MatchLines(seek0.str()), MatchLines(full.str()));

  // A mid-stream seek emits a (possibly empty) tail of the match stream
  // and must not crash; exact suffix equality at window-complete
  // positions is pinned by io_roundtrip_test.
  std::ostringstream mid;
  ASSERT_EQ(CmdReplay({tel, query, "--seek-ts=500"}, mid), 0) << mid.str();

  // Seek needs the binary index.
  ASSERT_EQ(CmdConvert({tel, text_tel}, out), 0);
  std::ostringstream noindex;
  EXPECT_EQ(CmdReplay({text_tel, query, "--seek-ts=5"}, noindex), 1);
  EXPECT_NE(noindex.str().find("binary"), std::string::npos);

  // Flight recorder: dump written, reports ring occupancy, replayable.
  std::ostringstream fl;
  ASSERT_EQ(CmdReplay({tel, query, "--flight-record=50",
                       "--flight-dump=" + dump},
                      fl),
            0)
      << fl.str();
  EXPECT_NE(fl.str().find("flight recorder: dumped 50 of 200 arrivals"),
            std::string::npos)
      << fl.str();
  std::ostringstream fromdump;
  EXPECT_EQ(CmdReplay({dump, query}, fromdump), 0) << fromdump.str();

  // Flag validation: the pair goes together, N must be positive, format
  // must be a known framing.
  std::ostringstream b1;
  EXPECT_EQ(CmdReplay({tel, query, "--flight-record=50"}, b1), 1);
  EXPECT_NE(b1.str().find("go together"), std::string::npos);
  std::ostringstream b2;
  EXPECT_EQ(CmdReplay({tel, query, "--flight-dump=" + dump}, b2), 1);
  std::ostringstream b3;
  EXPECT_EQ(CmdReplay({tel, query, "--flight-record=0",
                       "--flight-dump=" + dump},
                      b3),
            1);
  std::ostringstream b4;
  EXPECT_EQ(CmdReplay({tel, query, "--flight-format=binary"}, b4), 1);

  std::remove(tel.c_str());
  std::remove(text_tel.c_str());
  std::remove(query.c_str());
  std::remove(dump.c_str());
}

TEST(Cli, GenToStdoutIsParseableTel) {
  std::ostringstream out;
  ASSERT_EQ(CmdGen({"random", "-", "--vertices=20", "--edges=50",
                    "--seed=3", "--window=25"},
                   out),
            0);
  EXPECT_EQ(out.str().rfind("tel 1 ", 0), 0u) << out.str().substr(0, 40);
  EXPECT_NE(out.str().find("window=25"), std::string::npos);
}

TEST(Cli, ReplayErrors) {
  std::ostringstream usage;
  EXPECT_EQ(CmdReplay({"only-stream"}, usage), 2);
  std::ostringstream missing;
  EXPECT_EQ(CmdReplay({"/no/such.tel", "/no/such.tq"}, missing), 1);
  EXPECT_NE(missing.str().find("error"), std::string::npos);

  // A malformed stream surfaces its line-numbered diagnostic.
  const std::string tel = TmpPath("cli_bad.tel");
  {
    std::ofstream f(tel);
    f << "tel 1 undirected vertices=3 window=5\ne 0 1 nope\n";
  }
  const std::string query = TmpPath("cli_bad.tq");
  {
    std::ofstream f(query);
    f << "t 2 1\nv 0 0\nv 1 0\ne 0 0 1\n";
  }
  std::ostringstream bad;
  EXPECT_EQ(CmdReplay({tel, query}, bad), 1);
  EXPECT_NE(bad.str().find(":2:"), std::string::npos) << bad.str();
  std::remove(tel.c_str());
  std::remove(query.c_str());
}

TEST(Cli, UsageAndErrors) {
  std::ostringstream out;
  EXPECT_EQ(CmdStats({}, out), 2);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
  std::ostringstream out2;
  EXPECT_EQ(CmdRun({"a"}, out2), 2);  // missing query + window
  std::ostringstream out3;
  EXPECT_NE(CmdStats({"/no/such/file"}, out3), 0);
  EXPECT_NE(out3.str().find("error"), std::string::npos);
}

TEST(Cli, MainDispatch) {
  std::ostringstream out;
  std::ostringstream err;
  const char* argv0[] = {"tcsm"};
  EXPECT_EQ(Main(1, const_cast<char**>(argv0), out, err), 2);
  EXPECT_NE(err.str().find("subcommands"), std::string::npos);

  const char* argv1[] = {"tcsm", "frobnicate"};
  std::ostringstream err2;
  EXPECT_EQ(Main(2, const_cast<char**>(argv1), out, err2), 2);
}


TEST(Cli, ObservabilityFlags) {
  const std::string tel = TmpPath("cli_obs.tel");
  const std::string query = TmpPath("cli_obs.tq");
  std::ostringstream out;
  ASSERT_EQ(CmdGen({"random", tel, "--vertices=40", "--edges=500",
                    "--vlabels=2", "--seed=9", "--window=200"},
                   out),
            0);
  ASSERT_EQ(CmdGenQuery({tel, query, "--size=3", "--density=1", "--seed=4",
                         "--window=200"},
                        out),
            0);

  // --stats-every emits periodic [stats] ticks and --metrics adds the
  // per-stage summary table to the text report.
  std::ostringstream stats;
  ASSERT_EQ(CmdReplay({tel, query, "--stats-every=100"}, stats), 0)
      << stats.str();
  EXPECT_NE(stats.str().find("[stats] events="), std::string::npos)
      << stats.str();
  EXPECT_NE(stats.str().find(" ev_per_s="), std::string::npos);
  EXPECT_NE(stats.str().find("arrival_batch"), std::string::npos)
      << "per-stage summary table missing";

  // The text report always carries the stream position of the memory
  // peak next to the peak itself.
  EXPECT_NE(stats.str().find(" peak_at="), std::string::npos);

  // --trace-out writes a chrome-trace file: well-formed header, spans
  // for the streaming stages, and a confirmation line naming the file.
  const std::string trace = TmpPath("cli_obs_trace.json");
  std::ostringstream traced;
  ASSERT_EQ(CmdReplay({tel, query, "--shards=2", "--threads=2",
                       "--trace-out=" + trace},
                      traced),
            0)
      << traced.str();
  EXPECT_NE(traced.str().find("wrote trace: "), std::string::npos);
  std::ifstream tf(trace);
  ASSERT_TRUE(tf.good()) << "trace file was not written";
  std::stringstream buf;
  buf << tf.rdbuf();
  const std::string json = buf.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"arrival_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // --json with metrics on stays one pure JSON line (plus opt-in stats
  // ticks) and reports the peak's event index and the stage summary.
  std::ostringstream js;
  ASSERT_EQ(CmdReplay({tel, query, "--json", "--metrics"}, js), 0)
      << js.str();
  EXPECT_EQ(js.str().rfind("{\"stream\":", 0), 0u) << js.str();
  EXPECT_NE(js.str().find("\"peak_event_index\":"), std::string::npos);
  EXPECT_NE(js.str().find("\"stages\":{"), std::string::npos);
  std::ostringstream js2;
  ASSERT_EQ(CmdReplay({tel, query, "--json", "--stats-every=100"}, js2), 0);
  EXPECT_EQ(js2.str().rfind("{\"type\":\"stats\",", 0), 0u) << js2.str();
  EXPECT_NE(js2.str().find("\n{\"stream\":"), std::string::npos);

  // Contradictory and malformed flag combinations are named errors.
  std::ostringstream contra;
  EXPECT_EQ(CmdReplay({tel, query, "--metrics=off", "--stats-every=10"},
                      contra),
            1);
  EXPECT_NE(contra.str().find("contradicts"), std::string::npos);
  std::ostringstream badv;
  EXPECT_EQ(CmdReplay({tel, query, "--metrics=sideways"}, badv), 1);
  EXPECT_NE(badv.str().find("bad --metrics"), std::string::npos);

  // Non-streaming subcommands reject the observability flags instead of
  // silently ignoring them.
  std::ostringstream rej;
  EXPECT_EQ(CmdStats({tel, "--metrics"}, rej), 2);
  EXPECT_NE(rej.str().find("only applies to streaming subcommands"),
            std::string::npos)
      << rej.str();
  std::ostringstream rej2;
  EXPECT_EQ(CmdGenQuery({tel, query, "--size=3", "--window=200",
                         "--trace-out=x.json"},
                        rej2),
            2);
  EXPECT_NE(rej2.str().find("not 'gen-query'"), std::string::npos);
  std::ostringstream rej3;
  EXPECT_EQ(CmdSnapshot({tel, query, "--stats-every=5"}, rej3), 2);
  EXPECT_NE(rej3.str().find("not 'snapshot'"), std::string::npos);

  std::remove(tel.c_str());
  std::remove(query.c_str());
  std::remove(trace.c_str());
}

TEST(Cli, CanonicalFlagReported) {
  const std::string edges = TmpPath("cli_canon.edges");
  const std::string query = TmpPath("cli_canon.query");
  std::ostringstream out;
  ASSERT_EQ(CmdGenData({"random", edges, "--vertices=30", "--edges=300",
                        "--seed=8"},
                       out),
            0);
  const std::string labels = "--labels=" + edges + ".labels";
  ASSERT_EQ(CmdGenQuery({edges, query, "--size=3", "--density=0",
                         "--window=100", labels},
                        out),
            0);
  std::ostringstream run;
  ASSERT_EQ(
      CmdRun({edges, query, "--window=100", labels, "--canonical"}, run), 0);
  EXPECT_NE(run.str().find("automorphism group size"), std::string::npos);
  std::remove(edges.c_str());
  std::remove((edges + ".labels").c_str());
  std::remove(query.c_str());
}

}  // namespace
}  // namespace tcsm::cli
