// Medium-scale randomized consistency: streams of a few thousand edges —
// well beyond what the brute-force oracle can check — where all engines
// and all TCM configurations must report identical match counts, and the
// DCS must satisfy its structural invariants mid-stream and at the end.
#include <gtest/gtest.h>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "common/rng.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

namespace tcsm {
namespace {

struct LargeCase {
  uint64_t seed;
  bool directed;
  size_t query_edges;
  double density;
};

class LargeConsistency : public ::testing::TestWithParam<LargeCase> {};

TEST_P(LargeConsistency, AllEnginesAgreeOnCounts) {
  const LargeCase param = GetParam();
  SyntheticSpec spec;
  spec.num_vertices = 150;
  spec.num_edges = 3000;
  spec.num_vertex_labels = 3;
  spec.num_edge_labels = 2;
  spec.avg_parallel_edges = 2.0;
  spec.directed = param.directed;
  spec.seed = param.seed;
  const TemporalDataset ds = GenerateSynthetic(spec);

  const Timestamp window = 400;
  QueryGenOptions opt;
  opt.num_edges = param.query_edges;
  opt.density = param.density;
  opt.window = window;
  Rng rng(param.seed + 99);
  QueryGraph q;
  if (!GenerateQuery(ds, opt, &rng, &q)) GTEST_SKIP();
  const GraphSchema schema{ds.directed, ds.vertex_labels};

  auto run = [&](auto* rig) -> std::pair<uint64_t, uint64_t> {
    CountingSink sink;
    rig->engine().set_sink(&sink);
    StreamConfig config;
    config.window = window;
    const StreamResult res = RunStream(ds, config, rig);
    EXPECT_TRUE(res.completed);
    return {res.occurred, res.expired};
  };

  SingleQueryContext<TcmEngine> reference(q, schema);
  const auto expect = run(&reference);
  reference.engine().dcs().ValidateInvariantsForTest();
  // Every match eventually expires once the stream drains.
  EXPECT_EQ(expect.first, expect.second);

  {
    TcmConfig c;
    c.prune_no_relation = false;
    c.prune_uniform = false;
    c.prune_failing_set = false;
    SingleQueryContext<TcmEngine> e(q, schema, c);
    EXPECT_EQ(run(&e), expect) << "TCM-Pruning";
  }
  {
    TcmConfig c;
    c.use_tc_filter = false;
    SingleQueryContext<TcmEngine> e(q, schema, c);
    EXPECT_EQ(run(&e), expect) << "TCM-NoFilter";
    e.engine().dcs().ValidateInvariantsForTest();
  }
  {
    TcmConfig c;
    c.use_reverse_filter = false;
    SingleQueryContext<TcmEngine> e(q, schema, c);
    EXPECT_EQ(run(&e), expect) << "forward-filter-only";
  }
  {
    TcmConfig c;
    c.use_best_dag = false;
    SingleQueryContext<TcmEngine> e(q, schema, c);
    EXPECT_EQ(run(&e), expect) << "fixed-dag-root";
  }
  {
    SingleQueryContext<PostFilterEngine> e(q, schema);
    EXPECT_EQ(run(&e), expect) << "SymBi-Post";
  }
  {
    SingleQueryContext<LocalEnumEngine> e(q, schema);
    EXPECT_EQ(run(&e), expect) << "LocalEnum";
  }
  {
    SingleQueryContext<TimingEngine> e(q, schema);
    EXPECT_EQ(run(&e), expect) << "Timing";
    EXPECT_FALSE(e.overflowed());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LargeConsistency,
    ::testing::Values(LargeCase{61, false, 4, 0.5},
                      LargeCase{62, true, 4, 0.25},
                      LargeCase{63, false, 5, 1.0},
                      LargeCase{64, true, 5, 0.0},
                      LargeCase{65, false, 6, 0.75},
                      LargeCase{66, true, 6, 0.5}));

// The TCM phase counters must be populated and sum to roughly the elapsed
// stream time (sanity of the instrumentation used by the phase bench).
TEST(LargeConsistency, PhaseCountersPopulated) {
  SyntheticSpec spec;
  spec.num_vertices = 100;
  spec.num_edges = 2000;
  spec.num_vertex_labels = 2;
  spec.seed = 5;
  const TemporalDataset ds = GenerateSynthetic(spec);
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  opt.window = 300;
  Rng rng(5);
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));
  SingleQueryContext<TcmEngine> run(q,
                                    GraphSchema{ds.directed, ds.vertex_labels});
  CountingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 300;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(run.engine().counters().update_ns, 0u);
  EXPECT_GT(run.engine().counters().search_ns, 0u);
  const double accounted_ms =
      static_cast<double>(run.engine().counters().update_ns +
                          run.engine().counters().search_ns) /
      1e6;
  EXPECT_LE(accounted_ms, res.elapsed_ms * 1.5 + 5);
}

}  // namespace
}  // namespace tcsm
