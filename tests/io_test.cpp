#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/graph_io.h"
#include "query/query_io.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

TEST(GraphIo, ParseEdgeList) {
  std::istringstream in(
      "# comment\n"
      "0 1 5\n"
      "1 2 3 9\n"
      "4 4 6\n"  // self loop: silently dropped on ingest
      "\n"
      "0 2 7\n");
  auto result = ParseEdgeList(in, /*directed=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TemporalDataset& ds = result.value();
  ASSERT_EQ(ds.NumEdges(), 3u);
  EXPECT_EQ(ds.NumVertices(), 3u);
  // Normalized by timestamp: 3, 5, 7.
  EXPECT_EQ(ds.edges[0].ts, 3);
  EXPECT_EQ(ds.edges[0].label, 9u);
  EXPECT_EQ(ds.edges[1].ts, 5);
  EXPECT_EQ(ds.edges[2].ts, 7);
  EXPECT_EQ(ds.edges[1].id, 1u);
}

TEST(GraphIo, ParseRejectsGarbage) {
  std::istringstream in("0 x 5\n");
  auto result = ParseEdgeList(in, false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptInput);

  std::istringstream neg("-1 2 5\n");
  EXPECT_FALSE(ParseEdgeList(neg, false).ok());
}

TEST(GraphIo, VertexLabels) {
  std::istringstream in("0 1 5\n2 3 6\n");
  auto result = ParseEdgeList(in, false);
  ASSERT_TRUE(result.ok());
  TemporalDataset ds = std::move(result).value();
  std::istringstream labels("0 4\n3 2\n");
  ASSERT_TRUE(ParseVertexLabels(labels, &ds).ok());
  EXPECT_EQ(ds.vertex_labels[0], 4u);
  EXPECT_EQ(ds.vertex_labels[3], 2u);
  EXPECT_EQ(ds.vertex_labels[1], 0u);
}

TEST(GraphIo, SaveLoadRoundTrip) {
  const TemporalDataset ds = testlib::RunningExampleDataset();
  const std::string path = ::testing::TempDir() + "/tcsm_io_test.edges";
  ASSERT_TRUE(SaveEdgeListFile(ds, path).ok());
  auto loaded = LoadEdgeListFile(path, false);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().NumEdges(), ds.NumEdges());
  for (size_t i = 0; i < ds.edges.size(); ++i) {
    EXPECT_EQ(loaded.value().edges[i].src, ds.edges[i].src);
    EXPECT_EQ(loaded.value().edges[i].dst, ds.edges[i].dst);
    EXPECT_EQ(loaded.value().edges[i].ts, ds.edges[i].ts);
  }
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileIsNotFound) {
  EXPECT_EQ(LoadEdgeListFile("/no/such/file", false).status().code(),
            StatusCode::kNotFound);
}

TEST(QueryIo, SerializeParseRoundTrip) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const std::string text = SerializeQuery(q);
  auto parsed = ParseQueryString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QueryGraph& p = parsed.value();
  ASSERT_EQ(p.NumVertices(), q.NumVertices());
  ASSERT_EQ(p.NumEdges(), q.NumEdges());
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    EXPECT_EQ(p.VertexLabel(v), q.VertexLabel(v));
  }
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    EXPECT_EQ(p.Edge(e).u, q.Edge(e).u);
    EXPECT_EQ(p.Edge(e).v, q.Edge(e).v);
    EXPECT_EQ(p.Before(e), q.Before(e));
    EXPECT_EQ(p.After(e), q.After(e));
  }
  EXPECT_EQ(p.directed(), q.directed());
}

TEST(QueryIo, ParseValidatesStructure) {
  // Header counts must match.
  EXPECT_FALSE(ParseQueryString("t 2 1\nv 0 0\n").ok());
  // Cyclic order rejected.
  const char* cyclic =
      "t 3 3\nv 0 0\nv 1 0\nv 2 0\n"
      "e 0 0 1\ne 1 1 2\ne 2 2 0\n"
      "o 0 1\no 1 2\no 2 0\n";
  EXPECT_FALSE(ParseQueryString(cyclic).ok());
  // Disconnected query rejected.
  const char* disconnected =
      "t 4 2\nv 0 0\nv 1 0\nv 2 0\nv 3 0\n"
      "e 0 0 1\ne 1 2 3\n";
  EXPECT_FALSE(ParseQueryString(disconnected).ok());
  // Unknown tag rejected.
  EXPECT_FALSE(ParseQueryString("t 1 0\nv 0 0\nx 1 2\n").ok());
}

TEST(QueryIo, ParseDirectedHeader) {
  const char* text =
      "t 2 1 directed\n"
      "v 0 0\nv 1 1\n"
      "e 0 0 1 3\n";
  auto parsed = ParseQueryString(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().directed());
  EXPECT_EQ(parsed.value().Edge(0).elabel, 3u);
}

TEST(QueryIo, FileRoundTrip) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const std::string path = ::testing::TempDir() + "/tcsm_query_test.q";
  ASSERT_TRUE(SaveQueryFile(q, path).ok());
  auto loaded = LoadQueryFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumEdges(), q.NumEdges());
  std::remove(path.c_str());
  EXPECT_EQ(LoadQueryFile("/no/such/query").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace tcsm
