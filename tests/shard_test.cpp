// Unit tests for the sharded execution subsystem (src/shard/): the hash
// partitioner's determinism and balance, the summary exchange's
// no-false-negative guarantee, and the mirroring invariant — every shard
// owning an endpoint of a live edge holds an identical live record, and
// expiry removes all mirrors in lockstep. The differential guarantee
// (sharded match streams byte-identical to serial over the fuzz
// catalogue) lives in stream_fuzz_test.cpp (ShardedMatchesSerial).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/temporal_graph.h"
#include "shard/partitioner.h"
#include "shard/sharded_context.h"
#include "shard/sharded_graph.h"
#include "shard/summaries.h"

namespace tcsm {
namespace {

TEST(VertexPartitionerTest, HashOwnerIsDeterministicAndInRange) {
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const HashVertexPartitioner a(shards);
    const HashVertexPartitioner b(shards);
    EXPECT_EQ(a.num_shards(), shards);
    for (VertexId v = 0; v < 1000; ++v) {
      const size_t owner = a.Owner(v);
      EXPECT_LT(owner, shards);
      // Pure function of the vertex id: identical across instances (and
      // hence across runs, processes, and platforms).
      EXPECT_EQ(owner, b.Owner(v));
    }
  }
}

TEST(VertexPartitionerTest, HashOwnerBalancesUniformIds) {
  // Dense sequential ids are the common (and adversarial-for-modulo)
  // case: the mixed hash must spread them within 2x of the ideal share.
  constexpr size_t kVertices = 8192;
  for (const size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    const HashVertexPartitioner part(shards);
    std::vector<size_t> counts(shards, 0);
    for (VertexId v = 0; v < kVertices; ++v) ++counts[part.Owner(v)];
    const size_t ideal = kVertices / shards;
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_GT(counts[s], 0u) << "shard " << s << " owns nothing";
      EXPECT_LE(counts[s], 2 * ideal)
          << "shard " << s << " of " << shards << " owns " << counts[s]
          << " of " << kVertices << " vertices (ideal " << ideal << ")";
    }
  }
}

// Rig driving identical event sequences into a ShardedStreamContext and
// a plain union TemporalGraph (the unsharded ground truth), with
// invariant checks over every vertex and label signature.
class ShardMirrorTest : public ::testing::Test {
 protected:
  static constexpr size_t kVertices = 24;
  static constexpr Label kLabels = 3;

  void Init(size_t shards, bool directed) {
    schema_.directed = directed;
    schema_.vertex_labels.clear();
    Rng rng(0x5eedu + shards);
    for (size_t v = 0; v < kVertices; ++v) {
      schema_.vertex_labels.push_back(
          static_cast<Label>(rng.NextBounded(kLabels)));
    }
    context_ = std::make_unique<ShardedStreamContext>(schema_, shards,
                                                      /*num_threads=*/1);
    union_graph_ = std::make_unique<TemporalGraph>(directed);
    union_graph_->EnsureVertices(kVertices);
    for (size_t v = 0; v < kVertices; ++v) {
      union_graph_->SetVertexLabel(static_cast<VertexId>(v),
                                   schema_.vertex_labels[v]);
    }
  }

  TemporalEdge Arrive(Rng* rng, Timestamp ts) {
    TemporalEdge ed;
    ed.src = static_cast<VertexId>(rng->NextBounded(kVertices));
    do {
      ed.dst = static_cast<VertexId>(rng->NextBounded(kVertices));
    } while (ed.dst == ed.src);
    ed.ts = ts;
    ed.label = static_cast<Label>(rng->NextBounded(kLabels));
    ed.id = static_cast<EdgeId>(arrived_.size());
    context_->OnEdgeArrival(ed);
    const EdgeId id = union_graph_->InsertEdge(ed.src, ed.dst, ed.ts, ed.label);
    EXPECT_EQ(id, ed.id);
    arrived_.push_back(ed);
    return ed;
  }

  void Expire(const TemporalEdge& ed) {
    context_->OnEdgeExpiry(ed);
    union_graph_->RemoveEdge(ed.id);
  }

  /// The mirroring invariant: every live edge is held, alive and
  /// bit-identical, by the owners of BOTH endpoints and by no other
  /// shard; expired edges are dead everywhere.
  void CheckMirrors() {
    const VertexPartitioner& part = context_->partitioner();
    const size_t shards = context_->num_shards();
    size_t cross_shard = 0;
    for (const TemporalEdge& ed : arrived_) {
      const bool live = union_graph_->Alive(ed.id);
      const size_t own_src = part.Owner(ed.src);
      const size_t own_dst = part.Owner(ed.dst);
      if (own_src != own_dst) ++cross_shard;
      for (size_t s = 0; s < shards; ++s) {
        const TemporalGraph& g = context_->shard_graph(s);
        const bool holds = (s == own_src || s == own_dst) && live;
        ASSERT_EQ(g.Alive(ed.id), holds)
            << "edge " << ed.id << " on shard " << s;
        if (!holds) continue;
        const TemporalEdge& rec = g.Edge(ed.id);
        EXPECT_EQ(rec.src, ed.src);
        EXPECT_EQ(rec.dst, ed.dst);
        EXPECT_EQ(rec.ts, ed.ts);
        EXPECT_EQ(rec.label, ed.label);
      }
    }
    if (shards > 1) {
      EXPECT_GT(cross_shard, 0u)
          << "rig produced no cross-shard edges; nothing was mirrored";
    }
  }

  /// The summary protocol: every published row is bit-equal to the owner
  /// graph's exact masks, and — the pinned no-false-negative property —
  /// MayHaveMatching through the view never returns false for a
  /// (vertex, signature, direction) that has a live entry in the ground
  /// truth graph.
  void CheckSummaries() {
    const VertexPartitioner& part = context_->partitioner();
    const ShardedGraphView& view = context_->view();
    for (VertexId v = 0; v < kVertices; ++v) {
      const TemporalGraph& owner = context_->shard_graph(part.Owner(v));
      EXPECT_EQ(context_->summaries().MayHaveMatching(v, 0, 0, true),
                view.MayHaveMatching(v, 0, 0, true));
      EXPECT_EQ(owner.VertexSigAny(v).bits(),
                context_->shard_graph(part.Owner(v)).VertexSigAny(v).bits());
      for (Label el = 0; el < kLabels; ++el) {
        for (Label nl = 0; nl < kLabels; ++nl) {
          for (const bool want_out : {false, true}) {
            bool truth = false;
            for (const auto& entry :
                 union_graph_->NeighborsMatching(v, el, nl)) {
              if (!schema_.directed || entry.out == want_out) {
                truth = true;
                break;
              }
            }
            if (truth) {
              EXPECT_TRUE(view.MayHaveMatching(v, el, nl, want_out))
                  << "false negative at v=" << v << " el=" << int(el)
                  << " nl=" << int(nl) << " out=" << want_out;
            }
            // Verdict parity with the unsharded graph (the exact masks
            // agree, so sharding changes no pruning decision).
            EXPECT_EQ(view.MayHaveMatching(v, el, nl, want_out),
                      union_graph_->MayHaveMatching(v, el, nl, want_out));
          }
        }
      }
    }
  }

  GraphSchema schema_;
  std::unique_ptr<ShardedStreamContext> context_;
  std::unique_ptr<TemporalGraph> union_graph_;
  std::vector<TemporalEdge> arrived_;
};

TEST_F(ShardMirrorTest, MirrorsAndSummariesTrackArrivals) {
  Init(/*shards=*/4, /*directed=*/true);
  Rng rng(0xabc1);
  for (size_t i = 0; i < 200; ++i) {
    Arrive(&rng, static_cast<Timestamp>(i / 4));
  }
  CheckMirrors();
  CheckSummaries();
}

TEST_F(ShardMirrorTest, MirrorsStayConsistentAfterExpiry) {
  Init(/*shards=*/4, /*directed=*/true);
  Rng rng(0xabc2);
  for (size_t i = 0; i < 200; ++i) {
    Arrive(&rng, static_cast<Timestamp>(i / 4));
  }
  // FIFO window slide: the oldest 120 edges expire — cross-shard mirrors
  // must disappear from BOTH holders, and the republished rows must drop
  // signatures that no longer have live entries (verdict parity below
  // would catch a stale row).
  for (size_t i = 0; i < 120; ++i) Expire(arrived_[i]);
  CheckMirrors();
  CheckSummaries();
  // Refill after the slide: id assignment continues densely and the
  // reclaimed mirrors do not resurrect.
  for (size_t i = 0; i < 80; ++i) {
    Arrive(&rng, static_cast<Timestamp>(50 + i / 4));
  }
  CheckMirrors();
  CheckSummaries();
}

TEST_F(ShardMirrorTest, UndirectedSingleShardDegeneratesToUnion) {
  // S=1 is the degenerate deployment: one shard owns everything, nothing
  // is mirrored, and the context must agree with the union graph exactly.
  Init(/*shards=*/1, /*directed=*/false);
  Rng rng(0xabc3);
  for (size_t i = 0; i < 120; ++i) {
    Arrive(&rng, static_cast<Timestamp>(i / 3));
  }
  for (size_t i = 0; i < 60; ++i) Expire(arrived_[i]);
  CheckMirrors();
  CheckSummaries();
  EXPECT_EQ(context_->shard_graph(0).NumAliveEdges(),
            union_graph_->NumAliveEdges());
}

}  // namespace
}  // namespace tcsm
