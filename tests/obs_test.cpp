// Unit tests for the observability subsystem (src/obs/, DESIGN.md §11):
// counter/gauge/histogram semantics, exact per-thread stripe merging
// under a real ThreadPool, histogram bucket boundary pinning, the
// allocation-free recording contract after MetricsRegistry::Freeze(),
// trace span collection from pool threads, and the StatsReporter's text
// and JSON line shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/stage_timer.h"
#include "obs/stats_reporter.h"
#include "obs/trace.h"

// Global allocation counter for the no-op/frozen-registry contract: the
// hot-path recording calls must not allocate. Replacing the global
// operator new/delete pair is the only observation point that catches
// every allocation path (vector growth, node allocation, ...).
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tcsm {
namespace {

TEST(CounterTest, AddAccumulatesAcrossStripes) {
  Counter c;
  EXPECT_EQ(c.Total(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Total(), 42u);
}

TEST(CounterTest, ExactUnderThreadPool) {
  // Every pool worker lands on its own stripe; the merged total must be
  // exact (no lost updates), not merely approximate.
  Counter c;
  ThreadPool pool(8);
  constexpr size_t kIters = 10000;
  pool.ParallelFor(kIters, [&](size_t i) { c.Add(i % 3 + 1); });
  uint64_t expected = 0;
  for (size_t i = 0; i < kIters; ++i) expected += i % 3 + 1;
  EXPECT_EQ(c.Total(), expected);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // bounds {10, 20, 40}: bucket b holds bounds[b-1] < v <= bounds[b],
  // the implicit 4th bucket catches v > 40. Boundary values pin the
  // "inclusive upper bound" contract.
  Histogram h({10, 20, 40});
  ASSERT_EQ(h.num_buckets(), 4u);
  h.Observe(0);    // -> bucket 0
  h.Observe(10);   // -> bucket 0 (boundary is inclusive)
  h.Observe(11);   // -> bucket 1
  h.Observe(20);   // -> bucket 1
  h.Observe(21);   // -> bucket 2
  h.Observe(40);   // -> bucket 2
  h.Observe(41);   // -> overflow
  h.Observe(999);  // -> overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(3), 2u);
  EXPECT_EQ(h.TotalCount(), 8u);
  EXPECT_EQ(h.TotalSum(), 0u + 10 + 11 + 20 + 21 + 40 + 41 + 999);
}

TEST(HistogramTest, ExactUnderThreadPool) {
  Histogram h(ExponentialBounds(1, 2.0, 12));
  ThreadPool pool(8);
  constexpr size_t kIters = 20000;
  pool.ParallelFor(kIters, [&](size_t i) { h.Observe(i % 100); });
  uint64_t expected_sum = 0;
  for (size_t i = 0; i < kIters; ++i) expected_sum += i % 100;
  EXPECT_EQ(h.TotalCount(), kIters);
  EXPECT_EQ(h.TotalSum(), expected_sum);
}

TEST(HistogramTest, ExponentialBoundsAscendingAndDeduped) {
  const std::vector<uint64_t> bounds = ExponentialBounds(250, 2.0, 26);
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 250u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
  // factor ~1: integer rounding would duplicate boundaries; they must
  // be collapsed, never repeated.
  const std::vector<uint64_t> slow = ExponentialBounds(1, 1.1, 10);
  for (size_t i = 1; i < slow.size(); ++i) {
    EXPECT_LT(slow[i - 1], slow[i]) << "at index " << i;
  }
}

TEST(HistogramSnapshotTest, QuantileInterpolatesAndDeltaSubtracts) {
  MetricsRegistry reg;
  Histogram* h = reg.AddHistogram("h", {10, 20, 40});
  for (int i = 0; i < 10; ++i) h->Observe(5);   // bucket 0
  for (int i = 0; i < 10; ++i) h->Observe(15);  // bucket 1
  const MetricsSnapshot snap1 = reg.Snapshot();
  const HistogramSnapshot* s1 = snap1.FindHistogram("h");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->count, 20u);
  // Median sits exactly on the bucket-0/bucket-1 boundary.
  EXPECT_DOUBLE_EQ(s1->Quantile(0.5), 10.0);
  // p100 = upper bound of the highest occupied bucket.
  EXPECT_DOUBLE_EQ(s1->Quantile(1.0), 20.0);

  for (int i = 0; i < 5; ++i) h->Observe(30);  // bucket 2
  const MetricsSnapshot snap2 = reg.Snapshot();
  const HistogramSnapshot delta =
      snap2.FindHistogram("h")->DeltaSince(*s1);
  EXPECT_EQ(delta.count, 5u);
  EXPECT_EQ(delta.buckets[0], 0u);
  EXPECT_EQ(delta.buckets[1], 0u);
  EXPECT_EQ(delta.buckets[2], 5u);
  EXPECT_EQ(delta.sum, 150u);
}

TEST(MetricsRegistryTest, GetOrCreateDedupesByName) {
  MetricsRegistry reg;
  Counter* c1 = reg.AddCounter("x");
  Counter* c2 = reg.AddCounter("x");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = reg.AddGauge("y");
  EXPECT_EQ(g1, reg.AddGauge("y"));
  Histogram* h1 = reg.AddHistogram("z", {1, 2});
  EXPECT_EQ(h1, reg.AddHistogram("z", {1, 2}));
}

TEST(MetricsRegistryTest, SnapshotReadsEveryMetric) {
  MetricsRegistry reg;
  reg.AddCounter("c")->Add(3);
  reg.AddGauge("g")->Set(-5);
  reg.AddHistogram("h", {100})->Observe(50);
  reg.Freeze();
  EXPECT_TRUE(reg.frozen());
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("c"), 3u);
  EXPECT_EQ(snap.GaugeValue("g"), -5);
  const HistogramSnapshot* h = snap.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  EXPECT_EQ(snap.FindHistogram("missing"), nullptr);
}

TEST(MetricsRegistryTest, RecordingIsAllocationFreeAfterFreeze) {
  MetricsRegistry reg;
  Counter* c = reg.AddCounter("c");
  Gauge* g = reg.AddGauge("g");
  Histogram* h = reg.AddHistogram("h", ExponentialBounds(250, 2.0, 26));
  reg.Freeze();
  // Warm up the calling thread's stripe assignment outside the window.
  c->Add(0);
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    c->Add(1);
    g->Set(i);
    g->Add(1);
    h->Observe(static_cast<uint64_t>(i) * 977);
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "hot-path recording allocated";
  EXPECT_EQ(c->Total(), 1000u);
  EXPECT_EQ(h->TotalCount(), 1000u);
}

TEST(StageTimerTest, NullHandlesAreFreeNoOps) {
  // The metrics-off contract: an instrumented site with null handles
  // must not allocate (and, by construction, never reads the clock).
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const ScopedStage span(nullptr, nullptr, "x", "y", "k", 1);
    StepObserver steps(nullptr, nullptr, "cat");
    steps.Step("s", "k", 2);
    steps.Restart();
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled stage timers allocated";
}

TEST(StageTimerTest, ScopedStageRecordsIntoHistogramAndTrace) {
  Histogram h(LatencyBoundsNs());
  TraceWriter trace;
  {
    const ScopedStage span(&h, &trace, "arrival_batch", "stream", "events",
                           4);
  }
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(trace.NumSpans(), 1u);
}

TEST(StageTimerTest, StepObserverClosesOneSpanPerStep) {
  Histogram h(LatencyBoundsNs());
  TraceWriter trace;
  StepObserver steps(&h, &trace, "pipeline");
  steps.Step("insert_fanout", "edge", 0);
  steps.Restart();
  steps.Step("insert_fanout", "edge", 1);
  EXPECT_EQ(h.TotalCount(), 2u);
  EXPECT_EQ(trace.NumSpans(), 2u);
}

TEST(TraceWriterTest, SpansFromPoolThreadsGetDistinctNamedTracks) {
  TraceWriter trace;
  ThreadPool pool(4);
  pool.ParallelFor(64, [&](size_t i) {
    const uint64_t start = trace.NowNs();
    trace.Emit("lane_notify", "shard", start, 100, "shard", i % 4);
  });
  EXPECT_EQ(trace.NumSpans(), 64u);
  std::ostringstream out;
  trace.WriteJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Every span thread carries a thread_name metadata record; with a
  // 4-wide pool at least two distinct tracks must have participated.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"shard\":"), std::string::npos);
}

TEST(TraceWriterTest, ToNsClampsBelowEpoch) {
  TraceWriter trace;
  EXPECT_EQ(trace.ToNs(std::chrono::steady_clock::time_point::min()), 0u);
}

TEST(ObservabilityTest, RegistersFullTaxonomyAndFreezes) {
  Observability obs;
  const StageMetrics& stages = obs.stages();
  EXPECT_NE(stages.arrivals, nullptr);
  EXPECT_NE(stages.expirations, nullptr);
  EXPECT_NE(stages.arrival_batches, nullptr);
  EXPECT_NE(stages.expiry_batches, nullptr);
  EXPECT_NE(stages.summary_publishes, nullptr);
  EXPECT_NE(stages.ingest_records, nullptr);
  EXPECT_NE(stages.ingest_bytes, nullptr);
  EXPECT_NE(stages.live_edges, nullptr);
  EXPECT_NE(stages.peak_bytes, nullptr);
  EXPECT_NE(stages.peak_event_index, nullptr);
  EXPECT_NE(stages.parse_ns, nullptr);
  EXPECT_NE(stages.arrival_batch_ns, nullptr);
  EXPECT_NE(stages.expiry_batch_ns, nullptr);
  EXPECT_NE(stages.pipeline_step_ns, nullptr);
  EXPECT_NE(stages.sink_drain_ns, nullptr);
  EXPECT_NE(stages.shard_lane_ns, nullptr);
  EXPECT_NE(stages.engine_update_ns, nullptr);
  EXPECT_NE(stages.engine_search_ns, nullptr);
  EXPECT_TRUE(obs.registry().frozen());
  EXPECT_EQ(obs.trace(), nullptr) << "tracing must be opt-in";
  obs.EnableTrace();
  EXPECT_NE(obs.trace(), nullptr);
}

TEST(ObservabilityTest, PublishEngineCountersSetsGauges) {
  Observability obs;
  EngineCounters agg;
  agg.occurred = 11;
  agg.expired = 7;
  agg.search_nodes = 100;
  agg.adj_entries_scanned = 50;
  agg.adj_entries_matched = 25;
  obs.PublishEngineCounters(agg);
  const MetricsSnapshot snap = obs.Snapshot();
  EXPECT_EQ(snap.GaugeValue("engine.occurred"), 11);
  EXPECT_EQ(snap.GaugeValue("engine.expired"), 7);
  EXPECT_EQ(snap.GaugeValue("engine.search_nodes"), 100);
  EXPECT_EQ(snap.GaugeValue("engine.adj_scanned"), 50);
  EXPECT_EQ(snap.GaugeValue("engine.adj_matched"), 25);
}

TEST(ObservabilityTest, SummarizeStagesSkipsEmptyAndStripsAffixes) {
  Observability obs;
  obs.stages().arrival_batch_ns->Observe(1000);
  obs.stages().arrival_batch_ns->Observe(3000);
  const std::vector<StageSummaryRow> rows = SummarizeStages(obs.Snapshot());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].stage, "arrival_batch");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_GT(rows[0].p99_us, 0.0);
}

TEST(StatsReporterTest, DisabledWithoutSink) {
  Observability obs;
  StatsReporter none(nullptr, 100, false, nullptr);
  EXPECT_FALSE(none.enabled());
  EXPECT_FALSE(none.Due(1000));
  std::ostringstream out;
  StatsReporter zero(&obs, 0, false, &out);
  EXPECT_FALSE(zero.enabled());
}

TEST(StatsReporterTest, DueFiresOncePerBoundaryCrossing) {
  Observability obs;
  std::ostringstream out;
  StatsReporter rep(&obs, 100, false, &out);
  ASSERT_TRUE(rep.enabled());
  EXPECT_FALSE(rep.Due(50));
  EXPECT_TRUE(rep.Due(100));
  rep.Tick(100, 10, EngineCounters{});
  EXPECT_FALSE(rep.Due(150)) << "same boundary must not re-fire";
  EXPECT_TRUE(rep.Due(350)) << "a batch jumping several boundaries fires";
}

TEST(StatsReporterTest, TextLineShape) {
  Observability obs;
  obs.stages().arrivals->Add(100);
  obs.stages().arrival_batch_ns->Observe(2000);
  std::ostringstream out;
  StatsReporter rep(&obs, 100, /*json=*/false, &out);
  EngineCounters agg;
  agg.occurred = 5;
  agg.adj_entries_scanned = 40;
  agg.adj_entries_matched = 10;
  rep.Tick(100, 42, agg);
  const std::string line = out.str();
  EXPECT_EQ(line.rfind("[stats] events=100 ", 0), 0u) << line;
  EXPECT_NE(line.find(" ev_per_s="), std::string::npos) << line;
  EXPECT_NE(line.find(" live=42 "), std::string::npos) << line;
  EXPECT_NE(line.find(" occurred=5 "), std::string::npos) << line;
  EXPECT_NE(line.find(" scan_sel=0.25"), std::string::npos) << line;
  EXPECT_NE(line.find(" arrival_batch_p50_us="), std::string::npos) << line;
  EXPECT_NE(line.find("_p99_us="), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(StatsReporterTest, JsonLineShape) {
  Observability obs;
  obs.stages().expiry_batch_ns->Observe(5000);
  std::ostringstream out;
  StatsReporter rep(&obs, 10, /*json=*/true, &out);
  EngineCounters agg;
  agg.occurred = 3;
  agg.expired = 1;
  rep.Tick(20, 7, agg);
  const std::string line = out.str();
  EXPECT_EQ(line.rfind("{\"type\":\"stats\",\"events\":20,", 0), 0u) << line;
  EXPECT_NE(line.find("\"events_per_sec\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"live_edges\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"occurred\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"expired\":1"), std::string::npos) << line;
  EXPECT_NE(line.find("\"stages\":{\"expiry_batch\":{\"count\":1,"),
            std::string::npos)
      << line;
  EXPECT_EQ(line.back(), '\n');
  // Engine counters were republished into the registry's gauges.
  EXPECT_EQ(obs.Snapshot().GaugeValue("engine.occurred"), 3);
}

}  // namespace
}  // namespace tcsm
