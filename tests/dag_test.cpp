#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/query_dag.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

using testlib::kE1;
using testlib::kE2;
using testlib::kE3;
using testlib::kE4;
using testlib::kE5;
using testlib::kE6;
using testlib::kU1;
using testlib::kU2;
using testlib::kU3;
using testlib::kU4;
using testlib::kU5;

// Example IV.2: building the DAG of Fig. 3a from root u1 selects
// u1, u3, u2, u4, u5 and the final score is 5 (= 2 + 1 + 2).
TEST(QueryDag, RunningExampleGreedyTrace) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, kU1);
  EXPECT_EQ(dag.score(), 5);
  EXPECT_EQ(dag.TopoOrder(),
            (std::vector<VertexId>{kU1, kU3, kU2, kU4, kU5}));
  // Orientations of Fig. 3a.
  EXPECT_EQ(dag.ParentOf(kE1), kU1);
  EXPECT_EQ(dag.ChildOf(kE1), kU2);
  EXPECT_EQ(dag.ParentOf(kE2), kU1);
  EXPECT_EQ(dag.ChildOf(kE2), kU3);
  EXPECT_EQ(dag.ParentOf(kE3), kU2);
  EXPECT_EQ(dag.ChildOf(kE3), kU4);
  EXPECT_EQ(dag.ParentOf(kE4), kU3);
  EXPECT_EQ(dag.ChildOf(kE4), kU4);
  EXPECT_EQ(dag.ParentOf(kE5), kU4);
  EXPECT_EQ(dag.ChildOf(kE5), kU5);
  EXPECT_EQ(dag.ParentOf(kE6), kU3);
  EXPECT_EQ(dag.ChildOf(kE6), kU5);
}

TEST(QueryDag, RunningExampleMasks) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, kU1);
  // Sub-DAG of u3 contains eps4, eps5, eps6 (Definition II.5).
  EXPECT_EQ(dag.SubDagEdges(kU3), Bit(kE4) | Bit(kE5) | Bit(kE6));
  // Sub-DAG of an edge: q̂_eps2 = {eps2} ∪ q̂_u3.
  EXPECT_EQ(dag.SubDagEdges(kU4), Bit(kE5));
  // eps2 is an ancestor of eps4, eps5, eps6; all are temporally related
  // (with the closure e2 < e5), so they are temporal descendants.
  EXPECT_EQ(dag.LaterDescendants(kE2), Bit(kE4) | Bit(kE5) | Bit(kE6));
  EXPECT_EQ(dag.EarlierDescendants(kE2), 0u);
  EXPECT_EQ(dag.LaterDescendants(kE1), Bit(kE3) | Bit(kE5));
  // All 5 order pairs are realized as temporal ancestor-descendant pairs.
  EXPECT_EQ(dag.CountTemporalPairs(), 5u);
}

TEST(QueryDag, TrackedSetsAtU3) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, kU1);
  // eps2 ends at u3 and has later descendants below u3 -> tracked there.
  EXPECT_GE(dag.SlotLater(kU3, kE2), 0);
  // eps1 ends at u2, not an ancestor of u3 -> not tracked at u3.
  EXPECT_LT(dag.SlotLater(kU3, kE1), 0);
  // At u4: eps1 (ends at u2, an ancestor of u4) has later descendant eps5.
  EXPECT_GE(dag.SlotLater(kU4, kE1), 0);
  // eps5 tracked nowhere as "later" (it has no later-related successors).
  for (VertexId u = 0; u < 5; ++u) EXPECT_LT(dag.SlotLater(u, kE5), 0);
  // eps5's earlier-related edges are all above it -> no earlier tracking.
  for (VertexId u = 0; u < 5; ++u) EXPECT_LT(dag.SlotEarlier(u, kE5), 0);
}

TEST(QueryDag, BestDagPicksMaxScore) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag best = QueryDag::BuildBestDag(q);
  for (VertexId r = 0; r < q.NumVertices(); ++r) {
    EXPECT_GE(best.score(), QueryDag::BuildDagGreedy(q, r).score());
  }
}

TEST(QueryDag, ReversedFlipsEverything) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, kU1);
  const QueryDag rev = dag.Reversed();
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    EXPECT_EQ(rev.ParentOf(e), dag.ChildOf(e));
    EXPECT_EQ(rev.ChildOf(e), dag.ParentOf(e));
  }
  // In the reverse DAG, descendants of eps5 = edges above u4 in q̂.
  EXPECT_EQ(rev.SubDagEdges(kU4),
            Bit(kE3) | Bit(kE4) | Bit(kE1) | Bit(kE2));
  // eps5 (child endpoint u4 in q̂⁻¹) has earlier-related descendants
  // eps1 and eps2 there.
  EXPECT_EQ(rev.EarlierDescendants(kE5), Bit(kE1) | Bit(kE2));
  EXPECT_GE(rev.SlotEarlier(kU4, kE5), 0);
}

TEST(QueryDag, TopoConsistentWithOrientation) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    // Random connected query.
    QueryGraph q;
    const size_t n = 3 + rng.NextBounded(5);
    for (size_t i = 0; i < n; ++i) q.AddVertex(
        static_cast<Label>(rng.NextBounded(2)));
    for (size_t i = 1; i < n; ++i) {
      q.AddEdge(static_cast<VertexId>(rng.NextBounded(i)),
                static_cast<VertexId>(i));
    }
    // A few extra edges.
    for (int k = 0; k < 3; ++k) {
      const VertexId a = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId b = static_cast<VertexId>(rng.NextBounded(n));
      if (a != b && q.FindEdge(a, b) == kInvalidEdge) q.AddEdge(a, b);
    }
    const QueryDag dag = QueryDag::BuildBestDag(q);
    for (EdgeId e = 0; e < q.NumEdges(); ++e) {
      EXPECT_LT(dag.TopoPos(dag.ParentOf(e)), dag.TopoPos(dag.ChildOf(e)));
    }
    // Single root for the forward DAG.
    size_t roots = 0;
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      if (dag.ParentEdges(u).empty()) ++roots;
    }
    EXPECT_EQ(roots, 1u);
    EXPECT_EQ(dag.TopoOrder().front(), dag.root());
  }
}

TEST(QueryDag, SingleEdgeQuery) {
  QueryGraph q;
  q.AddVertex(0);
  q.AddVertex(1);
  q.AddEdge(0, 1);
  const QueryDag dag = QueryDag::BuildBestDag(q);
  EXPECT_EQ(dag.score(), 0);
  EXPECT_EQ(dag.CountTemporalPairs(), 0u);
  EXPECT_TRUE(dag.TrackedLater(dag.ChildOf(0)).empty());
}

}  // namespace
}  // namespace tcsm
