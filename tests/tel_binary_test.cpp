// Unit tests for the binary `.tel` v2 framing (io/tel_binary.h): wire
// layout, both block encodings, the index footer and O(1) seek, the
// flight-recorder ring, and the ingest-side observability counters. The
// match-stream equivalence of binary replay is covered by
// io_roundtrip_test.cpp; the hostile-input matrix by io_errors_test.cpp.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "graph/temporal_dataset.h"
#include "io/flight_recorder.h"
#include "io/stream_reader.h"
#include "io/stream_writer.h"
#include "io/tel_binary.h"
#include "obs/observability.h"

namespace tcsm {
namespace {

TemporalEdge Edge(VertexId src, VertexId dst, Timestamp ts, Label label = 0) {
  TemporalEdge e;
  e.src = src;
  e.dst = dst;
  e.ts = ts;
  e.label = label;
  return e;
}

/// A small dataset exercising labels, duplicate timestamps, and a
/// negative start.
TemporalDataset SmallDataset() {
  TemporalDataset ds;
  ds.directed = true;
  ds.vertex_labels = {0, 1, 2, 0, 1};
  ds.edges = {Edge(0, 1, -5, 7), Edge(1, 2, -5), Edge(2, 3, 0, 1),
              Edge(3, 4, 3),     Edge(4, 0, 3),  Edge(0, 2, 12, 2)};
  for (size_t i = 0; i < ds.edges.size(); ++i) {
    ds.edges[i].id = static_cast<EdgeId>(i);
  }
  return ds;
}

std::string Serialize(const TemporalDataset& ds, const TelWriteOptions& opts) {
  std::ostringstream out;
  const Status s = WriteTel(ds, opts, out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out.str();
}

TelWriteOptions BinaryOptions(bool varint, size_t block_records = 0,
                              Timestamp window = 20) {
  TelWriteOptions opts;
  opts.binary = true;
  opts.varint_timestamps = varint;
  opts.block_records = block_records;
  opts.window = window;
  return opts;
}

TEST(TelBinaryWire, MagicHeaderAndTrailerLayout) {
  const TemporalDataset ds = SmallDataset();
  const std::string tel = Serialize(ds, BinaryOptions(/*varint=*/true));
  ASSERT_GE(tel.size(), 8 + kTelBinaryHeaderBytes + kTelTrailerBytes);
  EXPECT_EQ(std::memcmp(tel.data(), kTelBinaryMagic, 8), 0);
  // Header: version 2, directed flag, 5 vertices, window 20 (all LE).
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(tel.data()) + 8;
  EXPECT_EQ(h[0] | (h[1] << 8), kTelBinaryVersion);
  EXPECT_EQ(h[2] | (h[3] << 8), kTelBinaryFlagDirected);
  EXPECT_EQ(h[8], 5u);   // num_vertices low byte
  EXPECT_EQ(h[16], 20u); // window low byte
  // Trailer ends in the footer magic.
  EXPECT_EQ(std::memcmp(tel.data() + tel.size() - 8, kTelBinaryFooterMagic, 8),
            0);
}

TEST(TelBinaryWire, SniffDispatchesOnFirstByte) {
  const std::string tel =
      Serialize(SmallDataset(), BinaryOptions(/*varint=*/true));
  std::istringstream in(tel);
  StreamReader reader(in, "wire.tel");
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_TRUE(reader.binary());
  EXPECT_TRUE(reader.has_vertex_universe());
  EXPECT_EQ(reader.header().window, 20);
  EXPECT_TRUE(reader.header().directed);
  EXPECT_EQ(reader.vertex_labels(), SmallDataset().vertex_labels);
  EXPECT_EQ(reader.line(), 0u);  // binary diagnostics carry byte offsets
}

class TelBinaryRoundTrip : public ::testing::TestWithParam<bool> {};

TEST_P(TelBinaryRoundTrip, DatasetSurvivesBothEncodings) {
  const bool varint = GetParam();
  const TemporalDataset ds = SmallDataset();
  for (const size_t block_records : {size_t{0}, size_t{1}, size_t{2}}) {
    SCOPED_TRACE("block_records " + std::to_string(block_records));
    const std::string tel = Serialize(ds, BinaryOptions(varint, block_records));
    std::istringstream in(tel);
    TelHeader header;
    auto parsed = ReadTelDataset(in, "rt.tel", &header);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(header.window, 20);
    EXPECT_EQ(parsed.value().directed, ds.directed);
    EXPECT_EQ(parsed.value().vertex_labels, ds.vertex_labels);
    ASSERT_EQ(parsed.value().NumEdges(), ds.NumEdges());
    for (size_t i = 0; i < ds.edges.size(); ++i) {
      EXPECT_EQ(parsed.value().edges[i].id, ds.edges[i].id);
      EXPECT_EQ(parsed.value().edges[i].src, ds.edges[i].src);
      EXPECT_EQ(parsed.value().edges[i].dst, ds.edges[i].dst);
      EXPECT_EQ(parsed.value().edges[i].ts, ds.edges[i].ts);
      EXPECT_EQ(parsed.value().edges[i].label, ds.edges[i].label);
    }
  }
}

TEST_P(TelBinaryRoundTrip, ExplicitExpirySurvives) {
  const bool varint = GetParam();
  TelWriteOptions opts = BinaryOptions(varint, /*block_records=*/2);
  opts.explicit_expiry = true;
  const std::string tel = Serialize(SmallDataset(), opts);

  // Record-by-record, the binary stream must replay the exact schedule
  // the text writer would have produced.
  TelWriteOptions text = opts;
  text.binary = false;
  const std::string text_tel = Serialize(SmallDataset(), text);

  std::istringstream bin_in(tel);
  std::istringstream text_in(text_tel);
  StreamReader bin_reader(bin_in, "bin.tel");
  StreamReader text_reader(text_in, "text.tel");
  ASSERT_TRUE(bin_reader.Init().ok());
  ASSERT_TRUE(text_reader.Init().ok());
  EXPECT_TRUE(bin_reader.header().explicit_expiry);
  while (true) {
    StreamRecord a, b;
    bool a_done = false, b_done = false;
    ASSERT_TRUE(bin_reader.Next(&a, &a_done).ok());
    ASSERT_TRUE(text_reader.Next(&b, &b_done).ok());
    ASSERT_EQ(a_done, b_done);
    if (a_done) break;
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.edge.src, b.edge.src);
    EXPECT_EQ(a.edge.dst, b.edge.dst);
    EXPECT_EQ(a.edge.ts, b.edge.ts);
    EXPECT_EQ(a.edge.label, b.edge.label);
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, TelBinaryRoundTrip, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "varint" : "fixed";
                         });

TEST(TelBinaryWire, VarintSurvivesExtremeValues) {
  // Large timestamp deltas (10-byte varints), max-ish vertex ids, and
  // labels with high bits all round-trip.
  TemporalDataset ds;
  ds.directed = false;
  ds.vertex_labels.assign(1u << 16, 0);
  ds.vertex_labels.back() = 0x7fffffff;
  ds.edges = {Edge(0, (1u << 16) - 1, -kMaxTelTimestamp, 0x7fffffff),
              Edge(1, 2, 0), Edge(2, 3, kMaxTelTimestamp)};
  for (size_t i = 0; i < ds.edges.size(); ++i) {
    ds.edges[i].id = static_cast<EdgeId>(i);
  }
  const std::string tel =
      Serialize(ds, BinaryOptions(/*varint=*/true, 0, /*window=*/0));
  std::istringstream in(tel);
  auto parsed = ReadTelDataset(in, "extreme.tel");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().NumEdges(), 3u);
  EXPECT_EQ(parsed.value().edges[0].ts, -kMaxTelTimestamp);
  EXPECT_EQ(parsed.value().edges[0].dst, (1u << 16) - 1);
  EXPECT_EQ(parsed.value().edges[0].label, 0x7fffffffu);
  EXPECT_EQ(parsed.value().edges[2].ts, kMaxTelTimestamp);
}

TEST(TelBinaryWire, EmptyStreamRoundTrips) {
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  const std::string tel = Serialize(ds, BinaryOptions(/*varint=*/true));
  std::istringstream in(tel);
  StreamReader reader(in, "empty.tel");
  ASSERT_TRUE(reader.Init().ok());
  StreamRecord rec;
  bool done = false;
  ASSERT_TRUE(reader.Next(&rec, &done).ok());
  EXPECT_TRUE(done);
  // Seeking an empty stream is a clean end, not an error.
  std::istringstream in2(tel);
  StreamReader seeker(in2, "empty.tel");
  ASSERT_TRUE(seeker.Init().ok());
  ASSERT_TRUE(seeker.SeekToTimestamp(100).ok());
  done = false;
  ASSERT_TRUE(seeker.Next(&rec, &done).ok());
  EXPECT_TRUE(done);
}

TEST(TelBinaryWire, SelfLoopsDroppedNotFatal) {
  // Loops cannot pass StreamWriter, so splice a fixed-encoding record in
  // by hand: write a 2-edge fixed stream and corrupt the first record's
  // dst to equal src.
  TemporalDataset ds;
  ds.vertex_labels = {0, 0, 0};
  ds.edges = {Edge(0, 1, 5), Edge(1, 2, 6)};
  ds.edges[0].id = 0;
  ds.edges[1].id = 1;
  std::string tel =
      Serialize(ds, BinaryOptions(/*varint=*/false, 0, /*window=*/0));
  // Layout: magic(8) header(24) labels(u64 count = 8, no entries)
  // block_header(32) then record 0: kind(4) src(4) dst(4)...
  const size_t dst_off = 8 + kTelBinaryHeaderBytes + 8 + kTelBlockHeaderBytes +
                         8;
  ASSERT_EQ(tel[dst_off], 1);  // record 0's dst
  tel[dst_off] = 0;            // now a self loop
  std::istringstream in(tel);
  auto parsed = ReadTelDataset(in, "loop.tel");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().NumEdges(), 1u);
  EXPECT_EQ(parsed.value().edges[0].id, 0u);  // dropped loop takes no id
  EXPECT_EQ(parsed.value().edges[0].src, 1u);
}

// --- Seek -----------------------------------------------------------------

/// 40 arrivals at ts = 10*i, 4 records per block: block b covers
/// timestamps [40b*10 .. (4b+3)*10] with first_arrival_index 4b.
TemporalDataset SeekDataset() {
  TemporalDataset ds;
  ds.directed = false;
  ds.vertex_labels.assign(50, 0);
  for (int i = 0; i < 40; ++i) {
    TemporalEdge e = Edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
                          10 * i);
    e.id = static_cast<EdgeId>(i);
    ds.edges.push_back(e);
  }
  return ds;
}

TEST(TelBinarySeek, LandsOnCoveringBlockWithArrivalIndex) {
  const std::string tel =
      Serialize(SeekDataset(), BinaryOptions(/*varint=*/true,
                                             /*block_records=*/4));
  struct Case {
    Timestamp t;
    Timestamp first_record_ts;  // first record the seeked reader returns
    uint64_t first_arrival_index;
  };
  // Block b holds ts {40b, 40b+10, 40b+20, 40b+30}. Seeking to t lands on
  // the first block with last_ts >= t.
  const Case cases[] = {
      {-100, 0, 0},  // before the stream: block 0
      {0, 0, 0},     {10, 0, 0},   {30, 0, 0},
      {31, 40, 4},   // block 0 ends at 30; next block covers 31
      {40, 40, 4},   {200, 200, 20},
      {390, 360, 36},  // last block
  };
  for (const Case& c : cases) {
    SCOPED_TRACE("seek to " + std::to_string(c.t));
    std::istringstream in(tel);
    StreamReader reader(in, "seek.tel");
    ASSERT_TRUE(reader.Init().ok());
    ASSERT_TRUE(reader.SeekToTimestamp(c.t).ok());
    EXPECT_EQ(reader.first_arrival_index(), c.first_arrival_index);
    StreamRecord rec;
    bool done = false;
    ASSERT_TRUE(reader.Next(&rec, &done).ok());
    ASSERT_FALSE(done);
    EXPECT_EQ(rec.edge.ts, c.first_record_ts);
    // The remainder of the stream reads out clean.
    size_t rest = 1;
    while (true) {
      const Status s = reader.Next(&rec, &done);
      ASSERT_TRUE(s.ok()) << s.ToString();
      if (done) break;
      ++rest;
    }
    EXPECT_EQ(rest, 40 - c.first_arrival_index);
  }
}

TEST(TelBinarySeek, PastEndIsCleanDone) {
  const std::string tel =
      Serialize(SeekDataset(), BinaryOptions(/*varint=*/true, 4));
  std::istringstream in(tel);
  StreamReader reader(in, "seek.tel");
  ASSERT_TRUE(reader.Init().ok());
  ASSERT_TRUE(reader.SeekToTimestamp(391).ok());
  EXPECT_EQ(reader.first_arrival_index(), 40u);
  StreamRecord rec;
  bool done = false;
  ASSERT_TRUE(reader.Next(&rec, &done).ok());
  EXPECT_TRUE(done);
}

TEST(TelBinarySeek, RefusedForTextAndExplicitAndPipes) {
  // Text framing has no index.
  std::istringstream text("tel 1 undirected vertices=2\ne 0 1 5\n");
  StreamReader text_reader(text, "t.tel");
  ASSERT_TRUE(text_reader.Init().ok());
  Status s = text_reader.SeekToTimestamp(5);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("binary"), std::string::npos);

  // Explicit-expiry streams cannot resume mid-file.
  TelWriteOptions opts = BinaryOptions(/*varint=*/true, 4);
  opts.explicit_expiry = true;
  const std::string explicit_tel = Serialize(SeekDataset(), opts);
  std::istringstream ein(explicit_tel);
  StreamReader ereader(ein, "e.tel");
  ASSERT_TRUE(ereader.Init().ok());
  s = ereader.SeekToTimestamp(5);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("explicit-expiry"), std::string::npos);

  // A non-seekable stream (a pipe) is refused up front, not mid-read.
  class PipeBuf : public std::streambuf {
   public:
    explicit PipeBuf(const std::string& s) : data_(s) {
      char* p = data_.data();
      setg(p, p, p + data_.size());
    }
    // No seekoff/seekpos overrides: seeks fail, as on a real pipe.

   private:
    std::string data_;
  };
  PipeBuf buf(Serialize(SeekDataset(), BinaryOptions(true, 4)));
  std::istream pin(&buf);
  StreamReader preader(pin, "<pipe>");
  ASSERT_TRUE(preader.Init().ok());
  s = preader.SeekToTimestamp(5);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("seekable"), std::string::npos) << s.ToString();
  // The pipe reader still streams fine sequentially.
  StreamRecord rec;
  bool done = false;
  ASSERT_TRUE(preader.Next(&rec, &done).ok());
  EXPECT_FALSE(done);
}

// --- Flight recorder ------------------------------------------------------

TEST(FlightRecorder, RingRetainsLastNInOrder) {
  GraphSchema schema;
  schema.directed = false;
  schema.vertex_labels.assign(100, 0);
  FlightRecorder rec(schema, /*window=*/7, /*capacity=*/4);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 0u);
  for (int i = 0; i < 10; ++i) {
    rec.Record(Edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1), i));
    EXPECT_EQ(rec.size(), std::min<size_t>(i + 1, 4));
  }
  EXPECT_EQ(rec.total_recorded(), 10u);

  std::ostringstream out;
  ASSERT_TRUE(rec.DumpTel(out, /*binary=*/false).ok());
  std::istringstream in(out.str());
  TelHeader header;
  auto ds = ReadTelDataset(in, "dump.tel", &header);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(header.window, 7);
  ASSERT_EQ(ds.value().NumEdges(), 4u);
  for (size_t i = 0; i < 4; ++i) {  // oldest retained first: ts 6,7,8,9
    EXPECT_EQ(ds.value().edges[i].ts, static_cast<Timestamp>(6 + i));
    EXPECT_EQ(ds.value().edges[i].src, 6 + i);
  }
}

TEST(FlightRecorder, BinaryDumpMatchesTextDump) {
  GraphSchema schema;
  schema.directed = true;
  schema.vertex_labels = {0, 1, 0};
  FlightRecorder rec(schema, /*window=*/5, /*capacity=*/8);
  rec.Record(Edge(0, 1, 3, 2));
  rec.Record(Edge(1, 2, 4));
  std::ostringstream text_out, bin_out;
  ASSERT_TRUE(rec.DumpTel(text_out, /*binary=*/false).ok());
  ASSERT_TRUE(rec.DumpTel(bin_out, /*binary=*/true).ok());
  std::istringstream tin(text_out.str()), bin(bin_out.str());
  TelHeader th, bh;
  auto tds = ReadTelDataset(tin, "t.tel", &th);
  auto bds = ReadTelDataset(bin, "b.tel", &bh);
  ASSERT_TRUE(tds.ok());
  ASSERT_TRUE(bds.ok()) << bds.status().ToString();
  EXPECT_EQ(th.window, bh.window);
  EXPECT_EQ(tds.value().directed, bds.value().directed);
  EXPECT_EQ(tds.value().vertex_labels, bds.value().vertex_labels);
  ASSERT_EQ(tds.value().NumEdges(), bds.value().NumEdges());
  for (size_t i = 0; i < tds.value().edges.size(); ++i) {
    EXPECT_EQ(tds.value().edges[i].src, bds.value().edges[i].src);
    EXPECT_EQ(tds.value().edges[i].dst, bds.value().edges[i].dst);
    EXPECT_EQ(tds.value().edges[i].ts, bds.value().edges[i].ts);
    EXPECT_EQ(tds.value().edges[i].label, bds.value().edges[i].label);
  }
}

// --- Ingest observability -------------------------------------------------

TEST(TelIngestMetrics, CountersReconcileWithTheStream) {
  const TemporalDataset ds = SmallDataset();
  TelWriteOptions text_opts;
  text_opts.window = 20;
  const std::string text_tel = Serialize(ds, text_opts);
  const std::string bin_tel = Serialize(ds, BinaryOptions(/*varint=*/true));

  for (const bool binary : {false, true}) {
    SCOPED_TRACE(binary ? "binary" : "text");
    const std::string& tel = binary ? bin_tel : text_tel;
    Observability obs;
    std::istringstream in(tel);
    StreamReader reader(in, "metrics.tel");
    reader.set_stage_metrics(&obs.stages());
    ASSERT_TRUE(reader.Init().ok());
    uint64_t records = 0;
    StreamRecord rec;
    bool done = false;
    while (true) {
      ASSERT_TRUE(reader.Next(&rec, &done).ok());
      if (done) break;
      ++records;
    }
    EXPECT_EQ(records, ds.NumEdges());
    const MetricsSnapshot snap = obs.Snapshot();
    EXPECT_EQ(snap.CounterValue("io.ingest_records"), records);
    // Every byte the reader pulled is accounted to io.ingest_bytes. Text
    // reads the whole stream; a sequential binary read stops at the
    // sentinel and never touches the index footer or trailer.
    const uint64_t expected_bytes =
        binary ? tel.size() - kTelTrailerBytes - 8 - kTelIndexEntryBytes
               : tel.size();
    EXPECT_EQ(snap.CounterValue("io.ingest_bytes"), expected_bytes);
    const HistogramSnapshot* parse = snap.FindHistogram("stage.parse_ns");
    ASSERT_NE(parse, nullptr);
    EXPECT_GT(parse->count, 0u);
  }
}

}  // namespace
}  // namespace tcsm
