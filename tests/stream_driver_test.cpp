#include <gtest/gtest.h>

#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

/// Records the exact event sequence an engine observes.
class RecordingEngine : public ContinuousEngine {
 public:
  struct Event {
    bool arrival;
    EdgeId id;
  };

  std::string name() const override { return "recorder"; }
  void OnEdgeArrival(const TemporalEdge& ed) override {
    events.push_back(Event{true, ed.id});
  }
  void OnEdgeExpiry(const TemporalEdge& ed) override {
    events.push_back(Event{false, ed.id});
  }
  size_t EstimateMemoryBytes() const override { return 128; }

  std::vector<Event> events;
};

TemporalDataset ThreeEdges() {
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  for (Timestamp t : {1, 5, 11}) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = 0;
    e.dst = 1;
    e.ts = t;
    ds.edges.push_back(e);
  }
  return ds;
}

TEST(StreamDriver, ExpirationsBeforeArrivalsOnTies) {
  // Window 10: edge@1 expires at 11 — exactly when edge@11 arrives; the
  // expiration must be delivered first (Example II.2 semantics).
  RecordingEngine engine;
  StreamConfig config;
  config.window = 10;
  const StreamResult res = RunStream(ThreeEdges(), config, &engine);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(engine.events.size(), 6u);
  EXPECT_TRUE(engine.events[0].arrival);   // +e0 @1
  EXPECT_TRUE(engine.events[1].arrival);   // +e1 @5
  EXPECT_FALSE(engine.events[2].arrival);  // -e0 @11 (before the arrival)
  EXPECT_EQ(engine.events[2].id, 0u);
  EXPECT_TRUE(engine.events[3].arrival);   // +e2 @11
  EXPECT_FALSE(engine.events[4].arrival);  // -e1 @15
  EXPECT_FALSE(engine.events[5].arrival);  // -e2 @21
}

TEST(StreamDriver, AllEdgesEventuallyExpire) {
  RecordingEngine engine;
  StreamConfig config;
  config.window = 1000;
  const StreamResult res = RunStream(ThreeEdges(), config, &engine);
  EXPECT_EQ(res.events, 6u);
  size_t arrivals = 0;
  for (const auto& e : engine.events) arrivals += e.arrival;
  EXPECT_EQ(arrivals, 3u);
}

TEST(StreamDriver, MaxArrivalsTruncates) {
  RecordingEngine engine;
  StreamConfig config;
  config.window = 1000;
  config.max_arrivals = 2;
  const StreamResult res = RunStream(ThreeEdges(), config, &engine);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.events, 4u);  // 2 arrivals + their 2 expirations
  size_t arrivals = 0;
  for (const auto& e : engine.events) arrivals += e.arrival;
  EXPECT_EQ(arrivals, 2u);
}

TEST(StreamDriver, CountsMatchesFromEngineCounters) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TcmEngine engine(q, testlib::RunningExampleSchema());
  StreamConfig config;
  config.window = 10;
  // No sink attached: counters must still track matches.
  const StreamResult res = RunStream(testlib::RunningExampleDataset(),
                                     config, &engine);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.occurred, 6u);
  EXPECT_EQ(res.expired, 6u);
  EXPECT_EQ(engine.counters().occurred, 6u);
}

TEST(StreamDriver, PeakMemorySampled) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TcmEngine engine(q, testlib::RunningExampleSchema());
  StreamConfig config;
  config.window = 10;
  config.memory_sample_every = 1;
  const StreamResult res = RunStream(testlib::RunningExampleDataset(),
                                     config, &engine);
  EXPECT_GT(res.peak_memory_bytes, 0u);
}

}  // namespace
}  // namespace tcsm
