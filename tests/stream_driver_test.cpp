#include <gtest/gtest.h>

#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

/// Records the exact event sequence an engine observes from the context.
class RecordingEngine : public ContinuousEngine {
 public:
  struct Event {
    bool arrival;
    EdgeId id;
  };

  std::string name() const override { return "recorder"; }
  void OnEdgeInserted(const TemporalEdge& ed) override {
    events.push_back(Event{true, ed.id});
  }
  void OnEdgeExpiring(const TemporalEdge& ed) override {
    events.push_back(Event{false, ed.id});
  }
  size_t EstimateMemoryBytes() const override { return 128; }

  std::vector<Event> events;
};

TemporalDataset ThreeEdges() {
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  for (Timestamp t : {1, 5, 11}) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = 0;
    e.dst = 1;
    e.ts = t;
    ds.edges.push_back(e);
  }
  return ds;
}

GraphSchema TwoVertexSchema() { return GraphSchema{false, {0, 0}}; }

TEST(StreamDriver, ExpirationsBeforeArrivalsOnTies) {
  // Window 10: edge@1 expires at 11 — exactly when edge@11 arrives; the
  // expiration must be delivered first (Example II.2 semantics).
  SharedStreamContext ctx(TwoVertexSchema());
  RecordingEngine engine;
  ctx.Attach(&engine);
  StreamConfig config;
  config.window = 10;
  const StreamResult res = RunStream(ThreeEdges(), config, &ctx);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(engine.events.size(), 6u);
  EXPECT_TRUE(engine.events[0].arrival);   // +e0 @1
  EXPECT_TRUE(engine.events[1].arrival);   // +e1 @5
  EXPECT_FALSE(engine.events[2].arrival);  // -e0 @11 (before the arrival)
  EXPECT_EQ(engine.events[2].id, 0u);
  EXPECT_TRUE(engine.events[3].arrival);   // +e2 @11
  EXPECT_FALSE(engine.events[4].arrival);  // -e1 @15
  EXPECT_FALSE(engine.events[5].arrival);  // -e2 @21
}

TEST(StreamDriver, AllEdgesEventuallyExpire) {
  SharedStreamContext ctx(TwoVertexSchema());
  RecordingEngine engine;
  ctx.Attach(&engine);
  StreamConfig config;
  config.window = 1000;
  const StreamResult res = RunStream(ThreeEdges(), config, &ctx);
  EXPECT_EQ(res.events, 6u);
  size_t arrivals = 0;
  for (const auto& e : engine.events) arrivals += e.arrival;
  EXPECT_EQ(arrivals, 3u);
}

TEST(StreamDriver, MaxArrivalsTruncates) {
  SharedStreamContext ctx(TwoVertexSchema());
  RecordingEngine engine;
  ctx.Attach(&engine);
  StreamConfig config;
  config.window = 1000;
  config.max_arrivals = 2;
  const StreamResult res = RunStream(ThreeEdges(), config, &ctx);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.events, 4u);  // 2 arrivals + their 2 expirations
  size_t arrivals = 0;
  for (const auto& e : engine.events) arrivals += e.arrival;
  EXPECT_EQ(arrivals, 2u);
}

TEST(StreamDriver, CountsMatchesFromEngineCounters) {
  const QueryGraph q = testlib::RunningExampleQuery();
  SingleQueryContext<TcmEngine> run(q, testlib::RunningExampleSchema());
  StreamConfig config;
  config.window = 10;
  // No sink attached: counters must still track matches.
  const StreamResult res =
      RunStream(testlib::RunningExampleDataset(), config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.occurred, 6u);
  EXPECT_EQ(res.expired, 6u);
  EXPECT_EQ(run.engine().counters().occurred, 6u);
  // The run's scan-selectivity totals surface on the result; nothing can
  // match more entries than were scanned.
  EXPECT_GE(res.adj_entries_scanned, res.adj_entries_matched);
  EXPECT_GT(res.adj_entries_scanned, 0u);
}

TEST(StreamDriver, PeakMemorySampled) {
  const QueryGraph q = testlib::RunningExampleQuery();
  SingleQueryContext<TcmEngine> run(q, testlib::RunningExampleSchema());
  StreamConfig config;
  config.window = 10;
  config.memory_sample_every = 1;
  const StreamResult res =
      RunStream(testlib::RunningExampleDataset(), config, &run);
  EXPECT_GT(res.peak_memory_bytes, 0u);
}

TEST(StreamDriver, RejectsTimestampsThatCouldOverflowExpiry) {
  // Programmatically built datasets bypass the .tel parser's timestamp
  // cap, so the driver itself must refuse magnitudes where ts + window
  // would overflow signed 64-bit instead of computing UB.
  SharedStreamContext ctx(TwoVertexSchema());
  RecordingEngine engine;
  ctx.Attach(&engine);

  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  TemporalEdge e;
  e.id = 0;
  e.src = 0;
  e.dst = 1;
  e.ts = kMaxStreamTimestamp + 1;
  ds.edges.push_back(e);

  StreamConfig config;
  config.window = 10;
  const StreamResult res = RunStream(ds, config, &ctx);
  EXPECT_FALSE(res.completed);
  EXPECT_FALSE(res.error.ok());
  EXPECT_EQ(res.events, 0u);
  EXPECT_TRUE(engine.events.empty());

  // An oversized window is refused the same way, even with tame edges.
  StreamConfig huge_window;
  huge_window.window = kMaxStreamTimestamp + 1;
  const StreamResult res2 = RunStream(ThreeEdges(), huge_window, &ctx);
  EXPECT_FALSE(res2.completed);
  EXPECT_FALSE(res2.error.ok());
  EXPECT_EQ(res2.events, 0u);

  // Timestamps and windows at the cap itself are fine: the expiry sum
  // kMaxStreamTimestamp + kMaxStreamTimestamp stays below int64 max.
  SharedStreamContext ok_ctx(TwoVertexSchema());
  TemporalDataset ok_ds;
  ok_ds.vertex_labels = {0, 0};
  TemporalEdge near;
  near.id = 0;
  near.src = 0;
  near.dst = 1;
  near.ts = kMaxStreamTimestamp;
  ok_ds.edges.push_back(near);
  StreamConfig at_cap;
  at_cap.window = kMaxStreamTimestamp;
  const StreamResult res3 = RunStream(ok_ds, at_cap, &ok_ctx);
  EXPECT_TRUE(res3.completed);
  EXPECT_TRUE(res3.error.ok());
  EXPECT_EQ(res3.events, 2u);  // the arrival and its expiration
}

/// Memory estimate proportional to the live-edge count: unlike the real
/// engines (whose pools never shrink), this makes the mid-stream window
/// high-water point genuinely larger than the end state.
class LiveWeightedEngine : public ContinuousEngine {
 public:
  std::string name() const override { return "live-weighted"; }
  void OnEdgeInserted(const TemporalEdge&) override { ++live_; }
  void OnEdgeExpiring(const TemporalEdge&) override { --live_; }
  size_t EstimateMemoryBytes() const override { return live_ << 20; }

 private:
  size_t live_ = 0;
};

TEST(StreamDriver, PeakMemoryCatchesHighWaterBetweenSamples) {
  // 20 arrivals, then a pure-expiry tail: the peak (20 live edges) sits
  // between the adaptive sample points, and every sample the old cadence
  // took after the tail began would see a shrinking window. The driver
  // must sample the high-water point explicitly.
  SharedStreamContext ctx(TwoVertexSchema());
  LiveWeightedEngine engine;
  ctx.Attach(&engine);
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  for (size_t i = 0; i < 20; ++i) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(i);
    e.src = 0;
    e.dst = 1;
    e.ts = static_cast<Timestamp>(i + 1);
    ds.edges.push_back(e);
  }
  StreamConfig config;
  config.window = 1000;  // nothing expires until the stream is exhausted
  const StreamResult res = RunStream(ds, config, &ctx);
  ASSERT_TRUE(res.completed);
  EXPECT_GE(res.peak_memory_bytes, size_t{20} << 20);
}

/// Context that records the size of every batch the driver hands it.
class BatchRecordingContext : public SharedStreamContext {
 public:
  using SharedStreamContext::SharedStreamContext;
  void OnEdgeArrivalBatch(const TemporalEdge* edges, size_t count) override {
    arrival_batches.push_back(count);
    SharedStreamContext::OnEdgeArrivalBatch(edges, count);
  }
  void OnEdgeExpiryBatch(const TemporalEdge* edges, size_t count) override {
    expiry_batches.push_back(count);
    SharedStreamContext::OnEdgeExpiryBatch(edges, count);
  }
  std::vector<size_t> arrival_batches;
  std::vector<size_t> expiry_batches;
};

TEST(StreamDriver, CoalescesSameTimestampRuns) {
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  const Timestamp times[] = {1, 1, 1, 2, 2, 9};
  for (size_t i = 0; i < 6; ++i) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(i);
    e.src = 0;
    e.dst = 1;
    e.ts = times[i];
    ds.edges.push_back(e);
  }
  StreamConfig config;
  config.window = 100;
  {
    BatchRecordingContext ctx(TwoVertexSchema());
    RecordingEngine engine;
    ctx.Attach(&engine);
    const StreamResult res = RunStream(ds, config, &ctx);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.events, 12u);
    EXPECT_EQ(ctx.arrival_batches, (std::vector<size_t>{3, 2, 1}));
    EXPECT_EQ(ctx.expiry_batches, (std::vector<size_t>{3, 2, 1}));
    ASSERT_EQ(engine.events.size(), 12u);  // per-edge hooks, batched driver
  }
  {
    // The cap splits runs; 1 restores the one-call-per-event behavior.
    BatchRecordingContext ctx(TwoVertexSchema());
    config.max_batch = 2;
    const StreamResult res = RunStream(ds, config, &ctx);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(ctx.arrival_batches, (std::vector<size_t>{2, 1, 2, 1}));
  }
  {
    BatchRecordingContext ctx(TwoVertexSchema());
    config.max_batch = 1;
    const StreamResult res = RunStream(ds, config, &ctx);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(ctx.arrival_batches, std::vector<size_t>(6, 1));
    EXPECT_EQ(ctx.expiry_batches, std::vector<size_t>(6, 1));
  }
}

TEST(SharedStreamContext, OutOfOrderExpiryIsSupported) {
  // Out-of-order expiry (not produced by the stream driver, but allowed on
  // the context) is an O(1) unlink in the slot-recycled storage — no
  // linear-scan fallback exists anymore.
  SharedStreamContext ctx(GraphSchema{false, {0, 0, 0}});
  const TemporalDataset ds = [] {
    TemporalDataset d;
    d.vertex_labels = {0, 0, 0};
    const std::pair<VertexId, VertexId> ends[] = {{0, 1}, {0, 1}, {1, 2}};
    for (size_t i = 0; i < 3; ++i) {
      TemporalEdge e;
      e.id = static_cast<EdgeId>(i);
      e.src = ends[i].first;
      e.dst = ends[i].second;
      e.ts = static_cast<Timestamp>(i + 1);
      d.edges.push_back(e);
    }
    return d;
  }();
  for (const TemporalEdge& e : ds.edges) ctx.OnEdgeArrival(e);
  ctx.OnEdgeExpiry(ds.edges[1]);  // middle of vertex 0/1 adjacency
  EXPECT_FALSE(ctx.graph().Alive(1));
  EXPECT_TRUE(ctx.graph().Alive(0));
  EXPECT_EQ(ctx.graph().NumAliveEdges(), 2u);
  ctx.OnEdgeExpiry(ds.edges[0]);
  ctx.OnEdgeExpiry(ds.edges[2]);
  EXPECT_EQ(ctx.graph().NumAliveEdges(), 0u);
}

TEST(SharedStreamContext, OneGraphManyEngines) {
  // Two engines attached to one context see the same canonical graph and
  // the context accounts its bytes once.
  const QueryGraph q = testlib::RunningExampleQuery();
  SharedStreamContext ctx(testlib::RunningExampleSchema());
  TcmEngine a(q, ctx.graph());
  TcmEngine b(q, ctx.graph());
  ctx.Attach(&a);
  ctx.Attach(&b);
  EXPECT_EQ(&a.graph(), &ctx.graph());
  EXPECT_EQ(&b.graph(), &ctx.graph());

  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) ctx.OnEdgeArrival(e);
  EXPECT_EQ(ctx.graph().NumAliveEdges(), ds.edges.size());
  EXPECT_EQ(a.counters().occurred, b.counters().occurred);
  EXPECT_EQ(ctx.AggregateCounters().occurred, 2 * a.counters().occurred);
  EXPECT_EQ(ctx.EstimateMemoryBytes(),
            ctx.graph().EstimateMemoryBytes() + a.EstimateMemoryBytes() +
                b.EstimateMemoryBytes());
}

}  // namespace
}  // namespace tcsm
