#include <gtest/gtest.h>

#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

/// Records the exact event sequence an engine observes from the context.
class RecordingEngine : public ContinuousEngine {
 public:
  struct Event {
    bool arrival;
    EdgeId id;
  };

  std::string name() const override { return "recorder"; }
  void OnEdgeInserted(const TemporalEdge& ed) override {
    events.push_back(Event{true, ed.id});
  }
  void OnEdgeExpiring(const TemporalEdge& ed) override {
    events.push_back(Event{false, ed.id});
  }
  size_t EstimateMemoryBytes() const override { return 128; }

  std::vector<Event> events;
};

TemporalDataset ThreeEdges() {
  TemporalDataset ds;
  ds.vertex_labels = {0, 0};
  for (Timestamp t : {1, 5, 11}) {
    TemporalEdge e;
    e.id = static_cast<EdgeId>(ds.edges.size());
    e.src = 0;
    e.dst = 1;
    e.ts = t;
    ds.edges.push_back(e);
  }
  return ds;
}

GraphSchema TwoVertexSchema() { return GraphSchema{false, {0, 0}}; }

TEST(StreamDriver, ExpirationsBeforeArrivalsOnTies) {
  // Window 10: edge@1 expires at 11 — exactly when edge@11 arrives; the
  // expiration must be delivered first (Example II.2 semantics).
  SharedStreamContext ctx(TwoVertexSchema());
  RecordingEngine engine;
  ctx.Attach(&engine);
  StreamConfig config;
  config.window = 10;
  const StreamResult res = RunStream(ThreeEdges(), config, &ctx);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(engine.events.size(), 6u);
  EXPECT_TRUE(engine.events[0].arrival);   // +e0 @1
  EXPECT_TRUE(engine.events[1].arrival);   // +e1 @5
  EXPECT_FALSE(engine.events[2].arrival);  // -e0 @11 (before the arrival)
  EXPECT_EQ(engine.events[2].id, 0u);
  EXPECT_TRUE(engine.events[3].arrival);   // +e2 @11
  EXPECT_FALSE(engine.events[4].arrival);  // -e1 @15
  EXPECT_FALSE(engine.events[5].arrival);  // -e2 @21
}

TEST(StreamDriver, AllEdgesEventuallyExpire) {
  SharedStreamContext ctx(TwoVertexSchema());
  RecordingEngine engine;
  ctx.Attach(&engine);
  StreamConfig config;
  config.window = 1000;
  const StreamResult res = RunStream(ThreeEdges(), config, &ctx);
  EXPECT_EQ(res.events, 6u);
  size_t arrivals = 0;
  for (const auto& e : engine.events) arrivals += e.arrival;
  EXPECT_EQ(arrivals, 3u);
}

TEST(StreamDriver, MaxArrivalsTruncates) {
  SharedStreamContext ctx(TwoVertexSchema());
  RecordingEngine engine;
  ctx.Attach(&engine);
  StreamConfig config;
  config.window = 1000;
  config.max_arrivals = 2;
  const StreamResult res = RunStream(ThreeEdges(), config, &ctx);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.events, 4u);  // 2 arrivals + their 2 expirations
  size_t arrivals = 0;
  for (const auto& e : engine.events) arrivals += e.arrival;
  EXPECT_EQ(arrivals, 2u);
}

TEST(StreamDriver, CountsMatchesFromEngineCounters) {
  const QueryGraph q = testlib::RunningExampleQuery();
  SingleQueryContext<TcmEngine> run(q, testlib::RunningExampleSchema());
  StreamConfig config;
  config.window = 10;
  // No sink attached: counters must still track matches.
  const StreamResult res =
      RunStream(testlib::RunningExampleDataset(), config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.occurred, 6u);
  EXPECT_EQ(res.expired, 6u);
  EXPECT_EQ(run.engine().counters().occurred, 6u);
  // The run's scan-selectivity totals surface on the result; nothing can
  // match more entries than were scanned.
  EXPECT_GE(res.adj_entries_scanned, res.adj_entries_matched);
  EXPECT_GT(res.adj_entries_scanned, 0u);
}

TEST(StreamDriver, PeakMemorySampled) {
  const QueryGraph q = testlib::RunningExampleQuery();
  SingleQueryContext<TcmEngine> run(q, testlib::RunningExampleSchema());
  StreamConfig config;
  config.window = 10;
  config.memory_sample_every = 1;
  const StreamResult res =
      RunStream(testlib::RunningExampleDataset(), config, &run);
  EXPECT_GT(res.peak_memory_bytes, 0u);
}

TEST(SharedStreamContext, OutOfOrderExpiryIsSupported) {
  // Out-of-order expiry (not produced by the stream driver, but allowed on
  // the context) is an O(1) unlink in the slot-recycled storage — no
  // linear-scan fallback exists anymore.
  SharedStreamContext ctx(GraphSchema{false, {0, 0, 0}});
  const TemporalDataset ds = [] {
    TemporalDataset d;
    d.vertex_labels = {0, 0, 0};
    const std::pair<VertexId, VertexId> ends[] = {{0, 1}, {0, 1}, {1, 2}};
    for (size_t i = 0; i < 3; ++i) {
      TemporalEdge e;
      e.id = static_cast<EdgeId>(i);
      e.src = ends[i].first;
      e.dst = ends[i].second;
      e.ts = static_cast<Timestamp>(i + 1);
      d.edges.push_back(e);
    }
    return d;
  }();
  for (const TemporalEdge& e : ds.edges) ctx.OnEdgeArrival(e);
  ctx.OnEdgeExpiry(ds.edges[1]);  // middle of vertex 0/1 adjacency
  EXPECT_FALSE(ctx.graph().Alive(1));
  EXPECT_TRUE(ctx.graph().Alive(0));
  EXPECT_EQ(ctx.graph().NumAliveEdges(), 2u);
  ctx.OnEdgeExpiry(ds.edges[0]);
  ctx.OnEdgeExpiry(ds.edges[2]);
  EXPECT_EQ(ctx.graph().NumAliveEdges(), 0u);
}

TEST(SharedStreamContext, OneGraphManyEngines) {
  // Two engines attached to one context see the same canonical graph and
  // the context accounts its bytes once.
  const QueryGraph q = testlib::RunningExampleQuery();
  SharedStreamContext ctx(testlib::RunningExampleSchema());
  TcmEngine a(q, ctx.graph());
  TcmEngine b(q, ctx.graph());
  ctx.Attach(&a);
  ctx.Attach(&b);
  EXPECT_EQ(&a.graph(), &ctx.graph());
  EXPECT_EQ(&b.graph(), &ctx.graph());

  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) ctx.OnEdgeArrival(e);
  EXPECT_EQ(ctx.graph().NumAliveEdges(), ds.edges.size());
  EXPECT_EQ(a.counters().occurred, b.counters().occurred);
  EXPECT_EQ(ctx.AggregateCounters().occurred, 2 * a.counters().occurred);
  EXPECT_EQ(ctx.EstimateMemoryBytes(),
            ctx.graph().EstimateMemoryBytes() + a.EstimateMemoryBytes() +
                b.EstimateMemoryBytes());
}

}  // namespace
}  // namespace tcsm
