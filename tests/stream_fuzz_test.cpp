// Randomized differential stream fuzzer: every scenario of the catalogue
// (tests/testlib/fuzz_scenarios.h) is replayed through TCM under all 2^3
// pruning-flag ablations, the filter ablations, and the three baseline
// engines, asserting after every event that the reported occurred/expired
// embedding sets equal the brute-force snapshot oracle's diff
// (tests/testlib/stream_checker.h). The multi-query scenario additionally
// replays each entry through a MultiQueryEngine and diffs every tagged
// per-query stream against an independently run single-query engine, and
// the parallel scenario replays a 4-query fan-out at 2/4/8 threads and
// requires byte-identical per-query streams versus serial execution. Any
// divergence reproduces from the scenario name, which encodes the seed.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "common/rng.h"
#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "obs/observability.h"
#include "querygen/query_generator.h"
#include "shard/sharded_multi_engine.h"
#include "testlib/fuzz_scenarios.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

using testlib::DefaultFuzzScenarios;
using testlib::FuzzScenario;

std::string ScenarioName(const ::testing::TestParamInfo<FuzzScenario>& info) {
  return info.param.name;
}

class StreamFuzz : public ::testing::TestWithParam<FuzzScenario> {
 protected:
  /// Generates the scenario's dataset and query; fails the test (rather
  /// than skipping) when generation is impossible so a scenario can never
  /// silently stop covering anything.
  void SetUp() override {
    const FuzzScenario& sc = GetParam();
    dataset_ = GenerateSynthetic(sc.spec);
    ASSERT_GT(dataset_.NumEdges(), 0u);
    Rng rng(sc.seed ^ 0x9e3779b97f4a7c15ull);
    ASSERT_TRUE(GenerateQuery(dataset_, sc.query, &rng, &query_))
        << "scenario " << sc.name << " cannot extract a "
        << sc.query.num_edges << "-edge query; re-tune the catalogue";
    schema_ = GraphSchema{dataset_.directed, dataset_.vertex_labels};
  }

  /// Replays the scenario through the rig and records the first run's
  /// total occurred count as the cross-engine reference.
  template <typename EngineT>
  void Check(SingleQueryContext<EngineT>* run) {
    const uint64_t occurred = testlib::CheckEngineAgainstOracle(
        dataset_, query_, GetParam().window, run);
    if (HasFailure()) return;
    if (!have_reference_) {
      have_reference_ = true;
      reference_ = occurred;
    } else {
      EXPECT_EQ(occurred, reference_)
          << run->engine().name() << ": total occurred count diverged";
    }
  }

  TemporalDataset dataset_;
  QueryGraph query_;
  GraphSchema schema_;
  bool have_reference_ = false;
  uint64_t reference_ = 0;
};

// All 2^3 combinations of the three pruning techniques of Section V.
TEST_P(StreamFuzz, TcmPruningAblations) {
  for (int bits = 0; bits < 8; ++bits) {
    TcmConfig config;
    config.prune_no_relation = (bits & 1) != 0;
    config.prune_uniform = (bits & 2) != 0;
    config.prune_failing_set = (bits & 4) != 0;
    SingleQueryContext<TcmEngine> run(query_, schema_, config);
    SCOPED_TRACE("pruning bits " + std::to_string(bits));
    Check(&run);
    if (HasFailure()) return;
  }
}

// Filtering/DAG design ablations: TC-matchable filtering off (SymBi-style
// DCS), reverse-DAG filtering off, and greedy-root DAG selection.
TEST_P(StreamFuzz, TcmFilterAblations) {
  {
    SingleQueryContext<TcmEngine> run(query_, schema_);
    Check(&run);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.use_tc_filter = false;
    SingleQueryContext<TcmEngine> run(query_, schema_, config);
    SCOPED_TRACE("tc filter off");
    Check(&run);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.use_reverse_filter = false;
    SingleQueryContext<TcmEngine> run(query_, schema_, config);
    SCOPED_TRACE("reverse filter off");
    Check(&run);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.use_best_dag = false;
    SingleQueryContext<TcmEngine> run(query_, schema_, config);
    SCOPED_TRACE("greedy dag");
    Check(&run);
    if (HasFailure()) return;
  }
  {
    // Storage ablation: flat adjacency scans must be byte-equivalent to
    // the partitioned default (same verdicts, more entries visited).
    TcmConfig config;
    config.partitioned_adjacency = false;
    SingleQueryContext<TcmEngine> run(query_, schema_, config);
    SCOPED_TRACE("flat adjacency scan");
    Check(&run);
    if (HasFailure()) return;
  }
  {
    // Prefilter ablation: skipping provably-empty bucket scans via the
    // Bloom signature masks must be byte-equivalent to always scanning.
    TcmConfig config;
    config.use_bloom_prefilter = false;
    SingleQueryContext<TcmEngine> run(query_, schema_, config);
    SCOPED_TRACE("bloom prefilter off");
    Check(&run);
  }
}

// The Bloom prefilter may only skip scans that match nothing: the matched
// counter is identical with it on or off, and the scanned counter never
// grows. On directed multi-label streams the masks are direction-aware,
// so scans of buckets holding only wrong-direction entries are skipped
// and the scanned count strictly drops.
TEST_P(StreamFuzz, PrefilterOnlySkipsEmptyScans) {
  StreamConfig config;
  config.window = GetParam().window;

  TcmConfig off;
  off.use_bloom_prefilter = false;
  SingleQueryContext<TcmEngine> run_off(query_, schema_, off);
  const StreamResult res_off = RunStream(dataset_, config, &run_off);
  ASSERT_TRUE(res_off.completed);

  SingleQueryContext<TcmEngine> run_on(query_, schema_);
  const StreamResult res_on = RunStream(dataset_, config, &run_on);
  ASSERT_TRUE(res_on.completed);

  EXPECT_EQ(res_on.adj_entries_matched, res_off.adj_entries_matched)
      << "prefilter skipped a scan that would have matched";
  EXPECT_LE(res_on.adj_entries_scanned, res_off.adj_entries_scanned);
  if (GetParam().spec.directed && GetParam().spec.num_edge_labels > 1) {
    // Directed buckets mix both orientations; a multi-label stream always
    // produces some wrong-direction-only buckets for the masks to skip.
    EXPECT_LT(res_on.adj_entries_scanned, res_off.adj_entries_scanned)
        << "direction-aware masks skipped nothing on a directed "
           "multi-label stream";
  }
}

// The three competing engines must report the same per-event sets.
TEST_P(StreamFuzz, BaselinesMatchOracle) {
  {
    SingleQueryContext<TcmEngine> run(query_, schema_);
    Check(&run);
    if (HasFailure()) return;
  }
  {
    SingleQueryContext<PostFilterEngine> run(query_, schema_);
    Check(&run);
    if (HasFailure()) return;
  }
  {
    SingleQueryContext<LocalEnumEngine> run(query_, schema_);
    Check(&run);
    if (HasFailure()) return;
  }
  {
    SingleQueryContext<TimingEngine> run(query_, schema_);
    Check(&run);
  }
}

// Gap-bound pruning ablation (DESIGN.md §12): with prune_gap_bounds off
// the ECM windows ignore gap constraints and complete embeddings are
// post-filtered instead. Both modes must match the oracle exactly, and
// in-search pruning may only ever shrink the explored tree. On scenarios
// without gaps the two configurations are the identical code path.
TEST_P(StreamFuzz, GapPruningMatchesPostFilter) {
  SingleQueryContext<TcmEngine> pruned(query_, schema_);
  Check(&pruned);
  if (HasFailure()) return;

  TcmConfig config;
  config.prune_gap_bounds = false;
  SingleQueryContext<TcmEngine> post(query_, schema_, config);
  SCOPED_TRACE("gap post-filter mode");
  Check(&post);
  if (HasFailure()) return;

  EXPECT_LE(pruned.engine().counters().search_nodes,
            post.engine().counters().search_nodes)
      << "gap pruning enlarged the search tree";
  if (query_.gaps().empty()) {
    EXPECT_EQ(pruned.engine().counters().search_nodes,
              post.engine().counters().search_nodes)
        << "prune_gap_bounds changed the search on a gap-free query";
  }
}

// Multi-query differential: a MultiQueryEngine over {q, q-variant} on the
// one shared graph must emit, per query, exactly the match stream of an
// independently run single-query TCM engine with its own context.
TEST_P(StreamFuzz, MultiQueryMatchesSingleQueryEngines) {
  // Variant query from an independent walk seed; if the dataset cannot
  // yield one, duplicating the primary still exercises the fan-out.
  QueryGraph variant;
  Rng rng(GetParam().seed ^ 0x517cc1b727220a95ull);
  if (!GenerateQuery(dataset_, GetParam().query, &rng, &variant)) {
    variant = query_;
  }
  const std::vector<QueryGraph> queries{query_, variant};

  struct TaggedStreams : MultiMatchSink {
    std::array<std::vector<std::pair<Embedding, MatchKind>>, 2> streams;
    void OnMatch(size_t query_index, const Embedding& embedding,
                 MatchKind kind, uint64_t multiplicity) override {
      ASSERT_LT(query_index, streams.size());
      for (uint64_t i = 0; i < multiplicity; ++i) {
        streams[query_index].emplace_back(embedding, kind);
      }
    }
  } tagged;

  MultiQueryEngine multi(queries, schema_);
  multi.set_multi_sink(&tagged);
  StreamConfig config;
  config.window = GetParam().window;
  const StreamResult res = RunStream(dataset_, config, &multi);
  ASSERT_TRUE(res.completed);

  uint64_t total = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SingleQueryContext<TcmEngine> solo(queries[qi], schema_);
    CollectingSink sink;
    solo.engine().set_sink(&sink);
    const StreamResult solo_res = RunStream(dataset_, config, &solo);
    ASSERT_TRUE(solo_res.completed);
    EXPECT_EQ(tagged.streams[qi], sink.matches())
        << "tagged stream of query " << qi
        << " diverged from the single-query engine";
    total += solo_res.occurred + solo_res.expired;
  }
  EXPECT_EQ(res.occurred + res.expired, total);
}

// Parallel differential: the same multi-query fan-out sharded across 2,
// 4, and 8 threads by the ParallelStreamContext machinery must emit, per
// query, exactly the match stream of the serial MultiQueryEngine —
// occurred and expired sets byte-identical *including order* (the
// deterministic-merge contract of DESIGN.md §6).
TEST_P(StreamFuzz, ParallelMatchesSerialMultiQuery) {
  // A 4-query set: the primary plus three independent walk variants
  // (falling back to earlier queries where the dataset yields no new
  // walk), so the shards are non-trivial at every thread count.
  std::vector<QueryGraph> queries{query_};
  for (uint64_t k = 1; k <= 3; ++k) {
    QueryGraph variant;
    Rng rng(GetParam().seed ^ (0x517cc1b727220a95ull * k));
    if (GenerateQuery(dataset_, GetParam().query, &rng, &variant)) {
      queries.push_back(variant);
    } else {
      queries.push_back(queries[k - 1]);
    }
  }

  struct TaggedStreams : MultiMatchSink {
    explicit TaggedStreams(size_t n) : streams(n) {}
    std::vector<std::vector<std::pair<Embedding, MatchKind>>> streams;
    void OnMatch(size_t query_index, const Embedding& embedding,
                 MatchKind kind, uint64_t multiplicity) override {
      ASSERT_LT(query_index, streams.size());
      for (uint64_t i = 0; i < multiplicity; ++i) {
        streams[query_index].emplace_back(embedding, kind);
      }
    }
  };

  StreamConfig config;
  config.window = GetParam().window;

  TaggedStreams serial(queries.size());
  uint64_t serial_total = 0;
  {
    MultiQueryEngine engine(queries, schema_);
    engine.set_multi_sink(&serial);
    const StreamResult res = RunStream(dataset_, config, &engine);
    ASSERT_TRUE(res.completed);
    ASSERT_EQ(res.num_threads, 1u);
    serial_total = res.occurred + res.expired;
  }

  for (const size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    TaggedStreams parallel(queries.size());
    MultiQueryEngine engine(queries, schema_, TcmConfig{}, threads);
    engine.set_multi_sink(&parallel);
    const StreamResult res = RunStream(dataset_, config, &engine);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.num_threads, threads);
    EXPECT_EQ(res.occurred + res.expired, serial_total);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(parallel.streams[qi], serial.streams[qi])
          << "per-query stream of query " << qi
          << " diverged from serial execution";
    }
  }
}

// Sharded differential: the same 4-query fan-out over a vertex-
// partitioned ShardedStreamContext at 2, 4, and 8 shards, each at 1 and
// 4 threads, must emit exactly the serial MultiQueryEngine's match
// stream — per query AND globally, byte-identical including order (the
// shard-then-attach deterministic merge with contiguous engine placement
// of DESIGN.md §10). Scan counters must match too: mirrored owner
// adjacency makes every engine read — candidate scans included —
// identical to the unsharded run, not merely the final embedding sets.
TEST_P(StreamFuzz, ShardedMatchesSerial) {
  std::vector<QueryGraph> queries{query_};
  for (uint64_t k = 1; k <= 3; ++k) {
    QueryGraph variant;
    Rng rng(GetParam().seed ^ (0x517cc1b727220a95ull * k));
    if (GenerateQuery(dataset_, GetParam().query, &rng, &variant)) {
      queries.push_back(variant);
    } else {
      queries.push_back(queries[k - 1]);
    }
  }

  struct TaggedStreams : MultiMatchSink {
    explicit TaggedStreams(size_t n) : streams(n) {}
    std::vector<std::vector<std::pair<Embedding, MatchKind>>> streams;
    /// The global interleaving across queries, for the whole-stream
    /// byte-identity check (per-query equality alone would not catch a
    /// merge-order bug).
    std::vector<std::tuple<size_t, Embedding, MatchKind>> global;
    void OnMatch(size_t query_index, const Embedding& embedding,
                 MatchKind kind, uint64_t multiplicity) override {
      ASSERT_LT(query_index, streams.size());
      for (uint64_t i = 0; i < multiplicity; ++i) {
        streams[query_index].emplace_back(embedding, kind);
        global.emplace_back(query_index, embedding, kind);
      }
    }
  };

  StreamConfig config;
  config.window = GetParam().window;

  TaggedStreams serial(queries.size());
  StreamResult serial_res;
  {
    MultiQueryEngine engine(queries, schema_);
    engine.set_multi_sink(&serial);
    serial_res = RunStream(dataset_, config, &engine);
    ASSERT_TRUE(serial_res.completed);
    ASSERT_EQ(serial_res.num_shards, 1u);
  }

  for (const size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                   std::to_string(threads));
      TaggedStreams sharded(queries.size());
      ShardedMultiQueryEngine engine(queries, schema_, shards, TcmConfig{},
                                     threads);
      engine.set_multi_sink(&sharded);
      const StreamResult res = RunStream(dataset_, config, &engine);
      ASSERT_TRUE(res.completed);
      EXPECT_EQ(res.num_shards, shards);
      EXPECT_EQ(res.num_threads, threads);
      EXPECT_EQ(res.occurred + res.expired,
                serial_res.occurred + serial_res.expired);
      EXPECT_EQ(res.adj_entries_scanned, serial_res.adj_entries_scanned)
          << "sharded execution scanned different adjacency entries";
      EXPECT_EQ(res.adj_entries_matched, serial_res.adj_entries_matched);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        EXPECT_EQ(sharded.streams[qi], serial.streams[qi])
            << "per-query stream of query " << qi
            << " diverged from serial execution";
      }
      EXPECT_EQ(sharded.global, serial.global)
          << "global match interleaving diverged from serial execution";
    }
  }
}

// Batching differential: driving the same 4-query fan-out with
// micro-batching disabled (max_batch = 1, the historical one-call-per-
// event behavior) and with the default batching must emit byte-identical
// per-query match streams, serially and through the pipelined parallel
// fan-out (DESIGN.md §9). On the same_ts_* scenarios the batches are
// real; elsewhere this degenerates to the single-event path.
TEST_P(StreamFuzz, BatchedMatchesUnbatchedDelivery) {
  std::vector<QueryGraph> queries{query_};
  for (uint64_t k = 1; k <= 3; ++k) {
    QueryGraph variant;
    Rng rng(GetParam().seed ^ (0x517cc1b727220a95ull * k));
    if (GenerateQuery(dataset_, GetParam().query, &rng, &variant)) {
      queries.push_back(variant);
    } else {
      queries.push_back(queries[k - 1]);
    }
  }

  struct TaggedStreams : MultiMatchSink {
    explicit TaggedStreams(size_t n) : streams(n) {}
    std::vector<std::vector<std::pair<Embedding, MatchKind>>> streams;
    void OnMatch(size_t query_index, const Embedding& embedding,
                 MatchKind kind, uint64_t multiplicity) override {
      ASSERT_LT(query_index, streams.size());
      for (uint64_t i = 0; i < multiplicity; ++i) {
        streams[query_index].emplace_back(embedding, kind);
      }
    }
  };

  StreamConfig unbatched;
  unbatched.window = GetParam().window;
  unbatched.max_batch = 1;
  StreamConfig batched = unbatched;
  batched.max_batch = 0;  // default coalescing

  TaggedStreams reference(queries.size());
  {
    MultiQueryEngine engine(queries, schema_);
    engine.set_multi_sink(&reference);
    const StreamResult res = RunStream(dataset_, unbatched, &engine);
    ASSERT_TRUE(res.completed);
  }

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    TaggedStreams run(queries.size());
    MultiQueryEngine engine(queries, schema_, TcmConfig{}, threads);
    engine.set_multi_sink(&run);
    const StreamResult res = RunStream(dataset_, batched, &engine);
    ASSERT_TRUE(res.completed);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(run.streams[qi], reference.streams[qi])
          << "per-query stream of query " << qi
          << " diverged under batched delivery";
    }
  }
}

// Observability differential: running with a metrics registry attached
// (no tracing — DESIGN.md §11's zero-perturbation contract) must emit
// byte-identical per-query match streams, and the registry's event
// accounting must reconcile exactly with the StreamResult totals —
// through the parallel fan-out at 1 and 4 threads and the sharded
// context at 2 and 4 shards.
TEST_P(StreamFuzz, MetricsDoNotPerturbMatching) {
  std::vector<QueryGraph> queries{query_};
  for (uint64_t k = 1; k <= 3; ++k) {
    QueryGraph variant;
    Rng rng(GetParam().seed ^ (0x517cc1b727220a95ull * k));
    if (GenerateQuery(dataset_, GetParam().query, &rng, &variant)) {
      queries.push_back(variant);
    } else {
      queries.push_back(queries[k - 1]);
    }
  }

  struct TaggedStreams : MultiMatchSink {
    explicit TaggedStreams(size_t n) : streams(n) {}
    std::vector<std::vector<std::pair<Embedding, MatchKind>>> streams;
    void OnMatch(size_t query_index, const Embedding& embedding,
                 MatchKind kind, uint64_t multiplicity) override {
      ASSERT_LT(query_index, streams.size());
      for (uint64_t i = 0; i < multiplicity; ++i) {
        streams[query_index].emplace_back(embedding, kind);
      }
    }
  };

  StreamConfig plain;
  plain.window = GetParam().window;

  TaggedStreams reference(queries.size());
  {
    MultiQueryEngine engine(queries, schema_);
    engine.set_multi_sink(&reference);
    const StreamResult res = RunStream(dataset_, plain, &engine);
    ASSERT_TRUE(res.completed);
  }

  const auto check = [&](const StreamResult& res, const TaggedStreams& run,
                         const Observability& obs) {
    ASSERT_TRUE(res.completed);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(run.streams[qi], reference.streams[qi])
          << "per-query stream of query " << qi << " diverged with metrics on";
    }
    const MetricsSnapshot snap = obs.Snapshot();
    EXPECT_EQ(snap.CounterValue("stream.arrivals") +
                  snap.CounterValue("stream.expirations"),
              res.events)
        << "per-stage event counters do not reconcile with the result";
    EXPECT_EQ(snap.GaugeValue("engine.occurred"),
              static_cast<int64_t>(res.occurred));
    EXPECT_EQ(snap.GaugeValue("engine.expired"),
              static_cast<int64_t>(res.expired));
    EXPECT_EQ(snap.GaugeValue("stream.peak_event_index"),
              static_cast<int64_t>(res.peak_memory_event_index));
    EXPECT_LE(res.peak_memory_event_index, res.events);
  };

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    Observability obs;
    StreamConfig config = plain;
    config.obs = &obs;
    TaggedStreams run(queries.size());
    MultiQueryEngine engine(queries, schema_, TcmConfig{}, threads);
    engine.set_multi_sink(&run);
    const StreamResult res = RunStream(dataset_, config, &engine);
    check(res, run, obs);
  }

  for (const size_t shards : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    Observability obs;
    StreamConfig config = plain;
    config.obs = &obs;
    TaggedStreams run(queries.size());
    ShardedMultiQueryEngine engine(queries, schema_, shards, TcmConfig{},
                                   /*num_threads=*/4);
    engine.set_multi_sink(&run);
    const StreamResult res = RunStream(dataset_, config, &engine);
    check(res, run, obs);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalogue, StreamFuzz,
                         ::testing::ValuesIn(DefaultFuzzScenarios()),
                         ScenarioName);

}  // namespace
}  // namespace tcsm
