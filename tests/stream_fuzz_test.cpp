// Randomized differential stream fuzzer: every scenario of the catalogue
// (tests/testlib/fuzz_scenarios.h) is replayed through TCM under all 2^3
// pruning-flag ablations, the filter ablations, and the three baseline
// engines, asserting after every event that the reported occurred/expired
// embedding sets equal the brute-force snapshot oracle's diff
// (tests/testlib/stream_checker.h). Any divergence reproduces from the
// scenario name, which encodes the seed.
#include <gtest/gtest.h>

#include <string>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "common/rng.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"
#include "testlib/fuzz_scenarios.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

using testlib::DefaultFuzzScenarios;
using testlib::FuzzScenario;

std::string ScenarioName(const ::testing::TestParamInfo<FuzzScenario>& info) {
  return info.param.name;
}

class StreamFuzz : public ::testing::TestWithParam<FuzzScenario> {
 protected:
  /// Generates the scenario's dataset and query; fails the test (rather
  /// than skipping) when generation is impossible so a scenario can never
  /// silently stop covering anything.
  void SetUp() override {
    const FuzzScenario& sc = GetParam();
    dataset_ = GenerateSynthetic(sc.spec);
    ASSERT_GT(dataset_.NumEdges(), 0u);
    Rng rng(sc.seed ^ 0x9e3779b97f4a7c15ull);
    ASSERT_TRUE(GenerateQuery(dataset_, sc.query, &rng, &query_))
        << "scenario " << sc.name << " cannot extract a "
        << sc.query.num_edges << "-edge query; re-tune the catalogue";
    schema_ = GraphSchema{dataset_.directed, dataset_.vertex_labels};
  }

  /// Replays the scenario through `engine` and records the first run's
  /// total occurred count as the cross-engine reference.
  void Check(ContinuousEngine* engine) {
    const uint64_t occurred = testlib::CheckEngineAgainstOracle(
        dataset_, query_, GetParam().window, engine);
    if (HasFailure()) return;
    if (!have_reference_) {
      have_reference_ = true;
      reference_ = occurred;
    } else {
      EXPECT_EQ(occurred, reference_) << engine->name()
                                      << ": total occurred count diverged";
    }
  }

  TemporalDataset dataset_;
  QueryGraph query_;
  GraphSchema schema_;
  bool have_reference_ = false;
  uint64_t reference_ = 0;
};

// All 2^3 combinations of the three pruning techniques of Section V.
TEST_P(StreamFuzz, TcmPruningAblations) {
  for (int bits = 0; bits < 8; ++bits) {
    TcmConfig config;
    config.prune_no_relation = (bits & 1) != 0;
    config.prune_uniform = (bits & 2) != 0;
    config.prune_failing_set = (bits & 4) != 0;
    TcmEngine engine(query_, schema_, config);
    SCOPED_TRACE("pruning bits " + std::to_string(bits));
    Check(&engine);
    if (HasFailure()) return;
  }
}

// Filtering/DAG design ablations: TC-matchable filtering off (SymBi-style
// DCS), reverse-DAG filtering off, and greedy-root DAG selection.
TEST_P(StreamFuzz, TcmFilterAblations) {
  {
    TcmEngine engine(query_, schema_);
    Check(&engine);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.use_tc_filter = false;
    TcmEngine engine(query_, schema_, config);
    SCOPED_TRACE("tc filter off");
    Check(&engine);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.use_reverse_filter = false;
    TcmEngine engine(query_, schema_, config);
    SCOPED_TRACE("reverse filter off");
    Check(&engine);
    if (HasFailure()) return;
  }
  {
    TcmConfig config;
    config.use_best_dag = false;
    TcmEngine engine(query_, schema_, config);
    SCOPED_TRACE("greedy dag");
    Check(&engine);
  }
}

// The three competing engines must report the same per-event sets.
TEST_P(StreamFuzz, BaselinesMatchOracle) {
  {
    TcmEngine engine(query_, schema_);
    Check(&engine);
    if (HasFailure()) return;
  }
  {
    PostFilterEngine engine(query_, schema_);
    Check(&engine);
    if (HasFailure()) return;
  }
  {
    LocalEnumEngine engine(query_, schema_);
    Check(&engine);
    if (HasFailure()) return;
  }
  {
    TimingEngine engine(query_, schema_);
    Check(&engine);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalogue, StreamFuzz,
                         ::testing::ValuesIn(DefaultFuzzScenarios()),
                         ScenarioName);

}  // namespace
}  // namespace tcsm
