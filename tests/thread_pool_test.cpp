// Unit tests for the exec/ worker pool: lifecycle, the ParallelFor
// completion barrier, exception propagation to the submitting thread, and
// the single-thread bypass (no workers, body inline on the caller).
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tcsm {
namespace {

TEST(ThreadPoolTest, StartupShutdownWithoutWork) {
  // Pools of every shape construct and join cleanly with no job posted.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), std::max<size_t>(n, 1));
    EXPECT_EQ(pool.pooled(), n > 1);
  }
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForIsACompletionBarrier) {
  ThreadPool pool(4);
  // Bodies stagger their finish; after ParallelFor returns every body
  // must have fully completed (the counter equals n, never less).
  std::atomic<size_t> completed{0};
  const size_t n = 64;
  pool.ParallelFor(n, [&](size_t i) {
    if (i % 7 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), n);
  // The pool is reusable: a second job sees a clean slate.
  completed.store(0);
  pool.ParallelFor(n, [&](size_t) { completed.fetch_add(1); });
  EXPECT_EQ(completed.load(), n);
}

TEST(ThreadPoolTest, ActuallyRunsConcurrently) {
  // With 4 threads (3 workers + caller) and 4 bodies that each wait for
  // all 4 to have started, the job can only finish if the bodies really
  // run on distinct threads at the same time.
  ThreadPool pool(4);
  std::atomic<size_t> started{0};
  pool.ParallelFor(4, [&](size_t) {
    started.fetch_add(1);
    while (started.load() < 4) std::this_thread::yield();
  });
  EXPECT_EQ(started.load(), 4u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToSubmitter) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                  ran.fetch_add(1);
                                }),
               std::runtime_error);
  // The throw happened after the barrier: nothing is still running, and
  // the pool stays usable.
  std::atomic<size_t> after{0};
  pool.ParallelFor(50, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50u);
}

TEST(ThreadPoolTest, SingleThreadBypassStaysOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.pooled());
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.ParallelFor(32, [&](size_t) { seen.insert(std::this_thread::get_id()); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
  // Inline mode propagates exceptions directly too, and skips the rest
  // of the loop (fail-fast, like the pooled cancel).
  size_t ran = 0;
  EXPECT_THROW(pool.ParallelFor(10,
                                [&](size_t i) {
                                  if (i == 3) throw std::runtime_error("x");
                                  ++ran;
                                }),
               std::runtime_error);
  EXPECT_EQ(ran, 3u);
}

TEST(ThreadPoolTest, EmptyJobIsANoOp) {
  ThreadPool pool(4);
  bool touched = false;
  pool.ParallelFor(0, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

}  // namespace
}  // namespace tcsm
