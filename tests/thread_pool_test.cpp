// Unit tests for the exec/ worker pool: lifecycle, the ParallelFor
// completion barrier, exception propagation to the submitting thread, and
// the single-thread bypass (no workers, body inline on the caller).
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace tcsm {
namespace {

TEST(ThreadPoolTest, StartupShutdownWithoutWork) {
  // Pools of every shape construct and join cleanly with no job posted.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), std::max<size_t>(n, 1));
    EXPECT_EQ(pool.pooled(), n > 1);
  }
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForIsACompletionBarrier) {
  ThreadPool pool(4);
  // Bodies stagger their finish; after ParallelFor returns every body
  // must have fully completed (the counter equals n, never less).
  std::atomic<size_t> completed{0};
  const size_t n = 64;
  pool.ParallelFor(n, [&](size_t i) {
    if (i % 7 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), n);
  // The pool is reusable: a second job sees a clean slate.
  completed.store(0);
  pool.ParallelFor(n, [&](size_t) { completed.fetch_add(1); });
  EXPECT_EQ(completed.load(), n);
}

TEST(ThreadPoolTest, ActuallyRunsConcurrently) {
  // With 4 threads (3 workers + caller) and 4 bodies that each wait for
  // all 4 to have started, the job can only finish if the bodies really
  // run on distinct threads at the same time.
  ThreadPool pool(4);
  std::atomic<size_t> started{0};
  pool.ParallelFor(4, [&](size_t) {
    started.fetch_add(1);
    while (started.load() < 4) std::this_thread::yield();
  });
  EXPECT_EQ(started.load(), 4u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToSubmitter) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                  ran.fetch_add(1);
                                }),
               std::runtime_error);
  // The throw happened after the barrier: nothing is still running, and
  // the pool stays usable.
  std::atomic<size_t> after{0};
  pool.ParallelFor(50, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50u);
}

TEST(ThreadPoolTest, SingleThreadBypassStaysOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.pooled());
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.ParallelFor(32, [&](size_t) { seen.insert(std::this_thread::get_id()); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
  // Inline mode propagates exceptions directly too, and skips the rest
  // of the loop (fail-fast, like the pooled cancel).
  size_t ran = 0;
  EXPECT_THROW(pool.ParallelFor(10,
                                [&](size_t i) {
                                  if (i == 3) throw std::runtime_error("x");
                                  ++ran;
                                }),
               std::runtime_error);
  EXPECT_EQ(ran, 3u);
}

TEST(ThreadPoolTest, EmptyJobIsANoOp) {
  ThreadPool pool(4);
  bool touched = false;
  pool.ParallelFor(0, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, PipelineForRunsEveryStepIndexOnceInStepOrder) {
  ThreadPool pool(4);
  const size_t steps = 37;
  const size_t n = 11;
  std::vector<std::atomic<int>> hits(steps * n);
  // settle_seen[k] is read by the step-(k+1) bodies: PipelineFor promises
  // settle(k) completed — and is visible — before any of them start.
  std::vector<std::atomic<int>> settle_seen(steps + 1);
  settle_seen[0].store(1);
  pool.PipelineFor(
      steps, n,
      [&](size_t k, size_t i) {
        EXPECT_EQ(settle_seen[k].load(), 1) << "step " << k << " opened "
                                            << "before settle(k-1)";
        hits[k * n + i].fetch_add(1);
      },
      [&](size_t k) {
        // All of step k's bodies must be complete here.
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[k * n + i].load(), 1) << "step " << k << " index "
                                               << i;
        }
        settle_seen[k + 1].store(1);
      });
  for (size_t j = 0; j < steps * n; ++j) EXPECT_EQ(hits[j].load(), 1);
  EXPECT_EQ(settle_seen[steps].load(), 1);
  // The pool is reusable afterwards, for both job kinds.
  std::atomic<size_t> after{0};
  pool.ParallelFor(50, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50u);
  pool.PipelineFor(2, 4, [&](size_t, size_t) { after.fetch_add(1); },
                   [](size_t) {});
  EXPECT_EQ(after.load(), 58u);
}

TEST(ThreadPoolTest, PipelineForBodyExceptionSkipsRemainingSettles) {
  ThreadPool pool(4);
  std::atomic<size_t> settled{0};
  std::atomic<size_t> bodies{0};
  EXPECT_THROW(pool.PipelineFor(8, 6,
                                [&](size_t k, size_t) {
                                  if (k == 2) {
                                    throw std::runtime_error("boom");
                                  }
                                  bodies.fetch_add(1);
                                },
                                [&](size_t) { settled.fetch_add(1); }),
               std::runtime_error);
  // Steps 0 and 1 settled; the failing step and everything after are
  // abandoned (bodies may be skipped, settles must be).
  EXPECT_EQ(settled.load(), 2u);
  std::atomic<size_t> after{0};
  pool.ParallelFor(10, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10u);
}

TEST(ThreadPoolTest, PipelineForSettleExceptionPropagates) {
  ThreadPool pool(4);
  std::atomic<size_t> settled{0};
  EXPECT_THROW(pool.PipelineFor(5, 3, [&](size_t, size_t) {},
                                [&](size_t k) {
                                  if (k == 1) {
                                    throw std::runtime_error("boom");
                                  }
                                  settled.fetch_add(1);
                                }),
               std::runtime_error);
  EXPECT_EQ(settled.load(), 1u);
}

TEST(ThreadPoolTest, PipelineForInlineBypass) {
  // No workers: the pipeline runs inline on the caller, steps strictly in
  // order, exceptions propagating directly.
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::pair<size_t, size_t>> order;
  pool.PipelineFor(3, 2,
                   [&](size_t k, size_t i) {
                     EXPECT_EQ(std::this_thread::get_id(), caller);
                     order.emplace_back(k, i);
                   },
                   [&](size_t k) { order.emplace_back(k, size_t{99}); });
  const std::vector<std::pair<size_t, size_t>> want{
      {0, 0}, {0, 1}, {0, 99}, {1, 0}, {1, 1}, {1, 99},
      {2, 0}, {2, 1}, {2, 99}};
  EXPECT_EQ(order, want);
  // n <= 1 takes the same inline path even on a pooled pool.
  ThreadPool pooled(4);
  size_t ran = 0;
  pooled.PipelineFor(4, 1, [&](size_t, size_t) { ++ran; },
                     [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 8u);
}

}  // namespace
}  // namespace tcsm
