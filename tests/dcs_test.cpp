#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "dag/query_dag.h"
#include "dcs/dcs_index.h"
#include "filter/maxmin_index.h"
#include "graph/temporal_graph.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

/// Reference D1/D2 computed from scratch by the recursive definitions over
/// the DCS edge set.
struct DcsOracle {
  const QueryGraph* q;
  const QueryDag* dag;
  const DcsIndex* dcs;
  const TemporalGraph* g;

  bool EdgeBetween(EdgeId qe, VertexId img_u, VertexId img_v) const {
    const auto* plist = dcs->Parallel(qe, img_u, img_v);
    return plist != nullptr && !plist->empty();
  }

  bool D1(VertexId u, VertexId v) const {
    if (q->VertexLabel(u) != g->VertexLabel(v)) return false;
    for (const EdgeId pe : dag->ParentEdges(u)) {
      const VertexId up = dag->ParentOf(pe);
      const QueryEdge& e = q->Edge(pe);
      bool supported = false;
      for (VertexId vp = 0; vp < g->NumVertices() && !supported; ++vp) {
        const VertexId img_u = (e.u == up) ? vp : v;
        const VertexId img_v = (e.u == up) ? v : vp;
        supported = D1(up, vp) && EdgeBetween(pe, img_u, img_v);
      }
      if (!supported) return false;
    }
    return true;
  }

  bool D2(VertexId u, VertexId v) const {
    if (!D1(u, v)) return false;
    for (const EdgeId ce : dag->ChildEdges(u)) {
      const VertexId uc = dag->ChildOf(ce);
      const QueryEdge& e = q->Edge(ce);
      bool supported = false;
      for (VertexId vc = 0; vc < g->NumVertices() && !supported; ++vc) {
        const VertexId img_u = (e.u == u) ? v : vc;
        const VertexId img_v = (e.u == u) ? vc : v;
        supported = D2(uc, vc) && EdgeBetween(ce, img_u, img_v);
      }
      if (!supported) return false;
    }
    return true;
  }
};

TEST(DcsIndex, InsertRemoveRoundTrip) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  DcsIndex dcs(&q, &dag);

  TemporalEdge ed;
  ed.id = 0;
  ed.src = testlib::kV1;
  ed.dst = testlib::kV2;
  ed.ts = 1;
  EXPECT_FALSE(dcs.Contains(testlib::kE1, 0, false));
  dcs.Insert(testlib::kE1, ed, false);
  EXPECT_TRUE(dcs.Contains(testlib::kE1, 0, false));
  EXPECT_EQ(dcs.stats().num_edges, 1u);
  const auto* plist = dcs.Parallel(testlib::kE1, testlib::kV1, testlib::kV2);
  ASSERT_NE(plist, nullptr);
  EXPECT_EQ(plist->size(), 1u);
  dcs.Remove(testlib::kE1, ed, false);
  EXPECT_FALSE(dcs.Contains(testlib::kE1, 0, false));
  EXPECT_EQ(dcs.stats().num_edges, 0u);
  EXPECT_EQ(dcs.Parallel(testlib::kE1, testlib::kV1, testlib::kV2), nullptr);
}

TEST(DcsIndex, ParallelListStaysSorted) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  DcsIndex dcs(&q, &dag);
  const Timestamp ts[] = {5, 1, 9, 3, 7};
  for (size_t i = 0; i < 5; ++i) {
    TemporalEdge ed;
    ed.id = static_cast<EdgeId>(i);
    ed.src = testlib::kV1;
    ed.dst = testlib::kV2;
    ed.ts = ts[i];
    dcs.Insert(testlib::kE1, ed, false);
  }
  const auto* plist = dcs.Parallel(testlib::kE1, testlib::kV1, testlib::kV2);
  ASSERT_NE(plist, nullptr);
  ASSERT_EQ(plist->size(), 5u);
  for (size_t i = 0; i + 1 < plist->size(); ++i) {
    EXPECT_LT((*plist)[i].ts, (*plist)[i + 1].ts);
  }
}

/// Builds a DCS holding every statically feasible pair of the graph (the
/// SymBi baseline configuration).
void FillStatic(const QueryGraph& q, const TemporalGraph& g,
                DcsIndex* dcs) {
  for (EdgeId id = 0; id < g.NumEdgesEver(); ++id) {
    if (!g.Alive(id)) continue;
    for (EdgeId qe = 0; qe < q.NumEdges(); ++qe) {
      for (const bool flip : {false, true}) {
        if (StaticFeasible(q, g, qe, g.Edge(id), flip)) {
          dcs->Insert(qe, g.Edge(id), flip);
        }
      }
    }
  }
}

TEST(DcsIndex, D1D2MatchOracleOnRunningExample) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  TemporalGraph g = testlib::RunningExampleGraph(14);
  DcsIndex dcs(&q, &dag);
  FillStatic(q, g, &dcs);

  const DcsOracle oracle{&q, &dag, &dcs, &g};
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(dcs.D1(u, v), oracle.D1(u, v)) << "u=" << u << " v=" << v;
      EXPECT_EQ(dcs.D2(u, v), oracle.D2(u, v)) << "u=" << u << " v=" << v;
    }
  }
  // Spot checks: the witness embedding vertices are all D2.
  EXPECT_TRUE(dcs.D2(testlib::kU1, testlib::kV1));
  EXPECT_TRUE(dcs.D2(testlib::kU3, testlib::kV4));
  EXPECT_TRUE(dcs.D2(testlib::kU5, testlib::kV7));
  // Wrong label is never a candidate.
  EXPECT_FALSE(dcs.D2(testlib::kU1, testlib::kV2));
}

TEST(DcsIndex, CandidatesMapsReflectEdges) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildDagGreedy(q, testlib::kU1);
  TemporalGraph g = testlib::RunningExampleGraph(14);
  DcsIndex dcs(&q, &dag);
  FillStatic(q, g, &dcs);

  // From (u3, v4) along eps4 (u3 -> u4): candidates are v5 (3 parallel
  // edges: sigma2, sigma3, sigma13).
  const auto* cands = dcs.Candidates(testlib::kE4, testlib::kU3, testlib::kV4);
  ASSERT_NE(cands, nullptr);
  ASSERT_EQ(cands->size(), 1u);
  EXPECT_EQ(cands->begin()->first, testlib::kV5);
  EXPECT_EQ(cands->begin()->second, 3u);
  // Upward: from (u4, v5) along eps4 toward u3.
  const auto* up = dcs.Candidates(testlib::kE4, testlib::kU4, testlib::kV5);
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->count(testlib::kV4), 1u);
}

struct DcsPropertyCase {
  uint64_t seed;
};

class DcsProperty : public ::testing::TestWithParam<DcsPropertyCase> {};

// Random insert/remove sequences: incremental D1/D2 equal a from-scratch
// rebuild after every step.
TEST_P(DcsProperty, IncrementalEqualsRebuild) {
  Rng rng(GetParam().seed);
  const QueryGraph q = testlib::RunningExampleQuery();
  const QueryDag dag = QueryDag::BuildBestDag(q);

  TemporalGraph g;
  const size_t nv = 8;
  for (size_t i = 0; i < nv; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(5)));
  }
  DcsIndex inc(&q, &dag);

  struct Triple {
    EdgeId qe;
    EdgeId id;
    bool flip;
  };
  std::vector<Triple> present;
  std::vector<TemporalEdge> edges;

  for (int step = 0; step < 120; ++step) {
    const bool remove = !present.empty() && rng.NextBool(0.4);
    if (remove) {
      const size_t k = rng.NextBounded(present.size());
      const Triple t = present[k];
      present[k] = present.back();
      present.pop_back();
      inc.Remove(t.qe, edges[t.id], t.flip);
    } else {
      // New data edge with a random feasible (qe, flip).
      const VertexId a = static_cast<VertexId>(rng.NextBounded(nv));
      VertexId b = static_cast<VertexId>(rng.NextBounded(nv));
      if (a == b) b = (b + 1) % nv;
      TemporalEdge ed;
      ed.id = static_cast<EdgeId>(edges.size());
      ed.src = a;
      ed.dst = b;
      ed.ts = step + 1;
      edges.push_back(ed);
      bool inserted = false;
      for (EdgeId qe = 0; qe < q.NumEdges() && !inserted; ++qe) {
        for (const bool flip : {false, true}) {
          if (StaticFeasible(q, g, qe, ed, flip)) {
            inc.Insert(qe, ed, flip);
            present.push_back(Triple{qe, ed.id, flip});
            inserted = true;
            break;
          }
        }
      }
      if (!inserted) edges.pop_back();
    }
    if (step % 10 != 9) continue;
    inc.ValidateInvariantsForTest();
    // Rebuild from scratch and compare.
    DcsIndex fresh(&q, &dag);
    for (const Triple& t : present) fresh.Insert(t.qe, edges[t.id], t.flip);
    EXPECT_EQ(inc.stats().num_edges, fresh.stats().num_edges);
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      for (VertexId v = 0; v < nv; ++v) {
        ASSERT_EQ(inc.D1(u, v), fresh.D1(u, v))
            << "step=" << step << " u=" << u << " v=" << v;
        ASSERT_EQ(inc.D2(u, v), fresh.D2(u, v))
            << "step=" << step << " u=" << u << " v=" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcsProperty,
                         ::testing::Values(DcsPropertyCase{11},
                                           DcsPropertyCase{12},
                                           DcsPropertyCase{13},
                                           DcsPropertyCase{14},
                                           DcsPropertyCase{15},
                                           DcsPropertyCase{16}));

}  // namespace
}  // namespace tcsm
