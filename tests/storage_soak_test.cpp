// Long-stream soak for the slot-recycled storage (ctest label `slow`):
// after 10x window-lengths of churn, the live state must still be
// O(window) — slots are reused, the id ring stays window-sized, and the
// estimated footprint plateaus instead of growing with the stream.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/shared_context.h"
#include "core/tcm_engine.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

namespace tcsm {
namespace {

struct SoakStats {
  size_t peak_alive = 0;
  size_t peak_slots = 0;
  size_t peak_id_span = 0;
  size_t peak_graph_bytes = 0;
};

/// Replays `ds` through `ctx` with FIFO expiry at `window`, sampling the
/// storage gauges after every event.
SoakStats Replay(const TemporalDataset& ds, Timestamp window,
                 SharedStreamContext* ctx) {
  SoakStats stats;
  auto observe = [&] {
    const TemporalGraph& g = ctx->graph();
    stats.peak_alive = std::max(stats.peak_alive, g.NumAliveEdges());
    stats.peak_slots = std::max(stats.peak_slots, g.NumSlots());
    stats.peak_id_span = std::max(stats.peak_id_span, g.IdSpan());
    stats.peak_graph_bytes =
        std::max(stats.peak_graph_bytes, g.EstimateMemoryBytes());
  };
  size_t arr = 0;
  size_t exp = 0;
  const size_t n = ds.edges.size();
  while (arr < n || exp < arr) {
    const bool do_expire =
        exp < arr &&
        (arr >= n || ds.edges[exp].ts + window <= ds.edges[arr].ts);
    if (do_expire) {
      ctx->OnEdgeExpiry(ds.edges[exp++]);
    } else {
      ctx->OnEdgeArrival(ds.edges[arr++]);
    }
    observe();
  }
  return stats;
}

TemporalDataset ChurnDataset(size_t num_edges, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "storage_soak";
  spec.num_vertices = 400;
  spec.num_edges = num_edges;
  spec.num_vertex_labels = 4;
  spec.num_edge_labels = 2;
  spec.avg_parallel_edges = 1.8;
  spec.degree_skew = 0.9;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(StorageSoak, LiveStateStaysBoundedOverTenWindows) {
  // Timestamps are arrival ranks, so a window of `kWindow` holds about
  // that many live edges; 10 * kWindow arrivals churn every slot ~10x.
  constexpr Timestamp kWindow = 20000;
  constexpr size_t kEdges = 10 * kWindow;

  const TemporalDataset ds = ChurnDataset(kEdges, 4242);
  SharedStreamContext ctx(GraphSchema{ds.directed, ds.vertex_labels});
  const SoakStats stats = Replay(ds, kWindow, &ctx);

  // Slot recycling: the pool never outgrows the most edges that were ever
  // live at once, +1 for the deferred-reclaim tombstone.
  EXPECT_LE(stats.peak_slots, stats.peak_alive + 1);
  // The id ring advances with FIFO expiry instead of accumulating.
  EXPECT_LE(stats.peak_id_span, stats.peak_alive + 1);
  // Sanity: the stream actually churned (many generations per slot).
  EXPECT_GE(ctx.graph().NumEdgesEver(), 8 * stats.peak_alive);
  EXPECT_EQ(ctx.graph().NumAliveEdges(), 0u);
  EXPECT_LE(ctx.graph().NumSlots(), stats.peak_alive + 1);
}

TEST(StorageSoak, MemoryPlateausAcrossStreamLengths) {
  // Same window, 1x vs 10x stream length: the peak graph footprint must
  // not scale with the stream. (Identical generator settings keep the
  // in-window shape comparable; the bound is deliberately loose.)
  constexpr Timestamp kWindow = 15000;
  const TemporalDataset short_ds = ChurnDataset(kWindow, 7);
  const TemporalDataset long_ds = ChurnDataset(10 * kWindow, 7);

  SharedStreamContext short_ctx(
      GraphSchema{short_ds.directed, short_ds.vertex_labels});
  const SoakStats short_stats = Replay(short_ds, kWindow, &short_ctx);

  SharedStreamContext long_ctx(
      GraphSchema{long_ds.directed, long_ds.vertex_labels});
  const SoakStats long_stats = Replay(long_ds, kWindow, &long_ctx);

  ASSERT_GT(short_stats.peak_graph_bytes, 0u);
  EXPECT_LE(long_stats.peak_graph_bytes, 2 * short_stats.peak_graph_bytes);
  EXPECT_LE(long_stats.peak_slots, long_stats.peak_alive + 1);
}

TEST(StorageSoak, EngineAttachedChurnKeepsDifferentialInvariants) {
  // With a TCM engine attached, 10 windows of churn must leave the DCS
  // internally consistent (exhaustive invariant validation) and the graph
  // fully drained — EdgeId-keyed engine state survives slot recycling.
  constexpr Timestamp kWindow = 2500;
  const TemporalDataset ds = ChurnDataset(10 * kWindow, 99);
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  opt.window = kWindow;
  Rng rng(1234);
  QueryGraph query;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &query));

  SingleQueryContext<TcmEngine> run(
      query, GraphSchema{ds.directed, ds.vertex_labels});
  const SoakStats stats = Replay(ds, kWindow, &run);
  EXPECT_LE(stats.peak_slots, stats.peak_alive + 1);
  EXPECT_EQ(run.graph().NumAliveEdges(), 0u);
  run.engine().dcs().ValidateInvariantsForTest();
}

}  // namespace
}  // namespace tcsm
