#include <gtest/gtest.h>

#include <map>

#include "core/multi_engine.h"
#include "core/stream_driver.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

class TaggingCollector : public MultiMatchSink {
 public:
  void OnMatch(size_t query_index, const Embedding&, MatchKind kind,
               uint64_t multiplicity) override {
    if (kind == MatchKind::kOccurred) occurred[query_index] += multiplicity;
  }
  std::map<size_t, uint64_t> occurred;
};

QueryGraph SingleEdgeQuery(Label a, Label b) {
  QueryGraph q;
  q.AddVertex(a);
  q.AddVertex(b);
  q.AddEdge(0, 1);
  return q;
}

TEST(MultiQueryEngine, FansOutToAllQueries) {
  // Query 0: the running-example pattern; queries 1/2: single edges with
  // specific endpoint labels.
  std::vector<QueryGraph> queries;
  queries.push_back(testlib::RunningExampleQuery());
  queries.push_back(SingleEdgeQuery(0, 1));  // v1--v2 edges: s1, s6
  queries.push_back(SingleEdgeQuery(2, 3));  // v4--v5: s2, s3, s13

  MultiQueryEngine engine(queries, testlib::RunningExampleSchema());
  TaggingCollector sink;
  engine.set_multi_sink(&sink);
  StreamConfig config;
  config.window = 1000;
  const StreamResult res =
      RunStream(testlib::RunningExampleDataset(), config, &engine);
  ASSERT_TRUE(res.completed);

  EXPECT_EQ(sink.occurred[0], 16u);
  EXPECT_EQ(sink.occurred[1], 2u);
  EXPECT_EQ(sink.occurred[2], 3u);
  EXPECT_EQ(res.occurred, 16u + 2u + 3u);  // aggregated counters
  EXPECT_EQ(engine.NumQueries(), 3u);
  EXPECT_EQ(engine.QueryCounters(1).occurred, 2u);
}

TEST(MultiQueryEngine, MatchesSingleEngineResults) {
  std::vector<QueryGraph> queries{testlib::RunningExampleQuery(),
                                  testlib::RunningExampleQuery()};
  MultiQueryEngine multi(queries, testlib::RunningExampleSchema());
  TaggingCollector sink;
  multi.set_multi_sink(&sink);
  StreamConfig config;
  config.window = 10;
  const StreamResult res =
      RunStream(testlib::RunningExampleDataset(), config, &multi);
  ASSERT_TRUE(res.completed);
  // Duplicated query: both instances see the same 6 windowed matches.
  EXPECT_EQ(sink.occurred[0], 6u);
  EXPECT_EQ(sink.occurred[1], 6u);
}

TEST(MultiQueryEngine, SharesOneGraphAcrossQueries) {
  // Every per-query engine is a view of the one context-owned graph.
  std::vector<QueryGraph> queries(16, testlib::RunningExampleQuery());
  MultiQueryEngine multi(queries, testlib::RunningExampleSchema());
  for (size_t i = 0; i < multi.NumQueries(); ++i) {
    EXPECT_EQ(&multi.QueryEngine(i).graph(), &multi.graph());
  }
}

TEST(MultiQueryEngine, MemoryAggregates) {
  // Shared-graph accounting: N queries cost one graph plus N index states,
  // so the footprint must grow sub-linearly in N — with identical queries,
  // exactly 15 graph copies cheaper than the per-engine-copy baseline.
  std::vector<QueryGraph> one{testlib::RunningExampleQuery()};
  std::vector<QueryGraph> sixteen(16, testlib::RunningExampleQuery());
  MultiQueryEngine small(one, testlib::RunningExampleSchema());
  MultiQueryEngine big(sixteen, testlib::RunningExampleSchema());

  // Fill the window so the graph holds live edges.
  const TemporalDataset ds = testlib::RunningExampleDataset();
  for (const TemporalEdge& e : ds.edges) {
    small.OnEdgeArrival(e);
    big.OnEdgeArrival(e);
  }

  const size_t mem1 = small.EstimateMemoryBytes();
  const size_t mem16 = big.EstimateMemoryBytes();
  const size_t graph_bytes = big.graph().EstimateMemoryBytes();
  ASSERT_GT(graph_bytes, 0u);
  EXPECT_GT(mem16, mem1);
  EXPECT_LT(mem16, 16 * mem1);  // sub-linear growth
  // Identical queries build identical per-query indexes, so the only
  // difference from 16 independent copies is the 15 elided graphs.
  // (Written addition-only so a regression can't wrap the unsigned math.)
  EXPECT_EQ(mem16 + 15 * graph_bytes, 16 * mem1);
}

}  // namespace
}  // namespace tcsm
