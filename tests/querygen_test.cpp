#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "datasets/presets.h"
#include "datasets/synthetic.h"
#include "querygen/query_generator.h"

namespace tcsm {
namespace {

TemporalDataset SmallDataset(uint64_t seed) {
  SyntheticSpec spec;
  spec.num_vertices = 60;
  spec.num_edges = 900;
  spec.num_vertex_labels = 3;
  spec.avg_parallel_edges = 2.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(QueryGen, ProducesRequestedSizeAndValidity) {
  const TemporalDataset ds = SmallDataset(1);
  Rng rng(42);
  for (const size_t m : {3u, 5u, 7u, 9u}) {
    QueryGenOptions opt;
    opt.num_edges = m;
    opt.density = 0.5;
    QueryGraph q;
    ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q)) << "m=" << m;
    EXPECT_EQ(q.NumEdges(), m);
    EXPECT_TRUE(q.Validate().ok());
    // Labels must come from the data graph's label set.
    for (VertexId v = 0; v < q.NumVertices(); ++v) {
      EXPECT_LT(q.VertexLabel(v), 3u);
    }
  }
}

TEST(QueryGen, DensityEndpointsExact) {
  const TemporalDataset ds = SmallDataset(2);
  Rng rng(7);
  QueryGenOptions opt;
  opt.num_edges = 6;
  opt.density = 0.0;
  QueryGraph q0;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q0));
  EXPECT_EQ(q0.NumOrderPairs(), 0u);

  opt.density = 1.0;
  QueryGraph q1;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q1));
  EXPECT_NEAR(q1.OrderDensity(), 1.0, 1e-9);
}

TEST(QueryGen, IntermediateDensityClose) {
  const TemporalDataset ds = SmallDataset(3);
  Rng rng(11);
  for (const double d : {0.25, 0.5, 0.75}) {
    QueryGenOptions opt;
    opt.num_edges = 8;
    opt.density = d;
    QueryGraph q;
    ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));
    // Transitive closure can overshoot; the paper itself only asks for
    // "densities close to" the target.
    EXPECT_GE(q.OrderDensity(), d - 0.05);
    EXPECT_LE(q.OrderDensity(), d + 0.3);
  }
}

TEST(QueryGen, TotalOrderConsistentWithWitnessTimestamps) {
  const TemporalDataset ds = SmallDataset(4);
  Rng rng(13);
  QueryGenOptions opt;
  opt.num_edges = 5;
  opt.density = 1.0;
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));
  // A total order on 5 edges: exactly C(5,2) pairs, no cycles by
  // construction (witness timestamps are distinct ranks).
  EXPECT_EQ(q.NumOrderPairs(), 10u);
}

TEST(QueryGen, WitnessEmbeddingOccursInStream) {
  // With window-confined walks, streaming the dataset with that window
  // must produce at least one match (the witness).
  const TemporalDataset ds = SmallDataset(5);
  Rng rng(17);
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 1.0;
  opt.window = 150;
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));

  SingleQueryContext<TcmEngine> run(q,
                                    GraphSchema{ds.directed, ds.vertex_labels});
  CountingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 150;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.occurred, 0u);
}

TEST(QueryGen, DirectedQueriesFollowDataDirection) {
  SyntheticSpec spec;
  spec.num_vertices = 40;
  spec.num_edges = 600;
  spec.directed = true;
  spec.seed = 6;
  const TemporalDataset ds = GenerateSynthetic(spec);
  Rng rng(19);
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 0.5;
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));
  EXPECT_TRUE(q.directed());
}

TEST(QueryGen, QuerySetSkipsFailures) {
  // An impossible size on a tiny dataset yields an empty set, not a crash.
  TemporalDataset tiny;
  tiny.vertex_labels = {0, 0};
  TemporalEdge e;
  e.id = 0;
  e.src = 0;
  e.dst = 1;
  e.ts = 1;
  tiny.edges.push_back(e);
  QueryGenOptions opt;
  opt.num_edges = 5;
  opt.max_attempts = 3;
  const auto set = GenerateQuerySet(tiny, opt, 4, 1);
  EXPECT_TRUE(set.empty());

  const TemporalDataset ds = SmallDataset(7);
  QueryGenOptions ok;
  ok.num_edges = 4;
  const auto set2 = GenerateQuerySet(ds, ok, 5, 2);
  EXPECT_EQ(set2.size(), 5u);
}

TEST(QueryGen, WorksOnAllPresets) {
  for (const std::string& name : PresetNames()) {
    const TemporalDataset ds = MakePreset(name, 0.2);
    QueryGenOptions opt;
    opt.num_edges = 5;
    opt.density = 0.5;
    opt.window = static_cast<Timestamp>(ds.NumEdges() / 2);
    Rng rng(23);
    QueryGraph q;
    EXPECT_TRUE(GenerateQuery(ds, opt, &rng, &q)) << name;
  }
}


TEST(QueryGen, FamilySharesTopologyAcrossDensities) {
  const TemporalDataset ds = SmallDataset(8);
  Rng rng(29);
  QueryGenOptions opt;
  opt.num_edges = 6;
  std::vector<QueryGraph> family;
  ASSERT_TRUE(GenerateQueryWithOrders(ds, opt, {0.0, 0.25, 0.5, 0.75, 1.0},
                                      &rng, &family));
  ASSERT_EQ(family.size(), 5u);
  // Identical topology: same vertices, labels, and edges everywhere.
  for (size_t d = 1; d < family.size(); ++d) {
    ASSERT_EQ(family[d].NumVertices(), family[0].NumVertices());
    ASSERT_EQ(family[d].NumEdges(), family[0].NumEdges());
    for (VertexId v = 0; v < family[0].NumVertices(); ++v) {
      EXPECT_EQ(family[d].VertexLabel(v), family[0].VertexLabel(v));
    }
    for (EdgeId e = 0; e < family[0].NumEdges(); ++e) {
      EXPECT_EQ(family[d].Edge(e).u, family[0].Edge(e).u);
      EXPECT_EQ(family[d].Edge(e).v, family[0].Edge(e).v);
      EXPECT_EQ(family[d].Edge(e).elabel, family[0].Edge(e).elabel);
    }
  }
  // Orders hit the endpoints exactly and grow monotonically-ish.
  EXPECT_EQ(family[0].NumOrderPairs(), 0u);
  EXPECT_NEAR(family[4].OrderDensity(), 1.0, 1e-9);
  EXPECT_LE(family[1].NumOrderPairs(), family[3].NumOrderPairs());
}

TEST(QueryGen, FamilyOrdersConsistentWithOneWitness) {
  // Every density's order must embed into the same witness (the sorted
  // walk edges), so a stream containing the walk satisfies all of them.
  const TemporalDataset ds = SmallDataset(9);
  Rng rng(31);
  QueryGenOptions opt;
  opt.num_edges = 5;
  opt.window = 200;
  std::vector<QueryGraph> family;
  ASSERT_TRUE(
      GenerateQueryWithOrders(ds, opt, {0.5, 1.0}, &rng, &family));
  // The total order (density 1) must contain the 0.5 order as a subset.
  for (EdgeId a = 0; a < family[0].NumEdges(); ++a) {
    EXPECT_EQ(family[0].After(a) & ~family[1].After(a), 0u)
        << "density-0.5 pair not in the total order";
  }
}

TEST(QueryGen, GapsFollowWitness) {
  const TemporalDataset ds = SmallDataset(10);
  Rng rng(37);
  QueryGenOptions opt;
  opt.num_edges = 5;
  opt.density = 0.0;
  opt.gap_probability = 1.0;
  opt.gap_slack = 3;
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));
  // Probability 1: every adjacent witness pair becomes a gap.
  ASSERT_EQ(q.gaps().size(), opt.num_edges - 1);
  for (const GapConstraint& gc : q.gaps()) {
    EXPECT_LE(gc.min_gap, gc.max_gap);
    // Bounds are the witnessed difference +/- slack (min clamped at 0).
    EXPECT_LE(gc.max_gap - gc.min_gap, 2 * opt.gap_slack);
    if (gc.min_gap >= 1) {
      EXPECT_TRUE(HasBit(q.After(gc.e1), gc.e2))
          << "gap with min >= 1 did not fold into the order";
    }
  }
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryGen, AbsenceGeneration) {
  const TemporalDataset ds = SmallDataset(11);
  Rng rng(41);
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.num_absence = 3;
  opt.absence_delta = 7;
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));
  ASSERT_EQ(q.absences().size(), 3u);
  for (const AbsencePredicate& p : q.absences()) {
    EXPECT_NE(p.u, p.v);
    EXPECT_LT(p.u, q.NumVertices());
    EXPECT_LT(p.v, q.NumVertices());
    EXPECT_EQ(p.delta, 7);
  }
}

TEST(QueryGen, WitnessSurvivesGapBounds) {
  // Gap bounds are derived from the witness walk itself, so the
  // window-confined stream still produces at least one match.
  const TemporalDataset ds = SmallDataset(12);
  Rng rng(43);
  QueryGenOptions opt;
  opt.num_edges = 4;
  opt.density = 1.0;
  opt.window = 150;
  opt.gap_probability = 1.0;
  opt.gap_slack = 5;
  QueryGraph q;
  ASSERT_TRUE(GenerateQuery(ds, opt, &rng, &q));
  ASSERT_FALSE(q.gaps().empty());

  SingleQueryContext<TcmEngine> run(q,
                                    GraphSchema{ds.directed, ds.vertex_labels});
  CountingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 150;
  const StreamResult res = RunStream(ds, config, &run);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.occurred, 0u);
}

}  // namespace
}  // namespace tcsm
