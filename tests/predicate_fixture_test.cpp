// Hand-worked pinned fixtures for the temporal predicate extensions
// (DESIGN.md §12): the exact deferred match streams below are derived by
// hand in the comments and asserted byte-for-byte, so any change to the
// absence resolution points or to gap-bound pruning shows up as a diff
// against a human-checked expectation, not just against the oracle.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "graph/temporal_dataset.h"
#include "testlib/stream_checker.h"

namespace tcsm {
namespace {

TemporalEdge Packet(VertexId src, VertexId dst, Label label, Timestamp ts) {
  TemporalEdge e;
  e.src = src;
  e.dst = dst;
  e.label = label;
  e.ts = ts;
  return e;
}

/// Single directed query edge a -> b (labels 0), one absence predicate
/// n(b, a, label 1, delta): "no reply within delta".
QueryGraph ReplyQuery(Timestamp delta) {
  QueryGraph q(/*directed=*/true);
  const VertexId a = q.AddVertex(0);
  const VertexId b = q.AddVertex(0);
  q.AddEdge(a, b, /*elabel=*/0);
  EXPECT_TRUE(q.AddAbsence(b, a, /*label=*/1, delta).ok());
  return q;
}

Embedding Emb(std::vector<VertexId> vs, std::vector<EdgeId> es) {
  Embedding m;
  m.vertices = std::move(vs);
  m.edges = std::move(es);
  return m;
}

using Match = std::pair<Embedding, MatchKind>;

// Absence deferral changes the *order* of the match stream, not only its
// content. Two unanswered requests, delta = 10, window = 9:
//
//   edge 0: v0 -> v1  label 0  ts 0    edge 1: v0 -> v2  label 0  ts 2
//
//   event        unconstrained stream      with n(b, a, 1, 10)
//   ts 0  +e0    +M1                       M1 pending (T=0, D=10)
//   ts 2  +e1    +M2                       M2 pending (T=2, D=12)
//   ts 9  -e0    -M1                       +M1 then -M1  (resolved at its
//                                          own expiry: 9 < D=10)
//   ts 11 -e1    -M2                       +M2 then -M2
//
// Unconstrained: +M1 +M2 -M1 -M2.  Constrained: +M1 -M1 +M2 -M2 — the
// relative order of +M2 and -M1 swaps, because +M2 is held back past e1's
// arrival while -M1 resolves first.
TEST(PredicateFixture, AbsenceDeferralReordersEmission) {
  TemporalDataset ds;
  ds.directed = true;
  ds.vertex_labels = {0, 0, 0};
  ds.edges.push_back(Packet(0, 1, 0, 0));
  ds.edges.push_back(Packet(0, 2, 0, 2));
  ds.Normalize();

  const Embedding m1 = Emb({0, 1}, {0});
  const Embedding m2 = Emb({0, 2}, {1});

  StreamConfig config;
  config.window = 9;

  QueryGraph plain(/*directed=*/true);
  plain.AddVertex(0);
  plain.AddVertex(0);
  plain.AddEdge(0, 1, 0);
  {
    SingleQueryContext<TcmEngine> run(plain,
                                      GraphSchema{true, ds.vertex_labels});
    CollectingSink sink;
    run.engine().set_sink(&sink);
    ASSERT_TRUE(RunStream(ds, config, &run).completed);
    const std::vector<Match> want{{m1, MatchKind::kOccurred},
                                  {m2, MatchKind::kOccurred},
                                  {m1, MatchKind::kExpired},
                                  {m2, MatchKind::kExpired}};
    EXPECT_EQ(sink.matches(), want) << "unconstrained stream drifted";
  }
  {
    SingleQueryContext<TcmEngine> run(ReplyQuery(10),
                                      GraphSchema{true, ds.vertex_labels});
    CollectingSink sink;
    run.engine().set_sink(&sink);
    ASSERT_TRUE(RunStream(ds, config, &run).completed);
    const std::vector<Match> want{{m1, MatchKind::kOccurred},
                                  {m1, MatchKind::kExpired},
                                  {m2, MatchKind::kOccurred},
                                  {m2, MatchKind::kExpired}};
    EXPECT_EQ(sink.matches(), want) << "deferred stream drifted";
  }
}

// Every absence resolution path in one stream: kill by a later reply,
// flush when the first arrival passes the deadline, swallow of a
// suppressed embedding's expired report, and birth-kill by an equal-ts
// reply. Query edge a -> b label 0, n(b, a, 1, delta=5), window = 20.
//
//   edge 0  A:  v0 -> v1  label 0  ts 0   (request, later answered)
//   edge 1  R:  v1 -> v0  label 1  ts 3   (reply: kills M1)
//   edge 2  B:  v0 -> v2  label 0  ts 4   (request, never answered)
//   edge 3  C:  v0 -> v1  label 0  ts 12  (request, never answered)
//   edge 4  R2: v3 -> v0  label 1  ts 30  (reply arriving with S)
//   edge 5  S:  v0 -> v3  label 0  ts 30  (request, answered at birth)
//
//   event         effect
//   ts 0   +A     M1={v0,v1;A} pending (T=0, D=5)
//   ts 3   +R     R hits (img b=v1 -> img a=v0, label 1, ts 3 in [0,5]):
//                 M1 -> suppressed
//   ts 4   +B     M2={v0,v2;B} pending (T=4, D=9)
//   ts 12  +C     flush D<12: emit +M2; M3={v0,v1;C} pending (T=12, D=17)
//   ts 20  -A     M1 expired: suppressed -> swallowed (no report at all)
//   ts 23  -R     no match (label 1 is not the query edge's label)
//   ts 24  -B     M2 already occurred: emit -M2
//   ts 30  +R2    flush D<30: emit +M3; R2 buffered for equal-ts births
//   ts 30  +S     M4={v0,v3;S} occurs at T=30; birth check sees R2
//                 (v3 -> v0, label 1, ts 30 in [30,35]): M4 -> suppressed
//   ts 32  -C     M3 already occurred: emit -M3
//   ts 50  -R2    no match
//   ts 50  -S     M4 expired: suppressed -> swallowed
//
// Pinned stream: +M2 -M2 +M3 -M3. M1 and M4 never surface.
TEST(PredicateFixture, AbsenceResolutionPaths) {
  TemporalDataset ds;
  ds.directed = true;
  ds.vertex_labels = {0, 0, 0, 0};
  ds.edges.push_back(Packet(0, 1, 0, 0));
  ds.edges.push_back(Packet(1, 0, 1, 3));
  ds.edges.push_back(Packet(0, 2, 0, 4));
  ds.edges.push_back(Packet(0, 1, 0, 12));
  ds.edges.push_back(Packet(3, 0, 1, 30));
  ds.edges.push_back(Packet(0, 3, 0, 30));
  ds.Normalize();

  const QueryGraph query = ReplyQuery(5);
  SingleQueryContext<TcmEngine> run(query,
                                    GraphSchema{true, ds.vertex_labels});
  CollectingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = 20;
  ASSERT_TRUE(RunStream(ds, config, &run).completed);

  const Embedding m2 = Emb({0, 2}, {2});
  const Embedding m3 = Emb({0, 1}, {3});
  const std::vector<Match> want{{m2, MatchKind::kOccurred},
                                {m2, MatchKind::kExpired},
                                {m3, MatchKind::kOccurred},
                                {m3, MatchKind::kExpired}};
  EXPECT_EQ(sink.matches(), want) << "hand-worked deferred stream drifted";

  // The independent checker mirror agrees with the hand-derivation.
  SingleQueryContext<TcmEngine> recheck(query,
                                        GraphSchema{true, ds.vertex_labels});
  EXPECT_EQ(testlib::CheckEngineAgainstOracle(ds, query, config.window,
                                              &recheck),
            2u);
}

// Gap-bound fixture: directed path a -> b -> c with g(e0, e1, 3, 5) over
// one e0 candidate (ts 10) and seven parallel e1 candidates at ts 11..17.
// Exactly the gaps 3, 4, 5 (ts 13, 14, 15) qualify. With pruning the ECM
// window [ets+3, ets+5] excludes the other four candidates *during*
// backtracking, so the explored search tree is strictly smaller than in
// post-filter mode — the acceptance criterion that order/gap pruning
// reduces explored partial embeddings, pinned on a concrete scenario.
TEST(PredicateFixture, GapPruningShrinksSearchStrictly) {
  TemporalDataset ds;
  ds.directed = true;
  ds.vertex_labels = {0, 1, 2};
  ds.edges.push_back(Packet(0, 1, 0, 10));
  for (Timestamp ts = 11; ts <= 17; ++ts) {
    ds.edges.push_back(Packet(1, 2, 0, ts));
  }
  ds.Normalize();

  QueryGraph query(/*directed=*/true);
  const VertexId a = query.AddVertex(0);
  const VertexId b = query.AddVertex(1);
  const VertexId c = query.AddVertex(2);
  const EdgeId e0 = query.AddEdge(a, b, 0);
  const EdgeId e1 = query.AddEdge(b, c, 0);
  ASSERT_TRUE(query.AddGap(e0, e1, 3, 5).ok());

  const GraphSchema schema{true, ds.vertex_labels};
  StreamConfig config;
  config.window = 100;

  SingleQueryContext<TcmEngine> pruned(query, schema);
  const StreamResult res_pruned = RunStream(ds, config, &pruned);
  ASSERT_TRUE(res_pruned.completed);
  EXPECT_EQ(res_pruned.occurred, 3u) << "gaps 3..5 admit exactly ts 13..15";
  EXPECT_EQ(res_pruned.expired, 3u);

  TcmConfig post_cfg;
  post_cfg.prune_gap_bounds = false;
  SingleQueryContext<TcmEngine> post(query, schema, post_cfg);
  const StreamResult res_post = RunStream(ds, config, &post);
  ASSERT_TRUE(res_post.completed);
  EXPECT_EQ(res_post.occurred, 3u);
  EXPECT_EQ(res_post.expired, 3u);

  EXPECT_LT(pruned.engine().counters().search_nodes,
            post.engine().counters().search_nodes)
      << "in-search gap pruning explored no fewer partial embeddings "
         "than leaf post-filtering";

  // Both modes also agree with the oracle per event.
  SingleQueryContext<TcmEngine> oracle_run(query, schema);
  EXPECT_EQ(testlib::CheckEngineAgainstOracle(ds, query, config.window,
                                              &oracle_run),
            3u);
}

}  // namespace
}  // namespace tcsm
