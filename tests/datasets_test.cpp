#include <gtest/gtest.h>

#include "datasets/presets.h"
#include "datasets/synthetic.h"

namespace tcsm {
namespace {

TEST(Synthetic, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.num_vertices = 50;
  spec.num_edges = 500;
  spec.seed = 77;
  const TemporalDataset a = GenerateSynthetic(spec);
  const TemporalDataset b = GenerateSynthetic(spec);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src);
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
    EXPECT_EQ(a.edges[i].ts, b.edges[i].ts);
    EXPECT_EQ(a.edges[i].label, b.edges[i].label);
  }
  EXPECT_EQ(a.vertex_labels, b.vertex_labels);

  spec.seed = 78;
  const TemporalDataset c = GenerateSynthetic(spec);
  bool any_diff = false;
  for (size_t i = 0; i < a.edges.size() && i < c.edges.size(); ++i) {
    any_diff = any_diff || a.edges[i].src != c.edges[i].src;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ShapeTargetsRoughlyMet) {
  SyntheticSpec spec;
  spec.num_vertices = 500;
  spec.num_edges = 10000;
  spec.num_vertex_labels = 4;
  spec.num_edge_labels = 3;
  spec.avg_parallel_edges = 3.0;
  spec.seed = 5;
  const TemporalDataset ds = GenerateSynthetic(spec);
  const DatasetStats s = ds.ComputeStats();
  EXPECT_EQ(s.num_edges, 10000u);
  EXPECT_EQ(s.num_vertices, 500u);
  EXPECT_LE(s.num_vertex_labels, 4u);
  EXPECT_LE(s.num_edge_labels, 3u);
  EXPECT_NEAR(s.avg_parallel_edges, 3.0, 1.2);
}

TEST(Synthetic, RankedTimestampsAndNoSelfLoops) {
  SyntheticSpec spec;
  spec.num_vertices = 40;
  spec.num_edges = 400;
  spec.seed = 9;
  const TemporalDataset ds = GenerateSynthetic(spec);
  for (size_t i = 0; i < ds.edges.size(); ++i) {
    EXPECT_EQ(ds.edges[i].ts, static_cast<Timestamp>(i + 1));
    EXPECT_EQ(ds.edges[i].id, i);
    EXPECT_NE(ds.edges[i].src, ds.edges[i].dst);
    EXPECT_LT(ds.edges[i].src, spec.num_vertices);
    EXPECT_LT(ds.edges[i].dst, spec.num_vertices);
  }
}

TEST(Synthetic, DirectedFlagPropagates) {
  SyntheticSpec spec;
  spec.directed = true;
  spec.num_edges = 100;
  spec.num_vertices = 20;
  const TemporalDataset ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.directed);
}

TEST(Presets, AllSixExistWithTableIIIShapes) {
  for (const std::string& name : PresetNames()) {
    const TemporalDataset ds = MakePreset(name, /*scale=*/0.1);
    EXPECT_GT(ds.NumEdges(), 0u) << name;
    EXPECT_GT(ds.NumVertices(), 0u) << name;
    EXPECT_EQ(ds.name, name);
  }
  // Signature spot checks at default scale.
  const DatasetStats netflow = MakePreset("netflow").ComputeStats();
  EXPECT_EQ(netflow.num_vertex_labels, 1u);
  EXPECT_GT(netflow.num_edge_labels, 100u);
  EXPECT_GT(netflow.avg_parallel_edges, 10.0);

  const DatasetStats lsbench = MakePreset("lsbench").ComputeStats();
  EXPECT_NEAR(lsbench.avg_parallel_edges, 1.0, 0.05);
  EXPECT_LT(lsbench.avg_degree, 8.0);

  const DatasetStats wikitalk = MakePreset("wikitalk").ComputeStats();
  EXPECT_GT(wikitalk.num_vertex_labels, 20u);
  EXPECT_EQ(wikitalk.num_edge_labels, 1u);
}

TEST(Presets, ScaleShrinksCounts) {
  const TemporalDataset big = MakePreset("superuser", 1.0);
  const TemporalDataset small = MakePreset("superuser", 0.25);
  EXPECT_GT(big.NumEdges(), small.NumEdges());
  EXPECT_GT(big.NumVertices(), small.NumVertices());
}

TEST(Presets, UnknownNameDies) {
  EXPECT_DEATH(MakePreset("nope"), "unknown preset");
}

}  // namespace
}  // namespace tcsm
