#include <gtest/gtest.h>

#include <unordered_set>

#include "core/snapshot.h"
#include "testing/oracle.h"
#include "testlib/running_example.h"

namespace tcsm {
namespace {

TEST(Snapshot, FullGraphMatchesOracle) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  const SnapshotResult res = FindAllMatches(ds, q);
  ASSERT_TRUE(res.completed);

  TemporalGraph g = testlib::RunningExampleGraph(14);
  std::vector<Embedding> expected;
  EnumerateEmbeddings(g, q, true, &expected);
  ASSERT_EQ(res.matches.size(), expected.size());
  const std::unordered_set<Embedding, EmbeddingHash> got(res.matches.begin(),
                                                         res.matches.end());
  for (const Embedding& e : expected) {
    EXPECT_EQ(got.count(e), 1u);
  }
}

TEST(Snapshot, CountAgreesWithFind) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  const SnapshotCount count = CountAllMatches(ds, q);
  const SnapshotResult find = FindAllMatches(ds, q);
  ASSERT_TRUE(count.completed && find.completed);
  EXPECT_EQ(count.matches, find.matches.size());
  EXPECT_EQ(count.matches, 16u);
}

TEST(Snapshot, WindowRestrictsMatches) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  SnapshotOptions opt;
  opt.window = 10;
  const SnapshotCount windowed = CountAllMatches(ds, q, opt);
  const SnapshotCount full = CountAllMatches(ds, q);
  ASSERT_TRUE(windowed.completed && full.completed);
  EXPECT_LT(windowed.matches, full.matches);
  EXPECT_EQ(windowed.matches, 6u);  // quickstart's windowed count
}

TEST(Snapshot, EngineConfigPassesThrough) {
  const QueryGraph q = testlib::RunningExampleQuery();
  const TemporalDataset ds = testlib::RunningExampleDataset();
  SnapshotOptions opt;
  opt.engine_config.use_tc_filter = false;
  EXPECT_EQ(CountAllMatches(ds, q, opt).matches, 16u);
  opt.engine_config.use_best_dag = false;
  EXPECT_EQ(CountAllMatches(ds, q, opt).matches, 16u);
  opt.engine_config.use_reverse_filter = false;
  EXPECT_EQ(CountAllMatches(ds, q, opt).matches, 16u);
}

TEST(Snapshot, EmptyDatasetFindsNothing) {
  const QueryGraph q = testlib::RunningExampleQuery();
  TemporalDataset empty;
  empty.vertex_labels = testlib::RunningExampleLabels();
  const SnapshotResult res = FindAllMatches(empty, q);
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(res.matches.empty());
}

}  // namespace
}  // namespace tcsm
