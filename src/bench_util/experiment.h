// Experiment harness shared by the per-figure benchmark binaries: engine
// factory, query-set runner with per-query time limits, and the paper's
// aggregation rules (unsolved queries count as the time limit; averages
// exclude queries that *every* algorithm failed to solve).
#ifndef TCSM_BENCH_UTIL_EXPERIMENT_H_
#define TCSM_BENCH_UTIL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/stream_driver.h"
#include "graph/temporal_dataset.h"
#include "query/query_graph.h"

namespace tcsm {

enum class EngineKind {
  kTcm,          // full TCM (filter + pruning)
  kTcmPruning,   // TC-matchable filter only, pruning disabled ("TCM-Pruning")
  kTcmNoFilter,  // pruning only, no TC filter (Table V comparison)
  kSymbiPost,    // SymBi + post-check
  kLocalEnum,    // index-free local enumeration + post-check (RapidFlow role)
  kTiming,       // materialized-prefix join engine
};

const char* EngineKindName(EngineKind kind);

/// Creates an engine of `kind` as a read-only view of `graph` (the shared
/// graph of the SharedStreamContext the caller attaches it to).
std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind,
                                             const QueryGraph& query,
                                             const TemporalGraph& graph);

GraphSchema SchemaOf(const TemporalDataset& dataset);

struct QuerySetResult {
  std::vector<double> per_query_ms;       // capped at the limit if unsolved
  std::vector<uint8_t> per_query_solved;  // completed within the limit
  std::vector<uint64_t> per_query_matches;
  std::vector<size_t> per_query_peak_mem;

  size_t NumSolved() const;
  double AvgPeakMemory() const;
};

/// Streams `dataset` once per query through a fresh engine of `kind`.
QuerySetResult RunQuerySet(const TemporalDataset& dataset,
                           const std::vector<QueryGraph>& queries,
                           EngineKind kind, Timestamp window,
                           double time_limit_ms);

/// Like RunQuerySet but runs queries concurrently on `threads` workers
/// (engines are independent per query — the paper's "parallelizing our
/// approach" future work, applied at inter-query granularity). Per-query
/// wall-clock times are noisier under contention; results are positionally
/// identical to the sequential runner.
QuerySetResult RunQuerySetParallel(const TemporalDataset& dataset,
                                   const std::vector<QueryGraph>& queries,
                                   EngineKind kind, Timestamp window,
                                   double time_limit_ms, size_t threads);

/// The paper's elapsed-time aggregation: average per-engine time over the
/// queries that at least one engine solved, counting unsolved runs as the
/// time limit. `results` holds one QuerySetResult per engine.
double AverageElapsedMs(const std::vector<QuerySetResult>& results,
                        size_t engine_idx, double time_limit_ms);

/// Scales the paper's window sizes (10k-50k "units" = live edges on the
/// full-scale datasets) down to a laptop-scale preset so the in-window
/// edge density matches the original: W_eff = units * |E| / |E_paper|.
/// Unknown dataset names fall back to min(units, |E|).
Timestamp EffectiveWindow(const TemporalDataset& dataset, Timestamp units);

/// Command-line options shared by the bench binaries. Defaults are sized
/// so the full per-figure suite finishes in tens of minutes on a laptop;
/// raise --queries/--limit_ms for tighter confidence intervals.
struct BenchArgs {
  std::vector<std::string> datasets;  // default: all six presets
  size_t queries_per_set = 4;
  double time_limit_ms = 800;
  double scale = 1.0;
  uint64_t seed = 7;
  /// --from=DIR: drivers that support it load `<DIR>/<dataset>.tel`
  /// instead of synthesizing the preset (docs/REPRODUCING.md), so the
  /// paper tables can be reproduced on real recorded streams.
  std::string from_dir;
};

BenchArgs ParseBenchArgs(int argc, char** argv);

}  // namespace tcsm

#endif  // TCSM_BENCH_UTIL_EXPERIMENT_H_
