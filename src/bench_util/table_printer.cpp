#include "bench_util/table_printer.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace tcsm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::left << std::setw(
             static_cast<int>(widths[c]))
         << cell;
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string FormatMegabytes(size_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
}

}  // namespace tcsm
