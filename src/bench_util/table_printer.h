// Aligned fixed-width table output for the benchmark harnesses; each bench
// binary prints the same rows/series the corresponding paper table or
// figure reports.
#ifndef TCSM_BENCH_UTIL_TABLE_PRINTER_H_
#define TCSM_BENCH_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace tcsm {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDouble(double value, int precision = 2);
std::string FormatMegabytes(size_t bytes);

}  // namespace tcsm

#endif  // TCSM_BENCH_UTIL_TABLE_PRINTER_H_
