#include "bench_util/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "common/logging.h"
#include "core/tcm_engine.h"
#include "datasets/presets.h"

namespace tcsm {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTcm:
      return "TCM";
    case EngineKind::kTcmPruning:
      return "TCM-Pruning";
    case EngineKind::kTcmNoFilter:
      return "TCM-NoFilter";
    case EngineKind::kSymbiPost:
      return "SymBi";
    case EngineKind::kLocalEnum:
      return "RapidFlow*";
    case EngineKind::kTiming:
      return "Timing";
  }
  return "?";
}

std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind,
                                             const QueryGraph& query,
                                             const TemporalGraph& graph) {
  switch (kind) {
    case EngineKind::kTcm:
      return std::make_unique<TcmEngine>(query, graph);
    case EngineKind::kTcmPruning: {
      TcmConfig config;
      config.prune_no_relation = false;
      config.prune_uniform = false;
      config.prune_failing_set = false;
      return std::make_unique<TcmEngine>(query, graph, config);
    }
    case EngineKind::kTcmNoFilter: {
      TcmConfig config;
      config.use_tc_filter = false;
      return std::make_unique<TcmEngine>(query, graph, config);
    }
    case EngineKind::kSymbiPost:
      return std::make_unique<PostFilterEngine>(query, graph);
    case EngineKind::kLocalEnum:
      return std::make_unique<LocalEnumEngine>(query, graph);
    case EngineKind::kTiming:
      return std::make_unique<TimingEngine>(query, graph);
  }
  TCSM_CHECK(false);
  return nullptr;
}

GraphSchema SchemaOf(const TemporalDataset& dataset) {
  return GraphSchema{dataset.directed, dataset.vertex_labels};
}

size_t QuerySetResult::NumSolved() const {
  size_t n = 0;
  for (const uint8_t s : per_query_solved) n += s;
  return n;
}

double QuerySetResult::AvgPeakMemory() const {
  if (per_query_peak_mem.empty()) return 0;
  double sum = 0;
  for (const size_t m : per_query_peak_mem) sum += static_cast<double>(m);
  return sum / static_cast<double>(per_query_peak_mem.size());
}

QuerySetResult RunQuerySet(const TemporalDataset& dataset,
                           const std::vector<QueryGraph>& queries,
                           EngineKind kind, Timestamp window,
                           double time_limit_ms) {
  QuerySetResult out;
  const GraphSchema schema = SchemaOf(dataset);
  for (const QueryGraph& query : queries) {
    SharedStreamContext ctx(schema);
    auto engine = MakeEngine(kind, query, ctx.graph());
    ctx.Attach(engine.get());
    CountingSink sink;
    engine->set_sink(&sink);
    StreamConfig config;
    config.window = window;
    config.time_limit_ms = time_limit_ms;
    const StreamResult res = RunStream(dataset, config, &ctx);
    out.per_query_solved.push_back(res.completed ? 1 : 0);
    out.per_query_ms.push_back(
        res.completed ? res.elapsed_ms
                      : std::max(res.elapsed_ms, time_limit_ms));
    out.per_query_matches.push_back(res.occurred + res.expired);
    out.per_query_peak_mem.push_back(res.peak_memory_bytes);
  }
  return out;
}

QuerySetResult RunQuerySetParallel(const TemporalDataset& dataset,
                                   const std::vector<QueryGraph>& queries,
                                   EngineKind kind, Timestamp window,
                                   double time_limit_ms, size_t threads) {
  if (threads <= 1 || queries.size() <= 1) {
    return RunQuerySet(dataset, queries, kind, window, time_limit_ms);
  }
  const GraphSchema schema = SchemaOf(dataset);
  const size_t n = queries.size();
  QuerySetResult out;
  out.per_query_ms.assign(n, 0);
  out.per_query_solved.assign(n, 0);
  out.per_query_matches.assign(n, 0);
  out.per_query_peak_mem.assign(n, 0);

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t q = next.fetch_add(1);
      if (q >= n) return;
      SharedStreamContext ctx(schema);
      auto engine = MakeEngine(kind, queries[q], ctx.graph());
      ctx.Attach(engine.get());
      CountingSink sink;
      engine->set_sink(&sink);
      StreamConfig config;
      config.window = window;
      config.time_limit_ms = time_limit_ms;
      const StreamResult res = RunStream(dataset, config, &ctx);
      out.per_query_solved[q] = res.completed ? 1 : 0;
      out.per_query_ms[q] =
          res.completed ? res.elapsed_ms
                        : std::max(res.elapsed_ms, time_limit_ms);
      out.per_query_matches[q] = res.occurred + res.expired;
      out.per_query_peak_mem[q] = res.peak_memory_bytes;
    }
  };
  std::vector<std::thread> pool;
  const size_t workers = std::min(threads, n);
  pool.reserve(workers);
  for (size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return out;
}

double AverageElapsedMs(const std::vector<QuerySetResult>& results,
                        size_t engine_idx, double time_limit_ms) {
  TCSM_CHECK(engine_idx < results.size());
  const size_t n = results[engine_idx].per_query_ms.size();
  double sum = 0;
  size_t counted = 0;
  for (size_t q = 0; q < n; ++q) {
    bool any_solved = false;
    for (const QuerySetResult& r : results) {
      if (q < r.per_query_solved.size() && r.per_query_solved[q]) {
        any_solved = true;
        break;
      }
    }
    if (!any_solved) continue;  // excluded, as in the paper
    ++counted;
    const QuerySetResult& r = results[engine_idx];
    sum += r.per_query_solved[q] ? r.per_query_ms[q] : time_limit_ms;
  }
  return counted == 0 ? 0 : sum / static_cast<double>(counted);
}

Timestamp EffectiveWindow(const TemporalDataset& dataset, Timestamp units) {
  // Full-scale edge counts from Table III.
  double paper_edges = 0;
  if (dataset.name == "netflow") paper_edges = 15.96e6;
  if (dataset.name == "wikitalk") paper_edges = 7.83e6;
  if (dataset.name == "superuser") paper_edges = 1.44e6;
  if (dataset.name == "stackoverflow") paper_edges = 63.5e6;
  if (dataset.name == "yahoo") paper_edges = 3.18e6;
  if (dataset.name == "lsbench") paper_edges = 21.04e6;
  const auto n = static_cast<double>(dataset.NumEdges());
  if (paper_edges <= 0) {
    return std::min<Timestamp>(units, static_cast<Timestamp>(n));
  }
  double scaled = static_cast<double>(units) * n / paper_edges;
  // Volume floor: a window that preserves the paper's per-vertex density
  // on a ~100x smaller vertex set can hold only tens of live edges, which
  // makes every search trivial. When the ratio-scaled window drops below
  // units/75 live edges, lift it to units/30 (2k for the default 30k
  // window) so search cost, not per-event index overhead, dominates.
  // Windows already in a meaningful range (yahoo, superuser) are left at
  // the paper-faithful value — see DESIGN.md §5 "Scale".
  if (scaled < static_cast<double>(units) / 75.0) {
    scaled = static_cast<double>(units) / 30.0;
  }
  scaled = std::min(scaled, n / 4.0);
  return std::max<Timestamp>(64, static_cast<Timestamp>(scaled));
}

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  args.datasets = PresetNames();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--datasets=")) {
      args.datasets.clear();
      std::istringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) args.datasets.push_back(item);
      }
    } else if (const char* v = value_of("--queries=")) {
      args.queries_per_set = static_cast<size_t>(std::stoul(v));
    } else if (const char* v = value_of("--limit_ms=")) {
      args.time_limit_ms = std::stod(v);
    } else if (const char* v = value_of("--scale=")) {
      args.scale = std::stod(v);
    } else if (const char* v = value_of("--seed=")) {
      args.seed = std::stoull(v);
    } else if (const char* v = value_of("--from=")) {
      args.from_dir = v;
    }
  }
  return args;
}

}  // namespace tcsm
