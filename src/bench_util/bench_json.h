// Machine-readable benchmark records: each measurement is emitted as one
// line of the form
//
//   BENCH {"bench":"<name>","key":value,...}
//
// so perf trajectories can be grepped out of any driver's stdout
// (`grep ^BENCH | cut -c7-` yields a JSON stream). Keys appear in
// insertion order; values are numbers or strings.
#ifndef TCSM_BENCH_UTIL_BENCH_JSON_H_
#define TCSM_BENCH_UTIL_BENCH_JSON_H_

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

namespace tcsm {

class BenchJsonLine {
 public:
  explicit BenchJsonLine(const std::string& bench) {
    body_ << "{\"bench\":\"" << bench << '"';
  }

  BenchJsonLine& Field(const std::string& key, const std::string& value) {
    body_ << ",\"" << key << "\":\"" << value << '"';
    return *this;
  }
  BenchJsonLine& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  BenchJsonLine& Field(const std::string& key, double value) {
    body_ << ",\"" << key << "\":" << value;
    return *this;
  }
  BenchJsonLine& Field(const std::string& key, uint64_t value) {
    body_ << ",\"" << key << "\":" << value;
    return *this;
  }

  void Print(std::ostream& out) const {
    out << "BENCH " << body_.str() << "}\n";
  }

 private:
  std::ostringstream body_;
};

}  // namespace tcsm

#endif  // TCSM_BENCH_UTIL_BENCH_JSON_H_
