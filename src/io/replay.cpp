#include "io/replay.h"

#include <deque>

#include "common/logging.h"
#include "common/memory_meter.h"
#include "common/timer.h"
#include "io/flight_recorder.h"
#include "obs/observability.h"
#include "obs/stage_timer.h"
#include "obs/stats_reporter.h"

namespace tcsm {

StatusOr<StreamResult> ReplayStream(StreamReader* reader,
                                    const ReplayOptions& options,
                                    SharedStreamContext* context) {
  const bool explicit_mode = reader->header().explicit_expiry;
  Timestamp window = options.window > 0 ? options.window
                                        : reader->header().window;
  if (!explicit_mode && window <= 0) {
    return Status::InvalidArgument(
        reader->source() +
        ": no expiry window (pass one explicitly or record window= in the "
        "header)");
  }
  if (!explicit_mode && window > kMaxTelTimestamp) {
    // Same bound the reader enforces on timestamps: ts + window must not
    // overflow, however the window reached us. (Explicit-expiry streams
    // never form that sum — their window is ignored entirely.)
    return Status::InvalidArgument("window too large (must stay below 2^61)");
  }

  StreamResult result;
  Deadline deadline(options.time_limit_ms);
  context->set_deadline(options.time_limit_ms > 0 ? &deadline : nullptr);
  context->set_observability(options.obs);
  const StageMetrics* const stages =
      options.obs != nullptr ? &options.obs->stages() : nullptr;
  reader->set_stage_metrics(stages);
  TraceWriter* const trace =
      options.obs != nullptr ? options.obs->trace() : nullptr;
  StatsReporter reporter(options.obs, options.stats_every, options.stats_json,
                         options.stats_out);
  const size_t sample_every =
      options.memory_sample_every > 0 ? options.memory_sample_every : 64;
  const size_t max_batch =
      options.max_batch == 0 ? kDefaultMaxBatch : options.max_batch;

  PeakMeter peak;
  StopWatch watch;
  const EngineCounters base = context->AggregateCounters();

  // FIFO of delivered-but-not-expired edges: the O(window) live state.
  std::deque<TemporalEdge> live;
  StreamRecord pending;
  bool has_pending = false;
  bool stopped = false;    // no further reads (EOF or arrival cap)
  bool truncated = false;  // stopped by the cap, not by the file ending
  size_t arrivals = 0;
  // After SeekToTimestamp the index supplies the count of skipped
  // arrivals, so ids in the suffix match the full replay's exactly.
  EdgeId next_id = static_cast<EdgeId>(reader->first_arrival_index());

  const auto pull = [&]() -> Status {
    if (has_pending || stopped) return Status::Ok();
    bool done = false;
    const Status s = reader->Next(&pending, &done);
    if (!s.ok()) return s;
    if (done) {
      stopped = true;
    } else {
      has_pending = true;
    }
    return Status::Ok();
  };

  // Scratch for coalesced deliveries (DESIGN.md §9): consecutive
  // same-timestamp events of one kind handed to the context as a batch.
  std::vector<TemporalEdge> batch;
  bool high_water_sampled = false;

  Status s = pull();
  while (s.ok()) {
    if (deadline.ExpiredNow() || context->overflowed()) {
      result.completed = false;
      break;
    }
    if (options.max_arrivals > 0 && arrivals >= options.max_arrivals &&
        !stopped) {
      // Rate control: stop consuming the stream; live edges still expire.
      has_pending = false;
      stopped = true;
      truncated = true;
    }
    if (stopped && !high_water_sampled) {
      // No more arrivals: the window is at its fullest right now, before
      // the remaining expirations shrink it. Sample the high-water point
      // explicitly rather than hoping the cadence lands on it.
      peak.Observe(context->EstimateMemoryBytes(), result.events);
      high_water_sampled = true;
    }
    const bool have_arrival =
        has_pending && pending.kind == StreamRecord::Kind::kArrival;
    bool do_expire;
    if (explicit_mode) {
      // The file carries its own schedule; a truncated run (cap hit)
      // drains the live FIFO so every delivered arrival still expires.
      do_expire =
          (has_pending && pending.kind == StreamRecord::Kind::kExpiry) ||
          (stopped && truncated && !live.empty());
    } else {
      do_expire = !live.empty() &&
                  (!have_arrival ||
                   live.front().ts + window <= pending.edge.ts);
    }
    if (do_expire) {
      TCSM_CHECK(!live.empty());
      batch.clear();
      batch.push_back(live.front());
      live.pop_front();
      if (has_pending && pending.kind == StreamRecord::Kind::kExpiry) {
        // One explicit record = one expiry; never coalesced.
        has_pending = false;
      } else if (!explicit_mode) {
        // Derived mode: same arrival timestamp means same expiry time, so
        // the front run of equal-ts live edges expires together.
        const Timestamp t = batch.front().ts;
        while (batch.size() < max_batch && !live.empty() &&
               live.front().ts == t) {
          batch.push_back(live.front());
          live.pop_front();
        }
      }
      {
        const ScopedStage span(
            stages != nullptr ? stages->expiry_batch_ns : nullptr, trace,
            "expiry_batch", "stream", "events", batch.size());
        context->OnEdgeExpiryBatch(batch.data(), batch.size());
      }
      if (stages != nullptr) {
        stages->expirations->Add(batch.size());
        stages->expiry_batches->Add(1);
      }
    } else if (have_arrival) {
      batch.clear();
      pending.edge.id = next_id++;
      batch.push_back(pending.edge);
      has_pending = false;
      ++arrivals;
      // Pull ahead to coalesce consecutive same-timestamp arrivals. Stops
      // at the arrival cap, a kind or timestamp change, or a read error —
      // in which case the batch accumulated so far is delivered before
      // the error surfaces.
      while (batch.size() < max_batch &&
             (options.max_arrivals == 0 || arrivals < options.max_arrivals)) {
        s = pull();
        if (!s.ok() || !has_pending ||
            pending.kind != StreamRecord::Kind::kArrival ||
            pending.edge.ts != batch.front().ts) {
          break;
        }
        pending.edge.id = next_id++;
        batch.push_back(pending.edge);
        has_pending = false;
        ++arrivals;
      }
      if (options.recorder != nullptr) {
        for (const TemporalEdge& e : batch) options.recorder->Record(e);
      }
      {
        const ScopedStage span(
            stages != nullptr ? stages->arrival_batch_ns : nullptr, trace,
            "arrival_batch", "stream", "events", batch.size());
        context->OnEdgeArrivalBatch(batch.data(), batch.size());
      }
      if (stages != nullptr) {
        stages->arrivals->Add(batch.size());
        stages->arrival_batches->Add(1);
      }
      live.insert(live.end(), batch.begin(), batch.end());
      if (!s.ok()) break;
    } else {
      break;  // stream exhausted and nothing left to expire
    }
    const size_t before = result.events;
    result.events += batch.size();
    if (stages != nullptr) {
      stages->live_edges->Set(static_cast<int64_t>(live.size()));
    }
    if (result.events / sample_every != before / sample_every) {
      peak.Observe(context->EstimateMemoryBytes(), result.events);
    }
    if (reporter.Due(result.events)) {
      reporter.Tick(result.events, live.size(), context->AggregateCounters());
    }
    s = pull();
  }
  context->set_deadline(nullptr);
  if (!s.ok()) return s;
  peak.Observe(context->EstimateMemoryBytes(), result.events);

  result.elapsed_ms = watch.ElapsedMs();
  const EngineCounters now = context->AggregateCounters();
  result.occurred = now.occurred - base.occurred;
  result.expired = now.expired - base.expired;
  result.adj_entries_scanned =
      now.adj_entries_scanned - base.adj_entries_scanned;
  result.adj_entries_matched =
      now.adj_entries_matched - base.adj_entries_matched;
  result.peak_memory_bytes = peak.peak_bytes();
  result.peak_memory_event_index = peak.peak_event_index();
  result.num_threads = context->num_threads();
  result.num_shards = context->num_shards();
  if (options.obs != nullptr) {
    EngineCounters delta;
    delta.occurred = result.occurred;
    delta.expired = result.expired;
    delta.search_nodes = now.search_nodes - base.search_nodes;
    delta.adj_entries_scanned = result.adj_entries_scanned;
    delta.adj_entries_matched = result.adj_entries_matched;
    options.obs->PublishEngineCounters(delta);
    if (stages != nullptr) {
      stages->peak_bytes->Set(static_cast<int64_t>(result.peak_memory_bytes));
      stages->peak_event_index->Set(
          static_cast<int64_t>(result.peak_memory_event_index));
      stages->live_edges->Set(static_cast<int64_t>(live.size()));
    }
  }
  return result;
}

}  // namespace tcsm
