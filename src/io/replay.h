// File-driven stream replay: drives a SharedStreamContext (and through it
// every attached engine) from a StreamReader instead of an in-memory
// TemporalDataset. Memory is O(window): the only state besides the
// reader's current line is the FIFO of live edges, which is needed to
// deliver each expiration's edge record. The event schedule is identical
// to core/stream_driver.h's RunStream — arrivals in timestamp order,
// derived expirations at ts + window, expirations before arrivals on ties
// — so file replay and in-memory replay produce byte-identical match
// streams (enforced by tests/io_roundtrip_test.cpp).
#ifndef TCSM_IO_REPLAY_H_
#define TCSM_IO_REPLAY_H_

#include "common/status.h"
#include "core/shared_context.h"
#include "core/stream_driver.h"
#include "io/stream_reader.h"

namespace tcsm {

class FlightRecorder;  // io/flight_recorder.h

struct ReplayOptions {
  /// Expiry window for derived-expiry streams. 0 = take the header's
  /// window; a stream with neither is an InvalidArgument error. Ignored
  /// by explicit-expiry streams (the file carries its own schedule).
  Timestamp window = 0;
  /// Per-run wall-clock limit; 0 = unlimited (see StreamConfig).
  double time_limit_ms = 0;
  /// Stop pulling the stream after this many arrivals (0 = all); live
  /// edges still expire, so the run ends on an empty window. This is the
  /// CLI's --max-events rate control.
  size_t max_arrivals = 0;
  /// Context memory is sampled every this many events; 0 = every 64
  /// events (a stream's length is unknown up front, so unlike RunStream
  /// the cadence cannot adapt to it).
  size_t memory_sample_every = 0;
  /// Largest micro-batch handed to the context in one batch call (see
  /// StreamConfig::max_batch): consecutive same-timestamp arrivals, or
  /// same-timestamp derived expirations. 0 = default (kDefaultMaxBatch);
  /// 1 = unbatched. Explicit-expiry records are never coalesced — the
  /// file carries its own schedule. The match stream is identical for
  /// every setting.
  size_t max_batch = 0;
  /// Observability bundle + periodic stats, exactly as in StreamConfig
  /// (core/stream_driver.h): null obs = metrics off = no-op sites.
  Observability* obs = nullptr;
  size_t stats_every = 0;
  bool stats_json = false;
  std::ostream* stats_out = nullptr;
  /// Optional flight recorder (io/flight_recorder.h): every delivered
  /// arrival is recorded before it reaches the context, so a dump taken
  /// after a mid-replay failure still holds the event that triggered it.
  FlightRecorder* recorder = nullptr;
};

/// Replays `reader` (already Init()ed by the caller, who needed its
/// schema to build the engines) into `context`. Returns the same
/// StreamResult as RunStream, or a Status for malformed input / an
/// unresolvable window. The reader must be positioned before the first
/// data record, i.e. Next() must not have been called yet.
StatusOr<StreamResult> ReplayStream(StreamReader* reader,
                                    const ReplayOptions& options,
                                    SharedStreamContext* context);

}  // namespace tcsm

#endif  // TCSM_IO_REPLAY_H_
