#include "io/stream_reader.h"

#include <chrono>
#include <fstream>
#include <istream>
#include <sstream>

#include "graph/graph_io.h"
#include "io/tel_binary.h"
#include "obs/metrics.h"

namespace tcsm {

namespace {

/// Strips the comment tail and surrounding whitespace; returns true when
/// anything significant remains.
bool Significant(std::string* line) {
  const size_t hash = line->find('#');
  if (hash != std::string::npos) line->resize(hash);
  const size_t begin = line->find_first_not_of(" \t\r");
  if (begin == std::string::npos) return false;
  const size_t end = line->find_last_not_of(" \t\r");
  *line = line->substr(begin, end - begin + 1);
  return true;
}

bool HasTrailingGarbage(std::istringstream& ls) {
  std::string extra;
  return static_cast<bool>(ls >> extra);
}

/// Largest vertex id/count a record may carry: ids must fit VertexId
/// (kInvalidVertex is reserved), so anything larger is corrupt input,
/// not a big graph — rejecting it here keeps a hostile `vertices=9e18`
/// from turning into an allocation attempt.
constexpr int64_t kMaxVertexCount =
    static_cast<int64_t>(kInvalidVertex);  // valid ids are < this

constexpr int64_t kMaxLabel =
    static_cast<int64_t>(std::numeric_limits<Label>::max());

}  // namespace

StreamReader::StreamReader(std::istream& in, std::string source)
    : in_(in), source_(std::move(source)) {}

StreamReader::~StreamReader() = default;

Status StreamReader::Fail(const std::string& what) const {
  return Status::CorruptInput(source_ + ":" + std::to_string(lineno_) +
                              ": " + what);
}

bool StreamReader::NextSignificantLine(std::string* body) {
  std::string line;
  while (std::getline(in_, line)) {
    ++lineno_;
    bytes_consumed_ += line.size() + 1;  // + the consumed newline
    if (Significant(&line)) {
      *body = std::move(line);
      return true;
    }
  }
  return false;
}

Status StreamReader::ParseHeader(const std::string& body) {
  std::istringstream ls(body);
  std::string magic, mode;
  int64_t version = 0;
  if (!(ls >> magic >> version >> mode) || magic != kTelMagic) {
    return Fail("bad header (expected 'tel <version> "
                "<directed|undirected> [key=value ...]')");
  }
  if (version != kTelVersion) {
    return Fail("unsupported tel version " + std::to_string(version) +
                " (this reader implements version " +
                std::to_string(kTelVersion) + ")");
  }
  header_.version = static_cast<int>(version);
  if (mode == "directed") {
    header_.directed = true;
  } else if (mode == "undirected") {
    header_.directed = false;
  } else {
    return Fail("bad directedness '" + mode +
                "' (expected 'directed' or 'undirected')");
  }
  std::string kv;
  while (ls >> kv) {
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Fail("bad header token '" + kv + "' (expected key=value)");
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    std::istringstream vs(value);
    if (key == "vertices") {
      int64_t n = 0;
      if (!(vs >> n) || HasTrailingGarbage(vs) || n < 0 ||
          n > kMaxVertexCount) {
        return Fail("bad vertices count '" + value + "'");
      }
      header_.num_vertices = static_cast<size_t>(n);
      header_.has_vertices = true;
    } else if (key == "window") {
      Timestamp w = 0;
      if (!(vs >> w) || HasTrailingGarbage(vs) || w <= 0 ||
          w > kMaxTelTimestamp) {
        return Fail("bad window '" + value + "' (must be a positive integer "
                    "below 2^61)");
      }
      header_.window = w;
    } else if (key == "expiry") {
      if (value == "explicit") {
        header_.explicit_expiry = true;
      } else if (value == "derived") {
        header_.explicit_expiry = false;
      } else {
        return Fail("bad expiry mode '" + value +
                    "' (expected 'derived' or 'explicit')");
      }
    } else {
      return Fail("unknown header key '" + key +
                  "' (v1 keys: vertices, window, expiry)");
    }
  }
  return Status::Ok();
}

Status StreamReader::Init() {
  TCSM_CHECK(!init_done_);
  init_done_ = true;
  // Framing sniff: 0x89 can never begin a text .tel line, so one peeked
  // byte decides, and the byte is not consumed either way.
  if (in_.peek() == kTelBinaryMagic[0]) {
    binary_ = std::make_unique<BinaryTelReader>(in_, source_);
    if (stages_ != nullptr) binary_->set_parse_histogram(stages_->parse_ns);
    const Status s = binary_->Init();
    if (!s.ok()) return s;
    header_ = binary_->header();
    vertex_labels_ = binary_->vertex_labels();
    has_universe_ = true;
    return Status::Ok();
  }
  std::string body;
  if (!NextSignificantLine(&body)) {
    return Fail("missing tel header (empty stream)");
  }
  const Status header_status = ParseHeader(body);
  if (!header_status.ok()) return header_status;
  if (header_.has_vertices) {
    vertex_labels_.assign(header_.num_vertices, 0);
    label_declared_.assign(header_.num_vertices, false);
    has_universe_ = true;
  }
  // Consume the v-record prefix; stop at the first data record, which is
  // kept pending for Next().
  while (NextSignificantLine(&body)) {
    if (body[0] != 'v' || (body.size() > 1 && body[1] != ' ' &&
                           body[1] != '\t')) {
      pending_ = std::move(body);
      has_pending_ = true;
      break;
    }
    std::istringstream ls(body);
    std::string tag;
    int64_t id = 0, label = 0;
    if (!(ls >> tag >> id >> label) || HasTrailingGarbage(ls) || id < 0 ||
        id >= kMaxVertexCount || label < 0 || label > kMaxLabel) {
      return Fail("bad vertex label record (expected 'v <id> <label>')");
    }
    const size_t v = static_cast<size_t>(id);
    if (header_.has_vertices && v >= header_.num_vertices) {
      return Fail("vertex id " + std::to_string(id) +
                  " out of declared range (vertices=" +
                  std::to_string(header_.num_vertices) + ")");
    }
    if (v >= vertex_labels_.size()) {
      vertex_labels_.resize(v + 1, 0);
      label_declared_.resize(v + 1, false);
    }
    if (label_declared_[v]) {
      return Fail("duplicate vertex label record for vertex " +
                  std::to_string(id));
    }
    label_declared_[v] = true;
    vertex_labels_[v] = static_cast<Label>(label);
    has_universe_ = true;
  }
  return Status::Ok();
}

GraphSchema StreamReader::schema() const {
  TCSM_CHECK(init_done_ && has_universe_);
  return GraphSchema{header_.directed, vertex_labels_};
}

void StreamReader::set_stage_metrics(const StageMetrics* stages) {
  stages_ = stages;
  if (binary_ != nullptr) {
    binary_->set_parse_histogram(stages != nullptr ? stages->parse_ns
                                                   : nullptr);
  }
}

void StreamReader::FlushIngestMetrics(uint64_t records) {
  if (records > 0 && stages_->ingest_records != nullptr) {
    stages_->ingest_records->Add(records);
  }
  if (stages_->ingest_bytes != nullptr) {
    const uint64_t consumed =
        binary_ != nullptr ? binary_->bytes_consumed() : bytes_consumed_;
    if (consumed > bytes_reported_) {
      stages_->ingest_bytes->Add(consumed - bytes_reported_);
      bytes_reported_ = consumed;
    }
  }
}

uint64_t StreamReader::first_arrival_index() const {
  return binary_ != nullptr ? binary_->first_arrival_index() : 0;
}

Status StreamReader::SeekToTimestamp(Timestamp t) {
  TCSM_CHECK(init_done_);
  if (binary_ == nullptr) {
    return Status::InvalidArgument(
        source_ +
        ": seek requires a binary .tel stream (the text format has no "
        "block index; `tcsm convert` produces one)");
  }
  const Status s = binary_->SeekToTimestamp(t);
  // Skipped bytes were never ingested; resync the metrics base.
  if (s.ok()) bytes_reported_ = binary_->bytes_consumed();
  return s;
}

Status StreamReader::Next(StreamRecord* record, bool* done) {
  TCSM_CHECK(init_done_);
  if (binary_ != nullptr) {
    const Status s = binary_->Next(record, done);
    if (s.ok() && stages_ != nullptr) FlushIngestMetrics(*done ? 0 : 1);
    return s;
  }
  // Text framing: per-record parse latency (the binary reader observes
  // per block load instead — see set_stage_metrics).
  const bool timed = stages_ != nullptr && stages_->parse_ns != nullptr;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  const Status s = NextText(record, done);
  if (timed) {
    stages_->parse_ns->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  if (s.ok() && stages_ != nullptr) FlushIngestMetrics(*done ? 0 : 1);
  return s;
}

Status StreamReader::NextText(StreamRecord* record, bool* done) {
  *done = false;
  std::string body;
  while (true) {
    if (has_pending_) {
      body = std::move(pending_);
      has_pending_ = false;
    } else if (!NextSignificantLine(&body)) {
      *done = true;
      return Status::Ok();
    }
    std::istringstream ls(body);
    std::string tag;
    ls >> tag;
    if (tag == "e") {
      int64_t src = 0, dst = 0;
      Timestamp ts = 0;
      int64_t elabel = 0;
      if (!(ls >> src >> dst >> ts)) {
        return Fail("bad edge record (expected 'e <src> <dst> <ts> "
                    "[<elabel>]')");
      }
      // The optional label is re-parsed from its token so that int64
      // overflow (which consumes the digits and would read back as "no
      // label") cannot smuggle a corrupt field through.
      std::string label_tok;
      if (ls >> label_tok) {
        if (HasTrailingGarbage(ls)) return Fail("trailing garbage");
        std::istringstream lv(label_tok);
        if (!(lv >> elabel) || HasTrailingGarbage(lv) || elabel < 0 ||
            elabel > kMaxLabel) {
          return Fail("bad edge label '" + label_tok + "'");
        }
      }
      if (src < 0 || dst < 0) return Fail("negative vertex id");
      if (src >= kMaxVertexCount || dst >= kMaxVertexCount) {
        return Fail("vertex id out of range");
      }
      if (has_universe_ &&
          (static_cast<size_t>(src) >= vertex_labels_.size() ||
           static_cast<size_t>(dst) >= vertex_labels_.size())) {
        return Fail("vertex id out of range (universe has " +
                    std::to_string(vertex_labels_.size()) +
                    " vertices; declare more with vertices=N or v records)");
      }
      if (ts < -kMaxTelTimestamp || ts > kMaxTelTimestamp) {
        return Fail("timestamp out of range (|ts| must stay below 2^61 "
                    "so expiry times cannot overflow)");
      }
      if (ts < last_ts_) {
        return Fail("timestamps must be non-decreasing (got " +
                    std::to_string(ts) + " after " +
                    std::to_string(last_ts_) + ")");
      }
      last_ts_ = ts;
      if (src == dst) continue;  // self loops never match; drop on ingest
      record->kind = StreamRecord::Kind::kArrival;
      record->edge = TemporalEdge{};
      record->edge.src = static_cast<VertexId>(src);
      record->edge.dst = static_cast<VertexId>(dst);
      record->edge.ts = ts;
      record->edge.label = static_cast<Label>(elabel);
      ++arrivals_;
      return Status::Ok();
    }
    if (tag == "x") {
      if (!header_.explicit_expiry) {
        return Fail("explicit expiry record in a derived-expiry stream "
                    "(header lacks expiry=explicit)");
      }
      Timestamp ts = 0;
      if (!(ls >> ts) || HasTrailingGarbage(ls)) {
        return Fail("bad expiry record (expected 'x <ts>')");
      }
      if (ts < -kMaxTelTimestamp || ts > kMaxTelTimestamp) {
        return Fail("timestamp out of range (|ts| must stay below 2^61 "
                    "so expiry times cannot overflow)");
      }
      if (ts < last_ts_) {
        return Fail("timestamps must be non-decreasing (got " +
                    std::to_string(ts) + " after " +
                    std::to_string(last_ts_) + ")");
      }
      if (expiries_ >= arrivals_) {
        return Fail("expiry record with no live edge");
      }
      last_ts_ = ts;
      ++expiries_;
      record->kind = StreamRecord::Kind::kExpiry;
      record->edge = TemporalEdge{};
      record->edge.ts = ts;
      return Status::Ok();
    }
    if (tag == "v") {
      return Fail("vertex label record after the first data record "
                  "(v records must form a prefix)");
    }
    return Fail("unknown record tag '" + tag + "'");
  }
}

StatusOr<TemporalDataset> ReadTelDataset(std::istream& in,
                                         const std::string& source,
                                         TelHeader* header_out) {
  StreamReader reader(in, source);
  Status s = reader.Init();
  if (!s.ok()) return s;
  TemporalDataset ds;
  ds.name = source;
  ds.directed = reader.header().directed;
  VertexId max_vertex = 0;
  bool any = false;
  StreamRecord rec;
  bool done = false;
  while (true) {
    s = reader.Next(&rec, &done);
    if (!s.ok()) return s;
    if (done) break;
    if (rec.kind != StreamRecord::Kind::kArrival) continue;  // validated
    ds.edges.push_back(rec.edge);
    max_vertex = std::max({max_vertex, rec.edge.src, rec.edge.dst});
    any = true;
  }
  if (reader.has_vertex_universe()) {
    ds.vertex_labels = reader.vertex_labels();
  } else {
    ds.vertex_labels.assign(any ? max_vertex + 1 : 0, 0);
  }
  // Timestamps are non-decreasing by construction, so the stable sort
  // preserves file order and ids equal arrival positions.
  ds.Normalize();
  if (header_out != nullptr) *header_out = reader.header();
  return ds;
}

StatusOr<TemporalDataset> LoadTelFile(const std::string& path,
                                      TelHeader* header_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadTelDataset(in, path, header_out);
}

bool SniffTelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  if (in.peek() == kTelBinaryMagic[0]) return true;  // binary v2
  std::string line;
  while (std::getline(in, line)) {
    if (!Significant(&line)) continue;
    std::istringstream ls(line);
    std::string magic;
    ls >> magic;
    return magic == kTelMagic;
  }
  return false;
}

StatusOr<TemporalDataset> LoadAnyDatasetFile(const std::string& path,
                                             bool directed_fallback,
                                             TelHeader* header_out) {
  if (SniffTelFile(path)) return LoadTelFile(path, header_out);
  if (header_out != nullptr) *header_out = TelHeader{};
  auto ds = LoadEdgeListFile(path, directed_fallback);
  if (ds.ok() && header_out != nullptr) {
    header_out->directed = directed_fallback;
  }
  return ds;
}

}  // namespace tcsm
