// Incremental `.tel` stream parser. A StreamReader pulls one record at a
// time off an istream in O(1) memory — it never buffers the stream — so a
// multi-GB capture can feed a SharedStreamContext without ever being
// resident (the replay driver in io/replay.h adds the O(window) live-edge
// queue needed to deliver expirations). Every parse error is a Status
// carrying "<source>:<line>: <what>"; malformed input never aborts.
#ifndef TCSM_IO_STREAM_READER_H_
#define TCSM_IO_STREAM_READER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "graph/temporal_dataset.h"
#include "graph/temporal_edge.h"
#include "io/tel_format.h"

namespace tcsm {

/// One data record of a `.tel` stream.
struct StreamRecord {
  enum class Kind { kArrival, kExpiry };
  Kind kind = Kind::kArrival;
  /// For arrivals: src/dst/ts/label as parsed (id is assigned by the
  /// replay driver in arrival order). For explicit expirations only `ts`
  /// is meaningful — the oldest live edge is the one that expires.
  TemporalEdge edge;
};

class StreamReader {
 public:
  /// Reads from `in`, which must outlive the reader. `source` names the
  /// stream in diagnostics ("g.tel:12: bad edge record").
  explicit StreamReader(std::istream& in, std::string source = "<stream>");

  /// Parses the header line and the `v`-record prefix (vertex labels must
  /// precede the first data record, so the schema is known before any
  /// engine is built). Must be called once, before Next().
  Status Init();

  const TelHeader& header() const { return header_; }
  const std::string& source() const { return source_; }

  /// Vertex labels of the declared universe (label 0 where no `v` record
  /// overrides it). Valid after Init().
  const std::vector<Label>& vertex_labels() const { return vertex_labels_; }

  /// True when the stream declared its vertex universe (`vertices=N`
  /// and/or `v` records) — required for streaming replay, where engines
  /// bind to the schema before the first edge is read.
  bool has_vertex_universe() const { return has_universe_; }

  /// Schema of the stream. Valid after Init(); requires
  /// has_vertex_universe().
  GraphSchema schema() const;

  /// Pulls the next data record. On clean end of stream sets *done and
  /// returns Ok without touching *record. Self loops are dropped (they
  /// can never participate in a match; see DESIGN.md §2), so a returned
  /// arrival is always usable. Validates monotone timestamps, vertex
  /// ranges, and the expiry-mode discipline of the header.
  Status Next(StreamRecord* record, bool* done);

  /// 1-based line number of the last line consumed (for callers layering
  /// their own diagnostics).
  size_t line() const { return lineno_; }

 private:
  Status Fail(const std::string& what) const;
  Status ParseHeader(const std::string& body);
  /// Reads the next significant (non-blank, non-comment) line into
  /// *body; false on EOF.
  bool NextSignificantLine(std::string* body);

  std::istream& in_;
  std::string source_;
  TelHeader header_;
  std::vector<Label> vertex_labels_;
  std::vector<bool> label_declared_;
  bool has_universe_ = false;
  bool init_done_ = false;
  size_t lineno_ = 0;
  /// First data line read ahead by Init() while scanning the v-prefix.
  std::string pending_;
  bool has_pending_ = false;
  Timestamp last_ts_ = kMinusInfinity;
  size_t arrivals_ = 0;
  size_t expiries_ = 0;
};

/// Loads a whole `.tel` stream into a TemporalDataset (arrivals become the
/// edge list; explicit expirations are validated and dropped — a dataset
/// models arrivals, expiry is reconstructed from the window at replay
/// time). The header's window, if any, is returned through *header_out
/// (may be null).
StatusOr<TemporalDataset> ReadTelDataset(std::istream& in,
                                         const std::string& source,
                                         TelHeader* header_out = nullptr);

StatusOr<TemporalDataset> LoadTelFile(const std::string& path,
                                      TelHeader* header_out = nullptr);

/// True when `path`'s first significant line carries the `.tel` magic.
bool SniffTelFile(const std::string& path);

/// Loads `path` as `.tel` when it carries the magic (directedness and
/// labels then come from the file), otherwise as a legacy SNAP-style edge
/// list with the caller's directedness. This is what lets every `tcsm`
/// subcommand accept either format.
StatusOr<TemporalDataset> LoadAnyDatasetFile(const std::string& path,
                                             bool directed_fallback,
                                             TelHeader* header_out = nullptr);

}  // namespace tcsm

#endif  // TCSM_IO_STREAM_READER_H_
