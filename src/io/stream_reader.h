// Incremental `.tel` stream parser. A StreamReader pulls one record at a
// time off an istream in O(1) memory — it never buffers the stream — so a
// multi-GB capture can feed a SharedStreamContext without ever being
// resident (the replay driver in io/replay.h adds the O(window) live-edge
// queue needed to deliver expirations). Init() sniffs the framing by the
// stream's first byte and dispatches: text v1 is parsed line by line here,
// binary v2 (io/tel_binary.h) through a block-buffered decoder — callers
// never see the difference. Every parse error is a Status carrying
// "<source>:<line>: <what>" (text) or "<source>:<byte-offset>: <what>"
// (binary); malformed input never aborts.
#ifndef TCSM_IO_STREAM_READER_H_
#define TCSM_IO_STREAM_READER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "graph/temporal_dataset.h"
#include "graph/temporal_edge.h"
#include "io/tel_format.h"

namespace tcsm {

class BinaryTelReader;  // io/tel_binary.h
struct StageMetrics;    // obs/metrics.h

class StreamReader {
 public:
  /// Reads from `in`, which must outlive the reader (open files in binary
  /// mode — harmless for text, required for v2). `source` names the
  /// stream in diagnostics ("g.tel:12: bad edge record").
  explicit StreamReader(std::istream& in, std::string source = "<stream>");
  ~StreamReader();

  /// Sniffs the framing, then parses the header and the label prefix (so
  /// the schema is known before any engine is built). Must be called
  /// once, before Next().
  Status Init();

  const TelHeader& header() const { return header_; }
  const std::string& source() const { return source_; }

  /// True when Init() found the binary v2 framing.
  bool binary() const { return binary_ != nullptr; }

  /// Vertex labels of the declared universe (label 0 where no `v` record
  /// overrides it). Valid after Init().
  const std::vector<Label>& vertex_labels() const { return vertex_labels_; }

  /// True when the stream declared its vertex universe (`vertices=N`
  /// and/or `v` records; always true for binary v2) — required for
  /// streaming replay, where engines bind to the schema before the first
  /// edge is read.
  bool has_vertex_universe() const { return has_universe_; }

  /// Schema of the stream. Valid after Init(); requires
  /// has_vertex_universe().
  GraphSchema schema() const;

  /// Pulls the next data record. On clean end of stream sets *done and
  /// returns Ok without touching *record. Self loops are dropped (they
  /// can never participate in a match; see DESIGN.md §2), so a returned
  /// arrival is always usable. Validates monotone timestamps, vertex
  /// ranges, and the expiry-mode discipline of the header.
  Status Next(StreamRecord* record, bool* done);

  /// Repositions the reader at the first block whose last timestamp is
  /// >= t, using the binary v2 index footer — O(1) file reads, no
  /// record-by-record skipping. Binary, derived-expiry, seekable streams
  /// only (InvalidArgument otherwise); call after Init(), before the
  /// first Next(). With t past the stream's end, the next Next() reports
  /// a clean end of stream.
  Status SeekToTimestamp(Timestamp t);

  /// Arrival index of the next arrival Next() will return: 0, unless
  /// SeekToTimestamp() skipped blocks — then the count of arrivals
  /// before the seek target, so the replay driver can keep EdgeId
  /// assignment identical to a full replay's suffix.
  uint64_t first_arrival_index() const;

  /// Attaches the observability handle bundle (null = metrics off): the
  /// reader then records io.ingest_bytes / io.ingest_records counters
  /// and the stage.parse_ns histogram (per record for text, per block
  /// load for binary). Bytes consumed before the call (the header) are
  /// credited on the first Next().
  void set_stage_metrics(const StageMetrics* stages);

  /// 1-based line number of the last line consumed (text framing; 0 for
  /// binary, whose diagnostics carry byte offsets instead).
  size_t line() const { return lineno_; }

 private:
  Status Fail(const std::string& what) const;
  Status ParseHeader(const std::string& body);
  Status NextText(StreamRecord* record, bool* done);
  /// Reads the next significant (non-blank, non-comment) line into
  /// *body; false on EOF.
  bool NextSignificantLine(std::string* body);
  void FlushIngestMetrics(uint64_t records);

  std::istream& in_;
  std::string source_;
  TelHeader header_;
  std::vector<Label> vertex_labels_;
  std::vector<bool> label_declared_;
  std::unique_ptr<BinaryTelReader> binary_;
  const StageMetrics* stages_ = nullptr;
  bool has_universe_ = false;
  bool init_done_ = false;
  size_t lineno_ = 0;
  uint64_t bytes_consumed_ = 0;  // text framing; binary_ counts its own
  uint64_t bytes_reported_ = 0;
  /// First data line read ahead by Init() while scanning the v-prefix.
  std::string pending_;
  bool has_pending_ = false;
  Timestamp last_ts_ = kMinusInfinity;
  size_t arrivals_ = 0;
  size_t expiries_ = 0;
};

/// Loads a whole `.tel` stream (either framing) into a TemporalDataset
/// (arrivals become the edge list; explicit expirations are validated and
/// dropped — a dataset models arrivals, expiry is reconstructed from the
/// window at replay time). The header's window, if any, is returned
/// through *header_out (may be null).
StatusOr<TemporalDataset> ReadTelDataset(std::istream& in,
                                         const std::string& source,
                                         TelHeader* header_out = nullptr);

StatusOr<TemporalDataset> LoadTelFile(const std::string& path,
                                      TelHeader* header_out = nullptr);

/// True when `path` starts with the binary v2 magic byte or its first
/// significant line carries the text `.tel` magic token.
bool SniffTelFile(const std::string& path);

/// Loads `path` as `.tel` when it carries the magic (directedness and
/// labels then come from the file), otherwise as a legacy SNAP-style edge
/// list with the caller's directedness. This is what lets every `tcsm`
/// subcommand accept either format.
StatusOr<TemporalDataset> LoadAnyDatasetFile(const std::string& path,
                                             bool directed_fallback,
                                             TelHeader* header_out = nullptr);

}  // namespace tcsm

#endif  // TCSM_IO_STREAM_READER_H_
