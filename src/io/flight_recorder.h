// In-memory flight recorder: a fixed-capacity ring over the replay write
// path retaining the last N arrivals of traffic, dumpable as a replayable
// `.tel` stream (text or binary v2) on demand or when a run dies — so a
// production incident turns into a fuzz case instead of a shrug.
//
// Only arrivals are retained: a dump re-derives expirations from the
// window at replay time, which keeps it valid however the ring's window
// slid (an expiry-record ring could orphan x records whose arrivals were
// already overwritten). Record() is O(1), allocation-free after
// construction, and called from the stream driver thread only.
#ifndef TCSM_IO_FLIGHT_RECORDER_H_
#define TCSM_IO_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "graph/temporal_edge.h"

namespace tcsm {

class FlightRecorder {
 public:
  /// `schema` and `window` become the dump's header (directedness,
  /// vertex labels, window=D); `capacity` is the ring size in arrivals
  /// and must be > 0.
  FlightRecorder(GraphSchema schema, Timestamp window, size_t capacity);

  /// Retains `edge`, overwriting the oldest retained arrival when full.
  void Record(const TemporalEdge& edge) {
    ring_[total_ % ring_.size()] = edge;
    ++total_;
  }

  size_t capacity() const { return ring_.size(); }
  /// Arrivals currently retained (<= capacity).
  size_t size() const {
    return total_ < ring_.size() ? static_cast<size_t>(total_)
                                 : ring_.size();
  }
  /// Arrivals ever recorded; total_recorded() - size() were overwritten.
  uint64_t total_recorded() const { return total_; }

  /// Writes the retained window, oldest first, as a derived-expiry `.tel`
  /// stream that replays standalone (header carries schema + window).
  Status DumpTel(std::ostream& out, bool binary) const;
  Status DumpTelFile(const std::string& path, bool binary) const;

 private:
  GraphSchema schema_;
  Timestamp window_;
  std::vector<TemporalEdge> ring_;
  uint64_t total_ = 0;
};

}  // namespace tcsm

#endif  // TCSM_IO_FLIGHT_RECORDER_H_
