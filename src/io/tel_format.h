// The `.tel` (temporal edge list) on-disk stream format — shared
// definitions for the reader/writer pair. docs/FILE_FORMATS.md is the
// normative specification; this header mirrors its grammar:
//
//   tel 1 <directed|undirected> [vertices=N] [window=D] [expiry=explicit]
//   v <id> <label>              # vertex label (before the first e/x record)
//   e <src> <dst> <ts> [elabel] # edge arrival, timestamps non-decreasing
//   x <ts>                      # explicit expiry of the oldest live edge
//                               # (only in expiry=explicit streams)
//
// '#' starts a comment anywhere on a line; blank lines are ignored. A
// stream either derives expirations from a window (edge e expires at
// e.ts + delta, expirations before arrivals on ties — Example II.2) or
// records them explicitly with `x` lines; the header's `expiry=` key
// selects the mode for the whole stream.
// A `.tel` stream also has a binary v2 framing (same records, block-framed
// with an index footer for O(1) seek) — see io/tel_binary.h and the
// normative §binary-v2 spec in docs/FILE_FORMATS.md. Readers sniff the
// framing by the first byte: text v1 never starts with 0x89.
#ifndef TCSM_IO_TEL_FORMAT_H_
#define TCSM_IO_TEL_FORMAT_H_

#include <cstddef>
#include <limits>

#include "common/types.h"
#include "graph/temporal_edge.h"

namespace tcsm {

/// Magic token of the header line; a file whose first significant line
/// starts with this token is a `.tel` stream (format sniffing).
inline constexpr const char* kTelMagic = "tel";

/// The one format version this reader/writer pair implements. Readers
/// reject other versions and unknown header keys, so v1 files can never
/// be silently misread by a future grammar.
inline constexpr int kTelVersion = 1;

/// Largest timestamp magnitude (and window) a `.tel` file may carry —
/// the library-wide overflow cap (common/types.h), so the derived expiry
/// time ts + window can never overflow however hostile the file.
inline constexpr Timestamp kMaxTelTimestamp = kMaxStreamTimestamp;

/// Parsed `.tel` header line.
struct TelHeader {
  int version = kTelVersion;
  bool directed = false;
  /// Declared vertex-universe size (`vertices=N`); 0 with
  /// `has_vertices == false` when the key is absent and the universe is
  /// inferred from `v` records instead.
  size_t num_vertices = 0;
  bool has_vertices = false;
  /// Suggested replay window (`window=D`); 0 = none recorded.
  Timestamp window = 0;
  /// True for `expiry=explicit` streams: expirations are `x` records in
  /// the file rather than derived from a window at replay time.
  bool explicit_expiry = false;
};

/// One data record of a `.tel` stream (either framing).
struct StreamRecord {
  enum class Kind { kArrival, kExpiry };
  Kind kind = Kind::kArrival;
  /// For arrivals: src/dst/ts/label as parsed (id is assigned by the
  /// replay driver in arrival order). For explicit expirations only `ts`
  /// is meaningful — the oldest live edge is the one that expires.
  TemporalEdge edge;
};

}  // namespace tcsm

#endif  // TCSM_IO_TEL_FORMAT_H_
