#include "io/flight_recorder.h"

#include <fstream>
#include <ostream>
#include <utility>

#include "common/logging.h"
#include "io/stream_writer.h"

namespace tcsm {

FlightRecorder::FlightRecorder(GraphSchema schema, Timestamp window,
                               size_t capacity)
    : schema_(std::move(schema)), window_(window), ring_(capacity) {
  TCSM_CHECK(capacity > 0);
}

Status FlightRecorder::DumpTel(std::ostream& out, bool binary) const {
  StreamWriter writer(out);
  TelWriteOptions options;
  options.window = window_;
  options.binary = binary;
  Status s = writer.BeginStream(schema_.directed, schema_.vertex_labels,
                                options);
  if (!s.ok()) return s;
  const size_t n = size();
  // Oldest retained arrival: once the ring has wrapped, the write cursor
  // (total_ % capacity) points at the record about to be overwritten —
  // which is exactly the oldest one still held.
  const size_t start =
      total_ > ring_.size() ? static_cast<size_t>(total_ % ring_.size()) : 0;
  for (size_t i = 0; i < n; ++i) {
    s = writer.RecordArrival(ring_[(start + i) % ring_.size()]);
    if (!s.ok()) return s;
  }
  return writer.Finish();
}

Status FlightRecorder::DumpTelFile(const std::string& path,
                                   bool binary) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  return DumpTel(out, binary);
}

}  // namespace tcsm
