// Binary `.tel` v2 framing: block-framed records behind the same
// StreamReader/StreamWriter surface as the text format. The normative
// wire specification is docs/FILE_FORMATS.md §binary-v2; this header
// mirrors it. All integers are little-endian.
//
//   magic(8) header(24) labels  block... sentinel(u32 0) index trailer(24)
//
// Each block carries up to `block_records` records in one of two
// encodings: fixed 24-byte records (decoded with four unaligned loads),
// or varint records with delta-encoded timestamps (the default — dense
// timestamps compress to a couple of bytes per record). The index maps
// every block to {file offset, first/last timestamp, record count,
// cumulative arrival index}, and the 24-byte trailer at EOF points at it,
// so a seekable reader reaches any timestamp in O(1) file reads
// (`tcsm replay --seek-ts=T`). Sequential readers (pipes) stop at the
// zero sentinel and never need the index.
//
// The reader pulls a whole block payload into a reusable buffer with one
// istream read and decodes records by pointer arithmetic — no per-record
// istream round-trips or allocation, which is where the ≥3× parse
// throughput over the text format comes from (bench_io_throughput).
// Every diagnostic is a Status carrying "<source>:<byte-offset>: <what>";
// malformed input never aborts.
#ifndef TCSM_IO_TEL_BINARY_H_
#define TCSM_IO_TEL_BINARY_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/temporal_edge.h"
#include "io/tel_format.h"

namespace tcsm {

class Histogram;  // obs/metrics.h; null handle = metrics off

/// First bytes of a binary v2 stream. The leading 0x89 (as in PNG) can
/// never begin a text `.tel` line, so one peeked byte decides the
/// framing; the 0x0D,0x0A,0x1A tail catches newline-mangling transports.
inline constexpr unsigned char kTelBinaryMagic[8] = {0x89, 'T',  'E',  'L',
                                                     '2',  0x0D, 0x0A, 0x1A};
/// Last 8 bytes of the trailer ('X' for "index"), so a tail read can
/// recognize a well-formed footer before trusting its offsets.
inline constexpr unsigned char kTelBinaryFooterMagic[8] = {
    0x89, 'T', 'E', 'L', 'X', 0x0D, 0x0A, 0x1A};

inline constexpr uint16_t kTelBinaryVersion = 2;

// Header flag bits; readers reject unknown bits (as the text reader
// rejects unknown header keys), so v2 files cannot be silently misread.
inline constexpr uint16_t kTelBinaryFlagDirected = 1u << 0;
inline constexpr uint16_t kTelBinaryFlagExplicitExpiry = 1u << 1;

// Record kinds (mirrors StreamRecord::Kind).
inline constexpr uint8_t kTelRecordArrival = 0;
inline constexpr uint8_t kTelRecordExpiry = 1;

// Block encodings.
inline constexpr uint32_t kTelBlockFixed = 0;
inline constexpr uint32_t kTelBlockVarint = 1;

inline constexpr size_t kTelBinaryHeaderBytes = 24;  // after the magic
inline constexpr size_t kTelBlockHeaderBytes = 32;
inline constexpr size_t kTelFixedRecordBytes = 24;
inline constexpr size_t kTelIndexEntryBytes = 40;
inline constexpr size_t kTelTrailerBytes = 24;
inline constexpr size_t kDefaultTelBlockRecords = 4096;

/// Hostile-input allocation cap: a block payload larger than this is
/// corrupt framing, not a big block (4096 fixed records are ~96 KiB).
inline constexpr uint32_t kMaxTelBlockPayloadBytes = 1u << 24;

/// Writer-side ceiling on records per block, chosen so even worst-case
/// varint records (26 bytes) stay under kMaxTelBlockPayloadBytes. A
/// larger block-records request is silently clamped here.
inline constexpr size_t kMaxTelBlockRecords = kMaxTelBlockPayloadBytes / 32;

/// One row of the block index (40 bytes on the wire).
struct TelBlockIndexEntry {
  uint64_t offset = 0;  ///< Block header's offset from the file start.
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
  uint32_t record_count = 0;
  uint32_t encoding = 0;
  /// Arrivals recorded before this block — what lets a seeked replay
  /// assign the same dense EdgeIds the full replay would have.
  uint64_t first_arrival_index = 0;
};

/// Block-building serializer. StreamWriter owns all record validation
/// (monotone timestamps, vertex ranges, expiry discipline) and hands this
/// class only records that already passed, so Add* cannot fail; stream
/// write errors surface once, at Finish() (same contract as the text
/// path). Works on non-seekable sinks: offsets are counted, not told.
class BinaryTelWriter {
 public:
  explicit BinaryTelWriter(std::ostream& out);

  /// Emits magic, header, and the vertex-label section. `labels` is the
  /// declared universe and must be non-empty — a binary stream always
  /// declares its universe (there is no v-record-less variant).
  Status Begin(bool directed, const std::vector<Label>& labels,
               Timestamp window, bool explicit_expiry, bool varint,
               size_t block_records, bool all_vertex_labels);

  void AddArrival(const TemporalEdge& edge);
  void AddExpiry(Timestamp ts);

  /// Flushes the tail block, writes the zero sentinel, the index, and
  /// the trailer; reports any stream write failure.
  Status Finish();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void AppendRecord(uint8_t kind, const TemporalEdge& edge);
  void FlushBlock();
  void Write(const void* p, size_t n);

  std::ostream& out_;
  bool varint_ = true;
  size_t block_records_ = kDefaultTelBlockRecords;
  uint64_t bytes_written_ = 0;
  uint64_t arrivals_total_ = 0;
  std::vector<uint8_t> payload_;
  uint32_t block_count_ = 0;
  Timestamp block_first_ts_ = 0;
  Timestamp block_last_ts_ = 0;
  Timestamp prev_ts_ = 0;
  uint64_t block_first_arrival_ = 0;
  std::vector<TelBlockIndexEntry> index_;
};

/// Block-buffered deserializer. One istream read per block into a
/// reusable buffer; Next() decodes records out of it with pointer
/// arithmetic. Validates everything the text reader validates (monotone
/// timestamps, ranges, expiry discipline, self-loop drop) plus the block
/// framing itself, with byte-offset diagnostics.
class BinaryTelReader {
 public:
  /// `in` must outlive the reader and should be opened in binary mode.
  BinaryTelReader(std::istream& in, std::string source);

  /// Reads magic, header, and labels. Must be called once, before Next().
  Status Init();

  const TelHeader& header() const { return header_; }
  const std::vector<Label>& vertex_labels() const { return vertex_labels_; }

  /// Same contract as StreamReader::Next. A clean stream ends at the zero
  /// sentinel; EOF before it is a truncated-stream error, so a cut-off
  /// capture can never silently pass for a complete one.
  Status Next(StreamRecord* record, bool* done);

  /// Positions the reader at the first block whose last_ts >= t, using
  /// the index footer (O(1) file reads). Requires a seekable stream, a
  /// derived-expiry stream (explicit x records reference the live-edge
  /// FIFO from the stream's start and cannot be resumed mid-file), and
  /// must be called before the first Next().
  Status SeekToTimestamp(Timestamp t);

  /// Arrival index of the next arrival Next() will return — 0 unless
  /// SeekToTimestamp() skipped blocks. The replay driver starts its
  /// EdgeId assignment here so a seeked replay's match lines are
  /// byte-identical to the full replay's suffix.
  uint64_t first_arrival_index() const { return first_arrival_index_; }

  /// Total bytes pulled off the stream so far (io.ingest_bytes).
  uint64_t bytes_consumed() const { return bytes_consumed_; }

  /// Per-block load+frame latency histogram (stage.parse_ns); null = off.
  void set_parse_histogram(Histogram* h) { parse_ns_ = h; }

 private:
  Status Fail(uint64_t offset, const std::string& what) const;
  /// Reads exactly n bytes into buf, counting them; a short read fails
  /// with `what` at the read's starting offset.
  Status ReadExact(void* buf, size_t n, const char* what);
  /// Reads the next block header + payload into payload_. Sets *end on
  /// the zero sentinel.
  Status LoadNextBlock(bool* end);
  Status DecodeVarint(const uint8_t* end, const uint8_t** p, uint64_t* v,
                      uint64_t record_offset);

  std::istream& in_;
  std::string source_;
  TelHeader header_;
  std::vector<Label> vertex_labels_;
  Histogram* parse_ns_ = nullptr;
  bool init_done_ = false;
  bool consumed_any_ = false;
  uint64_t bytes_consumed_ = 0;

  // Current block (decode state).
  std::vector<uint8_t> payload_;
  size_t cursor_ = 0;
  uint32_t block_remaining_ = 0;
  uint32_t block_encoding_ = kTelBlockFixed;
  Timestamp block_first_ts_ = 0;
  Timestamp block_last_ts_ = 0;
  Timestamp prev_ts_ = 0;        // varint delta base
  uint64_t payload_offset_ = 0;  // file offset of payload_[0]

  // Stream-level validation state.
  Timestamp last_ts_ = kMinusInfinity;
  uint64_t arrivals_ = 0;
  uint64_t expiries_ = 0;
  uint64_t first_arrival_index_ = 0;
  /// Set by SeekToTimestamp: the next LoadNextBlock cross-checks the
  /// block header against this index entry (catches stale footers).
  TelBlockIndexEntry pending_check_;
  bool has_pending_check_ = false;
};

}  // namespace tcsm

#endif  // TCSM_IO_TEL_BINARY_H_
