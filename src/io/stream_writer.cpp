#include "io/stream_writer.h"

#include <fstream>
#include <ostream>

#include "io/tel_binary.h"

namespace tcsm {

StreamWriter::StreamWriter(std::ostream& out) : out_(out) {}

StreamWriter::~StreamWriter() = default;

Status StreamWriter::BeginStream(bool directed,
                                 const std::vector<Label>& vertex_labels,
                                 const TelWriteOptions& options) {
  if (begun_) return Status::InvalidArgument("stream already begun");
  if (options.explicit_expiry && options.window <= 0) {
    // A header window is what documents the schedule the x records were
    // derived from; require it so explicit files stay self-describing.
    return Status::InvalidArgument(
        "explicit-expiry streams require a positive window");
  }
  if (options.window > kMaxTelTimestamp) {
    return Status::InvalidArgument("window too large (must stay below 2^61)");
  }
  if (options.binary) {
    auto binary = std::make_unique<BinaryTelWriter>(out_);
    const Status s = binary->Begin(directed, vertex_labels, options.window,
                                   options.explicit_expiry,
                                   options.varint_timestamps,
                                   options.block_records,
                                   options.all_vertex_labels);
    if (!s.ok()) return s;
    binary_ = std::move(binary);
    begun_ = true;
    explicit_expiry_ = options.explicit_expiry;
    num_vertices_ = vertex_labels.size();
    return Status::Ok();
  }
  begun_ = true;
  explicit_expiry_ = options.explicit_expiry;
  num_vertices_ = vertex_labels.size();
  out_ << kTelMagic << ' ' << kTelVersion << ' '
       << (directed ? "directed" : "undirected")
       << " vertices=" << vertex_labels.size();
  if (options.window > 0) out_ << " window=" << options.window;
  if (options.explicit_expiry) out_ << " expiry=explicit";
  out_ << '\n';
  for (size_t v = 0; v < vertex_labels.size(); ++v) {
    if (options.all_vertex_labels || vertex_labels[v] != 0) {
      out_ << "v " << v << ' ' << vertex_labels[v] << '\n';
    }
  }
  return Status::Ok();
}

Status StreamWriter::RecordArrival(const TemporalEdge& edge) {
  if (!begun_) return Status::InvalidArgument("BeginStream not called");
  if (edge.src == edge.dst) {
    return Status::InvalidArgument("self loop cannot be recorded");
  }
  if (edge.src >= num_vertices_ || edge.dst >= num_vertices_) {
    return Status::InvalidArgument(
        "edge endpoint outside the declared vertex universe");
  }
  if (edge.ts < -kMaxTelTimestamp || edge.ts > kMaxTelTimestamp) {
    return Status::InvalidArgument(
        "timestamp out of the recordable range (|ts| below 2^61)");
  }
  if (edge.ts < last_ts_) {
    return Status::InvalidArgument(
        "arrival timestamps must be non-decreasing");
  }
  last_ts_ = edge.ts;
  if (binary_ != nullptr) {
    binary_->AddArrival(edge);
  } else {
    out_ << "e " << edge.src << ' ' << edge.dst << ' ' << edge.ts;
    if (edge.label != 0) out_ << ' ' << edge.label;
    out_ << '\n';
  }
  ++arrivals_;
  return Status::Ok();
}

Status StreamWriter::RecordExpiry(Timestamp ts) {
  if (!begun_) return Status::InvalidArgument("BeginStream not called");
  if (!explicit_expiry_) {
    return Status::InvalidArgument(
        "expiry records require explicit-expiry mode");
  }
  if (expiries_ >= arrivals_) {
    return Status::InvalidArgument("expiry with no live edge");
  }
  if (ts < -kMaxTelTimestamp || ts > kMaxTelTimestamp) {
    // Keeps the one file-level rule (every recorded timestamp parses
    // back); reachable only with arrivals near the 2^61 cap plus a huge
    // window, where refusing beats writing a file the reader rejects.
    return Status::InvalidArgument(
        "timestamp out of the recordable range (|ts| below 2^61)");
  }
  if (ts < last_ts_) {
    return Status::InvalidArgument(
        "expiry timestamps must be non-decreasing");
  }
  last_ts_ = ts;
  if (binary_ != nullptr) {
    binary_->AddExpiry(ts);
  } else {
    out_ << "x " << ts << '\n';
  }
  ++expiries_;
  return Status::Ok();
}

Status StreamWriter::Finish() {
  if (binary_ != nullptr) return binary_->Finish();
  out_.flush();
  if (!out_) return Status::InvalidArgument("stream write failed");
  return Status::Ok();
}

Status WriteTel(const TemporalDataset& dataset,
                const TelWriteOptions& options, std::ostream& out) {
  StreamWriter writer(out);
  Status s = writer.BeginStream(dataset.directed, dataset.vertex_labels,
                                options);
  if (!s.ok()) return s;
  if (!options.explicit_expiry) {
    for (const TemporalEdge& e : dataset.edges) {
      s = writer.RecordArrival(e);
      if (!s.ok()) return s;
    }
    return writer.Finish();
  }
  // Materialize the replay schedule (expirations before arrivals on
  // equal timestamps — the tie rule of Example II.2 / RunStream).
  const size_t n = dataset.edges.size();
  size_t arr = 0;
  size_t exp = 0;
  while (arr < n || exp < arr) {
    const bool do_expire =
        exp < arr &&
        (arr >= n || dataset.edges[exp].ts + options.window <=
                         dataset.edges[arr].ts);
    if (do_expire) {
      s = writer.RecordExpiry(dataset.edges[exp].ts + options.window);
      ++exp;
    } else {
      s = writer.RecordArrival(dataset.edges[arr]);
      ++arr;
    }
    if (!s.ok()) return s;
  }
  return writer.Finish();
}

Status SaveTelFile(const TemporalDataset& dataset,
                   const TelWriteOptions& options, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  return WriteTel(dataset, options, out);
}

}  // namespace tcsm
