#include "io/tel_binary.h"

#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tcsm {

namespace {

// Explicit little-endian codecs: shift form compiles to single loads and
// stores on LE hardware while keeping the wire format host-independent.

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

int64_t LoadI64(const uint8_t* p) { return static_cast<int64_t>(LoadU64(p)); }

void PutU32(std::vector<uint8_t>* b, uint32_t v) {
  const size_t at = b->size();
  b->resize(at + 4);
  StoreU32(b->data() + at, v);
}

void PutU64(std::vector<uint8_t>* b, uint64_t v) {
  const size_t at = b->size();
  b->resize(at + 8);
  StoreU64(b->data() + at, v);
}

/// LEB128; timestamps are non-decreasing so deltas need no zigzag.
void PutVarint(std::vector<uint8_t>* b, uint64_t v) {
  while (v >= 0x80) {
    b->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  b->push_back(static_cast<uint8_t>(v));
}

constexpr size_t kMaxVarintBytes = 10;

/// Largest valid id bound, as in the text reader: ids must fit VertexId
/// with kInvalidVertex reserved.
constexpr uint64_t kMaxVertexCount = static_cast<uint64_t>(kInvalidVertex);

}  // namespace

// ---------------------------------------------------------------------------
// Writer

BinaryTelWriter::BinaryTelWriter(std::ostream& out) : out_(out) {}

void BinaryTelWriter::Write(const void* p, size_t n) {
  out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  bytes_written_ += n;
}

Status BinaryTelWriter::Begin(bool directed, const std::vector<Label>& labels,
                              Timestamp window, bool explicit_expiry,
                              bool varint, size_t block_records,
                              bool all_vertex_labels) {
  if (labels.empty()) {
    return Status::InvalidArgument(
        "binary .tel streams must declare a non-empty vertex universe");
  }
  if (labels.size() >= kMaxVertexCount) {
    return Status::InvalidArgument("vertex universe too large");
  }
  varint_ = varint;
  block_records_ =
      block_records > 0 ? block_records : kDefaultTelBlockRecords;
  if (block_records_ > kMaxTelBlockRecords) {
    block_records_ = kMaxTelBlockRecords;  // keep payloads readable
  }
  payload_.reserve(block_records_ * kTelFixedRecordBytes);

  Write(kTelBinaryMagic, sizeof(kTelBinaryMagic));
  uint8_t hdr[kTelBinaryHeaderBytes] = {};
  StoreU16(hdr, kTelBinaryVersion);
  uint16_t flags = 0;
  if (directed) flags |= kTelBinaryFlagDirected;
  if (explicit_expiry) flags |= kTelBinaryFlagExplicitExpiry;
  StoreU16(hdr + 2, flags);
  // hdr[4..8) reserved = 0
  StoreU64(hdr + 8, labels.size());
  StoreU64(hdr + 16, static_cast<uint64_t>(window));
  Write(hdr, sizeof(hdr));

  // Label section: only non-default labels, id-ascending (mirrors the
  // text writer's v-record policy), unless all_vertex_labels.
  std::vector<uint8_t> section;
  uint64_t count = 0;
  for (size_t v = 0; v < labels.size(); ++v) {
    if (all_vertex_labels || labels[v] != 0) {
      PutU32(&section, static_cast<uint32_t>(v));
      PutU32(&section, labels[v]);
      ++count;
    }
  }
  uint8_t cnt[8];
  StoreU64(cnt, count);
  Write(cnt, sizeof(cnt));
  if (!section.empty()) Write(section.data(), section.size());
  return Status::Ok();
}

void BinaryTelWriter::AppendRecord(uint8_t kind, const TemporalEdge& edge) {
  if (block_count_ == 0) {
    block_first_ts_ = edge.ts;
    prev_ts_ = edge.ts;  // first record's delta is 0 by construction
    block_first_arrival_ = arrivals_total_;
  }
  if (varint_) {
    payload_.push_back(kind);
    PutVarint(&payload_, static_cast<uint64_t>(edge.ts - prev_ts_));
    if (kind == kTelRecordArrival) {
      PutVarint(&payload_, edge.src);
      PutVarint(&payload_, edge.dst);
      PutVarint(&payload_, edge.label);
    }
  } else {
    PutU32(&payload_, kind);
    PutU32(&payload_, edge.src);
    PutU32(&payload_, edge.dst);
    PutU32(&payload_, edge.label);
    PutU64(&payload_, static_cast<uint64_t>(edge.ts));
  }
  prev_ts_ = edge.ts;
  block_last_ts_ = edge.ts;
  ++block_count_;
  if (kind == kTelRecordArrival) ++arrivals_total_;
  if (block_count_ >= block_records_) FlushBlock();
}

void BinaryTelWriter::AddArrival(const TemporalEdge& edge) {
  AppendRecord(kTelRecordArrival, edge);
}

void BinaryTelWriter::AddExpiry(Timestamp ts) {
  TemporalEdge e{};
  e.ts = ts;
  AppendRecord(kTelRecordExpiry, e);
}

void BinaryTelWriter::FlushBlock() {
  if (block_count_ == 0) return;
  TelBlockIndexEntry entry;
  entry.offset = bytes_written_;
  entry.first_ts = block_first_ts_;
  entry.last_ts = block_last_ts_;
  entry.record_count = block_count_;
  entry.encoding = varint_ ? kTelBlockVarint : kTelBlockFixed;
  entry.first_arrival_index = block_first_arrival_;
  index_.push_back(entry);

  uint8_t hdr[kTelBlockHeaderBytes] = {};
  StoreU32(hdr, block_count_);
  StoreU32(hdr + 4, entry.encoding);
  StoreU32(hdr + 8, static_cast<uint32_t>(payload_.size()));
  // hdr[12..16) reserved = 0
  StoreU64(hdr + 16, static_cast<uint64_t>(block_first_ts_));
  StoreU64(hdr + 24, static_cast<uint64_t>(block_last_ts_));
  Write(hdr, sizeof(hdr));
  Write(payload_.data(), payload_.size());
  payload_.clear();
  block_count_ = 0;
}

Status BinaryTelWriter::Finish() {
  FlushBlock();
  uint8_t sentinel[4] = {};  // record_count 0 = end of data
  Write(sentinel, sizeof(sentinel));
  const uint64_t index_offset = bytes_written_;
  uint8_t cnt[8];
  StoreU64(cnt, index_.size());
  Write(cnt, sizeof(cnt));
  for (const TelBlockIndexEntry& e : index_) {
    uint8_t row[kTelIndexEntryBytes];
    StoreU64(row, e.offset);
    StoreU64(row + 8, static_cast<uint64_t>(e.first_ts));
    StoreU64(row + 16, static_cast<uint64_t>(e.last_ts));
    StoreU32(row + 24, e.record_count);
    StoreU32(row + 28, e.encoding);
    StoreU64(row + 32, e.first_arrival_index);
    Write(row, sizeof(row));
  }
  uint8_t trailer[kTelTrailerBytes];
  StoreU64(trailer, index_offset);
  StoreU64(trailer + 8, index_.size());
  std::memcpy(trailer + 16, kTelBinaryFooterMagic, 8);
  Write(trailer, sizeof(trailer));
  out_.flush();
  if (!out_) return Status::InvalidArgument("stream write failed");
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Reader

BinaryTelReader::BinaryTelReader(std::istream& in, std::string source)
    : in_(in), source_(std::move(source)) {}

Status BinaryTelReader::Fail(uint64_t offset, const std::string& what) const {
  return Status::CorruptInput(source_ + ":" + std::to_string(offset) + ": " +
                              what);
}

Status BinaryTelReader::ReadExact(void* buf, size_t n, const char* what) {
  const uint64_t at = bytes_consumed_;
  in_.read(static_cast<char*>(buf), static_cast<std::streamsize>(n));
  const size_t got = static_cast<size_t>(in_.gcount());
  bytes_consumed_ += got;
  if (got != n) {
    return Fail(at, std::string(what) + " (wanted " + std::to_string(n) +
                        " bytes, stream ended after " + std::to_string(got) +
                        ")");
  }
  return Status::Ok();
}

Status BinaryTelReader::Init() {
  TCSM_CHECK(!init_done_);
  init_done_ = true;
  uint8_t magic[sizeof(kTelBinaryMagic)];
  Status s = ReadExact(magic, sizeof(magic), "truncated stream");
  if (!s.ok()) return s;
  if (std::memcmp(magic, kTelBinaryMagic, sizeof(magic)) != 0) {
    return Fail(0, "bad binary magic (first byte says binary .tel v2, but "
                   "the 8-byte signature does not match — transport "
                   "corruption?)");
  }
  uint8_t hdr[kTelBinaryHeaderBytes];
  s = ReadExact(hdr, sizeof(hdr), "truncated header");
  if (!s.ok()) return s;
  const uint16_t version = LoadU16(hdr);
  if (version != kTelBinaryVersion) {
    return Fail(sizeof(magic),
                "unsupported tel version " + std::to_string(version) +
                    " (this reader implements binary version " +
                    std::to_string(kTelBinaryVersion) + ")");
  }
  const uint16_t flags = LoadU16(hdr + 2);
  const uint16_t known =
      kTelBinaryFlagDirected | kTelBinaryFlagExplicitExpiry;
  if ((flags & ~known) != 0) {
    return Fail(sizeof(magic) + 2,
                "unknown header flag bits (v2 flags: directed, "
                "expiry=explicit)");
  }
  const uint64_t num_vertices = LoadU64(hdr + 8);
  if (num_vertices == 0 || num_vertices >= kMaxVertexCount) {
    return Fail(sizeof(magic) + 8,
                "bad vertices count " + std::to_string(num_vertices) +
                    " (binary streams declare a non-empty universe)");
  }
  const int64_t window = LoadI64(hdr + 16);
  if (window < 0 || window > kMaxTelTimestamp) {
    return Fail(sizeof(magic) + 16,
                "bad window (must be a non-negative integer below 2^61)");
  }
  header_.version = version;
  header_.directed = (flags & kTelBinaryFlagDirected) != 0;
  header_.explicit_expiry = (flags & kTelBinaryFlagExplicitExpiry) != 0;
  header_.num_vertices = static_cast<size_t>(num_vertices);
  header_.has_vertices = true;
  header_.window = window;
  vertex_labels_.assign(header_.num_vertices, 0);

  uint8_t cnt[8];
  s = ReadExact(cnt, sizeof(cnt), "truncated label section");
  if (!s.ok()) return s;
  const uint64_t label_count = LoadU64(cnt);
  if (label_count > num_vertices) {
    return Fail(bytes_consumed_ - sizeof(cnt),
                "bad label count (more label records than vertices)");
  }
  int64_t prev_id = -1;
  for (uint64_t i = 0; i < label_count; ++i) {
    uint8_t pair[8];
    s = ReadExact(pair, sizeof(pair), "truncated label section");
    if (!s.ok()) return s;
    const uint32_t id = LoadU32(pair);
    if (id >= num_vertices) {
      return Fail(bytes_consumed_ - sizeof(pair),
                  "vertex id " + std::to_string(id) +
                      " out of declared range (vertices=" +
                      std::to_string(num_vertices) + ")");
    }
    if (static_cast<int64_t>(id) <= prev_id) {
      return Fail(bytes_consumed_ - sizeof(pair),
                  "label records must have strictly increasing vertex ids");
    }
    prev_id = static_cast<int64_t>(id);
    vertex_labels_[id] = LoadU32(pair + 4);
  }
  return Status::Ok();
}

Status BinaryTelReader::LoadNextBlock(bool* end) {
  *end = false;
  const auto start = parse_ns_ != nullptr
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point();
  const uint64_t block_offset = bytes_consumed_;
  uint8_t hdr[kTelBlockHeaderBytes];
  Status s = ReadExact(hdr, 4, "truncated stream (missing end-of-data "
                               "marker and index footer)");
  if (!s.ok()) return s;
  const uint32_t count = LoadU32(hdr);
  if (count == 0) {  // sentinel: data section ends, index follows
    *end = true;
    return Status::Ok();
  }
  s = ReadExact(hdr + 4, sizeof(hdr) - 4, "truncated block header");
  if (!s.ok()) return s;
  const uint32_t encoding = LoadU32(hdr + 4);
  const uint32_t payload_bytes = LoadU32(hdr + 8);
  const Timestamp first_ts = LoadI64(hdr + 16);
  const Timestamp last_ts = LoadI64(hdr + 24);
  if (encoding != kTelBlockFixed && encoding != kTelBlockVarint) {
    return Fail(block_offset + 4,
                "bad block encoding " + std::to_string(encoding) +
                    " (0 = fixed, 1 = varint)");
  }
  if (payload_bytes > kMaxTelBlockPayloadBytes) {
    return Fail(block_offset + 8, "block payload too large");
  }
  if (encoding == kTelBlockFixed) {
    if (static_cast<uint64_t>(count) * kTelFixedRecordBytes !=
        payload_bytes) {
      return Fail(block_offset + 8,
                  "block payload size does not match its record count");
    }
  } else if (payload_bytes < count) {  // >= 1 byte per varint record
    return Fail(block_offset + 8,
                "block payload too small for its record count");
  }
  if (first_ts < -kMaxTelTimestamp || last_ts > kMaxTelTimestamp ||
      first_ts > last_ts) {
    return Fail(block_offset + 16, "bad block timestamp frame");
  }
  if (first_ts < last_ts_) {
    return Fail(block_offset + 16,
                "block timestamps regress (first_ts " +
                    std::to_string(first_ts) + " after " +
                    std::to_string(last_ts_) + ")");
  }
  if (has_pending_check_) {
    // First block after a seek: the header must agree with the index
    // entry that sent us here, or the footer is stale/corrupt.
    if (pending_check_.record_count != count ||
        pending_check_.encoding != encoding ||
        pending_check_.first_ts != first_ts ||
        pending_check_.last_ts != last_ts) {
      return Fail(block_offset,
                  "index/footer mismatch (block header disagrees with its "
                  "index entry)");
    }
    has_pending_check_ = false;
  }
  payload_.resize(payload_bytes);
  payload_offset_ = bytes_consumed_;
  s = ReadExact(payload_.data(), payload_bytes, "truncated block");
  if (!s.ok()) return s;
  cursor_ = 0;
  block_remaining_ = count;
  block_encoding_ = encoding;
  block_first_ts_ = first_ts;
  block_last_ts_ = last_ts;
  prev_ts_ = first_ts;
  if (parse_ns_ != nullptr) {
    parse_ns_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  return Status::Ok();
}

Status BinaryTelReader::DecodeVarint(const uint8_t* end, const uint8_t** p,
                                     uint64_t* v, uint64_t record_offset) {
  uint64_t out = 0;
  int shift = 0;
  const uint8_t* q = *p;
  for (size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (q == end) {
      return Fail(record_offset, "corrupt varint (runs past the block "
                                 "payload)");
    }
    const uint8_t byte = *q++;
    if (i == kMaxVarintBytes - 1 && (byte & ~uint8_t{1}) != 0) {
      return Fail(record_offset, "corrupt varint (value overflows 64 bits)");
    }
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *v = out;
      return Status::Ok();
    }
    shift += 7;
  }
  return Fail(record_offset, "corrupt varint (more than 10 bytes)");
}

Status BinaryTelReader::Next(StreamRecord* record, bool* done) {
  TCSM_CHECK(init_done_);
  *done = false;
  consumed_any_ = true;
  while (true) {
    if (block_remaining_ == 0) {
      bool end = false;
      const Status s = LoadNextBlock(&end);
      if (!s.ok()) return s;
      if (end) {
        *done = true;
        return Status::Ok();
      }
    }
    const uint64_t record_offset = payload_offset_ + cursor_;
    uint8_t kind;
    uint64_t src = 0, dst = 0, label = 0;
    Timestamp ts;
    if (block_encoding_ == kTelBlockFixed) {
      const uint8_t* p = payload_.data() + cursor_;
      const uint32_t kind32 = LoadU32(p);
      if (kind32 > kTelRecordExpiry) {
        return Fail(record_offset,
                    "bad record kind " + std::to_string(kind32));
      }
      kind = static_cast<uint8_t>(kind32);
      src = LoadU32(p + 4);
      dst = LoadU32(p + 8);
      label = LoadU32(p + 12);
      ts = LoadI64(p + 16);
      cursor_ += kTelFixedRecordBytes;
    } else {
      const uint8_t* p = payload_.data() + cursor_;
      const uint8_t* const end = payload_.data() + payload_.size();
      if (p == end) {
        return Fail(record_offset,
                    "block payload exhausted before its record count");
      }
      kind = *p++;
      if (kind > kTelRecordExpiry) {
        return Fail(record_offset, "bad record kind " + std::to_string(kind));
      }
      uint64_t delta = 0;
      Status s = DecodeVarint(end, &p, &delta, record_offset);
      if (!s.ok()) return s;
      if (delta > static_cast<uint64_t>(kMaxTelTimestamp - prev_ts_)) {
        return Fail(record_offset,
                    "timestamp out of range (|ts| must stay below 2^61 so "
                    "expiry times cannot overflow)");
      }
      ts = prev_ts_ + static_cast<Timestamp>(delta);
      if (kind == kTelRecordArrival) {
        s = DecodeVarint(end, &p, &src, record_offset);
        if (s.ok()) s = DecodeVarint(end, &p, &dst, record_offset);
        if (s.ok()) s = DecodeVarint(end, &p, &label, record_offset);
        if (!s.ok()) return s;
      }
      cursor_ = static_cast<size_t>(p - payload_.data());
    }
    --block_remaining_;
    prev_ts_ = ts;
    if (block_remaining_ == 0 && cursor_ != payload_.size()) {
      return Fail(payload_offset_ + cursor_,
                  "block payload has trailing bytes past its last record");
    }

    // Record validation, mirroring the text reader plus the block frame.
    if (ts < -kMaxTelTimestamp || ts > kMaxTelTimestamp) {
      return Fail(record_offset,
                  "timestamp out of range (|ts| must stay below 2^61 so "
                  "expiry times cannot overflow)");
    }
    if (ts < block_first_ts_ || ts > block_last_ts_) {
      return Fail(record_offset,
                  "record timestamp outside its block's [first_ts, last_ts] "
                  "frame");
    }
    if (ts < last_ts_) {
      return Fail(record_offset,
                  "timestamps must be non-decreasing (got " +
                      std::to_string(ts) + " after " +
                      std::to_string(last_ts_) + ")");
    }
    if (kind == kTelRecordExpiry) {
      if (!header_.explicit_expiry) {
        return Fail(record_offset,
                    "explicit expiry record in a derived-expiry stream "
                    "(header lacks the expiry=explicit flag)");
      }
      if (expiries_ >= arrivals_) {
        return Fail(record_offset, "expiry record with no live edge");
      }
      last_ts_ = ts;
      ++expiries_;
      record->kind = StreamRecord::Kind::kExpiry;
      record->edge = TemporalEdge{};
      record->edge.ts = ts;
      return Status::Ok();
    }
    if (src >= header_.num_vertices || dst >= header_.num_vertices) {
      return Fail(record_offset,
                  "vertex id out of range (universe has " +
                      std::to_string(header_.num_vertices) + " vertices)");
    }
    if (label > std::numeric_limits<Label>::max()) {
      return Fail(record_offset, "bad edge label");
    }
    last_ts_ = ts;
    if (src == dst) continue;  // self loops never match; drop on ingest
    record->kind = StreamRecord::Kind::kArrival;
    record->edge = TemporalEdge{};
    record->edge.src = static_cast<VertexId>(src);
    record->edge.dst = static_cast<VertexId>(dst);
    record->edge.ts = ts;
    record->edge.label = static_cast<Label>(label);
    ++arrivals_;
    return Status::Ok();
  }
}

Status BinaryTelReader::SeekToTimestamp(Timestamp t) {
  TCSM_CHECK(init_done_ && !consumed_any_);
  if (header_.explicit_expiry) {
    return Status::InvalidArgument(
        source_ +
        ": cannot seek an explicit-expiry stream (x records reference the "
        "live-edge FIFO from the start of the stream)");
  }
  const uint64_t data_start = bytes_consumed_;
  in_.clear();
  in_.seekg(0, std::ios::end);
  if (!in_) {
    in_.clear();
    return Status::InvalidArgument(
        source_ + ": --seek-ts requires a seekable stream (not a pipe)");
  }
  const auto end_pos = in_.tellg();
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  // Raw tail reads: deliberately not ReadExact — the index is metadata,
  // not ingested stream bytes, and offsets here are absolute anyway.
  const auto read_at = [&](uint64_t off, void* buf, size_t n) -> bool {
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(off));
    in_.read(static_cast<char*>(buf), static_cast<std::streamsize>(n));
    return static_cast<size_t>(in_.gcount()) == n;
  };
  uint8_t trailer[kTelTrailerBytes];
  if (file_size < data_start + 4 + 8 + kTelTrailerBytes ||
      !read_at(file_size - kTelTrailerBytes, trailer, sizeof(trailer)) ||
      std::memcmp(trailer + 16, kTelBinaryFooterMagic, 8) != 0) {
    return Fail(file_size >= kTelTrailerBytes ? file_size - kTelTrailerBytes
                                              : 0,
                "missing or corrupt index footer");
  }
  const uint64_t index_offset = LoadU64(trailer);
  const uint64_t num_blocks = LoadU64(trailer + 8);
  if (index_offset < data_start + 4 ||
      index_offset + 8 + num_blocks * kTelIndexEntryBytes !=
          file_size - kTelTrailerBytes) {
    return Fail(file_size - kTelTrailerBytes,
                "index/footer mismatch (index does not span the file tail)");
  }
  uint8_t cnt[8];
  if (!read_at(index_offset, cnt, sizeof(cnt)) ||
      LoadU64(cnt) != num_blocks) {
    return Fail(index_offset,
                "index/footer mismatch (block counts disagree)");
  }
  TelBlockIndexEntry target;
  bool found = false;
  uint64_t arrivals_past_end = 0;
  uint64_t prev_offset = 0;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    uint8_t row[kTelIndexEntryBytes];
    const uint64_t row_off = index_offset + 8 + i * kTelIndexEntryBytes;
    if (!read_at(row_off, row, sizeof(row))) {
      return Fail(row_off, "truncated block index");
    }
    TelBlockIndexEntry e;
    e.offset = LoadU64(row);
    e.first_ts = LoadI64(row + 8);
    e.last_ts = LoadI64(row + 16);
    e.record_count = LoadU32(row + 24);
    e.encoding = LoadU32(row + 28);
    e.first_arrival_index = LoadU64(row + 32);
    if (e.offset < data_start || e.offset <= prev_offset ||
        e.offset >= index_offset || e.record_count == 0) {
      return Fail(row_off, "index/footer mismatch (bad index entry)");
    }
    if (i == 0 && e.offset != data_start) {
      return Fail(row_off,
                  "index/footer mismatch (first block offset is not the "
                  "data start)");
    }
    prev_offset = e.offset;
    if (!found && e.last_ts >= t) {
      target = e;
      found = true;
    }
    if (i == num_blocks - 1) {
      arrivals_past_end = e.first_arrival_index + e.record_count;
    }
  }
  in_.clear();
  if (!found) {
    // Every block ends before t: position at the sentinel; the next
    // Next() reports a clean end of stream.
    in_.seekg(static_cast<std::streamoff>(index_offset - 4));
    bytes_consumed_ = index_offset - 4;
    first_arrival_index_ = arrivals_past_end;
    return Status::Ok();
  }
  in_.seekg(static_cast<std::streamoff>(target.offset));
  bytes_consumed_ = target.offset;
  first_arrival_index_ = target.first_arrival_index;
  pending_check_ = target;
  has_pending_check_ = true;
  last_ts_ = kMinusInfinity;
  arrivals_ = 0;
  expiries_ = 0;
  return Status::Ok();
}

}  // namespace tcsm
