// `.tel` stream serialization: an incremental StreamWriter that records a
// live stream event by event (so any stream a context can observe — a
// synthetic preset, a fuzz-catalogue scenario, production ingest — becomes
// a shareable, replayable file), plus whole-dataset conveniences. The
// writer validates what it emits (monotone timestamps, vertex ranges,
// expiry discipline), so a recorded file always parses back.
#ifndef TCSM_IO_STREAM_WRITER_H_
#define TCSM_IO_STREAM_WRITER_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/temporal_dataset.h"
#include "graph/temporal_edge.h"
#include "io/tel_format.h"

namespace tcsm {

class BinaryTelWriter;  // io/tel_binary.h

struct TelWriteOptions {
  /// Recorded into the header as `window=D` when > 0 (the replay default).
  /// Required when `explicit_expiry` is set on the whole-dataset writers,
  /// which derive the expiry schedule from it.
  Timestamp window = 0;
  /// Emit `expiry=explicit` and interleave `x` records instead of leaving
  /// expiry derivation to replay time.
  bool explicit_expiry = false;
  /// Write a `v` record for every vertex rather than only those with a
  /// non-zero label (label 0 is the format's default).
  bool all_vertex_labels = false;
  /// Emit the binary v2 framing (io/tel_binary.h, docs/FILE_FORMATS.md
  /// §binary-v2) instead of text. Requires a non-empty vertex universe
  /// and an ostream opened in binary mode.
  bool binary = false;
  /// Binary only: varint records with delta-encoded timestamps (the
  /// default) vs fixed 24-byte records.
  bool varint_timestamps = true;
  /// Binary only: records per block; 0 = kDefaultTelBlockRecords.
  size_t block_records = 0;
};

class StreamWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit StreamWriter(std::ostream& out);
  ~StreamWriter();

  /// Emits the header and the vertex-label prefix. Must be called once,
  /// before any record.
  Status BeginStream(bool directed, const std::vector<Label>& vertex_labels,
                     const TelWriteOptions& options = {});

  /// Appends an arrival record. Timestamps must be non-decreasing and
  /// endpoints must lie in the declared universe; self loops are rejected
  /// (the matcher can never use them, and a file that round-trips must
  /// not contain records the reader drops).
  Status RecordArrival(const TemporalEdge& edge);

  /// Appends an explicit expiry (`x`) record for the oldest live edge.
  /// Only valid in explicit-expiry mode with at least one live edge.
  Status RecordExpiry(Timestamp ts);

  /// Flushes and reports any stream write failure (e.g. disk full).
  Status Finish();

  size_t num_arrivals() const { return arrivals_; }

 private:
  std::ostream& out_;
  /// Non-null after BeginStream with options.binary: all validation stays
  /// here (shared with the text path), encoding is delegated.
  std::unique_ptr<BinaryTelWriter> binary_;
  bool begun_ = false;
  bool explicit_expiry_ = false;
  size_t num_vertices_ = 0;
  Timestamp last_ts_ = kMinusInfinity;
  size_t arrivals_ = 0;
  size_t expiries_ = 0;
};

/// Serializes a dataset as a `.tel` stream. With
/// `options.explicit_expiry` the expiry schedule (edge e dies at
/// e.ts + window, expirations before arrivals on ties) is materialized as
/// `x` records, which makes the file self-contained: replay needs no
/// window parameter and reproduces the exact event sequence.
Status WriteTel(const TemporalDataset& dataset,
                const TelWriteOptions& options, std::ostream& out);

Status SaveTelFile(const TemporalDataset& dataset,
                   const TelWriteOptions& options, const std::string& path);

}  // namespace tcsm

#endif  // TCSM_IO_STREAM_WRITER_H_
