// Dynamic Candidate Space (DCS) — the auxiliary structure of SymBi
// [VLDB'21] that the paper's Algorithm 1 maintains (DCSInsertion /
// DCSDeletion), rebuilt from scratch here.
//
// A DCS node is a pair (u, v) of a query vertex and a label-compatible data
// vertex. A DCS edge is a triple (qe, data edge, flip) that passed
// filtering — for TCM only TC-matchable pairs (w.r.t. both q̂ and q̂⁻¹)
// enter the DCS; for the SymBi baseline every statically feasible pair
// does.
//
// Two bits per node are maintained incrementally with support counters:
//   D1[u,v] = 1 iff for every DAG edge (up, u) there is a DCS edge from
//             some (up, vp) with D1[up,vp] = 1 (weak embedding of the
//             ancestor side exists at v);
//   D2[u,v] = 1 iff D1[u,v] = 1 and for every DAG edge (u, uc) there is a
//             DCS edge to some (uc, vc) with D2[uc,vc] = 1.
//
// Parallel DCS edges between the same image pair are kept sorted by
// timestamp so ECM(e) range queries during backtracking are binary
// searches (Definition V.2).
#ifndef TCSM_DCS_DCS_INDEX_H_
#define TCSM_DCS_DCS_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "dag/query_dag.h"
#include "graph/temporal_edge.h"
#include "query/query_graph.h"

namespace tcsm {

/// One parallel DCS edge between a fixed pair of data vertices.
struct ParallelEdge {
  Timestamp ts;
  EdgeId edge;
  bool flip;
};

struct DcsStats {
  size_t num_edges = 0;     // DCS edges (filter survivors) — Table V top
  size_t num_nodes = 0;     // (u, v) pairs ever touched
  size_t num_d1_nodes = 0;
  size_t num_d2_nodes = 0;  // candidates after filtering — Table V bottom
};

class DcsIndex {
 public:
  using NbrMap = std::unordered_map<VertexId, uint32_t>;

  DcsIndex(const QueryGraph* query, const QueryDag* dag);

  /// Unique key of a DCS edge triple.
  static uint64_t TripleKey(EdgeId qe, EdgeId data_edge, bool flip) {
    return (static_cast<uint64_t>(data_edge) << 7) |
           (static_cast<uint64_t>(qe) << 1) | (flip ? 1u : 0u);
  }

  bool Contains(EdgeId qe, EdgeId data_edge, bool flip) const {
    return membership_.count(TripleKey(qe, data_edge, flip)) > 0;
  }

  /// Inserts/removes one DCS edge and restores D1/D2 (DCSInsertion /
  /// DCSDeletion). `flip == false` maps qe.u -> ed.src.
  void Insert(EdgeId qe, const TemporalEdge& ed, bool flip);
  void Remove(EdgeId qe, const TemporalEdge& ed, bool flip);

  /// Sorted parallel DCS edges whose endpoint images are
  /// qe.u -> img_u, qe.v -> img_v; nullptr when none.
  const std::vector<ParallelEdge>* Parallel(EdgeId qe, VertexId img_u,
                                            VertexId img_v) const;

  bool D1(VertexId u, VertexId v) const;
  bool D2(VertexId u, VertexId v) const;

  /// Candidate images for the unmapped endpoint of `via_edge`, given that
  /// its other endpoint `mapped_qv` is mapped to `mapped_img`. Keys are
  /// data vertices, values are parallel-edge counts. nullptr when none.
  const NbrMap* Candidates(EdgeId via_edge, VertexId mapped_qv,
                           VertexId mapped_img) const;

  /// DCS edges of a data edge: appends all (qe, flip) with the triple
  /// present (used to seed backtracking from an update edge).
  void EdgesOf(EdgeId data_edge,
               std::vector<std::pair<EdgeId, bool>>* out) const;

  const DcsStats& stats() const { return stats_; }
  size_t EstimateMemoryBytes() const;

  /// Exhaustively re-derives every support counter, D1/D2 bit, and
  /// statistic from the stored edge sets and CHECK-fails on any
  /// inconsistency. O(index size); intended for tests.
  void ValidateInvariantsForTest() const;

  const QueryDag& dag() const { return *dag_; }

 private:
  struct Node {
    bool d1 = false;
    bool d2 = false;
    std::vector<NbrMap> up;      // per parent-edge slot: vp -> #parallel
    std::vector<NbrMap> down;    // per child-edge slot: vc -> #parallel
    std::vector<uint32_t> n1;    // per parent-edge slot: support count
    std::vector<uint32_t> n2;    // per child-edge slot: support count
  };

  struct Check {
    VertexId u;
    VertexId v;
    bool is_d1;
  };

  Node* FindNode(VertexId u, VertexId v);
  const Node* FindNode(VertexId u, VertexId v) const;
  Node& GetOrCreateNode(VertexId u, VertexId v);

  bool ComputeD1(VertexId u, const Node& node) const;
  bool ComputeD2(VertexId u, const Node& node) const;

  /// Re-evaluates one bit; on change, adjusts dependent support counters
  /// and enqueues affected nodes.
  void RecheckD1(VertexId u, VertexId v);
  void RecheckD2(VertexId u, VertexId v);
  void ProcessPending();
  /// Erases (u, v) if it has no incident DCS edges left.
  void MaybeEraseNode(VertexId u, VertexId v);

  const QueryGraph* query_;
  const QueryDag* dag_;

  /// Slot of query edge e within ParentEdges(ChildOf(e)) and
  /// ChildEdges(ParentOf(e)).
  std::vector<uint32_t> pslot_;
  std::vector<uint32_t> cslot_;

  std::vector<std::unordered_map<VertexId, Node>> nodes_;  // per u
  std::vector<std::unordered_map<uint64_t, std::vector<ParallelEdge>>>
      parallel_;  // per qe, keyed by PackPair(img_u, img_v)
  std::unordered_set<uint64_t> membership_;

  std::vector<Check> pending_;
  DcsStats stats_;
};

}  // namespace tcsm

#endif  // TCSM_DCS_DCS_INDEX_H_
