#include "dcs/dcs_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/memory_meter.h"

namespace tcsm {
namespace {

/// Endpoint images of a DCS triple.
struct Images {
  VertexId img_u;  // image of qe.u
  VertexId img_v;  // image of qe.v
};

Images ResolveImages(const TemporalEdge& ed, bool flip) {
  return flip ? Images{ed.dst, ed.src} : Images{ed.src, ed.dst};
}

bool LessParallel(const ParallelEdge& a, const ParallelEdge& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.edge != b.edge) return a.edge < b.edge;
  return a.flip < b.flip;
}

}  // namespace

DcsIndex::DcsIndex(const QueryGraph* query, const QueryDag* dag)
    : query_(query), dag_(dag) {
  const size_t n = query->NumVertices();
  const size_t m = query->NumEdges();
  nodes_.resize(n);
  parallel_.resize(m);
  pslot_.assign(m, 0);
  cslot_.assign(m, 0);
  for (VertexId u = 0; u < n; ++u) {
    const auto& pe = dag->ParentEdges(u);
    for (size_t i = 0; i < pe.size(); ++i) pslot_[pe[i]] =
        static_cast<uint32_t>(i);
    const auto& ce = dag->ChildEdges(u);
    for (size_t i = 0; i < ce.size(); ++i) cslot_[ce[i]] =
        static_cast<uint32_t>(i);
  }
}

DcsIndex::Node* DcsIndex::FindNode(VertexId u, VertexId v) {
  auto it = nodes_[u].find(v);
  return it == nodes_[u].end() ? nullptr : &it->second;
}

const DcsIndex::Node* DcsIndex::FindNode(VertexId u, VertexId v) const {
  auto it = nodes_[u].find(v);
  return it == nodes_[u].end() ? nullptr : &it->second;
}

DcsIndex::Node& DcsIndex::GetOrCreateNode(VertexId u, VertexId v) {
  auto [it, inserted] = nodes_[u].try_emplace(v);
  Node& node = it->second;
  if (inserted) {
    node.up.resize(dag_->ParentEdges(u).size());
    node.n1.assign(dag_->ParentEdges(u).size(), 0);
    node.down.resize(dag_->ChildEdges(u).size());
    node.n2.assign(dag_->ChildEdges(u).size(), 0);
    node.d1 = node.up.empty();              // roots: trivially supported
    node.d2 = node.d1 && node.down.empty();  // isolated leaf-root
    ++stats_.num_nodes;
    if (node.d1) ++stats_.num_d1_nodes;
    if (node.d2) ++stats_.num_d2_nodes;
  }
  return node;
}

bool DcsIndex::ComputeD1(VertexId, const Node& node) const {
  for (const uint32_t c : node.n1) {
    if (c == 0) return false;
  }
  return true;
}

bool DcsIndex::ComputeD2(VertexId, const Node& node) const {
  if (!node.d1) return false;
  for (const uint32_t c : node.n2) {
    if (c == 0) return false;
  }
  return true;
}

void DcsIndex::RecheckD1(VertexId u, VertexId v) {
  Node* node = FindNode(u, v);
  TCSM_CHECK(node != nullptr);
  const bool nv = ComputeD1(u, *node);
  if (nv == node->d1) return;
  node->d1 = nv;
  stats_.num_d1_nodes += nv ? 1 : -1;
  // D1 support flows to children.
  const auto& child_edges = dag_->ChildEdges(u);
  for (size_t j = 0; j < child_edges.size(); ++j) {
    const EdgeId f = child_edges[j];
    const VertexId uc = dag_->ChildOf(f);
    for (const auto& [vc, cnt] : node->down[j]) {
      Node* ch = FindNode(uc, vc);
      TCSM_CHECK(ch != nullptr);
      if (nv) {
        ch->n1[pslot_[f]] += cnt;
      } else {
        TCSM_CHECK(ch->n1[pslot_[f]] >= cnt);
        ch->n1[pslot_[f]] -= cnt;
      }
      pending_.push_back(Check{uc, vc, /*is_d1=*/true});
    }
  }
  pending_.push_back(Check{u, v, /*is_d1=*/false});
}

void DcsIndex::RecheckD2(VertexId u, VertexId v) {
  Node* node = FindNode(u, v);
  TCSM_CHECK(node != nullptr);
  const bool nv = ComputeD2(u, *node);
  if (nv == node->d2) return;
  node->d2 = nv;
  stats_.num_d2_nodes += nv ? 1 : -1;
  // D2 support flows to parents.
  const auto& parent_edges = dag_->ParentEdges(u);
  for (size_t i = 0; i < parent_edges.size(); ++i) {
    const EdgeId pe = parent_edges[i];
    const VertexId up = dag_->ParentOf(pe);
    for (const auto& [vp, cnt] : node->up[i]) {
      Node* pn = FindNode(up, vp);
      TCSM_CHECK(pn != nullptr);
      if (nv) {
        pn->n2[cslot_[pe]] += cnt;
      } else {
        TCSM_CHECK(pn->n2[cslot_[pe]] >= cnt);
        pn->n2[cslot_[pe]] -= cnt;
      }
      pending_.push_back(Check{up, vp, /*is_d1=*/false});
    }
  }
}

void DcsIndex::ProcessPending() {
  while (!pending_.empty()) {
    const Check c = pending_.back();
    pending_.pop_back();
    if (c.is_d1) {
      RecheckD1(c.u, c.v);
    } else {
      RecheckD2(c.u, c.v);
    }
  }
}

void DcsIndex::Insert(EdgeId qe, const TemporalEdge& ed, bool flip) {
  const uint64_t key = TripleKey(qe, ed.id, flip);
  const bool added = membership_.insert(key).second;
  TCSM_CHECK(added && "duplicate DCS edge insert");
  ++stats_.num_edges;

  const Images im = ResolveImages(ed, flip);
  auto& plist = parallel_[qe][PackPair(im.img_u, im.img_v)];
  const ParallelEdge pe{ed.ts, ed.id, flip};
  plist.insert(std::upper_bound(plist.begin(), plist.end(), pe, LessParallel),
               pe);

  const QueryEdge& q = query_->Edge(qe);
  const VertexId pu = dag_->ParentOf(qe);
  const VertexId cu = dag_->ChildOf(qe);
  const VertexId vp = (pu == q.u) ? im.img_u : im.img_v;
  const VertexId vc = (cu == q.u) ? im.img_u : im.img_v;

  Node& pn = GetOrCreateNode(pu, vp);
  Node& cn = GetOrCreateNode(cu, vc);
  ++cn.up[pslot_[qe]][vp];
  ++pn.down[cslot_[qe]][vc];

  if (pn.d1) {
    ++cn.n1[pslot_[qe]];
    pending_.push_back(Check{cu, vc, /*is_d1=*/true});
  }
  if (cn.d2) {
    ++pn.n2[cslot_[qe]];
    pending_.push_back(Check{pu, vp, /*is_d1=*/false});
  }
  ProcessPending();
}

void DcsIndex::Remove(EdgeId qe, const TemporalEdge& ed, bool flip) {
  const uint64_t key = TripleKey(qe, ed.id, flip);
  const size_t erased = membership_.erase(key);
  TCSM_CHECK(erased == 1 && "removing absent DCS edge");
  --stats_.num_edges;

  const Images im = ResolveImages(ed, flip);
  const uint64_t pkey = PackPair(im.img_u, im.img_v);
  auto pit = parallel_[qe].find(pkey);
  TCSM_CHECK(pit != parallel_[qe].end());
  auto& plist = pit->second;
  const ParallelEdge pe{ed.ts, ed.id, flip};
  auto it = std::lower_bound(plist.begin(), plist.end(), pe, LessParallel);
  TCSM_CHECK(it != plist.end() && it->edge == ed.id && it->flip == flip);
  plist.erase(it);
  if (plist.empty()) parallel_[qe].erase(pit);

  const QueryEdge& q = query_->Edge(qe);
  const VertexId pu = dag_->ParentOf(qe);
  const VertexId cu = dag_->ChildOf(qe);
  const VertexId vp = (pu == q.u) ? im.img_u : im.img_v;
  const VertexId vc = (cu == q.u) ? im.img_u : im.img_v;

  Node* pn = FindNode(pu, vp);
  Node* cn = FindNode(cu, vc);
  TCSM_CHECK(pn != nullptr && cn != nullptr);

  auto decrement = [](NbrMap& map, VertexId k) {
    auto mit = map.find(k);
    TCSM_CHECK(mit != map.end() && mit->second > 0);
    if (--mit->second == 0) map.erase(mit);
  };
  decrement(cn->up[pslot_[qe]], vp);
  decrement(pn->down[cslot_[qe]], vc);

  if (pn->d1) {
    TCSM_CHECK(cn->n1[pslot_[qe]] > 0);
    --cn->n1[pslot_[qe]];
    pending_.push_back(Check{cu, vc, /*is_d1=*/true});
  }
  if (cn->d2) {
    TCSM_CHECK(pn->n2[cslot_[qe]] > 0);
    --pn->n2[cslot_[qe]];
    pending_.push_back(Check{pu, vp, /*is_d1=*/false});
  }
  ProcessPending();
  // Garbage-collect nodes with no incident DCS edges left; they contribute
  // no support and keep the index canonical (incremental state equals a
  // from-scratch rebuild).
  MaybeEraseNode(pu, vp);
  MaybeEraseNode(cu, vc);
}

void DcsIndex::MaybeEraseNode(VertexId u, VertexId v) {
  auto it = nodes_[u].find(v);
  if (it == nodes_[u].end()) return;
  const Node& node = it->second;
  for (const NbrMap& m : node.up) {
    if (!m.empty()) return;
  }
  for (const NbrMap& m : node.down) {
    if (!m.empty()) return;
  }
  --stats_.num_nodes;
  if (node.d1) --stats_.num_d1_nodes;
  if (node.d2) --stats_.num_d2_nodes;
  nodes_[u].erase(it);
}

const std::vector<ParallelEdge>* DcsIndex::Parallel(EdgeId qe, VertexId img_u,
                                                    VertexId img_v) const {
  auto it = parallel_[qe].find(PackPair(img_u, img_v));
  return it == parallel_[qe].end() ? nullptr : &it->second;
}

bool DcsIndex::D1(VertexId u, VertexId v) const {
  const Node* node = FindNode(u, v);
  return node != nullptr && node->d1;
}

bool DcsIndex::D2(VertexId u, VertexId v) const {
  const Node* node = FindNode(u, v);
  return node != nullptr && node->d2;
}

const DcsIndex::NbrMap* DcsIndex::Candidates(EdgeId via_edge,
                                             VertexId mapped_qv,
                                             VertexId mapped_img) const {
  const Node* node = FindNode(mapped_qv, mapped_img);
  if (node == nullptr) return nullptr;
  if (dag_->ParentOf(via_edge) == mapped_qv) {
    return &node->down[cslot_[via_edge]];
  }
  TCSM_CHECK(dag_->ChildOf(via_edge) == mapped_qv);
  return &node->up[pslot_[via_edge]];
}

void DcsIndex::EdgesOf(EdgeId data_edge,
                       std::vector<std::pair<EdgeId, bool>>* out) const {
  for (EdgeId qe = 0; qe < query_->NumEdges(); ++qe) {
    for (const bool flip : {false, true}) {
      if (Contains(qe, data_edge, flip)) out->emplace_back(qe, flip);
    }
  }
}

void DcsIndex::ValidateInvariantsForTest() const {
  TCSM_CHECK(membership_.size() == stats_.num_edges);
  size_t parallel_total = 0;
  for (EdgeId qe = 0; qe < query_->NumEdges(); ++qe) {
    for (const auto& [key, plist] : parallel_[qe]) {
      TCSM_CHECK(!plist.empty());
      parallel_total += plist.size();
      for (size_t i = 0; i < plist.size(); ++i) {
        if (i > 0) TCSM_CHECK(!LessParallel(plist[i], plist[i - 1]));
        TCSM_CHECK(membership_.count(
                       TripleKey(qe, plist[i].edge, plist[i].flip)) == 1);
      }
    }
  }
  TCSM_CHECK(parallel_total == stats_.num_edges);

  size_t nodes = 0;
  size_t d1_nodes = 0;
  size_t d2_nodes = 0;
  for (VertexId u = 0; u < query_->NumVertices(); ++u) {
    const auto& parent_edges = dag_->ParentEdges(u);
    const auto& child_edges = dag_->ChildEdges(u);
    for (const auto& [v, node] : nodes_[u]) {
      ++nodes;
      d1_nodes += node.d1;
      d2_nodes += node.d2;
      // GC invariant: a node must carry at least one incident DCS edge.
      bool any = false;
      for (const NbrMap& m : node.up) any = any || !m.empty();
      for (const NbrMap& m : node.down) any = any || !m.empty();
      TCSM_CHECK(any && "empty node not garbage-collected");
      // Support counters re-derived from neighbor maps + neighbor bits.
      for (size_t i = 0; i < parent_edges.size(); ++i) {
        uint32_t expect = 0;
        for (const auto& [vp, cnt] : node.up[i]) {
          const Node* pn = FindNode(dag_->ParentOf(parent_edges[i]), vp);
          TCSM_CHECK(pn != nullptr);
          if (pn->d1) expect += cnt;
        }
        TCSM_CHECK(node.n1[i] == expect);
      }
      for (size_t j = 0; j < child_edges.size(); ++j) {
        uint32_t expect = 0;
        for (const auto& [vc, cnt] : node.down[j]) {
          const Node* cn = FindNode(dag_->ChildOf(child_edges[j]), vc);
          TCSM_CHECK(cn != nullptr);
          if (cn->d2) expect += cnt;
        }
        TCSM_CHECK(node.n2[j] == expect);
      }
      TCSM_CHECK(node.d1 == ComputeD1(u, node));
      TCSM_CHECK(node.d2 == ComputeD2(u, node));
    }
  }
  TCSM_CHECK(nodes == stats_.num_nodes);
  TCSM_CHECK(d1_nodes == stats_.num_d1_nodes);
  TCSM_CHECK(d2_nodes == stats_.num_d2_nodes);
}

size_t DcsIndex::EstimateMemoryBytes() const {
  size_t bytes = HashSetBytes(membership_);
  for (const auto& bucket : nodes_) {
    bytes += HashMapBytes(bucket);
    for (const auto& [v, node] : bucket) {
      for (const auto& m : node.up) bytes += HashMapBytes(m);
      for (const auto& m : node.down) bytes += HashMapBytes(m);
      bytes += VectorBytes(node.n1) + VectorBytes(node.n2);
    }
  }
  for (const auto& per_edge : parallel_) {
    bytes += HashMapBytes(per_edge);
    for (const auto& [k, plist] : per_edge) bytes += VectorBytes(plist);
  }
  return bytes;
}

}  // namespace tcsm
