// Multi-query fan-out over the sharded context: the sharded counterpart
// of core/multi_engine.h. One ShardedTcmEngine per query, all reading
// through the context's ShardedGraphView, placed CONTIGUOUSLY across the
// shards (engine i on shard i*S/N) — a shard-monotone attach order, so
// the shard-then-attach drain order of ShardedStreamContext equals the
// serial attach order and the GLOBAL match stream (not just each
// per-query stream) is byte-identical to an unsharded MultiQueryEngine
// run. Matches arrive tagged with the producing query's index through
// the same MultiMatchSink interface.
#ifndef TCSM_SHARD_SHARDED_MULTI_ENGINE_H_
#define TCSM_SHARD_SHARDED_MULTI_ENGINE_H_

#include <memory>
#include <vector>

#include "core/multi_engine.h"
#include "query/query_graph.h"
#include "shard/sharded_context.h"
#include "shard/sharded_engine.h"

namespace tcsm {

class ShardedMultiQueryEngine : public ShardedStreamContext {
 public:
  /// One TCM engine per query over `num_shards` vertex partitions; all
  /// queries must share the schema's directedness. `num_threads` as in
  /// ShardedStreamContext (0 = one per shard).
  ShardedMultiQueryEngine(const std::vector<QueryGraph>& queries,
                          const GraphSchema& schema, size_t num_shards,
                          TcmConfig config = {}, size_t num_threads = 0);

  void set_multi_sink(MultiMatchSink* sink) { multi_sink_ = sink; }

  size_t NumQueries() const { return owned_.size(); }
  const EngineCounters& QueryCounters(size_t query_index) const {
    return owned_[query_index]->counters();
  }
  const ShardedTcmEngine& QueryEngine(size_t query_index) const {
    return *owned_[query_index];
  }
  /// The shard query i's engine was placed on (i * S / N).
  size_t QueryShard(size_t query_index) const {
    return query_index * num_shards() / owned_.size();
  }

 private:
  /// Adapts per-engine reports into tagged multi-sink calls.
  class TaggedSink : public MatchSink {
   public:
    TaggedSink(ShardedMultiQueryEngine* parent, size_t index)
        : parent_(parent), index_(index) {}
    bool wants_each_embedding() const override {
      return parent_->multi_sink_ != nullptr;
    }
    void OnMatch(const Embedding& embedding, MatchKind kind,
                 uint64_t multiplicity) override {
      if (parent_->multi_sink_ != nullptr) {
        parent_->multi_sink_->OnMatch(index_, embedding, kind, multiplicity);
      }
    }

   private:
    ShardedMultiQueryEngine* parent_;
    size_t index_;
  };

  std::vector<std::unique_ptr<ShardedTcmEngine>> owned_;
  std::vector<std::unique_ptr<TaggedSink>> tagged_;
  MultiMatchSink* multi_sink_ = nullptr;
};

}  // namespace tcsm

#endif  // TCSM_SHARD_SHARDED_MULTI_ENGINE_H_
