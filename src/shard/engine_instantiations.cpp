// Explicit instantiations of the matching templates over the sharded
// graph view — the one translation unit that pays their compile cost
// (see the extern declarations in sharded_engine.h).
#include "shard/sharded_engine.h"

namespace tcsm {

template class BasicMaxMinIndex<ShardedGraphView>;
template class BasicTcmEngine<ShardedGraphView>;

}  // namespace tcsm
