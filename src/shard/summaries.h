// Cross-shard candidate-pruning summaries (DESIGN.md §10). Each vertex
// has one row of direction-aware Bloom64 label signatures — the exact
// masks TemporalGraph maintains per vertex (VertexSigAny/Out/In) — and
// the row is (re)published by the vertex's OWNER shard whenever a
// mutation touches the vertex. Engines running on any shard consult the
// table through ShardedGraphView::MayHaveMatching instead of reaching
// into a remote shard's graph, so the only cross-shard state a candidate
// check ever needs is 24 bytes per vertex.
//
// This is the transport-rehearsal seam of the sharded design: in-process
// the "exchange" is a struct copy ordered by the pipeline step fences; a
// distributed deployment replaces Publish with a row broadcast and keeps
// every reader unchanged. Because the published rows are bit-equal to
// the owner graph's exact masks, the table inherits their guarantee:
// MayHaveMatching never returns false for a vertex that has a live
// matching entry (no false negatives), so pruning on a "no" is always
// safe and every engine verdict is identical to an unsharded run.
//
// Concurrency: single writer per row (the owner shard's lane) within a
// mutation step; reads happen in later notification steps. The pipeline
// fences of ThreadPool::PipelineFor order writer-then-readers, so the
// fields are plain (non-atomic) by design — see sharded_context.cpp.
#ifndef TCSM_SHARD_SUMMARIES_H_
#define TCSM_SHARD_SUMMARIES_H_

#include <cstddef>
#include <vector>

#include "common/bloom.h"
#include "common/types.h"
#include "graph/temporal_graph.h"

namespace tcsm {

class ShardSummaries {
 public:
  /// One row per data vertex; rows start empty (= vertex has no live
  /// incident edges), matching an empty owner graph.
  explicit ShardSummaries(size_t num_vertices, bool directed)
      : rows_(num_vertices), directed_(directed) {}

  size_t num_vertices() const { return rows_.size(); }
  bool directed() const { return directed_; }

  /// Re-publishes v's row from the owner shard's graph. Call after every
  /// mutation of `owner_graph` that touched v; only v's owner lane may
  /// call this for v (single-writer rule).
  void Publish(VertexId v, const TemporalGraph& owner_graph) {
    Row& row = rows_[v];
    row.any = owner_graph.VertexSigAny(v);
    row.out = owner_graph.VertexSigOut(v);
    row.in = owner_graph.VertexSigIn(v);
  }

  /// Drop-in for TemporalGraph::MayHaveMatching answered from the
  /// published rows: false means vertex v provably has no live incident
  /// edge with this (edge label, neighbor label) signature in the wanted
  /// direction anywhere in the sharded graph.
  bool MayHaveMatching(VertexId v, Label elabel, Label nbr_label,
                       bool want_out) const {
    const Row& row = rows_[v];
    const Bloom64& sig =
        !directed_ ? row.any : (want_out ? row.out : row.in);
    return sig.MayContain(PackPair(elabel, nbr_label));
  }

  size_t EstimateMemoryBytes() const { return rows_.capacity() * sizeof(Row); }

 private:
  struct Row {
    Bloom64 any;
    Bloom64 out;
    Bloom64 in;
  };

  std::vector<Row> rows_;
  bool directed_;
};

}  // namespace tcsm

#endif  // TCSM_SHARD_SUMMARIES_H_
