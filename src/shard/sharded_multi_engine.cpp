#include "shard/sharded_multi_engine.h"

#include "common/logging.h"

namespace tcsm {

ShardedMultiQueryEngine::ShardedMultiQueryEngine(
    const std::vector<QueryGraph>& queries, const GraphSchema& schema,
    size_t num_shards, TcmConfig config, size_t num_threads)
    : ShardedStreamContext(schema, num_shards, num_threads) {
  TCSM_CHECK(!queries.empty());
  owned_.reserve(queries.size());
  tagged_.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    owned_.push_back(
        std::make_unique<ShardedTcmEngine>(queries[i], view(), config));
    tagged_.push_back(std::make_unique<TaggedSink>(this, i));
    owned_.back()->set_sink(tagged_.back().get());
    // Contiguous placement: nondecreasing in i, so the shard-major drain
    // order equals the attach order and the global stream matches serial.
    AttachToShard(i * num_shards / queries.size(), owned_.back().get());
  }
}

}  // namespace tcsm
