#include "shard/sharded_context.h"

#include "common/logging.h"
#include "obs/stage_timer.h"

namespace tcsm {

ShardedStreamContext::ShardedStreamContext(const GraphSchema& schema,
                                           size_t num_shards,
                                           size_t num_threads)
    : SharedStreamContext(schema),
      partitioner_(std::make_unique<HashVertexPartitioner>(num_shards)),
      summaries_(schema.vertex_labels.size(), schema.directed),
      pool_(num_threads == 0 ? num_shards : num_threads),
      shard_members_(num_shards) {
  graphs_.reserve(num_shards);
  std::vector<const TemporalGraph*> borrowed;
  borrowed.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto g = std::make_unique<TemporalGraph>(schema.directed);
    // Every shard graph carries the full static vertex set: labels are
    // read without routing, and a mirrored edge's foreign endpoint needs
    // its label for the adjacency bucket key.
    g->EnsureVertices(schema.vertex_labels.size());
    for (size_t v = 0; v < schema.vertex_labels.size(); ++v) {
      g->SetVertexLabel(static_cast<VertexId>(v), schema.vertex_labels[v]);
    }
    borrowed.push_back(g.get());
    graphs_.push_back(std::move(g));
  }
  view_ = std::make_unique<ShardedGraphView>(partitioner_.get(),
                                             std::move(borrowed), &summaries_);
}

void ShardedStreamContext::AttachToShard(size_t shard,
                                         ContinuousEngine* engine) {
  TCSM_CHECK(shard < shard_members_.size());
  const size_t index = engines().size();
  SharedStreamContext::Attach(engine);
  shard_members_[shard].push_back(index);
}

void ShardedStreamContext::Attach(ContinuousEngine* engine) {
  AttachToShard(engines().size() % shard_members_.size(), engine);
}

void ShardedStreamContext::ApplyShardArrival(size_t s,
                                             const TemporalEdge& ed) {
  const bool owns_src = partitioner_->Owner(ed.src) == s;
  const bool owns_dst = partitioner_->Owner(ed.dst) == s;
  if (!owns_src && !owns_dst) return;
  TemporalGraph& g = *graphs_[s];
  const EdgeId id = g.InsertEdgeAs(ed.id, ed.src, ed.dst, ed.ts, ed.label);
  TCSM_CHECK(id == ed.id && "edge ids must be dense arrival indices");
  if (owns_src) summaries_.Publish(ed.src, g);
  if (owns_dst) summaries_.Publish(ed.dst, g);
  if (const StageMetrics* const m = stage_metrics()) {
    m->summary_publishes->Add(static_cast<uint64_t>(owns_src) +
                              static_cast<uint64_t>(owns_dst));
  }
}

void ShardedStreamContext::ApplyShardRemoval(size_t s,
                                             const TemporalEdge& ed) {
  const bool owns_src = partitioner_->Owner(ed.src) == s;
  const bool owns_dst = partitioner_->Owner(ed.dst) == s;
  if (!owns_src && !owns_dst) return;
  TemporalGraph& g = *graphs_[s];
  g.RemoveEdge(ed.id);
  if (owns_src) summaries_.Publish(ed.src, g);
  if (owns_dst) summaries_.Publish(ed.dst, g);
  if (const StageMetrics* const m = stage_metrics()) {
    m->summary_publishes->Add(static_cast<uint64_t>(owns_src) +
                              static_cast<uint64_t>(owns_dst));
  }
}

const TemporalEdge& ShardedStreamContext::CanonicalArrival(
    const TemporalEdge& ed) const {
  return graphs_[partitioner_->Owner(ed.src)]->Edge(ed.id);
}

TemporalEdge ShardedStreamContext::CaptureShardExpiry(
    const TemporalEdge& ed) const {
  const TemporalGraph& g = *graphs_[partitioner_->Owner(ed.src)];
  TCSM_CHECK(ed.id < g.NumEdgesEver() && g.Alive(ed.id));
  return g.Edge(ed.id);
}

void ShardedStreamContext::NotifyShard(
    size_t s, void (ContinuousEngine::*hook)(const TemporalEdge&),
    const TemporalEdge& ed) {
  const std::vector<ContinuousEngine*>& attached = engines();
  for (const size_t i : shard_members_[s]) (attached[i]->*hook)(ed);
}

void ShardedStreamContext::SyncSinks() {
  const std::vector<ContinuousEngine*>& attached = engines();
  while (buffers_.size() < attached.size()) {
    buffers_.push_back(std::make_unique<BufferedMatchSink>());
  }
  for (size_t i = 0; i < attached.size(); ++i) {
    MatchSink* current = attached[i]->sink();
    if (current == buffers_[i].get()) continue;
    buffers_[i]->set_downstream(current);
    if (current != nullptr) attached[i]->set_sink(buffers_[i].get());
  }
}

void ShardedStreamContext::DrainSinks() {
  for (const std::vector<size_t>& members : shard_members_) {
    for (const size_t i : members) buffers_[i]->Drain();
  }
}

void ShardedStreamContext::DiscardSinks() {
  for (const std::unique_ptr<BufferedMatchSink>& buffer : buffers_) {
    buffer->Discard();
  }
}

void ShardedStreamContext::OnEdgeArrival(const TemporalEdge& ed) {
  // Inline path (unbatched events and the serial bypass): same order of
  // operations as one pipeline round, on the driver thread, with engines
  // reporting straight to their sinks. The engine-facing fan-out loops
  // still emit the pipeline-step spans so a trace of a stream without
  // coalescable batches shows the same phase structure.
  const StageMetrics* const stages = stage_metrics();
  TraceWriter* const trace = trace_writer();
  for (size_t s = 0; s < graphs_.size(); ++s) ApplyShardArrival(s, ed);
  const TemporalEdge& canonical = CanonicalArrival(ed);
  const ScopedStage span(stages != nullptr ? stages->pipeline_step_ns : nullptr,
                         trace, "insert_fanout", "pipeline");
  for (size_t s = 0; s < graphs_.size(); ++s) {
    NotifyShard(s, &ContinuousEngine::OnEdgeInserted, canonical);
  }
}

void ShardedStreamContext::OnEdgeExpiry(const TemporalEdge& ed) {
  const StageMetrics* const stages = stage_metrics();
  TraceWriter* const trace = trace_writer();
  Histogram* const step_hist =
      stages != nullptr ? stages->pipeline_step_ns : nullptr;
  const TemporalEdge applied = CaptureShardExpiry(ed);
  {
    const ScopedStage span(step_hist, trace, "expiring_fanout", "pipeline");
    for (size_t s = 0; s < graphs_.size(); ++s) {
      NotifyShard(s, &ContinuousEngine::OnEdgeExpiring, applied);
    }
  }
  for (size_t s = 0; s < graphs_.size(); ++s) ApplyShardRemoval(s, applied);
  {
    const ScopedStage span(step_hist, trace, "removed_fanout", "pipeline");
    for (size_t s = 0; s < graphs_.size(); ++s) {
      NotifyShard(s, &ContinuousEngine::OnEdgeRemoved, applied);
    }
  }
}

void ShardedStreamContext::OnEdgeArrivalBatch(const TemporalEdge* edges,
                                              size_t count) {
  if (!pool_.pooled() || count <= 1) {
    for (size_t i = 0; i < count; ++i) OnEdgeArrival(edges[i]);
    return;
  }
  SyncSinks();
  batch_scratch_.clear();
  batch_scratch_.reserve(count);
  const size_t shards = graphs_.size();
  const StageMetrics* const stages = stage_metrics();
  TraceWriter* const trace = trace_writer();
  Histogram* const lane_hist =
      stages != nullptr ? stages->shard_lane_ns : nullptr;
  StepObserver steps(stages != nullptr ? stages->pipeline_step_ns : nullptr,
                     trace, "pipeline");
  try {
    // Two steps per arrival. Even steps mutate: lane s inserts edge k
    // into shard s (if involved) and republishes the rows of its owned
    // endpoints; the settle captures the canonical record. Odd steps
    // notify: lane s runs shard s's engines, which read any shard's
    // graph and the summary rows — published a step earlier, so the
    // step fence orders writer-before-readers; the settle drains the
    // buffers in shard-then-attach order before edge k+1 mutates.
    pool_.PipelineFor(
        2 * count, shards,
        [&](size_t k, size_t s) {
          if (k % 2 == 0) {
            const ScopedStage lane(lane_hist, trace, "lane_mutate", "shard",
                                   "shard", s);
            ApplyShardArrival(s, edges[k / 2]);
          } else {
            const ScopedStage lane(lane_hist, trace, "lane_notify", "shard",
                                   "shard", s);
            NotifyShard(s, &ContinuousEngine::OnEdgeInserted,
                        batch_scratch_[k / 2]);
          }
        },
        [&](size_t k) {
          steps.Step(k % 2 == 0 ? "mutate_step" : "notify_step", "edge",
                     k / 2);
          if (k % 2 == 0) {
            batch_scratch_.push_back(CanonicalArrival(edges[k / 2]));
          } else {
            const ScopedStage drain(
                stages != nullptr ? stages->sink_drain_ns : nullptr, trace,
                "drain", "pipeline");
            DrainSinks();
          }
          steps.Restart();
        });
  } catch (...) {
    // A failed step poisons the event: completed engines must not have
    // their buffered matches replayed under a later event's drain.
    DiscardSinks();
    throw;
  }
}

void ShardedStreamContext::OnEdgeExpiryBatch(const TemporalEdge* edges,
                                             size_t count) {
  if (!pool_.pooled() || count <= 1) {
    for (size_t i = 0; i < count; ++i) OnEdgeExpiry(edges[i]);
    return;
  }
  SyncSinks();
  batch_scratch_.clear();
  batch_scratch_.reserve(count);
  batch_scratch_.push_back(CaptureShardExpiry(edges[0]));
  const size_t shards = graphs_.size();
  const StageMetrics* const stages = stage_metrics();
  TraceWriter* const trace = trace_writer();
  Histogram* const lane_hist =
      stages != nullptr ? stages->shard_lane_ns : nullptr;
  StepObserver steps(stages != nullptr ? stages->pipeline_step_ns : nullptr,
                     trace, "pipeline");
  try {
    // Three steps per expiry: expiring notifications against the
    // pre-removal shards (settle drains — the pre-removal drain keeps
    // the sink timing identical to serial), then the shard-local
    // removals + row republication, then removed notifications (settle
    // drains and captures the next expiring edge).
    pool_.PipelineFor(
        3 * count, shards,
        [&](size_t k, size_t s) {
          const TemporalEdge& ed = batch_scratch_[k / 3];
          switch (k % 3) {
            case 0: {
              const ScopedStage lane(lane_hist, trace, "lane_expiring",
                                     "shard", "shard", s);
              NotifyShard(s, &ContinuousEngine::OnEdgeExpiring, ed);
              break;
            }
            case 1: {
              const ScopedStage lane(lane_hist, trace, "lane_remove", "shard",
                                     "shard", s);
              ApplyShardRemoval(s, ed);
              break;
            }
            default: {
              const ScopedStage lane(lane_hist, trace, "lane_removed",
                                     "shard", "shard", s);
              NotifyShard(s, &ContinuousEngine::OnEdgeRemoved, ed);
              break;
            }
          }
        },
        [&](size_t k) {
          switch (k % 3) {
            case 0:
              steps.Step("expiring_step", "edge", k / 3);
              break;
            case 1:
              steps.Step("remove_step", "edge", k / 3);
              break;
            default:
              steps.Step("removed_step", "edge", k / 3);
              break;
          }
          if (k % 3 == 0) {
            const ScopedStage drain(
                stages != nullptr ? stages->sink_drain_ns : nullptr, trace,
                "drain", "pipeline");
            DrainSinks();
          } else if (k % 3 == 2) {
            {
              const ScopedStage drain(
                  stages != nullptr ? stages->sink_drain_ns : nullptr, trace,
                  "drain", "pipeline");
              DrainSinks();
            }
            if (k / 3 + 1 < count) {
              batch_scratch_.push_back(CaptureShardExpiry(edges[k / 3 + 1]));
            }
          }
          steps.Restart();
        });
  } catch (...) {
    DiscardSinks();
    throw;
  }
}

size_t ShardedStreamContext::EstimateMemoryBytes() const {
  // The base context's graph stays empty (only the shard graphs hold
  // edges), so account the sharded state directly: mirrored edges are
  // counted once per holding shard — that duplication is real memory,
  // the price of shard-local scans.
  size_t bytes = summaries_.EstimateMemoryBytes();
  for (const std::unique_ptr<TemporalGraph>& g : graphs_) {
    bytes += g->EstimateMemoryBytes();
  }
  for (const ContinuousEngine* engine : engines()) {
    bytes += engine->EstimateMemoryBytes();
  }
  return bytes;
}

}  // namespace tcsm
