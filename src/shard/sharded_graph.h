// Read-only view presenting S per-shard TemporalGraphs as one logical
// sliding-window graph (DESIGN.md §10). This is the GraphT a
// BasicTcmEngine/BasicMaxMinIndex instantiation binds to in a sharded
// context: every per-vertex read routes to the shard OWNING that vertex,
// which — by the mirroring invariant (an edge is stored by the owners of
// BOTH endpoints) — holds the vertex's complete live adjacency in global
// arrival order. Candidate pre-filtering goes through the published
// ShardSummaries rows instead of a remote graph, so a distributed
// deployment only has to put a transport behind Owner() routing and row
// publication; the matching code is untouched.
//
// Determinism: because an owner shard sees exactly the incident edges of
// its vertices, in exactly the global event order, its buckets, bucket
// creation order, and signature masks for an owned vertex are
// bit-identical to the single canonical graph's. Every read below
// therefore returns the same values an unsharded run would see — which
// is what makes sharded engine execution (results AND scan counters)
// byte-identical to serial.
#ifndef TCSM_SHARD_SHARDED_GRAPH_H_
#define TCSM_SHARD_SHARDED_GRAPH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"
#include "graph/temporal_graph.h"
#include "shard/partitioner.h"
#include "shard/summaries.h"

namespace tcsm {

class ShardedGraphView {
 public:
  /// All pointers are borrowed from the owning ShardedStreamContext and
  /// must outlive the view; `shards[s]` is the graph of shard s.
  ShardedGraphView(const VertexPartitioner* partitioner,
                   std::vector<const TemporalGraph*> shards,
                   const ShardSummaries* summaries)
      : partitioner_(partitioner),
        shards_(std::move(shards)),
        summaries_(summaries) {
    TCSM_CHECK(!shards_.empty());
    TCSM_CHECK(shards_.size() == partitioner_->num_shards());
  }

  size_t num_shards() const { return shards_.size(); }
  bool directed() const { return shards_[0]->directed(); }
  size_t NumVertices() const { return shards_[0]->NumVertices(); }

  /// The static vertex labels are replicated to every shard graph at
  /// construction; no routing needed.
  Label VertexLabel(VertexId v) const { return shards_[0]->VertexLabel(v); }

  /// Candidate pre-filter, answered from the published summary rows (the
  /// only cross-shard state on this path). Same one-sided guarantee as
  /// TemporalGraph::MayHaveMatching: a false is always safe to act on.
  bool MayHaveMatching(VertexId v, Label elabel, Label nbr_label,
                       bool want_out) const {
    return summaries_->MayHaveMatching(v, elabel, nbr_label, want_out);
  }

  /// v's live incident edges with this signature — complete, because the
  /// owner mirrors every incident edge regardless of the other
  /// endpoint's shard.
  TemporalGraph::NeighborRange NeighborsMatching(VertexId v, Label elabel,
                                                 Label nbr_label) const {
    return OwnerGraph(v).NeighborsMatching(v, elabel, nbr_label);
  }

  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    OwnerGraph(v).ForEachNeighbor(v, std::forward<Fn>(fn));
  }

  /// Edge record lookup during a scan anchored at v: the owner of v
  /// stores every edge incident to v, so the read stays on v's shard.
  const TemporalEdge& EdgeNear(VertexId v, EdgeId id) const {
    return OwnerGraph(v).Edge(id);
  }

  /// Liveness of an edge whose record the caller already holds: route by
  /// an endpoint (the src owner always stores the edge). Mirrors are
  /// removed in the same event step, so either endpoint answers alike.
  bool AliveEdge(const TemporalEdge& e) const {
    return OwnerGraph(e.src).Alive(e.id);
  }

  const TemporalGraph& shard(size_t s) const { return *shards_[s]; }
  const VertexPartitioner& partitioner() const { return *partitioner_; }

 private:
  const TemporalGraph& OwnerGraph(VertexId v) const {
    return *shards_[partitioner_->Owner(v)];
  }

  const VertexPartitioner* partitioner_;
  std::vector<const TemporalGraph*> shards_;
  const ShardSummaries* summaries_;
};

}  // namespace tcsm

#endif  // TCSM_SHARD_SHARDED_GRAPH_H_
