// The TCM engine instantiated over the sharded graph view. The matching
// code is the BasicTcmEngine template unchanged — this header only names
// the instantiation and keeps its compile cost in one translation unit
// (engine_instantiations.cpp), mirroring how core/tcm_engine.h handles
// the canonical single-graph TcmEngine.
#ifndef TCSM_SHARD_SHARDED_ENGINE_H_
#define TCSM_SHARD_SHARDED_ENGINE_H_

#include "core/tcm_engine.h"
#include "shard/sharded_graph.h"

namespace tcsm {

/// Per-query TCM engine reading through a ShardedGraphView. Construct
/// against ShardedStreamContext::view() and attach with AttachToShard
/// (or let the context's round-robin Attach place it).
using ShardedTcmEngine = BasicTcmEngine<ShardedGraphView>;

extern template class BasicMaxMinIndex<ShardedGraphView>;
extern template class BasicTcmEngine<ShardedGraphView>;

}  // namespace tcsm

#endif  // TCSM_SHARD_SHARDED_ENGINE_H_
