// Vertex-to-shard ownership for the sharded execution subsystem
// (DESIGN.md §10). The partitioner is the one rule everything else in
// src/shard/ derives from: shard Owner(v) stores vertex v's COMPLETE
// live adjacency (cross-shard edges are mirrored to both endpoint
// owners), publishes v's signature summary rows, and answers every
// per-vertex read the ShardedGraphView routes. The interface is
// deliberately tiny and deterministic — a later distributed deployment
// swaps the in-process shard array for a transport without touching the
// ownership rule.
#ifndef TCSM_SHARD_PARTITIONER_H_
#define TCSM_SHARD_PARTITIONER_H_

#include <cstddef>

#include "common/bloom.h"
#include "common/logging.h"
#include "common/types.h"

namespace tcsm {

class VertexPartitioner {
 public:
  virtual ~VertexPartitioner() = default;

  /// Number of shards S (>= 1). Owner() always returns values in [0, S).
  virtual size_t num_shards() const = 0;

  /// The shard that owns vertex v. Must be a pure function of v — the
  /// same vertex maps to the same shard for the lifetime of the context
  /// (no rebalancing mid-stream), which is what makes the mirroring
  /// invariant and the summary protocol sound.
  virtual size_t Owner(VertexId v) const = 0;
};

/// Default policy: hash partitioning by the splitmix64 finalizer. Spreads
/// arbitrary (including dense, sequential) vertex id ranges uniformly
/// across shards, is deterministic across runs and platforms, and costs a
/// few ALU ops per lookup — no state, no lookup table.
class HashVertexPartitioner : public VertexPartitioner {
 public:
  explicit HashVertexPartitioner(size_t num_shards)
      : num_shards_(num_shards) {
    TCSM_CHECK(num_shards >= 1);
  }

  size_t num_shards() const override { return num_shards_; }

  size_t Owner(VertexId v) const override {
    return static_cast<size_t>(MixBits64(v) % num_shards_);
  }

 private:
  size_t num_shards_;
};

}  // namespace tcsm

#endif  // TCSM_SHARD_PARTITIONER_H_
