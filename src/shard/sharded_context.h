// Vertex-partitioned sharded stream context (DESIGN.md §10): the data
// graph is split across S shards by vertex ownership instead of being
// one canonical TemporalGraph. Each shard owns the vertices the
// VertexPartitioner maps to it, stores every live edge with a locally
// owned endpoint (cross-shard edges are mirrored to BOTH endpoint
// owners, so an owner always holds an owned vertex's complete adjacency
// and local scans never leave the shard), and runs the engines attached
// to it. Edge ids stay the GLOBAL dense arrival indices — shard graphs
// use TemporalGraph::InsertEdgeAs, so EdgeId-keyed engine state is
// identical to an unsharded run and the slot pools stay O(window).
//
// Execution: a micro-batch of same-timestamp events runs as one
// pipelined pool job with one lane per shard (ThreadPool::PipelineFor).
// Mutation steps touch shard-local state only (lane s mutates graph s
// and publishes the summary rows of the vertices s owns); notification
// steps run each shard's engines, which read any shard's graph through
// the ShardedGraphView — safe because no lane mutates during a
// notification step and the pipeline step fences order
// mutations-before-reads. Engines report into per-engine buffered sinks
// drained on the driver in shard-then-attach order, so the match stream
// is deterministic at every shard x thread count; with engines placed
// contiguously (ShardedMultiQueryEngine) it is byte-identical to serial
// execution, per query AND globally.
//
// This context is the in-process rehearsal of a distributed deployment:
// the partitioner, the mirroring rule, and the summary exchange are the
// exact seams a transport would slot into (lanes become peers, Publish
// becomes a broadcast); nothing in the engines would change.
#ifndef TCSM_SHARD_SHARDED_CONTEXT_H_
#define TCSM_SHARD_SHARDED_CONTEXT_H_

#include <memory>
#include <vector>

#include "core/shared_context.h"
#include "exec/result_sink.h"
#include "exec/thread_pool.h"
#include "shard/partitioner.h"
#include "shard/sharded_graph.h"
#include "shard/summaries.h"

namespace tcsm {

class ShardedStreamContext : public SharedStreamContext {
 public:
  /// Partitions the schema's vertex set across `num_shards` with a
  /// HashVertexPartitioner. `num_threads` is the pool width driving the
  /// shard lanes (including the driver thread); 0 means one thread per
  /// shard. Widths beyond `num_shards` add nothing — a batch fans out at
  /// most one lane per shard. With 1 thread the lanes run inline on the
  /// driver (the serial bypass; results are identical either way).
  ShardedStreamContext(const GraphSchema& schema, size_t num_shards,
                       size_t num_threads = 0);

  size_t num_shards() const override { return graphs_.size(); }
  size_t num_threads() const override { return pool_.num_threads(); }

  /// The logical graph engines bind to (ShardedTcmEngine's GraphT).
  const ShardedGraphView& view() const { return *view_; }
  const VertexPartitioner& partitioner() const { return *partitioner_; }
  const ShardSummaries& summaries() const { return summaries_; }
  /// Shard s's local graph (tests and memory accounting).
  const TemporalGraph& shard_graph(size_t s) const { return *graphs_[s]; }

  /// Places `engine` on a specific shard: its notification work runs on
  /// that shard's lane. The per-engine match stream is byte-identical to
  /// serial regardless of placement; the GLOBAL interleaving is
  /// shard-then-attach order, so it equals the serial attach order
  /// exactly when engines are attached shard-monotonically (shard ids
  /// nondecreasing in attach order — what ShardedMultiQueryEngine does).
  void AttachToShard(size_t shard, ContinuousEngine* engine);

  /// Round-robin placement (attach order modulo shard count). Convenient
  /// for ad-hoc use; prefer AttachToShard for the global-order guarantee
  /// above.
  void Attach(ContinuousEngine* engine) override;

  void OnEdgeArrival(const TemporalEdge& ed) override;
  void OnEdgeExpiry(const TemporalEdge& ed) override;

  /// Batch entry points: the whole batch runs as ONE pipelined pool job,
  /// two steps per arrival (mutate shards, notify) and three per expiry
  /// (notify expiring, remove, notify removed) — the same event protocol
  /// as the serial base, with a barrier between every step.
  void OnEdgeArrivalBatch(const TemporalEdge* edges, size_t count) override;
  void OnEdgeExpiryBatch(const TemporalEdge* edges, size_t count) override;

  /// Shard graphs (mirrored edges counted once per holding shard — the
  /// true footprint) + summary table + per-engine state.
  size_t EstimateMemoryBytes() const override;

 private:
  /// Lane body, mutation step: inserts the arrival into shard s if s
  /// owns an endpoint, then re-publishes the summary rows of the owned
  /// endpoint(s). No-op for uninvolved shards.
  void ApplyShardArrival(size_t s, const TemporalEdge& ed);
  /// Lane body, removal step: mirror image of ApplyShardArrival.
  void ApplyShardRemoval(size_t s, const TemporalEdge& ed);
  /// The canonical record of an applied arrival: the src owner always
  /// stores the edge. Valid until that shard mutates again.
  const TemporalEdge& CanonicalArrival(const TemporalEdge& ed) const;
  /// Validates liveness and copies the canonical record of an expiring
  /// edge out of the src owner's graph (the sharded CaptureExpiry).
  TemporalEdge CaptureShardExpiry(const TemporalEdge& ed) const;

  /// Runs one engine hook over shard s's engines in attach order.
  void NotifyShard(size_t s,
                   void (ContinuousEngine::*hook)(const TemporalEdge&),
                   const TemporalEdge& ed);
  /// Interposes a BufferedMatchSink in front of every engine's sink
  /// (driver thread, once per batch) — same protocol as
  /// ParallelStreamContext::SyncSinks.
  void SyncSinks();
  /// Drains the buffers in shard-then-attach order (the deterministic
  /// merge of the per-shard match streams).
  void DrainSinks();
  void DiscardSinks();

  std::unique_ptr<VertexPartitioner> partitioner_;
  std::vector<std::unique_ptr<TemporalGraph>> graphs_;
  ShardSummaries summaries_;
  std::unique_ptr<ShardedGraphView> view_;
  ThreadPool pool_;
  /// Per shard, the indexes (into engines()) of the engines placed on
  /// it, in attach order.
  std::vector<std::vector<size_t>> shard_members_;
  /// Aligned with engines(); interposed in front of each engine's sink.
  std::vector<std::unique_ptr<BufferedMatchSink>> buffers_;
  /// Canonical records of the in-flight batch; reserved up front so the
  /// driver's settle-phase push_back never reallocates under the lanes'
  /// concurrent reads of earlier elements.
  std::vector<TemporalEdge> batch_scratch_;
};

}  // namespace tcsm

#endif  // TCSM_SHARD_SHARDED_CONTEXT_H_
