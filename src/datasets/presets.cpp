#include "datasets/presets.h"

#include <algorithm>

#include "common/logging.h"

namespace tcsm {

std::vector<std::string> PresetNames() {
  return {"netflow", "wikitalk",      "superuser",
          "stackoverflow", "yahoo", "lsbench"};
}

SyntheticSpec PresetSpec(const std::string& name, double scale) {
  SyntheticSpec spec;
  spec.name = name;
  // Table III signatures, scaled. Defaults target a few-second stream per
  // query on a laptop; degree = 2|E|/|V| follows from the V/E ratio.
  if (name == "netflow") {
    // |V|=0.37M |E|=15.96M |Sv|=1 |Se|=346k davg=85.4 mavg=27.6
    spec.num_vertices = 1000;
    spec.num_edges = 43000;
    spec.num_vertex_labels = 1;
    spec.num_edge_labels = 900;
    spec.avg_parallel_edges = 27.6;
    spec.degree_skew = 1.0;
    spec.seed = 101;
  } else if (name == "wikitalk") {
    // |V|=1.14M |E|=7.83M |Sv|=365 |Se|=1 davg=13.7 mavg=2.37
    spec.num_vertices = 8000;
    spec.num_edges = 55000;
    spec.num_vertex_labels = 60;
    spec.num_edge_labels = 1;
    spec.avg_parallel_edges = 2.37;
    spec.degree_skew = 1.0;
    spec.seed = 102;
  } else if (name == "superuser") {
    // |V|=0.19M |E|=1.44M |Sv|=5 |Se|=3 davg=14.9 mavg=1.56
    spec.num_vertices = 6500;
    spec.num_edges = 48000;
    spec.num_vertex_labels = 5;
    spec.num_edge_labels = 3;
    spec.avg_parallel_edges = 1.56;
    spec.degree_skew = 0.9;
    spec.seed = 103;
  } else if (name == "stackoverflow") {
    // |V|=2.60M |E|=63.5M |Sv|=5 |Se|=3 davg=48.8 mavg=1.75
    spec.num_vertices = 2600;
    spec.num_edges = 63000;
    spec.num_vertex_labels = 5;
    spec.num_edge_labels = 3;
    spec.avg_parallel_edges = 1.75;
    spec.degree_skew = 0.9;
    spec.seed = 104;
  } else if (name == "yahoo") {
    // |V|=0.10M |E|=3.18M |Sv|=5 |Se|=1 davg=63.6 mavg=3.51
    spec.num_vertices = 1500;
    spec.num_edges = 48000;
    spec.num_vertex_labels = 5;
    spec.num_edge_labels = 1;
    spec.avg_parallel_edges = 3.51;
    spec.degree_skew = 0.9;
    spec.seed = 105;
  } else if (name == "lsbench") {
    // |V|=13.12M |E|=21.04M |Sv|=11 |Se|=19 davg=3.21 mavg=1.00
    spec.num_vertices = 25000;
    spec.num_edges = 40000;
    spec.num_vertex_labels = 11;
    spec.num_edge_labels = 19;
    spec.avg_parallel_edges = 1.0;
    spec.degree_skew = 0.6;
    spec.seed = 106;
  } else {
    TCSM_CHECK(false && "unknown preset name");
  }
  spec.num_vertices = std::max<size_t>(
      16, static_cast<size_t>(static_cast<double>(spec.num_vertices) * scale));
  spec.num_edges = std::max<size_t>(
      64, static_cast<size_t>(static_cast<double>(spec.num_edges) * scale));
  return spec;
}

TemporalDataset MakePreset(const std::string& name, double scale) {
  return GenerateSynthetic(PresetSpec(name, scale));
}

}  // namespace tcsm
