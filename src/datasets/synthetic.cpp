#include "datasets/synthetic.h"

#include <algorithm>

#include "common/logging.h"

namespace tcsm {

TemporalDataset GenerateSynthetic(const SyntheticSpec& spec) {
  TCSM_CHECK(spec.num_vertices >= 2);
  TCSM_CHECK(spec.avg_parallel_edges >= 1.0);
  Rng rng(spec.seed);

  TemporalDataset ds;
  ds.name = spec.name;
  ds.directed = spec.directed;
  ds.vertex_labels.resize(spec.num_vertices);
  for (auto& l : ds.vertex_labels) {
    l = static_cast<Label>(rng.NextBounded(
        std::max<size_t>(1, spec.num_vertex_labels)));
  }

  // Draw vertex-pair bundles until the edge budget is exhausted. Endpoint
  // popularity is Zipf-distributed; a random permutation decouples vertex
  // ids from popularity ranks.
  std::vector<VertexId> perm(spec.num_vertices);
  for (size_t i = 0; i < perm.size(); ++i) perm[i] =
      static_cast<VertexId>(i);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }

  // Virtual time horizon; ranks are reassigned at the end anyway.
  const double horizon = static_cast<double>(spec.num_edges) * 16.0;

  while (ds.edges.size() < spec.num_edges) {
    const VertexId a =
        perm[rng.NextZipf(spec.num_vertices, spec.degree_skew)];
    VertexId b = perm[rng.NextZipf(spec.num_vertices, spec.degree_skew)];
    if (a == b) continue;  // no self loops
    // Bundle size: geometric with mean avg_parallel_edges.
    const size_t bundle =
        1 + rng.NextGeometric(spec.avg_parallel_edges - 1.0);
    const Label elabel = static_cast<Label>(
        rng.NextBounded(std::max<size_t>(1, spec.num_edge_labels)));
    const Timestamp base =
        static_cast<Timestamp>(rng.NextDouble() * horizon);
    for (size_t k = 0; k < bundle && ds.edges.size() < spec.num_edges; ++k) {
      TemporalEdge e;
      if (spec.directed && rng.NextBool(0.5)) {
        e.src = b;
        e.dst = a;
      } else {
        e.src = a;
        e.dst = b;
      }
      if (k == 0 || rng.NextBool(spec.burstiness)) {
        // Burst: close to the bundle base time.
        e.ts = base + static_cast<Timestamp>(rng.NextBounded(64));
      } else {
        e.ts = static_cast<Timestamp>(rng.NextDouble() * horizon);
      }
      e.label = elabel;
      ds.edges.push_back(e);
    }
  }

  ds.RankTimestamps();  // sort by time, timestamps become 1..|E|
  if (spec.ts_coalesce > 1) {
    // Collapse runs of ts_coalesce consecutive ranks onto one timestamp
    // (still ascending, still starting at 1): same-second burst feeds.
    for (size_t i = 0; i < ds.edges.size(); ++i) {
      ds.edges[i].ts = static_cast<Timestamp>(i / spec.ts_coalesce) + 1;
    }
  }
  return ds;
}

}  // namespace tcsm
