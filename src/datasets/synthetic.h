// Synthetic temporal-graph generator. The paper evaluates on six real and
// synthetic datasets (Table III); those multi-GB files are not available
// offline, so the generator reproduces their *signatures* — vertex/edge
// counts, label alphabet sizes, degree skew, and the average number of
// parallel edges between adjacent vertex pairs — at laptop scale (see
// DESIGN.md §5). Timestamps are the arrival ranks 1..|E| (the paper's
// window unit is the average inter-arrival gap, so a window of w units
// holds w live edges).
#ifndef TCSM_DATASETS_SYNTHETIC_H_
#define TCSM_DATASETS_SYNTHETIC_H_

#include <string>

#include "common/rng.h"
#include "graph/temporal_dataset.h"

namespace tcsm {

struct SyntheticSpec {
  std::string name = "synthetic";
  size_t num_vertices = 1000;
  size_t num_edges = 10000;
  /// Vertex labels are assigned uniformly from [0, num_vertex_labels).
  size_t num_vertex_labels = 1;
  /// Edge labels likewise (1 = unlabeled edges).
  size_t num_edge_labels = 1;
  /// Mean number of parallel edges per adjacent vertex pair (m_avg).
  double avg_parallel_edges = 1.0;
  /// Zipf exponent of endpoint popularity (0 = uniform; ~0.8-1.2 gives the
  /// heavy-tailed degrees of real interaction networks).
  double degree_skew = 0.9;
  /// Fraction of each parallel bundle emitted as a burst around a common
  /// base time (parallel edges in traffic/transactions are bursty).
  double burstiness = 0.7;
  /// Runs of this many consecutive arrivals share one timestamp (1 = all
  /// timestamps unique, the historical behavior). Real feeds deliver
  /// same-second bursts; this knob reproduces them so micro-batching
  /// (DESIGN.md §9) has something to coalesce. Timestamps stay ascending
  /// and start at 1.
  size_t ts_coalesce = 1;
  bool directed = false;
  uint64_t seed = 42;
};

/// Generates a dataset matching `spec`. Self loops are never produced
/// (embeddings cannot use them; see DESIGN.md).
TemporalDataset GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace tcsm

#endif  // TCSM_DATASETS_SYNTHETIC_H_
