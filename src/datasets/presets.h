// Laptop-scaled presets shaped after the six datasets of Table III. The
// `scale` parameter divides vertex and edge counts (1.0 = the listed
// default scale, which is already ~1/40-1/200 of the paper's sizes);
// label alphabets, degree ratios, and parallel-edge multiplicities follow
// the originals.
#ifndef TCSM_DATASETS_PRESETS_H_
#define TCSM_DATASETS_PRESETS_H_

#include <string>
#include <vector>

#include "datasets/synthetic.h"

namespace tcsm {

/// Names: "netflow", "wikitalk", "superuser", "stackoverflow", "yahoo",
/// "lsbench".
std::vector<std::string> PresetNames();

/// Spec for a named preset; CHECK-fails on unknown names.
SyntheticSpec PresetSpec(const std::string& name, double scale = 1.0);

TemporalDataset MakePreset(const std::string& name, double scale = 1.0);

}  // namespace tcsm

#endif  // TCSM_DATASETS_PRESETS_H_
