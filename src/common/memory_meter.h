// Memory accounting helpers. The paper's Figure 10 compares peak process
// memory of separate binaries; all engines run inside one process here, so
// each engine instead reports an accounting-based estimate of its live
// state, and tracks the peak of that estimate over the stream.
#ifndef TCSM_COMMON_MEMORY_METER_H_
#define TCSM_COMMON_MEMORY_METER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tcsm {

/// Approximate heap footprint of common containers (payload + per-node or
/// per-bucket overhead). Estimates are intentionally simple and uniform so
/// cross-engine comparisons are apples-to-apples.
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T) + sizeof(v);
}

template <typename K, typename V, typename H, typename E, typename A>
size_t HashMapBytes(const std::unordered_map<K, V, H, E, A>& m) {
  // Node-based: one heap node per element plus the bucket array.
  constexpr size_t kNodeOverhead = 2 * sizeof(void*);
  return m.size() * (sizeof(std::pair<const K, V>) + kNodeOverhead) +
         m.bucket_count() * sizeof(void*) + sizeof(m);
}

template <typename K, typename H, typename E, typename A>
size_t HashSetBytes(const std::unordered_set<K, H, E, A>& s) {
  constexpr size_t kNodeOverhead = 2 * sizeof(void*);
  return s.size() * (sizeof(K) + kNodeOverhead) +
         s.bucket_count() * sizeof(void*) + sizeof(s);
}

/// Tracks the peak of a recomputed estimate, and *where* it happened:
/// callers with a stream position pass it so a memory spike is
/// attributable to an event index, not just a magnitude.
class PeakMeter {
 public:
  void Observe(size_t bytes, size_t event_index = 0) {
    if (bytes > peak_) {
      peak_ = bytes;
      peak_at_ = event_index;
    }
  }
  size_t peak_bytes() const { return peak_; }
  /// Event index passed with the observation that set the current peak
  /// (0 when the caller never supplied positions).
  size_t peak_event_index() const { return peak_at_; }
  void Reset() {
    peak_ = 0;
    peak_at_ = 0;
  }

 private:
  size_t peak_ = 0;
  size_t peak_at_ = 0;
};

/// Reads the process-wide resident-set peak (VmHWM) in bytes from
/// /proc/self/status. Only meaningful for single-experiment processes;
/// exposed for completeness and used by the quickstart example.
size_t ProcessPeakRssBytes();

}  // namespace tcsm

#endif  // TCSM_COMMON_MEMORY_METER_H_
