#include "common/status.h"

namespace tcsm {

std::string Status::ToString() const {
  switch (code_) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument: " + message_;
    case StatusCode::kNotFound:
      return "NotFound: " + message_;
    case StatusCode::kCorruptInput:
      return "CorruptInput: " + message_;
    case StatusCode::kOutOfRange:
      return "OutOfRange: " + message_;
  }
  return "Unknown";
}

}  // namespace tcsm
