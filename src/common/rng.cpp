#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace tcsm {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TCSM_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  TCSM_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double alpha) {
  TCSM_CHECK(n > 0);
  if (n == 1) return 0;
  if (alpha <= 0) return NextBounded(n);
  // Inverse-CDF approximation via the continuous bounded Pareto envelope;
  // accurate enough for workload skew and O(1) per sample.
  const double u = NextDouble();
  double x;
  if (std::fabs(alpha - 1.0) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    const double one_minus = 1.0 - alpha;
    const double nmax = std::pow(static_cast<double>(n), one_minus);
    x = std::pow(u * (nmax - 1.0) + 1.0, 1.0 / one_minus);
  }
  uint64_t idx = static_cast<uint64_t>(x) - 1;
  if (idx >= n) idx = n - 1;
  return idx;
}

uint64_t Rng::NextGeometric(double mean) {
  if (mean <= 0) return 0;
  const double p = 1.0 / (1.0 + mean);
  uint64_t k = 0;
  while (!NextBool(p) && k < 10000) ++k;
  return k;
}

Rng Rng::Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace tcsm
