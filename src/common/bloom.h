// Tiny two-probe Bloom signatures used as candidate pre-filters on the
// per-event hot path. A Bloom64 is a 64-bit membership summary of a small
// key set: Add() sets two hash-derived bits per key, MayContain() tests
// them. Like any Bloom filter it is one-sided — MayContain() can return
// true for an absent key (a hash collision costs only a wasted scan) but
// never false for a present key, so a "no" answer is always safe to act
// on. With the handful of distinct (edge label, neighbor label)
// signatures a vertex sees in practice, two probes into 64 bits keep the
// false-positive rate negligible while the filter stays register-sized.
#ifndef TCSM_COMMON_BLOOM_H_
#define TCSM_COMMON_BLOOM_H_

#include <cstdint>

namespace tcsm {

/// Finalizer of splitmix64 — a cheap, well-mixed 64-bit hash.
inline constexpr uint64_t MixBits64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// The two probe bits of `key` (independent 6-bit slices of one mix).
inline constexpr uint64_t BloomBits(uint64_t key) {
  const uint64_t h = MixBits64(key);
  return (uint64_t{1} << (h & 63)) | (uint64_t{1} << ((h >> 6) & 63));
}

class Bloom64 {
 public:
  constexpr void Add(uint64_t key) { bits_ |= BloomBits(key); }
  constexpr bool MayContain(uint64_t key) const {
    const uint64_t probe = BloomBits(key);
    return (bits_ & probe) == probe;
  }
  constexpr void Clear() { bits_ = 0; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr uint64_t bits() const { return bits_; }

 private:
  uint64_t bits_ = 0;
};

}  // namespace tcsm

#endif  // TCSM_COMMON_BLOOM_H_
