// Fundamental identifier and timestamp types shared across the library.
#ifndef TCSM_COMMON_TYPES_H_
#define TCSM_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace tcsm {

/// Identifier of a vertex in a data or query graph (dense, 0-based).
using VertexId = uint32_t;
/// Identifier of an edge in a data or query graph (dense, 0-based).
using EdgeId = uint32_t;
/// Vertex or edge label. Label 0 is a valid label ("unlabeled" graphs use
/// a single label 0 everywhere).
using Label = uint32_t;
/// Edge timestamp. The paper models timestamps as natural numbers; we use a
/// signed 64-bit integer so that -inf/+inf sentinels are representable.
using Timestamp = int64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Sentinels used by the max-min timestamp index (Definition IV.3 uses
/// -inf for "no weak embedding" and +inf for "no temporal descendant").
inline constexpr Timestamp kMinusInfinity = std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kPlusInfinity = std::numeric_limits<Timestamp>::max();

/// Largest timestamp magnitude (and window) any stream path may carry: a
/// quarter of the int64 range, so the derived expiry time ts + window can
/// never overflow signed arithmetic however the events reach the driver
/// (.tel parser, synthetic generator, or a programmatically built
/// dataset). Epoch nanoseconds are ~2^60, comfortably inside.
inline constexpr Timestamp kMaxStreamTimestamp =
    std::numeric_limits<Timestamp>::max() / 4;

/// Packs an ordered pair of vertex ids into one 64-bit hash-map key.
inline constexpr uint64_t PackPair(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}
inline constexpr VertexId PairFirst(uint64_t key) {
  return static_cast<VertexId>(key >> 32);
}
inline constexpr VertexId PairSecond(uint64_t key) {
  return static_cast<VertexId>(key & 0xffffffffu);
}

}  // namespace tcsm

#endif  // TCSM_COMMON_TYPES_H_
