#include "common/memory_meter.h"

#include <cstdio>
#include <cstring>

namespace tcsm {

size_t ProcessPeakRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace tcsm
