// Minimal Status / StatusOr used by I/O boundaries (file loaders/parsers).
// Internal algorithmic invariants use TCSM_CHECK instead; Status is for
// errors a caller can reasonably handle (missing file, malformed input).
#ifndef TCSM_COMMON_STATUS_H_
#define TCSM_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/logging.h"

namespace tcsm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruptInput,
  kOutOfRange,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CorruptInput(std::string msg) {
    return Status(StatusCode::kCorruptInput, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value or an error status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    TCSM_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TCSM_CHECK(ok());
    return value_;
  }
  T& value() & {
    TCSM_CHECK(ok());
    return value_;
  }
  T&& value() && {
    TCSM_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace tcsm

#endif  // TCSM_COMMON_STATUS_H_
