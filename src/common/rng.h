// Deterministic pseudo-random number generator (xoshiro256**) used by the
// dataset/query generators and property tests. std::mt19937 is avoided so
// that generated workloads are reproducible across standard libraries.
#ifndef TCSM_COMMON_RNG_H_
#define TCSM_COMMON_RNG_H_

#include <cstdint>

namespace tcsm {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Zipf-distributed integer in [0, n) with exponent alpha >= 0.
  /// alpha == 0 degenerates to the uniform distribution.
  uint64_t NextZipf(uint64_t n, double alpha);

  /// Geometric number of extra repetitions with mean `mean` >= 0
  /// (returns 0 when mean <= 0).
  uint64_t NextGeometric(double mean);

  /// Fork an independent stream (for parallel deterministic generation).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace tcsm

#endif  // TCSM_COMMON_RNG_H_
