// 64-bit set helpers. Query graphs are limited to 64 vertices and 64 edges
// (far beyond the paper's maximum query size of 15 edges), which lets the
// temporal order, failing sets, and reachability be plain uint64_t masks.
#ifndef TCSM_COMMON_BITMASK_H_
#define TCSM_COMMON_BITMASK_H_

#include <bit>
#include <cstdint>

namespace tcsm {

using Mask64 = uint64_t;

inline constexpr Mask64 Bit(uint32_t i) { return Mask64{1} << i; }
inline constexpr bool HasBit(Mask64 m, uint32_t i) { return (m >> i) & 1u; }
inline constexpr int PopCount(Mask64 m) { return std::popcount(m); }

/// Iterates set bits of a mask: for (uint32_t i : BitRange(mask)) ...
class BitRange {
 public:
  explicit constexpr BitRange(Mask64 mask) : mask_(mask) {}

  class Iterator {
   public:
    explicit constexpr Iterator(Mask64 mask) : mask_(mask) {}
    constexpr uint32_t operator*() const {
      return static_cast<uint32_t>(std::countr_zero(mask_));
    }
    constexpr Iterator& operator++() {
      mask_ &= mask_ - 1;
      return *this;
    }
    constexpr bool operator!=(const Iterator& other) const {
      return mask_ != other.mask_;
    }

   private:
    Mask64 mask_;
  };

  constexpr Iterator begin() const { return Iterator(mask_); }
  constexpr Iterator end() const { return Iterator(0); }

 private:
  Mask64 mask_;
};

}  // namespace tcsm

#endif  // TCSM_COMMON_BITMASK_H_
