// Wall-clock stopwatch and soft deadlines for per-query time limits.
#ifndef TCSM_COMMON_TIMER_H_
#define TCSM_COMMON_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tcsm {

class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline that search loops poll cheaply: `Expired()` only consults the
/// clock every `kCheckInterval` calls so the hot backtracking path is not
/// dominated by clock reads. One Deadline is shared by every engine of a
/// stream context, and ParallelStreamContext polls it from several worker
/// threads at once, so the expired flag is a relaxed atomic latch (expiry
/// is monotone — racing polls can only differ on *when* they first
/// observe it, which the soft-deadline contract already allows) and the
/// poll-stride counter is thread-local rather than a member: a shared
/// counter would put a contended read-modify-write on the innermost
/// search loop of every worker, costing more than the clock reads it
/// amortizes. The stride phase therefore varies per thread/run; only the
/// polling *rate* is contractual.
class Deadline {
 public:
  /// Unlimited deadline.
  Deadline() : has_limit_(false) {}

  explicit Deadline(double limit_ms)
      : has_limit_(limit_ms > 0),
        end_(Clock::now() +
             std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(limit_ms))) {}

  bool Expired() {
    if (!has_limit_) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    thread_local uint32_t calls = 0;
    if (++calls % kCheckInterval != 0) return false;
    if (Clock::now() >= end_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Unconditional clock check (used between stream events).
  bool ExpiredNow() {
    if (!has_limit_) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (Clock::now() >= end_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr uint32_t kCheckInterval = 1024;

  bool has_limit_;
  std::atomic<bool> expired_{false};
  Clock::time_point end_{};
};

}  // namespace tcsm

#endif  // TCSM_COMMON_TIMER_H_
