// Wall-clock stopwatch and soft deadlines for per-query time limits.
#ifndef TCSM_COMMON_TIMER_H_
#define TCSM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tcsm {

class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline that search loops poll cheaply: `Expired()` only consults the
/// clock every `kCheckInterval` calls so the hot backtracking path is not
/// dominated by clock reads.
class Deadline {
 public:
  /// Unlimited deadline.
  Deadline() : has_limit_(false) {}

  explicit Deadline(double limit_ms)
      : has_limit_(limit_ms > 0),
        end_(Clock::now() +
             std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(limit_ms))) {}

  bool Expired() {
    if (!has_limit_) return false;
    if (expired_) return true;
    if (++calls_ % kCheckInterval != 0) return false;
    expired_ = Clock::now() >= end_;
    return expired_;
  }

  /// Unconditional clock check (used between stream events).
  bool ExpiredNow() {
    if (!has_limit_) return false;
    expired_ = expired_ || Clock::now() >= end_;
    return expired_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr uint32_t kCheckInterval = 1024;

  bool has_limit_;
  bool expired_ = false;
  uint32_t calls_ = 0;
  Clock::time_point end_{};
};

}  // namespace tcsm

#endif  // TCSM_COMMON_TIMER_H_
