// Lightweight CHECK macros. Database-style internal invariants are enforced
// in all build types; violating them indicates a library bug, so we abort
// with a readable message rather than continuing with corrupt state.
#ifndef TCSM_COMMON_LOGGING_H_
#define TCSM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace tcsm::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "TCSM CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace tcsm::internal

#define TCSM_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::tcsm::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (0)

#define TCSM_DCHECK(expr) TCSM_CHECK(expr)

#endif  // TCSM_COMMON_LOGGING_H_
