#include "core/multi_engine.h"

#include "common/logging.h"

namespace tcsm {

bool MultiQueryEngine::TaggedSink::wants_each_embedding() const {
  return parent_->multi_sink_ != nullptr;
}

void MultiQueryEngine::TaggedSink::OnMatch(const Embedding& embedding,
                                           MatchKind kind,
                                           uint64_t multiplicity) {
  (kind == MatchKind::kOccurred ? parent_->counters_.occurred
                                : parent_->counters_.expired) += multiplicity;
  if (parent_->multi_sink_ != nullptr) {
    parent_->multi_sink_->OnMatch(index_, embedding, kind, multiplicity);
  }
}

MultiQueryEngine::MultiQueryEngine(const std::vector<QueryGraph>& queries,
                                   const GraphSchema& schema,
                                   TcmConfig config) {
  TCSM_CHECK(!queries.empty());
  engines_.reserve(queries.size());
  tagged_.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    engines_.push_back(
        std::make_unique<TcmEngine>(queries[i], schema, config));
    tagged_.push_back(std::make_unique<TaggedSink>(this, i));
    engines_.back()->set_sink(tagged_.back().get());
  }
}

void MultiQueryEngine::OnEdgeArrival(const TemporalEdge& ed) {
  for (auto& engine : engines_) {
    engine->set_deadline(deadline_);
    engine->OnEdgeArrival(ed);
  }
}

void MultiQueryEngine::OnEdgeExpiry(const TemporalEdge& ed) {
  for (auto& engine : engines_) {
    engine->set_deadline(deadline_);
    engine->OnEdgeExpiry(ed);
  }
}

size_t MultiQueryEngine::EstimateMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& engine : engines_) bytes += engine->EstimateMemoryBytes();
  return bytes;
}

}  // namespace tcsm
