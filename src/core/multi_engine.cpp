#include "core/multi_engine.h"

#include "common/logging.h"

namespace tcsm {

bool MultiQueryEngine::TaggedSink::wants_each_embedding() const {
  return parent_->multi_sink_ != nullptr;
}

void MultiQueryEngine::TaggedSink::OnMatch(const Embedding& embedding,
                                           MatchKind kind,
                                           uint64_t multiplicity) {
  if (parent_->multi_sink_ != nullptr) {
    parent_->multi_sink_->OnMatch(index_, embedding, kind, multiplicity);
  }
}

MultiQueryEngine::MultiQueryEngine(const std::vector<QueryGraph>& queries,
                                   const GraphSchema& schema,
                                   TcmConfig config, size_t num_threads)
    : ParallelStreamContext(schema, num_threads) {
  TCSM_CHECK(!queries.empty());
  owned_.reserve(queries.size());
  tagged_.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    owned_.push_back(std::make_unique<TcmEngine>(queries[i], graph(), config));
    tagged_.push_back(std::make_unique<TaggedSink>(this, i));
    owned_.back()->set_sink(tagged_.back().get());
    Attach(owned_.back().get());
  }
}

}  // namespace tcsm
