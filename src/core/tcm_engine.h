// TCM — the paper's algorithm (Algorithm 1 + Algorithm 4).
//
// The engine is a read-only view over the SharedStreamContext's windowed
// graph. Per event it (i) updates the max-min timestamp indexes for q̂ and
// q̂⁻¹ (TCMInsertion/TCMDeletion), (ii) diffs TC-matchable-edge verdicts
// into DCS edge inserts/removals (E±_DCS), and (iii) backtracks from the
// update edge to enumerate every occurred/expired time-constrained
// embedding, applying the three time-constrained pruning techniques of
// Section V:
//
//   1. R⁻_M(e) = ∅      — all parallel candidates lead to identical search
//                         trees; explore one and multiply (or expand) the
//                         results over the siblings.
//   2. uniform relation — candidates tried in (reverse-)chronological
//                         order; the first failure kills all stricter
//                         siblings.
//   3. temporal failing set (Definition V.3) — a failed subtree whose
//                         failing set does not contain e prunes all
//                         remaining candidates of e.
//
// Expirations are matched against the pre-deletion state (the expiring
// embeddings are exactly those containing the expiring edge) in
// OnEdgeExpiring, then the structures are updated in OnEdgeRemoved after
// the context deleted the edge; see DESIGN.md §3 for why this deviates
// from the literal order of Algorithm 1.
#ifndef TCSM_CORE_TCM_ENGINE_H_
#define TCSM_CORE_TCM_ENGINE_H_

#include <array>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bitmask.h"
#include "core/engine.h"
#include "dag/query_dag.h"
#include "dcs/dcs_index.h"
#include "filter/maxmin_index.h"
#include "graph/temporal_graph.h"

namespace tcsm {

struct TcmConfig {
  /// TC-matchable edge filtering (Section IV). Off = DCS holds every
  /// statically feasible pair, as in SymBi; used for the Table V ablation.
  bool use_tc_filter = true;
  /// Also filter with the reverse DAG q̂⁻¹ (Section IV-A, last paragraph).
  /// Off = forward direction only; an ablation of that design choice.
  bool use_reverse_filter = true;
  /// Pick the query DAG with the highest Algorithm-2 score over all roots
  /// (Algorithm 1 lines 1-6). Off = greedy DAG from vertex 0; an ablation
  /// of the root-selection heuristic.
  bool use_best_dag = true;
  /// Pruning technique 1 (no temporally related edges remain).
  bool prune_no_relation = true;
  /// Pruning technique 2 (uniform relation, monotone skip).
  bool prune_uniform = true;
  /// Pruning technique 3 (temporal failing sets).
  bool prune_failing_set = true;
  /// Prune with inter-edge gap bounds (QueryGraph::gaps) during
  /// backtracking: the ECM candidate window of an edge is intersected with
  /// [ts(partner) + min, ts(partner) + max] for every mapped gap partner,
  /// and gap partners count as temporally related when grouping parallel
  /// candidates (technique 1). Off = gaps are post-filtered on complete
  /// embeddings (the baseline behavior); results are identical either way
  /// — this is the ablation knob proving the pruning win. No-op for
  /// queries without gap constraints.
  bool prune_gap_bounds = true;
  /// Enumerate only the (edge label, neighbor label) adjacency bucket a
  /// query edge can match (TemporalGraph::NeighborsMatching) during filter
  /// recomputation and DCS rescans. Off = visit every incident entry and
  /// filter inline, the pre-partitioning storage behavior; kept as an
  /// ablation for bench_storage_scaling.
  bool partitioned_adjacency = true;
  /// Consult the graph's per-vertex Bloom signature masks
  /// (TemporalGraph::MayHaveMatching) before every partitioned bucket scan
  /// of the filter recomputation and the DCS rescan, skipping scans that
  /// provably yield no matching entry (direction-aware on directed
  /// graphs). Never changes results — the filter has no false negatives —
  /// only the adj_entries_scanned work. Kept as an ablation knob; no-op
  /// without partitioned_adjacency.
  bool use_bloom_prefilter = true;
};

/// The engine is a template over the graph type: the matching code is
/// identical whether it reads the canonical single TemporalGraph or a
/// sharded view routing every per-vertex read to the owning shard
/// (src/shard/sharded_graph.h). GraphT must expose the TemporalGraph
/// read surface: VertexLabel, directed, MayHaveMatching,
/// NeighborsMatching, ForEachNeighbor, EdgeNear, AliveEdge. `TcmEngine`
/// below is the canonical instantiation every single-graph call site
/// keeps using.
template <typename GraphT>
class BasicTcmEngine : public ContinuousEngine {
 public:
  /// `graph` is the context-owned shared graph (or sharded view); it must
  /// outlive the engine, carry the data vertex set with its labels, and
  /// match the query's directedness.
  BasicTcmEngine(const QueryGraph& query, const GraphT& graph,
                 TcmConfig config = {});

  BasicTcmEngine(const BasicTcmEngine&) = delete;
  BasicTcmEngine& operator=(const BasicTcmEngine&) = delete;

  std::string name() const override;
  void OnEdgeInserted(const TemporalEdge& ed) override;
  void OnEdgeExpiring(const TemporalEdge& ed) override;
  void OnEdgeRemoved(const TemporalEdge& ed) override;
  size_t EstimateMemoryBytes() const override;

  const DcsIndex& dcs() const { return dcs_; }
  const QueryDag& dag() const { return dag_q_; }
  BasicMaxMinIndex<GraphT>* filter_q() { return filter_q_.get(); }
  BasicMaxMinIndex<GraphT>* filter_r() { return filter_r_.get(); }
  const GraphT& graph() const { return g_; }

 private:
  struct SearchResult {
    bool found;
    Mask64 failing;  // temporal failing set; meaningful only when !found
  };

  struct FreeGroup {
    EdgeId qe;
    std::vector<ParallelEdge> alternatives;  // excluding the chosen edge
  };

  /// True when some (query edge, orientation) pair is statically feasible
  /// for `ed`; statically infeasible events are complete no-ops. Tested
  /// against the precomputed label signatures of the query edges.
  bool Relevant(const TemporalEdge& ed) const;

  /// Recomputes filter verdicts affected by the update and applies the
  /// resulting DCS edge delta (E±_DCS of Algorithm 1).
  void UpdateStructures(const TemporalEdge& ed, bool inserting);

  /// Enumerates all embeddings that contain `ed` (Algorithm 4 seeds).
  void FindMatches(const TemporalEdge& ed, MatchKind kind);

  SearchResult Extend();
  SearchResult ExtendEdge(EdgeId qe);
  SearchResult ExtendVertex();
  void ReportCurrent();
  void ExpandGroups(size_t group_idx, Embedding* embedding);
  /// All gap bounds satisfied by the given per-query-edge timestamps.
  bool GapsOk(const std::vector<Timestamp>& ets) const;

  void MapVertex(VertexId u, VertexId v) {
    vmap_[u] = v;
    mapped_vertices_ |= Bit(u);
    used_data_.insert(v);
  }
  void UnmapVertex(VertexId u) {
    used_data_.erase(vmap_[u]);
    mapped_vertices_ &= ~Bit(u);
    vmap_[u] = kInvalidVertex;
  }
  void MapEdge(EdgeId qe, EdgeId data_edge, Timestamp ts) {
    emap_[qe] = data_edge;
    ets_[qe] = ts;
    mapped_edges_ |= Bit(qe);
  }
  void UnmapEdge(EdgeId qe) {
    mapped_edges_ &= ~Bit(qe);
    emap_[qe] = kInvalidEdge;
  }

  QueryGraph query_;
  QueryDag dag_q_;
  QueryDag dag_r_;
  TcmConfig config_;
  const GraphT& g_;  // shared, owned by the stream context
  /// (edge label, label(u), label(v)) per query edge, for Relevant().
  std::vector<std::array<Label, 3>> feasible_sigs_;
  std::unique_ptr<BasicMaxMinIndex<GraphT>> filter_q_;
  std::unique_ptr<BasicMaxMinIndex<GraphT>> filter_r_;
  DcsIndex dcs_;

  // Scratch for UpdateStructures.
  std::vector<UvPair> touched_q_;
  std::vector<UvPair> touched_r_;
  /// A (query edge, data edge, orientation) pair whose DCS verdict must be
  /// re-evaluated. The data edge is captured by value: after a removal the
  /// update edge's slot is a tombstone, so the graph must not be re-read.
  struct Triple {
    EdgeId qe;
    TemporalEdge de;
    bool flip;
  };
  std::unordered_set<uint64_t> triple_keys_;
  std::vector<Triple> triple_list_;

  // Backtracking state.
  MatchKind kind_ = MatchKind::kOccurred;
  bool timed_out_ = false;
  std::vector<VertexId> vmap_;
  std::vector<EdgeId> emap_;
  std::vector<Timestamp> ets_;
  Mask64 mapped_vertices_ = 0;
  Mask64 mapped_edges_ = 0;
  std::unordered_set<VertexId> used_data_;
  std::vector<FreeGroup> free_groups_;
  /// Per-alternative timestamps during free-group expansion, so the gap
  /// post-filter judges each expanded embedding by its own timestamps.
  std::vector<Timestamp> expand_ets_;
};

/// The canonical single-graph instantiation; compiled once in
/// tcm_engine.cpp (extern template keeps every includer's rebuild cheap).
using TcmEngine = BasicTcmEngine<TemporalGraph>;

}  // namespace tcsm

#include "core/tcm_engine-inl.h"

namespace tcsm {
extern template class BasicTcmEngine<TemporalGraph>;
}  // namespace tcsm

#endif  // TCSM_CORE_TCM_ENGINE_H_
