// Common interface of all continuous-matching engines (TCM and the
// baselines) plus match sinks. Engines are read-only views over the one
// canonical sliding-window graph owned by a SharedStreamContext
// (core/shared_context.h): the context applies each arrival/expiration to
// the graph exactly once and then notifies every attached engine, which
// maintains only per-query state (DAG, filter indexes, DCS, backtracking
// scratch) and reports every time-constrained embedding that occurs or
// expires. See DESIGN.md §1 for the ownership model.
#ifndef TCSM_CORE_ENGINE_H_
#define TCSM_CORE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "common/types.h"
#include "core/embedding.h"
#include "graph/temporal_edge.h"
#include "obs/metrics.h"
#include "query/query_graph.h"

namespace tcsm {

enum class MatchKind { kOccurred, kExpired };

/// Receives matches from an engine. Engines that can factor out
/// interchangeable parallel edges (pruning technique 1) ask
/// `wants_each_embedding` first: counting sinks accept one representative
/// embedding with a multiplicity instead of the expanded set.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual bool wants_each_embedding() const { return true; }
  virtual void OnMatch(const Embedding& embedding, MatchKind kind,
                       uint64_t multiplicity) = 0;
};

class CountingSink : public MatchSink {
 public:
  bool wants_each_embedding() const override { return false; }
  void OnMatch(const Embedding&, MatchKind kind,
               uint64_t multiplicity) override {
    (kind == MatchKind::kOccurred ? occurred_ : expired_) += multiplicity;
  }
  uint64_t occurred() const { return occurred_; }
  uint64_t expired() const { return expired_; }

 private:
  uint64_t occurred_ = 0;
  uint64_t expired_ = 0;
};

class CollectingSink : public MatchSink {
 public:
  void OnMatch(const Embedding& embedding, MatchKind kind,
               uint64_t multiplicity) override {
    for (uint64_t i = 0; i < multiplicity; ++i) {
      matches_.emplace_back(embedding, kind);
    }
  }
  const std::vector<std::pair<Embedding, MatchKind>>& matches() const {
    return matches_;
  }

 private:
  std::vector<std::pair<Embedding, MatchKind>> matches_;
};

/// Static description of the data graph the stream runs over (vertex set
/// and labels are fixed; only edges arrive/expire).
struct GraphSchema {
  bool directed = false;
  std::vector<Label> vertex_labels;
};

struct EngineCounters {
  uint64_t occurred = 0;
  uint64_t expired = 0;
  uint64_t search_nodes = 0;
  /// Wall-clock nanoseconds spent in index maintenance (filter + DCS)
  /// vs. backtracking. Only the TCM engine fills these.
  uint64_t update_ns = 0;
  uint64_t search_ns = 0;
  /// Scan-selectivity counters for the label-partitioned adjacency:
  /// `adj_entries_scanned` counts adjacency entries visited during index
  /// maintenance and enumeration scans, `adj_entries_matched` those that
  /// passed all static (label + direction) checks at the scan site. With
  /// partitioned storage scanned tracks matched closely; a flat scan
  /// (TcmConfig::partitioned_adjacency = false) visits every incident
  /// entry, so the gap measures the partitioning win.
  uint64_t adj_entries_scanned = 0;
  uint64_t adj_entries_matched = 0;
};

class ContinuousEngine {
 public:
  virtual ~ContinuousEngine() = default;

  virtual std::string name() const = 0;

  /// Notification hooks, driven by the SharedStreamContext that owns the
  /// shared data graph. `ed` is always the canonical graph edge with its
  /// dense graph-assigned id already in place.
  ///
  /// Called after the arrival was applied to the shared graph: update
  /// per-query indexes and enumerate the embeddings that occur with `ed`.
  virtual void OnEdgeInserted(const TemporalEdge& ed) = 0;
  /// Called while the expiring edge is still live in the shared graph:
  /// enumerate the embeddings that expire with it against the pre-deletion
  /// state (DESIGN.md §3).
  virtual void OnEdgeExpiring(const TemporalEdge& ed) = 0;
  /// Called after the edge was removed from the shared graph: update
  /// per-query indexes. Engines without deletion-time index work keep the
  /// default no-op.
  virtual void OnEdgeRemoved(const TemporalEdge& ed) { (void)ed; }

  /// Accounting-based footprint of the engine's per-query state (indexes,
  /// materialized records, scratch). The shared graph is accounted once by
  /// the SharedStreamContext, never here.
  virtual size_t EstimateMemoryBytes() const = 0;

  /// True when internal capacity limits were exceeded (Timing's
  /// materialization cap); results are then incomplete.
  virtual bool overflowed() const { return false; }

  void set_sink(MatchSink* sink) { sink_ = sink; }
  /// The currently installed sink (null when reports are counter-only).
  /// ParallelStreamContext reads this to interpose its per-engine result
  /// buffers in front of whatever the caller installed.
  MatchSink* sink() const { return sink_; }
  void set_deadline(Deadline* deadline) { deadline_ = deadline; }
  const EngineCounters& counters() const { return counters_; }

  /// Observability hook, installed by the owning SharedStreamContext when
  /// a run carries an Observability bundle. Null (the default) keeps the
  /// engine's hot phases free of any metrics work; engines that time
  /// their phases (TcmEngine) feed stage_metrics_->engine_*_ns alongside
  /// the EngineCounters nanosecond totals.
  void set_stage_metrics(const StageMetrics* stages) {
    stage_metrics_ = stages;
  }

 protected:
  const StageMetrics* stage_metrics_ = nullptr;

  /// Routes every match report. Without absence predicates this is the
  /// direct emission path (one pointer test); with them, occurred reports
  /// are deferred and expired reports resolve the pending state
  /// (DESIGN.md §12). Engines with absence active always report expanded
  /// embeddings with multiplicity 1.
  void Report(const Embedding& embedding, MatchKind kind,
              uint64_t multiplicity) {
    if (absence_ != nullptr) {
      AbsenceReport(embedding, kind, multiplicity);
      return;
    }
    Emit(embedding, kind, multiplicity);
  }

  /// Sets up the deferred-emission state iff `query` carries absence
  /// predicates. Every engine constructor calls this once.
  void InitAbsence(const QueryGraph& query);

  /// Absence hook for arrivals: every engine calls this at the very top of
  /// OnEdgeInserted, before any relevance early-out — an edge that matches
  /// no query edge can still violate (or time out) an absence window.
  void AbsenceArrival(const TemporalEdge& ed) {
    if (absence_ != nullptr) AbsenceArrivalSlow(ed);
  }

  bool absence_active() const { return absence_ != nullptr; }

  MatchSink* sink_ = nullptr;
  Deadline* deadline_ = nullptr;
  EngineCounters counters_;

 private:
  /// Counter + sink emission; counters count at emission time so they
  /// always reconcile with what the sink observed.
  void Emit(const Embedding& embedding, MatchKind kind,
            uint64_t multiplicity) {
    (kind == MatchKind::kOccurred ? counters_.occurred : counters_.expired) +=
        multiplicity;
    if (sink_ != nullptr) sink_->OnMatch(embedding, kind, multiplicity);
  }

  struct AbsencePending {
    Embedding emb;
    Timestamp trigger_ts = 0;
    Timestamp deadline = 0;
  };
  struct AbsenceState {
    bool directed = false;
    std::vector<AbsencePredicate> predicates;
    Timestamp max_delta = 0;
    /// Timestamp of the most recent arrival, plus the arrivals at that
    /// instant whose label matches some predicate (delivered before the
    /// current one): a completion at time T must also check edges that
    /// arrived at T *before* its trigger.
    Timestamp cur_ts = kMinusInfinity;
    std::vector<TemporalEdge> same_ts;
    /// Completions awaiting their absence window, in completion (FIFO)
    /// order; deadlines are non-decreasing because max_delta is constant.
    std::deque<AbsencePending> pending;
    /// Embeddings whose occurred report was suppressed by a violating
    /// edge; their eventual expired report is swallowed too.
    std::unordered_set<Embedding, EmbeddingHash> suppressed;
  };

  void AbsenceArrivalSlow(const TemporalEdge& ed);
  void AbsenceReport(const Embedding& embedding, MatchKind kind,
                     uint64_t multiplicity);
  bool AbsenceViolates(const Embedding& emb, Timestamp trigger_ts,
                       const TemporalEdge& ed) const;

  std::unique_ptr<AbsenceState> absence_;
};

}  // namespace tcsm

#endif  // TCSM_CORE_ENGINE_H_
