// One-shot time-constrained subgraph matching on a static temporal graph
// (the setting of TOM [14]: find all time-constrained embeddings within a
// time window over a fixed temporal graph). Implemented by streaming the
// edges through the TCM engine and collecting occurrences, so it shares
// all of the continuous engine's filtering and pruning.
#ifndef TCSM_CORE_SNAPSHOT_H_
#define TCSM_CORE_SNAPSHOT_H_

#include <vector>

#include "core/embedding.h"
#include "core/tcm_engine.h"
#include "graph/temporal_dataset.h"
#include "query/query_graph.h"

namespace tcsm {

struct SnapshotOptions {
  /// 0 = no window: match over the whole graph.
  Timestamp window = 0;
  /// Wall-clock budget; 0 = unlimited.
  double time_limit_ms = 0;
  TcmConfig engine_config;
};

struct SnapshotResult {
  bool completed = true;
  std::vector<Embedding> matches;
};

/// All time-constrained embeddings of `query` in `dataset`. With a window,
/// an embedding is reported iff all its edges coexist in some window
/// position (each embedding exactly once, at its occurrence).
SnapshotResult FindAllMatches(const TemporalDataset& dataset,
                              const QueryGraph& query,
                              const SnapshotOptions& options = {});

/// Convenience count-only variant (avoids materializing embeddings and
/// lets the engine use multiplicity shortcuts).
struct SnapshotCount {
  bool completed = true;
  uint64_t matches = 0;
};
SnapshotCount CountAllMatches(const TemporalDataset& dataset,
                              const QueryGraph& query,
                              const SnapshotOptions& options = {});

}  // namespace tcsm

#endif  // TCSM_CORE_SNAPSHOT_H_
