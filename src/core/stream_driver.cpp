#include "core/stream_driver.h"

#include "common/logging.h"
#include "common/memory_meter.h"
#include "common/timer.h"
#include "obs/observability.h"
#include "obs/stage_timer.h"
#include "obs/stats_reporter.h"

namespace tcsm {

StreamResult RunStream(const TemporalDataset& dataset,
                       const StreamConfig& config,
                       SharedStreamContext* context) {
  TCSM_CHECK(config.window > 0);
  StreamResult result;
  const size_t n = dataset.edges.size();
  const size_t arrivals =
      config.max_arrivals == 0 ? n : std::min(n, config.max_arrivals);

  // The expiry comparison below computes ts + window in signed 64-bit.
  // The .tel parser caps what it accepts, but programmatically built and
  // synthetic datasets reach this loop unparsed — refuse magnitudes that
  // could overflow instead of computing undefined behavior. Timestamps
  // are normalized ascending, so checking the last arrival suffices.
  if (config.window > kMaxStreamTimestamp ||
      (arrivals > 0 && dataset.edges[arrivals - 1].ts > kMaxStreamTimestamp)) {
    result.completed = false;
    result.error = Status::InvalidArgument(
        "stream timestamp or window exceeds kMaxStreamTimestamp; "
        "ts + window could overflow");
    return result;
  }

  Deadline deadline(config.time_limit_ms);
  context->set_deadline(config.time_limit_ms > 0 ? &deadline : nullptr);

  // Observability: install the bundle on the context (which fans the
  // stage-metric handles out to the engines) and cache the handles the
  // driver's own sites use. All of `stages`/`trace` stay null when
  // metrics are off, so each site below is one pointer test.
  context->set_observability(config.obs);
  const StageMetrics* const stages =
      config.obs != nullptr ? &config.obs->stages() : nullptr;
  TraceWriter* const trace =
      config.obs != nullptr ? config.obs->trace() : nullptr;
  StatsReporter reporter(config.obs, config.stats_every, config.stats_json,
                         config.stats_out);

  // Adaptive cadence: ~32 samples across the ~2*arrivals events of a full
  // run. Compared against result.events — which counts arrivals AND
  // expirations — so the divisor is the total event count, not the
  // arrival count.
  size_t sample_every = config.memory_sample_every;
  if (sample_every == 0) {
    sample_every = std::max<size_t>(1, arrivals * 2 / 32);
  }
  const size_t max_batch =
      config.max_batch == 0 ? kDefaultMaxBatch : config.max_batch;

  PeakMeter peak;
  StopWatch watch;
  const EngineCounters base = context->AggregateCounters();

  size_t arr = 0;
  size_t exp = 0;
  while (arr < arrivals || exp < arr) {
    if (deadline.ExpiredNow() || context->overflowed()) {
      result.completed = false;
      break;
    }
    const bool have_arrival = arr < arrivals;
    // Expiration time of edge `exp` is its timestamp + window; process
    // expirations first on ties.
    const bool do_expire =
        exp < arr &&
        (!have_arrival ||
         dataset.edges[exp].ts + config.window <= dataset.edges[arr].ts);
    // Coalesce the run of consecutive same-timestamp events of the same
    // kind into one batch call (DESIGN.md §9). Same arrival timestamp
    // means same expiry timestamp, and an arrival batch never needs an
    // expiration between its members (window > 0), so batching by equal
    // ts never reorders events across the two queues.
    size_t batch = 1;
    if (do_expire) {
      const Timestamp t = dataset.edges[exp].ts;
      while (batch < max_batch && exp + batch < arr &&
             dataset.edges[exp + batch].ts == t) {
        ++batch;
      }
      {
        const ScopedStage span(
            stages != nullptr ? stages->expiry_batch_ns : nullptr, trace,
            "expiry_batch", "stream", "events", batch);
        context->OnEdgeExpiryBatch(&dataset.edges[exp], batch);
      }
      exp += batch;
      if (stages != nullptr) {
        stages->expirations->Add(batch);
        stages->expiry_batches->Add(1);
      }
    } else {
      TCSM_CHECK(have_arrival);
      const Timestamp t = dataset.edges[arr].ts;
      while (batch < max_batch && arr + batch < arrivals &&
             dataset.edges[arr + batch].ts == t) {
        ++batch;
      }
      {
        const ScopedStage span(
            stages != nullptr ? stages->arrival_batch_ns : nullptr, trace,
            "arrival_batch", "stream", "events", batch);
        context->OnEdgeArrivalBatch(&dataset.edges[arr], batch);
      }
      arr += batch;
      if (stages != nullptr) {
        stages->arrivals->Add(batch);
        stages->arrival_batches->Add(1);
      }
      if (arr == arrivals) {
        // The window is at its fullest right after the last arrival —
        // from here on the graph only shrinks, so sample the high-water
        // point explicitly rather than hoping the cadence lands on it.
        peak.Observe(context->EstimateMemoryBytes(), result.events + batch);
      }
    }
    const size_t before = result.events;
    result.events += batch;
    if (stages != nullptr) {
      stages->live_edges->Set(static_cast<int64_t>(arr - exp));
    }
    if (result.events / sample_every != before / sample_every) {
      peak.Observe(context->EstimateMemoryBytes(), result.events);
    }
    if (reporter.Due(result.events)) {
      reporter.Tick(result.events, arr - exp, context->AggregateCounters());
    }
  }
  peak.Observe(context->EstimateMemoryBytes(), result.events);

  result.elapsed_ms = watch.ElapsedMs();
  const EngineCounters now = context->AggregateCounters();
  result.occurred = now.occurred - base.occurred;
  result.expired = now.expired - base.expired;
  result.adj_entries_scanned =
      now.adj_entries_scanned - base.adj_entries_scanned;
  result.adj_entries_matched =
      now.adj_entries_matched - base.adj_entries_matched;
  result.peak_memory_bytes = peak.peak_bytes();
  result.peak_memory_event_index = peak.peak_event_index();
  result.num_threads = context->num_threads();
  result.num_shards = context->num_shards();
  if (config.obs != nullptr) {
    // Publish this run's deltas so a registry snapshot, --json, and
    // BENCH JSON all read one source of truth.
    EngineCounters delta;
    delta.occurred = result.occurred;
    delta.expired = result.expired;
    delta.search_nodes = now.search_nodes - base.search_nodes;
    delta.adj_entries_scanned = result.adj_entries_scanned;
    delta.adj_entries_matched = result.adj_entries_matched;
    config.obs->PublishEngineCounters(delta);
    if (stages != nullptr) {
      stages->peak_bytes->Set(static_cast<int64_t>(result.peak_memory_bytes));
      stages->peak_event_index->Set(
          static_cast<int64_t>(result.peak_memory_event_index));
      stages->live_edges->Set(static_cast<int64_t>(arr - exp));
    }
  }
  context->set_deadline(nullptr);
  return result;
}

}  // namespace tcsm
