#include "core/stream_driver.h"

#include "common/logging.h"
#include "common/memory_meter.h"
#include "common/timer.h"

namespace tcsm {

StreamResult RunStream(const TemporalDataset& dataset,
                       const StreamConfig& config, ContinuousEngine* engine) {
  TCSM_CHECK(config.window > 0);
  StreamResult result;
  const size_t n = dataset.edges.size();
  const size_t arrivals =
      config.max_arrivals == 0 ? n : std::min(n, config.max_arrivals);

  Deadline deadline(config.time_limit_ms);
  engine->set_deadline(config.time_limit_ms > 0 ? &deadline : nullptr);

  size_t sample_every = config.memory_sample_every;
  if (sample_every == 0) {
    sample_every = std::max<size_t>(64, arrivals * 2 / 32);
  }

  PeakMeter peak;
  StopWatch watch;
  const uint64_t base_occurred = engine->counters().occurred;
  const uint64_t base_expired = engine->counters().expired;

  size_t arr = 0;
  size_t exp = 0;
  while (arr < arrivals || exp < arr) {
    if (deadline.ExpiredNow() || engine->overflowed()) {
      result.completed = false;
      break;
    }
    const bool have_arrival = arr < arrivals;
    // Expiration time of edge `exp` is its timestamp + window; process
    // expirations first on ties.
    const bool do_expire =
        exp < arr &&
        (!have_arrival ||
         dataset.edges[exp].ts + config.window <= dataset.edges[arr].ts);
    if (do_expire) {
      engine->OnEdgeExpiry(dataset.edges[exp]);
      ++exp;
    } else {
      TCSM_CHECK(have_arrival);
      engine->OnEdgeArrival(dataset.edges[arr]);
      ++arr;
    }
    ++result.events;
    if (result.events % sample_every == 0) {
      peak.Observe(engine->EstimateMemoryBytes());
    }
  }
  peak.Observe(engine->EstimateMemoryBytes());

  result.elapsed_ms = watch.ElapsedMs();
  result.occurred = engine->counters().occurred - base_occurred;
  result.expired = engine->counters().expired - base_expired;
  result.peak_memory_bytes = peak.peak_bytes();
  engine->set_deadline(nullptr);
  return result;
}

}  // namespace tcsm
