#include "core/stream_driver.h"

#include "common/logging.h"
#include "common/memory_meter.h"
#include "common/timer.h"

namespace tcsm {

StreamResult RunStream(const TemporalDataset& dataset,
                       const StreamConfig& config,
                       SharedStreamContext* context) {
  TCSM_CHECK(config.window > 0);
  StreamResult result;
  const size_t n = dataset.edges.size();
  const size_t arrivals =
      config.max_arrivals == 0 ? n : std::min(n, config.max_arrivals);

  Deadline deadline(config.time_limit_ms);
  context->set_deadline(config.time_limit_ms > 0 ? &deadline : nullptr);

  size_t sample_every = config.memory_sample_every;
  if (sample_every == 0) {
    sample_every = std::max<size_t>(64, arrivals * 2 / 32);
  }

  PeakMeter peak;
  StopWatch watch;
  const EngineCounters base = context->AggregateCounters();

  size_t arr = 0;
  size_t exp = 0;
  while (arr < arrivals || exp < arr) {
    if (deadline.ExpiredNow() || context->overflowed()) {
      result.completed = false;
      break;
    }
    const bool have_arrival = arr < arrivals;
    // Expiration time of edge `exp` is its timestamp + window; process
    // expirations first on ties.
    const bool do_expire =
        exp < arr &&
        (!have_arrival ||
         dataset.edges[exp].ts + config.window <= dataset.edges[arr].ts);
    if (do_expire) {
      context->OnEdgeExpiry(dataset.edges[exp]);
      ++exp;
    } else {
      TCSM_CHECK(have_arrival);
      context->OnEdgeArrival(dataset.edges[arr]);
      ++arr;
    }
    ++result.events;
    if (result.events % sample_every == 0) {
      peak.Observe(context->EstimateMemoryBytes());
    }
  }
  peak.Observe(context->EstimateMemoryBytes());

  result.elapsed_ms = watch.ElapsedMs();
  const EngineCounters now = context->AggregateCounters();
  result.occurred = now.occurred - base.occurred;
  result.expired = now.expired - base.expired;
  result.adj_entries_scanned =
      now.adj_entries_scanned - base.adj_entries_scanned;
  result.adj_entries_matched =
      now.adj_entries_matched - base.adj_entries_matched;
  result.peak_memory_bytes = peak.peak_bytes();
  result.num_threads = context->num_threads();
  context->set_deadline(nullptr);
  return result;
}

}  // namespace tcsm
