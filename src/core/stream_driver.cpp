#include "core/stream_driver.h"

#include "common/logging.h"
#include "common/memory_meter.h"
#include "common/timer.h"

namespace tcsm {

StreamResult RunStream(const TemporalDataset& dataset,
                       const StreamConfig& config,
                       SharedStreamContext* context) {
  TCSM_CHECK(config.window > 0);
  StreamResult result;
  const size_t n = dataset.edges.size();
  const size_t arrivals =
      config.max_arrivals == 0 ? n : std::min(n, config.max_arrivals);

  // The expiry comparison below computes ts + window in signed 64-bit.
  // The .tel parser caps what it accepts, but programmatically built and
  // synthetic datasets reach this loop unparsed — refuse magnitudes that
  // could overflow instead of computing undefined behavior. Timestamps
  // are normalized ascending, so checking the last arrival suffices.
  if (config.window > kMaxStreamTimestamp ||
      (arrivals > 0 && dataset.edges[arrivals - 1].ts > kMaxStreamTimestamp)) {
    result.completed = false;
    result.error = Status::InvalidArgument(
        "stream timestamp or window exceeds kMaxStreamTimestamp; "
        "ts + window could overflow");
    return result;
  }

  Deadline deadline(config.time_limit_ms);
  context->set_deadline(config.time_limit_ms > 0 ? &deadline : nullptr);

  // Adaptive cadence: ~32 samples across the ~2*arrivals events of a full
  // run. Compared against result.events — which counts arrivals AND
  // expirations — so the divisor is the total event count, not the
  // arrival count.
  size_t sample_every = config.memory_sample_every;
  if (sample_every == 0) {
    sample_every = std::max<size_t>(1, arrivals * 2 / 32);
  }
  const size_t max_batch =
      config.max_batch == 0 ? kDefaultMaxBatch : config.max_batch;

  PeakMeter peak;
  StopWatch watch;
  const EngineCounters base = context->AggregateCounters();

  size_t arr = 0;
  size_t exp = 0;
  while (arr < arrivals || exp < arr) {
    if (deadline.ExpiredNow() || context->overflowed()) {
      result.completed = false;
      break;
    }
    const bool have_arrival = arr < arrivals;
    // Expiration time of edge `exp` is its timestamp + window; process
    // expirations first on ties.
    const bool do_expire =
        exp < arr &&
        (!have_arrival ||
         dataset.edges[exp].ts + config.window <= dataset.edges[arr].ts);
    // Coalesce the run of consecutive same-timestamp events of the same
    // kind into one batch call (DESIGN.md §9). Same arrival timestamp
    // means same expiry timestamp, and an arrival batch never needs an
    // expiration between its members (window > 0), so batching by equal
    // ts never reorders events across the two queues.
    size_t batch = 1;
    if (do_expire) {
      const Timestamp t = dataset.edges[exp].ts;
      while (batch < max_batch && exp + batch < arr &&
             dataset.edges[exp + batch].ts == t) {
        ++batch;
      }
      context->OnEdgeExpiryBatch(&dataset.edges[exp], batch);
      exp += batch;
    } else {
      TCSM_CHECK(have_arrival);
      const Timestamp t = dataset.edges[arr].ts;
      while (batch < max_batch && arr + batch < arrivals &&
             dataset.edges[arr + batch].ts == t) {
        ++batch;
      }
      context->OnEdgeArrivalBatch(&dataset.edges[arr], batch);
      arr += batch;
      if (arr == arrivals) {
        // The window is at its fullest right after the last arrival —
        // from here on the graph only shrinks, so sample the high-water
        // point explicitly rather than hoping the cadence lands on it.
        peak.Observe(context->EstimateMemoryBytes());
      }
    }
    const size_t before = result.events;
    result.events += batch;
    if (result.events / sample_every != before / sample_every) {
      peak.Observe(context->EstimateMemoryBytes());
    }
  }
  peak.Observe(context->EstimateMemoryBytes());

  result.elapsed_ms = watch.ElapsedMs();
  const EngineCounters now = context->AggregateCounters();
  result.occurred = now.occurred - base.occurred;
  result.expired = now.expired - base.expired;
  result.adj_entries_scanned =
      now.adj_entries_scanned - base.adj_entries_scanned;
  result.adj_entries_matched =
      now.adj_entries_matched - base.adj_entries_matched;
  result.peak_memory_bytes = peak.peak_bytes();
  result.num_threads = context->num_threads();
  result.num_shards = context->num_shards();
  context->set_deadline(nullptr);
  return result;
}

}  // namespace tcsm
