#include "core/shared_context.h"

#include "common/logging.h"
#include "obs/observability.h"

namespace tcsm {

SharedStreamContext::SharedStreamContext(const GraphSchema& schema)
    : g_(schema.directed) {
  g_.EnsureVertices(schema.vertex_labels.size());
  for (size_t v = 0; v < schema.vertex_labels.size(); ++v) {
    g_.SetVertexLabel(static_cast<VertexId>(v), schema.vertex_labels[v]);
  }
}

void SharedStreamContext::Attach(ContinuousEngine* engine) {
  TCSM_CHECK(engine != nullptr);
  engine->set_deadline(deadline_);
  engine->set_stage_metrics(stages_);
  engines_.push_back(engine);
}

const TemporalEdge& SharedStreamContext::ApplyArrival(const TemporalEdge& ed) {
  // The driver assigns dense arrival indices; honoring them (rather than
  // recounting) keeps EdgeId-keyed state identical to a full replay even
  // when a seeked replay starts mid-stream at a non-zero first id.
  const EdgeId id = g_.InsertEdgeAs(ed.id, ed.src, ed.dst, ed.ts, ed.label);
  return g_.Edge(id);
}

TemporalEdge SharedStreamContext::CaptureExpiry(const TemporalEdge& ed) const {
  TCSM_CHECK(ed.id < g_.NumEdgesEver() && g_.Alive(ed.id));
  // Copy: the canonical record outlives the removal, but engines receive a
  // stable value either way.
  return g_.Edge(ed.id);
}

void SharedStreamContext::OnEdgeArrival(const TemporalEdge& ed) {
  NotifyInserted(ApplyArrival(ed));
}

void SharedStreamContext::OnEdgeExpiry(const TemporalEdge& ed) {
  const TemporalEdge applied = CaptureExpiry(ed);
  NotifyExpiring(applied);
  g_.RemoveEdge(applied.id);
  NotifyRemoved(applied);
}

void SharedStreamContext::OnEdgeArrivalBatch(const TemporalEdge* edges,
                                             size_t count) {
  for (size_t i = 0; i < count; ++i) OnEdgeArrival(edges[i]);
}

void SharedStreamContext::OnEdgeExpiryBatch(const TemporalEdge* edges,
                                            size_t count) {
  for (size_t i = 0; i < count; ++i) OnEdgeExpiry(edges[i]);
}

void SharedStreamContext::NotifyInserted(const TemporalEdge& ed) {
  for (ContinuousEngine* engine : engines_) engine->OnEdgeInserted(ed);
}

void SharedStreamContext::NotifyExpiring(const TemporalEdge& ed) {
  for (ContinuousEngine* engine : engines_) engine->OnEdgeExpiring(ed);
}

void SharedStreamContext::NotifyRemoved(const TemporalEdge& ed) {
  for (ContinuousEngine* engine : engines_) engine->OnEdgeRemoved(ed);
}

size_t SharedStreamContext::EstimateMemoryBytes() const {
  size_t bytes = g_.EstimateMemoryBytes();
  for (const ContinuousEngine* engine : engines_) {
    bytes += engine->EstimateMemoryBytes();
  }
  return bytes;
}

bool SharedStreamContext::overflowed() const {
  for (const ContinuousEngine* engine : engines_) {
    if (engine->overflowed()) return true;
  }
  return false;
}

void SharedStreamContext::set_deadline(Deadline* deadline) {
  deadline_ = deadline;
  for (ContinuousEngine* engine : engines_) engine->set_deadline(deadline);
}

void SharedStreamContext::set_observability(Observability* obs) {
  obs_ = obs;
  stages_ = obs != nullptr ? &obs->stages() : nullptr;
  trace_ = obs != nullptr ? obs->trace() : nullptr;
  for (ContinuousEngine* engine : engines_) {
    engine->set_stage_metrics(stages_);
  }
}

EngineCounters SharedStreamContext::AggregateCounters() const {
  EngineCounters total;
  for (const ContinuousEngine* engine : engines_) {
    const EngineCounters& c = engine->counters();
    total.occurred += c.occurred;
    total.expired += c.expired;
    total.search_nodes += c.search_nodes;
    total.update_ns += c.update_ns;
    total.search_ns += c.search_ns;
    total.adj_entries_scanned += c.adj_entries_scanned;
    total.adj_entries_matched += c.adj_entries_matched;
  }
  return total;
}

}  // namespace tcsm
