// Member definitions of BasicTcmEngine<GraphT> (template over the graph
// type — see tcm_engine.h). Included at the bottom of tcm_engine.h; the
// canonical <TemporalGraph> instantiation is compiled once in
// tcm_engine.cpp, the sharded-view one in src/shard/.
#ifndef TCSM_CORE_TCM_ENGINE_INL_H_
#define TCSM_CORE_TCM_ENGINE_INL_H_

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tcsm {
namespace tcm_internal {

/// Accumulates elapsed nanoseconds into a counter on scope exit, and —
/// when the run carries an observability bundle — observes the same
/// duration into the matching stage histogram, so the EngineCounters
/// totals and the registry's latency distribution come from one clock
/// read (DESIGN.md §11).
class ScopedNs {
 public:
  explicit ScopedNs(uint64_t* sink, Histogram* hist = nullptr)
      : sink_(sink), hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedNs() {
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    *sink_ += ns;
    if (hist_ != nullptr) hist_->Observe(ns);
  }

 private:
  uint64_t* sink_;
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tcm_internal

template <typename GraphT>
BasicTcmEngine<GraphT>::BasicTcmEngine(const QueryGraph& query,
                                       const GraphT& graph, TcmConfig config)
    : query_(query),
      dag_q_(config.use_best_dag ? QueryDag::BuildBestDag(query_)
                                 : QueryDag::BuildDagGreedy(query_, 0)),
      dag_r_(dag_q_.Reversed()),
      config_(config),
      g_(graph),
      dcs_(&query_, &dag_q_) {  // DCS is built over the forward DAG (SymBi)
  TCSM_CHECK(query_.Validate().ok());
  TCSM_CHECK(query_.directed() == g_.directed());
  if (config_.use_tc_filter) {
    filter_q_ = std::make_unique<BasicMaxMinIndex<GraphT>>(
        &g_, &dag_q_, config_.partitioned_adjacency,
        config_.use_bloom_prefilter);
    if (config_.use_reverse_filter) {
      filter_r_ = std::make_unique<BasicMaxMinIndex<GraphT>>(
          &g_, &dag_r_, config_.partitioned_adjacency,
          config_.use_bloom_prefilter);
    }
  }
  vmap_.assign(query_.NumVertices(), kInvalidVertex);
  emap_.assign(query_.NumEdges(), kInvalidEdge);
  ets_.assign(query_.NumEdges(), 0);
  for (EdgeId qe = 0; qe < query_.NumEdges(); ++qe) {
    const QueryEdge& q = query_.Edge(qe);
    const std::array<Label, 3> sig{q.elabel, query_.VertexLabel(q.u),
                                   query_.VertexLabel(q.v)};
    if (std::find(feasible_sigs_.begin(), feasible_sigs_.end(), sig) ==
        feasible_sigs_.end()) {
      feasible_sigs_.push_back(sig);
    }
  }
  InitAbsence(query_);
}

template <typename GraphT>
std::string BasicTcmEngine<GraphT>::name() const {
  if (!config_.use_tc_filter) return "TCM-NoFilter";
  if (!config_.prune_no_relation && !config_.prune_uniform &&
      !config_.prune_failing_set) {
    return "TCM-Pruning";
  }
  return "TCM";
}

template <typename GraphT>
bool BasicTcmEngine<GraphT>::Relevant(const TemporalEdge& ed) const {
  // Equivalent to "exists (qe, flip) with StaticFeasible(qe, ed, flip)",
  // but one pass over the deduplicated query-edge label signatures.
  const Label ls = g_.VertexLabel(ed.src);
  const Label ld = g_.VertexLabel(ed.dst);
  const bool undirected = !query_.directed();
  for (const auto& sig : feasible_sigs_) {
    if (sig[0] != ed.label) continue;
    if (sig[1] == ls && sig[2] == ld) return true;
    if (undirected && sig[1] == ld && sig[2] == ls) return true;
  }
  return false;
}

template <typename GraphT>
void BasicTcmEngine<GraphT>::OnEdgeInserted(const TemporalEdge& ed) {
  // Absence predicates watch every arrival — an edge that matches no query
  // edge can still violate (or close) an open absence window — so the
  // deferral hook runs before the relevance early-out.
  AbsenceArrival(ed);
  // A statically infeasible edge cannot dirty a filter entry, enter the
  // DCS, or seed a match, so the whole event is a no-op for this query.
  // In multi-query deployments most events are irrelevant to most
  // patterns; this keeps per-engine work proportional to relevance while
  // the shared graph update stays O(1) per event.
  if (!Relevant(ed)) return;
  UpdateStructures(ed, /*inserting=*/true);
  FindMatches(ed, MatchKind::kOccurred);
}

template <typename GraphT>
void BasicTcmEngine<GraphT>::OnEdgeExpiring(const TemporalEdge& ed) {
  // Expiring embeddings are those containing `ed`; enumerate them against
  // the pre-deletion state. Index updates follow in OnEdgeRemoved.
  if (!Relevant(ed)) return;
  FindMatches(ed, MatchKind::kExpired);
}

template <typename GraphT>
void BasicTcmEngine<GraphT>::OnEdgeRemoved(const TemporalEdge& ed) {
  if (!Relevant(ed)) return;
  UpdateStructures(ed, /*inserting=*/false);
}

template <typename GraphT>
void BasicTcmEngine<GraphT>::UpdateStructures(const TemporalEdge& ed,
                                              bool inserting) {
  const tcm_internal::ScopedNs timer(
      &counters_.update_ns,
      stage_metrics_ != nullptr ? stage_metrics_->engine_update_ns : nullptr);
  touched_q_.clear();
  touched_r_.clear();
  if (config_.use_tc_filter) {
    if (inserting) {
      filter_q_->OnEdgeInserted(ed, &touched_q_);
      if (filter_r_ != nullptr) filter_r_->OnEdgeInserted(ed, &touched_r_);
    } else {
      filter_q_->OnEdgeRemoved(ed, &touched_q_);
      if (filter_r_ != nullptr) filter_r_->OnEdgeRemoved(ed, &touched_r_);
    }
  }

  triple_keys_.clear();
  triple_list_.clear();
  auto add_triple = [&](EdgeId qe, const TemporalEdge& de, bool flip) {
    if (!StaticFeasible(query_, g_, qe, de, flip)) return false;
    if (triple_keys_.insert(DcsIndex::TripleKey(qe, de.id, flip)).second) {
      // Capture the record: after a removal the update edge is only a
      // tombstone in the graph and must not be re-read later.
      triple_list_.push_back(Triple{qe, de, flip});
    }
    return true;
  };

  // The update edge's own pairs.
  for (EdgeId qe = 0; qe < query_.NumEdges(); ++qe) {
    for (const bool flip : {false, true}) add_triple(qe, ed, flip);
  }

  // Pairs whose filter gate changed: edges entering u, incident to v
  // (the matchability of (e, e') is read at the child endpoint of e).
  // Only entries whose (edge label, neighbor label) signature equals qe's
  // can pass StaticFeasible, so the partitioned scan visits exactly the
  // candidate bucket.
  auto rescan = [&](const QueryDag& dag, const std::vector<UvPair>& touched) {
    for (const UvPair& uv : touched) {
      for (const EdgeId qe : dag.ParentEdges(uv.u)) {
        const QueryEdge& q = query_.Edge(qe);
        const VertexId other_qv = (q.u == uv.u) ? q.v : q.u;
        auto visit = [&](const AdjEntry& a) {
          ++counters_.adj_entries_scanned;
          // EdgeNear: the record read stays local to uv.v's shard under a
          // sharded view (the scan came off uv.v's adjacency).
          const TemporalEdge& de = g_.EdgeNear(uv.v, a.edge);
          // Choose the orientation that maps the child endpoint onto v.
          const bool flip = (uv.u == q.u) ? (de.src != uv.v)
                                          : (de.dst != uv.v);
          if (add_triple(qe, de, flip)) ++counters_.adj_entries_matched;
        };
        if (config_.partitioned_adjacency) {
          const Label nbr_label = query_.VertexLabel(other_qv);
          // Pre-filter: only flip == false survives StaticFeasible on
          // directed graphs, which pins the data edge's direction at v
          // (v images the child endpoint uv.u). A bucket holding no
          // entry of that direction cannot contribute a triple.
          if (config_.use_bloom_prefilter &&
              !g_.MayHaveMatching(uv.v, q.elabel, nbr_label,
                                  /*want_out=*/uv.u == q.u)) {
            continue;
          }
          for (const AdjEntry& a :
               g_.NeighborsMatching(uv.v, q.elabel, nbr_label)) {
            visit(a);
          }
        } else {
          g_.ForEachNeighbor(uv.v, visit);
        }
      }
    }
  };
  if (config_.use_tc_filter) {
    rescan(dag_q_, touched_q_);
    if (filter_r_ != nullptr) rescan(dag_r_, touched_r_);
  }

  for (const Triple& t : triple_list_) {
    const TemporalEdge& de = t.de;
    // AliveEdge: answered from the captured record so a sharded view can
    // route by endpoint ownership instead of the bare id.
    const bool alive = g_.AliveEdge(de);
    const bool matchable =
        alive && (!config_.use_tc_filter ||
                  (filter_q_->CheckMatchable(t.qe, de, t.flip) &&
                   (filter_r_ == nullptr ||
                    filter_r_->CheckMatchable(t.qe, de, t.flip))));
    const bool present = dcs_.Contains(t.qe, de.id, t.flip);
    if (matchable && !present) {
      dcs_.Insert(t.qe, de, t.flip);
    } else if (!matchable && present) {
      dcs_.Remove(t.qe, de, t.flip);
    }
  }

  // Drain last: CheckMatchable above computes missing filter entries
  // lazily, and those scans belong to this event's totals.
  if (config_.use_tc_filter) {
    filter_q_->DrainScanCounters(&counters_.adj_entries_scanned,
                                 &counters_.adj_entries_matched);
    if (filter_r_ != nullptr) {
      filter_r_->DrainScanCounters(&counters_.adj_entries_scanned,
                                   &counters_.adj_entries_matched);
    }
  }
}

template <typename GraphT>
void BasicTcmEngine<GraphT>::FindMatches(const TemporalEdge& ed,
                                         MatchKind kind) {
  const tcm_internal::ScopedNs timer(
      &counters_.search_ns,
      stage_metrics_ != nullptr ? stage_metrics_->engine_search_ns : nullptr);
  kind_ = kind;
  timed_out_ = false;
  mapped_vertices_ = 0;
  mapped_edges_ = 0;
  used_data_.clear();
  free_groups_.clear();
  std::fill(vmap_.begin(), vmap_.end(), kInvalidVertex);
  std::fill(emap_.begin(), emap_.end(), kInvalidEdge);

  std::vector<std::pair<EdgeId, bool>> seeds;
  dcs_.EdgesOf(ed.id, &seeds);
  for (const auto& [qe, flip] : seeds) {
    const QueryEdge& q = query_.Edge(qe);
    const VertexId img_u = flip ? ed.dst : ed.src;
    const VertexId img_v = flip ? ed.src : ed.dst;
    if (!dcs_.D2(q.u, img_u) || !dcs_.D2(q.v, img_v)) continue;
    MapVertex(q.u, img_u);
    MapVertex(q.v, img_v);
    MapEdge(qe, ed.id, ed.ts);
    Extend();
    UnmapEdge(qe);
    UnmapVertex(q.v);
    UnmapVertex(q.u);
    if (timed_out_) return;
  }
}

template <typename GraphT>
auto BasicTcmEngine<GraphT>::Extend() -> SearchResult {
  ++counters_.search_nodes;
  if (deadline_ != nullptr && deadline_->Expired()) {
    timed_out_ = true;
    return SearchResult{true, 0};
  }
  if (static_cast<size_t>(PopCount(mapped_edges_)) == query_.NumEdges() &&
      static_cast<size_t>(PopCount(mapped_vertices_)) ==
          query_.NumVertices()) {
    ReportCurrent();
    return SearchResult{true, 0};
  }
  // Edge-priority matching: an unmapped query edge with both endpoints
  // mapped is matched first (Algorithm 4 lines 9-14).
  for (EdgeId qe = 0; qe < query_.NumEdges(); ++qe) {
    if (HasBit(mapped_edges_, qe)) continue;
    const QueryEdge& q = query_.Edge(qe);
    if (HasBit(mapped_vertices_, q.u) && HasBit(mapped_vertices_, q.v)) {
      return ExtendEdge(qe);
    }
  }
  return ExtendVertex();
}

template <typename GraphT>
auto BasicTcmEngine<GraphT>::ExtendEdge(EdgeId qe) -> SearchResult {
  const QueryEdge& q = query_.Edge(qe);
  // When gap pruning is on, gap partners count as temporally related:
  // their mapped timestamps constrained this window (below), and an
  // unmapped partner still cares which alternative is chosen — which
  // keeps technique 1 from grouping candidates a gap bound would later
  // tell apart, and technique 2's uniformity test from firing (a gap
  // partner is in neither order mask). GapRelated is empty for queries
  // without gaps, so this is the pre-existing behavior there.
  const Mask64 related_all =
      query_.Related(qe) |
      (config_.prune_gap_bounds ? query_.GapRelated(qe) : 0);
  const Mask64 rplus = related_all & mapped_edges_;
  const std::vector<ParallelEdge>* plist =
      dcs_.Parallel(qe, vmap_[q.u], vmap_[q.v]);
  if (plist == nullptr || plist->empty()) {
    return SearchResult{false, rplus};  // leaf: TF = R+_M(e)  (Def. V.3)
  }

  // ECM(e): candidates within the inclusive [lo, hi] window imposed by the
  // mapped temporally related edges (Definition V.2; the order bounds are
  // strict, and timestamps are integers bounded away from the sentinels,
  // so ±1 converts them to inclusive bounds), intersected with the gap
  // windows against mapped gap partners when gap pruning is on
  // (DESIGN.md §12).
  Timestamp lo = kMinusInfinity;
  Timestamp hi = kPlusInfinity;
  for (const uint32_t i : BitRange(query_.Before(qe) & mapped_edges_)) {
    lo = std::max(lo, ets_[i] + 1);
  }
  for (const uint32_t i : BitRange(query_.After(qe) & mapped_edges_)) {
    hi = std::min(hi, ets_[i] - 1);
  }
  if (config_.prune_gap_bounds && !query_.gaps().empty()) {
    for (const GapConstraint& gc : query_.gaps()) {
      if (gc.e2 == qe && HasBit(mapped_edges_, gc.e1)) {
        lo = std::max(lo, ets_[gc.e1] + gc.min_gap);
        hi = std::min(hi, ets_[gc.e1] + gc.max_gap);
      } else if (gc.e1 == qe && HasBit(mapped_edges_, gc.e2)) {
        lo = std::max(lo, ets_[gc.e2] - gc.max_gap);
        hi = std::min(hi, ets_[gc.e2] - gc.min_gap);
      }
    }
  }
  const auto begin = std::lower_bound(
      plist->begin(), plist->end(), lo,
      [](const ParallelEdge& p, Timestamp t) { return p.ts < t; });
  const auto end = std::upper_bound(
      begin, plist->end(), hi,
      [](Timestamp t, const ParallelEdge& p) { return t < p.ts; });
  if (begin >= end) return SearchResult{false, rplus};
  const size_t first = static_cast<size_t>(begin - plist->begin());
  const size_t count = static_cast<size_t>(end - begin);

  const Mask64 rminus = related_all & ~mapped_edges_;

  // Pruning technique 1: no temporally related edge remains — all
  // candidates yield identical subtrees.
  if (config_.prune_no_relation && rminus == 0) {
    const ParallelEdge chosen = (*plist)[first];
    const bool grouped = count > 1;
    if (grouped) {
      FreeGroup group;
      group.qe = qe;
      group.alternatives.assign(plist->begin() + first + 1, end);
      free_groups_.push_back(std::move(group));
    }
    MapEdge(qe, chosen.edge, chosen.ts);
    const SearchResult res = Extend();
    UnmapEdge(qe);
    if (grouped) free_groups_.pop_back();
    if (res.found) return SearchResult{true, 0};
    return SearchResult{false, res.failing | rplus};
  }

  const bool all_after =
      rminus != 0 && (rminus & ~query_.After(qe)) == 0;  // e ≺ all remaining
  const bool all_before =
      rminus != 0 && (rminus & ~query_.Before(qe)) == 0;
  const bool uniform = config_.prune_uniform && (all_after || all_before);
  // Chronological for e ≺ e' (smaller timestamps are weaker constraints),
  // reverse chronological for e' ≺ e.
  const bool descending = uniform && all_before;

  bool found_any = false;
  bool skipped_siblings = false;
  Mask64 agg = 0;
  for (size_t k = 0; k < count; ++k) {
    const size_t idx = descending ? first + count - 1 - k : first + k;
    const ParallelEdge cand = (*plist)[idx];
    MapEdge(qe, cand.edge, cand.ts);
    const SearchResult res = Extend();
    UnmapEdge(qe);
    if (timed_out_) return SearchResult{true, 0};
    if (res.found) {
      found_any = true;
      continue;
    }
    const Mask64 child_tf = res.failing | rplus;
    if (config_.prune_failing_set && !HasBit(child_tf, qe)) {
      // Def. V.3 case 2.1: the failure did not involve e's mapping, so all
      // sibling candidates fail identically.
      agg = child_tf;
      if (found_any) break;
      return SearchResult{false, agg};
    }
    agg |= child_tf;
    if (uniform) {
      // Pruning technique 2: any remaining candidate is strictly harder.
      if (k + 1 < count) skipped_siblings = true;
      break;
    }
  }
  if (found_any) return SearchResult{true, 0};
  if (skipped_siblings) agg |= Bit(qe);  // conservative: skip depended on e
  return SearchResult{false, agg};
}

template <typename GraphT>
auto BasicTcmEngine<GraphT>::ExtendVertex() -> SearchResult {
  // Pick the extendable vertex with the fewest DCS candidates (SymBi's
  // adaptive matching order).
  VertexId best_u = kInvalidVertex;
  EdgeId best_via = kInvalidEdge;
  const DcsIndex::NbrMap* best_map = nullptr;
  size_t best_size = SIZE_MAX;
  for (VertexId u = 0; u < query_.NumVertices(); ++u) {
    if (HasBit(mapped_vertices_, u)) continue;
    for (const EdgeId f : query_.IncidentEdges(u)) {
      const VertexId u2 = query_.Edge(f).Other(u);
      if (!HasBit(mapped_vertices_, u2)) continue;
      const DcsIndex::NbrMap* cmap = dcs_.Candidates(f, u2, vmap_[u2]);
      const size_t size = cmap == nullptr ? 0 : cmap->size();
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_via = f;
        best_map = cmap;
      }
    }
  }
  TCSM_CHECK(best_u != kInvalidVertex && "query must be connected");
  if (best_map == nullptr || best_map->empty()) {
    // Structural failure: candidate vertex sets are independent of mapped
    // timestamps, so this failure persists across sibling edge candidates.
    return SearchResult{false, 0};
  }

  bool found_any = false;
  Mask64 agg = 0;
  for (const auto& [w, cnt] : *best_map) {
    (void)cnt;
    if (!dcs_.D2(best_u, w)) continue;
    if (used_data_.count(w) > 0) continue;
    bool ok = true;
    for (const EdgeId f2 : query_.IncidentEdges(best_u)) {
      if (f2 == best_via) continue;
      const VertexId u2 = query_.Edge(f2).Other(best_u);
      if (!HasBit(mapped_vertices_, u2)) continue;
      const DcsIndex::NbrMap* m2 = dcs_.Candidates(f2, u2, vmap_[u2]);
      if (m2 == nullptr || m2->count(w) == 0) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    MapVertex(best_u, w);
    const SearchResult res = Extend();
    UnmapVertex(best_u);
    if (timed_out_) return SearchResult{true, 0};
    if (res.found) {
      found_any = true;
    } else {
      agg |= res.failing;
    }
  }
  if (found_any) return SearchResult{true, 0};
  return SearchResult{false, agg};
}

template <typename GraphT>
void BasicTcmEngine<GraphT>::ReportCurrent() {
  Embedding embedding;
  embedding.vertices = vmap_;
  embedding.edges = emap_;
  // With gap pruning off, gaps are enforced here on complete embeddings
  // (the ablation baseline). With it on, every mapped edge already passed
  // a gap-tightened window, so complete embeddings need no re-check.
  const bool gap_postcheck =
      !config_.prune_gap_bounds && !query_.gaps().empty();
  if (free_groups_.empty()) {
    if (gap_postcheck && !GapsOk(ets_)) return;
    Report(embedding, kind_, 1);
    return;
  }
  // Per-embedding expansion: requested by the sink, or forced — absence
  // suppression depends on the concrete edge images, and the gap
  // post-filter must judge each parallel alternative by its own timestamp
  // (in pruning mode the grouped window already satisfies the gaps, so
  // the multiplicity path stays valid there).
  if (absence_active() || gap_postcheck ||
      (sink_ != nullptr && sink_->wants_each_embedding())) {
    expand_ets_ = ets_;
    ExpandGroups(0, &embedding);
    return;
  }
  uint64_t multiplicity = 1;
  for (const FreeGroup& group : free_groups_) {
    multiplicity *= 1 + group.alternatives.size();
  }
  Report(embedding, kind_, multiplicity);
}

template <typename GraphT>
void BasicTcmEngine<GraphT>::ExpandGroups(size_t group_idx,
                                          Embedding* embedding) {
  if (group_idx == free_groups_.size()) {
    if (!config_.prune_gap_bounds && !query_.gaps().empty() &&
        !GapsOk(expand_ets_)) {
      return;
    }
    Report(*embedding, kind_, 1);
    return;
  }
  const FreeGroup& group = free_groups_[group_idx];
  const EdgeId saved = embedding->edges[group.qe];
  const Timestamp saved_ts = expand_ets_[group.qe];
  ExpandGroups(group_idx + 1, embedding);
  for (const ParallelEdge& alt : group.alternatives) {
    embedding->edges[group.qe] = alt.edge;
    expand_ets_[group.qe] = alt.ts;
    ExpandGroups(group_idx + 1, embedding);
  }
  embedding->edges[group.qe] = saved;
  expand_ets_[group.qe] = saved_ts;
}

template <typename GraphT>
bool BasicTcmEngine<GraphT>::GapsOk(const std::vector<Timestamp>& ets) const {
  for (const GapConstraint& gc : query_.gaps()) {
    const Timestamp d = ets[gc.e2] - ets[gc.e1];
    if (d < gc.min_gap || d > gc.max_gap) return false;
  }
  return true;
}

template <typename GraphT>
size_t BasicTcmEngine<GraphT>::EstimateMemoryBytes() const {
  // Per-query state only; the shared graph is accounted by the context.
  size_t bytes = dcs_.EstimateMemoryBytes();
  if (filter_q_ != nullptr) bytes += filter_q_->EstimateMemoryBytes();
  if (filter_r_ != nullptr) bytes += filter_r_->EstimateMemoryBytes();
  return bytes;
}

}  // namespace tcsm

#endif  // TCSM_CORE_TCM_ENGINE_INL_H_
