#include "core/snapshot.h"

#include "core/stream_driver.h"

namespace tcsm {
namespace {

Timestamp EffectiveSnapshotWindow(const TemporalDataset& dataset,
                                  Timestamp window) {
  if (window > 0) return window;
  if (dataset.edges.empty()) return 1;
  // Larger than the whole time span: nothing expires before the end.
  return dataset.edges.back().ts - dataset.edges.front().ts + 2;
}

}  // namespace

SnapshotResult FindAllMatches(const TemporalDataset& dataset,
                              const QueryGraph& query,
                              const SnapshotOptions& options) {
  SnapshotResult result;
  SingleQueryContext<TcmEngine> run(
      query, GraphSchema{dataset.directed, dataset.vertex_labels},
      options.engine_config);
  CollectingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = EffectiveSnapshotWindow(dataset, options.window);
  config.time_limit_ms = options.time_limit_ms;
  const StreamResult stream = RunStream(dataset, config, &run);
  result.completed = stream.completed;
  result.matches.reserve(stream.occurred);
  for (const auto& [embedding, kind] : sink.matches()) {
    if (kind == MatchKind::kOccurred) result.matches.push_back(embedding);
  }
  return result;
}

SnapshotCount CountAllMatches(const TemporalDataset& dataset,
                              const QueryGraph& query,
                              const SnapshotOptions& options) {
  SnapshotCount result;
  SingleQueryContext<TcmEngine> run(
      query, GraphSchema{dataset.directed, dataset.vertex_labels},
      options.engine_config);
  CountingSink sink;
  run.engine().set_sink(&sink);
  StreamConfig config;
  config.window = EffectiveSnapshotWindow(dataset, options.window);
  config.time_limit_ms = options.time_limit_ms;
  const StreamResult stream = RunStream(dataset, config, &run);
  result.completed = stream.completed;
  result.matches = sink.occurred();
  return result;
}

}  // namespace tcsm
