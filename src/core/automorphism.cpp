#include "core/automorphism.h"

#include <algorithm>

#include "common/bitmask.h"
#include "common/logging.h"

namespace tcsm {
namespace {

struct AutoCtx {
  const QueryGraph* q;
  std::vector<VertexId> vmap;   // partial vertex permutation
  std::vector<uint8_t> used;    // image used?
  std::vector<QueryAutomorphism>* out;
};

/// Derives the edge permutation from a complete vertex permutation;
/// returns false if some edge has no image or labels/order break.
bool FinishAutomorphism(const QueryGraph& q,
                        const std::vector<VertexId>& vmap,
                        QueryAutomorphism* out) {
  const size_t m = q.NumEdges();
  out->vertex_map = vmap;
  out->edge_map.assign(m, kInvalidEdge);
  for (EdgeId e = 0; e < m; ++e) {
    const QueryEdge& qe = q.Edge(e);
    const EdgeId image = q.FindEdge(vmap[qe.u], vmap[qe.v]);
    if (image == kInvalidEdge) return false;
    const QueryEdge& ie = q.Edge(image);
    if (ie.elabel != qe.elabel) return false;
    if (q.directed() && !(ie.u == vmap[qe.u] && ie.v == vmap[qe.v])) {
      return false;
    }
    out->edge_map[e] = image;
  }
  // Bijectivity on edges.
  Mask64 seen = 0;
  for (const EdgeId e : out->edge_map) {
    if (HasBit(seen, e)) return false;
    seen |= Bit(e);
  }
  // The temporal order must be preserved exactly: a ≺ b iff img(a) ≺
  // img(b).
  for (EdgeId a = 0; a < m; ++a) {
    Mask64 image_after = 0;
    for (const uint32_t b : BitRange(q.After(a))) {
      image_after |= Bit(out->edge_map[b]);
    }
    if (image_after != q.After(out->edge_map[a])) return false;
  }
  return true;
}

void Search(AutoCtx& ctx, VertexId u) {
  const QueryGraph& q = *ctx.q;
  if (u == q.NumVertices()) {
    QueryAutomorphism cand;
    if (FinishAutomorphism(q, ctx.vmap, &cand)) {
      ctx.out->push_back(std::move(cand));
    }
    return;
  }
  for (VertexId w = 0; w < q.NumVertices(); ++w) {
    if (ctx.used[w]) continue;
    if (q.VertexLabel(w) != q.VertexLabel(u)) continue;
    if (q.Degree(w) != q.Degree(u)) continue;
    // Adjacency consistency with already-mapped vertices.
    bool ok = true;
    for (const EdgeId e : q.IncidentEdges(u)) {
      const VertexId other = q.Edge(e).Other(u);
      if (other < u) {  // mapped (we assign in vertex order)
        if (q.FindEdge(w, ctx.vmap[other]) == kInvalidEdge &&
            q.FindEdge(ctx.vmap[other], w) == kInvalidEdge) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    ctx.vmap[u] = w;
    ctx.used[w] = 1;
    Search(ctx, u + 1);
    ctx.used[w] = 0;
  }
}

}  // namespace

std::vector<QueryAutomorphism> ComputeAutomorphisms(const QueryGraph& query) {
  std::vector<QueryAutomorphism> out;
  AutoCtx ctx;
  ctx.q = &query;
  ctx.vmap.assign(query.NumVertices(), kInvalidVertex);
  ctx.used.assign(query.NumVertices(), 0);
  ctx.out = &out;
  Search(ctx, 0);
  TCSM_CHECK(!out.empty() && "identity must always be found");
  return out;
}

CanonicalSink::CanonicalSink(const QueryGraph& query, MatchSink* inner)
    : automorphisms_(ComputeAutomorphisms(query)), inner_(inner) {}

Embedding CanonicalSink::Canonicalize(const Embedding& embedding) const {
  Embedding best = embedding;
  Embedding permuted;
  for (const QueryAutomorphism& a : automorphisms_) {
    permuted.vertices.assign(embedding.vertices.size(), 0);
    permuted.edges.assign(embedding.edges.size(), 0);
    // If M is an embedding and pi an automorphism, M ∘ pi is an embedding
    // of the same pattern instance: query element x takes the image of
    // pi(x).
    for (size_t u = 0; u < embedding.vertices.size(); ++u) {
      permuted.vertices[u] = embedding.vertices[a.vertex_map[u]];
    }
    for (size_t e = 0; e < embedding.edges.size(); ++e) {
      permuted.edges[e] = embedding.edges[a.edge_map[e]];
    }
    if (permuted.vertices < best.vertices ||
        (permuted.vertices == best.vertices &&
         permuted.edges < best.edges)) {
      best = permuted;
    }
  }
  return best;
}

void CanonicalSink::OnMatch(const Embedding& embedding, MatchKind kind,
                            uint64_t multiplicity) {
  const Embedding canonical = Canonicalize(embedding);
  auto& seen =
      kind == MatchKind::kOccurred ? seen_occurred_ : seen_expired_;
  if (!seen.insert(canonical).second) return;  // duplicate orbit member
  if (inner_ != nullptr) inner_->OnMatch(canonical, kind, multiplicity);
}

}  // namespace tcsm
