// Shared sliding-window graph for continuous matching. A stream carries
// one data graph regardless of how many queries watch it, so the context
// owns the one canonical TemporalGraph, applies every arrival/expiration
// to it exactly once, and fans the applied event out to the engines
// attached to it. Engines are read-only views (const TemporalGraph&) and
// keep only per-query state — O(1) graph storage and one adjacency update
// per event for any number of queries (DESIGN.md §1).
//
// The fan-out itself is a protected virtual seam (NotifyInserted /
// NotifyExpiring / NotifyRemoved): the base class notifies engines in
// attach order on the calling thread, and ParallelStreamContext
// (exec/parallel_context.h) overrides the seam to shard the per-engine
// work across a worker pool while the graph mutations stay on the driver
// thread (DESIGN.md §6).
#ifndef TCSM_CORE_SHARED_CONTEXT_H_
#define TCSM_CORE_SHARED_CONTEXT_H_

#include <utility>
#include <vector>

#include "core/engine.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"

namespace tcsm {

class Observability;
class TraceWriter;

class SharedStreamContext {
 public:
  explicit SharedStreamContext(const GraphSchema& schema);
  virtual ~SharedStreamContext() = default;

  SharedStreamContext(const SharedStreamContext&) = delete;
  SharedStreamContext& operator=(const SharedStreamContext&) = delete;

  /// The canonical windowed graph. Engines bind to this at construction.
  const TemporalGraph& graph() const { return g_; }

  /// Registers an engine constructed against graph(). The engine must
  /// outlive all subsequent event processing. Virtual so a sharded
  /// context (src/shard/) can route the engine to a shard while still
  /// recording it here for the aggregate accessors.
  virtual void Attach(ContinuousEngine* engine);
  const std::vector<ContinuousEngine*>& engines() const { return engines_; }

  /// Applies an arrival to the shared graph (edge ids must be the dense
  /// arrival indices 0, 1, 2, ... of TemporalDataset::Normalize()) and
  /// notifies every engine with the canonical graph edge. Virtual (like
  /// the batch entry points) so a sharded context can substitute its own
  /// storage: the base implementation touches the base g_.
  virtual void OnEdgeArrival(const TemporalEdge& ed);

  /// Two-phase expiration (DESIGN.md §3): engines first enumerate the
  /// embeddings that die with the edge against the pre-deletion graph,
  /// then the edge is removed once and engines update their indexes.
  virtual void OnEdgeExpiry(const TemporalEdge& ed);

  /// Micro-batch entry points (DESIGN.md §9): `count` consecutive events
  /// of one kind sharing a timestamp, delivered together so a driver can
  /// amortize its per-event bookkeeping and an override can amortize the
  /// fan-out machinery. The event protocol is NOT relaxed: each edge is
  /// applied to the graph and fanned out to every engine before the next
  /// edge of the batch mutates anything, so the match stream is
  /// byte-identical to `count` single-event calls by construction. The
  /// base implementations simply loop; ParallelStreamContext overrides
  /// them to run the whole batch as one pipelined pool job.
  virtual void OnEdgeArrivalBatch(const TemporalEdge* edges, size_t count);
  virtual void OnEdgeExpiryBatch(const TemporalEdge* edges, size_t count);

  /// Honest multi-query footprint: the shared graph accounted once plus
  /// every attached engine's per-query state.
  virtual size_t EstimateMemoryBytes() const;

  /// True when any attached engine overflowed (results incomplete).
  bool overflowed() const;

  /// Propagates the per-run deadline to every attached engine (including
  /// engines attached later).
  void set_deadline(Deadline* deadline);

  /// Installs (or clears, with null) the run's observability bundle:
  /// caches the stage-metric handles and the optional trace writer for
  /// the context's own instrumented seams and propagates the stage
  /// metrics to every attached engine (including engines attached
  /// later). The drivers call this once before the first event.
  void set_observability(Observability* obs);
  Observability* observability() const { return obs_; }

  /// Sum of the attached engines' counters.
  EngineCounters AggregateCounters() const;

  /// Total parallelism of the engine fan-out, including the driver
  /// thread. The serial base class always reports 1.
  virtual size_t num_threads() const { return 1; }

  /// Number of vertex partitions the data graph is split across
  /// (src/shard/). Unsharded contexts — everything except
  /// ShardedStreamContext — report 1.
  virtual size_t num_shards() const { return 1; }

 protected:
  /// Engine fan-out seam. The base implementations notify every attached
  /// engine in attach order on the calling thread; overrides may
  /// distribute the calls but must preserve the event protocol: the
  /// arrival is already applied when NotifyInserted runs, the expiring
  /// edge is still live throughout NotifyExpiring and already removed
  /// when NotifyRemoved runs, and every engine must have returned before
  /// the context mutates the graph again.
  virtual void NotifyInserted(const TemporalEdge& ed);
  virtual void NotifyExpiring(const TemporalEdge& ed);
  virtual void NotifyRemoved(const TemporalEdge& ed);

  /// Graph-mutation halves of the single-event entry points, exposed so
  /// batch overrides can interleave mutations with their own fan-out
  /// while the mutations themselves stay on the driver thread.
  /// ApplyArrival inserts and returns the canonical record (valid until
  /// the next mutation); CaptureExpiry validates and copies the canonical
  /// record of a live edge; ApplyRemoval removes it (the record stays
  /// readable through the following NotifyRemoved, see TemporalGraph).
  const TemporalEdge& ApplyArrival(const TemporalEdge& ed);
  TemporalEdge CaptureExpiry(const TemporalEdge& ed) const;
  void ApplyRemoval(EdgeId id) { g_.RemoveEdge(id); }

  /// Cached observability handles for subclass seams; null when the run
  /// carries no bundle (the default), in which case instrumented sites
  /// must do nothing.
  const StageMetrics* stage_metrics() const { return stages_; }
  TraceWriter* trace_writer() const { return trace_; }

 private:
  TemporalGraph g_;
  std::vector<ContinuousEngine*> engines_;
  Deadline* deadline_ = nullptr;
  Observability* obs_ = nullptr;
  const StageMetrics* stages_ = nullptr;
  TraceWriter* trace_ = nullptr;
};

/// Context owning a single engine — the shape of most call sites (CLI,
/// per-figure benches, single-query tests): one query over one stream.
/// Extra constructor arguments are forwarded to the engine after the
/// graph reference (e.g. a TcmConfig).
template <typename EngineT>
class SingleQueryContext : public SharedStreamContext {
 public:
  template <typename... Args>
  SingleQueryContext(const QueryGraph& query, const GraphSchema& schema,
                     Args&&... args)
      : SharedStreamContext(schema),
        engine_(query, graph(), std::forward<Args>(args)...) {
    Attach(&engine_);
  }

  EngineT& engine() { return engine_; }
  const EngineT& engine() const { return engine_; }

 private:
  EngineT engine_;
};

}  // namespace tcsm

#endif  // TCSM_CORE_SHARED_CONTEXT_H_
