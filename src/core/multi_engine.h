// Fan-out over one shared stream: monitors many temporal query graphs by
// attaching one per-query TCM engine per query to a single
// SharedStreamContext. This is the deployment shape of the paper's
// motivating applications (a bank watches many laundering patterns; an
// IDS watches the Verizon top-10 attack patterns simultaneously) — and
// the reason the windowed data graph is shared: the context stores and
// updates it exactly once per event regardless of the query count, while
// each engine keeps only its per-query indexes. Sinks are tagged with the
// query index so detections stay attributable.
#ifndef TCSM_CORE_MULTI_ENGINE_H_
#define TCSM_CORE_MULTI_ENGINE_H_

#include <memory>
#include <vector>

#include "core/tcm_engine.h"
#include "exec/parallel_context.h"
#include "query/query_graph.h"

namespace tcsm {

/// Receives matches together with the index of the query that produced
/// them.
class MultiMatchSink {
 public:
  virtual ~MultiMatchSink() = default;
  virtual void OnMatch(size_t query_index, const Embedding& embedding,
                       MatchKind kind, uint64_t multiplicity) = 0;
};

class MultiQueryEngine : public ParallelStreamContext {
 public:
  /// One TCM engine per query, all views of the one shared graph; all
  /// queries must share the schema's directedness. With `num_threads > 1`
  /// the per-engine notification work of every event is sharded across
  /// that many threads (including the driver thread); results are
  /// byte-identical to the serial default, in the same order
  /// (DESIGN.md §6).
  MultiQueryEngine(const std::vector<QueryGraph>& queries,
                   const GraphSchema& schema, TcmConfig config = {},
                   size_t num_threads = 1);

  void set_multi_sink(MultiMatchSink* sink) { multi_sink_ = sink; }

  size_t NumQueries() const { return owned_.size(); }
  const EngineCounters& QueryCounters(size_t query_index) const {
    return owned_[query_index]->counters();
  }
  const TcmEngine& QueryEngine(size_t query_index) const {
    return *owned_[query_index];
  }

 private:
  /// Adapts per-engine reports into tagged multi-sink calls.
  class TaggedSink : public MatchSink {
   public:
    TaggedSink(MultiQueryEngine* parent, size_t index)
        : parent_(parent), index_(index) {}
    bool wants_each_embedding() const override;
    void OnMatch(const Embedding& embedding, MatchKind kind,
                 uint64_t multiplicity) override;

   private:
    MultiQueryEngine* parent_;
    size_t index_;
  };

  std::vector<std::unique_ptr<TcmEngine>> owned_;
  std::vector<std::unique_ptr<TaggedSink>> tagged_;
  MultiMatchSink* multi_sink_ = nullptr;
};

}  // namespace tcsm

#endif  // TCSM_CORE_MULTI_ENGINE_H_
