// Fan-out engine: monitors many temporal query graphs over one stream by
// forwarding every arrival/expiration to a set of per-query engines. This
// is the deployment shape of the paper's motivating applications (a bank
// watches many laundering patterns; an IDS watches the Verizon top-10
// attack patterns simultaneously). Sinks are tagged with the query index
// so detections stay attributable.
#ifndef TCSM_CORE_MULTI_ENGINE_H_
#define TCSM_CORE_MULTI_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/tcm_engine.h"
#include "query/query_graph.h"

namespace tcsm {

/// Receives matches together with the index of the query that produced
/// them.
class MultiMatchSink {
 public:
  virtual ~MultiMatchSink() = default;
  virtual void OnMatch(size_t query_index, const Embedding& embedding,
                       MatchKind kind, uint64_t multiplicity) = 0;
};

class MultiQueryEngine : public ContinuousEngine {
 public:
  /// One TCM engine per query; all queries must share the schema's
  /// directedness.
  MultiQueryEngine(const std::vector<QueryGraph>& queries,
                   const GraphSchema& schema, TcmConfig config = {});

  std::string name() const override { return "TCM-Multi"; }
  void OnEdgeArrival(const TemporalEdge& ed) override;
  void OnEdgeExpiry(const TemporalEdge& ed) override;
  size_t EstimateMemoryBytes() const override;

  void set_multi_sink(MultiMatchSink* sink) { multi_sink_ = sink; }

  size_t NumQueries() const { return engines_.size(); }
  const EngineCounters& QueryCounters(size_t query_index) const {
    return engines_[query_index]->counters();
  }

 private:
  /// Adapts per-engine reports into tagged multi-sink calls.
  class TaggedSink : public MatchSink {
   public:
    TaggedSink(MultiQueryEngine* parent, size_t index)
        : parent_(parent), index_(index) {}
    bool wants_each_embedding() const override;
    void OnMatch(const Embedding& embedding, MatchKind kind,
                 uint64_t multiplicity) override;

   private:
    MultiQueryEngine* parent_;
    size_t index_;
  };

  std::vector<std::unique_ptr<TcmEngine>> engines_;
  std::vector<std::unique_ptr<TaggedSink>> tagged_;
  MultiMatchSink* multi_sink_ = nullptr;
};

}  // namespace tcsm

#endif  // TCSM_CORE_MULTI_ENGINE_H_
