// Replays a temporal dataset as a stream of arrival/expiration events
// against a SharedStreamContext (Algorithm 1's event list L): edge e with
// timestamp t yields (e, t, +) and (e, t + delta, -). Events are processed
// in chronological order with expirations before arrivals on ties, so an
// embedding can never use an edge that expires exactly when a new edge
// arrives (Example II.2). The context applies each event to the shared
// graph once and fans it out to every attached engine.
#ifndef TCSM_CORE_STREAM_DRIVER_H_
#define TCSM_CORE_STREAM_DRIVER_H_

#include <cstdint>
#include <iosfwd>

#include "common/status.h"
#include "core/shared_context.h"
#include "graph/temporal_dataset.h"

namespace tcsm {

class Observability;

/// Micro-batch cap used when a driver's max_batch knob is 0. Large enough
/// to amortize the per-event fan-out cost, small enough that drivers
/// still check deadlines and overflow flags frequently.
inline constexpr size_t kDefaultMaxBatch = 64;

struct StreamConfig {
  /// Time window delta; edges with ts <= now - delta are expired.
  Timestamp window = 0;
  /// Per-run wall-clock limit; 0 = unlimited. A run that exceeds it is
  /// reported as not completed ("unsolved" in the paper's terms).
  double time_limit_ms = 0;
  /// Context memory is sampled every this many events; 0 = adaptive
  /// (at least ~32 samples across the run, so sampling never dominates).
  size_t memory_sample_every = 0;
  /// Stop the replay after this many arrivals (0 = all). Expirations of
  /// already-arrived edges are still delivered.
  size_t max_arrivals = 0;
  /// Largest micro-batch handed to the context in one
  /// OnEdgeArrivalBatch/OnEdgeExpiryBatch call (consecutive events of one
  /// kind sharing a timestamp; DESIGN.md §9). 0 = default (64); 1 =
  /// unbatched, exactly the historical one-call-per-event behavior. The
  /// match stream is identical for every setting; the cap only bounds how
  /// long the driver goes between deadline/overflow checks.
  size_t max_batch = 0;
  /// Observability bundle (obs/observability.h); null = metrics off, the
  /// driver and context then skip every metrics/trace site (DESIGN.md
  /// §11's no-op contract). The driver installs it on the context before
  /// the first event and publishes the run's engine counter deltas into
  /// the registry at the end.
  Observability* obs = nullptr;
  /// Emit one StatsReporter line to `stats_out` every `stats_every`
  /// delivered events (0 = never; requires `obs`). `stats_json` selects
  /// the JSON line form over the text form.
  size_t stats_every = 0;
  bool stats_json = false;
  std::ostream* stats_out = nullptr;
};

struct StreamResult {
  bool completed = true;
  /// Why the run refused to start (completed == false, zero events):
  /// currently only timestamp/window magnitudes that could overflow the
  /// expiry arithmetic (ts + window); see kMaxStreamTimestamp. Runs that
  /// merely hit the time limit or overflow an engine keep an OK status.
  Status error = Status::Ok();
  double elapsed_ms = 0;
  /// Summed over all engines attached to the context.
  uint64_t occurred = 0;
  uint64_t expired = 0;
  size_t events = 0;
  /// Peak of the context estimate: shared graph once + per-query state.
  size_t peak_memory_bytes = 0;
  /// Event count (result.events at observation time) when the memory
  /// peak was sampled, so a spike is attributable to a stream position.
  size_t peak_memory_event_index = 0;
  /// Scan-selectivity totals over this run (see EngineCounters): adjacency
  /// entries visited vs. entries passing all static checks. The gap is the
  /// work the label-partitioned storage avoids.
  uint64_t adj_entries_scanned = 0;
  uint64_t adj_entries_matched = 0;
  /// Fan-out width of the context that was driven (1 for serial contexts,
  /// the pool width for a ParallelStreamContext) — recorded so bench/CLI
  /// output always states how a measurement was produced.
  size_t num_threads = 1;
  /// Vertex partitions of the data graph (1 for unsharded contexts, S for
  /// a ShardedStreamContext) — recorded for the same reason.
  size_t num_shards = 1;
};

StreamResult RunStream(const TemporalDataset& dataset,
                       const StreamConfig& config,
                       SharedStreamContext* context);

}  // namespace tcsm

#endif  // TCSM_CORE_STREAM_DRIVER_H_
