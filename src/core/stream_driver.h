// Replays a temporal dataset as a stream of arrival/expiration events
// against an engine (Algorithm 1's event list L): edge e with timestamp t
// yields (e, t, +) and (e, t + delta, -). Events are processed in
// chronological order with expirations before arrivals on ties, so an
// embedding can never use an edge that expires exactly when a new edge
// arrives (Example II.2).
#ifndef TCSM_CORE_STREAM_DRIVER_H_
#define TCSM_CORE_STREAM_DRIVER_H_

#include <cstdint>

#include "core/engine.h"
#include "graph/temporal_dataset.h"

namespace tcsm {

struct StreamConfig {
  /// Time window delta; edges with ts <= now - delta are expired.
  Timestamp window = 0;
  /// Per-run wall-clock limit; 0 = unlimited. A run that exceeds it is
  /// reported as not completed ("unsolved" in the paper's terms).
  double time_limit_ms = 0;
  /// Engine memory is sampled every this many events; 0 = adaptive
  /// (about 32 samples per run, so sampling never dominates).
  size_t memory_sample_every = 0;
  /// Stop the replay after this many arrivals (0 = all). Expirations of
  /// already-arrived edges are still delivered.
  size_t max_arrivals = 0;
};

struct StreamResult {
  bool completed = true;
  double elapsed_ms = 0;
  uint64_t occurred = 0;
  uint64_t expired = 0;
  size_t events = 0;
  size_t peak_memory_bytes = 0;
};

StreamResult RunStream(const TemporalDataset& dataset,
                       const StreamConfig& config, ContinuousEngine* engine);

}  // namespace tcsm

#endif  // TCSM_CORE_STREAM_DRIVER_H_
