#include "core/engine.h"

// The engine interface is header-only; this translation unit anchors the
// vtables of MatchSink/ContinuousEngine.

namespace tcsm {}  // namespace tcsm
