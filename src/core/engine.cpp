#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"

// Deferred emission for absence predicates (DESIGN.md §12). The state
// machine below is deliberately tiny and strictly sequential per engine, so
// serial, thread-parallel, and sharded execution — all of which notify each
// engine with the same per-event sequence — stay byte-identical. The
// snapshot checker in tests/testlib/stream_checker.h mirrors these
// semantics independently; keep the two in sync through the spec, not by
// sharing code.

namespace tcsm {

void ContinuousEngine::InitAbsence(const QueryGraph& query) {
  if (query.absences().empty()) return;
  absence_ = std::make_unique<AbsenceState>();
  absence_->directed = query.directed();
  absence_->predicates.assign(query.absences().begin(),
                              query.absences().end());
  for (const AbsencePredicate& p : absence_->predicates) {
    absence_->max_delta = std::max(absence_->max_delta, p.delta);
  }
}

/// True iff `ed` violates some absence predicate for an embedding whose
/// completing edge arrived at trigger_ts. The caller guarantees
/// ed.ts >= trigger_ts; the embedding's own edges never violate.
bool ContinuousEngine::AbsenceViolates(const Embedding& emb,
                                       Timestamp trigger_ts,
                                       const TemporalEdge& ed) const {
  const AbsenceState& st = *absence_;
  for (const AbsencePredicate& p : st.predicates) {
    if (ed.label != p.label) continue;
    if (ed.ts > trigger_ts + p.delta) continue;
    const VertexId iu = emb.vertices[p.u];
    const VertexId iv = emb.vertices[p.v];
    const bool hit = st.directed
                         ? (ed.src == iu && ed.dst == iv)
                         : ((ed.src == iu && ed.dst == iv) ||
                            (ed.src == iv && ed.dst == iu));
    if (!hit) continue;
    if (std::find(emb.edges.begin(), emb.edges.end(), ed.id) !=
        emb.edges.end()) {
      continue;
    }
    return true;
  }
  return false;
}

void ContinuousEngine::AbsenceArrivalSlow(const TemporalEdge& ed) {
  AbsenceState& st = *absence_;
  if (ed.ts != st.cur_ts) {
    st.same_ts.clear();
    st.cur_ts = ed.ts;
  }
  // Resolve: a pending completion whose deadline lies strictly before this
  // arrival can no longer be violated — every future arrival has ts >=
  // ed.ts. Deadlines are non-decreasing along the deque (FIFO flush).
  while (!st.pending.empty() && st.pending.front().deadline < ed.ts) {
    Emit(st.pending.front().emb, MatchKind::kOccurred, 1);
    st.pending.pop_front();
  }
  // Kill: this arrival may land inside a still-open absence window. The
  // killed embedding is remembered so its eventual expired report is
  // swallowed as well.
  for (auto it = st.pending.begin(); it != st.pending.end();) {
    if (AbsenceViolates(it->emb, it->trigger_ts, ed)) {
      st.suppressed.insert(std::move(it->emb));
      it = st.pending.erase(it);
    } else {
      ++it;
    }
  }
  // Remember this arrival for birth checks of completions at the same
  // instant that are reported after it.
  for (const AbsencePredicate& p : st.predicates) {
    if (p.label == ed.label) {
      st.same_ts.push_back(ed);
      break;
    }
  }
}

void ContinuousEngine::AbsenceReport(const Embedding& embedding,
                                     MatchKind kind, uint64_t multiplicity) {
  // Engines force per-embedding expansion whenever absence is active:
  // suppression depends on the concrete edge images.
  TCSM_CHECK(multiplicity == 1);
  AbsenceState& st = *absence_;
  if (kind == MatchKind::kOccurred) {
    // The completion is triggered by the arrival currently being
    // processed, so the trigger time is the last arrival timestamp.
    const Timestamp t = st.cur_ts;
    for (const TemporalEdge& b : st.same_ts) {
      if (AbsenceViolates(embedding, t, b)) {
        st.suppressed.insert(embedding);
        return;
      }
    }
    st.pending.push_back(AbsencePending{embedding, t, t + st.max_delta});
    return;
  }
  // Expired report: a suppressed embedding disappears silently; a still
  // pending one resolves now — its edges are leaving the window, so no
  // further arrival can both violate it and overlap it.
  const auto sit = st.suppressed.find(embedding);
  if (sit != st.suppressed.end()) {
    st.suppressed.erase(sit);
    return;
  }
  for (auto it = st.pending.begin(); it != st.pending.end(); ++it) {
    if (it->emb == embedding) {
      Emit(embedding, MatchKind::kOccurred, 1);
      st.pending.erase(it);
      break;
    }
  }
  Emit(embedding, MatchKind::kExpired, 1);
}

}  // namespace tcsm
