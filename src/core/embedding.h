// A (time-constrained) embedding M : V(q) ∪ E(q) -> V(G) ∪ E(G)
// (Definition II.3), stored as two dense arrays indexed by query vertex /
// query edge id. Data edges are referred to by their dataset ids so
// embeddings are comparable across engines and the oracle.
#ifndef TCSM_CORE_EMBEDDING_H_
#define TCSM_CORE_EMBEDDING_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/types.h"

namespace tcsm {

struct Embedding {
  std::vector<VertexId> vertices;  // per query vertex: data vertex
  std::vector<EdgeId> edges;       // per query edge: data edge id

  bool operator==(const Embedding&) const = default;
};

struct EmbeddingHash {
  size_t operator()(const Embedding& e) const {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    auto mix = [&h](uint64_t x) {
      h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    for (const VertexId v : e.vertices) mix(v);
    for (const EdgeId d : e.edges) mix(static_cast<uint64_t>(d) | (1ull << 40));
    return static_cast<size_t>(h);
  }
};

}  // namespace tcsm

#endif  // TCSM_CORE_EMBEDDING_H_
