// Query automorphisms and pattern-instance deduplication.
//
// Engines report *mappings*: a DDoS star with k interchangeable zombies
// yields k! embeddings per attack. RapidFlow [34] observes that query
// automorphisms cause such duplicate computation; as an extension we
// compute the automorphism group of a temporal query graph (respecting
// labels, directions, and the temporal order) and offer a sink adapter
// that collapses each automorphism orbit to one canonical instance.
#ifndef TCSM_CORE_AUTOMORPHISM_H_
#define TCSM_CORE_AUTOMORPHISM_H_

#include <unordered_set>
#include <vector>

#include "core/engine.h"
#include "query/query_graph.h"

namespace tcsm {

/// One automorphism: a relabeling of query vertices and edges that maps
/// the query graph onto itself, preserving vertex/edge labels, edge
/// directions, and the temporal order relation.
struct QueryAutomorphism {
  std::vector<VertexId> vertex_map;  // vertex u -> vertex_map[u]
  std::vector<EdgeId> edge_map;      // edge e -> edge_map[e]
};

/// Enumerates the full automorphism group (identity included) by
/// backtracking over label/degree-compatible vertex assignments.
/// Exponential worst case, but query graphs have at most 64 vertices and
/// in practice a handful of symmetric branches.
std::vector<QueryAutomorphism> ComputeAutomorphisms(const QueryGraph& query);

/// Sink adapter that forwards only one representative embedding per
/// automorphism orbit (the lexicographically smallest image vector).
/// Multiplicities are forwarded unchanged for the representative.
class CanonicalSink : public MatchSink {
 public:
  CanonicalSink(const QueryGraph& query, MatchSink* inner);

  bool wants_each_embedding() const override { return true; }
  void OnMatch(const Embedding& embedding, MatchKind kind,
               uint64_t multiplicity) override;

  /// Orbit size of the group — mappings per pattern instance for a query
  /// whose embeddings have trivial stabilizers.
  size_t GroupSize() const { return automorphisms_.size(); }

 private:
  Embedding Canonicalize(const Embedding& embedding) const;

  std::vector<QueryAutomorphism> automorphisms_;
  MatchSink* inner_;
  /// Canonical embeddings already reported per kind (occurred/expired
  /// tracked separately so an instance can expire after occurring).
  std::unordered_set<Embedding, EmbeddingHash> seen_occurred_;
  std::unordered_set<Embedding, EmbeddingHash> seen_expired_;
};

}  // namespace tcsm

#endif  // TCSM_CORE_AUTOMORPHISM_H_
