#include "core/tcm_engine.h"

namespace tcsm {

// The canonical single-graph instantiation (the header's `TcmEngine`
// alias). The sharded-view instantiation lives in
// src/shard/engine_instantiations.cpp.
template class BasicTcmEngine<TemporalGraph>;

}  // namespace tcsm
