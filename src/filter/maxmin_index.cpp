#include "filter/maxmin_index.h"

namespace tcsm {

// The canonical single-graph instantiation (the header's `MaxMinIndex`
// alias). The sharded-view instantiation lives in
// src/shard/engine_instantiations.cpp.
template class BasicMaxMinIndex<TemporalGraph>;

}  // namespace tcsm
