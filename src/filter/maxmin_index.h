// Max-min timestamp index T(q̂) — the paper's core filtering structure
// (Section IV-C). One instance is bound to one query DAG (q̂ or q̂⁻¹).
//
// For each DAG vertex u, candidate data vertex v with matching label, and
// tracked query edge e (see QueryDag::TrackedLater/TrackedEarlier), the
// index maintains
//
//   Later(u,v,e)  = max over weak embeddings M' of q̂_u at v of
//                     min{ T(M'(e')) : e ≺ e', e' in q̂_u }      (Def. IV.3)
//   Earlier(u,v,e)= min over weak embeddings M' of q̂_u at v of
//                     max{ T(M'(e')) : e' ≺ e, e' in q̂_u }      (symmetric)
//
// plus Weak(u,v) = "a weak embedding of q̂_u at v exists". By Lemma IV.3
// (and its mirror), query edge e = (u1,u2) is TC-matchable to data edge
// (v1,v2,t) in this DAG iff Weak holds at the child endpoint and
// Earlier < t < Later there.
//
// Entries are created lazily (dynamic programming over the DAG, Eq. (1))
// and updated incrementally on edge arrival/expiration by recomputing only
// affected (u, v) entries in reverse topological order — Algorithm 3
// (TCMInsertion / TCMDeletion).
#ifndef TCSM_FILTER_MAXMIN_INDEX_H_
#define TCSM_FILTER_MAXMIN_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dag/query_dag.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"

namespace tcsm {

/// A (query vertex, data vertex) pair whose filter gate changed; the DCS
/// layer re-evaluates the matchability of data edges incident to v against
/// query edges entering u.
struct UvPair {
  VertexId u;
  VertexId v;
};

/// Static (timestamp-independent) feasibility of mapping query edge qe onto
/// data edge ed with the given endpoint correspondence.
/// flip == false: qe.u -> ed.src, qe.v -> ed.dst; flip == true: swapped.
/// Directed graphs admit only flip == false (query direction u->v must
/// match data direction src->dst).
/// Generic over the graph type: any store exposing VertexLabel() works
/// (the canonical TemporalGraph, or a sharded view — see src/shard/).
template <typename GraphT>
bool StaticFeasible(const QueryGraph& query, const GraphT& graph, EdgeId qe,
                    const TemporalEdge& ed, bool flip) {
  if (query.directed() && flip) return false;
  const QueryEdge& q = query.Edge(qe);
  if (q.elabel != ed.label) return false;
  const VertexId image_u = flip ? ed.dst : ed.src;
  const VertexId image_v = flip ? ed.src : ed.dst;
  return query.VertexLabel(q.u) == graph.VertexLabel(image_u) &&
         query.VertexLabel(q.v) == graph.VertexLabel(image_v);
}

/// The index is a template over the graph type so the identical filtering
/// code runs against the canonical single graph and against a sharded
/// read view (src/shard/sharded_graph.h) — the view exposes the same
/// adjacency surface (VertexLabel / directed / MayHaveMatching /
/// NeighborsMatching / ForEachNeighbor), just routed to the owning
/// shard. `MaxMinIndex` below is the canonical instantiation.
template <typename GraphT>
class BasicMaxMinIndex {
 public:
  /// `graph` and `dag` must outlive the index. The graph must be the
  /// engine's live windowed graph; the index reads adjacency lazily.
  /// With `partitioned_adjacency` (the default) entry recomputation scans
  /// only the (edge label, neighbor label) bucket each DAG edge can match;
  /// without it every incident entry is visited and filtered inline — the
  /// pre-partitioning behavior, kept as a measurable ablation. With
  /// `bloom_prefilter` (the default, partitioned mode only) each bucket
  /// scan first consults the graph's per-vertex direction-aware Bloom
  /// signature and is skipped outright when no entry can match — the
  /// scan counters then record zero visits for it.
  BasicMaxMinIndex(const GraphT* graph, const QueryDag* dag,
                   bool partitioned_adjacency = true,
                   bool bloom_prefilter = true);

  /// Incremental update after `ed` was inserted into the graph
  /// (TCMInsertion). Appends to `touched` the entries whose gate values
  /// (Weak or a slot of an edge entering u) changed.
  void OnEdgeInserted(const TemporalEdge& ed, std::vector<UvPair>* touched);

  /// Incremental update after `ed` was removed from the graph
  /// (TCMDeletion).
  void OnEdgeRemoved(const TemporalEdge& ed, std::vector<UvPair>* touched);

  /// Temporal half of Lemma IV.3 for this DAG. The caller must have
  /// checked StaticFeasible already.
  bool CheckMatchable(EdgeId qe, const TemporalEdge& ed, bool flip);

  /// T[u, v, e] accessors (used by tests and examples). Untracked edges
  /// report +inf / -inf when a weak embedding exists, else -inf / +inf.
  Timestamp Later(VertexId u, VertexId v, EdgeId e);
  Timestamp Earlier(VertexId u, VertexId v, EdgeId e);
  bool Weak(VertexId u, VertexId v);

  const QueryDag& dag() const { return *dag_; }

  size_t NumEntries() const;
  size_t EstimateMemoryBytes() const;

  /// Adds the adjacency-entry scan counts accumulated since the last call
  /// to `*scanned`/`*matched` and resets them (drained by the owning
  /// engine into its EngineCounters).
  void DrainScanCounters(uint64_t* scanned, uint64_t* matched) {
    *scanned += scanned_;
    *matched += matched_;
    scanned_ = 0;
    matched_ = 0;
  }

 private:
  struct Entry {
    bool weak = false;
    std::vector<Timestamp> later;    // slots: dag.TrackedLater(u)
    std::vector<Timestamp> earlier;  // slots: dag.TrackedEarlier(u)

    bool operator==(const Entry&) const = default;
  };

  /// Returns the entry for (u, v), computing it bottom-up if absent.
  /// Label mismatch yields a permanent "no weak embedding" entry.
  const Entry& GetEntry(VertexId u, VertexId v);

  Entry ComputeEntry(VertexId u, VertexId v);

  /// True when old/new differ on Weak or on a slot of an edge entering u.
  bool GateChanged(VertexId u, const Entry& before, const Entry& after) const;

  /// Marks (u, v) dirty if its entry exists (lazy entries need no update).
  void MarkDirty(VertexId u, VertexId v);

  /// Recomputes dirty entries in reverse topological order, propagating
  /// changes to existing parent entries; fills `touched`.
  void ProcessDirty(std::vector<UvPair>* touched);

  /// Invokes `fn(entry)` for the entries of v's (elabel, nbr_label)
  /// bucket (partitioned mode) or for every incident entry (flat mode),
  /// maintaining the scan counter either way. `want_out` is the required
  /// entry direction from v's perspective (ignored on undirected graphs):
  /// the caller still re-checks it per entry, but the Bloom pre-filter
  /// uses it to skip buckets holding only wrong-direction entries. The
  /// skip is sound because a scan whose every entry fails the direction
  /// check has no effect besides incrementing the scan counter.
  template <typename Fn>
  void ScanNeighbors(VertexId v, Label elabel, Label nbr_label,
                     bool want_out, Fn&& fn) {
    if (partitioned_) {
      if (prefilter_ &&
          !graph_->MayHaveMatching(v, elabel, nbr_label, want_out)) {
        return;
      }
      for (const AdjEntry& a : graph_->NeighborsMatching(v, elabel,
                                                         nbr_label)) {
        ++scanned_;
        fn(a);
      }
    } else {
      graph_->ForEachNeighbor(v, [&](const AdjEntry& a) {
        ++scanned_;
        fn(a);
      });
    }
  }

  const GraphT* graph_;
  const QueryDag* dag_;
  const QueryGraph* query_;
  const bool partitioned_;
  const bool prefilter_;
  uint64_t scanned_ = 0;
  uint64_t matched_ = 0;

  std::vector<std::unordered_map<VertexId, Entry>> entries_;  // per u
  /// Dirty sets bucketed by topological position of u.
  std::vector<std::unordered_map<VertexId, uint8_t>> dirty_;
};

/// The canonical instantiation every existing call site uses; compiled
/// once in maxmin_index.cpp (extern template keeps rebuilds cheap).
using MaxMinIndex = BasicMaxMinIndex<TemporalGraph>;

}  // namespace tcsm

#include "filter/maxmin_index-inl.h"

namespace tcsm {
extern template class BasicMaxMinIndex<TemporalGraph>;
}  // namespace tcsm

#endif  // TCSM_FILTER_MAXMIN_INDEX_H_
