// Member definitions of BasicMaxMinIndex<GraphT> (template over the graph
// type — see maxmin_index.h). Included at the bottom of maxmin_index.h;
// the canonical <TemporalGraph> instantiation is compiled once in
// maxmin_index.cpp, the sharded-view one in src/shard/.
#ifndef TCSM_FILTER_MAXMIN_INDEX_INL_H_
#define TCSM_FILTER_MAXMIN_INDEX_INL_H_

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/memory_meter.h"

namespace tcsm {

template <typename GraphT>
BasicMaxMinIndex<GraphT>::BasicMaxMinIndex(const GraphT* graph,
                                           const QueryDag* dag,
                                           bool partitioned_adjacency,
                                           bool bloom_prefilter)
    : graph_(graph),
      dag_(dag),
      query_(&dag->query()),
      partitioned_(partitioned_adjacency),
      prefilter_(bloom_prefilter) {
  entries_.resize(query_->NumVertices());
  dirty_.resize(query_->NumVertices());
}

template <typename GraphT>
auto BasicMaxMinIndex<GraphT>::GetEntry(VertexId u, VertexId v)
    -> const Entry& {
  auto& bucket = entries_[u];
  auto it = bucket.find(v);
  if (it != bucket.end()) return it->second;
  Entry entry = ComputeEntry(u, v);
  return bucket.emplace(v, std::move(entry)).first->second;
}

template <typename GraphT>
auto BasicMaxMinIndex<GraphT>::ComputeEntry(VertexId u, VertexId v) -> Entry {
  const size_t n_later = dag_->TrackedLater(u).size();
  const size_t n_earlier = dag_->TrackedEarlier(u).size();
  Entry entry;
  entry.later.assign(n_later, kPlusInfinity);    // min over children
  entry.earlier.assign(n_earlier, kMinusInfinity);  // max over children
  if (query_->VertexLabel(u) != graph_->VertexLabel(v)) {
    entry.weak = false;
    std::fill(entry.later.begin(), entry.later.end(), kMinusInfinity);
    std::fill(entry.earlier.begin(), entry.earlier.end(), kPlusInfinity);
    return entry;
  }
  entry.weak = true;

  // Scratch per-branch aggregates (max over parallel candidates for
  // `later`, min for `earlier` — Eq. (1) and its mirror).
  std::vector<Timestamp> branch_later(n_later);
  std::vector<Timestamp> branch_earlier(n_earlier);

  for (const EdgeId f : dag_->ChildEdges(u)) {
    const VertexId uc = dag_->ChildOf(f);
    const QueryEdge& qf = query_->Edge(f);
    const Label want_vlabel = query_->VertexLabel(uc);
    // Direction constraint for directed graphs: the data edge must leave v
    // iff the query edge leaves u.
    const bool need_out = qf.u == u;

    std::fill(branch_later.begin(), branch_later.end(), kMinusInfinity);
    std::fill(branch_earlier.begin(), branch_earlier.end(), kPlusInfinity);
    bool branch_weak = false;

    ScanNeighbors(v, qf.elabel, want_vlabel, need_out, [&](const AdjEntry& a) {
      if (a.elabel != qf.elabel) return;
      if (graph_->VertexLabel(a.nbr) != want_vlabel) return;
      if (graph_->directed() && a.out != need_out) return;
      ++matched_;
      // Pull the child entry (lazily computed). Note: GetEntry may insert
      // into entries_[uc]; safe because `entry` lives on our stack.
      const Entry& child = GetEntry(uc, a.nbr);
      if (child.weak) branch_weak = true;

      for (size_t s = 0; s < n_later; ++s) {
        const EdgeId e = dag_->TrackedLater(u)[s];
        const int cslot = dag_->SlotLater(uc, e);
        Timestamp val = cslot >= 0 ? child.later[static_cast<size_t>(cslot)]
                        : child.weak ? kPlusInfinity
                                     : kMinusInfinity;
        if (query_->Precedes(e, f)) val = std::min(val, a.ts);
        branch_later[s] = std::max(branch_later[s], val);
      }
      for (size_t s = 0; s < n_earlier; ++s) {
        const EdgeId e = dag_->TrackedEarlier(u)[s];
        const int cslot = dag_->SlotEarlier(uc, e);
        Timestamp val = cslot >= 0 ? child.earlier[static_cast<size_t>(cslot)]
                        : child.weak ? kMinusInfinity
                                     : kPlusInfinity;
        if (query_->Precedes(f, e)) val = std::max(val, a.ts);
        branch_earlier[s] = std::min(branch_earlier[s], val);
      }
    });

    entry.weak = entry.weak && branch_weak;
    for (size_t s = 0; s < n_later; ++s) {
      entry.later[s] = std::min(entry.later[s], branch_later[s]);
    }
    for (size_t s = 0; s < n_earlier; ++s) {
      entry.earlier[s] = std::max(entry.earlier[s], branch_earlier[s]);
    }
  }
  return entry;
}

template <typename GraphT>
bool BasicMaxMinIndex<GraphT>::GateChanged(VertexId u, const Entry& before,
                                           const Entry& after) const {
  if (before.weak != after.weak) return true;
  for (const EdgeId e : dag_->ParentEdges(u)) {
    const int sl = dag_->SlotLater(u, e);
    if (sl >= 0 && before.later[static_cast<size_t>(sl)] !=
                       after.later[static_cast<size_t>(sl)]) {
      return true;
    }
    const int se = dag_->SlotEarlier(u, e);
    if (se >= 0 && before.earlier[static_cast<size_t>(se)] !=
                       after.earlier[static_cast<size_t>(se)]) {
      return true;
    }
  }
  return false;
}

template <typename GraphT>
void BasicMaxMinIndex<GraphT>::MarkDirty(VertexId u, VertexId v) {
  if (entries_[u].find(v) == entries_[u].end()) return;  // lazy: no readers
  dirty_[dag_->TopoPos(u)][v] = 1;
}

template <typename GraphT>
void BasicMaxMinIndex<GraphT>::ProcessDirty(std::vector<UvPair>* touched) {
  const auto& topo = dag_->TopoOrder();
  // Children have larger topological positions; process them first so each
  // entry is recomputed at most once per event (Algorithm 3's queue).
  for (size_t pos = topo.size(); pos-- > 0;) {
    auto& bucket = dirty_[pos];
    if (bucket.empty()) continue;
    const VertexId u = topo[pos];
    // Move out: recomputation never dirties the same position again
    // (propagation goes strictly to smaller positions).
    std::unordered_map<VertexId, uint8_t> work;
    work.swap(bucket);
    for (const auto& [v, unused] : work) {
      auto it = entries_[u].find(v);
      TCSM_CHECK(it != entries_[u].end());
      Entry fresh = ComputeEntry(u, v);
      if (fresh == it->second) continue;
      const bool gate = GateChanged(u, it->second, fresh);
      it->second = std::move(fresh);
      if (gate) touched->push_back(UvPair{u, v});
      // Propagate to existing parent entries reachable through live data
      // edges (Algorithm 3 lines 10-19).
      for (const EdgeId pe : dag_->ParentEdges(u)) {
        const VertexId up = dag_->ParentOf(pe);
        const QueryEdge& qpe = query_->Edge(pe);
        const Label want = query_->VertexLabel(up);
        const bool nbr_out = qpe.u == up;  // data edge leaves the parent
        // From v's side the wanted entries point *toward* the parent, so
        // the direction constraint is the inverse of nbr_out.
        ScanNeighbors(v, qpe.elabel, want, !nbr_out, [&](const AdjEntry& a) {
          if (a.elabel != qpe.elabel) return;
          if (graph_->VertexLabel(a.nbr) != want) return;
          // From v's perspective the edge direction is inverted.
          if (graph_->directed() && a.out == nbr_out) return;
          ++matched_;
          MarkDirty(up, a.nbr);
        });
      }
    }
  }
}

template <typename GraphT>
void BasicMaxMinIndex<GraphT>::OnEdgeInserted(const TemporalEdge& ed,
                                              std::vector<UvPair>* touched) {
  // The new edge is a fresh parallel candidate for every DAG edge it can
  // match; only the parent-side entries reference it (Eq. (1) iterates
  // candidates from the parent's adjacency).
  for (EdgeId qe = 0; qe < query_->NumEdges(); ++qe) {
    for (const bool flip : {false, true}) {
      if (!StaticFeasible(*query_, *graph_, qe, ed, flip)) continue;
      const VertexId pu = dag_->ParentOf(qe);
      const QueryEdge& q = query_->Edge(qe);
      const VertexId vp = (pu == q.u) ? (flip ? ed.dst : ed.src)
                                      : (flip ? ed.src : ed.dst);
      MarkDirty(pu, vp);
    }
  }
  ProcessDirty(touched);
}

template <typename GraphT>
void BasicMaxMinIndex<GraphT>::OnEdgeRemoved(const TemporalEdge& ed,
                                             std::vector<UvPair>* touched) {
  for (EdgeId qe = 0; qe < query_->NumEdges(); ++qe) {
    for (const bool flip : {false, true}) {
      if (!StaticFeasible(*query_, *graph_, qe, ed, flip)) continue;
      const VertexId pu = dag_->ParentOf(qe);
      const QueryEdge& q = query_->Edge(qe);
      const VertexId vp = (pu == q.u) ? (flip ? ed.dst : ed.src)
                                      : (flip ? ed.src : ed.dst);
      MarkDirty(pu, vp);
    }
  }
  ProcessDirty(touched);
}

template <typename GraphT>
bool BasicMaxMinIndex<GraphT>::CheckMatchable(EdgeId qe,
                                              const TemporalEdge& ed,
                                              bool flip) {
  const QueryEdge& q = query_->Edge(qe);
  const VertexId cu = dag_->ChildOf(qe);
  const VertexId vc = (cu == q.u) ? (flip ? ed.dst : ed.src)
                                  : (flip ? ed.src : ed.dst);
  const Entry& entry = GetEntry(cu, vc);
  if (!entry.weak) return false;
  const int sl = dag_->SlotLater(cu, qe);
  if (sl >= 0 && !(ed.ts < entry.later[static_cast<size_t>(sl)])) {
    return false;
  }
  const int se = dag_->SlotEarlier(cu, qe);
  if (se >= 0 && !(ed.ts > entry.earlier[static_cast<size_t>(se)])) {
    return false;
  }
  return true;
}

template <typename GraphT>
Timestamp BasicMaxMinIndex<GraphT>::Later(VertexId u, VertexId v, EdgeId e) {
  const Entry& entry = GetEntry(u, v);
  const int slot = dag_->SlotLater(u, e);
  if (slot >= 0) return entry.later[static_cast<size_t>(slot)];
  return entry.weak ? kPlusInfinity : kMinusInfinity;
}

template <typename GraphT>
Timestamp BasicMaxMinIndex<GraphT>::Earlier(VertexId u, VertexId v, EdgeId e) {
  const Entry& entry = GetEntry(u, v);
  const int slot = dag_->SlotEarlier(u, e);
  if (slot >= 0) return entry.earlier[static_cast<size_t>(slot)];
  return entry.weak ? kMinusInfinity : kPlusInfinity;
}

template <typename GraphT>
bool BasicMaxMinIndex<GraphT>::Weak(VertexId u, VertexId v) {
  return GetEntry(u, v).weak;
}

template <typename GraphT>
size_t BasicMaxMinIndex<GraphT>::NumEntries() const {
  size_t n = 0;
  for (const auto& bucket : entries_) n += bucket.size();
  return n;
}

template <typename GraphT>
size_t BasicMaxMinIndex<GraphT>::EstimateMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& bucket : entries_) {
    bytes += HashMapBytes(bucket);
    for (const auto& [v, entry] : bucket) {
      bytes += VectorBytes(entry.later) + VectorBytes(entry.earlier);
    }
  }
  return bytes;
}

}  // namespace tcsm

#endif  // TCSM_FILTER_MAXMIN_INDEX_INL_H_
