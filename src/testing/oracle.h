// Brute-force oracles used by tests and validation benches.
//
// * EnumerateEmbeddings: all (time-constrained) embeddings of q in the
//   current live graph, by naive backtracking — ground truth for engines.
// * Oracle{Later,Earlier,Weak}: Definition IV.2/IV.3 values computed by
//   explicitly enumerating homomorphisms of the path tree of q̂_u — an
//   implementation independent of the incremental index's recurrence.
#ifndef TCSM_TESTING_ORACLE_H_
#define TCSM_TESTING_ORACLE_H_

#include <vector>

#include "core/embedding.h"
#include "dag/query_dag.h"
#include "graph/temporal_graph.h"
#include "query/query_graph.h"

namespace tcsm {

/// Enumerates embeddings of `query` in the live edges of `graph`.
/// When `check_order` is true only time-constrained embeddings are kept.
void EnumerateEmbeddings(const TemporalGraph& graph, const QueryGraph& query,
                         bool check_order, std::vector<Embedding>* out);

/// Max-min timestamp for e of q̂_u at v (Definition IV.3): the largest,
/// over weak embeddings of q̂_u at v, of the minimum timestamp among images
/// of later-related temporal descendants of e. -inf when no weak embedding
/// exists; +inf when none of e's later descendants lie in q̂_u.
Timestamp OracleLater(const TemporalGraph& graph, const QueryDag& dag,
                      VertexId u, VertexId v, EdgeId e);

/// Symmetric min-max value over earlier-related descendants (e' ≺ e).
/// +inf when no weak embedding exists; -inf when no earlier descendants.
Timestamp OracleEarlier(const TemporalGraph& graph, const QueryDag& dag,
                        VertexId u, VertexId v, EdgeId e);

/// Whether any weak embedding of q̂_u at v exists.
bool OracleWeak(const TemporalGraph& graph, const QueryDag& dag, VertexId u,
                VertexId v);

}  // namespace tcsm

#endif  // TCSM_TESTING_ORACLE_H_
