#include "testing/oracle.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/logging.h"

namespace tcsm {
namespace {

/// Connected edge order for naive backtracking: each edge after the first
/// shares an endpoint with an earlier one.
std::vector<EdgeId> ConnectedEdgeOrder(const QueryGraph& q) {
  const size_t m = q.NumEdges();
  std::vector<EdgeId> order;
  std::vector<uint8_t> used(m, 0);
  Mask64 covered = 0;
  for (size_t step = 0; step < m; ++step) {
    EdgeId pick = kInvalidEdge;
    for (EdgeId e = 0; e < m; ++e) {
      if (used[e]) continue;
      const QueryEdge& qe = q.Edge(e);
      if (step == 0 || HasBit(covered, qe.u) || HasBit(covered, qe.v)) {
        pick = e;
        break;
      }
    }
    TCSM_CHECK(pick != kInvalidEdge && "query must be connected");
    used[pick] = 1;
    covered |= Bit(q.Edge(pick).u) | Bit(q.Edge(pick).v);
    order.push_back(pick);
  }
  return order;
}

struct EnumCtx {
  const TemporalGraph* g;
  const QueryGraph* q;
  bool check_order;
  std::vector<EdgeId> order;
  std::vector<VertexId> vmap;
  std::vector<EdgeId> emap;
  std::vector<Timestamp> ets;
  Mask64 mapped_v = 0;
  Mask64 mapped_e = 0;
  std::unordered_set<VertexId> used_v;
  std::unordered_set<EdgeId> used_e;
  std::vector<Embedding>* out;
};

bool OrderOk(const EnumCtx& ctx, EdgeId qe, Timestamp ts) {
  if (!ctx.check_order) return true;
  for (const uint32_t e : BitRange(ctx.q->Before(qe) & ctx.mapped_e)) {
    if (!(ctx.ets[e] < ts)) return false;
  }
  for (const uint32_t e : BitRange(ctx.q->After(qe) & ctx.mapped_e)) {
    if (!(ts < ctx.ets[e])) return false;
  }
  // Gap bounds (DESIGN.md §12): min <= ts(e2) - ts(e1) <= max, inclusive,
  // checked against whichever partner is already mapped.
  for (const GapConstraint& gc : ctx.q->gaps()) {
    if (gc.e2 == qe && HasBit(ctx.mapped_e, gc.e1)) {
      const Timestamp d = ts - ctx.ets[gc.e1];
      if (d < gc.min_gap || d > gc.max_gap) return false;
    }
    if (gc.e1 == qe && HasBit(ctx.mapped_e, gc.e2)) {
      const Timestamp d = ctx.ets[gc.e2] - ts;
      if (d < gc.min_gap || d > gc.max_gap) return false;
    }
  }
  return true;
}

/// Attempts to map query edge `qe` to data edge `ed` with the endpoint
/// correspondence qe.u -> a, qe.v -> b; recurses on success.
void Recurse(EnumCtx& ctx, size_t step);

void TryAssign(EnumCtx& ctx, size_t step, EdgeId qe, const TemporalEdge& ed,
               VertexId a, VertexId b) {
  const QueryGraph& q = *ctx.q;
  const TemporalGraph& g = *ctx.g;
  const QueryEdge& e = q.Edge(qe);
  if (e.elabel != ed.label) return;
  if (q.VertexLabel(e.u) != g.VertexLabel(a) ||
      q.VertexLabel(e.v) != g.VertexLabel(b)) {
    return;
  }
  if (q.directed() && !(a == ed.src && b == ed.dst)) return;
  if (ctx.used_e.count(ed.id) > 0) return;
  // Endpoint consistency + injectivity.
  const bool u_mapped = HasBit(ctx.mapped_v, e.u);
  const bool v_mapped = HasBit(ctx.mapped_v, e.v);
  if (u_mapped && ctx.vmap[e.u] != a) return;
  if (v_mapped && ctx.vmap[e.v] != b) return;
  if (!u_mapped && ctx.used_v.count(a) > 0) return;
  if (!v_mapped && ctx.used_v.count(b) > 0) return;
  if (!u_mapped && !v_mapped && a == b) return;
  if (!OrderOk(ctx, qe, ed.ts)) return;

  if (!u_mapped) {
    ctx.vmap[e.u] = a;
    ctx.mapped_v |= Bit(e.u);
    ctx.used_v.insert(a);
  }
  if (!v_mapped) {
    ctx.vmap[e.v] = b;
    ctx.mapped_v |= Bit(e.v);
    ctx.used_v.insert(b);
  }
  ctx.emap[qe] = ed.id;
  ctx.ets[qe] = ed.ts;
  ctx.mapped_e |= Bit(qe);
  ctx.used_e.insert(ed.id);

  Recurse(ctx, step + 1);

  ctx.used_e.erase(ed.id);
  ctx.mapped_e &= ~Bit(qe);
  if (!v_mapped) {
    ctx.used_v.erase(b);
    ctx.mapped_v &= ~Bit(e.v);
  }
  if (!u_mapped) {
    ctx.used_v.erase(a);
    ctx.mapped_v &= ~Bit(e.u);
  }
}

void Recurse(EnumCtx& ctx, size_t step) {
  const QueryGraph& q = *ctx.q;
  const TemporalGraph& g = *ctx.g;
  if (step == ctx.order.size()) {
    Embedding emb;
    emb.vertices = ctx.vmap;
    emb.edges = ctx.emap;
    ctx.out->push_back(std::move(emb));
    return;
  }
  const EdgeId qe = ctx.order[step];
  const QueryEdge& e = q.Edge(qe);
  const bool u_mapped = HasBit(ctx.mapped_v, e.u);
  const bool v_mapped = HasBit(ctx.mapped_v, e.v);
  if (!u_mapped && !v_mapped) {
    // Only the first edge: try every live edge in both orientations.
    g.ForEachLiveEdge([&](const TemporalEdge& ed) {
      TryAssign(ctx, step, qe, ed, ed.src, ed.dst);
      TryAssign(ctx, step, qe, ed, ed.dst, ed.src);
    });
    return;
  }
  // Scan the full adjacency of a mapped endpoint. Deliberately NOT the
  // partitioned NeighborsMatching fast path: the oracle's flat scan
  // cross-checks bucket completeness in the differential suite (an entry
  // filed under a wrong signature would be found here but missed by the
  // engines).
  const VertexId anchor = u_mapped ? ctx.vmap[e.u] : ctx.vmap[e.v];
  g.ForEachNeighbor(anchor, [&](const AdjEntry& adj) {
    const TemporalEdge& ed = g.Edge(adj.edge);
    if (u_mapped) {
      // e.u -> anchor; the other endpoint of ed maps to e.v.
      TryAssign(ctx, step, qe, ed, anchor, ed.Other(anchor));
    } else {
      TryAssign(ctx, step, qe, ed, ed.Other(anchor), anchor);
    }
  });
}

/// Achievable subtree aggregates over explicit path-tree homomorphisms.
/// For `later`: the set of attainable min-timestamps among images of
/// later-related descendants of `e`; for `earlier`: attainable
/// max-timestamps among earlier-related descendants. Empty set = no weak
/// embedding of q̂_u at v.
std::set<Timestamp> Achievable(const TemporalGraph& g, const QueryDag& dag,
                               VertexId u, VertexId v, EdgeId e,
                               bool later) {
  const QueryGraph& q = dag.query();
  if (q.VertexLabel(u) != g.VertexLabel(v)) return {};
  std::set<Timestamp> acc{later ? kPlusInfinity : kMinusInfinity};
  for (const EdgeId f : dag.ChildEdges(u)) {
    const VertexId uc = dag.ChildOf(f);
    const QueryEdge& qf = q.Edge(f);
    const bool need_out = qf.u == u;
    const bool related = later ? q.Precedes(e, f) : q.Precedes(f, e);
    std::set<Timestamp> branch;
    g.ForEachNeighbor(v, [&](const AdjEntry& a) {
      if (a.elabel != qf.elabel) return;
      if (g.VertexLabel(a.nbr) != q.VertexLabel(uc)) return;
      if (g.directed() && a.out != need_out) return;
      for (const Timestamp s : Achievable(g, dag, uc, a.nbr, e, later)) {
        Timestamp val = s;
        if (related) {
          val = later ? std::min(val, a.ts) : std::max(val, a.ts);
        }
        branch.insert(val);
      }
    });
    if (branch.empty()) return {};
    // Cross-combine with the accumulator (branches are independent; the
    // subtree aggregate is the min/max across branches).
    std::set<Timestamp> next;
    for (const Timestamp x : acc) {
      for (const Timestamp y : branch) {
        next.insert(later ? std::min(x, y) : std::max(x, y));
      }
    }
    acc = std::move(next);
  }
  return acc;
}

}  // namespace

void EnumerateEmbeddings(const TemporalGraph& graph, const QueryGraph& query,
                         bool check_order, std::vector<Embedding>* out) {
  EnumCtx ctx;
  ctx.g = &graph;
  ctx.q = &query;
  ctx.check_order = check_order;
  ctx.order = ConnectedEdgeOrder(query);
  ctx.vmap.assign(query.NumVertices(), kInvalidVertex);
  ctx.emap.assign(query.NumEdges(), kInvalidEdge);
  ctx.ets.assign(query.NumEdges(), 0);
  ctx.out = out;
  Recurse(ctx, 0);
}

Timestamp OracleLater(const TemporalGraph& graph, const QueryDag& dag,
                      VertexId u, VertexId v, EdgeId e) {
  const std::set<Timestamp> values =
      Achievable(graph, dag, u, v, e, /*later=*/true);
  if (values.empty()) return kMinusInfinity;
  return *values.rbegin();  // max over weak embeddings
}

Timestamp OracleEarlier(const TemporalGraph& graph, const QueryDag& dag,
                        VertexId u, VertexId v, EdgeId e) {
  const std::set<Timestamp> values =
      Achievable(graph, dag, u, v, e, /*later=*/false);
  if (values.empty()) return kPlusInfinity;
  return *values.begin();  // min over weak embeddings
}

bool OracleWeak(const TemporalGraph& graph, const QueryDag& dag, VertexId u,
                VertexId v) {
  return !Achievable(graph, dag, u, v, /*e=*/0, /*later=*/true).empty();
}

}  // namespace tcsm
