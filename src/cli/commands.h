// Implementations of the `tcsm` command-line tool's subcommands, kept in
// the library so they are unit-testable. Each command takes its argument
// list (excluding the subcommand name) and an output stream, and returns
// a process exit code.
//
// Dataset-file arguments accept either format of docs/FILE_FORMATS.md:
// `.tel` streams (detected by their header; directedness and vertex
// labels come from the file) or legacy SNAP-style edge lists (directed
// via --directed, labels via --labels=<file>).
#ifndef TCSM_CLI_COMMANDS_H_
#define TCSM_CLI_COMMANDS_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace tcsm::cli {

using Args = std::vector<std::string>;

/// tcsm stats <dataset> [--directed] [--labels=<file>]
/// Prints Table III-style dataset characteristics.
int CmdStats(const Args& args, std::ostream& out);

/// tcsm gen <preset|random> [<out.tel>|-] [--scale=S] [--seed=K]
///   [--window=D] [--expiry=explicit] [--vertices=N --edges=M --vlabels=a
///    --elabels=b --parallel=p --directed]
/// Synthesizes a temporal stream and writes it as a `.tel` file
/// (stdout with `-`, the default — `tcsm gen` pipes into `tcsm replay -`).
int CmdGen(const Args& args, std::ostream& out);

/// tcsm convert <in.tel|-> <out.tel|-> [--format=binary|text]
///   [--varint=on|off] [--block-records=N]
/// Re-frames a `.tel` stream between the text and binary v2 framings
/// without touching its contents: header, labels, and every record carry
/// over, so a converted stream replays match-identically. The default
/// --format is the opposite of the input's framing.
int CmdConvert(const Args& args, std::ostream& out);

/// tcsm gen-data <preset|random> <out-file> [--scale=S] [--seed=K]
///   [--vertices=N --edges=M --vlabels=a --elabels=b --parallel=p
///    --directed]
/// Writes a legacy edge list (and a .labels file). Prefer `tcsm gen`.
int CmdGenData(const Args& args, std::ostream& out);

/// tcsm gen-query <dataset> <out-file> [--size=m] [--density=d]
///   [--window=w] [--seed=K] [--directed] [--labels=<file>]
/// Extracts a random-walk query with a density-targeted temporal order;
/// --window is recorded in the query file as its suggested replay delta.
int CmdGenQuery(const Args& args, std::ostream& out);

/// tcsm run <dataset> <query-file> [--window=w] [--directed]
///   [--labels=<file>] [--limit_ms=T] [--threads=N]
///   [--engine=tcm|timing|symbi|local] [--print] [--canonical]
/// Loads the dataset into memory and streams it, reporting
/// occurred/expired counts (or every match with --print). The window
/// falls back to the query file's `w` record, then the `.tel` header.
int CmdRun(const Args& args, std::ostream& out);

/// tcsm replay <stream.tel|-> <query-file>... [--window=w] [--threads=N]
///   [--max-events=N] [--limit_ms=T] [--engine=tcm|timing|symbi|local]
///   [--print] [--canonical] [--json] [--seek-ts=T]
///   [--flight-record=N --flight-dump=FILE [--flight-format=text|binary]]
/// File-driven continuous matching: pulls the stream incrementally off
/// disk (or stdin with `-`) in O(window) memory — the stream is never
/// loaded — and fans events out to one engine per query file across
/// --threads workers. Match-stream output is byte-identical to `run` on
/// the same data (tests/io_roundtrip_test.cpp enforces this).
/// --seek-ts=T starts at the first binary-v2 block covering timestamp T
/// (O(1) via the index footer); --flight-record keeps the last N arrivals
/// in a ring and dumps them to --flight-dump as a replayable `.tel` at
/// exit — error exits included, turning a mid-replay failure into a
/// reproducer.
int CmdReplay(const Args& args, std::ostream& out);

/// tcsm snapshot <dataset> <query-file> [--window=w] [--directed]
///   [--labels=<file>] [--limit_ms=T] [--print]
/// One-shot matching over the full graph (TOM's setting).
int CmdSnapshot(const Args& args, std::ostream& out);

/// Dispatches to a subcommand; prints usage on errors.
int Main(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace tcsm::cli

#endif  // TCSM_CLI_COMMANDS_H_
