// Implementations of the `tcsm` command-line tool's subcommands, kept in
// the library so they are unit-testable. Each command takes its argument
// list (excluding the subcommand name) and an output stream, and returns
// a process exit code.
#ifndef TCSM_CLI_COMMANDS_H_
#define TCSM_CLI_COMMANDS_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace tcsm::cli {

using Args = std::vector<std::string>;

/// tcsm stats <edges-file> [--directed] [--labels=<file>]
/// Prints Table III-style dataset characteristics.
int CmdStats(const Args& args, std::ostream& out);

/// tcsm gen-data <preset|random> <out-file> [--scale=S] [--seed=K]
///   [--vertices=N --edges=M --vlabels=a --elabels=b --parallel=p
///    --directed]
/// Writes a synthetic temporal edge list (and a .labels file).
int CmdGenData(const Args& args, std::ostream& out);

/// tcsm gen-query <edges-file> <out-file> [--size=m] [--density=d]
///   [--window=w] [--seed=K] [--directed] [--labels=<file>]
/// Extracts a random-walk query with a density-targeted temporal order.
int CmdGenQuery(const Args& args, std::ostream& out);

/// tcsm run <edges-file> <query-file> --window=w [--directed]
///   [--labels=<file>] [--limit_ms=T] [--engine=tcm|timing|symbi|local]
///   [--print]
/// Streams the dataset and reports occurred/expired counts (or every
/// match with --print).
int CmdRun(const Args& args, std::ostream& out);

/// tcsm snapshot <edges-file> <query-file> [--window=w] [--directed]
///   [--labels=<file>] [--limit_ms=T] [--print]
/// One-shot matching over the full graph (TOM's setting).
int CmdSnapshot(const Args& args, std::ostream& out);

/// Dispatches to a subcommand; prints usage on errors.
int Main(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace tcsm::cli

#endif  // TCSM_CLI_COMMANDS_H_
