#include "cli/commands.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "bench_util/table_printer.h"
#include "core/automorphism.h"
#include "core/snapshot.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "exec/parallel_context.h"
#include "datasets/presets.h"
#include "datasets/synthetic.h"
#include "graph/graph_io.h"
#include "io/flight_recorder.h"
#include "io/replay.h"
#include "io/stream_reader.h"
#include "io/stream_writer.h"
#include "obs/observability.h"
#include "query/query_io.h"
#include "querygen/query_generator.h"
#include "shard/sharded_context.h"
#include "shard/sharded_engine.h"

namespace tcsm::cli {
namespace {

/// Tiny flag parser: positional arguments plus --key=value / --switch.
class FlagSet {
 public:
  explicit FlagSet(const Args& args) {
    for (const std::string& a : args) {
      if (a.rfind("--", 0) == 0) {
        const size_t eq = a.find('=');
        if (eq == std::string::npos) {
          flags_[a.substr(2)] = "";
        } else {
          flags_[a.substr(2, eq - 2)] = a.substr(eq + 1);
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }
  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& dflt = "") const {
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& name, double dflt) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : std::stod(it->second);
  }
  int64_t GetInt(const std::string& name, int64_t dflt) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : std::stoll(it->second);
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

/// Loads either dataset format (`.tel` sniffed by header, else legacy
/// edge list); the `.tel` header, when present, is returned for window
/// defaulting.
std::optional<TemporalDataset> LoadDataset(const FlagSet& flags,
                                           const std::string& path,
                                           std::ostream& out,
                                           TelHeader* header = nullptr) {
  auto ds = LoadAnyDatasetFile(path, flags.Has("directed"), header);
  if (!ds.ok()) {
    out << "error: " << ds.status().ToString() << "\n";
    return std::nullopt;
  }
  const std::string labels = flags.GetString("labels");
  if (!labels.empty()) {
    const Status s = LoadVertexLabelFile(labels, &ds.value());
    if (!s.ok()) {
      out << "error: " << s.ToString() << "\n";
      return std::nullopt;
    }
  }
  return std::move(ds).value();
}

std::optional<QueryGraph> LoadQuery(const std::string& path,
                                    std::ostream& out) {
  auto q = LoadQueryFile(path);
  if (!q.ok()) {
    out << "error: " << q.status().ToString() << "\n";
    return std::nullopt;
  }
  return std::move(q).value();
}

/// Window precedence shared by run/replay: explicit flag, then the query
/// file's `w` record, then the `.tel` header's window (0 = unresolved).
Timestamp ResolveWindow(const FlagSet& flags, const QueryGraph& query,
                        const TelHeader& header) {
  const Timestamp flag = flags.GetInt("window", 0);
  if (flag > 0) return flag;
  if (query.window_hint() > 0) return query.window_hint();
  return header.window;
}

/// Engine factory shared by run/replay; prints an error and returns null
/// for unknown kinds.
std::unique_ptr<ContinuousEngine> MakeCliEngine(const std::string& kind,
                                                const QueryGraph& query,
                                                const TemporalGraph& graph,
                                                std::ostream& out) {
  if (kind == "tcm") return std::make_unique<TcmEngine>(query, graph);
  if (kind == "timing") return std::make_unique<TimingEngine>(query, graph);
  if (kind == "symbi") {
    return std::make_unique<PostFilterEngine>(query, graph);
  }
  if (kind == "local") {
    return std::make_unique<LocalEnumEngine>(query, graph);
  }
  out << "error: unknown engine '" << kind << "'\n";
  return nullptr;
}

/// Parses --shards (clamped to >= 1) and enforces that sharded execution
/// is only requested with the TCM engine — the only engine instantiated
/// over the sharded graph view. Returns 0 after printing an error.
size_t ResolveShards(const FlagSet& flags, const std::string& kind,
                     std::ostream& out) {
  const size_t shards =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("shards", 1)));
  if (shards > 1 && kind != "tcm") {
    out << "error: --shards=" << shards
        << " requires --engine=tcm (only the TCM engine reads through "
           "the sharded graph view)\n";
    return 0;
  }
  return shards;
}

/// --threads with a sharded-aware default: one pool lane per shard when
/// sharding is requested, the serial 1 otherwise.
size_t ResolveThreads(const FlagSet& flags, size_t shards) {
  return static_cast<size_t>(std::max<int64_t>(
      1, flags.GetInt("threads", static_cast<int64_t>(shards))));
}

/// Builds the synthetic dataset named by `kind` ("random" or a preset);
/// prints an error and returns nullopt for unknown presets.
std::optional<TemporalDataset> BuildSynthetic(const FlagSet& flags,
                                              const std::string& kind,
                                              std::ostream& out) {
  if (kind == "random") {
    SyntheticSpec spec;
    spec.num_vertices = static_cast<size_t>(flags.GetInt("vertices", 1000));
    spec.num_edges = static_cast<size_t>(flags.GetInt("edges", 10000));
    spec.num_vertex_labels =
        static_cast<size_t>(flags.GetInt("vlabels", 1));
    spec.num_edge_labels = static_cast<size_t>(flags.GetInt("elabels", 1));
    spec.avg_parallel_edges = flags.GetDouble("parallel", 1.5);
    // Coalesced timestamps produce runs of same-instant events, the
    // shape that engages the micro-batched delivery paths downstream.
    const int64_t coalesce = flags.GetInt("coalesce", 1);
    if (coalesce < 1) {
      out << "error: --coalesce must be >= 1\n";
      return std::nullopt;
    }
    spec.ts_coalesce = static_cast<size_t>(coalesce);
    spec.directed = flags.Has("directed");
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    return GenerateSynthetic(spec);
  }
  bool known = false;
  for (const auto& p : PresetNames()) known = known || p == kind;
  if (!known) {
    out << "error: unknown preset '" << kind << "'\n";
    return std::nullopt;
  }
  SyntheticSpec spec = PresetSpec(kind, flags.GetDouble("scale", 1.0));
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", spec.seed));
  return GenerateSynthetic(spec);
}

void PrintStats(const TemporalDataset& ds, std::ostream& out) {
  const DatasetStats s = ds.ComputeStats();
  TablePrinter table({"|V|", "|E|", "|Sv|", "|Se|", "davg", "mavg",
                      "span", "window-unit"});
  table.AddRow({std::to_string(s.num_vertices), std::to_string(s.num_edges),
                std::to_string(s.num_vertex_labels),
                std::to_string(s.num_edge_labels),
                FormatDouble(s.avg_degree, 2),
                FormatDouble(s.avg_parallel_edges, 2),
                std::to_string(s.max_ts - s.min_ts),
                FormatDouble(s.window_unit, 3)});
  table.Print(out);
}

class StreamPrintSink : public MatchSink {
 public:
  explicit StreamPrintSink(std::ostream& out, std::string prefix = "")
      : out_(out), prefix_(std::move(prefix)) {}
  void OnMatch(const Embedding& m, MatchKind kind, uint64_t) override {
    out_ << prefix_ << (kind == MatchKind::kOccurred ? "+" : "-");
    for (size_t u = 0; u < m.vertices.size(); ++u) {
      out_ << " u" << u << ":" << m.vertices[u];
    }
    out_ << " |";
    for (size_t e = 0; e < m.edges.size(); ++e) {
      out_ << " e" << e << ":" << m.edges[e];
    }
    out_ << "\n";
  }

 private:
  std::ostream& out_;
  std::string prefix_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void PrintStreamResult(const std::string& engine_name,
                       const StreamResult& res, std::ostream& out) {
  out << "engine=" << engine_name << " threads=" << res.num_threads
      << " shards=" << res.num_shards << " events=" << res.events
      << " occurred=" << res.occurred << " expired=" << res.expired
      << " elapsed_ms=" << FormatDouble(res.elapsed_ms, 2)
      << " peak_bytes=" << res.peak_memory_bytes
      << " peak_at=" << res.peak_memory_event_index
      << " adj_scanned=" << res.adj_entries_scanned
      << " adj_matched=" << res.adj_entries_matched
      << (res.completed ? "" : " (INCOMPLETE: limit hit)") << "\n";
}

/// Observability surface shared by run/replay: --metrics[=on|off],
/// --stats-every=N, --trace-out=FILE (DESIGN.md §11).
struct ObsCliOptions {
  std::unique_ptr<Observability> obs;  // null = metrics off
  size_t stats_every = 0;
  std::string trace_path;
};

/// Parses the observability flags. --stats-every/--trace-out imply
/// metrics on; combining either with an explicit --metrics=off is a
/// contradiction. Returns false after printing an error.
bool ResolveObsFlags(const FlagSet& flags, std::ostream& out,
                     ObsCliOptions* o) {
  bool metrics_on = false;
  bool metrics_off = false;
  if (flags.Has("metrics")) {
    const std::string v = flags.GetString("metrics");
    if (v.empty() || v == "on") {
      metrics_on = true;
    } else if (v == "off") {
      metrics_off = true;
    } else {
      out << "error: bad --metrics (expected 'on' or 'off')\n";
      return false;
    }
  }
  const int64_t every = flags.GetInt("stats-every", 0);
  if (every < 0) {
    out << "error: --stats-every must be >= 0\n";
    return false;
  }
  o->stats_every = static_cast<size_t>(every);
  o->trace_path = flags.GetString("trace-out");
  if (metrics_off && (o->stats_every > 0 || !o->trace_path.empty())) {
    out << "error: --metrics=off contradicts --stats-every/--trace-out\n";
    return false;
  }
  if (metrics_on || o->stats_every > 0 || !o->trace_path.empty()) {
    o->obs = std::make_unique<Observability>();
    if (!o->trace_path.empty()) o->obs->EnableTrace();
  }
  return true;
}

/// The observability flags only make sense where a stream is driven;
/// reject them loudly on the other subcommands instead of silently
/// ignoring a typo'd invocation. Returns true (after printing an error)
/// when any such flag is present.
bool RejectObsFlags(const FlagSet& flags, const char* cmd,
                    std::ostream& out) {
  for (const char* f : {"metrics", "stats-every", "trace-out"}) {
    if (flags.Has(f)) {
      out << "error: --" << f
          << " only applies to streaming subcommands (run, replay), not '"
          << cmd << "'\n";
      return true;
    }
  }
  return false;
}

/// End-of-run observability output: writes the trace file (validated
/// offline by tools/check_trace.py) and, in text mode, the per-stage
/// latency table. Returns non-zero on trace write failure.
int FinishObs(const ObsCliOptions& o, bool json, std::ostream& out) {
  if (o.obs == nullptr) return 0;
  if (!o.trace_path.empty()) {
    std::ofstream tf(o.trace_path);
    if (!tf) {
      out << "error: cannot open " << o.trace_path << "\n";
      return 1;
    }
    o.obs->trace()->WriteJson(tf);
    tf.flush();
    if (!tf) {
      out << "error: failed writing " << o.trace_path << "\n";
      return 1;
    }
    if (!json) {
      out << "wrote trace: " << o.obs->trace()->NumSpans() << " spans to "
          << o.trace_path << "\n";
    }
  }
  if (!json) {
    const std::vector<StageSummaryRow> rows =
        SummarizeStages(o.obs->Snapshot());
    if (!rows.empty()) {
      TablePrinter table({"stage", "count", "p50_us", "p99_us", "total_ms"});
      for (const StageSummaryRow& r : rows) {
        table.AddRow({r.stage, std::to_string(r.count),
                      FormatDouble(r.p50_us, 2), FormatDouble(r.p99_us, 2),
                      FormatDouble(r.total_ms, 2)});
      }
      table.Print(out);
    }
  }
  return 0;
}

/// Parses the `.tel` framing flags shared by gen and convert:
/// --format=text|binary (default = `default_binary`), --varint[=on|off]
/// (binary only), --block-records=N (binary only). Returns false after
/// printing an error.
bool ResolveTelFormatFlags(const FlagSet& flags, bool default_binary,
                           TelWriteOptions* opts, std::ostream& out) {
  const std::string format = flags.GetString("format");
  if (format.empty() && !flags.Has("format")) {
    opts->binary = default_binary;
  } else if (format == "binary") {
    opts->binary = true;
  } else if (format == "text") {
    opts->binary = false;
  } else {
    out << "error: bad --format (expected 'text' or 'binary')\n";
    return false;
  }
  if (flags.Has("varint")) {
    const std::string v = flags.GetString("varint");
    if (v.empty() || v == "on") {
      opts->varint_timestamps = true;
    } else if (v == "off") {
      opts->varint_timestamps = false;
    } else {
      out << "error: bad --varint (expected 'on' or 'off')\n";
      return false;
    }
    if (!opts->binary) {
      out << "error: --varint only applies to --format=binary\n";
      return false;
    }
  }
  if (flags.Has("block-records")) {
    const int64_t n = flags.GetInt("block-records", 0);
    if (n <= 0) {
      out << "error: --block-records must be > 0\n";
      return false;
    }
    if (!opts->binary) {
      out << "error: --block-records only applies to --format=binary\n";
      return false;
    }
    opts->block_records = static_cast<size_t>(n);
  }
  return true;
}

/// The "stages" object of the replay --json line: per-stage count and
/// latency quantiles from the registry snapshot.
std::string StagesJson(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const StageSummaryRow& r : SummarizeStages(snap)) {
    if (!first) os << ",";
    first = false;
    os << "\"" << r.stage << "\":{\"count\":" << r.count
       << ",\"p50_us\":" << FormatDouble(r.p50_us, 3)
       << ",\"p99_us\":" << FormatDouble(r.p99_us, 3)
       << ",\"total_ms\":" << FormatDouble(r.total_ms, 3) << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace

int CmdStats(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 1) {
    out << "usage: tcsm stats <dataset> [--directed] [--labels=file]\n";
    return 2;
  }
  if (RejectObsFlags(flags, "stats", out)) return 2;
  const auto ds = LoadDataset(flags, flags.positional()[0], out);
  if (!ds) return 1;
  PrintStats(*ds, out);
  return 0;
}

int CmdGen(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().empty() || flags.positional().size() > 2) {
    out << "usage: tcsm gen <preset|random> [<out.tel>|-] [--scale=S] "
           "[--seed=K] [--window=D] [--expiry=explicit] "
           "[--format=text|binary] [--varint=on|off] [--block-records=N] "
           "[--vertices=N --edges=M --vlabels=a --elabels=b --parallel=p "
           "--coalesce=c --directed]\n"
           "   presets: ";
    for (const auto& p : PresetNames()) out << p << " ";
    out << "\n";
    return 2;
  }
  if (RejectObsFlags(flags, "gen", out)) return 2;
  const auto ds = BuildSynthetic(flags, flags.positional()[0], out);
  if (!ds) return 1;

  TelWriteOptions opts;
  if (!ResolveTelFormatFlags(flags, /*default_binary=*/false, &opts, out)) {
    return 1;
  }
  opts.window = flags.GetInt("window", 0);
  const std::string expiry = flags.GetString("expiry", "derived");
  if (expiry == "explicit") {
    opts.explicit_expiry = true;
  } else if (expiry != "derived") {
    out << "error: bad --expiry (expected 'derived' or 'explicit')\n";
    return 1;
  }
  const std::string path = flags.positional().size() == 2
                               ? flags.positional()[1]
                               : std::string("-");
  Status s;
  if (path == "-") {
    // Stream straight to the caller: `tcsm gen ... | tcsm replay - q.tq`.
    s = WriteTel(*ds, opts, out);
  } else {
    s = SaveTelFile(*ds, opts, path);
    if (s.ok()) {
      out << "wrote " << ds->NumEdges() << " edges / " << ds->NumVertices()
          << " vertices to " << path << "\n";
      PrintStats(*ds, out);
    }
  }
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  return 0;
}

int CmdConvert(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm convert <in.tel|-> <out.tel|-> "
           "[--format=binary|text] [--varint=on|off] [--block-records=N]\n"
           "   default --format is the opposite framing of the input\n";
    return 2;
  }
  if (RejectObsFlags(flags, "convert", out)) return 2;
  const std::string in_path = flags.positional()[0];
  const std::string out_path = flags.positional()[1];
  std::ifstream in_file;
  std::istream* in = &std::cin;
  if (in_path != "-") {
    in_file.open(in_path, std::ios::binary);
    if (!in_file) {
      out << "error: cannot open " << in_path << "\n";
      return 1;
    }
    in = &in_file;
  }
  StreamReader reader(*in, in_path == "-" ? "<stdin>" : in_path);
  Status s = reader.Init();
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  if (!reader.has_vertex_universe()) {
    out << "error: " << reader.source()
        << ": convert needs the vertex universe declared up front "
           "(vertices=N in the header, or v records)\n";
    return 1;
  }
  TelWriteOptions opts;
  if (!ResolveTelFormatFlags(flags, /*default_binary=*/!reader.binary(),
                             &opts, out)) {
    return 1;
  }
  // The header carries over wholesale: convert changes the framing, never
  // the stream it frames.
  opts.window = reader.header().window;
  opts.explicit_expiry = reader.header().explicit_expiry;

  std::ofstream out_file;
  std::ostream* sink = &out;
  if (out_path != "-") {
    out_file.open(out_path, std::ios::binary);
    if (!out_file) {
      out << "error: cannot write " << out_path << "\n";
      return 1;
    }
    sink = &out_file;
  }
  StreamWriter writer(*sink);
  s = writer.BeginStream(reader.header().directed, reader.vertex_labels(),
                         opts);
  uint64_t records = 0;
  while (s.ok()) {
    StreamRecord rec;
    bool done = false;
    s = reader.Next(&rec, &done);
    if (!s.ok() || done) break;
    ++records;
    s = rec.kind == StreamRecord::Kind::kArrival
            ? writer.RecordArrival(rec.edge)
            : writer.RecordExpiry(rec.edge.ts);
  }
  if (s.ok()) s = writer.Finish();
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  if (out_path != "-") {
    // Stdout output gets no summary: `convert - -` sits in pipelines and
    // its stdout is the stream itself.
    out << "converted " << records << " records ("
        << (reader.binary() ? "binary" : "text") << " -> "
        << (opts.binary ? "binary" : "text") << ") to " << out_path << "\n";
  }
  return 0;
}

int CmdGenData(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm gen-data <preset|random> <out-file> [--scale=S] "
           "[--seed=K] [--vertices=N --edges=M --vlabels=a --elabels=b "
           "--parallel=p --coalesce=c --directed]\n   presets: ";
    for (const auto& p : PresetNames()) out << p << " ";
    out << "\n";
    return 2;
  }
  if (RejectObsFlags(flags, "gen-data", out)) return 2;
  const std::string path = flags.positional()[1];
  const auto ds = BuildSynthetic(flags, flags.positional()[0], out);
  if (!ds) return 1;
  const Status s = SaveEdgeListFile(*ds, path);
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  // Vertex labels go to a sibling file.
  std::ofstream lf(path + ".labels");
  for (size_t v = 0; v < ds->vertex_labels.size(); ++v) {
    lf << v << ' ' << ds->vertex_labels[v] << '\n';
  }
  out << "wrote " << ds->NumEdges() << " edges / " << ds->NumVertices()
      << " vertices to " << path << " (+ " << path << ".labels)\n";
  PrintStats(*ds, out);
  return 0;
}

int CmdGenQuery(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm gen-query <dataset> <out-file> [--size=m] "
           "[--density=d] [--window=w] [--seed=K] [--directed] "
           "[--labels=file] [--gaps=p] [--gap-slack=s] [--absence=n] "
           "[--absence-delta=d]\n";
    return 2;
  }
  if (RejectObsFlags(flags, "gen-query", out)) return 2;
  const auto ds = LoadDataset(flags, flags.positional()[0], out);
  if (!ds) return 1;
  QueryGenOptions opt;
  opt.num_edges = static_cast<size_t>(flags.GetInt("size", 5));
  opt.density = flags.GetDouble("density", 0.5);
  opt.window = flags.GetInt("window", 0);
  opt.gap_probability = flags.GetDouble("gaps", 0.0);
  opt.gap_slack = flags.GetInt("gap-slack", 8);
  opt.num_absence = static_cast<size_t>(flags.GetInt("absence", 0));
  opt.absence_delta = flags.GetInt("absence-delta", 5);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  QueryGraph q;
  if (!GenerateQuery(*ds, opt, &rng, &q)) {
    out << "error: could not extract a connected query of size "
        << opt.num_edges << "\n";
    return 1;
  }
  const Status s = SaveQueryFile(q, flags.positional()[1]);
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  out << "wrote query (|V|=" << q.NumVertices() << ", |E|=" << q.NumEdges()
      << ", density=" << FormatDouble(q.OrderDensity(), 2)
      << ", gaps=" << q.gaps().size() << ", absence=" << q.absences().size()
      << ") to " << flags.positional()[1] << "\n";
  return 0;
}

int CmdRun(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm run <dataset> <query-file> [--window=w] "
           "[--directed] [--labels=file] [--limit_ms=T] [--threads=N] "
           "[--shards=N] [--engine=tcm|timing|symbi|local] [--print] "
           "[--canonical] [--metrics[=on|off]] [--stats-every=N] "
           "[--trace-out=FILE]\n";
    return 2;
  }
  TelHeader header;
  const auto ds = LoadDataset(flags, flags.positional()[0], out, &header);
  if (!ds) return 1;
  const auto q = LoadQuery(flags.positional()[1], out);
  if (!q) return 1;
  if (q->directed() != ds->directed) {
    out << "error: query and data graph directedness differ\n";
    return 1;
  }
  const Timestamp window = ResolveWindow(flags, *q, header);
  if (window <= 0) {
    out << "error: no window (pass --window=w, or use a query/.tel file "
           "that records one)\n";
    return 1;
  }
  if (window > kMaxTelTimestamp) {  // ts + window must not overflow
    out << "error: window too large (must stay below 2^61)\n";
    return 1;
  }
  const std::string kind = flags.GetString("engine", "tcm");
  const size_t shards = ResolveShards(flags, kind, out);
  if (shards == 0) return 1;
  const size_t threads = ResolveThreads(flags, shards);
  if (threads > 1 && shards == 1) {
    // Fan-out shards *engines*; this subcommand attaches exactly one, so
    // the run stays serial however many workers the pool has. Say so,
    // rather than letting the header's threads= field suggest a parallel
    // measurement. (--shards=N is different: it splits the graph
    // maintenance itself, which parallelizes even for one engine.)
    out << "note: run attaches a single engine; --threads=" << threads
        << " shards per-engine work and cannot speed up one engine\n";
  }

  // The context owns the shared sliding-window graph — one canonical
  // graph, or a vertex-partitioned set of shard graphs under --shards.
  // The engine is a read-only view attached to it. At --threads=1 (the
  // default) the parallel context spawns no workers and is the serial
  // context.
  const GraphSchema schema{ds->directed, ds->vertex_labels};
  std::unique_ptr<SharedStreamContext> context;
  std::unique_ptr<ContinuousEngine> engine;
  if (shards > 1) {
    auto sharded =
        std::make_unique<ShardedStreamContext>(schema, shards, threads);
    engine = std::make_unique<ShardedTcmEngine>(*q, sharded->view());
    context = std::move(sharded);
  } else {
    auto parallel = std::make_unique<ParallelStreamContext>(schema, threads);
    engine = MakeCliEngine(kind, *q, parallel->graph(), out);
    context = std::move(parallel);
  }
  if (!engine) return 1;
  context->Attach(engine.get());

  StreamPrintSink print_sink(out);
  CountingSink counting_sink;
  MatchSink* sink = flags.Has("print")
                        ? static_cast<MatchSink*>(&print_sink)
                        : static_cast<MatchSink*>(&counting_sink);
  // --canonical: collapse automorphic mappings to one pattern instance.
  std::unique_ptr<CanonicalSink> canonical;
  if (flags.Has("canonical")) {
    canonical = std::make_unique<CanonicalSink>(*q, sink);
    out << "automorphism group size: " << canonical->GroupSize() << "\n";
    sink = canonical.get();
  }
  engine->set_sink(sink);
  ObsCliOptions obs;
  if (!ResolveObsFlags(flags, out, &obs)) return 1;
  StreamConfig config;
  config.window = window;
  config.time_limit_ms = flags.GetDouble("limit_ms", 0);
  config.obs = obs.obs.get();
  config.stats_every = obs.stats_every;
  config.stats_out = &out;
  const StreamResult res = RunStream(*ds, config, context.get());
  PrintStreamResult(engine->name(), res, out);
  if (FinishObs(obs, /*json=*/false, out) != 0) return 1;
  return res.completed ? 0 : 3;
}

int CmdReplay(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() < 2) {
    out << "usage: tcsm replay <stream.tel|-> <query-file>... [--window=w] "
           "[--threads=N] [--shards=N] [--max-events=N] [--limit_ms=T] "
           "[--engine=tcm|timing|symbi|local] [--print] [--canonical] "
           "[--json] [--seek-ts=T] [--flight-record=N --flight-dump=FILE "
           "[--flight-format=text|binary]] [--metrics[=on|off]] "
           "[--stats-every=N] [--trace-out=FILE]\n";
    return 2;
  }
  const std::string stream_path = flags.positional()[0];
  std::ifstream file;
  std::istream* in = &std::cin;
  if (stream_path != "-") {
    file.open(stream_path, std::ios::binary);
    if (!file) {
      out << "error: cannot open " << stream_path << "\n";
      return 1;
    }
    in = &file;
  }
  StreamReader reader(*in, stream_path == "-" ? "<stdin>" : stream_path);
  Status s = reader.Init();
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  if (!reader.has_vertex_universe()) {
    out << "error: " << reader.source()
        << ": streaming replay needs the vertex universe declared up "
           "front (vertices=N in the header, or v records)\n";
    return 1;
  }
  if (flags.Has("seek-ts")) {
    // O(1) reposition off the binary index footer: replay then delivers
    // exactly the suffix of the full replay's event schedule (matches
    // included, once the window has refilled past the gap).
    s = reader.SeekToTimestamp(flags.GetInt("seek-ts", 0));
    if (!s.ok()) {
      out << "error: " << s.ToString() << "\n";
      return 1;
    }
  }

  std::vector<QueryGraph> queries;
  std::vector<std::string> query_paths(flags.positional().begin() + 1,
                                       flags.positional().end());
  for (const std::string& path : query_paths) {
    auto q = LoadQuery(path, out);
    if (!q) return 1;
    if (q->directed() != reader.header().directed) {
      out << "error: " << path
          << ": query and stream directedness differ\n";
      return 1;
    }
    queries.push_back(std::move(*q));
  }
  const bool json = flags.Has("json");
  // Absence predicates defer emission (DESIGN.md §12) — worth a header
  // line so a reordered match stream isn't mistaken for nondeterminism.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (json) break;
    const size_t ng = queries[i].gaps().size();
    const size_t na = queries[i].absences().size();
    if (ng == 0 && na == 0) continue;
    out << "note: " << query_paths[i] << " carries " << ng
        << " gap bound(s), " << na
        << " absence predicate(s) (absence defers emission)\n";
  }
  const std::string kind = flags.GetString("engine", "tcm");
  const size_t shards = ResolveShards(flags, kind, out);
  if (shards == 0) return 1;
  const size_t threads = ResolveThreads(flags, shards);
  // --json promises machine-readable stdout: exactly one JSON line, so
  // the advisory chatter below is suppressed under it.
  if (threads > 1 && shards == 1 && queries.size() == 1 && !json) {
    out << "note: one query attaches a single engine; --threads=" << threads
        << " cannot speed up one engine (pass several query files)\n";
  }

  std::unique_ptr<SharedStreamContext> context;
  ShardedStreamContext* sharded = nullptr;
  if (shards > 1) {
    auto c = std::make_unique<ShardedStreamContext>(reader.schema(), shards,
                                                    threads);
    sharded = c.get();
    context = std::move(c);
  } else {
    context =
        std::make_unique<ParallelStreamContext>(reader.schema(), threads);
  }
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  std::vector<std::unique_ptr<MatchSink>> owned_sinks;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::unique_ptr<ContinuousEngine> engine =
        sharded != nullptr
            ? std::make_unique<ShardedTcmEngine>(queries[i], sharded->view())
            : MakeCliEngine(kind, queries[i], context->graph(), out);
    if (!engine) return 1;
    MatchSink* sink = nullptr;
    if (flags.Has("print")) {
      // Single-query output is byte-compatible with `run --print`; with
      // several queries each line is prefixed by its query index.
      const std::string prefix =
          queries.size() == 1 ? "" : "q" + std::to_string(i) + " ";
      owned_sinks.push_back(std::make_unique<StreamPrintSink>(out, prefix));
      sink = owned_sinks.back().get();
    }
    if (flags.Has("canonical")) {
      // Same semantics as `run --canonical`: collapse automorphic
      // mappings (over a counting sink when nothing is printed).
      if (sink == nullptr) {
        owned_sinks.push_back(std::make_unique<CountingSink>());
        sink = owned_sinks.back().get();
      }
      owned_sinks.push_back(
          std::make_unique<CanonicalSink>(queries[i], sink));
      sink = owned_sinks.back().get();
      if (!json) {
        out << "automorphism group size: "
            << static_cast<CanonicalSink*>(sink)->GroupSize() << "\n";
      }
    }
    if (sink != nullptr) engine->set_sink(sink);
    if (sharded != nullptr) {
      // Contiguous engine -> shard placement (shard-monotone in attach
      // order), so the global match stream keeps the serial attach order
      // (DESIGN.md §10).
      sharded->AttachToShard(i * shards / queries.size(), engine.get());
    } else {
      context->Attach(engine.get());
    }
    engines.push_back(std::move(engine));
  }

  // Window precedence as in `run`, except every query file gets a say:
  // when no --window is passed, two queries recording different w
  // windows is an error the user must break explicitly, not a silent
  // pick of the first file's value.
  const Timestamp window_flag = flags.GetInt("window", 0);
  Timestamp hint = 0;
  for (size_t i = 0; i < queries.size() && window_flag <= 0; ++i) {
    const Timestamp w = queries[i].window_hint();
    if (w <= 0) continue;
    if (hint == 0) {
      hint = w;
    } else if (hint != w) {
      out << "error: query files disagree on their recorded windows ("
          << hint << " vs " << w << " in " << query_paths[i]
          << "); pass --window=w explicitly\n";
      return 1;
    }
  }
  if (reader.header().explicit_expiry && window_flag > 0 && !json) {
    out << "note: " << reader.source()
        << " carries its own expiry schedule (expiry=explicit); "
           "--window is ignored\n";
  }
  ObsCliOptions obs;
  if (!ResolveObsFlags(flags, out, &obs)) return 1;
  ReplayOptions opts;
  opts.window = window_flag > 0 ? window_flag : hint;

  // Flight recorder: retain the last N arrivals in memory and dump them
  // as a replayable .tel on exit — including the error exit, where the
  // dump is the reproducer.
  const int64_t flight_cap = flags.GetInt("flight-record", 0);
  const std::string flight_path = flags.GetString("flight-dump");
  if ((flight_cap > 0) != !flight_path.empty()) {
    out << "error: --flight-record=N and --flight-dump=FILE go together\n";
    return 1;
  }
  if (flags.Has("flight-record") && flight_cap <= 0) {
    out << "error: --flight-record must be > 0\n";
    return 1;
  }
  const std::string flight_format = flags.GetString("flight-format", "text");
  if (flight_format != "text" && flight_format != "binary") {
    out << "error: bad --flight-format (expected 'text' or 'binary')\n";
    return 1;
  }
  if (flags.Has("flight-format") && flight_cap <= 0) {
    out << "error: --flight-format requires --flight-record/--flight-dump\n";
    return 1;
  }
  std::unique_ptr<FlightRecorder> recorder;
  if (flight_cap > 0) {
    const Timestamp flight_window =
        opts.window > 0 ? opts.window : reader.header().window;
    recorder = std::make_unique<FlightRecorder>(
        reader.schema(), flight_window, static_cast<size_t>(flight_cap));
    opts.recorder = recorder.get();
  }
  const auto dump_flight = [&]() -> bool {
    if (recorder == nullptr) return true;
    const Status ds =
        recorder->DumpTelFile(flight_path, flight_format == "binary");
    if (!ds.ok()) {
      out << "error: " << ds.ToString() << "\n";
      return false;
    }
    if (!json) {
      out << "flight recorder: dumped " << recorder->size() << " of "
          << recorder->total_recorded() << " arrivals to " << flight_path
          << "\n";
    }
    return true;
  };
  opts.time_limit_ms = flags.GetDouble("limit_ms", 0);
  opts.max_arrivals =
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("max-events", 0)));
  opts.obs = obs.obs.get();
  opts.stats_every = obs.stats_every;
  // Under --json each stats tick is its own {"type":"stats",...} line
  // ahead of the final summary line, so stdout stays line-parseable.
  opts.stats_json = json;
  opts.stats_out = &out;
  auto res = ReplayStream(&reader, opts, context.get());
  if (!res.ok()) {
    out << "error: " << res.status().ToString() << "\n";
    dump_flight();  // the retained window is the reproducer
    return 1;
  }
  const StreamResult& r = res.value();
  if (json) {
    out << "{\"stream\":\"" << JsonEscape(reader.source())
        << "\",\"engine\":\"" << kind
        << "\",\"threads\":" << r.num_threads
        << ",\"shards\":" << r.num_shards << ",\"events\":" << r.events
        << ",\"occurred\":" << r.occurred << ",\"expired\":" << r.expired
        << ",\"elapsed_ms\":" << FormatDouble(r.elapsed_ms, 3)
        << ",\"peak_bytes\":" << r.peak_memory_bytes
        << ",\"peak_event_index\":" << r.peak_memory_event_index
        << ",\"adj_scanned\":" << r.adj_entries_scanned
        << ",\"adj_matched\":" << r.adj_entries_matched
        << ",\"completed\":" << (r.completed ? "true" : "false");
    if (obs.obs != nullptr) {
      out << ",\"stages\":" << StagesJson(obs.obs->Snapshot());
    }
    out << ",\"queries\":[";
    for (size_t i = 0; i < engines.size(); ++i) {
      const EngineCounters& c = engines[i]->counters();
      out << (i == 0 ? "" : ",") << "{\"file\":\""
          << JsonEscape(query_paths[i]) << "\",\"occurred\":" << c.occurred
          << ",\"expired\":" << c.expired
          << ",\"gaps\":" << queries[i].gaps().size()
          << ",\"absence\":" << queries[i].absences().size() << "}";
    }
    out << "]}\n";
  } else {
    PrintStreamResult(engines[0]->name(), r, out);
    if (engines.size() > 1) {
      for (size_t i = 0; i < engines.size(); ++i) {
        const EngineCounters& c = engines[i]->counters();
        out << "  q" << i << " " << query_paths[i]
            << " occurred=" << c.occurred << " expired=" << c.expired
            << " gaps=" << queries[i].gaps().size()
            << " absence=" << queries[i].absences().size() << "\n";
      }
    }
  }
  if (!dump_flight()) return 1;
  if (FinishObs(obs, json, out) != 0) return 1;
  return r.completed ? 0 : 3;
}

int CmdSnapshot(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm snapshot <dataset> <query-file> [--window=w] "
           "[--directed] [--labels=file] [--limit_ms=T] [--print]\n";
    return 2;
  }
  if (RejectObsFlags(flags, "snapshot", out)) return 2;
  const auto ds = LoadDataset(flags, flags.positional()[0], out);
  if (!ds) return 1;
  const auto q = LoadQuery(flags.positional()[1], out);
  if (!q) return 1;
  SnapshotOptions opt;
  opt.window = flags.GetInt("window", 0);
  opt.time_limit_ms = flags.GetDouble("limit_ms", 0);
  if (flags.Has("print")) {
    const SnapshotResult res = FindAllMatches(*ds, *q, opt);
    for (const Embedding& m : res.matches) {
      StreamPrintSink(out).OnMatch(m, MatchKind::kOccurred, 1);
    }
    out << res.matches.size() << " matches"
        << (res.completed ? "" : " (INCOMPLETE)") << "\n";
    return res.completed ? 0 : 3;
  }
  const SnapshotCount res = CountAllMatches(*ds, *q, opt);
  out << res.matches << " matches"
      << (res.completed ? "" : " (INCOMPLETE)") << "\n";
  return res.completed ? 0 : 3;
}

int Main(int argc, char** argv, std::ostream& out, std::ostream& err) {
  const auto usage = [&err]() {
    err << "tcsm — time-constrained continuous subgraph matching\n"
           "subcommands:\n"
           "  stats      dataset characteristics\n"
           "  gen        synthesize a stream as a .tel file (or stdout)\n"
           "  convert    re-frame a .tel stream (text <-> binary v2)\n"
           "  gen-data   synthesize a legacy edge list (+ .labels)\n"
           "  gen-query  extract a temporal query by random walk\n"
           "  run        continuous matching over an in-memory stream\n"
           "  replay     file-driven continuous matching (.tel or stdin)\n"
           "  snapshot   one-shot matching over the full graph\n";
    return 2;
  };
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args rest;
  for (int i = 2; i < argc; ++i) rest.emplace_back(argv[i]);
  if (cmd == "stats") return CmdStats(rest, out);
  if (cmd == "gen") return CmdGen(rest, out);
  if (cmd == "convert") return CmdConvert(rest, out);
  if (cmd == "gen-data") return CmdGenData(rest, out);
  if (cmd == "gen-query") return CmdGenQuery(rest, out);
  if (cmd == "run") return CmdRun(rest, out);
  if (cmd == "replay") return CmdReplay(rest, out);
  if (cmd == "snapshot") return CmdSnapshot(rest, out);
  return usage();
}

}  // namespace tcsm::cli
