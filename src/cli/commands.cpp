#include "cli/commands.h"

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "baselines/local_enum_engine.h"
#include "baselines/post_filter_engine.h"
#include "baselines/timing_engine.h"
#include "bench_util/table_printer.h"
#include "core/automorphism.h"
#include "core/snapshot.h"
#include "core/stream_driver.h"
#include "core/tcm_engine.h"
#include "exec/parallel_context.h"
#include "datasets/presets.h"
#include "datasets/synthetic.h"
#include "graph/graph_io.h"
#include "query/query_io.h"
#include "querygen/query_generator.h"

namespace tcsm::cli {
namespace {

/// Tiny flag parser: positional arguments plus --key=value / --switch.
class FlagSet {
 public:
  explicit FlagSet(const Args& args) {
    for (const std::string& a : args) {
      if (a.rfind("--", 0) == 0) {
        const size_t eq = a.find('=');
        if (eq == std::string::npos) {
          flags_[a.substr(2)] = "";
        } else {
          flags_[a.substr(2, eq - 2)] = a.substr(eq + 1);
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }
  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& dflt = "") const {
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& name, double dflt) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : std::stod(it->second);
  }
  int64_t GetInt(const std::string& name, int64_t dflt) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : std::stoll(it->second);
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

std::optional<TemporalDataset> LoadDataset(const FlagSet& flags,
                                           const std::string& path,
                                           std::ostream& out) {
  auto ds = LoadEdgeListFile(path, flags.Has("directed"));
  if (!ds.ok()) {
    out << "error: " << ds.status().ToString() << "\n";
    return std::nullopt;
  }
  const std::string labels = flags.GetString("labels");
  if (!labels.empty()) {
    const Status s = LoadVertexLabelFile(labels, &ds.value());
    if (!s.ok()) {
      out << "error: " << s.ToString() << "\n";
      return std::nullopt;
    }
  }
  return std::move(ds).value();
}

std::optional<QueryGraph> LoadQuery(const std::string& path,
                                    std::ostream& out) {
  auto q = LoadQueryFile(path);
  if (!q.ok()) {
    out << "error: " << q.status().ToString() << "\n";
    return std::nullopt;
  }
  return std::move(q).value();
}

void PrintStats(const TemporalDataset& ds, std::ostream& out) {
  const DatasetStats s = ds.ComputeStats();
  TablePrinter table({"|V|", "|E|", "|Sv|", "|Se|", "davg", "mavg",
                      "span", "window-unit"});
  table.AddRow({std::to_string(s.num_vertices), std::to_string(s.num_edges),
                std::to_string(s.num_vertex_labels),
                std::to_string(s.num_edge_labels),
                FormatDouble(s.avg_degree, 2),
                FormatDouble(s.avg_parallel_edges, 2),
                std::to_string(s.max_ts - s.min_ts),
                FormatDouble(s.window_unit, 3)});
  table.Print(out);
}

class StreamPrintSink : public MatchSink {
 public:
  explicit StreamPrintSink(std::ostream& out) : out_(out) {}
  void OnMatch(const Embedding& m, MatchKind kind, uint64_t) override {
    out_ << (kind == MatchKind::kOccurred ? "+" : "-");
    for (size_t u = 0; u < m.vertices.size(); ++u) {
      out_ << " u" << u << ":" << m.vertices[u];
    }
    out_ << " |";
    for (size_t e = 0; e < m.edges.size(); ++e) {
      out_ << " e" << e << ":" << m.edges[e];
    }
    out_ << "\n";
  }

 private:
  std::ostream& out_;
};

}  // namespace

int CmdStats(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 1) {
    out << "usage: tcsm stats <edges-file> [--directed] [--labels=file]\n";
    return 2;
  }
  const auto ds = LoadDataset(flags, flags.positional()[0], out);
  if (!ds) return 1;
  PrintStats(*ds, out);
  return 0;
}

int CmdGenData(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm gen-data <preset|random> <out-file> [--scale=S] "
           "[--seed=K] [--vertices=N --edges=M --vlabels=a --elabels=b "
           "--parallel=p --directed]\n   presets: ";
    for (const auto& p : PresetNames()) out << p << " ";
    out << "\n";
    return 2;
  }
  const std::string kind = flags.positional()[0];
  const std::string path = flags.positional()[1];
  TemporalDataset ds;
  if (kind == "random") {
    SyntheticSpec spec;
    spec.num_vertices = static_cast<size_t>(flags.GetInt("vertices", 1000));
    spec.num_edges = static_cast<size_t>(flags.GetInt("edges", 10000));
    spec.num_vertex_labels =
        static_cast<size_t>(flags.GetInt("vlabels", 1));
    spec.num_edge_labels = static_cast<size_t>(flags.GetInt("elabels", 1));
    spec.avg_parallel_edges = flags.GetDouble("parallel", 1.5);
    spec.directed = flags.Has("directed");
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    ds = GenerateSynthetic(spec);
  } else {
    bool known = false;
    for (const auto& p : PresetNames()) known = known || p == kind;
    if (!known) {
      out << "error: unknown preset '" << kind << "'\n";
      return 1;
    }
    SyntheticSpec spec = PresetSpec(kind, flags.GetDouble("scale", 1.0));
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", spec.seed));
    ds = GenerateSynthetic(spec);
  }
  const Status s = SaveEdgeListFile(ds, path);
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  // Vertex labels go to a sibling file.
  std::ofstream lf(path + ".labels");
  for (size_t v = 0; v < ds.vertex_labels.size(); ++v) {
    lf << v << ' ' << ds.vertex_labels[v] << '\n';
  }
  out << "wrote " << ds.NumEdges() << " edges / " << ds.NumVertices()
      << " vertices to " << path << " (+ " << path << ".labels)\n";
  PrintStats(ds, out);
  return 0;
}

int CmdGenQuery(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm gen-query <edges-file> <out-file> [--size=m] "
           "[--density=d] [--window=w] [--seed=K] [--directed] "
           "[--labels=file]\n";
    return 2;
  }
  const auto ds = LoadDataset(flags, flags.positional()[0], out);
  if (!ds) return 1;
  QueryGenOptions opt;
  opt.num_edges = static_cast<size_t>(flags.GetInt("size", 5));
  opt.density = flags.GetDouble("density", 0.5);
  opt.window = flags.GetInt("window", 0);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  QueryGraph q;
  if (!GenerateQuery(*ds, opt, &rng, &q)) {
    out << "error: could not extract a connected query of size "
        << opt.num_edges << "\n";
    return 1;
  }
  const Status s = SaveQueryFile(q, flags.positional()[1]);
  if (!s.ok()) {
    out << "error: " << s.ToString() << "\n";
    return 1;
  }
  out << "wrote query (|V|=" << q.NumVertices() << ", |E|=" << q.NumEdges()
      << ", density=" << FormatDouble(q.OrderDensity(), 2) << ") to "
      << flags.positional()[1] << "\n";
  return 0;
}

int CmdRun(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2 || !flags.Has("window")) {
    out << "usage: tcsm run <edges-file> <query-file> --window=w "
           "[--directed] [--labels=file] [--limit_ms=T] [--threads=N] "
           "[--engine=tcm|timing|symbi|local] [--print] [--canonical]\n";
    return 2;
  }
  const auto ds = LoadDataset(flags, flags.positional()[0], out);
  if (!ds) return 1;
  const auto q = LoadQuery(flags.positional()[1], out);
  if (!q) return 1;
  if (q->directed() != ds->directed) {
    out << "error: query and data graph directedness differ\n";
    return 1;
  }
  const size_t threads =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("threads", 1)));
  if (threads > 1) {
    // Fan-out shards *engines*; this subcommand attaches exactly one, so
    // the run stays serial however many workers the pool has. Say so,
    // rather than letting the header's threads= field suggest a parallel
    // measurement.
    out << "note: run attaches a single engine; --threads=" << threads
        << " shards per-engine work and cannot speed up one engine\n";
  }

  // The context owns the one shared sliding-window graph; the engine is a
  // read-only view attached to it. At --threads=1 (the default) the
  // parallel context spawns no workers and is the serial context.
  ParallelStreamContext context(GraphSchema{ds->directed, ds->vertex_labels},
                                threads);
  std::unique_ptr<ContinuousEngine> engine;
  const std::string kind = flags.GetString("engine", "tcm");
  if (kind == "tcm") {
    engine = std::make_unique<TcmEngine>(*q, context.graph());
  } else if (kind == "timing") {
    engine = std::make_unique<TimingEngine>(*q, context.graph());
  } else if (kind == "symbi") {
    engine = std::make_unique<PostFilterEngine>(*q, context.graph());
  } else if (kind == "local") {
    engine = std::make_unique<LocalEnumEngine>(*q, context.graph());
  } else {
    out << "error: unknown engine '" << kind << "'\n";
    return 1;
  }
  context.Attach(engine.get());

  StreamPrintSink print_sink(out);
  CountingSink counting_sink;
  MatchSink* sink = flags.Has("print")
                        ? static_cast<MatchSink*>(&print_sink)
                        : static_cast<MatchSink*>(&counting_sink);
  // --canonical: collapse automorphic mappings to one pattern instance.
  std::unique_ptr<CanonicalSink> canonical;
  if (flags.Has("canonical")) {
    canonical = std::make_unique<CanonicalSink>(*q, sink);
    out << "automorphism group size: " << canonical->GroupSize() << "\n";
    sink = canonical.get();
  }
  engine->set_sink(sink);
  StreamConfig config;
  config.window = flags.GetInt("window", 0);
  config.time_limit_ms = flags.GetDouble("limit_ms", 0);
  const StreamResult res = RunStream(*ds, config, &context);
  out << "engine=" << engine->name() << " threads=" << res.num_threads
      << " events=" << res.events
      << " occurred=" << res.occurred << " expired=" << res.expired
      << " elapsed_ms=" << FormatDouble(res.elapsed_ms, 2)
      << " peak_bytes=" << res.peak_memory_bytes
      << " adj_scanned=" << res.adj_entries_scanned
      << " adj_matched=" << res.adj_entries_matched
      << (res.completed ? "" : " (INCOMPLETE: limit hit)") << "\n";
  return res.completed ? 0 : 3;
}

int CmdSnapshot(const Args& args, std::ostream& out) {
  const FlagSet flags(args);
  if (flags.positional().size() != 2) {
    out << "usage: tcsm snapshot <edges-file> <query-file> [--window=w] "
           "[--directed] [--labels=file] [--limit_ms=T] [--print]\n";
    return 2;
  }
  const auto ds = LoadDataset(flags, flags.positional()[0], out);
  if (!ds) return 1;
  const auto q = LoadQuery(flags.positional()[1], out);
  if (!q) return 1;
  SnapshotOptions opt;
  opt.window = flags.GetInt("window", 0);
  opt.time_limit_ms = flags.GetDouble("limit_ms", 0);
  if (flags.Has("print")) {
    const SnapshotResult res = FindAllMatches(*ds, *q, opt);
    for (const Embedding& m : res.matches) {
      StreamPrintSink(out).OnMatch(m, MatchKind::kOccurred, 1);
    }
    out << res.matches.size() << " matches"
        << (res.completed ? "" : " (INCOMPLETE)") << "\n";
    return res.completed ? 0 : 3;
  }
  const SnapshotCount res = CountAllMatches(*ds, *q, opt);
  out << res.matches << " matches"
      << (res.completed ? "" : " (INCOMPLETE)") << "\n";
  return res.completed ? 0 : 3;
}

int Main(int argc, char** argv, std::ostream& out, std::ostream& err) {
  const auto usage = [&err]() {
    err << "tcsm — time-constrained continuous subgraph matching\n"
           "subcommands:\n"
           "  stats      dataset characteristics\n"
           "  gen-data   synthesize a temporal edge list\n"
           "  gen-query  extract a temporal query by random walk\n"
           "  run        continuous matching over a stream\n"
           "  snapshot   one-shot matching over the full graph\n";
    return 2;
  };
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args rest;
  for (int i = 2; i < argc; ++i) rest.emplace_back(argv[i]);
  if (cmd == "stats") return CmdStats(rest, out);
  if (cmd == "gen-data") return CmdGenData(rest, out);
  if (cmd == "gen-query") return CmdGenQuery(rest, out);
  if (cmd == "run") return CmdRun(rest, out);
  if (cmd == "snapshot") return CmdSnapshot(rest, out);
  return usage();
}

}  // namespace tcsm::cli
