// Periodic stream statistics (--stats-every=N): one text or JSON line
// every N delivered events with events/sec, live window occupancy,
// per-stage latency quantiles over the tick interval, and scan
// selectivity (DESIGN.md §11).
#ifndef TCSM_OBS_STATS_REPORTER_H_
#define TCSM_OBS_STATS_REPORTER_H_

#include <cstddef>
#include <iosfwd>

#include "common/timer.h"
#include "core/engine.h"
#include "obs/observability.h"

namespace tcsm {

class StatsReporter {
 public:
  /// Disabled (every tick check is one branch) when `obs` is null,
  /// `every_events` is 0, or `out` is null.
  StatsReporter(Observability* obs, size_t every_events, bool json,
                std::ostream* out);

  bool enabled() const {
    return obs_ != nullptr && every_ > 0 && out_ != nullptr;
  }

  /// True when the event total just crossed a tick boundary — same
  /// cadence arithmetic as the drivers' memory sampling, so a batch that
  /// jumps several boundaries still yields exactly one tick.
  bool Due(size_t events_total) const {
    return enabled() && events_total / every_ != last_events_ / every_;
  }

  /// Emit one stats line; `agg` is the contexts' aggregated engine
  /// counters at this point of the stream. Also republishes them into
  /// the registry's engine.* gauges.
  void Tick(size_t events_total, size_t live_edges,
            const EngineCounters& agg);

 private:
  Observability* const obs_;
  const size_t every_;
  const bool json_;
  std::ostream* const out_;
  StopWatch watch_;
  double last_ms_ = 0.0;
  size_t last_events_ = 0;
  EngineCounters last_agg_;
  MetricsSnapshot last_snap_;
};

}  // namespace tcsm

#endif  // TCSM_OBS_STATS_REPORTER_H_
