// RAII stage timing helpers bridging the hot paths to the metrics
// registry and the trace writer (DESIGN.md §11).
//
// Both helpers honor the no-op contract: with null handles they never
// read the clock, so an instrumented site with observability off costs
// two pointer tests.
#ifndef TCSM_OBS_STAGE_TIMER_H_
#define TCSM_OBS_STAGE_TIMER_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tcsm {

namespace obs_internal {

inline uint64_t DurationNs(std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point end) {
  return end < start
             ? 0
             : static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       end - start)
                       .count());
}

}  // namespace obs_internal

/// Times one scope: on destruction observes the elapsed nanoseconds into
/// `hist` (if non-null) and emits a trace span (if `trace` non-null).
/// `name`/`cat`/`arg_key` must be string literals.
class ScopedStage {
 public:
  ScopedStage(Histogram* hist, TraceWriter* trace, const char* name,
              const char* cat, const char* arg_key = nullptr,
              uint64_t arg_value = 0)
      : hist_(hist),
        trace_(trace),
        name_(name),
        cat_(cat),
        arg_key_(arg_key),
        arg_value_(arg_value) {
    if (hist_ != nullptr || trace_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  ~ScopedStage() {
    if (hist_ == nullptr && trace_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const uint64_t dur = obs_internal::DurationNs(start_, end);
    if (hist_ != nullptr) hist_->Observe(dur);
    if (trace_ != nullptr) {
      trace_->Emit(name_, cat_, trace_->ToNs(start_), dur, arg_key_,
                   arg_value_);
    }
  }

 private:
  Histogram* const hist_;
  TraceWriter* const trace_;
  const char* const name_;
  const char* const cat_;
  const char* const arg_key_;
  const uint64_t arg_value_;
  std::chrono::steady_clock::time_point start_;
};

/// Driver-side bookkeeping for pipelined batch fan-out, where step
/// boundaries are only observable inside PipelineFor settle callbacks:
/// each Step() closes the span opened by the previous Step()/Restart()
/// and records it; Restart() reopens the clock after settle-side work so
/// drain/apply time is not billed to the next step.
class StepObserver {
 public:
  StepObserver(Histogram* hist, TraceWriter* trace, const char* cat)
      : hist_(hist), trace_(trace), cat_(cat) {
    if (active()) last_ = std::chrono::steady_clock::now();
  }

  bool active() const { return hist_ != nullptr || trace_ != nullptr; }

  void Step(const char* name, const char* arg_key, uint64_t arg_value) {
    if (!active()) return;
    const auto now = std::chrono::steady_clock::now();
    const uint64_t dur = obs_internal::DurationNs(last_, now);
    if (hist_ != nullptr) hist_->Observe(dur);
    if (trace_ != nullptr) {
      trace_->Emit(name, cat_, trace_->ToNs(last_), dur, arg_key, arg_value);
    }
    last_ = now;
  }

  void Restart() {
    if (active()) last_ = std::chrono::steady_clock::now();
  }

 private:
  Histogram* const hist_;
  TraceWriter* const trace_;
  const char* const cat_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace tcsm

#endif  // TCSM_OBS_STAGE_TIMER_H_
