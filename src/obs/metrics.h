// Metrics registry: named counters, gauges, and fixed-bucket latency
// histograms for the observability subsystem (DESIGN.md §11).
//
// Hot-path contract: recording into a counter or histogram is ONE
// uncontended relaxed atomic increment — every metric's storage is
// striped across kMetricStripes cache-line-aligned cells and a thread
// always touches its own stripe, so engines on different pool workers
// never bounce a cache line. Reads (Total / Snapshot) merge the stripes;
// they are monotone but not a consistent cut, which is all the stats
// surface needs. When observability is off the instrumented code holds
// null handles and skips the recording entirely (see StageMetrics), so
// the subsystem costs one pointer test per site — measured against the
// pinned bench_batching baseline by the nightly perf gate.
//
// Registration is get-or-create by name and allocates; Freeze() ends the
// registration phase, after which recording is allocation-free (pinned
// by obs_test's allocation counter). Handles returned by Add* stay valid
// for the registry's lifetime.
#ifndef TCSM_OBS_METRICS_H_
#define TCSM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tcsm {

/// Stripe count for per-thread sharded accumulation. A power of two; more
/// stripes than typical pool widths so two workers rarely share one.
inline constexpr size_t kMetricStripes = 16;

/// The calling thread's stripe: assigned round-robin on first use,
/// process-wide, so pool workers land on distinct stripes.
size_t ThisThreadMetricStripe();

struct alignas(64) MetricCell {
  std::atomic<uint64_t> value{0};
};

class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[ThisThreadMetricStripe()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Total() const {
    uint64_t total = 0;
    for (const MetricCell& c : cells_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<MetricCell, kMetricStripes> cells_;
};

/// A point-in-time value (live edges, peak bytes). Written from the
/// driver thread; relaxed atomic so snapshot readers race benignly.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
/// bucket b counts observations v with bounds[b-1] < v <= bounds[b], and
/// one implicit overflow bucket catches v > bounds.back(). Bucket
/// boundaries are fixed at registration so snapshots taken at different
/// times are always subtractable (the stats reporter's per-tick deltas).
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t v);

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  size_t num_buckets() const { return bounds_.size() + 1; }
  /// Merged view of one bucket (tests and snapshotting).
  uint64_t BucketCount(size_t bucket) const;
  uint64_t TotalCount() const;
  uint64_t TotalSum() const;

 private:
  // Stripe-major cell layout: stripe s owns cells_[s*stride_ .. +stride_)
  // = [bucket 0 .. bucket n-1, count, sum]. One stripe fits a few cache
  // lines; a thread only ever writes its own stripe.
  size_t CellIndex(size_t stripe, size_t slot) const {
    return stripe * stride_ + slot;
  }

  std::vector<uint64_t> bounds_;
  size_t stride_;
  std::vector<MetricCell> cells_;
};

/// Exponential bucket boundaries: count values start, start*factor, ...
std::vector<uint64_t> ExponentialBounds(uint64_t start, double factor,
                                        size_t count);
/// The default stage-latency boundaries: 250ns .. ~8s, factor 2. Shared
/// by every stage histogram so their snapshots line up column-for-column.
const std::vector<uint64_t>& LatencyBoundsNs();

struct HistogramSnapshot {
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1, overflow last
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Quantile estimate (q in [0,1]) with linear interpolation inside the
  /// containing bucket; the overflow bucket reports its lower bound.
  double Quantile(double q) const;
  /// this - prev, bucketwise; both snapshots must share bounds.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& prev) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Must not be called after Freeze(); a
  /// histogram re-registration must repeat the same boundaries.
  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  Histogram* AddHistogram(std::string name, std::vector<uint64_t> bounds);

  /// Ends the registration phase: recording stays allocation-free from
  /// here on and further Add* calls are invariant violations.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Merged point-in-time view of every metric, names in registration
  /// order. Allocates; meant for the stats cadence, not the hot path.
  MetricsSnapshot Snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> metric;
  };

  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
  bool frozen_ = false;
};

/// Handle bundle for every instrumented stage of the streaming path.
/// Instrumented code receives this as a possibly-null pointer: null (or a
/// null member) means observability is off and the site must do nothing.
/// The bundle is populated — against one shared registry — by
/// Observability (obs/observability.h), which also documents the metric
/// name of each handle.
struct StageMetrics {
  // Event accounting (counters).
  Counter* arrivals = nullptr;
  Counter* expirations = nullptr;
  Counter* arrival_batches = nullptr;
  Counter* expiry_batches = nullptr;
  Counter* summary_publishes = nullptr;
  // Ingest accounting (counters): records returned by / bytes consumed
  // from the StreamReader, either framing. Reconciles against
  // StreamResult.events (ingest_records ≥ arrivals + derived expirations'
  // arrivals; text streams also count dropped self loops).
  Counter* ingest_records = nullptr;
  Counter* ingest_bytes = nullptr;
  // Stream position gauges.
  Gauge* live_edges = nullptr;
  Gauge* peak_bytes = nullptr;
  Gauge* peak_event_index = nullptr;
  // Stage latency histograms (nanoseconds).
  Histogram* parse_ns = nullptr;
  Histogram* arrival_batch_ns = nullptr;
  Histogram* expiry_batch_ns = nullptr;
  Histogram* pipeline_step_ns = nullptr;
  Histogram* sink_drain_ns = nullptr;
  Histogram* shard_lane_ns = nullptr;
  Histogram* engine_update_ns = nullptr;
  Histogram* engine_search_ns = nullptr;
};

}  // namespace tcsm

#endif  // TCSM_OBS_METRICS_H_
