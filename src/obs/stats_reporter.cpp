#include "obs/stats_reporter.h"

#include <cstdio>
#include <ostream>
#include <string_view>

namespace tcsm {

namespace {

std::string Fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string Fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ShortStageName(std::string_view name) {
  if (name.substr(0, 6) == "stage.") name.remove_prefix(6);
  if (name.size() > 3 && name.substr(name.size() - 3) == "_ns") {
    name.remove_suffix(3);
  }
  return std::string(name);
}

}  // namespace

StatsReporter::StatsReporter(Observability* obs, size_t every_events,
                             bool json, std::ostream* out)
    : obs_(obs), every_(every_events), json_(json), out_(out) {}

void StatsReporter::Tick(size_t events_total, size_t live_edges,
                         const EngineCounters& agg) {
  if (!enabled()) return;
  obs_->PublishEngineCounters(agg);

  const double now_ms = watch_.ElapsedMs();
  const double interval_ms = now_ms - last_ms_;
  const double events_per_sec =
      interval_ms > 0.0
          ? static_cast<double>(events_total - last_events_) * 1000.0 /
                interval_ms
          : 0.0;
  const uint64_t scanned =
      agg.adj_entries_scanned - last_agg_.adj_entries_scanned;
  const uint64_t matched =
      agg.adj_entries_matched - last_agg_.adj_entries_matched;
  const double selectivity =
      scanned > 0 ? static_cast<double>(matched) / scanned : 0.0;

  MetricsSnapshot snap = obs_->Snapshot();
  std::ostream& out = *out_;
  if (json_) {
    out << "{\"type\":\"stats\",\"events\":" << events_total
        << ",\"events_per_sec\":" << Fmt1(events_per_sec)
        << ",\"live_edges\":" << live_edges << ",\"occurred\":" << agg.occurred
        << ",\"expired\":" << agg.expired
        << ",\"scan_selectivity\":" << Fmt3(selectivity) << ",\"stages\":{";
    bool first = true;
    for (const auto& [name, hist] : snap.histograms) {
      const HistogramSnapshot* prev = last_snap_.FindHistogram(name);
      const HistogramSnapshot delta =
          prev != nullptr ? hist.DeltaSince(*prev) : hist;
      if (delta.count == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << ShortStageName(name) << "\":{\"count\":" << delta.count
          << ",\"p50_us\":" << Fmt3(delta.Quantile(0.50) / 1000.0)
          << ",\"p99_us\":" << Fmt3(delta.Quantile(0.99) / 1000.0) << "}";
    }
    out << "}}\n";
  } else {
    out << "[stats] events=" << events_total
        << " ev_per_s=" << Fmt1(events_per_sec) << " live=" << live_edges
        << " occurred=" << agg.occurred << " expired=" << agg.expired
        << " scan_sel=" << Fmt3(selectivity);
    for (const auto& [name, hist] : snap.histograms) {
      const HistogramSnapshot* prev = last_snap_.FindHistogram(name);
      const HistogramSnapshot delta =
          prev != nullptr ? hist.DeltaSince(*prev) : hist;
      if (delta.count == 0) continue;
      const std::string stage = ShortStageName(name);
      out << " " << stage << "_p50_us=" << Fmt3(delta.Quantile(0.50) / 1000.0)
          << " " << stage << "_p99_us=" << Fmt3(delta.Quantile(0.99) / 1000.0);
    }
    out << "\n";
  }
  out.flush();

  last_ms_ = now_ms;
  last_events_ = events_total;
  last_agg_ = agg;
  last_snap_ = std::move(snap);
}

}  // namespace tcsm
