// The Observability bundle: one MetricsRegistry carrying the whole
// streaming metric taxonomy, the StageMetrics handle set handed to the
// instrumented seams, and an optional TraceWriter (DESIGN.md §11).
//
// Metric names (all registered up front, registry frozen in the ctor):
//   counters    stream.arrivals, stream.expirations,
//               stream.arrival_batches, stream.expiry_batches,
//               shard.summary_publishes, io.ingest_records,
//               io.ingest_bytes
//   gauges      stream.live_edges, stream.peak_bytes,
//               stream.peak_event_index, engine.occurred, engine.expired,
//               engine.search_nodes, engine.adj_scanned, engine.adj_matched
//   histograms  stage.parse_ns, stage.arrival_batch_ns,
//               stage.expiry_batch_ns, stage.pipeline_step_ns,
//               stage.sink_drain_ns, stage.shard_lane_ns,
//               stage.engine_update_ns, stage.engine_search_ns
//
// io.ingest_records / io.ingest_bytes count records returned by and bytes
// consumed from the StreamReader feeding a replay; stage.parse_ns times
// record parsing (per record for text framing, per block load for binary).
//
// The engine.* gauges are republished from the aggregated EngineCounters
// (by the drivers at end-of-run and by every StatsReporter tick), so
// --json, BENCH JSON, the stats line, and a registry snapshot all read
// the same source of truth.
#ifndef TCSM_OBS_OBSERVABILITY_H_
#define TCSM_OBS_OBSERVABILITY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tcsm {

class Observability {
 public:
  Observability();
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  const StageMetrics& stages() const { return stages_; }

  /// Null until EnableTrace(); instrumented seams treat null as "no
  /// spans". Tracing is opt-in because Emit() locks and allocates.
  TraceWriter* trace() const { return trace_.get(); }
  void EnableTrace();

  /// Republish the aggregated engine counters as engine.* gauges.
  void PublishEngineCounters(const EngineCounters& agg);

  MetricsSnapshot Snapshot() const { return registry_.Snapshot(); }
  MetricsRegistry& registry() { return registry_; }

 private:
  MetricsRegistry registry_;
  StageMetrics stages_;
  Gauge* engine_occurred_;
  Gauge* engine_expired_;
  Gauge* engine_search_nodes_;
  Gauge* engine_adj_scanned_;
  Gauge* engine_adj_matched_;
  std::unique_ptr<TraceWriter> trace_;
};

/// One row of the end-of-run per-stage summary (CLI text + JSON output).
struct StageSummaryRow {
  std::string stage;  // histogram name minus the "stage."/"_ns" affixes
  uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double total_ms = 0.0;
};

/// Rows for every stage histogram with at least one observation.
std::vector<StageSummaryRow> SummarizeStages(const MetricsSnapshot& snap);

}  // namespace tcsm

#endif  // TCSM_OBS_OBSERVABILITY_H_
