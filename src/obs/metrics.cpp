#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tcsm {

size_t ThisThreadMetricStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      stride_(bounds_.size() + 3),  // buckets + overflow + count + sum
      cells_(stride_ * kMetricStripes) {
  TCSM_CHECK(!bounds_.empty());
  TCSM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(uint64_t v) {
  // First bound >= v; past-the-end selects the overflow bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  const size_t stripe = ThisThreadMetricStripe();
  const size_t base = stripe * stride_;
  cells_[base + bucket].value.fetch_add(1, std::memory_order_relaxed);
  cells_[base + bounds_.size() + 1].value.fetch_add(1,
                                                    std::memory_order_relaxed);
  cells_[base + bounds_.size() + 2].value.fetch_add(v,
                                                    std::memory_order_relaxed);
}

uint64_t Histogram::BucketCount(size_t bucket) const {
  TCSM_DCHECK(bucket < num_buckets());
  uint64_t total = 0;
  for (size_t s = 0; s < kMetricStripes; ++s) {
    total += cells_[CellIndex(s, bucket)].value.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t s = 0; s < kMetricStripes; ++s) {
    total += cells_[CellIndex(s, bounds_.size() + 1)].value.load(
        std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::TotalSum() const {
  uint64_t total = 0;
  for (size_t s = 0; s < kMetricStripes; ++s) {
    total += cells_[CellIndex(s, bounds_.size() + 2)].value.load(
        std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> ExponentialBounds(uint64_t start, double factor,
                                        size_t count) {
  TCSM_CHECK(start > 0 && factor > 1.0 && count > 0);
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  double v = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t b = static_cast<uint64_t>(std::llround(v));
    // Guard against rounding producing a duplicate boundary.
    if (bounds.empty() || b > bounds.back()) bounds.push_back(b);
    v *= factor;
  }
  return bounds;
}

const std::vector<uint64_t>& LatencyBoundsNs() {
  static const std::vector<uint64_t> bounds =
      ExponentialBounds(250, 2.0, 26);  // 250ns .. ~8.4s
  return bounds;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (b >= bounds.size()) {
        // Overflow bucket: no upper bound, report its lower edge.
        return static_cast<double>(bounds.back());
      }
      const double lo = b == 0 ? 0.0 : static_cast<double>(bounds[b - 1]);
      const double hi = static_cast<double>(bounds[b]);
      const double frac =
          (target - static_cast<double>(cumulative)) / in_bucket;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(bounds.back());
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& prev) const {
  TCSM_DCHECK(bounds == prev.bounds);
  HistogramSnapshot d;
  d.bounds = bounds;
  d.buckets.resize(buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    d.buckets[b] = buckets[b] - prev.buckets[b];
  }
  d.count = count - prev.count;
  d.sum = sum - prev.sum;
  return d;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(std::string name) {
  for (const auto& named : counters_) {
    if (named.name == name) return named.metric.get();
  }
  TCSM_CHECK(!frozen_);
  counters_.push_back({std::move(name), std::make_unique<Counter>()});
  return counters_.back().metric.get();
}

Gauge* MetricsRegistry::AddGauge(std::string name) {
  for (const auto& named : gauges_) {
    if (named.name == name) return named.metric.get();
  }
  TCSM_CHECK(!frozen_);
  gauges_.push_back({std::move(name), std::make_unique<Gauge>()});
  return gauges_.back().metric.get();
}

Histogram* MetricsRegistry::AddHistogram(std::string name,
                                         std::vector<uint64_t> bounds) {
  for (const auto& named : histograms_) {
    if (named.name == name) {
      TCSM_CHECK(named.metric->bounds() == bounds);
      return named.metric.get();
    }
  }
  TCSM_CHECK(!frozen_);
  histograms_.push_back(
      {std::move(name), std::make_unique<Histogram>(std::move(bounds))});
  return histograms_.back().metric.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& named : counters_) {
    snap.counters.emplace_back(named.name, named.metric->Total());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& named : gauges_) {
    snap.gauges.emplace_back(named.name, named.metric->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& named : histograms_) {
    const Histogram& h = *named.metric;
    HistogramSnapshot hs;
    hs.bounds = h.bounds();
    hs.buckets.resize(h.num_buckets());
    for (size_t b = 0; b < h.num_buckets(); ++b) {
      hs.buckets[b] = h.BucketCount(b);
    }
    hs.count = h.TotalCount();
    hs.sum = h.TotalSum();
    snap.histograms.emplace_back(named.name, std::move(hs));
  }
  return snap;
}

}  // namespace tcsm
