#include "obs/observability.h"

#include <string_view>

namespace tcsm {

Observability::Observability() {
  stages_.arrivals = registry_.AddCounter("stream.arrivals");
  stages_.expirations = registry_.AddCounter("stream.expirations");
  stages_.arrival_batches = registry_.AddCounter("stream.arrival_batches");
  stages_.expiry_batches = registry_.AddCounter("stream.expiry_batches");
  stages_.summary_publishes = registry_.AddCounter("shard.summary_publishes");
  stages_.ingest_records = registry_.AddCounter("io.ingest_records");
  stages_.ingest_bytes = registry_.AddCounter("io.ingest_bytes");

  stages_.live_edges = registry_.AddGauge("stream.live_edges");
  stages_.peak_bytes = registry_.AddGauge("stream.peak_bytes");
  stages_.peak_event_index = registry_.AddGauge("stream.peak_event_index");
  engine_occurred_ = registry_.AddGauge("engine.occurred");
  engine_expired_ = registry_.AddGauge("engine.expired");
  engine_search_nodes_ = registry_.AddGauge("engine.search_nodes");
  engine_adj_scanned_ = registry_.AddGauge("engine.adj_scanned");
  engine_adj_matched_ = registry_.AddGauge("engine.adj_matched");

  const std::vector<uint64_t>& bounds = LatencyBoundsNs();
  stages_.parse_ns = registry_.AddHistogram("stage.parse_ns", bounds);
  stages_.arrival_batch_ns =
      registry_.AddHistogram("stage.arrival_batch_ns", bounds);
  stages_.expiry_batch_ns =
      registry_.AddHistogram("stage.expiry_batch_ns", bounds);
  stages_.pipeline_step_ns =
      registry_.AddHistogram("stage.pipeline_step_ns", bounds);
  stages_.sink_drain_ns = registry_.AddHistogram("stage.sink_drain_ns", bounds);
  stages_.shard_lane_ns = registry_.AddHistogram("stage.shard_lane_ns", bounds);
  stages_.engine_update_ns =
      registry_.AddHistogram("stage.engine_update_ns", bounds);
  stages_.engine_search_ns =
      registry_.AddHistogram("stage.engine_search_ns", bounds);

  registry_.Freeze();
}

void Observability::EnableTrace() {
  if (trace_ == nullptr) trace_ = std::make_unique<TraceWriter>();
}

void Observability::PublishEngineCounters(const EngineCounters& agg) {
  engine_occurred_->Set(static_cast<int64_t>(agg.occurred));
  engine_expired_->Set(static_cast<int64_t>(agg.expired));
  engine_search_nodes_->Set(static_cast<int64_t>(agg.search_nodes));
  engine_adj_scanned_->Set(static_cast<int64_t>(agg.adj_entries_scanned));
  engine_adj_matched_->Set(static_cast<int64_t>(agg.adj_entries_matched));
}

std::vector<StageSummaryRow> SummarizeStages(const MetricsSnapshot& snap) {
  std::vector<StageSummaryRow> rows;
  for (const auto& [name, hist] : snap.histograms) {
    if (hist.count == 0) continue;
    StageSummaryRow row;
    std::string_view stage = name;
    if (stage.substr(0, 6) == "stage.") stage.remove_prefix(6);
    if (stage.size() > 3 && stage.substr(stage.size() - 3) == "_ns") {
      stage.remove_suffix(3);
    }
    row.stage = std::string(stage);
    row.count = hist.count;
    row.p50_us = hist.Quantile(0.50) / 1000.0;
    row.p99_us = hist.Quantile(0.99) / 1000.0;
    row.total_ms = static_cast<double>(hist.sum) / 1e6;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace tcsm
