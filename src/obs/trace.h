// Chrome-trace / Perfetto span collection (DESIGN.md §11).
//
// Spans are complete-duration ("ph":"X") events recorded against a
// steady-clock epoch captured at writer construction, tagged with a
// small sequential per-thread id so the driver thread and each pool
// worker render as separate tracks. Emit() takes a mutex and may grow a
// vector — tracing is strictly opt-in (--trace-out) and is NOT part of
// the metrics-only overhead contract. Span names and categories must be
// string literals (or otherwise outlive the writer); they are written
// verbatim, unescaped, into the JSON.
#ifndef TCSM_OBS_TRACE_H_
#define TCSM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace tcsm {

class TraceWriter {
 public:
  TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Nanoseconds since the writer's epoch.
  uint64_t NowNs() const { return ToNs(std::chrono::steady_clock::now()); }
  uint64_t ToNs(std::chrono::steady_clock::time_point tp) const {
    return tp < epoch_
               ? 0
               : static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         tp - epoch_)
                         .count());
  }

  /// Record one complete-duration span on the calling thread's track.
  /// An optional single integer argument (e.g. batch size, shard index)
  /// lands in the span's "args" object.
  void Emit(const char* name, const char* cat, uint64_t start_ns,
            uint64_t dur_ns, const char* arg_key = nullptr,
            uint64_t arg_value = 0);

  size_t NumSpans() const;

  /// Serialize everything as a chrome://tracing JSON object
  /// ({"traceEvents":[...]}) with thread_name metadata records.
  void WriteJson(std::ostream& out) const;

 private:
  struct Span {
    const char* name;
    const char* cat;
    uint64_t start_ns;
    uint64_t dur_ns;
    uint32_t tid;
    const char* arg_key;  // null = no args
    uint64_t arg_value;
  };

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

}  // namespace tcsm

#endif  // TCSM_OBS_TRACE_H_
