#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ostream>

namespace tcsm {

namespace {

// Small sequential per-thread ids (0, 1, 2, ...) in first-use order, so
// trace tracks read "thread-0", "thread-1" instead of opaque native ids.
uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void TraceWriter::Emit(const char* name, const char* cat, uint64_t start_ns,
                       uint64_t dur_ns, const char* arg_key,
                       uint64_t arg_value) {
  const Span span{name, cat, start_ns, dur_ns, ThisThreadTraceId(), arg_key,
                  arg_value};
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(span);
}

size_t TraceWriter::NumSpans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void TraceWriter::WriteJson(std::ostream& out) const {
  std::vector<Span> spans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
  }
  std::vector<uint32_t> tids;
  for (const Span& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const uint32_t tid : tids) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread-" << tid
        << "\"}}";
  }
  char ts_buf[32];
  for (const Span& s : spans) {
    if (!first) out << ",";
    first = false;
    // Timestamps are integer nanoseconds; three decimals of microseconds
    // round-trips them exactly.
    out << "{\"name\":\"" << s.name << "\",\"cat\":\"" << s.cat
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid;
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", s.start_ns / 1000.0);
    out << ",\"ts\":" << ts_buf;
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", s.dur_ns / 1000.0);
    out << ",\"dur\":" << ts_buf;
    if (s.arg_key != nullptr) {
      out << ",\"args\":{\"" << s.arg_key << "\":" << s.arg_value << "}";
    }
    out << "}";
  }
  out << "]}\n";
}

}  // namespace tcsm
