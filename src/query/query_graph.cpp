#include "query/query_graph.h"

#include <sstream>

#include "common/logging.h"

namespace tcsm {

VertexId QueryGraph::AddVertex(Label label) {
  TCSM_CHECK(vertex_labels_.size() < kMaxVertices);
  vertex_labels_.push_back(label);
  incident_.emplace_back();
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

EdgeId QueryGraph::AddEdge(VertexId u, VertexId v, Label elabel) {
  TCSM_CHECK(u < vertex_labels_.size() && v < vertex_labels_.size());
  TCSM_CHECK(u != v && "self loops are not supported in query graphs");
  TCSM_CHECK(FindEdge(u, v) == kInvalidEdge &&
             "parallel query edges are not supported");
  TCSM_CHECK(edges_.size() < kMaxEdges);
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(QueryEdge{u, v, elabel});
  incident_[u].push_back(id);
  incident_[v].push_back(id);
  before_.push_back(0);
  after_.push_back(0);
  declared_before_.push_back(0);
  declared_after_.push_back(0);
  gap_related_.push_back(0);
  return id;
}

Status QueryGraph::AddOrder(EdgeId a, EdgeId b) {
  if (a >= edges_.size() || b >= edges_.size()) {
    return Status::InvalidArgument("order references unknown edge");
  }
  if (a == b) return Status::InvalidArgument("order must be irreflexive");
  if (HasBit(after_[b], a)) {
    return Status::InvalidArgument("order would create a cycle");
  }
  declared_after_[a] |= Bit(b);
  declared_before_[b] |= Bit(a);
  if (HasBit(after_[a], b)) return Status::Ok();  // already implied
  // Close transitively: everything at-or-before a precedes everything
  // at-or-after b.
  const Mask64 lows = before_[a] | Bit(a);
  const Mask64 highs = after_[b] | Bit(b);
  for (uint32_t x : BitRange(lows)) {
    after_[x] |= highs;
  }
  for (uint32_t y : BitRange(highs)) {
    before_[y] |= lows;
  }
  return Status::Ok();
}

Status QueryGraph::AddGap(EdgeId e1, EdgeId e2, Timestamp min_gap,
                          Timestamp max_gap) {
  if (e1 >= edges_.size() || e2 >= edges_.size()) {
    return Status::InvalidArgument("gap references unknown edge");
  }
  if (e1 == e2) {
    return Status::InvalidArgument("gap must relate two distinct edges");
  }
  if (min_gap < 0 || max_gap < 0) {
    return Status::InvalidArgument("gap bounds must be non-negative");
  }
  if (min_gap > max_gap) {
    return Status::InvalidArgument("gap bounds must satisfy min <= max");
  }
  if (max_gap > kMaxStreamTimestamp) {
    return Status::InvalidArgument("gap bound exceeds the timestamp range");
  }
  for (const GapConstraint& gc : gaps_) {
    if (gc.e1 == e1 && gc.e2 == e2) {
      return Status::InvalidArgument("duplicate gap for edge pair");
    }
  }
  if (min_gap >= 1) {
    // A strictly positive lower bound is an order constraint; folding it
    // into ≺ lets every order-aware code path prune with it for free.
    const Status s = AddOrder(e1, e2);
    if (!s.ok()) return s;
  }
  gaps_.push_back(GapConstraint{e1, e2, min_gap, max_gap});
  gap_related_[e1] |= Bit(e2);
  gap_related_[e2] |= Bit(e1);
  return Status::Ok();
}

Status QueryGraph::AddAbsence(VertexId u, VertexId v, Label label,
                              Timestamp delta) {
  if (u >= vertex_labels_.size() || v >= vertex_labels_.size()) {
    return Status::InvalidArgument("absence references unknown vertex");
  }
  if (u == v) {
    return Status::InvalidArgument("absence endpoints must be distinct");
  }
  if (delta < 0) {
    return Status::InvalidArgument("absence delta must be non-negative");
  }
  if (delta > kMaxStreamTimestamp) {
    return Status::InvalidArgument("absence delta exceeds the timestamp range");
  }
  absences_.push_back(AbsencePredicate{u, v, label, delta});
  return Status::Ok();
}

size_t QueryGraph::NumOrderPairs() const {
  size_t pairs = 0;
  for (const Mask64 m : after_) pairs += static_cast<size_t>(PopCount(m));
  return pairs;
}

double QueryGraph::OrderDensity() const {
  const size_t m = edges_.size();
  if (m < 2) return 0.0;
  const double total = static_cast<double>(m) * (m - 1) / 2.0;
  return static_cast<double>(NumOrderPairs()) / total;
}

EdgeId QueryGraph::FindEdge(VertexId u, VertexId v) const {
  if (u >= incident_.size()) return kInvalidEdge;
  for (EdgeId e : incident_[u]) {
    const QueryEdge& qe = edges_[e];
    if (qe.u == u && qe.v == v) return e;
    // Undirected queries treat (u, v) and (v, u) as the same edge;
    // directed queries may hold both orientations (e.g., a request and its
    // reply between the same two hosts).
    if (!directed_ && qe.u == v && qe.v == u) return e;
  }
  return kInvalidEdge;
}

Status QueryGraph::Validate() const {
  if (vertex_labels_.empty()) {
    return Status::InvalidArgument("query has no vertices");
  }
  // Connectivity via BFS over vertices (matching seeds rely on connected
  // queries: every partial embedding can be extended through an edge).
  std::vector<uint8_t> seen(vertex_labels_.size(), 0);
  std::vector<VertexId> stack{0};
  seen[0] = 1;
  size_t visited = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (EdgeId e : incident_[u]) {
      const VertexId w = edges_[e].Other(u);
      if (!seen[w]) {
        seen[w] = 1;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  if (visited != vertex_labels_.size()) {
    return Status::InvalidArgument("query graph is not connected");
  }
  return Status::Ok();
}

std::string QueryGraph::ToString() const {
  std::ostringstream os;
  os << (directed_ ? "directed" : "undirected") << " query |V|="
     << NumVertices() << " |E|=" << NumEdges()
     << " density=" << OrderDensity() << "\n";
  for (size_t v = 0; v < vertex_labels_.size(); ++v) {
    os << "  v" << v << " label=" << vertex_labels_[v] << "\n";
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    os << "  e" << e << " (" << edges_[e].u
       << (directed_ ? " -> " : " -- ") << edges_[e].v
       << ") elabel=" << edges_[e].elabel << "\n";
  }
  for (size_t a = 0; a < edges_.size(); ++a) {
    for (uint32_t b : BitRange(after_[a])) {
      os << "  e" << a << " < e" << b << "\n";
    }
  }
  for (const GapConstraint& gc : gaps_) {
    os << "  gap e" << gc.e1 << " .. e" << gc.e2 << " in [" << gc.min_gap
       << ", " << gc.max_gap << "]\n";
  }
  for (const AbsencePredicate& p : absences_) {
    os << "  absent (" << p.u << (directed_ ? " -> " : " -- ") << p.v
       << ") label=" << p.label << " delta=" << p.delta << "\n";
  }
  return os.str();
}

}  // namespace tcsm
