#include "query/query_io.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "io/tel_format.h"

namespace tcsm {

StatusOr<QueryGraph> ParseQuery(std::istream& in) {
  std::string line;
  size_t lineno = 0;
  bool have_header = false;
  size_t want_v = 0, want_e = 0;
  QueryGraph query;
  auto fail = [&](const std::string& what) {
    return Status::CorruptInput(what + " at line " + std::to_string(lineno));
  };
  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "t") {
      std::string mode;
      if (!(ls >> want_v >> want_e)) return fail("bad header");
      ls >> mode;
      query = QueryGraph(mode == "directed");
      have_header = true;
    } else if (tag == "v") {
      if (!have_header) return fail("vertex before header");
      int64_t id, label;
      if (!(ls >> id >> label)) return fail("bad vertex");
      if (static_cast<size_t>(id) != query.NumVertices()) {
        return fail("vertex ids must be dense and in order");
      }
      query.AddVertex(static_cast<Label>(label));
    } else if (tag == "e") {
      if (!have_header) return fail("edge before header");
      int64_t id, u, v, elabel = 0;
      if (!(ls >> id >> u >> v)) return fail("bad edge");
      ls >> elabel;
      if (static_cast<size_t>(id) != query.NumEdges()) {
        return fail("edge ids must be dense and in order");
      }
      if (static_cast<size_t>(u) >= query.NumVertices() ||
          static_cast<size_t>(v) >= query.NumVertices()) {
        return fail("edge endpoint out of range");
      }
      query.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                    static_cast<Label>(elabel));
    } else if (tag == "o") {
      int64_t a, b;
      if (!(ls >> a >> b)) return fail("bad order");
      if (a < 0 || b < 0) return fail("order references unknown edge");
      const Status s = query.AddOrder(static_cast<EdgeId>(a),
                                      static_cast<EdgeId>(b));
      if (!s.ok()) return fail(s.message());
    } else if (tag == "g") {
      if (!have_header) return fail("gap before header");
      int64_t a, b, min_gap, max_gap;
      if (!(ls >> a >> b >> min_gap >> max_gap)) return fail("bad gap");
      if (a < 0 || b < 0) return fail("gap references unknown edge");
      const Status s =
          query.AddGap(static_cast<EdgeId>(a), static_cast<EdgeId>(b),
                       min_gap, max_gap);
      if (!s.ok()) return fail(s.message());
    } else if (tag == "n") {
      if (!have_header) return fail("absence before header");
      int64_t u, v, label, delta;
      if (!(ls >> u >> v >> label >> delta)) return fail("bad absence");
      if (u < 0 || v < 0) return fail("absence references unknown vertex");
      if (label < 0 ||
          label > static_cast<int64_t>(std::numeric_limits<Label>::max())) {
        return fail("absence references undeclared label");
      }
      const Status s =
          query.AddAbsence(static_cast<VertexId>(u), static_cast<VertexId>(v),
                           static_cast<Label>(label), delta);
      if (!s.ok()) return fail(s.message());
    } else if (tag == "w") {
      if (!have_header) return fail("window before header");
      Timestamp w = 0;
      // Same bound as the .tel format: ts + window must never overflow,
      // and run/replay feed this hint straight into that sum.
      if (!(ls >> w) || w <= 0 || w > kMaxTelTimestamp) {
        return fail("bad window (must be a positive integer below 2^61)");
      }
      if (query.window_hint() != 0) return fail("duplicate window record");
      query.set_window_hint(w);
    } else {
      return fail("unknown tag '" + tag + "'");
    }
  }
  if (!have_header) return Status::CorruptInput("missing query header");
  if (query.NumVertices() != want_v || query.NumEdges() != want_e) {
    return Status::CorruptInput("header counts do not match body");
  }
  const Status s = query.Validate();
  if (!s.ok()) return s;
  return query;
}

StatusOr<QueryGraph> ParseQueryString(const std::string& text) {
  std::istringstream in(text);
  return ParseQuery(in);
}

StatusOr<QueryGraph> LoadQueryFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParseQuery(in);
}

std::string SerializeQuery(const QueryGraph& query) {
  std::ostringstream os;
  os << "t " << query.NumVertices() << ' ' << query.NumEdges()
     << (query.directed() ? " directed" : " undirected") << '\n';
  if (query.window_hint() > 0) os << "w " << query.window_hint() << '\n';
  for (size_t v = 0; v < query.NumVertices(); ++v) {
    os << "v " << v << ' ' << query.VertexLabel(static_cast<VertexId>(v))
       << '\n';
  }
  for (size_t e = 0; e < query.NumEdges(); ++e) {
    const QueryEdge& qe = query.Edge(static_cast<EdgeId>(e));
    os << "e " << e << ' ' << qe.u << ' ' << qe.v << ' ' << qe.elabel << '\n';
  }
  // Export the declared pairs; the closure is reconstructed on load. Pairs
  // implied by a gap with min >= 1 are skipped — reparsing the g record
  // re-declares them, so emitting both would not round-trip.
  for (size_t a = 0; a < query.NumEdges(); ++a) {
    for (uint32_t b : BitRange(query.DeclaredAfter(static_cast<EdgeId>(a)))) {
      bool implied_by_gap = false;
      for (const GapConstraint& gc : query.gaps()) {
        if (gc.e1 == a && gc.e2 == b && gc.min_gap >= 1) {
          implied_by_gap = true;
          break;
        }
      }
      if (!implied_by_gap) os << "o " << a << ' ' << b << '\n';
    }
  }
  for (const GapConstraint& gc : query.gaps()) {
    os << "g " << gc.e1 << ' ' << gc.e2 << ' ' << gc.min_gap << ' '
       << gc.max_gap << '\n';
  }
  for (const AbsencePredicate& p : query.absences()) {
    os << "n " << p.u << ' ' << p.v << ' ' << p.label << ' ' << p.delta
       << '\n';
  }
  return os.str();
}

Status SaveQueryFile(const QueryGraph& query, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << SerializeQuery(query);
  return Status::Ok();
}

}  // namespace tcsm
