// Text format for temporal query graphs:
//
//   t <num_vertices> <num_edges> [directed]
//   v <id> <label>
//   e <id> <u> <v> [elabel]
//   o <a> <b>          # edge a precedes edge b (a ≺ b)
//   g <a> <b> <min> <max>   # min <= ts(b) - ts(a) <= max (min >= 1 => a ≺ b)
//   n <u> <v> <label> <delta>  # emit only if no such data edge arrives
//                              # within delta of the completing edge
//   w <delta>          # suggested replay window (optional, at most once)
//
// Vertices and edges must be declared with dense, in-order ids. The
// normative specification lives in docs/FILE_FORMATS.md.
#ifndef TCSM_QUERY_QUERY_IO_H_
#define TCSM_QUERY_QUERY_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "query/query_graph.h"

namespace tcsm {

StatusOr<QueryGraph> ParseQuery(std::istream& in);
StatusOr<QueryGraph> ParseQueryString(const std::string& text);
StatusOr<QueryGraph> LoadQueryFile(const std::string& path);

std::string SerializeQuery(const QueryGraph& query);
Status SaveQueryFile(const QueryGraph& query, const std::string& path);

}  // namespace tcsm

#endif  // TCSM_QUERY_QUERY_IO_H_
