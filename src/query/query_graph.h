// Temporal query graph q = (V(q), E(q), L_q, ≺) — Definition II.2 of the
// paper. The strict partial order ≺ on edges is kept transitively closed in
// two 64-bit masks per edge, so temporal-relationship tests during
// filtering and backtracking are single AND instructions.
#ifndef TCSM_QUERY_QUERY_GRAPH_H_
#define TCSM_QUERY_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "common/bitmask.h"
#include "common/status.h"
#include "common/types.h"

namespace tcsm {

/// A query edge between vertices u and v. For directed queries the edge
/// points u -> v; for undirected queries (u, v) is storage order only.
struct QueryEdge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Label elabel = 0;

  VertexId Other(VertexId x) const { return x == u ? v : u; }
};

/// Inter-edge gap bound: min_gap <= ts(e2) - ts(e1) <= max_gap (inclusive).
/// min_gap >= 1 implies e1 ≺ e2 and is folded into the order relation.
struct GapConstraint {
  EdgeId e1 = kInvalidEdge;
  EdgeId e2 = kInvalidEdge;
  Timestamp min_gap = 0;
  Timestamp max_gap = 0;
};

/// Absence predicate: an embedding completed at time T is emitted only if
/// no data edge (img(u), img(v)) with label `label` — other than the
/// embedding's own edges — arrives with timestamp in [T, T + delta]. For
/// undirected queries either orientation of the data edge violates.
/// Emission is deferred until the absence window resolves (DESIGN.md §12).
struct AbsencePredicate {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Label label = 0;
  Timestamp delta = 0;
};

class QueryGraph {
 public:
  /// Maximum query size supported by the bitmask representation. The paper
  /// evaluates query sizes 5..15 edges.
  static constexpr uint32_t kMaxVertices = 64;
  static constexpr uint32_t kMaxEdges = 64;

  explicit QueryGraph(bool directed = false) : directed_(directed) {}

  bool directed() const { return directed_; }

  VertexId AddVertex(Label label);

  /// Adds an edge between distinct vertices; parallel query edges and self
  /// loops are rejected (query graphs are simple; only the *data* graph is
  /// a multigraph — Section II).
  EdgeId AddEdge(VertexId u, VertexId v, Label elabel = 0);

  /// Declares a ≺ b and closes the relation transitively. Fails if it
  /// would create a cycle (the relation must stay a strict partial order).
  Status AddOrder(EdgeId a, EdgeId b);

  /// Declares min_gap <= ts(e2) - ts(e1) <= max_gap (inclusive, both >= 0).
  /// min_gap >= 1 additionally declares e1 ≺ e2 (and can therefore fail
  /// with a cycle like AddOrder). One gap per ordered edge pair.
  Status AddGap(EdgeId e1, EdgeId e2, Timestamp min_gap, Timestamp max_gap);

  /// Declares an absence predicate on the images of query vertices u != v.
  Status AddAbsence(VertexId u, VertexId v, Label label, Timestamp delta);

  size_t NumVertices() const { return vertex_labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  Label VertexLabel(VertexId v) const { return vertex_labels_[v]; }
  const QueryEdge& Edge(EdgeId e) const { return edges_[e]; }

  /// Edge ids incident to v.
  const std::vector<EdgeId>& IncidentEdges(VertexId v) const {
    return incident_[v];
  }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(incident_[v].size());
  }

  /// {e' : e' ≺ e} — edges that must be matched to strictly smaller
  /// timestamps than e's image (transitively closed).
  Mask64 Before(EdgeId e) const { return before_[e]; }
  /// {e' : e ≺ e'} (transitively closed).
  Mask64 After(EdgeId e) const { return after_[e]; }
  /// All edges temporally related to e (either direction).
  Mask64 Related(EdgeId e) const { return before_[e] | after_[e]; }

  /// The pairs as declared by AddOrder, before transitive closure.
  /// Algorithm 2's greedy score counts declared pairs (this is the only
  /// reading consistent with Example IV.2 of the paper); all matching
  /// semantics use the closed relation.
  Mask64 DeclaredAfter(EdgeId e) const { return declared_after_[e]; }
  Mask64 DeclaredRelated(EdgeId e) const {
    return declared_after_[e] | declared_before_[e];
  }

  bool Precedes(EdgeId a, EdgeId b) const { return HasBit(after_[a], b); }

  const std::vector<GapConstraint>& gaps() const { return gaps_; }
  const std::vector<AbsencePredicate>& absences() const { return absences_; }

  /// Edges sharing a gap constraint with e (either role). Disjoint from
  /// the order masks unless the gap also implied an order; engines that
  /// prune with gap bounds treat GapRelated like Related when deciding
  /// whether an unmapped edge still cares about e's timestamp.
  Mask64 GapRelated(EdgeId e) const { return gap_related_[e]; }

  /// Number of ordered pairs in ≺ (after transitive closure).
  size_t NumOrderPairs() const;

  /// Density of the temporal order: |≺| / C(|E|, 2) (Section VI,
  /// "Queries"). Zero for single-edge queries.
  double OrderDensity() const;

  /// Returns the edge id between u and v, or kInvalidEdge.
  EdgeId FindEdge(VertexId u, VertexId v) const;

  /// Structural validation: connectivity, label sanity. The order is kept
  /// valid by construction.
  Status Validate() const;

  std::string ToString() const;

  /// Suggested replay window delta, carried by query files as a `w`
  /// record (docs/FILE_FORMATS.md): a query is authored against a window
  /// size, so shipping the two together keeps a file pair runnable
  /// without out-of-band parameters. 0 = no suggestion; never consulted
  /// by the matching semantics themselves.
  Timestamp window_hint() const { return window_hint_; }
  void set_window_hint(Timestamp window) { window_hint_ = window; }

 private:
  bool directed_;
  Timestamp window_hint_ = 0;
  std::vector<Label> vertex_labels_;
  std::vector<QueryEdge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
  std::vector<Mask64> before_;
  std::vector<Mask64> after_;
  std::vector<Mask64> declared_before_;
  std::vector<Mask64> declared_after_;
  std::vector<Mask64> gap_related_;
  std::vector<GapConstraint> gaps_;
  std::vector<AbsencePredicate> absences_;
};

}  // namespace tcsm

#endif  // TCSM_QUERY_QUERY_GRAPH_H_
