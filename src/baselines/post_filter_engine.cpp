#include "baselines/post_filter_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "filter/maxmin_index.h"  // StaticFeasible

namespace tcsm {

PostFilterEngine::PostFilterEngine(const QueryGraph& query,
                                   const TemporalGraph& graph)
    : query_(query),
      dag_(QueryDag::BuildBestDag(query_)),
      g_(graph),
      dcs_(&query_, &dag_) {
  TCSM_CHECK(query_.Validate().ok());
  TCSM_CHECK(query_.directed() == g_.directed());
  vmap_.assign(query_.NumVertices(), kInvalidVertex);
  emap_.assign(query_.NumEdges(), kInvalidEdge);
  ets_.assign(query_.NumEdges(), 0);
  InitAbsence(query_);
}

void PostFilterEngine::ApplyTriples(const TemporalEdge& ed, bool inserting) {
  for (EdgeId qe = 0; qe < query_.NumEdges(); ++qe) {
    for (const bool flip : {false, true}) {
      if (!StaticFeasible(query_, g_, qe, ed, flip)) continue;
      if (inserting) {
        dcs_.Insert(qe, ed, flip);
      } else {
        dcs_.Remove(qe, ed, flip);
      }
    }
  }
}

void PostFilterEngine::OnEdgeInserted(const TemporalEdge& ed) {
  AbsenceArrival(ed);
  ApplyTriples(ed, /*inserting=*/true);
  FindMatches(ed, MatchKind::kOccurred);
}

void PostFilterEngine::OnEdgeExpiring(const TemporalEdge& ed) {
  FindMatches(ed, MatchKind::kExpired);
}

void PostFilterEngine::OnEdgeRemoved(const TemporalEdge& ed) {
  // StaticFeasible only reads labels, so the verdicts are identical before
  // and after the graph deletion.
  ApplyTriples(ed, /*inserting=*/false);
}

void PostFilterEngine::FindMatches(const TemporalEdge& ed, MatchKind kind) {
  kind_ = kind;
  timed_out_ = false;
  mapped_vertices_ = 0;
  used_data_.clear();
  std::fill(vmap_.begin(), vmap_.end(), kInvalidVertex);
  std::fill(emap_.begin(), emap_.end(), kInvalidEdge);

  std::vector<std::pair<EdgeId, bool>> seeds;
  dcs_.EdgesOf(ed.id, &seeds);
  for (const auto& [qe, flip] : seeds) {
    const QueryEdge& q = query_.Edge(qe);
    const VertexId img_u = flip ? ed.dst : ed.src;
    const VertexId img_v = flip ? ed.src : ed.dst;
    if (!dcs_.D2(q.u, img_u) || !dcs_.D2(q.v, img_v)) continue;
    seed_edge_ = qe;
    vmap_[q.u] = img_u;
    vmap_[q.v] = img_v;
    mapped_vertices_ = Bit(q.u) | Bit(q.v);
    used_data_.insert(img_u);
    used_data_.insert(img_v);
    emap_[qe] = ed.id;
    ets_[qe] = ed.ts;
    ExtendVertices();
    used_data_.clear();
    mapped_vertices_ = 0;
    if (timed_out_) return;
  }
}

bool PostFilterEngine::ExtendVertices() {
  ++counters_.search_nodes;
  if (deadline_ != nullptr && deadline_->Expired()) {
    timed_out_ = true;
    return false;
  }
  if (static_cast<size_t>(PopCount(mapped_vertices_)) ==
      query_.NumVertices()) {
    // All vertices mapped: enumerate parallel-edge assignments for the
    // remaining query edges, then post-check the temporal order.
    unassigned_edges_.clear();
    for (EdgeId qe = 0; qe < query_.NumEdges(); ++qe) {
      if (qe != seed_edge_) unassigned_edges_.push_back(qe);
    }
    AssignEdges(0);
    return true;
  }
  // Extendable vertex with the fewest DCS candidates.
  VertexId best_u = kInvalidVertex;
  EdgeId best_via = kInvalidEdge;
  const DcsIndex::NbrMap* best_map = nullptr;
  size_t best_size = SIZE_MAX;
  for (VertexId u = 0; u < query_.NumVertices(); ++u) {
    if (HasBit(mapped_vertices_, u)) continue;
    for (const EdgeId f : query_.IncidentEdges(u)) {
      const VertexId u2 = query_.Edge(f).Other(u);
      if (!HasBit(mapped_vertices_, u2)) continue;
      const DcsIndex::NbrMap* cmap = dcs_.Candidates(f, u2, vmap_[u2]);
      const size_t size = cmap == nullptr ? 0 : cmap->size();
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_via = f;
        best_map = cmap;
      }
    }
  }
  TCSM_CHECK(best_u != kInvalidVertex);
  if (best_map == nullptr || best_map->empty()) return false;
  for (const auto& [w, cnt] : *best_map) {
    (void)cnt;
    if (!dcs_.D2(best_u, w)) continue;
    if (used_data_.count(w) > 0) continue;
    bool ok = true;
    for (const EdgeId f2 : query_.IncidentEdges(best_u)) {
      if (f2 == best_via) continue;
      const VertexId u2 = query_.Edge(f2).Other(best_u);
      if (!HasBit(mapped_vertices_, u2)) continue;
      const DcsIndex::NbrMap* m2 = dcs_.Candidates(f2, u2, vmap_[u2]);
      if (m2 == nullptr || m2->count(w) == 0) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    vmap_[best_u] = w;
    mapped_vertices_ |= Bit(best_u);
    used_data_.insert(w);
    ExtendVertices();
    used_data_.erase(w);
    mapped_vertices_ &= ~Bit(best_u);
    if (timed_out_) return false;
  }
  return true;
}

bool PostFilterEngine::AssignEdges(size_t edge_idx) {
  ++counters_.search_nodes;
  if (deadline_ != nullptr && deadline_->Expired()) {
    timed_out_ = true;
    return false;
  }
  if (edge_idx == unassigned_edges_.size()) {
    ReportIfTimeConstrained();
    return true;
  }
  const EdgeId qe = unassigned_edges_[edge_idx];
  const QueryEdge& q = query_.Edge(qe);
  const std::vector<ParallelEdge>* plist =
      dcs_.Parallel(qe, vmap_[q.u], vmap_[q.v]);
  if (plist == nullptr) return true;
  for (const ParallelEdge& cand : *plist) {
    emap_[qe] = cand.edge;
    ets_[qe] = cand.ts;
    if (!AssignEdges(edge_idx + 1)) return false;
  }
  return true;
}

void PostFilterEngine::ReportIfTimeConstrained() {
  // Post-filter: verify every ordered pair of the temporal order.
  for (EdgeId a = 0; a < query_.NumEdges(); ++a) {
    for (const uint32_t b : BitRange(query_.After(a))) {
      if (!(ets_[a] < ets_[b])) return;
    }
  }
  // Gap bounds, post-checked the same way (DESIGN.md §12).
  for (const GapConstraint& gc : query_.gaps()) {
    const Timestamp d = ets_[gc.e2] - ets_[gc.e1];
    if (d < gc.min_gap || d > gc.max_gap) return;
  }
  Embedding embedding;
  embedding.vertices = vmap_;
  embedding.edges = emap_;
  Report(embedding, kind_, 1);
}

size_t PostFilterEngine::EstimateMemoryBytes() const {
  // Per-query state only; the shared graph is accounted by the context.
  return dcs_.EstimateMemoryBytes();
}

}  // namespace tcsm
