// Index-free baseline ("RapidFlow" stand-in; see DESIGN.md §5): on every
// update the query is re-enumerated locally around the update edge with
// plain label/degree pruning and no auxiliary index; the temporal order is
// verified only on complete embeddings. This mirrors the role RapidFlow
// plays in the paper's evaluation — a fast non-temporal continuous matcher
// whose output requires post-checking.
#ifndef TCSM_BASELINES_LOCAL_ENUM_ENGINE_H_
#define TCSM_BASELINES_LOCAL_ENUM_ENGINE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/bitmask.h"
#include "core/engine.h"
#include "graph/temporal_graph.h"

namespace tcsm {

class LocalEnumEngine : public ContinuousEngine {
 public:
  /// `graph` is the context-owned shared graph (see core/shared_context.h).
  LocalEnumEngine(const QueryGraph& query, const TemporalGraph& graph);

  LocalEnumEngine(const LocalEnumEngine&) = delete;
  LocalEnumEngine& operator=(const LocalEnumEngine&) = delete;

  std::string name() const override { return "LocalEnum-Post"; }
  void OnEdgeInserted(const TemporalEdge& ed) override;
  void OnEdgeExpiring(const TemporalEdge& ed) override;
  size_t EstimateMemoryBytes() const override;

 private:
  void FindMatches(const TemporalEdge& ed, MatchKind kind);
  void Extend(size_t step);
  void TryAssign(size_t step, EdgeId qe, const TemporalEdge& ed, VertexId a,
                 VertexId b);

  QueryGraph query_;
  const TemporalGraph& g_;  // shared, owned by the stream context
  /// order_from_[qe]: query edges in BFS order starting at qe, so every
  /// subsequent edge touches an already-covered vertex.
  std::vector<std::vector<EdgeId>> order_from_;

  MatchKind kind_ = MatchKind::kOccurred;
  bool timed_out_ = false;
  const std::vector<EdgeId>* order_ = nullptr;
  std::vector<VertexId> vmap_;
  std::vector<EdgeId> emap_;
  std::vector<Timestamp> ets_;
  Mask64 mapped_vertices_ = 0;
  Mask64 mapped_edges_ = 0;
  std::unordered_set<VertexId> used_data_;
};

}  // namespace tcsm

#endif  // TCSM_BASELINES_LOCAL_ENUM_ENGINE_H_
