#include "baselines/local_enum_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/memory_meter.h"
#include "filter/maxmin_index.h"  // StaticFeasible

namespace tcsm {

LocalEnumEngine::LocalEnumEngine(const QueryGraph& query,
                                 const TemporalGraph& graph)
    : query_(query), g_(graph) {
  TCSM_CHECK(query_.Validate().ok());
  TCSM_CHECK(query_.directed() == g_.directed());
  const size_t m = query_.NumEdges();
  order_from_.resize(m);
  for (EdgeId seed = 0; seed < m; ++seed) {
    std::vector<uint8_t> used(m, 0);
    used[seed] = 1;
    Mask64 covered = Bit(query_.Edge(seed).u) | Bit(query_.Edge(seed).v);
    auto& order = order_from_[seed];
    for (size_t step = 1; step < m; ++step) {
      EdgeId pick = kInvalidEdge;
      for (EdgeId e = 0; e < m; ++e) {
        if (used[e]) continue;
        const QueryEdge& qe = query_.Edge(e);
        if (HasBit(covered, qe.u) || HasBit(covered, qe.v)) {
          pick = e;
          break;
        }
      }
      TCSM_CHECK(pick != kInvalidEdge);
      used[pick] = 1;
      covered |= Bit(query_.Edge(pick).u) | Bit(query_.Edge(pick).v);
      order.push_back(pick);
    }
  }
  vmap_.assign(query_.NumVertices(), kInvalidVertex);
  emap_.assign(query_.NumEdges(), kInvalidEdge);
  ets_.assign(query_.NumEdges(), 0);
  InitAbsence(query_);
}

void LocalEnumEngine::OnEdgeInserted(const TemporalEdge& ed) {
  AbsenceArrival(ed);
  FindMatches(ed, MatchKind::kOccurred);
}

void LocalEnumEngine::OnEdgeExpiring(const TemporalEdge& ed) {
  FindMatches(ed, MatchKind::kExpired);
}

void LocalEnumEngine::FindMatches(const TemporalEdge& ed, MatchKind kind) {
  kind_ = kind;
  timed_out_ = false;
  for (EdgeId qe = 0; qe < query_.NumEdges(); ++qe) {
    for (const bool flip : {false, true}) {
      if (!StaticFeasible(query_, g_, qe, ed, flip)) continue;
      const QueryEdge& q = query_.Edge(qe);
      const VertexId img_u = flip ? ed.dst : ed.src;
      const VertexId img_v = flip ? ed.src : ed.dst;
      if (img_u == img_v) continue;
      order_ = &order_from_[qe];
      vmap_[q.u] = img_u;
      vmap_[q.v] = img_v;
      mapped_vertices_ = Bit(q.u) | Bit(q.v);
      mapped_edges_ = Bit(qe);
      emap_[qe] = ed.id;
      ets_[qe] = ed.ts;
      used_data_.clear();
      used_data_.insert(img_u);
      used_data_.insert(img_v);
      Extend(0);
      if (timed_out_) return;
    }
  }
}

void LocalEnumEngine::Extend(size_t step) {
  ++counters_.search_nodes;
  if (deadline_ != nullptr && deadline_->Expired()) {
    timed_out_ = true;
    return;
  }
  if (step == order_->size()) {
    // Post-check the temporal order on the complete embedding.
    for (EdgeId a = 0; a < query_.NumEdges(); ++a) {
      for (const uint32_t b : BitRange(query_.After(a))) {
        if (!(ets_[a] < ets_[b])) return;
      }
    }
    // Gap bounds, post-checked the same way (DESIGN.md §12).
    for (const GapConstraint& gc : query_.gaps()) {
      const Timestamp d = ets_[gc.e2] - ets_[gc.e1];
      if (d < gc.min_gap || d > gc.max_gap) return;
    }
    Embedding embedding;
    embedding.vertices = vmap_;
    embedding.edges = emap_;
    Report(embedding, kind_, 1);
    return;
  }
  const EdgeId qe = (*order_)[step];
  const QueryEdge& q = query_.Edge(qe);
  const bool u_mapped = HasBit(mapped_vertices_, q.u);
  const bool v_mapped = HasBit(mapped_vertices_, q.v);
  TCSM_CHECK(u_mapped || v_mapped);
  const VertexId anchor = u_mapped ? vmap_[q.u] : vmap_[q.v];
  // Candidates live in the anchor's (q.elabel, other-endpoint-label)
  // bucket; any entry outside it would fail TryAssign's label checks.
  const Label want = query_.VertexLabel(u_mapped ? q.v : q.u);
  for (const AdjEntry& adj : g_.NeighborsMatching(anchor, q.elabel, want)) {
    ++counters_.adj_entries_scanned;
    const TemporalEdge& ed = g_.Edge(adj.edge);
    if (u_mapped) {
      TryAssign(step, qe, ed, anchor, ed.Other(anchor));
    } else {
      TryAssign(step, qe, ed, ed.Other(anchor), anchor);
    }
    if (timed_out_) return;
  }
}

void LocalEnumEngine::TryAssign(size_t step, EdgeId qe,
                                const TemporalEdge& ed, VertexId a,
                                VertexId b) {
  const QueryEdge& q = query_.Edge(qe);
  if (q.elabel != ed.label) return;
  if (query_.VertexLabel(q.u) != g_.VertexLabel(a) ||
      query_.VertexLabel(q.v) != g_.VertexLabel(b)) {
    return;
  }
  if (query_.directed() && !(a == ed.src && b == ed.dst)) return;
  ++counters_.adj_entries_matched;
  const bool u_mapped = HasBit(mapped_vertices_, q.u);
  const bool v_mapped = HasBit(mapped_vertices_, q.v);
  if (u_mapped && vmap_[q.u] != a) return;
  if (v_mapped && vmap_[q.v] != b) return;
  if (!u_mapped && used_data_.count(a) > 0) return;
  if (!v_mapped && used_data_.count(b) > 0) return;
  if (!u_mapped && !v_mapped && a == b) return;
  // The same data edge cannot serve two query edges (edge injectivity).
  if (HasBit(mapped_edges_, qe)) return;
  for (const uint32_t other : BitRange(mapped_edges_)) {
    if (emap_[other] == ed.id) return;
  }

  if (!u_mapped) {
    vmap_[q.u] = a;
    mapped_vertices_ |= Bit(q.u);
    used_data_.insert(a);
  }
  if (!v_mapped) {
    vmap_[q.v] = b;
    mapped_vertices_ |= Bit(q.v);
    used_data_.insert(b);
  }
  emap_[qe] = ed.id;
  ets_[qe] = ed.ts;
  mapped_edges_ |= Bit(qe);

  Extend(step + 1);

  mapped_edges_ &= ~Bit(qe);
  if (!v_mapped) {
    used_data_.erase(b);
    mapped_vertices_ &= ~Bit(q.v);
  }
  if (!u_mapped) {
    used_data_.erase(a);
    mapped_vertices_ &= ~Bit(q.u);
  }
}

size_t LocalEnumEngine::EstimateMemoryBytes() const {
  // Index-free: only the precomputed matching orders and scratch vectors.
  size_t bytes = VectorBytes(vmap_) + VectorBytes(emap_) + VectorBytes(ets_);
  for (const auto& order : order_from_) bytes += VectorBytes(order);
  return bytes;
}

}  // namespace tcsm
