// SymBi-style baseline ("SymBi" in the paper's Section VI): continuous
// subgraph matching with the DCS structure but *without* any temporal
// filtering — every statically feasible (query edge, data edge) pair is a
// DCS edge — and with the temporal order checked only on complete
// embeddings (post-filtering). Its running time is therefore insensitive
// to the temporal-order density (Figure 8's flat curves).
#ifndef TCSM_BASELINES_POST_FILTER_ENGINE_H_
#define TCSM_BASELINES_POST_FILTER_ENGINE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/bitmask.h"
#include "core/engine.h"
#include "dag/query_dag.h"
#include "dcs/dcs_index.h"
#include "graph/temporal_graph.h"

namespace tcsm {

class PostFilterEngine : public ContinuousEngine {
 public:
  /// `graph` is the context-owned shared graph (see core/shared_context.h).
  PostFilterEngine(const QueryGraph& query, const TemporalGraph& graph);

  PostFilterEngine(const PostFilterEngine&) = delete;
  PostFilterEngine& operator=(const PostFilterEngine&) = delete;

  std::string name() const override { return "SymBi-Post"; }
  void OnEdgeInserted(const TemporalEdge& ed) override;
  void OnEdgeExpiring(const TemporalEdge& ed) override;
  void OnEdgeRemoved(const TemporalEdge& ed) override;
  size_t EstimateMemoryBytes() const override;

  const DcsIndex& dcs() const { return dcs_; }

 private:
  void ApplyTriples(const TemporalEdge& ed, bool inserting);
  void FindMatches(const TemporalEdge& ed, MatchKind kind);
  /// Vertex-only backtracking (SymBi style); edges are assigned after all
  /// vertices are mapped, and ≺ is verified on the complete assignment.
  bool ExtendVertices();
  bool AssignEdges(size_t edge_idx);
  void ReportIfTimeConstrained();

  QueryGraph query_;
  QueryDag dag_;
  const TemporalGraph& g_;  // shared, owned by the stream context
  DcsIndex dcs_;

  MatchKind kind_ = MatchKind::kOccurred;
  bool timed_out_ = false;
  EdgeId seed_edge_ = kInvalidEdge;
  std::vector<VertexId> vmap_;
  std::vector<EdgeId> emap_;
  std::vector<Timestamp> ets_;
  Mask64 mapped_vertices_ = 0;
  std::unordered_set<VertexId> used_data_;
  std::vector<EdgeId> unassigned_edges_;
};

}  // namespace tcsm

#endif  // TCSM_BASELINES_POST_FILTER_ENGINE_H_
