// Timing-style baseline (Li et al., ICDE'19; see DESIGN.md §5): the query
// edges are ordered by a linear extension of ≺ and *all* partial
// embeddings of every prefix — including complete ones — are materialized.
// Arrivals join the new edge into every position and cascade extensions
// with existing edges; expirations evict every partial containing the
// expired edge. Cheap per-event joins, but worst-case exponential space —
// the asymmetry Figure 10 demonstrates against TCM's polynomial-space
// index. A configurable record cap converts runaway materialization into
// an "unsolved" result instead of memory exhaustion.
#ifndef TCSM_BASELINES_TIMING_ENGINE_H_
#define TCSM_BASELINES_TIMING_ENGINE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitmask.h"
#include "core/engine.h"
#include "graph/temporal_graph.h"

namespace tcsm {

struct TimingConfig {
  /// Total materialized records across all levels before the engine
  /// declares overflow (results incomplete, query counted as unsolved).
  size_t max_records = 2'000'000;
};

class TimingEngine : public ContinuousEngine {
 public:
  /// `graph` is the context-owned shared graph (see core/shared_context.h).
  TimingEngine(const QueryGraph& query, const TemporalGraph& graph,
               TimingConfig config = {});

  TimingEngine(const TimingEngine&) = delete;
  TimingEngine& operator=(const TimingEngine&) = delete;

  std::string name() const override { return "Timing"; }
  void OnEdgeInserted(const TemporalEdge& ed) override;
  void OnEdgeExpiring(const TemporalEdge& ed) override;
  size_t EstimateMemoryBytes() const override;
  bool overflowed() const override { return overflowed_; }

  /// Total live records (all levels) — exposed for tests/benches.
  size_t NumRecords() const { return total_records_; }

 private:
  /// A partial embedding of the prefix order_[0..level]: vertex images in
  /// the layout covered_[level], and data edge ids per prefix position.
  struct Record {
    std::vector<VertexId> vimg;
    std::vector<EdgeId> eimg;
  };

  struct Level {
    std::unordered_map<uint64_t, Record> records;  // pid -> record
    /// Member data edge -> pids (lazily compacted).
    std::unordered_map<EdgeId, std::vector<uint64_t>> by_edge;
    /// Join key (images of shared vertices with the next level) -> pids.
    std::unordered_map<uint64_t, std::vector<uint64_t>> join_index;
  };

  /// Images of a query edge's endpoints under flip.
  static std::pair<VertexId, VertexId> ImagesOf(const TemporalEdge& ed,
                                                bool flip) {
    return flip ? std::make_pair(ed.dst, ed.src)
                : std::make_pair(ed.src, ed.dst);
  }

  /// Join key of a record at `level` for extension to level+1.
  uint64_t JoinKeyOfRecord(size_t level, const Record& rec) const;
  /// Join key required by mapping the edge of level+1 as (img_u, img_v).
  uint64_t JoinKeyOfEdge(size_t level, VertexId img_u, VertexId img_v) const;

  /// Validates injectivity/consistency/temporal order and, on success,
  /// materializes the extension of `rec` (at level-1) with `ed` at `level`
  /// and cascades it. `rec == nullptr` for level 0.
  void TryExtend(size_t level, const Record* rec, const TemporalEdge& ed,
                 bool flip);

  /// Stores a record at `level`, reports it if complete, and extends it
  /// with existing edges for level+1.
  void Store(size_t level, Record rec);

  void ReportRecord(const Record& rec, MatchKind kind);
  void EraseRecord(size_t level, uint64_t pid);

  QueryGraph query_;
  TimingConfig config_;
  const TemporalGraph& g_;  // shared, owned by the stream context

  std::vector<EdgeId> order_;          // linear extension of ≺
  std::vector<size_t> pos_of_edge_;    // query edge -> prefix position
  /// Per level: query vertices covered by the prefix, slot per vertex.
  std::vector<std::vector<VertexId>> covered_;
  std::vector<std::vector<int8_t>> vslot_;
  /// Per level: endpoints of order_[level] already covered by level-1.
  std::vector<std::vector<VertexId>> shared_;
  /// Per level: positions j < level with order_[j] ≺ order_[level].
  std::vector<std::vector<size_t>> pred_positions_;

  std::vector<Level> levels_;
  /// Live statically feasible data edges per query edge (for joins whose
  /// new edge shares no vertex with the prefix).
  std::vector<std::unordered_set<EdgeId>> feasible_live_;

  uint64_t next_pid_ = 1;
  size_t total_records_ = 0;
  bool overflowed_ = false;
};

}  // namespace tcsm

#endif  // TCSM_BASELINES_TIMING_ENGINE_H_
