#include "baselines/timing_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/memory_meter.h"
#include "filter/maxmin_index.h"  // StaticFeasible

namespace tcsm {

TimingEngine::TimingEngine(const QueryGraph& query,
                           const TemporalGraph& graph, TimingConfig config)
    : query_(query), config_(config), g_(graph) {
  TCSM_CHECK(query_.Validate().ok());
  TCSM_CHECK(query_.directed() == g_.directed());

  // Linear extension of ≺ preferring edges that touch the covered prefix
  // (connected prefixes keep joins selective).
  const size_t m = query_.NumEdges();
  std::vector<uint8_t> chosen(m, 0);
  Mask64 chosen_mask = 0;
  Mask64 covered_vertices = 0;
  for (size_t step = 0; step < m; ++step) {
    EdgeId pick = kInvalidEdge;
    bool pick_touches = false;
    for (EdgeId e = 0; e < m; ++e) {
      if (chosen[e]) continue;
      if ((query_.Before(e) & ~chosen_mask) != 0) continue;  // preds first
      const QueryEdge& q = query_.Edge(e);
      const bool touches = step == 0 || HasBit(covered_vertices, q.u) ||
                           HasBit(covered_vertices, q.v);
      if (pick == kInvalidEdge || (touches && !pick_touches)) {
        pick = e;
        pick_touches = touches;
        if (touches) break;  // first touching edge in id order
      }
    }
    TCSM_CHECK(pick != kInvalidEdge && "order must be a strict partial order");
    chosen[pick] = 1;
    chosen_mask |= Bit(pick);
    covered_vertices |= Bit(query_.Edge(pick).u) | Bit(query_.Edge(pick).v);
    order_.push_back(pick);
  }

  pos_of_edge_.assign(m, 0);
  for (size_t i = 0; i < m; ++i) pos_of_edge_[order_[i]] = i;

  covered_.resize(m);
  vslot_.resize(m);
  shared_.resize(m);
  pred_positions_.resize(m);
  std::vector<VertexId> cov;
  std::vector<int8_t> slot(query_.NumVertices(), -1);
  for (size_t i = 0; i < m; ++i) {
    const QueryEdge& q = query_.Edge(order_[i]);
    for (const VertexId w : {q.u, q.v}) {
      if (slot[w] < 0) {
        slot[w] = static_cast<int8_t>(cov.size());
        cov.push_back(w);
      }
    }
    covered_[i] = cov;
    vslot_[i] = slot;
    for (size_t j = 0; j < i; ++j) {
      if (query_.Precedes(order_[j], order_[i])) {
        pred_positions_[i].push_back(j);
      }
    }
  }
  // Endpoints of order_[i] already covered by the previous level (the join
  // attributes of the prefix join).
  for (size_t i = 1; i < m; ++i) {
    const QueryEdge& q = query_.Edge(order_[i]);
    for (const VertexId w : {q.u, q.v}) {
      if (vslot_[i - 1][w] >= 0) shared_[i].push_back(w);
    }
  }

  levels_.resize(m);
  feasible_live_.resize(m);
  InitAbsence(query_);
}

uint64_t TimingEngine::JoinKeyOfRecord(size_t level, const Record& rec) const {
  if (level + 1 >= order_.size()) return 0;
  const auto& sh = shared_[level + 1];
  VertexId a = kInvalidVertex;
  VertexId b = kInvalidVertex;
  if (!sh.empty()) a = rec.vimg[static_cast<size_t>(vslot_[level][sh[0]])];
  if (sh.size() > 1) b = rec.vimg[static_cast<size_t>(vslot_[level][sh[1]])];
  return PackPair(a, b);
}

uint64_t TimingEngine::JoinKeyOfEdge(size_t level, VertexId img_u,
                                     VertexId img_v) const {
  // `level` is the position of the new edge; key against level-1 records.
  const auto& sh = shared_[level];
  const QueryEdge& q = query_.Edge(order_[level]);
  auto image_of = [&](VertexId qv) { return qv == q.u ? img_u : img_v; };
  VertexId a = kInvalidVertex;
  VertexId b = kInvalidVertex;
  if (!sh.empty()) a = image_of(sh[0]);
  if (sh.size() > 1) b = image_of(sh[1]);
  return PackPair(a, b);
}

void TimingEngine::OnEdgeInserted(const TemporalEdge& ed) {
  AbsenceArrival(ed);
  for (size_t i = 0; i < order_.size(); ++i) {
    const EdgeId qe = order_[i];
    bool any_feasible = false;
    for (const bool flip : {false, true}) {
      if (!StaticFeasible(query_, g_, qe, ed, flip)) continue;
      any_feasible = true;
      if (overflowed_) break;
      if (i == 0) {
        TryExtend(0, nullptr, ed, flip);
        continue;
      }
      const auto [img_u, img_v] = ImagesOf(ed, flip);
      Level& prev = levels_[i - 1];
      if (shared_[i].empty()) {
        // Cartesian join: every record of the previous level qualifies.
        // (Authentically expensive; rare for connected prefixes.)
        std::vector<uint64_t> pids;
        pids.reserve(prev.records.size());
        for (const auto& [pid, rec] : prev.records) pids.push_back(pid);
        for (const uint64_t pid : pids) {
          auto it = prev.records.find(pid);
          if (it != prev.records.end()) TryExtend(i, &it->second, ed, flip);
          if (overflowed_) break;
        }
      } else {
        auto jit = prev.join_index.find(JoinKeyOfEdge(i, img_u, img_v));
        if (jit == prev.join_index.end()) continue;
        // Compact stale pids in place while joining.
        auto& pids = jit->second;
        size_t w = 0;
        for (size_t r = 0; r < pids.size(); ++r) {
          auto it = prev.records.find(pids[r]);
          if (it == prev.records.end()) continue;  // lazily evicted
          pids[w++] = pids[r];
          // Snapshot guard: only join with records that existed before
          // this arrival (newer ones already contain `ed`; extending them
          // with `ed` again would fail edge injectivity anyway).
          TryExtend(i, &it->second, ed, flip);
          if (overflowed_) break;
        }
        pids.resize(w);
      }
    }
    if (any_feasible) feasible_live_[i].insert(ed.id);
    if (overflowed_) return;
  }
}

void TimingEngine::TryExtend(size_t level, const Record* rec,
                             const TemporalEdge& ed, bool flip) {
  if (overflowed_) return;
  if (deadline_ != nullptr && deadline_->Expired()) {
    overflowed_ = true;  // treat as incomplete
    return;
  }
  ++counters_.search_nodes;
  const EdgeId qe = order_[level];
  const QueryEdge& q = query_.Edge(qe);
  const auto [img_u, img_v] = ImagesOf(ed, flip);
  if (img_u == img_v) return;

  Record next;
  if (level == 0) {
    next.vimg.resize(covered_[0].size());
    next.vimg[static_cast<size_t>(vslot_[0][q.u])] = img_u;
    next.vimg[static_cast<size_t>(vslot_[0][q.v])] = img_v;
    next.eimg.push_back(ed.id);
  } else {
    // Endpoint consistency with the prefix + vertex injectivity.
    const auto& pslot = vslot_[level - 1];
    for (const auto& [qv, img] :
         {std::make_pair(q.u, img_u), std::make_pair(q.v, img_v)}) {
      if (pslot[qv] >= 0) {
        if (rec->vimg[static_cast<size_t>(pslot[qv])] != img) return;
      } else {
        for (const VertexId existing : rec->vimg) {
          if (existing == img) return;
        }
      }
    }
    // Edge injectivity.
    for (const EdgeId existing : rec->eimg) {
      if (existing == ed.id) return;
    }
    // Temporal order against ≺-predecessors (all in the prefix, since
    // order_ is a linear extension).
    for (const size_t j : pred_positions_[level]) {
      if (!(g_.Edge(rec->eimg[j]).ts < ed.ts)) return;
    }
    // Build the extended record in the level's layout.
    next.vimg.assign(covered_[level].size(), kInvalidVertex);
    std::copy(rec->vimg.begin(), rec->vimg.end(), next.vimg.begin());
    next.vimg[static_cast<size_t>(vslot_[level][q.u])] = img_u;
    next.vimg[static_cast<size_t>(vslot_[level][q.v])] = img_v;
    next.eimg = rec->eimg;
    next.eimg.push_back(ed.id);
  }
  Store(level, std::move(next));
}

void TimingEngine::Store(size_t level, Record rec) {
  if (total_records_ >= config_.max_records) {
    overflowed_ = true;
    return;
  }
  const uint64_t pid = next_pid_++;
  Level& lv = levels_[level];
  for (const EdgeId e : rec.eimg) lv.by_edge[e].push_back(pid);
  if (level + 1 < order_.size() && !shared_[level + 1].empty()) {
    lv.join_index[JoinKeyOfRecord(level, rec)].push_back(pid);
  }
  const bool complete = level + 1 == order_.size();
  if (complete) ReportRecord(rec, MatchKind::kOccurred);

  const Record& stored =
      lv.records.emplace(pid, std::move(rec)).first->second;
  ++total_records_;
  if (complete) return;

  // Cascade: extend with existing live edges for the next position.
  const size_t nxt = level + 1;
  const EdgeId qe = order_[nxt];
  const QueryEdge& q = query_.Edge(qe);
  const auto& slot = vslot_[level];
  const bool u_cov = slot[q.u] >= 0;
  const bool v_cov = slot[q.v] >= 0;
  // Copy: `stored` may move if the records map rehashes during recursion.
  const Record snapshot = stored;
  if (u_cov || v_cov) {
    const VertexId anchor_qv = u_cov ? q.u : q.v;
    const VertexId anchor = snapshot.vimg[static_cast<size_t>(slot[anchor_qv])];
    // Candidates live in the anchor's (qe label, other-endpoint-label)
    // bucket; the graph is not mutated during matching, so the bucket list
    // is stable.
    const VertexId other_qv = (anchor_qv == q.u) ? q.v : q.u;
    for (const AdjEntry& a : g_.NeighborsMatching(
             anchor, q.elabel, query_.VertexLabel(other_qv))) {
      ++counters_.adj_entries_scanned;
      const TemporalEdge& de = g_.Edge(a.edge);
      // Orientation mapping the anchor endpoint onto `anchor`.
      const bool flip = (anchor_qv == q.u) ? (de.src != anchor)
                                           : (de.dst != anchor);
      if (!StaticFeasible(query_, g_, qe, de, flip)) continue;
      ++counters_.adj_entries_matched;
      TryExtend(nxt, &snapshot, de, flip);
      if (overflowed_) return;
    }
  } else {
    // Disconnected next edge: try every live feasible data edge.
    for (const EdgeId deid : feasible_live_[nxt]) {
      const TemporalEdge& de = g_.Edge(deid);
      for (const bool flip : {false, true}) {
        if (!StaticFeasible(query_, g_, qe, de, flip)) continue;
        TryExtend(nxt, &snapshot, de, flip);
        if (overflowed_) return;
      }
    }
  }
}

void TimingEngine::ReportRecord(const Record& rec, MatchKind kind) {
  // Gap bounds, post-checked on the complete record (DESIGN.md §12). The
  // record's edges are all live in both paths — occurred trivially,
  // expired because this runs from OnEdgeExpiring's pre-deletion phase —
  // so reading their timestamps from the graph is safe.
  for (const GapConstraint& gc : query_.gaps()) {
    const Timestamp d = g_.Edge(rec.eimg[pos_of_edge_[gc.e2]]).ts -
                        g_.Edge(rec.eimg[pos_of_edge_[gc.e1]]).ts;
    if (d < gc.min_gap || d > gc.max_gap) return;
  }
  Embedding embedding;
  embedding.vertices.assign(query_.NumVertices(), kInvalidVertex);
  embedding.edges.assign(query_.NumEdges(), kInvalidEdge);
  const size_t last = order_.size() - 1;
  for (size_t s = 0; s < covered_[last].size(); ++s) {
    embedding.vertices[covered_[last][s]] = rec.vimg[s];
  }
  for (size_t i = 0; i < order_.size(); ++i) {
    embedding.edges[order_[i]] = rec.eimg[i];
  }
  Report(embedding, kind, 1);
}

void TimingEngine::EraseRecord(size_t level, uint64_t pid) {
  Level& lv = levels_[level];
  auto it = lv.records.find(pid);
  if (it == lv.records.end()) return;
  lv.records.erase(it);
  --total_records_;
}

void TimingEngine::OnEdgeExpiring(const TemporalEdge& ed) {
  const EdgeId id = ed.id;

  // Report expiring complete embeddings, then evict at every level. This
  // hook runs while the edge is still live (two-phase expiry, DESIGN.md
  // §3), and eviction only touches materialized records — nothing here
  // may read g_.Edge(id) after the context removes the edge, since its
  // slot is reclaimed at the next insertion (DESIGN.md §7).
  const size_t last = order_.size() - 1;
  {
    Level& lv = levels_[last];
    auto bit = lv.by_edge.find(id);
    if (bit != lv.by_edge.end()) {
      for (const uint64_t pid : bit->second) {
        auto it = lv.records.find(pid);
        if (it == lv.records.end()) continue;
        ReportRecord(it->second, MatchKind::kExpired);
      }
    }
  }
  for (size_t level = 0; level < levels_.size(); ++level) {
    Level& lv = levels_[level];
    auto bit = lv.by_edge.find(id);
    if (bit == lv.by_edge.end()) continue;
    for (const uint64_t pid : bit->second) EraseRecord(level, pid);
    lv.by_edge.erase(bit);
  }
  for (auto& fl : feasible_live_) fl.erase(id);
}

size_t TimingEngine::EstimateMemoryBytes() const {
  // Per-query state only; the shared graph is accounted by the context.
  size_t bytes = 0;
  for (size_t level = 0; level < levels_.size(); ++level) {
    const Level& lv = levels_[level];
    // Record payload + map node overhead.
    const size_t rec_bytes = covered_[level].size() * sizeof(VertexId) +
                             (level + 1) * sizeof(EdgeId) +
                             2 * sizeof(std::vector<int>) + 48;
    bytes += lv.records.size() * rec_bytes;
    // Index entries: each record appears in by_edge (level+1 times) and in
    // join_index (once).
    bytes += lv.records.size() * (level + 2) * sizeof(uint64_t);
    bytes += HashMapBytes(lv.by_edge) + HashMapBytes(lv.join_index);
  }
  for (const auto& fl : feasible_live_) bytes += HashSetBytes(fl);
  return bytes;
}

}  // namespace tcsm
