// Sliding-window temporal multigraph: the "current state g of G" from
// Algorithm 1 of the paper, organized for infinite streams.
//
// Two storage-layer properties keep hot paths fast and memory bounded:
//
//  * Slot recycling — live edges occupy slots in a pooled store; an
//    expired edge returns its slot (and its two adjacency nodes) to a
//    free-list, so the live state is O(window), not O(stream length).
//    External EdgeIds stay the dense arrival indices 0, 1, 2, ... and are
//    never recycled; a sliding id ring maps an id to its current slot, and
//    the slot's stored id doubles as a generation check (a stale id can
//    resolve to "expired", never to a different edge). Removal is O(1) in
//    any order — per-endpoint node positions are stored on the slot, so
//    there is no linear-scan fallback for non-FIFO removals.
//
//  * Label-partitioned adjacency — each vertex's incident live edges are
//    bucketed by (edge label, neighbor label) signature, chronologically
//    ordered inside each bucket (arrivals append at the tail). Matching
//    code enumerates only the statically feasible bucket via
//    NeighborsMatching(v, elabel, nbr_label), so per-event work is
//    proportional to selectivity instead of degree. ForEachNeighbor
//    iterates all buckets (the flat-scan equivalent, used by the oracle
//    and the storage ablation).
//
// See DESIGN.md §7 for the layout, iteration-order guarantees, and the
// deferred-reclamation rule that keeps a removed edge's record readable
// through the NotifyRemoved phase of its own expiry event.
#ifndef TCSM_GRAPH_TEMPORAL_GRAPH_H_
#define TCSM_GRAPH_TEMPORAL_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/bloom.h"
#include "common/logging.h"
#include "common/types.h"
#include "graph/temporal_edge.h"

namespace tcsm {

/// One adjacency-list entry of a live edge.
struct AdjEntry {
  VertexId nbr;
  EdgeId edge;
  Timestamp ts;
  Label elabel;
  /// True when the edge leaves this vertex (src side). Ignored for
  /// undirected graphs.
  bool out;
};

class TemporalGraph {
 public:
  explicit TemporalGraph(bool directed = false) : directed_(directed) {}

  bool directed() const { return directed_; }

  /// Adds an isolated vertex and returns its id.
  VertexId AddVertex(Label label);

  /// Grows the vertex set to `n` vertices, new ones labeled 0.
  void EnsureVertices(size_t n);
  /// Only legal while `v` has no live incident edges: adjacency buckets
  /// are keyed by neighbor label, so relabeling a connected vertex would
  /// strand entries in stale buckets.
  void SetVertexLabel(VertexId v, Label label);

  /// Inserts a live edge (arrival event) and returns its id — the dense
  /// arrival index since the last ClearEdges(). Timestamps must be
  /// non-decreasing across insertions (streaming order). Reuses a free
  /// slot when one exists; ids are never reused. EdgeId is 32-bit, so a
  /// graph instance supports 2^32 - 1 arrivals per ClearEdges() and
  /// CHECK-fails past that — the binding bound now that slot memory no
  /// longer grows with the stream (widening the id type is the next step
  /// when a deployment needs longer unbroken streams).
  EdgeId InsertEdge(VertexId src, VertexId dst, Timestamp ts, Label label = 0);

  /// InsertEdge with a caller-assigned id. `id` must be >= the next id
  /// this graph would assign; the skipped ids become permanent holes in
  /// the id ring (Alive() false, Edge() CHECK-fails — exactly like a
  /// reclaimed id). This is how a shard keeps the *global* dense arrival
  /// ids for the subset of edges it holds, so EdgeId-keyed engine state
  /// stays identical to an unsharded run (see src/shard/). The holes are
  /// reclaimed by the same front-advance as expired ids, so IdSpan stays
  /// O(window) under FIFO expiry regardless of how sparse the subset is.
  EdgeId InsertEdgeAs(EdgeId id, VertexId src, VertexId dst, Timestamp ts,
                      Label label = 0);

  /// Removes a live edge (expiration event) in O(1) regardless of order —
  /// the slot stores both endpoint adjacency positions. The slot itself is
  /// reclaimed lazily at the next InsertEdge, so Edge(id) of the edge
  /// removed most recently stays readable until then (the NotifyRemoved
  /// phase of the shared context relies on this).
  void RemoveEdge(EdgeId id);

  size_t NumVertices() const { return vertex_labels_.size(); }
  /// Edges inserted since construction / the last ClearEdges() (== the
  /// next id to be assigned). Unlike slots, this grows with the stream.
  size_t NumEdgesEver() const { return next_id_; }
  size_t NumAliveEdges() const { return num_alive_; }

  /// Slot-pool high-water mark: the most edges that were ever live at
  /// once (plus at most one pending-reclaim tombstone). Bounded by the
  /// window, not the stream length — asserted by the storage soak test.
  size_t NumSlots() const { return slots_.size(); }
  /// Slots currently on the free-list or awaiting reclamation.
  size_t NumFreeSlots() const { return free_slots_.size() + pending_free_.size(); }
  /// Width of the id ring (distance from the oldest unreclaimed id to the
  /// next id). O(window) under FIFO expiry.
  size_t IdSpan() const { return ring_.size(); }

  Label VertexLabel(VertexId v) const { return vertex_labels_[v]; }
  /// The canonical record of a live (or most-recently-removed, see
  /// RemoveEdge) edge. CHECK-fails for ids whose slot was reclaimed.
  const TemporalEdge& Edge(EdgeId id) const {
    return slots_[ResolveSlot(id)].edge;
  }
  bool Alive(EdgeId id) const {
    if (id < base_id_ || id >= next_id_) return false;
    const uint32_t slot = ring_[id - base_id_];
    return slot != kInvalidSlot && slots_[slot].alive;
  }

  size_t Degree(VertexId v) const { return adj_[v].degree; }

  /// The exact per-vertex signature masks behind MayHaveMatching —
  /// exported so a sharded deployment can publish a vertex's filter state
  /// to the other shards (src/shard/summaries.h). False-negative-free by
  /// construction (bits are re-derived whenever a bucket count hits zero).
  const Bloom64& VertexSigAny(VertexId v) const { return adj_[v].sig_any; }
  const Bloom64& VertexSigOut(VertexId v) const { return adj_[v].sig_out; }
  const Bloom64& VertexSigIn(VertexId v) const { return adj_[v].sig_in; }

  /// Iterator over one adjacency bucket (an intrusive doubly-linked list
  /// through the node pool). Invalidated by any graph mutation.
  class NeighborIterator {
   public:
    const AdjEntry& operator*() const { return g_->nodes_[node_].entry; }
    const AdjEntry* operator->() const { return &g_->nodes_[node_].entry; }
    NeighborIterator& operator++() {
      node_ = g_->nodes_[node_].next;
      return *this;
    }
    bool operator==(const NeighborIterator& o) const {
      return node_ == o.node_;
    }
    bool operator!=(const NeighborIterator& o) const {
      return node_ != o.node_;
    }

   private:
    friend class TemporalGraph;
    NeighborIterator(const TemporalGraph* g, uint32_t node)
        : g_(g), node_(node) {}
    const TemporalGraph* g_;
    uint32_t node_;
  };

  class NeighborRange {
   public:
    NeighborIterator begin() const { return NeighborIterator(g_, head_); }
    NeighborIterator end() const { return NeighborIterator(g_, kNilNode); }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

   private:
    friend class TemporalGraph;
    NeighborRange(const TemporalGraph* g, uint32_t head, size_t size)
        : g_(g), head_(head), size_(size) {}
    const TemporalGraph* g_;
    uint32_t head_;
    size_t size_;
  };

  /// Candidate pre-filter: false means v has *no* live incident edge with
  /// this (edge label, neighbor label) signature in the wanted direction —
  /// callers may skip the bucket scan entirely. True is advisory (a Bloom
  /// bit collision or a bucket mixing directions can report true for an
  /// empty scan), so a scan gated on it visits at most what an ungated
  /// scan would. `want_out` is the direction from v's perspective and is
  /// ignored for undirected graphs. O(1): two mask probes.
  bool MayHaveMatching(VertexId v, Label elabel, Label nbr_label,
                       bool want_out) const {
    const VertexAdj& va = adj_[v];
    const Bloom64& sig =
        !directed_ ? va.sig_any : (want_out ? va.sig_out : va.sig_in);
    return sig.MayContain(PackPair(elabel, nbr_label));
  }

  /// Live incident edges of `v` whose edge label is `elabel` and whose
  /// other endpoint carries `nbr_label`, in chronological order. Both
  /// directions for directed graphs — check AdjEntry::out. Work here is
  /// proportional to the statically feasible entries only.
  NeighborRange NeighborsMatching(VertexId v, Label elabel,
                                  Label nbr_label) const {
    const auto& buckets = adj_[v].buckets;
    const auto it = buckets.find(PackPair(elabel, nbr_label));
    if (it == buckets.end()) return NeighborRange(this, kNilNode, 0);
    return NeighborRange(this, it->second.head, it->second.size);
  }

  /// All live incident edges of `v` — every bucket in turn, chronological
  /// within a bucket but unordered across buckets. This is the flat-scan
  /// equivalent of the pre-partitioned layout (storage ablation, oracle).
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    for (const auto& [sig, bucket] : adj_[v].buckets) {
      for (uint32_t n = bucket.head; n != kNilNode; n = nodes_[n].next) {
        fn(nodes_[n].entry);
      }
    }
  }

  /// All live edges in ascending id (= arrival) order.
  template <typename Fn>
  void ForEachLiveEdge(Fn&& fn) const {
    for (EdgeId id = base_id_; id < next_id_; ++id) {
      const uint32_t slot = ring_[id - base_id_];
      if (slot == kInvalidSlot || !slots_[slot].alive) continue;
      fn(slots_[slot].edge);
    }
  }

  /// Edge(id), taking the vertex the caller is scanning from as a
  /// locality hint. The single-graph store has exactly one copy of every
  /// record, so the hint is unused here; a sharded view routes the read
  /// to the shard owning `v` (which holds v's complete adjacency). Hot
  /// rescan paths use this instead of Edge() so they stay shard-local.
  const TemporalEdge& EdgeNear(VertexId v, EdgeId id) const {
    (void)v;
    return Edge(id);
  }
  /// Alive(), answered from an edge record the caller already holds —
  /// a sharded view routes by the record's endpoints instead of the id.
  bool AliveEdge(const TemporalEdge& e) const { return Alive(e.id); }

  /// Approximate heap footprint of the live state (slot + node pools,
  /// id ring, buckets, labels). O(window) under FIFO expiry.
  size_t EstimateMemoryBytes() const;

  /// Removes all edges but keeps vertices (used between experiment runs).
  /// Edge ids restart at 0.
  void ClearEdges();

 private:
  static constexpr uint32_t kNilNode = UINT32_MAX;
  static constexpr uint32_t kInvalidSlot = UINT32_MAX;

  struct AdjNode {
    AdjEntry entry;
    uint32_t prev;
    uint32_t next;
  };

  /// One (edge label, neighbor label) partition of a vertex's adjacency:
  /// an intrusive doubly-linked list through nodes_, oldest at head.
  struct Bucket {
    uint32_t head = kNilNode;
    uint32_t tail = kNilNode;
    uint32_t size = 0;
    /// Entries whose edge leaves this vertex (in-count = size - out_size);
    /// drives the direction-aware signature masks on directed graphs.
    uint32_t out_size = 0;
  };

  struct VertexAdj {
    /// Keyed by PackPair(elabel, nbr_label). Buckets persist once created
    /// (bounded by the signatures seen at this vertex).
    std::unordered_map<uint64_t, Bucket> buckets;
    size_t degree = 0;
    /// Bloom signatures over the PackPair keys of the *non-empty* buckets
    /// (split by entry direction on directed graphs). Kept exact — bits
    /// are re-derived from the buckets whenever a count drops to zero —
    /// so MayHaveMatching is false-negative-free by construction.
    Bloom64 sig_any;
    Bloom64 sig_out;
    Bloom64 sig_in;
  };

  /// Pooled storage of one live edge. `node_src`/`node_dst` are the
  /// adjacency positions that make RemoveEdge O(1).
  struct EdgeSlot {
    TemporalEdge edge;
    uint32_t node_src = kNilNode;
    uint32_t node_dst = kNilNode;
    bool alive = false;
  };

  uint32_t ResolveSlot(EdgeId id) const {
    TCSM_CHECK(id >= base_id_ && id < next_id_ && "edge id out of window");
    const uint32_t slot = ring_[id - base_id_];
    TCSM_CHECK(slot != kInvalidSlot && "edge slot already reclaimed");
    // Generation safety: the slot's stored id must match the requested id
    // (a recycled slot carries a newer id, so stale ids can never alias).
    TCSM_CHECK(slots_[slot].edge.id == id);
    return slot;
  }

  uint32_t AllocNode(const AdjEntry& entry);
  /// Appends a node for `entry` at the tail of v's matching bucket.
  uint32_t LinkNode(VertexId v, const AdjEntry& entry);
  /// Unlinks `node` from v's matching bucket and frees it.
  void UnlinkNode(VertexId v, uint32_t node);
  /// Recomputes v's signature masks from its non-empty buckets (called
  /// when an unlink empties a bucket or a direction within one).
  void RebuildSigMasks(VertexId v);
  /// Returns pending tombstone slots to the free-list and advances the id
  /// ring past fully reclaimed ids.
  void DrainPendingFrees();

  bool directed_;
  size_t num_alive_ = 0;
  std::vector<Label> vertex_labels_;
  std::vector<VertexAdj> adj_;

  // Node pool with an intrusive singly-linked free-list (through `next`).
  std::vector<AdjNode> nodes_;
  uint32_t free_node_head_ = kNilNode;

  // Slot pool. `pending_free_` holds tombstones of removed edges that are
  // reclaimed at the next InsertEdge (deferred reclamation).
  std::vector<EdgeSlot> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<uint32_t> pending_free_;

  // Sliding id -> slot map for ids in [base_id_, next_id_).
  std::deque<uint32_t> ring_;
  EdgeId base_id_ = 0;
  EdgeId next_id_ = 0;
};

}  // namespace tcsm

#endif  // TCSM_GRAPH_TEMPORAL_GRAPH_H_
