// Sliding-window temporal multigraph: the "current state g of G" from
// Algorithm 1 of the paper. Edges arrive in timestamp order and expire in
// the same order (FIFO), so per-vertex adjacency lists stay chronologically
// sorted with O(1) amortized insertion at the back and removal at the front
// (Section III, "Updating the data structures").
#ifndef TCSM_GRAPH_TEMPORAL_GRAPH_H_
#define TCSM_GRAPH_TEMPORAL_GRAPH_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/types.h"
#include "graph/temporal_edge.h"

namespace tcsm {

/// One adjacency-list entry of a live edge.
struct AdjEntry {
  VertexId nbr;
  EdgeId edge;
  Timestamp ts;
  Label elabel;
  /// True when the edge leaves this vertex (src side). Ignored for
  /// undirected graphs.
  bool out;
};

class TemporalGraph {
 public:
  explicit TemporalGraph(bool directed = false) : directed_(directed) {}

  bool directed() const { return directed_; }

  /// Adds an isolated vertex and returns its id.
  VertexId AddVertex(Label label);

  /// Grows the vertex set to `n` vertices, new ones labeled 0.
  void EnsureVertices(size_t n);
  void SetVertexLabel(VertexId v, Label label);

  /// Inserts a live edge (arrival event) and returns its id. Timestamps
  /// must be non-decreasing across insertions (streaming order).
  EdgeId InsertEdge(VertexId src, VertexId dst, Timestamp ts, Label label = 0);

  /// Removes a live edge (expiration event). O(1) when edges expire in
  /// FIFO order, which the stream driver guarantees; falls back to a linear
  /// scan otherwise so tests may remove arbitrary edges. Every removal that
  /// needed the scan is counted in non_fifo_removals() so accidental O(n)
  /// expiry paths stay visible in bench output.
  void RemoveEdge(EdgeId id);

  /// Number of RemoveEdge calls that fell back to the linear adjacency
  /// scan (the removed edge was not at the front of every endpoint deque).
  uint64_t non_fifo_removals() const { return non_fifo_removals_; }

  size_t NumVertices() const { return vertex_labels_.size(); }
  size_t NumEdgesEver() const { return edges_.size(); }
  size_t NumAliveEdges() const { return num_alive_; }

  Label VertexLabel(VertexId v) const { return vertex_labels_[v]; }
  const TemporalEdge& Edge(EdgeId id) const { return edges_[id]; }
  bool Alive(EdgeId id) const { return alive_[id]; }

  /// Live incident edges of v in chronological order (both directions for
  /// directed graphs; check AdjEntry::out).
  const std::deque<AdjEntry>& Adjacency(VertexId v) const { return adj_[v]; }
  size_t Degree(VertexId v) const { return adj_[v].size(); }

  /// Approximate heap footprint of the live state (adjacency + labels).
  size_t EstimateMemoryBytes() const;

  /// Removes all edges but keeps vertices (used between experiment runs).
  void ClearEdges();

 private:
  bool directed_;
  size_t num_alive_ = 0;
  uint64_t non_fifo_removals_ = 0;
  std::vector<Label> vertex_labels_;
  std::vector<TemporalEdge> edges_;   // all edges ever inserted
  std::vector<uint8_t> alive_;        // parallel to edges_
  std::vector<std::deque<AdjEntry>> adj_;
};

}  // namespace tcsm

#endif  // TCSM_GRAPH_TEMPORAL_GRAPH_H_
