// Text loaders/savers for temporal datasets.
//
// Edge-list format (SNAP temporal style, '#' comments):
//   src dst ts [edge_label]
// Optional vertex-label file:
//   vertex_id label
#ifndef TCSM_GRAPH_GRAPH_IO_H_
#define TCSM_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/temporal_dataset.h"

namespace tcsm {

/// Parses an edge list from a stream. Vertices are labeled 0 unless a
/// label stream is supplied via ParseVertexLabels afterwards.
StatusOr<TemporalDataset> ParseEdgeList(std::istream& in, bool directed);

/// Parses "vertex label" lines into an existing dataset.
Status ParseVertexLabels(std::istream& in, TemporalDataset* dataset);

StatusOr<TemporalDataset> LoadEdgeListFile(const std::string& path,
                                           bool directed);
Status LoadVertexLabelFile(const std::string& path, TemporalDataset* dataset);

Status SaveEdgeListFile(const TemporalDataset& dataset,
                        const std::string& path);

}  // namespace tcsm

#endif  // TCSM_GRAPH_GRAPH_IO_H_
