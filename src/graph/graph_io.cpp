#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace tcsm {

DatasetStats TemporalDataset::ComputeStats() const {
  DatasetStats s;
  s.num_vertices = vertex_labels.size();
  s.num_edges = edges.size();
  std::unordered_set<Label> vlabels(vertex_labels.begin(),
                                    vertex_labels.end());
  s.num_vertex_labels = vlabels.size();
  std::unordered_set<Label> elabels;
  std::unordered_set<uint64_t> pairs;
  for (const TemporalEdge& e : edges) {
    elabels.insert(e.label);
    const VertexId a = std::min(e.src, e.dst);
    const VertexId b = std::max(e.src, e.dst);
    pairs.insert(PackPair(a, b));
  }
  s.num_edge_labels = elabels.size();
  if (s.num_vertices > 0) {
    s.avg_degree = 2.0 * static_cast<double>(s.num_edges) /
                   static_cast<double>(s.num_vertices);
  }
  if (!pairs.empty()) {
    s.avg_parallel_edges =
        static_cast<double>(s.num_edges) / static_cast<double>(pairs.size());
  }
  if (!edges.empty()) {
    s.min_ts = edges.front().ts;
    s.max_ts = edges.back().ts;
    if (edges.size() > 1) {
      s.window_unit = static_cast<double>(s.max_ts - s.min_ts) /
                      static_cast<double>(edges.size() - 1);
    }
  }
  return s;
}

StatusOr<TemporalDataset> ParseEdgeList(std::istream& in, bool directed) {
  TemporalDataset ds;
  ds.directed = directed;
  std::string line;
  size_t lineno = 0;
  VertexId max_vertex = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    int64_t src, dst, ts;
    int64_t elabel = 0;
    if (!(ls >> src >> dst >> ts)) {
      return Status::CorruptInput("bad edge at line " + std::to_string(lineno));
    }
    ls >> elabel;  // optional
    if (src < 0 || dst < 0) {
      return Status::CorruptInput("negative vertex id at line " +
                                  std::to_string(lineno));
    }
    if (src == dst) continue;  // self loops never participate in matches
    TemporalEdge e;
    e.src = static_cast<VertexId>(src);
    e.dst = static_cast<VertexId>(dst);
    e.ts = ts;
    e.label = static_cast<Label>(elabel);
    ds.edges.push_back(e);
    max_vertex = std::max({max_vertex, e.src, e.dst});
    any = true;
  }
  ds.vertex_labels.assign(any ? max_vertex + 1 : 0, 0);
  ds.Normalize();
  return ds;
}

Status ParseVertexLabels(std::istream& in, TemporalDataset* dataset) {
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    int64_t v, label;
    if (!(ls >> v >> label) || v < 0) {
      return Status::CorruptInput("bad vertex label at line " +
                                  std::to_string(lineno));
    }
    if (static_cast<size_t>(v) >= dataset->vertex_labels.size()) {
      dataset->vertex_labels.resize(static_cast<size_t>(v) + 1, 0);
    }
    dataset->vertex_labels[static_cast<size_t>(v)] =
        static_cast<Label>(label);
  }
  return Status::Ok();
}

StatusOr<TemporalDataset> LoadEdgeListFile(const std::string& path,
                                           bool directed) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  auto result = ParseEdgeList(in, directed);
  if (result.ok()) result.value().name = path;
  return result;
}

Status LoadVertexLabelFile(const std::string& path,
                           TemporalDataset* dataset) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParseVertexLabels(in, dataset);
}

Status SaveEdgeListFile(const TemporalDataset& dataset,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << "# tcsm temporal edge list: src dst ts label\n";
  for (const TemporalEdge& e : dataset.edges) {
    out << e.src << ' ' << e.dst << ' ' << e.ts << ' ' << e.label << '\n';
  }
  return Status::Ok();
}

}  // namespace tcsm
