#include "graph/temporal_graph.h"

#include "common/memory_meter.h"

namespace tcsm {

VertexId TemporalGraph::AddVertex(Label label) {
  vertex_labels_.push_back(label);
  adj_.emplace_back();
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

void TemporalGraph::EnsureVertices(size_t n) {
  while (vertex_labels_.size() < n) AddVertex(0);
}

void TemporalGraph::SetVertexLabel(VertexId v, Label label) {
  TCSM_CHECK(v < vertex_labels_.size());
  TCSM_CHECK(adj_[v].degree == 0 &&
             "relabeling a vertex with live edges would strand bucket entries");
  vertex_labels_[v] = label;
}

uint32_t TemporalGraph::AllocNode(const AdjEntry& entry) {
  if (free_node_head_ != kNilNode) {
    const uint32_t n = free_node_head_;
    free_node_head_ = nodes_[n].next;
    nodes_[n].entry = entry;
    return n;
  }
  nodes_.push_back(AdjNode{entry, kNilNode, kNilNode});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint32_t TemporalGraph::LinkNode(VertexId v, const AdjEntry& entry) {
  const uint32_t n = AllocNode(entry);
  VertexAdj& va = adj_[v];
  const uint64_t sig = PackPair(entry.elabel, vertex_labels_[entry.nbr]);
  Bucket& bucket = va.buckets[sig];
  nodes_[n].prev = bucket.tail;
  nodes_[n].next = kNilNode;
  if (bucket.tail == kNilNode) {
    bucket.head = n;
  } else {
    nodes_[bucket.tail].next = n;
  }
  bucket.tail = n;
  ++bucket.size;
  ++va.degree;
  va.sig_any.Add(sig);
  if (directed_) {
    if (entry.out) {
      ++bucket.out_size;
      va.sig_out.Add(sig);
    } else {
      va.sig_in.Add(sig);
    }
  }
  return n;
}

void TemporalGraph::UnlinkNode(VertexId v, uint32_t node) {
  const AdjEntry& entry = nodes_[node].entry;
  VertexAdj& va = adj_[v];
  auto it = va.buckets.find(
      PackPair(entry.elabel, vertex_labels_[entry.nbr]));
  TCSM_CHECK(it != va.buckets.end() && "edge missing from adjacency");
  Bucket& bucket = it->second;
  const uint32_t prev = nodes_[node].prev;
  const uint32_t next = nodes_[node].next;
  if (prev == kNilNode) {
    bucket.head = next;
  } else {
    nodes_[prev].next = next;
  }
  if (next == kNilNode) {
    bucket.tail = prev;
  } else {
    nodes_[next].prev = prev;
  }
  TCSM_CHECK(bucket.size > 0);
  --bucket.size;
  --va.degree;
  if (directed_ && entry.out) {
    TCSM_CHECK(bucket.out_size > 0);
    --bucket.out_size;
  }
  // Signature masks: a Bloom bit may be shared between buckets, so bits
  // cannot be cleared per-key; when a count drops to zero the affected
  // masks are re-derived from the surviving buckets instead (keeps
  // MayHaveMatching exact — no false negatives, ever).
  if (bucket.size == 0 ||
      (directed_ && (entry.out ? bucket.out_size == 0
                               : bucket.size == bucket.out_size))) {
    RebuildSigMasks(v);
  }
  // Push onto the node free-list.
  nodes_[node].next = free_node_head_;
  free_node_head_ = node;
}

void TemporalGraph::RebuildSigMasks(VertexId v) {
  VertexAdj& va = adj_[v];
  va.sig_any.Clear();
  va.sig_out.Clear();
  va.sig_in.Clear();
  for (const auto& [sig, bucket] : va.buckets) {
    if (bucket.size == 0) continue;
    va.sig_any.Add(sig);
    if (directed_) {
      if (bucket.out_size > 0) va.sig_out.Add(sig);
      if (bucket.size > bucket.out_size) va.sig_in.Add(sig);
    }
  }
}

void TemporalGraph::DrainPendingFrees() {
  for (const uint32_t slot : pending_free_) {
    const EdgeId id = slots_[slot].edge.id;
    ring_[id - base_id_] = kInvalidSlot;
    free_slots_.push_back(slot);
  }
  pending_free_.clear();
  // The front-advance runs even with nothing newly freed: InsertEdgeAs
  // leaves permanent kInvalidSlot holes for skipped ids, and those must
  // slide out of the ring once FIFO expiry reaches them.
  while (!ring_.empty() && ring_.front() == kInvalidSlot) {
    ring_.pop_front();
    ++base_id_;
  }
}

EdgeId TemporalGraph::InsertEdge(VertexId src, VertexId dst, Timestamp ts,
                                 Label label) {
  return InsertEdgeAs(next_id_, src, dst, ts, label);
}

EdgeId TemporalGraph::InsertEdgeAs(EdgeId id, VertexId src, VertexId dst,
                                   Timestamp ts, Label label) {
  TCSM_CHECK(src < vertex_labels_.size() && dst < vertex_labels_.size());
  // No simple query can match a self loop (vertex images are injective);
  // loaders drop them on ingest and the store rejects them outright.
  TCSM_CHECK(src != dst && "self loops are not supported");
  // Ids are 32-bit dense arrival indices and are never recycled, so one
  // graph instance supports 2^32 - 1 arrivals per ClearEdges(); abort
  // loudly at the limit instead of silently wrapping (see the header).
  TCSM_CHECK(id != kInvalidEdge && "edge-id space exhausted");
  TCSM_CHECK(id >= next_id_ && "caller-assigned ids must be ascending");
  DrainPendingFrees();
  if (ring_.empty()) {
    // Nothing alive and nothing pending: skip straight to `id` instead of
    // materializing one hole per skipped id. This is what makes a seeked
    // replay (io/stream_reader.h SeekToTimestamp), whose first arrival id
    // is the count of skipped arrivals, O(1) rather than O(skipped).
    base_id_ = id;
    next_id_ = id;
  }
  // Ids skipped over become holes: ring entries that were never backed by
  // a slot, indistinguishable from already-reclaimed ids to every reader.
  while (next_id_ < id) {
    ring_.push_back(kInvalidSlot);
    ++next_id_;
  }
  ++next_id_;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  EdgeSlot& s = slots_[slot];
  s.edge = TemporalEdge{id, src, dst, ts, label};
  s.alive = true;
  s.node_src = LinkNode(src, AdjEntry{dst, id, ts, label, /*out=*/true});
  s.node_dst = LinkNode(dst, AdjEntry{src, id, ts, label, /*out=*/false});
  ring_.push_back(slot);
  ++num_alive_;
  return id;
}

void TemporalGraph::RemoveEdge(EdgeId id) {
  const uint32_t slot = ResolveSlot(id);
  EdgeSlot& s = slots_[slot];
  TCSM_CHECK(s.alive && "edge already removed");
  UnlinkNode(s.edge.src, s.node_src);
  UnlinkNode(s.edge.dst, s.node_dst);
  s.node_src = kNilNode;
  s.node_dst = kNilNode;
  s.alive = false;
  // Deferred reclamation: the record stays readable (as a tombstone) until
  // the next InsertEdge, so index-update code running after the removal of
  // this very event can still read Edge(id).
  pending_free_.push_back(slot);
  --num_alive_;
}

size_t TemporalGraph::EstimateMemoryBytes() const {
  size_t bytes = VectorBytes(vertex_labels_) + VectorBytes(adj_) +
                 VectorBytes(nodes_) + VectorBytes(slots_) +
                 VectorBytes(free_slots_) + VectorBytes(pending_free_);
  bytes += ring_.size() * sizeof(uint32_t) + sizeof(ring_);
  for (const auto& va : adj_) bytes += HashMapBytes(va.buckets);
  return bytes;
}

void TemporalGraph::ClearEdges() {
  nodes_.clear();
  free_node_head_ = kNilNode;
  slots_.clear();
  free_slots_.clear();
  pending_free_.clear();
  ring_.clear();
  base_id_ = 0;
  next_id_ = 0;
  num_alive_ = 0;
  for (auto& va : adj_) {
    va.buckets.clear();
    va.degree = 0;
    va.sig_any.Clear();
    va.sig_out.Clear();
    va.sig_in.Clear();
  }
}

}  // namespace tcsm
