#include "graph/temporal_graph.h"

#include "common/logging.h"
#include "common/memory_meter.h"

namespace tcsm {

VertexId TemporalGraph::AddVertex(Label label) {
  vertex_labels_.push_back(label);
  adj_.emplace_back();
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

void TemporalGraph::EnsureVertices(size_t n) {
  while (vertex_labels_.size() < n) AddVertex(0);
}

void TemporalGraph::SetVertexLabel(VertexId v, Label label) {
  TCSM_CHECK(v < vertex_labels_.size());
  vertex_labels_[v] = label;
}

EdgeId TemporalGraph::InsertEdge(VertexId src, VertexId dst, Timestamp ts,
                                 Label label) {
  TCSM_CHECK(src < vertex_labels_.size() && dst < vertex_labels_.size());
  // No simple query can match a self loop (vertex images are injective);
  // loaders drop them on ingest and the store rejects them outright.
  TCSM_CHECK(src != dst && "self loops are not supported");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(TemporalEdge{id, src, dst, ts, label});
  alive_.push_back(1);
  adj_[src].push_back(AdjEntry{dst, id, ts, label, /*out=*/true});
  if (dst != src) {
    adj_[dst].push_back(AdjEntry{src, id, ts, label, /*out=*/false});
  }
  ++num_alive_;
  return id;
}

void TemporalGraph::RemoveEdge(EdgeId id) {
  TCSM_CHECK(id < edges_.size() && alive_[id]);
  const TemporalEdge& e = edges_[id];
  auto erase_from = [&](VertexId v) -> bool {
    auto& dq = adj_[v];
    if (!dq.empty() && dq.front().edge == id) {
      dq.pop_front();
      return true;  // FIFO fast path
    }
    for (auto it = dq.begin(); it != dq.end(); ++it) {
      if (it->edge == id) {
        dq.erase(it);
        return false;
      }
    }
    TCSM_CHECK(false && "edge missing from adjacency");
    return false;
  };
  bool fifo = erase_from(e.src);
  if (e.dst != e.src) fifo = erase_from(e.dst) && fifo;
  if (!fifo) ++non_fifo_removals_;
  alive_[id] = 0;
  --num_alive_;
}

size_t TemporalGraph::EstimateMemoryBytes() const {
  size_t bytes = VectorBytes(vertex_labels_) + VectorBytes(alive_);
  // Only live edges count toward the window footprint.
  bytes += num_alive_ * sizeof(TemporalEdge);
  for (const auto& dq : adj_) bytes += dq.size() * sizeof(AdjEntry);
  return bytes;
}

void TemporalGraph::ClearEdges() {
  edges_.clear();
  alive_.clear();
  num_alive_ = 0;
  non_fifo_removals_ = 0;
  for (auto& dq : adj_) dq.clear();
}

}  // namespace tcsm
