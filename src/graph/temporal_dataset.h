// A full temporal data graph G as a static edge list sorted by timestamp.
// The stream driver replays a dataset against an engine: each edge produces
// an arrival event at its timestamp and an expiration event at ts + delta
// (Algorithm 1, set L).
#ifndef TCSM_GRAPH_TEMPORAL_DATASET_H_
#define TCSM_GRAPH_TEMPORAL_DATASET_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/temporal_edge.h"

namespace tcsm {

struct DatasetStats {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  size_t num_vertex_labels = 0;
  size_t num_edge_labels = 0;
  double avg_degree = 0;          // d_avg of Table III (2|E|/|V|)
  double avg_parallel_edges = 0;  // m_avg of Table III
  Timestamp min_ts = 0;
  Timestamp max_ts = 0;
  /// Average time span between two consecutive edges; the paper uses this
  /// as the unit of the window size delta (Section VI-A).
  double window_unit = 1.0;
};

struct TemporalDataset {
  std::string name;
  bool directed = false;
  std::vector<Label> vertex_labels;
  /// Sorted by (ts, id). Edge ids are positions in this vector.
  std::vector<TemporalEdge> edges;

  size_t NumVertices() const { return vertex_labels.size(); }
  size_t NumEdges() const { return edges.size(); }

  /// Stable-sorts edges by timestamp and reassigns dense ids.
  void Normalize() {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const TemporalEdge& a, const TemporalEdge& b) {
                       return a.ts < b.ts;
                     });
    for (size_t i = 0; i < edges.size(); ++i) {
      edges[i].id = static_cast<EdgeId>(i);
    }
  }

  /// Replaces timestamps by their rank (1..|E|), preserving order. This
  /// matches the running example where edge sigma_i arrives at time i and
  /// makes a window of w "units" hold exactly w live edges.
  void RankTimestamps() {
    Normalize();
    for (size_t i = 0; i < edges.size(); ++i) {
      edges[i].ts = static_cast<Timestamp>(i + 1);
    }
  }

  DatasetStats ComputeStats() const;
};

}  // namespace tcsm

#endif  // TCSM_GRAPH_TEMPORAL_DATASET_H_
