// Plain edge records shared by the streaming graph and dataset loaders.
#ifndef TCSM_GRAPH_TEMPORAL_EDGE_H_
#define TCSM_GRAPH_TEMPORAL_EDGE_H_

#include "common/types.h"

namespace tcsm {

/// An edge of a temporal graph. Parallel edges between the same endpoints
/// are distinct records with (usually) different timestamps, per
/// Definition II.1 of the paper. For directed graphs the edge points
/// src -> dst; for undirected graphs the (src, dst) order is storage order.
struct TemporalEdge {
  EdgeId id = kInvalidEdge;
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  Timestamp ts = 0;
  Label label = 0;

  VertexId Other(VertexId v) const { return v == src ? dst : src; }
};

}  // namespace tcsm

#endif  // TCSM_GRAPH_TEMPORAL_EDGE_H_
