#include "querygen/query_generator.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace tcsm {
namespace {

struct WalkEdge {
  VertexId a;  // data endpoints
  VertexId b;
  const TemporalEdge* edge;  // representative data edge (its timestamp
                             // seeds the temporal order)
};

/// One random-walk attempt confined to dataset edge range [lo, hi).
bool TryWalk(const TemporalDataset& ds, const QueryGenOptions& opt, Rng* rng,
             size_t lo, size_t hi, std::vector<WalkEdge>* out) {
  // Slice adjacency.
  std::unordered_map<VertexId, std::vector<const TemporalEdge*>> adj;
  for (size_t i = lo; i < hi; ++i) {
    const TemporalEdge& e = ds.edges[i];
    adj[e.src].push_back(&e);
    adj[e.dst].push_back(&e);
  }
  if (adj.empty()) return false;

  const TemporalEdge& first = ds.edges[lo + rng->NextBounded(hi - lo)];
  std::vector<VertexId> visited{first.src};
  std::unordered_map<uint64_t, bool> used_pairs;
  out->clear();

  VertexId cur = first.src;
  for (size_t step = 0; step < opt.max_walk_steps; ++step) {
    if (out->size() == opt.num_edges) return true;
    // Occasionally restart from a visited vertex to grow non-path shapes
    // (stars, trees) as a data-graph random walk naturally does when it
    // backtracks.
    if (rng->NextBool(0.25)) {
      cur = visited[rng->NextBounded(visited.size())];
    }
    auto it = adj.find(cur);
    if (it == adj.end() || it->second.empty()) {
      cur = visited[rng->NextBounded(visited.size())];
      continue;
    }
    const TemporalEdge* e = it->second[rng->NextBounded(it->second.size())];
    const VertexId nxt = e->Other(cur);
    if (nxt == cur) continue;
    const uint64_t key =
        PackPair(std::min(cur, nxt), std::max(cur, nxt));
    if (!used_pairs[key]) {
      used_pairs[key] = true;
      out->push_back(WalkEdge{cur, nxt, e});
      visited.push_back(nxt);
    }
    cur = nxt;
  }
  return out->size() == opt.num_edges;
}

}  // namespace

namespace {

/// Applies a density-targeted temporal order to a bare topology, given
/// the query edges sorted by their witness timestamps. AddOrder keeps the
/// relation transitively closed, so the achieved density can slightly
/// overshoot ("densities close to 0.25" — Section VI).
void ApplyOrder(QueryGraph* query,
                const std::vector<std::pair<EdgeId, Timestamp>>& edge_ts,
                double density, Rng* rng) {
  const size_t m = edge_ts.size();
  if (m < 2) return;
  const size_t total_pairs = m * (m - 1) / 2;
  const size_t target = static_cast<size_t>(
      density * static_cast<double>(total_pairs) + 0.5);
  if (target >= total_pairs) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        TCSM_CHECK(
            query->AddOrder(edge_ts[i].first, edge_ts[j].first).ok());
      }
    }
  } else if (target > 0) {
    std::vector<std::pair<EdgeId, EdgeId>> pairs;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        pairs.emplace_back(edge_ts[i].first, edge_ts[j].first);
      }
    }
    for (size_t i = pairs.size(); i > 1; --i) {
      std::swap(pairs[i - 1], pairs[rng->NextBounded(i)]);
    }
    for (const auto& [a, b] : pairs) {
      if (query->NumOrderPairs() >= target) break;
      TCSM_CHECK(query->AddOrder(a, b).ok());
    }
  }
}

/// Extracts a topology by random walk; fills the bare (order-free) query
/// and its edges sorted by witness timestamp.
bool GenerateTopology(const TemporalDataset& dataset,
                      const QueryGenOptions& options, Rng* rng,
                      QueryGraph* out,
                      std::vector<std::pair<EdgeId, Timestamp>>* edge_ts) {
  TCSM_CHECK(options.num_edges >= 1 &&
             options.num_edges <= QueryGraph::kMaxEdges);
  if (dataset.edges.empty()) return false;

  std::vector<WalkEdge> walk;
  bool ok = false;
  for (size_t attempt = 0; attempt < options.max_attempts && !ok;
       ++attempt) {
    size_t lo = 0;
    size_t hi = dataset.edges.size();
    if (options.window > 0) {
      // Pick a slice [t0, t0 + window); edges are sorted by timestamp so
      // the slice is a contiguous index range.
      const size_t pivot = rng->NextBounded(dataset.edges.size());
      const Timestamp t0 = dataset.edges[pivot].ts;
      lo = pivot;
      while (lo > 0 && dataset.edges[lo - 1].ts > t0 - 1) --lo;
      hi = pivot;
      while (hi < dataset.edges.size() &&
             dataset.edges[hi].ts < t0 + options.window) {
        ++hi;
      }
      if (hi - lo < options.num_edges) continue;
    }
    ok = TryWalk(dataset, options, rng, lo, hi, &walk);
  }
  if (!ok) return false;

  // Build the query graph: data vertices -> dense query ids, labels copied.
  QueryGraph query(dataset.directed);
  std::unordered_map<VertexId, VertexId> vid;
  auto map_vertex = [&](VertexId dv) {
    auto it = vid.find(dv);
    if (it != vid.end()) return it->second;
    const VertexId qv = query.AddVertex(dataset.vertex_labels[dv]);
    vid.emplace(dv, qv);
    return qv;
  };
  edge_ts->clear();
  for (const WalkEdge& we : walk) {
    // Directed queries keep the data edge's direction.
    VertexId from = we.a;
    VertexId to = we.b;
    if (dataset.directed && !(we.edge->src == we.a && we.edge->dst == we.b)) {
      from = we.edge->src;
      to = we.edge->dst;
    }
    const EdgeId qe =
        query.AddEdge(map_vertex(from), map_vertex(to), we.edge->label);
    edge_ts->emplace_back(qe, we.edge->ts);
  }
  std::sort(edge_ts->begin(), edge_ts->end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });
  TCSM_CHECK(query.Validate().ok());
  *out = std::move(query);
  return true;
}

/// Converts adjacent witness-timestamp pairs into gap bounds around the
/// witnessed difference. Orders implied by a gap (min >= 1) always point
/// along the witness-sorted edge sequence — the same direction ApplyOrder
/// uses — so folding them into ≺ can never cycle.
void ApplyGaps(QueryGraph* query,
               const std::vector<std::pair<EdgeId, Timestamp>>& edge_ts,
               const QueryGenOptions& options, Rng* rng) {
  if (options.gap_probability <= 0.0) return;
  for (size_t i = 0; i + 1 < edge_ts.size(); ++i) {
    if (!rng->NextBool(options.gap_probability)) continue;
    const Timestamp d = edge_ts[i + 1].second - edge_ts[i].second;
    const Timestamp min_gap = std::max<Timestamp>(0, d - options.gap_slack);
    const Timestamp max_gap =
        std::min(d + options.gap_slack, kMaxStreamTimestamp);
    TCSM_CHECK(query
                   ->AddGap(edge_ts[i].first, edge_ts[i + 1].first, min_gap,
                            max_gap)
                   .ok());
  }
}

void ApplyAbsences(QueryGraph* query, const QueryGenOptions& options,
                   Rng* rng) {
  if (options.num_absence == 0 || query->NumVertices() < 2) return;
  Label max_elabel = 0;
  for (size_t e = 0; e < query->NumEdges(); ++e) {
    max_elabel =
        std::max(max_elabel, query->Edge(static_cast<EdgeId>(e)).elabel);
  }
  for (size_t i = 0; i < options.num_absence; ++i) {
    const VertexId u =
        static_cast<VertexId>(rng->NextBounded(query->NumVertices()));
    VertexId v = u;
    while (v == u) {
      v = static_cast<VertexId>(rng->NextBounded(query->NumVertices()));
    }
    const Label label =
        static_cast<Label>(rng->NextBounded(static_cast<uint64_t>(max_elabel) + 2));
    TCSM_CHECK(query->AddAbsence(u, v, label, options.absence_delta).ok());
  }
}

}  // namespace

bool GenerateQuery(const TemporalDataset& dataset,
                   const QueryGenOptions& options, Rng* rng,
                   QueryGraph* out) {
  std::vector<std::pair<EdgeId, Timestamp>> edge_ts;
  QueryGraph query;
  if (!GenerateTopology(dataset, options, rng, &query, &edge_ts)) {
    return false;
  }
  ApplyOrder(&query, edge_ts, options.density, rng);
  ApplyGaps(&query, edge_ts, options, rng);
  ApplyAbsences(&query, options, rng);
  // The walk was confined to a window-sized slice; carry that window as
  // the query file's suggested replay delta (`w` record).
  query.set_window_hint(options.window);
  *out = std::move(query);
  return true;
}

bool GenerateQueryWithOrders(const TemporalDataset& dataset,
                             const QueryGenOptions& options,
                             const std::vector<double>& densities, Rng* rng,
                             std::vector<QueryGraph>* out) {
  std::vector<std::pair<EdgeId, Timestamp>> edge_ts;
  QueryGraph topology;
  if (!GenerateTopology(dataset, options, rng, &topology, &edge_ts)) {
    return false;
  }
  out->clear();
  for (const double density : densities) {
    QueryGraph q = topology;  // same topology, fresh order
    Rng order_rng = rng->Split();
    ApplyOrder(&q, edge_ts, density, &order_rng);
    q.set_window_hint(options.window);
    out->push_back(std::move(q));
  }
  return true;
}

std::vector<QueryGraph> GenerateQuerySet(const TemporalDataset& dataset,
                                         const QueryGenOptions& options,
                                         size_t count, uint64_t seed) {
  std::vector<QueryGraph> queries;
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    Rng sub = rng.Split();
    QueryGraph q;
    if (GenerateQuery(dataset, options, &sub, &q)) {
      queries.push_back(std::move(q));
    }
  }
  return queries;
}

}  // namespace tcsm
