// Query workload generator (Section VI, "Queries"): query graphs are
// extracted from the data graph by random walk, so labels and topology
// follow the data distribution and at least one time-constrained embedding
// of the query occurs during the stream. The temporal order is derived
// from the actual timestamps of the walked edges and thinned/closed to a
// target density in {0, 0.25, 0.5, 0.75, 1}.
#ifndef TCSM_QUERYGEN_QUERY_GENERATOR_H_
#define TCSM_QUERYGEN_QUERY_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "graph/temporal_dataset.h"
#include "query/query_graph.h"

namespace tcsm {

struct QueryGenOptions {
  /// Query size = number of edges (paper: 5, 7, 9, 11, 13, 15).
  size_t num_edges = 9;
  /// Temporal-order density: |≺| / C(m, 2). 0 = no order, 1 = total order.
  double density = 0.5;
  /// When > 0 the random walk is confined to a window-sized time slice so
  /// the witness embedding fits into one window.
  Timestamp window = 0;
  size_t max_attempts = 100;
  size_t max_walk_steps = 4000;
  /// Probability that an adjacent pair of witness timestamps becomes a gap
  /// bound `g` record: bounds [max(0, d - gap_slack), d + gap_slack] around
  /// the witnessed difference d, so the witness embedding satisfies every
  /// generated gap. 0 = no gap constraints (the default).
  double gap_probability = 0.0;
  /// Slack around the witnessed gap; smaller = tighter pruning windows.
  Timestamp gap_slack = 8;
  /// Number of absence predicates (`n` records) to attach: random distinct
  /// query-vertex pairs with labels drawn from the query's edge-label
  /// alphabet plus one out-of-alphabet value (a vacuously satisfiable
  /// predicate keeps the zero-suppression path covered). The witness may
  /// legitimately be suppressed by a generated predicate.
  size_t num_absence = 0;
  /// Delta for generated absence predicates.
  Timestamp absence_delta = 5;
};

/// Returns false when no connected subgraph of the requested size could be
/// extracted (e.g., the dataset is too sparse in every slice).
bool GenerateQuery(const TemporalDataset& dataset,
                   const QueryGenOptions& options, Rng* rng, QueryGraph* out);

/// One random-walk topology equipped with one temporal order per entry of
/// `densities` (the paper's Figure 8 methodology: "for each query graph,
/// we create 5 different temporal orders"). out[i] differs from out[j]
/// only in the order relation. options.density is ignored.
bool GenerateQueryWithOrders(const TemporalDataset& dataset,
                             const QueryGenOptions& options,
                             const std::vector<double>& densities, Rng* rng,
                             std::vector<QueryGraph>* out);

/// Generates `count` queries with consecutive sub-seeds; queries that fail
/// to generate are skipped, so the result may be shorter than `count`.
std::vector<QueryGraph> GenerateQuerySet(const TemporalDataset& dataset,
                                         const QueryGenOptions& options,
                                         size_t count, uint64_t seed);

}  // namespace tcsm

#endif  // TCSM_QUERYGEN_QUERY_GENERATOR_H_
