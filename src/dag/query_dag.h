// Query DAG construction and static derived data (Sections II and IV-B).
//
// BuildDagGreedy implements Algorithm 2: vertices are added one at a time,
// always picking the candidate whose selection creates the most ordered
// pairs in the temporal ancestor-descendant relationship (Definition II.4);
// ties go to the earliest-inserted candidate. BuildBestDag runs the greedy
// algorithm from every root and keeps the highest-scoring DAG (Algorithm 1,
// lines 1-6).
//
// A QueryDag also precomputes everything the max-min timestamp index needs:
// topological order, ancestor-vertex masks, sub-DAG edge masks, and the
// per-vertex "tracked" query edges for which T[u, v, e] must be maintained.
#ifndef TCSM_DAG_QUERY_DAG_H_
#define TCSM_DAG_QUERY_DAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitmask.h"
#include "common/types.h"
#include "query/query_graph.h"

namespace tcsm {

class QueryDag {
 public:
  /// Greedy DAG rooted at `root` (Algorithm 2). The score is the sum of
  /// Score[u] over popped vertices, as in the paper.
  static QueryDag BuildDagGreedy(const QueryGraph& query, VertexId root);

  /// Best DAG over all roots (Algorithm 1 lines 1-6).
  static QueryDag BuildBestDag(const QueryGraph& query);

  /// The reverse DAG q̂⁻¹ (all edges flipped). Used to filter with temporal
  /// ancestors as well as descendants (Section IV-A, last paragraph).
  QueryDag Reversed() const;

  const QueryGraph& query() const { return *query_; }
  VertexId root() const { return root_; }
  int64_t score() const { return score_; }

  /// Selection order; position 0 is the root (for the forward DAG).
  const std::vector<VertexId>& TopoOrder() const { return topo_; }
  uint32_t TopoPos(VertexId u) const { return topo_pos_[u]; }

  /// DAG orientation of query edge e: ParentOf(e) -> ChildOf(e).
  VertexId ParentOf(EdgeId e) const { return edge_parent_[e]; }
  VertexId ChildOf(EdgeId e) const { return edge_child_[e]; }

  const std::vector<EdgeId>& ChildEdges(VertexId u) const {
    return child_edges_[u];
  }
  const std::vector<EdgeId>& ParentEdges(VertexId u) const {
    return parent_edges_[u];
  }

  /// Strict ancestors of u (as a vertex mask).
  Mask64 AncestorVertices(VertexId u) const { return anc_vertices_[u]; }
  /// Edges of the sub-DAG q̂_u (all edges on paths starting at u).
  Mask64 SubDagEdges(VertexId u) const { return subdag_edges_[u]; }
  /// Temporal descendants of e in this DAG: edges below ChildOf(e) that are
  /// temporally related to e (Definition II.4), split by direction of ≺.
  Mask64 LaterDescendants(EdgeId e) const { return later_desc_[e]; }
  Mask64 EarlierDescendants(EdgeId e) const { return earlier_desc_[e]; }

  /// Number of ordered (ancestor, descendant) pairs with a temporal
  /// relation — the exact quantity Algorithm 2's score approximates.
  size_t CountTemporalPairs() const;

  /// Tracked edges at u: query edges e whose child endpoint is u or an
  /// ancestor of u and which still have later/earlier-related edges inside
  /// q̂_u. T[u, v, e] is maintained exactly for these; see filter module.
  const std::vector<EdgeId>& TrackedLater(VertexId u) const {
    return tracked_later_[u];
  }
  const std::vector<EdgeId>& TrackedEarlier(VertexId u) const {
    return tracked_earlier_[u];
  }
  /// Slot of e in TrackedLater(u)/TrackedEarlier(u), or -1.
  int SlotLater(VertexId u, EdgeId e) const { return slot_later_[u][e]; }
  int SlotEarlier(VertexId u, EdgeId e) const { return slot_earlier_[u][e]; }

  std::string ToString() const;

 private:
  QueryDag() = default;

  /// Computes everything derived from (query, orientation, topo order).
  void Finalize();

  const QueryGraph* query_ = nullptr;
  VertexId root_ = kInvalidVertex;
  int64_t score_ = 0;

  std::vector<VertexId> topo_;
  std::vector<uint32_t> topo_pos_;
  std::vector<VertexId> edge_parent_;
  std::vector<VertexId> edge_child_;
  std::vector<std::vector<EdgeId>> child_edges_;
  std::vector<std::vector<EdgeId>> parent_edges_;
  std::vector<Mask64> anc_vertices_;
  std::vector<Mask64> subdag_edges_;
  std::vector<Mask64> later_desc_;
  std::vector<Mask64> earlier_desc_;
  std::vector<std::vector<EdgeId>> tracked_later_;
  std::vector<std::vector<EdgeId>> tracked_earlier_;
  std::vector<std::vector<int8_t>> slot_later_;
  std::vector<std::vector<int8_t>> slot_earlier_;
};

}  // namespace tcsm

#endif  // TCSM_DAG_QUERY_DAG_H_
