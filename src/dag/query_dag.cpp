#include "dag/query_dag.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace tcsm {
namespace {

struct Candidate {
  VertexId v;
  int64_t score;
  uint64_t seq;  // insertion order; ties prefer the earliest (Section IV-B)
};

}  // namespace

QueryDag QueryDag::BuildDagGreedy(const QueryGraph& query, VertexId root) {
  const size_t n = query.NumVertices();
  const size_t m = query.NumEdges();
  TCSM_CHECK(root < n);

  QueryDag dag;
  dag.query_ = &query;
  dag.root_ = root;
  dag.edge_parent_.assign(m, kInvalidVertex);
  dag.edge_child_.assign(m, kInvalidVertex);

  std::vector<uint8_t> in_dag(n, 0);
  std::vector<Mask64> anc_edges(n, 0);  // edges on root-to-v paths
  std::vector<Candidate> cand;
  std::vector<int> cand_pos(n, -1);
  uint64_t seq = 0;

  // Score[u']: ordered pairs gained if u' is selected next — for each
  // future edge f = (u', u'_n) with u'_n outside the DAG, the number of
  // temporally related edges among f's would-be ancestors (the edges that
  // would enter u' plus their ancestors). Recomputed every time an edge
  // (u, u') is visited, exactly as in Lemma IV.2's accounting.
  auto compute_score = [&](VertexId v) -> int64_t {
    Mask64 ancestors = 0;
    for (EdgeId e : query.IncidentEdges(v)) {
      const VertexId x = query.Edge(e).Other(v);
      if (in_dag[x]) ancestors |= Bit(e) | anc_edges[x];
    }
    int64_t score = 0;
    for (EdgeId f : query.IncidentEdges(v)) {
      const VertexId un = query.Edge(f).Other(v);
      if (!in_dag[un]) {
        score += PopCount(ancestors & query.DeclaredRelated(f));
      }
    }
    return score;
  };

  cand.push_back(Candidate{root, 0, seq++});
  cand_pos[root] = 0;

  while (!cand.empty()) {
    // Pop the candidate with the highest score; break ties by earliest
    // insertion.
    size_t best = 0;
    for (size_t i = 1; i < cand.size(); ++i) {
      if (cand[i].score > cand[best].score ||
          (cand[i].score == cand[best].score &&
           cand[i].seq < cand[best].seq)) {
        best = i;
      }
    }
    const Candidate picked = cand[best];
    cand[best] = cand.back();
    cand_pos[cand[best].v] = static_cast<int>(best);
    cand.pop_back();
    cand_pos[picked.v] = -1;

    const VertexId u = picked.v;
    in_dag[u] = 1;
    dag.topo_.push_back(u);
    dag.score_ += picked.score;

    Mask64 anc = 0;
    for (EdgeId e : query.IncidentEdges(u)) {
      const VertexId w = query.Edge(e).Other(u);
      if (in_dag[w]) {
        // Edge (w, u): w joined earlier, so it is the parent.
        dag.edge_parent_[e] = w;
        dag.edge_child_[e] = u;
        anc |= Bit(e) | anc_edges[w];
      }
    }
    anc_edges[u] = anc;

    for (EdgeId e : query.IncidentEdges(u)) {
      const VertexId w = query.Edge(e).Other(u);
      if (in_dag[w]) continue;
      if (cand_pos[w] < 0) {
        cand_pos[w] = static_cast<int>(cand.size());
        cand.push_back(Candidate{w, 0, seq++});
      }
      cand[static_cast<size_t>(cand_pos[w])].score = compute_score(w);
    }
  }

  TCSM_CHECK(dag.topo_.size() == n && "query graph must be connected");
  dag.Finalize();
  return dag;
}

QueryDag QueryDag::BuildBestDag(const QueryGraph& query) {
  QueryDag best;
  bool have = false;
  for (VertexId r = 0; r < query.NumVertices(); ++r) {
    QueryDag dag = BuildDagGreedy(query, r);
    if (!have || dag.score() > best.score()) {
      best = std::move(dag);
      have = true;
    }
  }
  TCSM_CHECK(have);
  return best;
}

QueryDag QueryDag::Reversed() const {
  QueryDag rev;
  rev.query_ = query_;
  rev.root_ = root_;  // informational only; the reverse DAG may be multi-root
  rev.score_ = score_;
  rev.topo_.assign(topo_.rbegin(), topo_.rend());
  rev.edge_parent_ = edge_child_;
  rev.edge_child_ = edge_parent_;
  rev.Finalize();
  return rev;
}

void QueryDag::Finalize() {
  const QueryGraph& q = *query_;
  const size_t n = q.NumVertices();
  const size_t m = q.NumEdges();

  topo_pos_.assign(n, 0);
  for (size_t i = 0; i < topo_.size(); ++i) topo_pos_[topo_[i]] =
      static_cast<uint32_t>(i);

  child_edges_.assign(n, {});
  parent_edges_.assign(n, {});
  for (EdgeId e = 0; e < m; ++e) {
    TCSM_CHECK(edge_parent_[e] != kInvalidVertex);
    TCSM_CHECK(topo_pos_[edge_parent_[e]] < topo_pos_[edge_child_[e]]);
    child_edges_[edge_parent_[e]].push_back(e);
    parent_edges_[edge_child_[e]].push_back(e);
  }

  anc_vertices_.assign(n, 0);
  for (const VertexId u : topo_) {
    Mask64 anc = 0;
    for (EdgeId e : parent_edges_[u]) {
      anc |= Bit(edge_parent_[e]) | anc_vertices_[edge_parent_[e]];
    }
    anc_vertices_[u] = anc;
  }

  subdag_edges_.assign(n, 0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    Mask64 sub = 0;
    for (EdgeId e : child_edges_[*it]) {
      sub |= Bit(e) | subdag_edges_[edge_child_[e]];
    }
    subdag_edges_[*it] = sub;
  }

  later_desc_.assign(m, 0);
  earlier_desc_.assign(m, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const Mask64 below = subdag_edges_[edge_child_[e]];
    later_desc_[e] = below & q.After(e);
    earlier_desc_[e] = below & q.Before(e);
  }

  tracked_later_.assign(n, {});
  tracked_earlier_.assign(n, {});
  slot_later_.assign(n, std::vector<int8_t>(m, -1));
  slot_earlier_.assign(n, std::vector<int8_t>(m, -1));
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeId e = 0; e < m; ++e) {
      const VertexId endpoint = edge_child_[e];
      const bool above = endpoint == u || HasBit(anc_vertices_[u], endpoint);
      if (!above) continue;
      if ((q.After(e) & subdag_edges_[u]) != 0) {
        slot_later_[u][e] = static_cast<int8_t>(tracked_later_[u].size());
        tracked_later_[u].push_back(e);
      }
      if ((q.Before(e) & subdag_edges_[u]) != 0) {
        slot_earlier_[u][e] = static_cast<int8_t>(tracked_earlier_[u].size());
        tracked_earlier_[u].push_back(e);
      }
    }
  }
}

size_t QueryDag::CountTemporalPairs() const {
  size_t pairs = 0;
  for (EdgeId e = 0; e < query_->NumEdges(); ++e) {
    pairs += static_cast<size_t>(PopCount(later_desc_[e]) +
                                 PopCount(earlier_desc_[e]));
  }
  return pairs;
}

std::string QueryDag::ToString() const {
  std::ostringstream os;
  os << "dag root=" << root_ << " score=" << score_ << " topo=[";
  for (size_t i = 0; i < topo_.size(); ++i) {
    os << (i ? " " : "") << topo_[i];
  }
  os << "]\n";
  for (EdgeId e = 0; e < query_->NumEdges(); ++e) {
    os << "  e" << e << ": " << edge_parent_[e] << " -> " << edge_child_[e]
       << "\n";
  }
  return os.str();
}

}  // namespace tcsm
